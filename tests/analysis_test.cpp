//===- tests/analysis_test.cpp - Hybrid analyzer unit tests ---------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::analysis;
using namespace halo::ir;

namespace {

class AnalysisTest : public ::testing::Test {
protected:
  AnalysisTest() : P(Sym), U(Sym, P), Prog(Sym, P) {
    Main = Prog.makeSubroutine("main");
  }
  sym::Context Sym;
  pdag::PredContext P;
  usr::USRContext U;
  Program Prog;
  Subroutine *Main;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
};

TEST_F(AnalysisTest, AffineLoopIsStaticPar) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId Y = Sym.symbol("Y", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  const sym::Expr *Off = Sym.addConst(Sym.symRef(I), -1);
  L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                  std::vector<ArrayAccess>{{Y, Off}}, false,
                                  0));
  HybridAnalyzer A(U, Prog);
  LoopPlan Plan = A.analyze(*L);
  EXPECT_EQ(Plan.Class, LoopClass::StaticPar);
  EXPECT_EQ(Plan.classString(), "STATIC-PAR");
  EXPECT_EQ(Plan.maxTestDepth(), -1);
}

TEST_F(AnalysisTest, SymbolicStrideNeedsO1Test) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.mul(Sym.addConst(Sym.symRef(I), -1), s("S"))},
      std::vector<ArrayAccess>{}, false, 0));
  HybridAnalyzer A(U, Prog);
  LoopPlan Plan = A.analyze(*L);
  EXPECT_EQ(Plan.Class, LoopClass::Predicated);
  EXPECT_EQ(Plan.classString(), "OI O(1)");
}

TEST_F(AnalysisTest, BaselineCannotParallelizeSymbolicStride) {
  // Read-modify-write at a symbolic stride: the hybrid analyzer proves it
  // with an O(1) test, the static-only proxy cannot (and privatization is
  // excluded by the in-place read).
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  const sym::Expr *Off = Sym.mul(Sym.addConst(Sym.symRef(I), -1), s("S"));
  L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                  std::vector<ArrayAccess>{{X, Off}},
                                  false, 0));
  AnalyzerOptions Opts;
  Opts.RuntimeTests = false; // The ifort/xlf_r proxy.
  HybridAnalyzer A(U, Prog, Opts);
  LoopPlan Plan = A.analyze(*L);
  EXPECT_NE(Plan.Class, LoopClass::StaticPar);
  EXPECT_NE(Plan.Class, LoopClass::Predicated);
  // The hybrid analyzer handles the same loop with a runtime test.
  HybridAnalyzer A2(U, Prog);
  EXPECT_EQ(A2.analyze(*L).Class, LoopClass::Predicated);
}

TEST_F(AnalysisTest, ComplexityBudgetDropsDeepStages) {
  // Irregular subscripted subscripts generate only O(N^2)-or-worse
  // pairwise tests, which the Sec. 3.6 budget rejects.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId IDX = Sym.symbol("IDX", 0, true);
  sym::SymbolId JDX = Sym.symbol("JDX", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.arrayRef(IDX, Sym.symRef(I))},
      std::vector<ArrayAccess>{{X, Sym.arrayRef(JDX, Sym.symRef(I))}},
      false, 0));
  HybridAnalyzer A(U, Prog);
  LoopPlan Plan = A.analyze(*L);
  for (const ArrayPlan &AP : Plan.Arrays)
    for (const pdag::CascadeStage &St : AP.Flow.Stages)
      EXPECT_LE(St.Depth, 1);
}

TEST_F(AnalysisTest, HoistableContextSwitchesTLSToHoistUSR) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId IDX = Sym.symbol("IDX", 0, true);
  sym::SymbolId JDX = Sym.symbol("JDX", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.arrayRef(IDX, Sym.symRef(I))},
      std::vector<ArrayAccess>{{X, Sym.arrayRef(JDX, Sym.symRef(I))}},
      false, 0));
  // Probe data under which the loop is genuinely independent but no
  // predicate can prove it.
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 16);
  sym::ArrayBinding IV, JV;
  IV.Lo = JV.Lo = 1;
  for (int K = 0; K < 16; ++K) {
    IV.Vals.push_back(2 * K);
    JV.Vals.push_back(2 * K + 1);
  }
  B.setArray(IDX, IV);
  B.setArray(JDX, JV);

  AnalyzerOptions Opts;
  Opts.Probe = &B;
  Opts.HoistableContext = false;
  HybridAnalyzer A1(U, Prog, Opts);
  EXPECT_EQ(A1.analyze(*L).Class, LoopClass::TLS);
  Opts.HoistableContext = true;
  HybridAnalyzer A2(U, Prog, Opts);
  EXPECT_EQ(A2.analyze(*L).Class, LoopClass::HoistUSR);
}

TEST_F(AnalysisTest, ProbeDemonstratesDependence) {
  // X[i] = f(X[i-1]): the probe evaluation of the FIND-USR is nonempty,
  // so the loop classifies STATIC-SEQ.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(2), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.addConst(Sym.symRef(I), -1)},
      std::vector<ArrayAccess>{{X, Sym.addConst(Sym.symRef(I), -2)}}, false,
      0));
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 32);
  AnalyzerOptions Opts;
  Opts.Probe = &B;
  HybridAnalyzer A(U, Prog, Opts);
  LoopPlan Plan = A.analyze(*L);
  EXPECT_EQ(Plan.Class, LoopClass::StaticSeq);
  EXPECT_EQ(Plan.classString(), "STATIC-SEQ");
}

TEST_F(AnalysisTest, PrivatizationWithSLVDetected) {
  // Every iteration rewrites prefix [0, NW(i)-1]: privatize + SLV under
  // AND_i NW(i) <= NW(N) (the nasa7 EMIT_do5 pattern).
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId NW = Sym.symbol("NW", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  DoLoop *Inner = Prog.make<DoLoop>(
      "Lj", J, c(1), Sym.arrayRef(NW, Sym.symRef(I)), 2);
  Inner->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.addConst(Sym.symRef(J), -1)},
      std::vector<ArrayAccess>{}, false, 0));
  L->append(Inner);

  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 10);
  sym::ArrayBinding NV;
  NV.Lo = 1;
  for (int K = 1; K <= 10; ++K)
    NV.Vals.push_back(K); // Non-decreasing: SLV holds.
  B.setArray(NW, NV);
  AnalyzerOptions Opts;
  Opts.Probe = &B;
  HybridAnalyzer A(U, Prog, Opts);
  LoopPlan Plan = A.analyze(*L);
  EXPECT_EQ(Plan.Class, LoopClass::Predicated);
  EXPECT_TRUE(Plan.Techniques.count(Technique::Priv));
  EXPECT_TRUE(Plan.Techniques.count(Technique::SLV));
  EXPECT_EQ(Plan.classString(), "OI O(N)");
}

TEST_F(AnalysisTest, ReductionOnlyLoopIsStaticParWithSRed) {
  sym::SymbolId A = Sym.symbol("A", 0, true);
  Main->declareArray(ArrayDecl{A, Sym.mulConst(s("N"), 1), false});
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(ArrayAccess{A, c(0)},
                                  std::vector<ArrayAccess>{}, true, 0));
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 100);
  AnalyzerOptions Opts;
  Opts.Probe = &B;
  HybridAnalyzer An(U, Prog, Opts);
  LoopPlan Plan = An.analyze(*L);
  EXPECT_EQ(Plan.Class, LoopClass::StaticPar);
  EXPECT_TRUE(Plan.Techniques.count(Technique::SRed));
  EXPECT_FALSE(Plan.Techniques.count(Technique::RRed));
}

TEST_F(AnalysisTest, AssumedSizeReductionTriggersBoundsComp) {
  sym::SymbolId A = Sym.symbol("A", 0, true);
  sym::SymbolId Q = Sym.symbol("Q", 0, true);
  Main->declareArray(ArrayDecl{A, nullptr, false}); // Assumed size.
  Main->declareArray(ArrayDecl{Q, nullptr, true});
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{A, Sym.arrayRef(Q, Sym.symRef(I))},
      std::vector<ArrayAccess>{}, true, 0));
  HybridAnalyzer An(U, Prog);
  LoopPlan Plan = An.analyze(*L);
  EXPECT_TRUE(Plan.Techniques.count(Technique::BoundsComp));
  bool Found = false;
  for (const ArrayPlan &AP : Plan.Arrays)
    if (AP.NeedsBoundsComp) {
      Found = true;
      EXPECT_NE(AP.BoundsUSR, nullptr);
    }
  EXPECT_TRUE(Found);
  EXPECT_EQ(Plan.classString().substr(0, 11), "BOUNDS-COMP");
}

TEST_F(AnalysisTest, TechniqueStringOrdering) {
  LoopPlan Plan;
  Plan.Techniques = {Technique::Mon, Technique::Priv, Technique::SLV};
  EXPECT_EQ(Plan.techniqueString(), "PRIV,SLV,MON");
}

TEST_F(AnalysisTest, ClassStringDepthFormatting) {
  LoopPlan Plan;
  Plan.Class = LoopClass::Predicated;
  Plan.ReportNeedsFlow = true;
  Plan.ReportFlowDepth = 0;
  EXPECT_EQ(Plan.classString(), "FI O(1)");
  Plan.ReportNeedsOut = true;
  Plan.ReportOutDepth = 1;
  EXPECT_EQ(Plan.classString(), "F/OI O(1)/O(N)");
  Plan.ReportNeedsFlow = false;
  EXPECT_EQ(Plan.classString(), "OI O(N)");
}

} // namespace
