//===- tests/session_test.cpp - Session layer unit & parity tests ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The analyze-once / execute-many contract: Session::run against a cached
// plan (pre-sorted compiled cascades + pooled frames, 2nd..Nth execution)
// must produce bit-identical Memory/Bindings and the same ExecStats
// classification as building a fresh HybridAnalyzer + Executor for every
// single execution.
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"

#include "support/Rng.h"
#include "suite/Suite.h"

#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <gtest/gtest.h>

using namespace halo;

namespace {

/// Bitwise memory equality (doubles compared as bytes: "bit-identical").
void expectMemoryEq(const rt::Memory &A, const rt::Memory &B,
                    const char *What) {
  ASSERT_EQ(A.arrays().size(), B.arrays().size()) << What;
  for (const auto &KV : A.arrays()) {
    auto It = B.arrays().find(KV.first);
    ASSERT_NE(It, B.arrays().end()) << What;
    ASSERT_EQ(KV.second.size(), It->second.size()) << What;
    if (!KV.second.empty())
      EXPECT_EQ(std::memcmp(KV.second.data(), It->second.data(),
                            KV.second.size() * sizeof(double)),
                0)
          << What;
  }
}

void expectStatsEq(const rt::ExecStats &S, const rt::ExecStats &R,
                   const char *What) {
  EXPECT_EQ(S.RanParallel, R.RanParallel) << What;
  EXPECT_EQ(S.UsedTLS, R.UsedTLS) << What;
  EXPECT_EQ(S.TLSSucceeded, R.TLSSucceeded) << What;
  EXPECT_EQ(S.UsedExactTest, R.UsedExactTest) << What;
  EXPECT_EQ(S.CascadeDepthUsed, R.CascadeDepthUsed) << What;
}

/// The randomized multi-loop program: a symbolically-strided write loop
/// (O(1) predicate), a monotone block-write loop (O(N) predicate over an
/// index array), an irregular subscripted-subscript loop (hoistable exact
/// test), and a subscripted reduction (RRED injectivity).
struct SessionFixture : ::testing::Test {
  suite::Benchmark B;
  suite::BenchBuilder BB{B};
  ir::DoLoop *Strided = nullptr, *Blocks = nullptr, *Irregular = nullptr,
             *Reduce = nullptr;
  sym::SymbolId XS, XB, XI, XR, IB, IDX, JDX, Q;
  int64_t N = 200;

  SessionFixture() {
    XS = BB.dataArray("XS", BB.Sym.mulConst(BB.s("N"), 4));
    XB = BB.dataArray("XB", BB.Sym.mulConst(BB.s("N"), 8));
    XI = BB.dataArray("XI", BB.Sym.mulConst(BB.s("N"), 2));
    XR = BB.dataArray("XR", BB.Sym.mulConst(BB.s("N"), 2));
    IB = BB.indexArray("IB");
    IDX = BB.indexArray("IDX");
    JDX = BB.indexArray("JDX");
    Q = BB.indexArray("Q");
    Strided = suite::makeSymbolicStrideLoop(BB, "strided", "i", XS, "s",
                                            BB.s("N"), 0);
    Blocks = suite::makeMonotonicBlockLoop(BB, "blocks", "i", XB, IB,
                                           BB.c(4), BB.s("N"), 0);
    Irregular = suite::makeIrregularLoop(BB, "irr", "i", XI, IDX, JDX,
                                         BB.s("N"), 0);
    Reduce = BB.loop("reduce", "i", BB.c(1), BB.s("N"), 1);
    Reduce->append(BB.reduce(
        XR, BB.Sym.arrayRef(Q, BB.sv(BB.Sym.symbol("i", 1)))));
  }

  analysis::AnalyzerOptions optsFor(const ir::DoLoop *L) {
    analysis::AnalyzerOptions O;
    O.HoistableContext = (L == Irregular);
    return O;
  }

  /// Applies one randomized dataset mutation identically to both worlds.
  /// Sometimes leaves the bindings untouched so steady-state frame reuse
  /// is exercised; sometimes flips data so predicates pass/fail and the
  /// session must rebind.
  void mutate(Rng &R, sym::Bindings &BS, sym::Bindings &BR, rt::Memory &MS,
              rt::Memory &MR, bool First) {
    if (First) {
      for (sym::Bindings *Bd : {&BS, &BR})
        Bd->setScalar(BB.Sym.symbol("N"), N);
      for (rt::Memory *M : {&MS, &MR}) {
        M->alloc(XS, static_cast<size_t>(4 * N));
        M->alloc(XB, static_cast<size_t>(8 * N + 16));
        M->alloc(XI, static_cast<size_t>(2 * N));
        M->alloc(XR, static_cast<size_t>(2 * N));
      }
    }
    if (First || R.chance(1, 2)) {
      int64_t S = R.nextInRange(1, 3);
      for (sym::Bindings *Bd : {&BS, &BR})
        Bd->setScalar(BB.Sym.symbol("s"), S);
    }
    if (First || R.chance(1, 2)) {
      // Monotone with gaps >= 4 (predicate passes) or overlapping
      // (predicate fails -> LRPD speculation -> conflict -> sequential).
      bool Monotone = R.chance(2, 3);
      sym::ArrayBinding A;
      A.Lo = 1;
      for (int64_t K = 0; K < N; ++K)
        A.Vals.push_back(Monotone ? 1 + K * R.nextInRange(4, 5)
                                  : 1 + K * 2);
      BS.setArray(IB, A);
      BR.setArray(IB, A);
    }
    if (First || R.chance(1, 3)) {
      // Irregular subscripts: disjoint (exact test proves independence)
      // or colliding.
      bool Disjoint = R.chance(1, 2);
      sym::ArrayBinding AI, AJ;
      AI.Lo = AJ.Lo = 1;
      for (int64_t K = 0; K < N; ++K) {
        AI.Vals.push_back(Disjoint ? K : R.nextInRange(0, N - 1));
        AJ.Vals.push_back(Disjoint ? N + K : R.nextInRange(0, N - 1));
      }
      BS.setArray(IDX, AI);
      BR.setArray(IDX, AI);
      BS.setArray(JDX, AJ);
      BR.setArray(JDX, AJ);
    }
    if (First || R.chance(1, 3)) {
      // Reduction targets: monotone ramp (injective -> direct updates)
      // or a permutation (injective but not provably so -> private
      // copies) or colliding.
      int Mode = static_cast<int>(R.nextBelow(3));
      sym::ArrayBinding AQ;
      if (Mode == 1) {
        AQ = suite::permutationArray(N, R.next());
      } else {
        AQ.Lo = 1;
        for (int64_t K = 0; K < N; ++K)
          AQ.Vals.push_back(Mode == 0 ? K : K / 2);
      }
      BS.setArray(Q, AQ);
      BR.setArray(Q, AQ);
    }
  }
};

TEST_F(SessionFixture, CachedPlansMatchFreshAnalyzerExecutorPerExecution) {
  const unsigned Threads = 2;
  session::SessionOptions SO;
  SO.Threads = Threads;
  session::Session S(B.prog(), B.usr(), SO);
  for (ir::DoLoop *L : {Strided, Blocks, Irregular, Reduce})
    S.prepare(*L, optsFor(L));

  ThreadPool RefPool(Threads);
  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(0xC0FFEE);
  for (int E = 0; E < 8; ++E) {
    mutate(R, BS, BR, MS, MR, E == 0);
    for (ir::DoLoop *L : {Strided, Blocks, Irregular, Reduce}) {
      rt::ExecStats St = S.run(*L, MS, BS);

      // Reference: every execution re-analyzes and re-executes from
      // scratch (fresh analyzer, fresh executor, fresh HOIST cache).
      analysis::HybridAnalyzer A(B.usr(), B.prog(), optsFor(L));
      analysis::LoopPlan Plan = A.analyze(*L);
      rt::Executor Ex(B.prog(), B.usr());
      rt::HoistCache Hoist;
      rt::ExecStats Rs = Ex.runPlanned(Plan, MR, BR, RefPool, &Hoist);

      expectStatsEq(St, Rs, L->getLabel().c_str());
      expectMemoryEq(MS, MR, L->getLabel().c_str());
      // Scalars the executions may update must agree too.
      EXPECT_EQ(BS.scalar(BB.Sym.symbol("s")), BR.scalar(BB.Sym.symbol("s")));
      EXPECT_EQ(BS.scalar(BB.Sym.symbol("N")), BR.scalar(BB.Sym.symbol("N")));
    }
  }
  EXPECT_EQ(S.numPreparedLoops(), 4u);
  EXPECT_GT(S.numCompiledPreds(), 0u);
}

TEST_F(SessionFixture, SteadyStateSkipsFrameRebindsAndStaysExact) {
  session::SessionOptions SO;
  SO.Threads = 1;
  session::Session S(B.prog(), B.usr(), SO);

  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(7);
  mutate(R, BS, BR, MS, MR, true);

  // Execution 1 binds every stage frame; 2..N with untouched bindings
  // must skip every re-bind and still match a fresh executor bit-for-bit.
  rt::ExecStats First = S.run(*Blocks, MS, BS);
  EXPECT_GT(First.FrameBinds, 0u);
  ThreadPool RefPool(1);
  {
    analysis::HybridAnalyzer A(B.usr(), B.prog(), optsFor(Blocks));
    analysis::LoopPlan Plan = A.analyze(*Blocks);
    rt::Executor Ex(B.prog(), B.usr());
    Ex.runPlanned(Plan, MR, BR, RefPool);
  }
  for (int E = 0; E < 5; ++E) {
    rt::ExecStats St = S.run(*Blocks, MS, BS);
    EXPECT_EQ(St.FrameBinds, 0u);
    EXPECT_GT(St.FrameRebindsSkipped, 0u);
    analysis::HybridAnalyzer A(B.usr(), B.prog(), optsFor(Blocks));
    analysis::LoopPlan Plan = A.analyze(*Blocks);
    rt::Executor Ex(B.prog(), B.usr());
    Ex.runPlanned(Plan, MR, BR, RefPool);
    expectMemoryEq(MS, MR, "steady state");
  }

  // Mutating the bindings must force a full re-bind (and stay exact).
  BS.setScalar(BB.Sym.symbol("s"), 2);
  BR.setScalar(BB.Sym.symbol("s"), 2);
  rt::ExecStats Rebound = S.run(*Blocks, MS, BS);
  EXPECT_GT(Rebound.FrameBinds, 0u);
}

TEST_F(SessionFixture, MultiThreadedCascadeThroughSessionMatchesReference) {
  // N large enough that the root LoopAll range clears the
  // MinParallelIters * numThreads threshold of the chunked parallel
  // and-reduction (4096 * 4), so parallelAllOf really runs fanned out.
  N = 20000;
  const unsigned Threads = 4;
  session::SessionOptions SO;
  SO.Threads = Threads;
  session::Session S(B.prog(), B.usr(), SO);

  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(42);
  mutate(R, BS, BR, MS, MR, true);
  // Force the monotone dataset so the O(N) predicate passes and the loop
  // runs parallel through the session on every execution.
  sym::ArrayBinding A;
  A.Lo = 1;
  for (int64_t K = 0; K < N; ++K)
    A.Vals.push_back(1 + K * 4);
  BS.setArray(IB, A);
  BR.setArray(IB, A);

  ThreadPool RefPool(Threads);
  for (int E = 0; E < 3; ++E) {
    rt::ExecStats St = S.run(*Blocks, MS, BS);
    EXPECT_TRUE(St.RanParallel);
    EXPECT_FALSE(St.UsedTLS);
    analysis::HybridAnalyzer An(B.usr(), B.prog(), optsFor(Blocks));
    analysis::LoopPlan Plan = An.analyze(*Blocks);
    rt::Executor Ex(B.prog(), B.usr());
    rt::ExecStats Rs = Ex.runPlanned(Plan, MR, BR, RefPool);
    expectStatsEq(St, Rs, "parallel blocks");
    expectMemoryEq(MS, MR, "parallel blocks");
  }
}

TEST_F(SessionFixture, RunPreparedRefusesUnknownLoops) {
  // The serve layer's "unknown loop id" error path: runPrepared must
  // refuse (and leave the plan cache untouched) rather than silently
  // analyzing — analysis would mutate the shared contexts, which the
  // concurrent serving contract forbids outside warm-up.
  session::SessionOptions SO;
  SO.Threads = 1;
  session::Session S(B.prog(), B.usr(), SO);
  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(11);
  mutate(R, BS, BR, MS, MR, true);

  EXPECT_FALSE(S.isPrepared(*Strided));
  EXPECT_EQ(S.runPrepared(*Strided, MS, BS), std::nullopt);
  EXPECT_EQ(S.numPreparedLoops(), 0u);
  EXPECT_EQ(S.findPreparedLoop("strided"), nullptr);

  S.prepare(*Strided, optsFor(Strided));
  EXPECT_TRUE(S.isPrepared(*Strided));
  EXPECT_EQ(S.findPreparedLoop("strided"), Strided);
  auto St = S.runPrepared(*Strided, MS, BS);
  ASSERT_TRUE(St.has_value());
  // Parity with the auto-preparing run() path.
  session::Session S2(B.prog(), B.usr(), SO);
  rt::ExecStats Rs = S2.run(*Strided, MR, BR);
  expectStatsEq(*St, Rs, "runPrepared");
  expectMemoryEq(MS, MR, "runPrepared");
  // Other loops remain unknown.
  EXPECT_EQ(S.runPrepared(*Blocks, MS, BS), std::nullopt);
}

TEST_F(SessionFixture, RunBatchRebindingBetweenElementsStaysExact) {
  // The batch error path beyond the pinned happy path: a caller that
  // rebinds data between batch elements (the per-request refresh shape)
  // must invalidate the pooled frames (stamp mismatch -> full re-bind)
  // and stay bit-identical to a fresh analyzer+executor per element.
  session::SessionOptions SO;
  SO.Threads = 2;
  session::Session S(B.prog(), B.usr(), SO);
  S.prepare(*Blocks, optsFor(Blocks));

  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(21);
  mutate(R, BS, BR, MS, MR, true);

  auto rebind = [&](unsigned E, sym::Bindings &Bd) {
    // Alternate between passing (monotone, gaps >= 4) and failing
    // (overlapping) datasets for the O(N) monotonicity predicate.
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t K = 0; K < N; ++K)
      A.Vals.push_back(E % 2 == 0 ? 1 + K * 4 : 1 + K * 2);
    Bd.setArray(IB, A);
  };

  auto Stats = S.runBatch(
      *Blocks, MS, BS, 6,
      [&](unsigned E, rt::Memory &, sym::Bindings &Bd) { rebind(E, Bd); });
  ASSERT_EQ(Stats.size(), 6u);

  ThreadPool RefPool(2);
  for (unsigned E = 0; E < 6; ++E) {
    rebind(E, BR);
    analysis::HybridAnalyzer A(B.usr(), B.prog(), optsFor(Blocks));
    analysis::LoopPlan Plan = A.analyze(*Blocks);
    rt::Executor Ex(B.prog(), B.usr());
    rt::ExecStats Rs = Ex.runPlanned(Plan, MR, BR, RefPool);
    expectStatsEq(Stats[E], Rs, "rebinding batch");
    // Every element re-bound: the mutation bumped the bindings stamp, so
    // no element may serve stale frame contents.
    EXPECT_GT(Stats[E].FrameBinds, 0u) << "element " << E;
  }
  expectMemoryEq(MS, MR, "rebinding batch");

  // Degenerate batches: zero repeats execute nothing.
  EXPECT_TRUE(S.runBatch(*Blocks, MS, BS, 0).empty());
  EXPECT_EQ(S.prepare(*Blocks).Executions, 6u);
}

TEST_F(SessionFixture, RunBatchReportsEveryExecution) {
  session::SessionOptions SO;
  SO.Threads = 2;
  session::Session S(B.prog(), B.usr(), SO);
  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(3);
  mutate(R, BS, BR, MS, MR, true);

  auto Stats = S.runBatch(*Strided, MS, BS, 5);
  ASSERT_EQ(Stats.size(), 5u);
  EXPECT_EQ(S.prepare(*Strided).Executions, 5u);
  // Batch executions after the first reuse the pooled frames.
  for (size_t E = 1; E < Stats.size(); ++E)
    EXPECT_GT(Stats[E].FrameRebindsSkipped, 0u);

  ThreadPool RefPool(2);
  for (int E = 0; E < 5; ++E) {
    analysis::HybridAnalyzer A(B.usr(), B.prog(), optsFor(Strided));
    analysis::LoopPlan Plan = A.analyze(*Strided);
    rt::Executor Ex(B.prog(), B.usr());
    Ex.runPlanned(Plan, MR, BR, RefPool);
  }
  expectMemoryEq(MS, MR, "batch");
}

TEST_F(SessionFixture, InterpreterPathSessionIsExactOracle) {
  // A session on the reference tree-interpreter path must agree with the
  // compiled-cascade session on every dataset (the A/B harness contract).
  session::SessionOptions SO;
  SO.Threads = 2;
  session::Session SC(B.prog(), B.usr(), SO);
  SO.UseCompiledPredicates = false;
  session::Session SI(B.prog(), B.usr(), SO);

  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(99);
  for (int E = 0; E < 6; ++E) {
    mutate(R, BS, BR, MS, MR, E == 0);
    for (ir::DoLoop *L : {Strided, Blocks, Reduce}) {
      rt::ExecStats A = SC.run(*L, MS, BS);
      rt::ExecStats I = SI.run(*L, MR, BR);
      // (CascadeDepthUsed is excluded: the compiled path re-orders
      // same-outcome stages cheapest-first, the interpreter keeps
      // cascade order.)
      EXPECT_EQ(A.RanParallel, I.RanParallel) << L->getLabel();
      EXPECT_EQ(A.UsedTLS, I.UsedTLS) << L->getLabel();
      EXPECT_EQ(A.TLSSucceeded, I.TLSSucceeded) << L->getLabel();
      expectMemoryEq(MS, MR, L->getLabel().c_str());
      EXPECT_EQ(I.CompiledPredEvals, 0u) << "oracle ran compiled stages";
      EXPECT_EQ(A.InterpPredEvals, 0u) << "session fell back to interp";
    }
  }
}

TEST_F(SessionFixture, CompiledUSREngineMatchesInterpreterSessions) {
  // HOIST-USR answers must be identical with the compiled interval-run
  // USR engine on and off: same Memory bits, same exact-test outcomes,
  // and the governor-counted compiled/interpreted USR split symmetric
  // (both sessions see the same dataset sequence, so their HOIST caches
  // miss on exactly the same executions).
  session::SessionOptions SO;
  SO.Threads = 2;
  session::Session SC(B.prog(), B.usr(), SO); // Compiled interval runs.
  SO.UseCompiledUSRs = false;
  session::Session SI(B.prog(), B.usr(), SO); // Interpreter exact tests.
  SC.prepare(*Irregular, optsFor(Irregular));
  SI.prepare(*Irregular, optsFor(Irregular));
  EXPECT_GT(SC.numCompiledUSRs(), 0u); // Plan-time warmup lowered them.
  EXPECT_EQ(SI.numCompiledUSRs(), 0u);

  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(1234);
  uint64_t CompiledEvals = 0, InterpEvals = 0;
  for (int E = 0; E < 8; ++E) {
    mutate(R, BS, BR, MS, MR, E == 0);
    rt::ExecStats A = SC.run(*Irregular, MS, BS);
    rt::ExecStats I = SI.run(*Irregular, MR, BR);
    EXPECT_EQ(A.UsedExactTest, I.UsedExactTest);
    EXPECT_EQ(A.RanParallel, I.RanParallel);
    EXPECT_EQ(A.UsedTLS, I.UsedTLS);
    expectMemoryEq(MS, MR, "hoist-usr A/B");
    EXPECT_EQ(A.InterpUSREvals, 0u) << "compiled session fell back";
    EXPECT_EQ(I.CompiledUSREvals, 0u) << "oracle ran the compiled engine";
    CompiledEvals += A.CompiledUSREvals;
    InterpEvals += I.InterpUSREvals;
  }
  EXPECT_GT(CompiledEvals, 0u);
  EXPECT_EQ(CompiledEvals, InterpEvals);
}

TEST_F(SessionFixture, DuplicatePreparedLabelThrows) {
  // Labels are the serving layer's loop ids; a second prepared loop with
  // the same label would shadow the first in findPreparedLoop and every
  // label-routed request. prepare() must fail loudly instead.
  session::Session S(B.prog(), B.usr());
  S.prepare(*Strided, optsFor(Strided));

  ir::DoLoop *Dup = BB.loop("strided", "i", BB.c(1), BB.s("N"), 1);
  Dup->append(
      BB.reduce(XR, BB.Sym.arrayRef(Q, BB.sv(BB.Sym.symbol("i", 1)))));
  EXPECT_THROW(S.prepare(*Dup), std::invalid_argument);
  EXPECT_THROW(S.prepare(*Dup, optsFor(Dup)), std::invalid_argument);
  EXPECT_FALSE(S.isPrepared(*Dup));

  // Re-preparing the SAME loop under its own label stays legal, and the
  // label still resolves to the original loop.
  EXPECT_NO_THROW(S.prepare(*Strided, optsFor(Strided)));
  EXPECT_EQ(S.findPreparedLoop("strided"), Strided);
}

TEST_F(SessionFixture, RePrepareRetiresOldPlanUntilNextExclusivePhase) {
  // The deferred-reclaim lifetime contract (see Session.h): a re-prepare
  // retires the old PreparedLoop instead of destroying it, so references
  // returned by the earlier prepare() survive the re-prepare itself.
  session::Session S(B.prog(), B.usr());
  const session::PreparedLoop &P1 = S.prepare(*Strided, optsFor(Strided));
  const analysis::LoopPlan *OldPlan = &P1.Plan;

  const session::PreparedLoop &P2 = S.prepare(*Strided, optsFor(Strided));
  EXPECT_NE(&P2, &P1); // Fresh plan; the old one retired, not recycled.
  EXPECT_EQ(S.numRetiredPlans(), 1u);
  // The retired plan is still alive and readable through the old
  // reference (before the fix this was a use-after-free).
  EXPECT_EQ(OldPlan->Loop, Strided);

  // The next exclusive phase sweeps it (nothing is in flight).
  S.prepare(*Blocks, optsFor(Blocks));
  EXPECT_EQ(S.numRetiredPlans(), 0u);

  // invalidate() retires the same way: the plan survives the call that
  // dropped it and disappears at the next exclusive phase.
  const session::PreparedLoop &P3 = S.prepare(*Strided, optsFor(Strided));
  const analysis::LoopPlan *DroppedPlan = &P3.Plan;
  S.invalidate(*Strided); // Sweeps P2's retired plan, then retires P3's.
  EXPECT_FALSE(S.isPrepared(*Strided));
  EXPECT_EQ(S.numRetiredPlans(), 1u);
  EXPECT_EQ(DroppedPlan->Loop, Strided);
  S.invalidate(*Blocks); // Sweeps P3's plan, retires the Blocks plan.
  EXPECT_EQ(S.numRetiredPlans(), 1u);

  // The session still executes correctly against re-prepared plans.
  S.prepare(*Strided, optsFor(Strided));
  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  Rng R(11);
  mutate(R, BS, BR, MS, MR, true);
  std::optional<rt::ExecStats> St = S.runPrepared(*Strided, MS, BS);
  ASSERT_TRUE(St.has_value());
  ThreadPool RefPool(2);
  analysis::HybridAnalyzer A(B.usr(), B.prog(), optsFor(Strided));
  analysis::LoopPlan Plan = A.analyze(*Strided);
  rt::Executor Ex(B.prog(), B.usr());
  rt::ExecStats Rs = Ex.runPlanned(Plan, MR, BR, RefPool);
  expectStatsEq(*St, Rs, "post-retire");
  expectMemoryEq(MS, MR, "post-retire");
}

TEST(SessionHoistCacheTest, VerifiedHitsStayCorrectAcrossDatasets) {
  // The HOIST-USR cache must serve hits only for identical relevant
  // inputs (verified, collision-safe) and re-evaluate otherwise:
  // alternating datasets through one session must match a fresh analysis
  // + executor every time.
  suite::Benchmark B;
  suite::BenchBuilder BB(B);
  const int64_t N = 64;
  sym::SymbolId XI = BB.dataArray("XI", BB.Sym.mulConst(BB.s("N"), 4));
  sym::SymbolId IDX = BB.indexArray("IDX");
  sym::SymbolId JDX = BB.indexArray("JDX");
  ir::DoLoop *L =
      suite::makeIrregularLoop(BB, "irr", "i", XI, IDX, JDX, BB.s("N"), 0);

  analysis::AnalyzerOptions Opts;
  Opts.HoistableContext = true;
  session::SessionOptions SO;
  SO.Threads = 2;
  session::Session S(B.prog(), B.usr(), SO);
  S.prepare(*L, Opts);

  auto dataset = [&](int Which, sym::Bindings &Bd) {
    sym::ArrayBinding AI, AJ;
    AI.Lo = AJ.Lo = 1;
    for (int64_t K = 0; K < N; ++K) {
      AI.Vals.push_back(K);
      AJ.Vals.push_back(Which == 0 ? N + K : 2 * N + K);
    }
    Bd.setScalar(BB.Sym.symbol("N"), N);
    Bd.setArray(IDX, AI);
    Bd.setArray(JDX, AJ);
  };

  ThreadPool RefPool(2);
  rt::Memory MS, MR;
  sym::Bindings BS, BR;
  for (rt::Memory *M : {&MS, &MR})
    M->alloc(XI, static_cast<size_t>(4 * N));
  size_t SizeAfterBothDatasets = 0;
  for (int E = 0; E < 6; ++E) {
    dataset(E % 2, BS);
    dataset(E % 2, BR);
    rt::ExecStats St = S.run(*L, MS, BS);
    EXPECT_TRUE(St.UsedExactTest);
    analysis::HybridAnalyzer A(B.usr(), B.prog(), Opts);
    analysis::LoopPlan Plan = A.analyze(*L);
    rt::Executor Ex(B.prog(), B.usr());
    rt::HoistCache Fresh;
    rt::ExecStats Rs = Ex.runPlanned(Plan, MR, BR, RefPool, &Fresh);
    expectStatsEq(St, Rs, "hoist");
    expectMemoryEq(MS, MR, "hoist");
    if (E == 1)
      SizeAfterBothDatasets = S.hoistCache().size();
  }
  // Repeats of the two datasets are pure hits: no new entries, and the
  // verification hash never fired (no collisions).
  EXPECT_GT(S.hoistCache().size(), 0u);
  EXPECT_EQ(S.hoistCache().size(), SizeAfterBothDatasets);
  EXPECT_EQ(S.hoistCache().collisions(), 0u);
}

TEST_F(SessionFixture, RunPreparedShedsPreFiredTokensWithoutSideEffects) {
  // A token that fired before the execution starts must shed it
  // entirely: no Executions bump, no memory mutation, and an ExecStats
  // record carrying the abort reason (never an exception or garbage
  // classification).
  session::SessionOptions SO;
  SO.Threads = 1;
  session::Session S(B.prog(), B.usr(), SO);
  const session::PreparedLoop &PL = S.prepare(*Strided, optsFor(Strided));

  rt::Memory MS, MR; // MR = untouched twin of MS.
  sym::Bindings BS, BR;
  Rng R(42);
  mutate(R, BS, BR, MS, MR, true);
  const uint64_t Before = PL.Executions.load();

  support::CancelToken Cancelled;
  Cancelled.cancel();
  std::optional<rt::ExecStats> StC =
      S.runPrepared(*Strided, MS, BS, &Cancelled);
  ASSERT_TRUE(StC.has_value());
  EXPECT_EQ(StC->Aborted, rt::ExecStats::AbortReason::Cancelled);

  support::CancelToken Expired(std::chrono::steady_clock::now() -
                               std::chrono::milliseconds(1));
  std::optional<rt::ExecStats> StE =
      S.runPrepared(*Strided, MS, BS, &Expired);
  ASSERT_TRUE(StE.has_value());
  EXPECT_EQ(StE->Aborted, rt::ExecStats::AbortReason::Expired);

  // Neither shed execution counted or wrote anything.
  EXPECT_EQ(PL.Executions.load(), Before);
  expectMemoryEq(MS, MR, "shed executions must not touch memory");

  // A live token runs normally and counts.
  support::CancelToken Live;
  std::optional<rt::ExecStats> StL = S.runPrepared(*Strided, MS, BS, &Live);
  ASSERT_TRUE(StL.has_value());
  EXPECT_EQ(StL->Aborted, rt::ExecStats::AbortReason::None);
  EXPECT_EQ(PL.Executions.load(), Before + 1);
}

} // namespace
