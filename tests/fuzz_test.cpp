//===- tests/fuzz_test.cpp - Fuzz subsystem unit tests --------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Covers the pieces of src/fuzz/ individually — generator determinism, the
// brute-force dependence oracle against hand-built loops, the minimizer's
// convergence — plus the front-door and resource-guard hardening the fuzzer
// pins: directed hostile inputs per diagnostic code, lowering-guard
// demotions, and the fuzzer-found extended-reduction soundness fix.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "fuzz/Minimize.h"
#include "fuzz/Oracle.h"
#include "ir/Validate.h"
#include "pdag/PredCompile.h"
#include "rt/CompiledCascade.h"
#include "rt/Interp.h"
#include "session/Session.h"
#include "support/Error.h"
#include "usr/USRCompile.h"
#include "usr/USREval.h"

#include <gtest/gtest.h>

using namespace halo;

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenerator, DeterministicDumps) {
  for (uint64_t Seed : {1ull, 17ull, 4242ull}) {
    fuzz::GenOptions O;
    O.Seed = Seed;
    auto A = fuzz::generate(O);
    auto B = fuzz::generate(O);
    EXPECT_EQ(A->dump(), B->dump()) << "seed " << Seed;
    EXPECT_NE(A->Loop, nullptr);
    EXPECT_GT(A->NumSlots, 0u);
  }
}

TEST(FuzzGenerator, DistinctSeedsDiffer) {
  fuzz::GenOptions A, B;
  A.Seed = 1;
  B.Seed = 2;
  EXPECT_NE(fuzz::generate(A)->dump(), fuzz::generate(B)->dump());
}

TEST(FuzzGenerator, DropMaskPreservesSurvivingSlots) {
  // Dropping a slot must not perturb the other slots' RNG draws: the
  // dropped case's dump differs only by the removed statements, which we
  // check coarsely via determinism of the masked recipe itself plus the
  // hostile note & plan lines being identical.
  fuzz::GenOptions O;
  O.Seed = 9;
  auto Full = fuzz::generate(O);
  fuzz::GenOptions M = O;
  M.Drop = {1};
  auto A = fuzz::generate(M);
  auto B = fuzz::generate(M);
  EXPECT_EQ(A->dump(), B->dump());
  EXPECT_EQ(Full->NumSlots, A->NumSlots);
  // Data plans (arrays, index contents, scalars) are drawn before slots,
  // so they must be byte-identical between masked and unmasked cases.
  EXPECT_EQ(Full->DataArrays.size(), A->DataArrays.size());
  for (size_t I = 0; I < Full->DataArrays.size(); ++I)
    EXPECT_EQ(Full->DataArrays[I].Elems, A->DataArrays[I].Elems);
  EXPECT_EQ(Full->Scalars.size(), A->Scalars.size());
}

TEST(FuzzGenerator, BenignCasesPassValidation) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    fuzz::GenOptions O;
    O.Seed = Seed;
    O.BodyStmts = 4;
    O.Trip = 24;
    auto C = fuzz::generate(O);
    rt::Memory M;
    sym::Bindings B;
    C->bind(M, B);
    std::vector<support::Diag> Ds = ir::collectLoopDiags(C->prog(), *C->Loop);
    EXPECT_TRUE(Ds.empty()) << "seed " << Seed << ": " << Ds.front().Message;
    if (Ds.empty()) {
      std::vector<support::Diag> In =
          ir::collectInputDiags(C->prog(), *C->Loop, B);
      EXPECT_TRUE(In.empty())
          << "seed " << Seed << ": " << In.front().Message;
    }
  }
}

//===----------------------------------------------------------------------===//
// Brute-force dependence oracle on known loops
//===----------------------------------------------------------------------===//

namespace {

/// Minimal hand-built program: one array A of 128 doubles, loop i=1..32.
struct TinyLoop {
  sym::Context Sym;
  pdag::PredContext Pred{Sym};
  usr::USRContext Usr{Sym, Pred};
  ir::Program Prog{Sym, Pred};
  ir::Subroutine *Main = Prog.makeSubroutine("main");
  sym::SymbolId A = Sym.symbol("A", 0, /*IsArray=*/true);
  sym::SymbolId I = Sym.symbol("i", 1);
  ir::DoLoop *Loop = nullptr;

  TinyLoop() {
    Main->declareArray(ir::ArrayDecl{A, Sym.intConst(128), false});
    Loop = Prog.make<ir::DoLoop>("t", I, Sym.intConst(1), Sym.intConst(32),
                                 1);
  }
  const sym::Expr *i() { return Sym.symRef(I); }
};

} // namespace

TEST(FuzzOracle, TraceStaticParLoop) {
  TinyLoop T;
  // A[i-1] = f(A[i+31]) : reads and writes never overlap (0..31 vs 32..63).
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.Sym.addConst(T.i(), -1)},
      std::vector<ir::ArrayAccess>{
          ir::ArrayAccess{T.A, T.Sym.addConst(T.i(), 31)}},
      false, 0));
  sym::Bindings B;
  fuzz::TraceResult R = fuzz::traceLoop(T.Prog, *T.Loop, B);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Iters.size(), 32u);
  EXPECT_TRUE(fuzz::flowIndependent(R, T.A));
  EXPECT_TRUE(fuzz::outputIndependent(R, T.A));
  EXPECT_FALSE(fuzz::privatizable(R, T.A)); // Exposed reads exist.
}

TEST(FuzzOracle, TraceSeqChainLoop) {
  TinyLoop T;
  // A[i] = f(A[i-1]) : loop-carried flow dependence.
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.i()},
      std::vector<ir::ArrayAccess>{
          ir::ArrayAccess{T.A, T.Sym.addConst(T.i(), -1)}},
      false, 0));
  sym::Bindings B;
  fuzz::TraceResult R = fuzz::traceLoop(T.Prog, *T.Loop, B);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(fuzz::flowIndependent(R, T.A));
  EXPECT_TRUE(fuzz::outputIndependent(R, T.A));
}

TEST(FuzzOracle, TraceOutputDependence) {
  TinyLoop T;
  // A[0] = f() every iteration: output dependence, no exposed reads.
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.Sym.intConst(0)},
      std::vector<ir::ArrayAccess>{}, false, 0));
  sym::Bindings B;
  fuzz::TraceResult R = fuzz::traceLoop(T.Prog, *T.Loop, B);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(fuzz::outputIndependent(R, T.A));
  EXPECT_TRUE(fuzz::privatizable(R, T.A));
  // The overwritten location is rewritten by the last iteration, so the
  // static-last-value transform is valid.
  EXPECT_TRUE(fuzz::slvValid(R, T.A));
}

TEST(FuzzOracle, TraceReductionProperties) {
  TinyLoop T;
  // A[i] += f(): injective reduction, no ordinary accesses.
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.i()}, std::vector<ir::ArrayAccess>{}, true,
      0));
  sym::Bindings B;
  fuzz::TraceResult R = fuzz::traceLoop(T.Prog, *T.Loop, B);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(fuzz::redInjective(R, T.A));
  EXPECT_TRUE(fuzz::extRedSeparated(R, T.A));

  // A[0] += f(): every iteration updates one element — not injective, but
  // still separated from (absent) ordinary accesses.
  TinyLoop T2;
  T2.Loop->append(T2.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T2.A, T2.Sym.intConst(0)},
      std::vector<ir::ArrayAccess>{}, true, 0));
  sym::Bindings B2;
  fuzz::TraceResult R2 = fuzz::traceLoop(T2.Prog, *T2.Loop, B2);
  ASSERT_TRUE(R2.Ok);
  EXPECT_FALSE(fuzz::redInjective(R2, T2.A));
  EXPECT_TRUE(fuzz::extRedSeparated(R2, T2.A));
}

TEST(FuzzOracle, BenignSweepIsClean) {
  // End-to-end oracle over a small deterministic sweep. Any soundness or
  // parity finding here is a real engine bug.
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    fuzz::GenOptions O;
    O.Seed = Seed;
    O.BodyStmts = 4;
    O.Trip = 24;
    auto C = fuzz::generate(O);
    fuzz::OracleOptions OO;
    OO.Threads = 2;
    fuzz::OracleResult R = fuzz::checkCase(*C, OO);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << " kind " << R.failureKind()
                        << ": "
                        << (R.Soundness.empty()
                                ? (R.Parity.empty() ? R.Other.front()
                                                    : R.Parity.front())
                                : R.Soundness.front());
  }
}

//===----------------------------------------------------------------------===//
// The fuzzer-found extended-reduction hole (now fixed)
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, ReadOfReducedElementIsTested) {
  // A[i] += f(); B[i] = f(A[i+1]) — the only dependence is the read of
  // A[i+1] observing iteration i+1's partial accumulation. The analyzer
  // used to test only ordinary *writes* against reduction locations
  // (and skipped the test entirely when, as here, there are none), so it
  // declared the loop parallel; found by halo_fuzz (corpus seed 22).
  sym::Context Sym;
  pdag::PredContext Pred{Sym};
  usr::USRContext Usr{Sym, Pred};
  ir::Program Prog{Sym, Pred};
  ir::Subroutine *Main = Prog.makeSubroutine("main");
  sym::SymbolId A = Sym.symbol("A", 0, true);
  sym::SymbolId Bb = Sym.symbol("B", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  Main->declareArray(ir::ArrayDecl{A, Sym.intConst(64), false});
  Main->declareArray(ir::ArrayDecl{Bb, Sym.intConst(64), false});
  ir::DoLoop *L =
      Prog.make<ir::DoLoop>("x", I, Sym.intConst(1), Sym.intConst(32), 1);
  L->append(Prog.make<ir::AssignStmt>(ir::ArrayAccess{A, Sym.symRef(I)},
                                      std::vector<ir::ArrayAccess>{}, true,
                                      0));
  L->append(Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{Bb, Sym.symRef(I)},
      std::vector<ir::ArrayAccess>{
          ir::ArrayAccess{A, Sym.addConst(Sym.symRef(I), 1)}},
      false, 0));

  analysis::HybridAnalyzer An(Usr, Prog, analysis::AnalyzerOptions());
  analysis::LoopPlan Plan = An.analyze(*L);
  const analysis::ArrayPlan *AP = nullptr;
  for (const analysis::ArrayPlan &P : Plan.Arrays)
    if (P.Array == A)
      AP = &P;
  ASSERT_NE(AP, nullptr);
  ASSERT_TRUE(AP->HasReduction);
  // Regression: the separation test must exist even though A has no
  // ordinary writes (the exposed read alone forces it) ...
  ASSERT_NE(AP->ExtRedUSR, nullptr);
  // ... and must not hold: the read set {i+1 : i in 1..32} intersects the
  // reduction set {i : i in 1..32}.
  sym::Bindings B;
  auto Empty = usr::evalUSREmpty(AP->ExtRedUSR, B);
  ASSERT_TRUE(Empty.has_value());
  EXPECT_FALSE(*Empty);
  for (const pdag::CascadeStage &St : AP->ExtRedFlow.Stages) {
    auto V = pdag::tryEvalPred(St.P, B);
    EXPECT_FALSE(V && *V)
        << "a cascade stage claims read/reduction separation";
  }

  // End to end: parallel execution must still match the sequential
  // interpreter (the failed test forces the sound path).
  rt::Memory MSeq;
  sym::Bindings BSeq;
  MSeq.alloc(A, 64);
  MSeq.alloc(Bb, 64);
  rt::interpSequential(*L, MSeq, BSeq);
  session::SessionOptions SO;
  SO.Threads = 3;
  session::Session S(Prog, Usr, SO);
  rt::Memory MPar;
  sym::Bindings BPar;
  MPar.alloc(A, 64);
  MPar.alloc(Bb, 64);
  S.run(*L, MPar, BPar);
  EXPECT_EQ(MSeq.find(Bb)->at(5), MPar.find(Bb)->at(5));
  for (size_t E = 0; E < 64; ++E) {
    EXPECT_DOUBLE_EQ((*MSeq.find(A))[E], (*MPar.find(A))[E]) << E;
    EXPECT_DOUBLE_EQ((*MSeq.find(Bb))[E], (*MPar.find(Bb))[E]) << E;
  }
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(FuzzMinimize, ConvergesToOneSlot) {
  // Synthetic failure: "slot 3 survives". The minimizer must drop every
  // other slot and keep exactly the culprit.
  fuzz::GenOptions O;
  O.Seed = 5;
  auto Full = fuzz::generate(O);
  ASSERT_GT(Full->NumSlots, 3u);
  auto StillFails = [](fuzz::GeneratedCase &C) {
    const std::vector<unsigned> &D = C.Opts.Drop;
    return std::find(D.begin(), D.end(), 3u) == D.end();
  };
  fuzz::GenOptions Min = fuzz::minimizeCase(O, StillFails);
  EXPECT_EQ(Min.Drop.size(), Full->NumSlots - 1)
      << "all slots but the culprit dropped";
  EXPECT_TRUE(std::find(Min.Drop.begin(), Min.Drop.end(), 3u) ==
              Min.Drop.end());
}

//===----------------------------------------------------------------------===//
// Corpus round trip
//===----------------------------------------------------------------------===//

TEST(FuzzCorpus, RoundTrip) {
  fuzz::CorpusEntry E;
  E.Opts.Seed = 77;
  E.Opts.BodyStmts = 5;
  E.Opts.Trip = 40;
  E.Opts.Drop = {0, 2};
  E.Expect = "clean";
  E.Note = "round trip";
  std::string Text = fuzz::serializeEntry(E);
  std::string Err;
  auto P = fuzz::parseEntry(Text, Err);
  ASSERT_TRUE(P.has_value()) << Err;
  EXPECT_EQ(P->Opts.Seed, 77u);
  EXPECT_EQ(P->Opts.BodyStmts, 5u);
  EXPECT_EQ(P->Opts.Trip, 40);
  EXPECT_EQ(P->Opts.Drop, (std::vector<unsigned>{0, 2}));
  EXPECT_EQ(P->Expect, "clean");
}

TEST(FuzzCorpus, RejectsUnknownKeysAndBadExpect) {
  std::string Err;
  EXPECT_FALSE(fuzz::parseEntry("seed 1\nbogus 2\n", Err).has_value());
  EXPECT_FALSE(fuzz::parseEntry("seed 1\nexpect maybe\n", Err).has_value());
  EXPECT_FALSE(fuzz::parseEntry("body 3\n", Err).has_value()); // No seed.
}

//===----------------------------------------------------------------------===//
// Hostile generation: structured rejection only
//===----------------------------------------------------------------------===//

TEST(FuzzHostile, EveryHostileSeedIsRejected) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    fuzz::GenOptions O;
    O.Seed = Seed;
    O.BodyStmts = 4;
    O.Trip = 24;
    O.Hostile = true;
    auto C = fuzz::generate(O);
    fuzz::OracleOptions OO;
    OO.Threads = 1;
    fuzz::OracleResult R = fuzz::checkCase(*C, OO);
    EXPECT_TRUE(R.ValidationRejected)
        << "seed " << Seed << " slipped through: " << C->HostileNote;
    EXPECT_TRUE(R.ok()) << "seed " << Seed << " (" << C->HostileNote
                        << "): " << R.failureKind();
    EXPECT_FALSE(R.DiagCodes.empty());
  }
}

//===----------------------------------------------------------------------===//
// Lowering resource guards: null compiles, counted demotions
//===----------------------------------------------------------------------===//

namespace {

/// Builds a GE0 predicate over an expression nested past the lowering cap
/// (but under the structural validation cap, so it is a *valid* input that
/// merely must not be compiled).
const pdag::Pred *deepPred(sym::Context &Sym, pdag::PredContext &P) {
  const sym::Expr *E = Sym.symRef(Sym.symbol("d0"));
  for (int I = 0; I < 300; ++I)
    E = Sym.min(Sym.addConst(E, 1), Sym.intConst(1 << 20));
  return P.ge0(E);
}

} // namespace

TEST(FuzzGuards, DeepPredicateCompilesToNull) {
  sym::Context Sym;
  pdag::PredContext P{Sym};
  const pdag::Pred *Deep = deepPred(Sym, P);
  EXPECT_EQ(pdag::CompiledPred::compile(Deep, Sym), nullptr);
  // The reference interpreter still answers.
  sym::Bindings B;
  B.setScalar(Sym.symbol("d0"), 0);
  auto V = pdag::tryEvalPred(Deep, B);
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(*V);
}

TEST(FuzzGuards, CascadeBuildSortsNullStageLast) {
  sym::Context Sym;
  pdag::PredContext P{Sym};
  analysis::TestCascade TC;
  const pdag::Pred *Cheap = P.ge0(Sym.symRef(Sym.symbol("d0")));
  TC.Stages.push_back(pdag::CascadeStage{Cheap, 0});
  TC.Stages.push_back(pdag::CascadeStage{deepPred(Sym, P), 1});
  rt::PredCompileCache Cache(Sym);
  rt::CompiledCascade CC = rt::CompiledCascade::build(TC, Cache);
  ASSERT_EQ(CC.Stages.size(), 2u);
  EXPECT_NE(CC.Stages.front().Code, nullptr);
  EXPECT_EQ(CC.Stages.back().Code, nullptr)
      << "unlowerable stage must sort after every compiled one";
}

TEST(FuzzGuards, USRCacheDemotesDeepSetToInterpreter) {
  sym::Context Sym;
  pdag::PredContext P{Sym};
  usr::USRContext Usr{Sym, P};
  // Nest intersections past the lowering cap (gate, union and subtract
  // chains are all flattened or reassociated by the context's rewrites;
  // intersect chains are not): compile fails, emptiness falls back to the
  // tree-walking evaluator and counts the demotion. Every operand
  // contains offset 3, so the whole chain stays nonempty.
  const usr::USR *S = Usr.leaf(lmad::LMAD::makePoint(Sym.intConst(3)));
  for (int I = 0; I < 300; ++I)
    S = Usr.intersect(
        S, Usr.leaf(lmad::LMAD::makeStrided(
               Sym.intConst(1), Sym.intConst(50 + I), Sym.intConst(0))));
  ASSERT_EQ(usr::CompiledUSR::compile(S, Sym), nullptr);

  rt::PredCompileCache Preds(Sym);
  rt::USRCompileCache Cache(Sym, Preds);
  sym::Bindings B;
  usr::USREvalStats Stats;
  auto V = Cache.emptiness(S, B, nullptr, &Stats);
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(*V); // The gated point {3} is nonempty.
  EXPECT_GE(Stats.GuardDemotions, 1u);
  // Same answer as the reference evaluator.
  sym::Bindings B2;
  auto Ref = usr::evalUSREmpty(S, B2);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_EQ(*V, *Ref);
}

//===----------------------------------------------------------------------===//
// Directed hostile inputs, one per diagnostic code
//===----------------------------------------------------------------------===//

namespace {

/// Expects Session::prepare to reject \p L with the given code.
void expectRejected(ir::Program &Prog, usr::USRContext &Usr,
                    const ir::DoLoop &L, support::Diag::Code C) {
  session::SessionOptions SO;
  SO.Threads = 1;
  session::Session S(Prog, Usr, SO);
  try {
    S.prepare(L);
    FAIL() << "expected ValidationError(" << support::diagCodeName(C)
           << ")";
  } catch (const support::ValidationError &E) {
    EXPECT_TRUE(E.has(C)) << E.what();
  }
}

} // namespace

TEST(FuzzHostileDirected, UndeclaredArray) {
  TinyLoop T;
  sym::SymbolId Ghost = T.Sym.symbol("ghost", 0, true);
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{Ghost, T.i()}, std::vector<ir::ArrayAccess>{}, false,
      0));
  expectRejected(T.Prog, T.Usr, *T.Loop,
                 support::Diag::Code::UndeclaredArray);
}

TEST(FuzzHostileDirected, NonPositiveTrip) {
  TinyLoop T;
  sym::SymbolId J = T.Sym.symbol("j", 2);
  ir::DoLoop *Inner = T.Prog.make<ir::DoLoop>(
      "neg", J, T.Sym.intConst(1), T.Sym.intConst(-3), 2);
  Inner->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.i()}, std::vector<ir::ArrayAccess>{}, false,
      0));
  T.Loop->append(Inner);
  expectRejected(T.Prog, T.Usr, *T.Loop,
                 support::Diag::Code::NonPositiveTrip);
}

TEST(FuzzHostileDirected, OobSubscript) {
  TinyLoop T;
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.Sym.intConst(4096)},
      std::vector<ir::ArrayAccess>{}, false, 0));
  expectRejected(T.Prog, T.Usr, *T.Loop, support::Diag::Code::OobSubscript);
}

TEST(FuzzHostileDirected, DuplicateLoopVar) {
  TinyLoop T;
  ir::DoLoop *Inner = T.Prog.make<ir::DoLoop>(
      "dup", T.I, T.Sym.intConst(1), T.Sym.intConst(4), 2);
  Inner->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.i()}, std::vector<ir::ArrayAccess>{}, false,
      0));
  T.Loop->append(Inner);
  expectRejected(T.Prog, T.Usr, *T.Loop,
                 support::Diag::Code::DuplicateLoopVar);
}

TEST(FuzzHostileDirected, CivIsLoopVar) {
  TinyLoop T;
  T.Loop->append(T.Prog.make<ir::CivIncrStmt>(T.I, T.Sym.intConst(1)));
  expectRejected(T.Prog, T.Usr, *T.Loop, support::Diag::Code::CivIsLoopVar);
}

TEST(FuzzHostileDirected, ExprTooDeep) {
  TinyLoop T;
  const sym::Expr *E = T.i();
  for (int K = 0; K < 1500; ++K)
    E = T.Sym.min(T.Sym.addConst(E, 1), T.Sym.intConst(2));
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, E}, std::vector<ir::ArrayAccess>{}, false, 0));
  expectRejected(T.Prog, T.Usr, *T.Loop, support::Diag::Code::ExprTooDeep);
}

TEST(FuzzHostileDirected, UnboundScalarCaughtByInputGate) {
  // A free scalar passes *structural* validation (bindings are unknown at
  // prepare time) and must be flagged by the input gate instead.
  TinyLoop T;
  sym::SymbolId Ghost = T.Sym.symbol("ghost_s");
  T.Loop->append(T.Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{T.A, T.Sym.add(T.i(), T.Sym.symRef(Ghost))},
      std::vector<ir::ArrayAccess>{}, false, 0));
  EXPECT_TRUE(ir::collectLoopDiags(T.Prog, *T.Loop).empty());
  sym::Bindings B;
  std::vector<support::Diag> In = ir::collectInputDiags(T.Prog, *T.Loop, B);
  ASSERT_FALSE(In.empty());
  EXPECT_EQ(In.front().Kind, support::Diag::Code::UnboundScalar);
}
