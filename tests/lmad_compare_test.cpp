//===- tests/lmad_compare_test.cpp - LMAD predicate extraction tests ------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lmad/LMADCompare.h"
#include "pdag/PredEval.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace halo;
using namespace halo::lmad;
using pdag::Pred;

namespace {

class LmadCompareTest : public ::testing::Test {
protected:
  LmadCompareTest() : P(Sym) {}
  sym::Context Sym;
  pdag::PredContext P;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
};

TEST_F(LmadCompareTest, InterleavedAccessesDisjoint) {
  // Sec. 3.2 example (i): [2]v[99]+0 vs [2]v[99]+1 are interleaved.
  LMAD A = LMAD::makeStrided(c(2), c(99), c(0));
  LMAD B = LMAD::makeStrided(c(2), c(99), c(1));
  EXPECT_TRUE(disjointLMAD1D(P, A, B)->isTrue());
}

TEST_F(LmadCompareTest, DisjointIntervals) {
  // Sec. 3.2 example (ii): [2]v[49]+0 vs [2]v[49]+50.
  LMAD A = LMAD::makeStrided(c(2), c(49), c(0));
  LMAD B = LMAD::makeStrided(c(2), c(49), c(50));
  EXPECT_TRUE(disjointLMAD1D(P, A, B)->isTrue());
}

TEST_F(LmadCompareTest, OverlappingNotProvenDisjoint) {
  LMAD A = LMAD::makeStrided(c(2), c(98), c(0));
  LMAD B = LMAD::makeStrided(c(2), c(98), c(4)); // Same parity: overlaps.
  const Pred *D = disjointLMAD1D(P, A, B);
  EXPECT_TRUE(D->isFalse());
}

TEST_F(LmadCompareTest, SymbolicDisjointnessBecomesPredicate) {
  // [1]v[NS-1]+0 vs [1]v[M-1]+NS: disjoint (intervals touch but do not
  // overlap), provable statically: NS-1 < NS.
  LMAD A = LMAD::makeStrided(c(1), Sym.addConst(s("NS"), -1), c(0));
  LMAD B = LMAD::makeStrided(c(1), Sym.addConst(s("M"), -1), s("NS"));
  EXPECT_TRUE(disjointLMAD1D(P, A, B)->isTrue());
}

TEST_F(LmadCompareTest, SymbolicStrideInterleaveUsesDividesLeaf) {
  // Equal symbolic strides M with offsets 0 and 1: disjoint iff M does not
  // divide 1 (i.e. M != 1) or intervals separate; the gcd path must
  // produce a !(M | 1) leaf.
  LMAD A = LMAD::makeStrided(s("M"), Sym.mul(s("M"), s("k")), c(0));
  LMAD B = LMAD::makeStrided(s("M"), Sym.mul(s("M"), s("k")), c(1));
  const Pred *D = disjointLMAD1D(P, A, B);
  EXPECT_FALSE(D->isFalse());
  sym::Bindings Bind;
  Bind.setScalar(Sym.symbol("M"), 4);
  Bind.setScalar(Sym.symbol("k"), 3);
  EXPECT_TRUE(pdag::evalPred(D, Bind)); // 4 does not divide 1.
  Bind.setScalar(Sym.symbol("M"), 1); // Stride 1: sets truly overlap.
  EXPECT_FALSE(pdag::evalPred(D, Bind));
}

TEST_F(LmadCompareTest, InclusionIntervalCase) {
  // Fig. 4 / Sec. 1.2: [0, NS-1] subset [0, 16NP-1] <== NS <= 16*NP.
  LMAD A = LMAD::makeInterval(Sym, c(0), s("NS"));
  LMAD B = LMAD::makeInterval(Sym, c(0), Sym.mulConst(s("NP"), 16));
  const Pred *I = includedLMAD1D(P, A, B);
  EXPECT_EQ(I, P.le(s("NS"), Sym.mulConst(s("NP"), 16)));
}

TEST_F(LmadCompareTest, InclusionStrideDivisibility) {
  // [4]v[96]+8 subset [2]v[120]+0: strides 2|4, offsets 2|8, bounds ok.
  LMAD A = LMAD::makeStrided(c(4), c(96), c(8));
  LMAD B = LMAD::makeStrided(c(2), c(120), c(0));
  EXPECT_TRUE(includedLMAD1D(P, A, B)->isTrue());
  // Offset parity breaks inclusion: 8+1 = 9 is odd.
  LMAD A2 = LMAD::makeStrided(c(4), c(96), c(9));
  EXPECT_TRUE(includedLMAD1D(P, A2, B)->isFalse());
}

TEST_F(LmadCompareTest, PaperCorrecDo900MultiDim) {
  // Sec. 3.2: [M]v[2M]+j-1+2M vs [1,M]v[j-2,2M]+2M, loop index j in 1..N.
  // The projection path must produce (well-formedness) N <= M style
  // predicates with the inner parts disjoint.
  const sym::Expr *M = s("M"), *J = s("j");
  LMAD C = LMAD::makeStrided(M, Sym.mulConst(M, 2),
                             Sym.add(Sym.addConst(J, -1),
                                     Sym.mulConst(M, 2)));
  LMAD D({Dim{c(1), Sym.addConst(J, -2)}, Dim{M, Sym.mulConst(M, 2)}},
         Sym.mulConst(M, 2));
  const Pred *Pr = disjointLMAD(P, C, D);
  EXPECT_FALSE(Pr->isFalse());
  // Concrete check: j=3, M=10, the sets {12,22,32} and {20,21,30,31,40,41}
  // wait -- D = {0,1} + {0,10,20} + 20 = {20,21,30,31,40,41};
  // C = {2+20, 2+20+10, 2+20+20} = {22,32,42}. Disjoint indeed.
  sym::Bindings B;
  B.setScalar(Sym.symbol("j"), 3);
  B.setScalar(Sym.symbol("M"), 10);
  EXPECT_TRUE(pdag::evalPred(Pr, B));
}

TEST_F(LmadCompareTest, FillsArrayStrideOne) {
  // [1]v[NP*16-1]+0 fills an array of size 16*NP.
  LMAD L = LMAD::makeInterval(Sym, c(0), Sym.mulConst(s("NP"), 16));
  EXPECT_TRUE(fillsArray(P, L, Sym.mulConst(s("NP"), 16))->isTrue());
  // It does not fill a larger array.
  const Pred *Bigger = fillsArray(P, L, Sym.mulConst(s("NP"), 32));
  EXPECT_FALSE(Bigger->isTrue());
}

TEST_F(LmadCompareTest, FillsArrayStridedFails) {
  LMAD L = LMAD::makeStrided(c(2), Sym.mulConst(s("NP"), 16), c(0));
  EXPECT_TRUE(fillsArray(P, L, Sym.mulConst(s("NP"), 8))->isFalse());
}

TEST_F(LmadCompareTest, DenseUnderestimateTiling) {
  // [1,M]v[M-1,M*(K-1)]+t tiles exactly into [1]v[M*K-1]+t.
  const sym::Expr *M = s("M"), *K = s("K");
  LMAD L({Dim{c(1), Sym.addConst(M, -1)},
          Dim{M, Sym.mul(M, Sym.addConst(K, -1))}},
         s("t"));
  CondLMAD U = denseUnderestimate(P, L);
  EXPECT_TRUE(U.Cond->isTrue());
  ASSERT_EQ(U.Descriptor.rank(), 1u);
  EXPECT_EQ(U.Descriptor.dims()[0].Span,
            Sym.addConst(Sym.mul(M, K), -1));
}

TEST_F(LmadCompareTest, DenseUnderestimateConditional) {
  // [1,S]v[E,...]: tiling needs S == E+1; with S,E free the condition is a
  // runtime predicate.
  LMAD L({Dim{c(1), s("E")}, Dim{s("S"), Sym.mul(s("S"), s("n"))}}, c(0));
  CondLMAD U = denseUnderestimate(P, L);
  EXPECT_FALSE(U.Cond->isTrue());
  EXPECT_FALSE(U.Cond->isFalse());
  sym::Bindings B;
  B.setScalar(Sym.symbol("E"), 9);
  B.setScalar(Sym.symbol("S"), 10);
  B.setScalar(Sym.symbol("n"), 3);
  EXPECT_TRUE(pdag::evalPred(U.Cond, B));
  B.setScalar(Sym.symbol("S"), 12); // Gap between tiles.
  EXPECT_FALSE(pdag::evalPred(U.Cond, B));
}

TEST_F(LmadCompareTest, SetLiftsCombine) {
  LMADSet A{LMAD::makeInterval(Sym, c(0), c(10)),
            LMAD::makeInterval(Sym, c(20), c(10))};
  LMADSet B{LMAD::makeInterval(Sym, c(40), c(10))};
  EXPECT_TRUE(disjointSets(P, A, B)->isTrue());
  LMADSet Cover{LMAD::makeInterval(Sym, c(0), c(100))};
  EXPECT_TRUE(includedSets(P, A, Cover)->isTrue());
}

//===----------------------------------------------------------------------===//
// Property tests: predicate true ==> set relation holds (brute force)
//===----------------------------------------------------------------------===//

class LmadSoundnessTest : public ::testing::TestWithParam<uint64_t> {
protected:
  LmadSoundnessTest() : P(Sym) {}
  sym::Context Sym;
  pdag::PredContext P;

  LMAD randomLMAD(Rng &R) {
    int Rank = static_cast<int>(R.nextBelow(3)); // 0..2 dims
    std::vector<Dim> Dims;
    for (int I = 0; I < Rank; ++I) {
      int64_t Stride = R.nextInRange(1, 6);
      int64_t Count = R.nextInRange(1, 5);
      Dims.push_back(Dim{Sym.intConst(Stride),
                         Sym.intConst(Stride * (Count - 1))});
    }
    return LMAD(std::move(Dims), Sym.intConst(R.nextInRange(-8, 8)));
  }

  std::set<int64_t> pointSet(const LMAD &L) {
    sym::Bindings B;
    std::vector<int64_t> Out;
    EXPECT_TRUE(enumerate(L, B, Out));
    return std::set<int64_t>(Out.begin(), Out.end());
  }
};

TEST_P(LmadSoundnessTest, DisjointPredicateIsSound) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 50; ++Trial) {
    LMAD A = randomLMAD(R), B = randomLMAD(R);
    const pdag::Pred *D = disjointLMAD(P, A, B);
    sym::Bindings Bind;
    auto V = pdag::tryEvalPred(D, Bind);
    ASSERT_TRUE(V.has_value());
    if (!*V)
      continue;
    std::set<int64_t> SA = pointSet(A), SB = pointSet(B);
    for (int64_t X : SA)
      EXPECT_FALSE(SB.count(X))
          << "claimed disjoint but share " << X << "\nA=" << A.toString(Sym)
          << "\nB=" << B.toString(Sym);
  }
}

TEST_P(LmadSoundnessTest, IncludedPredicateIsSound) {
  Rng R(GetParam() ^ 0x9999);
  for (int Trial = 0; Trial < 50; ++Trial) {
    LMAD A = randomLMAD(R), B = randomLMAD(R);
    const pdag::Pred *I = includedLMAD(P, A, B);
    sym::Bindings Bind;
    auto V = pdag::tryEvalPred(I, Bind);
    ASSERT_TRUE(V.has_value());
    if (!*V)
      continue;
    std::set<int64_t> SA = pointSet(A), SB = pointSet(B);
    for (int64_t X : SA)
      EXPECT_TRUE(SB.count(X))
          << "claimed included but " << X << " missing\nA="
          << A.toString(Sym) << "\nB=" << B.toString(Sym);
  }
}

TEST_P(LmadSoundnessTest, DisjointPredicateIsUsefulOnSeparatedIntervals) {
  // Anti-vacuity: on genuinely separated intervals the predicate must
  // succeed, not just be sound-by-false.
  Rng R(GetParam() ^ 0x7777);
  for (int Trial = 0; Trial < 20; ++Trial) {
    int64_t Lo1 = R.nextInRange(0, 10), Len1 = R.nextInRange(1, 10);
    int64_t Lo2 = Lo1 + Len1 + R.nextInRange(0, 5), Len2 = R.nextInRange(1, 9);
    LMAD A = LMAD::makeInterval(Sym, Sym.intConst(Lo1), Sym.intConst(Len1));
    LMAD B = LMAD::makeInterval(Sym, Sym.intConst(Lo2), Sym.intConst(Len2));
    EXPECT_TRUE(disjointLMAD(P, A, B)->isTrue());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LmadSoundnessTest,
                         ::testing::Range<uint64_t>(1, 17));

} // namespace
