//===- tests/ablation_test.cpp - Design-choice ablation tests -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Locks in the ablation claims of DESIGN.md Sec. 5: disabling each
// design choice degrades exactly the loops the paper credits it with.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::suite;
using analysis::LoopClass;

namespace {

struct Found {
  Benchmark *B = nullptr;
  const LoopSpec *LS = nullptr;
};

class AblationTest : public ::testing::Test {
protected:
  static std::vector<std::unique_ptr<Benchmark>> &benches() {
    static auto B = buildAllBenchmarks();
    return B;
  }

  Found find(const std::string &Bench, const std::string &Loop) {
    for (auto &B : benches())
      if (B->Name == Bench)
        for (const LoopSpec &LS : B->Loops)
          if (LS.Name == Loop)
            return Found{B.get(), &LS};
    ADD_FAILURE() << "loop not found: " << Bench << " " << Loop;
    return Found{};
  }

  analysis::LoopPlan analyzeWith(Found F, sym::Bindings &Probe,
                                 analysis::AnalyzerOptions Opts) {
    Opts.Probe = &Probe;
    Opts.HoistableContext = F.LS->Hoistable;
    analysis::HybridAnalyzer A(F.B->usr(), F.B->prog(), Opts);
    return A.analyze(*F.LS->Loop);
  }

  sym::Bindings setup(Found F) {
    rt::Memory M;
    sym::Bindings B;
    F.B->Setup(M, B, 1);
    return B;
  }
};

TEST_F(AblationTest, MonotonicityOffLosesIndexArrayOutputTests) {
  // trfd INTGRL_do140 (OI O(N) via MON) degrades without the rule.
  Found F = find("trfd", "INTGRL_do140");
  sym::Bindings B = setup(F);
  analysis::AnalyzerOptions Full, NoMon;
  NoMon.Factor.Monotonicity = false;
  analysis::LoopPlan PFull = analyzeWith(F, B, Full);
  analysis::LoopPlan PNoMon = analyzeWith(F, B, NoMon);
  EXPECT_EQ(PFull.Class, LoopClass::Predicated);
  EXPECT_NE(PNoMon.Class, LoopClass::Predicated);
}

TEST_F(AblationTest, FourierMotzkinOffRemainsSoundViaOverlappingRules) {
  // The framework has overlapping rules: rule (1)'s invariant
  // overestimates eliminate loop indexes by *aggregation*, so the O(1)
  // classifications of these loops survive even with the Fig. 6(b)
  // eliminator disabled (the eliminator's direct value is unit-tested in
  // FourierMotzkinTest.PaperExampleCorrecDo711). What must hold here:
  // disabling FM never changes a sound classification into an unsound
  // one, and the loops stay parallelizable.
  analysis::AnalyzerOptions NoFM;
  NoFM.Factor.FourierMotzkin = false;
  for (auto [Bench, Loop] : {std::pair<const char *, const char *>
                                 {"flo52", "DFLUX_do40"},
                             {"bdna", "CORREC_do711"},
                             {"trfd", "OLDA_do300"}}) {
    Found F = find(Bench, Loop);
    sym::Bindings B = setup(F);
    analysis::LoopPlan P = analyzeWith(F, B, NoFM);
    SCOPED_TRACE(std::string(Bench) + " " + Loop);
    EXPECT_EQ(P.Class, LoopClass::Predicated);
  }
}

TEST_F(AblationTest, RuntimeTestsOffAbandonsPredicateLoops) {
  // The paper's central claim: only the hybrid approach parallelizes
  // these (the commercial-proxy baseline gives them up).
  // All four loops read locations they may also write, so static
  // privatization cannot rescue the baseline (write-only loops like
  // INTGRL_do140 legitimately privatize statically and are not listed).
  for (auto [Bench, Loop] : {std::pair<const char *, const char *>
                                 {"dyfesm", "SOLVH_do20"},
                             {"arc2d", "XPENT2_do11"},
                             {"ocean", "FTRVMT_do109"},
                             {"wupwise", "MULDEO_do100"}}) {
    Found F = find(Bench, Loop);
    sym::Bindings B = setup(F);
    analysis::AnalyzerOptions Full, NoRT;
    NoRT.RuntimeTests = false;
    analysis::LoopPlan PFull = analyzeWith(F, B, Full);
    analysis::LoopPlan PNoRT = analyzeWith(F, B, NoRT);
    SCOPED_TRACE(std::string(Bench) + " " + Loop);
    EXPECT_EQ(PFull.Class, LoopClass::Predicated);
    EXPECT_NE(PNoRT.Class, LoopClass::Predicated);
    EXPECT_NE(PNoRT.Class, LoopClass::StaticPar);
  }
}

TEST_F(AblationTest, RuntimeTestsOffKeepsStaticLoops) {
  for (auto [Bench, Loop] : {std::pair<const char *, const char *>
                                 {"mdg", "INTERF_do1000"},
                             {"swim", "SHALOW_do3500"}}) {
    Found F = find(Bench, Loop);
    sym::Bindings B = setup(F);
    analysis::AnalyzerOptions NoRT;
    NoRT.RuntimeTests = false;
    analysis::LoopPlan P = analyzeWith(F, B, NoRT);
    SCOPED_TRACE(std::string(Bench) + " " + Loop);
    EXPECT_EQ(P.Class, LoopClass::StaticPar);
  }
}

TEST_F(AblationTest, CivLoopsDependOnCivSupport) {
  // track EXTEND_do400 is parallel only through CIV aggregation; the
  // static baseline cannot touch it.
  Found F = find("track", "EXTEND_do400");
  sym::Bindings B = setup(F);
  analysis::AnalyzerOptions Full, NoRT;
  NoRT.RuntimeTests = false;
  analysis::LoopPlan PFull = analyzeWith(F, B, Full);
  EXPECT_EQ(PFull.Class, LoopClass::Predicated);
  EXPECT_TRUE(PFull.Techniques.count(analysis::Technique::CivAgg));
  EXPECT_FALSE(PFull.Civ.Envelopes.empty());
}

} // namespace
