//===- tests/factor_test.cpp - Factorization algorithm tests --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Recomputes the paper's worked examples (Fig. 4, Fig. 3) and checks the
// soundness invariant F(S) ==> S = empty.
//
//===----------------------------------------------------------------------===//

#include "factor/Factor.h"
#include "pdag/PredEval.h"
#include "pdag/PredSimplify.h"
#include "usr/USREval.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::factor;
using namespace halo::usr;
using pdag::Pred;

namespace {

class FactorTest : public ::testing::Test {
protected:
  FactorTest() : P(Sym), U(Sym, P), F(U) {}
  sym::Context Sym;
  pdag::PredContext P;
  USRContext U;
  Factorizer F;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }

  bool holds(const Pred *Pr, sym::Bindings &B) {
    auto V = pdag::tryEvalPred(Pr, B);
    return V.value_or(false);
  }
};

TEST_F(FactorTest, EmptyIsTriviallyTrue) {
  EXPECT_TRUE(F.factor(U.empty())->isTrue());
}

TEST_F(FactorTest, PointLeafIsNeverEmpty) {
  EXPECT_TRUE(F.factor(U.leaf(lmad::LMAD::makePoint(c(3))))->isFalse());
}

TEST_F(FactorTest, SymbolicIntervalEmptyWhenLengthNonPositive) {
  // [0 .. NS-1] is empty iff NS <= 0.
  const Pred *Pr = F.factor(U.interval(c(0), s("NS")));
  EXPECT_EQ(Pr, P.le(s("NS"), c(0)));
}

TEST_F(FactorTest, SubtractionUsesInclusion) {
  // Fig. 4, term S1: [0,NS-1] - [0,16NP-1] empty <== NS <= 16*NP
  // (or the minuend itself empty: NS <= 0, subsumed by NS <= 16NP when
  // NP >= 0; both disjuncts may appear).
  const USR *S = U.subtract(U.interval(c(0), s("NS")),
                            U.interval(c(0), Sym.mulConst(s("NP"), 16)));
  const Pred *Pr = F.factor(S);
  sym::Bindings B;
  B.setScalar(Sym.symbol("NS"), 16);
  B.setScalar(Sym.symbol("NP"), 1);
  EXPECT_TRUE(holds(Pr, B)); // 16 <= 16.
  B.setScalar(Sym.symbol("NS"), 17);
  EXPECT_FALSE(holds(Pr, B)); // 17 > 16: the difference is nonempty.
}

TEST_F(FactorTest, PaperFig4GatedUnion) {
  // A = (SYM != 1) # ([0,NS-1] - [0,16NP-1]);  B = (SYM == 1) # [0,NS-1].
  // F(A u B) must hold exactly when SYM != 1 and NS <= 16NP (modulo the
  // degenerate NS <= 0 case our algebra additionally catches).
  const Pred *G1 = P.ne(s("SYM"), c(1));
  const Pred *G2 = P.eq(s("SYM"), c(1));
  const USR *S1 = U.subtract(U.interval(c(0), s("NS")),
                             U.interval(c(0), Sym.mulConst(s("NP"), 16)));
  const USR *A = U.gate(G1, S1);
  const USR *B = U.gate(G2, U.interval(c(0), s("NS")));
  const Pred *Pr = pdag::simplify(P, F.factor(U.union2(A, B)));

  auto Check = [&](int64_t SYM, int64_t NS, int64_t NP, bool Expect) {
    sym::Bindings Bd;
    Bd.setScalar(Sym.symbol("SYM"), SYM);
    Bd.setScalar(Sym.symbol("NS"), NS);
    Bd.setScalar(Sym.symbol("NP"), NP);
    EXPECT_EQ(holds(Pr, Bd), Expect)
        << "SYM=" << SYM << " NS=" << NS << " NP=" << NP
        << "\npred: " << Pr->toString(Sym);
  };
  Check(0, 16, 1, true);  // SYM != 1, NS <= 16NP: independent.
  Check(0, 17, 1, false); // Writes do not cover reads.
  Check(1, 16, 1, false); // SYM == 1: no writes at all, reads exposed.
  Check(1, 0, 1, true);   // Degenerate: no reads either (NS <= 0).
}

TEST_F(FactorTest, IntersectionViaDisjointness) {
  // [0,a-1] n [a, a+b-1] is always empty (adjacent intervals).
  const USR *A = U.interval(c(0), s("a"));
  const USR *B = U.interval(s("a"), s("b"));
  EXPECT_TRUE(F.factor(U.intersect(A, B))->isTrue());
}

TEST_F(FactorTest, GateWithoutComplementFallsBackToChild) {
  // Gates whose negation is not representable still yield F(child).
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *LoopGate = P.loopAll(
      I, c(1), s("N"), P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  ASSERT_EQ(P.tryNot(LoopGate), nullptr);
  const USR *S = U.gate(LoopGate, U.interval(c(0), s("NS")));
  const Pred *Pr = F.factor(S);
  // Sufficient condition survives: NS <= 0.
  sym::Bindings B;
  B.setScalar(Sym.symbol("NS"), 0);
  EXPECT_TRUE(holds(Pr, B));
}

TEST_F(FactorTest, RecurrenceOfReadsCoveredByWrites) {
  // The SOLVH XE pattern, loop-level: U_i (RW_i) with
  // RW_i = [0,NS-1] - [0,16NP-1] gated by SYM != 1 — invariant body, so
  // the recurrence folds and factorization gives the Fig. 4 predicate.
  sym::SymbolId I = Sym.symbol("i", 1);
  const Pred *G1 = P.ne(s("SYM"), c(1));
  const Pred *G2 = P.eq(s("SYM"), c(1));
  const USR *RWi = U.union2(
      U.gate(G1, U.subtract(U.interval(c(0), s("NS")),
                            U.interval(c(0), Sym.mulConst(s("NP"), 16)))),
      U.gate(G2, U.interval(c(0), s("NS"))));
  const USR *Loop = U.recur(I, c(1), s("N"), RWi);
  const Pred *Pr = F.factor(Loop);
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 10);
  B.setScalar(Sym.symbol("SYM"), 0);
  B.setScalar(Sym.symbol("NS"), 32);
  B.setScalar(Sym.symbol("NP"), 2);
  EXPECT_TRUE(holds(Pr, B));
  B.setScalar(Sym.symbol("NS"), 33);
  EXPECT_FALSE(holds(Pr, B));
}

TEST_F(FactorTest, MonotonicityRuleFiresOnOutputIndependencePattern) {
  // Fig. 3(b): U_{i=1..N} (WF_i n U_{k=1..i-1} WF_k) with
  // WF_i = [32*(IB(i)-1) .. 32*(IB(i)+IA(i)-2)+NS-1].
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  sym::SymbolId IA = Sym.symbol("IA", 0, true);

  auto WF = [&](sym::SymbolId V) {
    const sym::Expr *Base = Sym.mulConst(
        Sym.addConst(Sym.arrayRef(IB, Sym.symRef(V)), -1), 32);
    const sym::Expr *Len = Sym.add(
        Sym.mulConst(Sym.addConst(Sym.arrayRef(IA, Sym.symRef(V)), -1), 32),
        s("NS"));
    return U.interval(Base, Len);
  };
  const USR *Prev = U.recur(K, c(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
  const USR *OInd = U.recur(I, c(1), s("N"), U.intersect(WF(I), Prev));

  const Pred *Pr = F.factor(OInd);
  EXPECT_GE(F.stats().MonotonicityRule, 1u);

  // Paper's runtime predicate: AND_{i=1..N-1} NS <= 32*(IB(i+1)-IA(i)-IB(i)+1).
  // Check behavior: monotonically spaced IB with gaps >= the row size.
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 4);
  B.setScalar(Sym.symbol("NS"), 32);
  sym::ArrayBinding BIB, BIA;
  BIB.Lo = BIA.Lo = 1;
  BIA.Vals = {2, 2, 2, 2};          // IA(i) = 2 blocks per iteration.
  BIB.Vals = {1, 4, 7, 10};         // Next base right after prior extent.
  sym::ArrayBinding BIBCopy = BIB;
  B.setArray(IB, BIB);
  B.setArray(IA, BIA);
  EXPECT_TRUE(holds(Pr, B)) << Pr->toString(Sym);

  BIBCopy.Vals = {1, 2, 7, 10}; // Overlap between iterations 1 and 2.
  B.setArray(IB, BIBCopy);
  EXPECT_FALSE(holds(Pr, B));
}

TEST_F(FactorTest, MonotonicityPredicateIsLinearCost) {
  // The extracted predicate must be O(N): one loop node, not the O(N^2)
  // nested pairwise test.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  auto WF = [&](sym::SymbolId V) {
    return U.interval(Sym.arrayRef(IB, Sym.symRef(V)), c(4));
  };
  const USR *Prev = U.recur(K, c(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
  const USR *OInd = U.recur(I, c(1), s("N"), U.intersect(WF(I), Prev));
  const Pred *Pr = F.factor(OInd);
  auto Stages = pdag::buildCascade(P, Pr);
  ASSERT_FALSE(Stages.empty());
  bool HasLinearStage = false;
  for (const auto &St : Stages)
    if (St.Depth <= 1 && !St.P->isFalse())
      HasLinearStage = true;
  EXPECT_TRUE(HasLinearStage);
}

TEST_F(FactorTest, FillsArrayRuleProvesInclusion) {
  // S subset-of U where U = whole array [0 .. 16NP-1] and S is an opaque
  // recurrence over an index array (rule 5).
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  F.setArraySize(Sym.mulConst(s("NP"), 16));
  const USR *S =
      U.recur(I, c(1), s("N"),
              U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(1)));
  const USR *Whole = U.interval(c(0), Sym.mulConst(s("NP"), 16));
  const Pred *Pr = F.included(S, Whole);
  EXPECT_TRUE(Pr->isTrue());
  EXPECT_GE(F.stats().FillsArrayRule, 1u);
}

TEST_F(FactorTest, IncludedRecurrencesSameRangeUsesRule3) {
  // U_i [i, i+3] subset-of U_i [i, i+7] via per-iteration inclusion.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  // Use index arrays so the recurrences stay irreducible.
  const USR *A =
      U.recur(I, c(1), s("N"),
              U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(4)));
  const USR *B =
      U.recur(J, c(1), s("N"),
              U.interval(Sym.arrayRef(IB, Sym.symRef(J)), c(8)));
  const Pred *Pr = F.included(A, B);
  EXPECT_FALSE(Pr->isFalse());
  sym::Bindings Bd;
  Bd.setScalar(Sym.symbol("N"), 3);
  sym::ArrayBinding AB;
  AB.Lo = 1;
  AB.Vals = {5, 50, 500};
  Bd.setArray(IB, AB);
  EXPECT_TRUE(holds(Pr, Bd));
}

TEST_F(FactorTest, DisjointRecurrencesViaInvariantOverestimate) {
  // Rule (1): U_i [2i, 2i+1] vs U_j [2N+2j, ...]: the invariant
  // overestimates [2, 2N+1] and [2N+2, 4N+2] are disjoint.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 1);
  sym::SymbolId X = Sym.symbol("X", 0, true);
  const Pred *GI = P.ne(Sym.arrayRef(X, Sym.symRef(I)), c(0));
  const Pred *GJ = P.ne(Sym.arrayRef(X, Sym.symRef(J)), c(0));
  // Gates are loop-variant: rule (1) filters them out when widening.
  const USR *A = U.recur(
      I, c(1), s("N"),
      U.gate(GI, U.interval(Sym.mulConst(Sym.symRef(I), 2), c(2))));
  const USR *B = U.recur(
      J, c(1), s("N"),
      U.gate(GJ, U.interval(Sym.add(Sym.mulConst(s("N"), 2),
                                    Sym.mulConst(Sym.symRef(J), 2)),
                            c(2))));
  const Pred *Pr = F.disjoint(A, B);
  EXPECT_GE(F.stats().InvariantOverRule, 1u);
  sym::Bindings Bd;
  Bd.setScalar(Sym.symbol("N"), 6);
  EXPECT_TRUE(holds(Pr, Bd));
}

TEST_F(FactorTest, AblationMonotonicityOff) {
  FactorOptions Opts;
  Opts.Monotonicity = false;
  Factorizer F2(U, Opts);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  auto WF = [&](sym::SymbolId V) {
    return U.interval(Sym.arrayRef(IB, Sym.symRef(V)), c(4));
  };
  const USR *Prev = U.recur(K, c(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
  const USR *OInd = U.recur(I, c(1), s("N"), U.intersect(WF(I), Prev));
  (void)F2.factor(OInd);
  EXPECT_EQ(F2.stats().MonotonicityRule, 0u);
}

} // namespace
