//===- tests/pdag_eval_test.cpp - Predicate evaluation tests --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/PredEval.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::pdag;

namespace {

class PdagEvalTest : public ::testing::Test {
protected:
  PdagEvalTest() : P(Sym) {}
  sym::Context Sym;
  PredContext P;
  sym::Bindings B;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
  void bind(const std::string &N, int64_t V) { B.setScalar(Sym.symbol(N), V); }
};

TEST_F(PdagEvalTest, Leaves) {
  bind("a", 3);
  bind("b", 5);
  EXPECT_TRUE(evalPred(P.le(s("a"), s("b")), B));
  EXPECT_FALSE(evalPred(P.gt(s("a"), s("b")), B));
  EXPECT_TRUE(evalPred(P.ne(s("a"), s("b")), B));
  EXPECT_FALSE(evalPred(P.eq(s("a"), s("b")), B));
}

TEST_F(PdagEvalTest, DividesLeaf) {
  bind("a", 12);
  bind("d", 4);
  EXPECT_TRUE(evalPred(P.divides(s("d"), s("a")), B));
  EXPECT_FALSE(evalPred(P.divides(s("d"), s("a"), /*Neg=*/true), B));
  bind("a", 13);
  EXPECT_FALSE(evalPred(P.divides(s("d"), s("a")), B));
}

TEST_F(PdagEvalTest, Connectives) {
  bind("a", 3);
  bind("b", 5);
  const Pred *T = P.le(s("a"), s("b"));
  const Pred *F = P.gt(s("a"), s("b"));
  EXPECT_FALSE(evalPred(P.and2(T, F), B));
  EXPECT_TRUE(evalPred(P.or2(T, F), B));
}

TEST_F(PdagEvalTest, ShortCircuitToleratesUnboundInDecidedBranch) {
  bind("a", 3);
  bind("b", 5);
  const Pred *T = P.le(s("a"), s("b"));
  const Pred *U = P.le(s("unbound"), s("b"));
  // Or with one true child decides regardless of the unbound one.
  EXPECT_EQ(tryEvalPred(P.or2(T, U), B), std::optional<bool>(true));
  // And with one false child decides too.
  const Pred *F = P.gt(s("a"), s("b"));
  EXPECT_EQ(tryEvalPred(P.and2(F, U), B), std::optional<bool>(false));
  // But an undecided And fails conservatively.
  EXPECT_EQ(tryEvalPred(P.and2(T, U), B), std::nullopt);
}

TEST_F(PdagEvalTest, LoopAllIteratesRange) {
  // ALL(i=1..n: IB(i) <= IB(i+1)) -- the monotonicity predicate shape.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  const Pred *Mono =
      P.loopAll(I, c(1), Sym.addConst(s("n"), -1),
                P.le(Sym.arrayRef(IB, Sym.symRef(I)),
                     Sym.arrayRef(IB, Sym.addConst(Sym.symRef(I), 1))));
  bind("n", 5);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {1, 3, 7, 7, 20};
  B.setArray(IB, A);
  EXPECT_TRUE(evalPred(Mono, B));

  A.Vals = {1, 3, 2, 7, 20};
  B.setArray(IB, A);
  EXPECT_FALSE(evalPred(Mono, B));
}

TEST_F(PdagEvalTest, LoopAllEmptyRangeIsTrue) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *L = P.loopAll(I, c(1), s("n"),
                            P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  bind("n", 0);
  EXPECT_TRUE(evalPred(L, B));
}

TEST_F(PdagEvalTest, LoopAllEarlyExitStats) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *L = P.loopAll(I, c(1), s("n"),
                            P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  bind("n", 100);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.assign(100, 1);
  A.Vals[2] = -5; // Fails at i == 3.
  B.setArray(IB, A);
  EvalStats Stats;
  EXPECT_FALSE(evalPred(L, B, &Stats));
  EXPECT_EQ(Stats.LoopIters, 3u);
}

TEST_F(PdagEvalTest, LoopVariableRestoredAfterLoop) {
  sym::SymbolId I = Sym.symbol("i", 1);
  B.setScalar(I, 99);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *L = P.loopAll(I, c(1), s("n"),
                            P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  bind("n", 3);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {1, 1, 1};
  B.setArray(IB, A);
  EXPECT_TRUE(evalPred(L, B));
  EXPECT_EQ(B.scalar(I), std::optional<int64_t>(99));
}

TEST_F(PdagEvalTest, NestedLoops) {
  // ALL(i=1..n: ALL(k=1..i-1: IB(k) < IB(i))) -- strict prefix dominance.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Inner =
      P.loopAll(K, c(1), Sym.addConst(Sym.symRef(I), -1),
                P.lt(Sym.arrayRef(IB, Sym.symRef(K)),
                     Sym.arrayRef(IB, Sym.symRef(I))));
  const Pred *Outer = P.loopAll(I, c(1), s("n"), Inner);
  EXPECT_EQ(Outer->loopDepth(), 2);
  bind("n", 4);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {2, 5, 9, 12};
  B.setArray(IB, A);
  EXPECT_TRUE(evalPred(Outer, B));
  A.Vals = {2, 5, 5, 12};
  B.setArray(IB, A);
  EXPECT_FALSE(evalPred(Outer, B));
}

TEST_F(PdagEvalTest, UnboundSymbolFailsConservatively) {
  EXPECT_EQ(tryEvalPred(P.le(s("nope"), c(4)), B), std::nullopt);
}

} // namespace
