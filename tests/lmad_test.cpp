//===- tests/lmad_test.cpp - LMAD algebra unit tests ----------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lmad/LMAD.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::lmad;

namespace {

class LmadTest : public ::testing::Test {
protected:
  sym::Context Sym;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }

  std::vector<int64_t> points(const LMAD &L, const sym::Bindings &B) {
    std::vector<int64_t> Out;
    EXPECT_TRUE(enumerate(L, B, Out));
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }
};

TEST_F(LmadTest, PointEnumeration) {
  LMAD P = LMAD::makePoint(c(7));
  sym::Bindings B;
  EXPECT_EQ(points(P, B), (std::vector<int64_t>{7}));
}

TEST_F(LmadTest, IntervalEnumeration) {
  LMAD L = LMAD::makeInterval(Sym, c(3), c(4)); // {3,4,5,6}
  sym::Bindings B;
  EXPECT_EQ(points(L, B), (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST_F(LmadTest, StridedEnumeration) {
  // [2]v[6]+1 = {1,3,5,7}.
  LMAD L = LMAD::makeStrided(c(2), c(6), c(1));
  sym::Bindings B;
  EXPECT_EQ(points(L, B), (std::vector<int64_t>{1, 3, 5, 7}));
}

TEST_F(LmadTest, TwoDimEnumeration) {
  // Paper example shape: [k]v[k(M-1)] with an outer [kM]-ish dim.
  // [1,4]v[1,8]+0 = {0,1} + {0,4,8} = {0,1,4,5,8,9}.
  LMAD L({Dim{c(1), c(1)}, Dim{c(4), c(8)}}, c(0));
  sym::Bindings B;
  EXPECT_EQ(points(L, B), (std::vector<int64_t>{0, 1, 4, 5, 8, 9}));
}

TEST_F(LmadTest, EnumerationWithSymbolicComponents) {
  LMAD L = LMAD::makeStrided(s("stride"), s("span"), s("off"));
  sym::Bindings B;
  B.setScalar(Sym.symbol("stride"), 3);
  B.setScalar(Sym.symbol("span"), 6);
  B.setScalar(Sym.symbol("off"), 10);
  EXPECT_EQ(points(L, B), (std::vector<int64_t>{10, 13, 16}));
}

TEST_F(LmadTest, EnumerationCapFails) {
  LMAD L = LMAD::makeInterval(Sym, c(0), c(1 << 24));
  sym::Bindings B;
  std::vector<int64_t> Out;
  EXPECT_FALSE(enumerate(L, B, Out, /*Cap=*/1024));
}

TEST_F(LmadTest, AggregateStatementOverLoop) {
  // The paper's Sec. 2.1 example, innermost level: A[i*N+j*k] over
  // j = 1..M: point (i-1)*N + j*k - 1 aggregates to
  // [k]v[k(M-1)] + (i-1)N + k - 1.
  sym::SymbolId J = Sym.symbol("j", 2);
  const sym::Expr *I = s("i"), *N = s("N"), *K = s("k"), *M = s("M");
  // Offset of A[i*N + j*k], 0-based: i*N + j*k - 1.
  const sym::Expr *Off = Sym.addConst(
      Sym.add(Sym.mul(I, N), Sym.mul(Sym.symRef(J), K)), -1);
  LMAD Point = LMAD::makePoint(Off);
  auto Agg = aggregate(Sym, Point, J, c(1), M);
  ASSERT_TRUE(Agg.has_value());
  ASSERT_EQ(Agg->rank(), 1u);
  EXPECT_EQ(Agg->dims()[0].Stride, K);
  EXPECT_EQ(Agg->dims()[0].Span, Sym.mul(K, Sym.addConst(M, -1)));
  EXPECT_EQ(Agg->offset(),
            Sym.addConst(Sym.add(Sym.mul(I, N), K), -1));
}

TEST_F(LmadTest, AggregateTwiceBuildsTwoDims) {
  // Continue the example over i = 1..N2: stride N, span N*(N2-1).
  sym::SymbolId J = Sym.symbol("j", 2);
  sym::SymbolId I = Sym.symbol("i", 1);
  const sym::Expr *N = s("N"), *K = s("k"), *M = s("M");
  const sym::Expr *Off = Sym.addConst(
      Sym.add(Sym.mul(Sym.symRef(I), N), Sym.mul(Sym.symRef(J), K)), -1);
  LMAD Point = LMAD::makePoint(Off);
  auto L1 = aggregate(Sym, Point, J, c(1), M);
  ASSERT_TRUE(L1.has_value());
  auto L2 = aggregate(Sym, *L1, I, c(1), s("N2"));
  ASSERT_TRUE(L2.has_value());
  ASSERT_EQ(L2->rank(), 2u);
  EXPECT_EQ(L2->dims()[1].Stride, N);
}

TEST_F(LmadTest, AggregateMatchesUnionOfInstances) {
  // Exactness check: aggregate == union over concrete iterations.
  sym::SymbolId I = Sym.symbol("i", 1);
  const sym::Expr *Off = Sym.addConst(Sym.mulConst(Sym.symRef(I), 3), 2);
  LMAD L = LMAD::makeInterval(Sym, Off, c(2)); // {3i+2, 3i+3}
  auto Agg = aggregate(Sym, L, I, c(1), c(4));
  ASSERT_TRUE(Agg.has_value());
  sym::Bindings B;
  std::vector<int64_t> AggPts = points(*Agg, B);
  std::vector<int64_t> UnionPts;
  for (int64_t IV = 1; IV <= 4; ++IV) {
    B.setScalar(I, IV);
    std::vector<int64_t> Inst;
    ASSERT_TRUE(enumerate(L, B, Inst));
    UnionPts.insert(UnionPts.end(), Inst.begin(), Inst.end());
  }
  std::sort(UnionPts.begin(), UnionPts.end());
  UnionPts.erase(std::unique(UnionPts.begin(), UnionPts.end()),
                 UnionPts.end());
  EXPECT_EQ(AggPts, UnionPts);
}

TEST_F(LmadTest, AggregateInvariantAccessIsUnchanged) {
  sym::SymbolId I = Sym.symbol("i", 1);
  LMAD L = LMAD::makeInterval(Sym, c(0), s("NS"));
  auto Agg = aggregate(Sym, L, I, c(1), s("N"));
  ASSERT_TRUE(Agg.has_value());
  EXPECT_EQ(*Agg, L);
}

TEST_F(LmadTest, AggregateNegativeStrideNormalizes) {
  // Offset N - i over i = 1..N: stride +1, offset 0... base at i=N.
  sym::SymbolId I = Sym.symbol("i", 1);
  LMAD L = LMAD::makePoint(Sym.sub(s("N"), Sym.symRef(I)));
  auto Agg = aggregate(Sym, L, I, c(1), s("N"));
  ASSERT_TRUE(Agg.has_value());
  ASSERT_EQ(Agg->rank(), 1u);
  EXPECT_EQ(Agg->dims()[0].Stride, c(1));
  EXPECT_EQ(Agg->offset(), c(0));
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 4);
  EXPECT_EQ(points(*Agg, B), (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST_F(LmadTest, AggregateQuadraticFails) {
  // Offset i*i is not linear in i: no closed-form aggregation.
  sym::SymbolId I = Sym.symbol("i", 1);
  LMAD L = LMAD::makePoint(Sym.mul(Sym.symRef(I), Sym.symRef(I)));
  EXPECT_FALSE(aggregate(Sym, L, I, c(1), s("N")).has_value());
}

TEST_F(LmadTest, AggregateIndexArrayOffsetFails) {
  // Offset IB(i) embeds the loop variable in an opaque atom.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  LMAD L = LMAD::makePoint(Sym.arrayRef(IB, Sym.symRef(I)));
  EXPECT_FALSE(aggregate(Sym, L, I, c(1), s("N")).has_value());
}

TEST_F(LmadTest, AggregateLoopVariantSpanFails) {
  sym::SymbolId I = Sym.symbol("i", 1);
  LMAD L = LMAD::makeInterval(Sym, c(0), Sym.symRef(I));
  EXPECT_FALSE(aggregate(Sym, L, I, c(1), s("N")).has_value());
}

TEST_F(LmadTest, IntervalOverestimate) {
  LMAD L({Dim{c(1), c(3)}, Dim{c(10), c(20)}}, s("t"));
  Interval I = intervalOverestimate(Sym, L);
  EXPECT_EQ(I.Lo, s("t"));
  EXPECT_EQ(I.Hi, Sym.addConst(s("t"), 23));
}

TEST_F(LmadTest, Flatten1DUsesGcdOfConstStrides) {
  LMAD L({Dim{c(4), c(12)}, Dim{c(6), c(18)}}, c(5));
  LMAD F = flatten1D(Sym, L);
  ASSERT_EQ(F.rank(), 1u);
  EXPECT_EQ(F.dims()[0].Stride, c(2));
  EXPECT_EQ(F.dims()[0].Span, c(30));
  // Overestimate property: every point of L is a point of F.
  sym::Bindings B;
  std::vector<int64_t> LP = points(L, B), FP = points(F, B);
  EXPECT_TRUE(std::includes(FP.begin(), FP.end(), LP.begin(), LP.end()));
}

TEST_F(LmadTest, Flatten1DSymbolicCommonStride) {
  LMAD L({Dim{s("M"), s("sp1")}, Dim{s("M"), s("sp2")}}, c(0));
  LMAD F = flatten1D(Sym, L);
  ASSERT_EQ(F.rank(), 1u);
  EXPECT_EQ(F.dims()[0].Stride, s("M"));
}

TEST_F(LmadTest, TranslateAddsOffset) {
  LMAD L = LMAD::makeInterval(Sym, c(0), s("NS"));
  LMAD T = translate(Sym, L, Sym.mulConst(s("id"), 32));
  EXPECT_EQ(T.offset(), Sym.mulConst(s("id"), 32));
  EXPECT_EQ(T.dims(), L.dims());
}

TEST_F(LmadTest, SubstituteRewritesAllComponents) {
  sym::SymbolId I = Sym.symbol("i", 1);
  LMAD L = LMAD::makeStrided(s("k"), Sym.mul(s("k"), s("M")),
                             Sym.mulConst(Sym.symRef(I), 32));
  std::map<sym::SymbolId, const sym::Expr *> M{{I, c(3)}};
  LMAD S = substitute(Sym, L, M);
  EXPECT_EQ(S.offset(), c(96));
  EXPECT_EQ(S.dims()[0].Stride, s("k"));
}

TEST_F(LmadTest, PrintingMatchesPaperNotation) {
  LMAD L = LMAD::makeStrided(c(1), Sym.addConst(s("NS"), -1), c(0));
  EXPECT_EQ(L.toString(Sym), "[1]v[NS - 1]+0");
}

} // namespace
