//===- tests/sym_expr_test.cpp - Symbolic algebra unit tests --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sym/Expr.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::sym;

namespace {

class SymExprTest : public ::testing::Test {
protected:
  Context Ctx;
  const Expr *c(int64_t V) { return Ctx.intConst(V); }
  const Expr *s(const std::string &N) { return Ctx.symRef(N); }
};

TEST_F(SymExprTest, ConstantsAreInterned) {
  EXPECT_EQ(c(42), c(42));
  EXPECT_NE(c(42), c(43));
}

TEST_F(SymExprTest, SymbolsAreInterned) {
  EXPECT_EQ(s("n"), s("n"));
  EXPECT_NE(s("n"), s("m"));
}

TEST_F(SymExprTest, AdditionFoldsConstants) {
  EXPECT_EQ(Ctx.add(c(2), c(3)), c(5));
}

TEST_F(SymExprTest, AdditionIsCommutativeStructurally) {
  const Expr *A = Ctx.add(s("n"), s("m"));
  const Expr *B = Ctx.add(s("m"), s("n"));
  EXPECT_EQ(A, B);
}

TEST_F(SymExprTest, AdditionIsAssociativeStructurally) {
  const Expr *A = Ctx.add(Ctx.add(s("a"), s("b")), s("c"));
  const Expr *B = Ctx.add(s("a"), Ctx.add(s("b"), s("c")));
  EXPECT_EQ(A, B);
}

TEST_F(SymExprTest, LikeTermsMerge) {
  // n + n == 2*n and (2*n) - n == n.
  const Expr *N = s("n");
  const Expr *TwoN = Ctx.add(N, N);
  EXPECT_EQ(TwoN, Ctx.mulConst(N, 2));
  EXPECT_EQ(Ctx.sub(TwoN, N), N);
}

TEST_F(SymExprTest, SubtractionCancelsToZero) {
  const Expr *E = Ctx.add(Ctx.mulConst(s("n"), 3), c(7));
  EXPECT_EQ(Ctx.sub(E, E), c(0));
}

TEST_F(SymExprTest, MultiplicationDistributesOverAddition) {
  // (a + b) * c == a*c + b*c.
  const Expr *L = Ctx.mul(Ctx.add(s("a"), s("b")), s("c"));
  const Expr *R = Ctx.add(Ctx.mul(s("a"), s("c")), Ctx.mul(s("b"), s("c")));
  EXPECT_EQ(L, R);
}

TEST_F(SymExprTest, MultiplicationIsCommutative) {
  EXPECT_EQ(Ctx.mul(s("a"), s("b")), Ctx.mul(s("b"), s("a")));
}

TEST_F(SymExprTest, SquareRepresentable) {
  // i*i is a product with a repeated factor; (i*i) - i*i == 0.
  const Expr *I = s("i");
  const Expr *Sq = Ctx.mul(I, I);
  EXPECT_NE(Sq, I);
  EXPECT_EQ(Ctx.sub(Sq, Ctx.mul(I, I)), c(0));
}

TEST_F(SymExprTest, MulByZeroIsZero) {
  EXPECT_EQ(Ctx.mul(s("n"), c(0)), c(0));
  EXPECT_EQ(Ctx.mulConst(Ctx.add(s("n"), c(3)), 0), c(0));
}

TEST_F(SymExprTest, MulByOneIsIdentity) {
  const Expr *E = Ctx.add(s("n"), c(3));
  EXPECT_EQ(Ctx.mul(E, c(1)), E);
}

TEST_F(SymExprTest, MinMaxFoldConstants) {
  EXPECT_EQ(Ctx.min(c(3), c(5)), c(3));
  EXPECT_EQ(Ctx.max(c(3), c(5)), c(5));
}

TEST_F(SymExprTest, MinMaxFoldConstantOffsets) {
  // min(n, n+3) == n, max(n, n+3) == n+3.
  const Expr *N = s("n");
  const Expr *NP3 = Ctx.addConst(N, 3);
  EXPECT_EQ(Ctx.min(N, NP3), N);
  EXPECT_EQ(Ctx.max(N, NP3), NP3);
}

TEST_F(SymExprTest, MinIsCommutativeStructurally) {
  EXPECT_EQ(Ctx.min(s("a"), s("b")), Ctx.min(s("b"), s("a")));
}

TEST_F(SymExprTest, FloorDivExact) {
  // (4n + 8) / 4 == n + 2.
  const Expr *E = Ctx.add(Ctx.mulConst(s("n"), 4), c(8));
  EXPECT_EQ(Ctx.floorDiv(E, 4), Ctx.addConst(s("n"), 2));
}

TEST_F(SymExprTest, FloorDivConstantsRoundTowardNegInfinity) {
  EXPECT_EQ(Ctx.floorDiv(c(7), 2), c(3));
  EXPECT_EQ(Ctx.floorDiv(c(-7), 2), c(-4));
}

TEST_F(SymExprTest, ModOfDivisibleIsZero) {
  const Expr *E = Ctx.mulConst(s("n"), 6);
  EXPECT_EQ(Ctx.mod(E, 3), c(0));
}

TEST_F(SymExprTest, ModConstants) {
  EXPECT_EQ(Ctx.mod(c(7), 3), c(1));
  EXPECT_EQ(Ctx.mod(c(-7), 3), c(2)); // Floor semantics: -7 = -3*3 + 2.
}

TEST_F(SymExprTest, ArrayRefInterned) {
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  const Expr *I = s("i");
  EXPECT_EQ(Ctx.arrayRef(IB, I), Ctx.arrayRef(IB, I));
  EXPECT_NE(Ctx.arrayRef(IB, I), Ctx.arrayRef(IB, Ctx.addConst(I, 1)));
}

TEST_F(SymExprTest, FreeSymbolsPropagate) {
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  SymbolId SI = Ctx.symbol("i");
  const Expr *E = Ctx.add(Ctx.arrayRef(IB, Ctx.symRef(SI)), s("n"));
  EXPECT_TRUE(E->dependsOn(IB));
  EXPECT_TRUE(E->dependsOn(SI));
  EXPECT_TRUE(E->dependsOn(Ctx.symbol("n")));
  EXPECT_FALSE(E->dependsOn(Ctx.symbol("zz")));
}

TEST_F(SymExprTest, InvarianceByDefLevel) {
  SymbolId N = Ctx.symbol("n", /*DefLevel=*/0);
  SymbolId I = Ctx.symbol("i", /*DefLevel=*/1);
  const Expr *E = Ctx.add(Ctx.symRef(N), Ctx.symRef(I));
  EXPECT_TRUE(Ctx.symRef(N)->isInvariantAtDepth(1, Ctx));
  EXPECT_FALSE(E->isInvariantAtDepth(1, Ctx));
  EXPECT_TRUE(E->isInvariantAtDepth(2, Ctx));
}

TEST_F(SymExprTest, ConstValueQueries) {
  EXPECT_EQ(Ctx.constValue(c(9)).value(), 9);
  EXPECT_FALSE(Ctx.constValue(s("n")).has_value());
}

TEST_F(SymExprTest, DefinitelyDivisible) {
  const Expr *E = Ctx.add(Ctx.mulConst(s("n"), 32), c(64));
  EXPECT_TRUE(Ctx.definitelyDivisibleBy(E, 32));
  EXPECT_TRUE(Ctx.definitelyDivisibleBy(E, 8));
  EXPECT_FALSE(Ctx.definitelyDivisibleBy(Ctx.addConst(E, 1), 32));
}

TEST_F(SymExprTest, CoeffGcd) {
  const Expr *E =
      Ctx.add(Ctx.mulConst(s("n"), 12), Ctx.mulConst(s("m"), 18));
  EXPECT_EQ(Ctx.coeffGcd(E), 6);
  EXPECT_EQ(Ctx.coeffGcd(c(5)), 0);
}

TEST_F(SymExprTest, SplitLinearBasic) {
  // 3*i*n + 2*m + 7 split on i: A = 3n, B = 2m + 7.
  SymbolId I = Ctx.symbol("i");
  const Expr *E = Ctx.add(
      Ctx.mul(Ctx.mulConst(Ctx.symRef(I), 3), s("n")),
      Ctx.addConst(Ctx.mulConst(s("m"), 2), 7));
  auto Split = Ctx.splitLinearIn(E, I);
  ASSERT_TRUE(Split.has_value());
  EXPECT_EQ(Split->A, Ctx.mulConst(s("n"), 3));
  EXPECT_EQ(Split->B, Ctx.addConst(Ctx.mulConst(s("m"), 2), 7));
}

TEST_F(SymExprTest, SplitLinearQuadraticPeelsOnePower) {
  // i*i splits as A = i, B = 0 (one power factored out).
  SymbolId I = Ctx.symbol("i");
  const Expr *E = Ctx.mul(Ctx.symRef(I), Ctx.symRef(I));
  auto Split = Ctx.splitLinearIn(E, I);
  ASSERT_TRUE(Split.has_value());
  EXPECT_EQ(Split->A, Ctx.symRef(I));
  EXPECT_EQ(Split->B, c(0));
}

TEST_F(SymExprTest, SplitLinearFailsInsideOpaqueAtom) {
  // IB(i) embeds i inside an array subscript: not linear in i.
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  SymbolId I = Ctx.symbol("i");
  const Expr *E = Ctx.arrayRef(IB, Ctx.symRef(I));
  EXPECT_FALSE(Ctx.splitLinearIn(E, I).has_value());
}

TEST_F(SymExprTest, SplitLinearNoOccurrence) {
  SymbolId I = Ctx.symbol("i");
  auto Split = Ctx.splitLinearIn(s("n"), I);
  ASSERT_TRUE(Split.has_value());
  EXPECT_EQ(Split->A, c(0));
  EXPECT_EQ(Split->B, s("n"));
}

TEST_F(SymExprTest, SubstituteScalar) {
  // (i + n) with i := 2*k  ==>  2*k + n.
  SymbolId I = Ctx.symbol("i");
  const Expr *E = Ctx.add(Ctx.symRef(I), s("n"));
  std::map<SymbolId, const Expr *> M{{I, Ctx.mulConst(s("k"), 2)}};
  EXPECT_EQ(Ctx.substitute(E, M),
            Ctx.add(Ctx.mulConst(s("k"), 2), s("n")));
}

TEST_F(SymExprTest, SubstituteInsideArrayRef) {
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  SymbolId I = Ctx.symbol("i");
  const Expr *E = Ctx.arrayRef(IB, Ctx.addConst(Ctx.symRef(I), 1));
  std::map<SymbolId, const Expr *> M{{I, s("k")}};
  EXPECT_EQ(Ctx.substitute(E, M),
            Ctx.arrayRef(IB, Ctx.addConst(s("k"), 1)));
}

TEST_F(SymExprTest, SubstituteRebuildCanonicalizes) {
  // (i - k) with i := k cancels to 0.
  SymbolId I = Ctx.symbol("i");
  const Expr *E = Ctx.sub(Ctx.symRef(I), s("k"));
  std::map<SymbolId, const Expr *> M{{I, s("k")}};
  EXPECT_EQ(Ctx.substitute(E, M), c(0));
}

TEST_F(SymExprTest, PrintingIsReadable) {
  const Expr *E = Ctx.add(Ctx.mulConst(s("NP"), 8), c(-6));
  EXPECT_EQ(E->toString(Ctx), "8*NP - 6");
  EXPECT_EQ(c(-3)->toString(Ctx), "-3");
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  const Expr *R = Ctx.arrayRef(IB, Ctx.addConst(s("i"), 1));
  EXPECT_EQ(R->toString(Ctx), "IB(i + 1)");
}

TEST_F(SymExprTest, FreshSymbolsAreUnique) {
  SymbolId A = Ctx.freshSymbol("k");
  SymbolId B = Ctx.freshSymbol("k");
  EXPECT_NE(A, B);
  EXPECT_NE(Ctx.symbolInfo(A).Name, Ctx.symbolInfo(B).Name);
}

} // namespace
