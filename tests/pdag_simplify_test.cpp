//===- tests/pdag_simplify_test.cpp - Simplify / cascade / FM tests -------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/FourierMotzkin.h"
#include "pdag/PredEval.h"
#include "pdag/PredSimplify.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::pdag;

namespace {

class PdagSimplifyTest : public ::testing::Test {
protected:
  PdagSimplifyTest() : P(Sym) {}
  sym::Context Sym;
  PredContext P;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
};

TEST_F(PdagSimplifyTest, CommonFactorExtractionAnd) {
  // (A or B1) and (A or B2) == A or (B1 and B2).
  const Pred *A = P.le(s("a"), s("x"));
  const Pred *B1 = P.le(s("b1"), s("x"));
  const Pred *B2 = P.le(s("b2"), s("x"));
  const Pred *In = P.and2(P.or2(A, B1), P.or2(A, B2));
  EXPECT_EQ(simplify(P, In), P.or2(A, P.and2(B1, B2)));
}

TEST_F(PdagSimplifyTest, CommonFactorExtractionOr) {
  // (A and B1) or (A and B2) == A and (B1 or B2).
  const Pred *A = P.le(s("a"), s("x"));
  const Pred *B1 = P.le(s("b1"), s("x"));
  const Pred *B2 = P.le(s("b2"), s("x"));
  const Pred *In = P.or2(P.and2(A, B1), P.and2(A, B2));
  EXPECT_EQ(simplify(P, In), P.and2(A, P.or2(B1, B2)));
}

TEST_F(PdagSimplifyTest, LoopAllDistributesOverAnd) {
  // ALL_i (inv and var(i)) == inv and ALL_i var(i).
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Inv = P.le(s("NS"), Sym.mulConst(s("NP"), 16));
  const Pred *Var = P.ge0(Sym.arrayRef(IB, Sym.symRef(I)));
  const Pred *In = P.loopAll(I, c(1), s("N"), P.and2(Inv, Var));
  const Pred *Out = simplify(P, In);
  // inv hoists: the result is an And whose first member no longer sits
  // under a loop node.
  EXPECT_EQ(Out, P.and2(P.or2(P.gt(c(1), s("N")), Inv),
                        P.loopAll(I, c(1), s("N"), Var)));
}

TEST_F(PdagSimplifyTest, InvariantDisjunctHoistsOutOfLoop) {
  // The Sec. 3.5 example: ALL_i (Inv or Var_i) == Inv or ALL_i Var_i.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Inv = P.lt(Sym.mulConst(s("NP"), 8), Sym.addConst(s("NS"), 6));
  const Pred *Var = P.ge0(Sym.arrayRef(IB, Sym.symRef(I)));
  const Pred *In = P.loopAll(I, c(1), s("N"), P.or2(Inv, Var));
  const Pred *Out = simplify(P, In);
  const auto *O = dyn_cast<NaryPred>(Out);
  ASSERT_NE(O, nullptr);
  EXPECT_FALSE(O->isAnd());
  // Inv must appear at top level now.
  bool Found = false;
  for (const Pred *C : O->getChildren())
    Found |= (C == Inv);
  EXPECT_TRUE(Found);
}

TEST_F(PdagSimplifyTest, NestedLoopInvariantHoistsAllTheWay) {
  // The paper's SOLVH example (Sec. 3.5): a leaf invariant to both loops,
  // wrapped in ALL_i ALL_k, hoists to the top. Unlike the paper's informal
  // account we keep the (vacuous-truth) empty-range disjunct, so the full
  // predicate stays equivalent; the O(1) *cascade stage* is the bare leaf.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IA = Sym.symbol("IA", 0, true);
  const Pred *Leaf = P.lt(Sym.mulConst(s("NP"), 8), Sym.addConst(s("NS"), 6));
  const Pred *Inner = P.loopAll(
      K, c(1), Sym.arrayRef(IA, Sym.symRef(I)), Leaf);
  const Pred *Outer = P.loopAll(I, c(1), s("N"), Inner);
  const Pred *Out = simplify(P, Outer);
  // The leaf is at top level now (a disjunct), not buried under two loops.
  const auto *O = dyn_cast<NaryPred>(Out);
  ASSERT_NE(O, nullptr);
  bool LeafAtTop = false;
  for (const Pred *C : O->getChildren())
    LeafAtTop |= (C == Leaf);
  EXPECT_TRUE(LeafAtTop);
  // The O(1) extraction is exactly the leaf.
  EXPECT_EQ(strengthenToDepth(P, Outer, 0), Leaf);
  // For a non-empty loop nest the result behaves like the leaf.
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 4);
  B.setScalar(Sym.symbol("NP"), 2);
  B.setScalar(Sym.symbol("NS"), 32);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {2, 2, 2, 2};
  B.setArray(IA, A);
  EXPECT_TRUE(evalPred(Out, B));
  B.setScalar(Sym.symbol("NS"), 5); // 16 < 11 fails.
  EXPECT_FALSE(evalPred(Out, B));
}

TEST_F(PdagSimplifyTest, StrengthenToDepthZeroDropsVariantParts) {
  // ALL_i (Inv or Var_i) strengthened to O(1) keeps only Inv.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Inv = P.lt(Sym.mulConst(s("NP"), 8), Sym.addConst(s("NS"), 6));
  const Pred *Var = P.ge0(Sym.arrayRef(IB, Sym.symRef(I)));
  const Pred *In = P.loopAll(I, c(1), s("N"), P.or2(Inv, Var));
  const Pred *O1 = strengthenToDepth(P, In, 0);
  EXPECT_EQ(O1->loopDepth(), 0);
  EXPECT_FALSE(O1->isFalse());
  EXPECT_FALSE(O1->dependsOn(IB));
}

TEST_F(PdagSimplifyTest, StrengthenInnerLoopToFalseKeepsOuter) {
  // Fig. 9(a): removing inner while-loop nodes leaves an O(N) predicate.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *OuterLeaf = P.ge0(Sym.arrayRef(IB, Sym.symRef(I)));
  const Pred *InnerLoop =
      P.loopAll(K, c(1), s("M"),
                P.ge0(Sym.add(Sym.arrayRef(IB, Sym.symRef(K)),
                              Sym.symRef(I))));
  const Pred *In =
      P.loopAll(I, c(1), s("N"), P.or2(OuterLeaf, InnerLoop));
  ASSERT_EQ(In->loopDepth(), 2);
  const Pred *ON = strengthenToDepth(P, In, 1);
  EXPECT_EQ(ON->loopDepth(), 1);
  EXPECT_FALSE(ON->isFalse());
}

TEST_F(PdagSimplifyTest, CascadeOrderedByComplexity) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Inv = P.lt(Sym.mulConst(s("NP"), 8), Sym.addConst(s("NS"), 6));
  const Pred *Var = P.ge0(Sym.arrayRef(IB, Sym.symRef(I)));
  const Pred *In = P.loopAll(I, c(1), s("N"), P.or2(Inv, Var));
  auto Stages = buildCascade(P, In);
  ASSERT_GE(Stages.size(), 2u);
  for (size_t J = 1; J < Stages.size(); ++J)
    EXPECT_LT(Stages[J - 1].Depth, Stages[J].Depth);
  EXPECT_EQ(Stages.front().Depth, 0);
}

TEST_F(PdagSimplifyTest, CascadeOfFalseIsEmpty) {
  EXPECT_TRUE(buildCascade(P, P.getFalse()).empty());
}

TEST_F(PdagSimplifyTest, CascadeOfO1PredicateIsSingleStage) {
  const Pred *L = P.le(s("a"), s("b"));
  auto Stages = buildCascade(P, L);
  ASSERT_EQ(Stages.size(), 1u);
  EXPECT_EQ(Stages[0].P, L);
}

//===----------------------------------------------------------------------===//
// Property tests: simplify preserves semantics; strengthen implies input.
//===----------------------------------------------------------------------===//

class PdagPropertyTest : public ::testing::TestWithParam<uint64_t> {
protected:
  PdagPropertyTest() : P(Sym) {}
  sym::Context Sym;
  PredContext P;

  /// Builds a random predicate over scalars a,b,c, array IB and loop vars.
  const Pred *randomPred(Rng &R, int Depth, int LoopDepth) {
    if (Depth <= 0 || R.chance(1, 3)) {
      // Leaf: a random linear comparison.
      const sym::Expr *E = Sym.intConst(R.nextInRange(-3, 3));
      const char *Names[] = {"a", "b", "c"};
      for (const char *N : Names)
        if (R.chance(1, 2))
          E = Sym.add(E, Sym.mulConst(Sym.symRef(N),
                                      R.nextInRange(-2, 2)));
      if (LoopDepth > 0 && R.chance(1, 2)) {
        sym::SymbolId IB = Sym.symbol("IB", 0, true);
        E = Sym.add(E, Sym.arrayRef(IB, Sym.symRef(loopVar(LoopDepth))));
      }
      switch (R.nextBelow(3)) {
      case 0:
        return P.ge0(E);
      case 1:
        return P.eq0(E);
      default:
        return P.ne0(E);
      }
    }
    switch (R.nextBelow(3)) {
    case 0:
      return P.and2(randomPred(R, Depth - 1, LoopDepth),
                    randomPred(R, Depth - 1, LoopDepth));
    case 1:
      return P.or2(randomPred(R, Depth - 1, LoopDepth),
                   randomPred(R, Depth - 1, LoopDepth));
    default: {
      sym::SymbolId V = loopVar(LoopDepth + 1);
      return P.loopAll(V, Sym.intConst(1), Sym.symRef("n"),
                       randomPred(R, Depth - 1, LoopDepth + 1));
    }
    }
  }

  sym::SymbolId loopVar(int Depth) {
    return Sym.symbol("lv" + std::to_string(Depth), Depth);
  }

  sym::Bindings randomBindings(Rng &R) {
    sym::Bindings B;
    B.setScalar(Sym.symbol("a"), R.nextInRange(-4, 4));
    B.setScalar(Sym.symbol("b"), R.nextInRange(-4, 4));
    B.setScalar(Sym.symbol("c"), R.nextInRange(-4, 4));
    B.setScalar(Sym.symbol("n"), R.nextInRange(0, 6));
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int I = 0; I < 8; ++I)
      A.Vals.push_back(R.nextInRange(-4, 4));
    B.setArray(Sym.symbol("IB", 0, true), A);
    return B;
  }
};

TEST_P(PdagPropertyTest, SimplifyPreservesSemantics) {
  Rng R(GetParam());
  const Pred *In = randomPred(R, 4, 0);
  const Pred *Out = simplify(P, In);
  for (int Trial = 0; Trial < 20; ++Trial) {
    sym::Bindings B = randomBindings(R);
    auto VI = tryEvalPred(In, B);
    auto VO = tryEvalPred(Out, B);
    if (VI && VO)
      EXPECT_EQ(*VI, *VO) << "in:  " << In->toString(Sym)
                          << "\nout: " << Out->toString(Sym);
  }
}

TEST_P(PdagPropertyTest, StrengthenImpliesInput) {
  Rng R(GetParam() ^ 0xabcdef);
  const Pred *In = randomPred(R, 4, 0);
  for (int Depth = 0; Depth < 2; ++Depth) {
    const Pred *St = strengthenToDepth(P, In, Depth);
    EXPECT_LE(St->loopDepth(), Depth);
    for (int Trial = 0; Trial < 20; ++Trial) {
      sym::Bindings B = randomBindings(R);
      auto VS = tryEvalPred(St, B);
      auto VI = tryEvalPred(In, B);
      if (VS && VI && *VS)
        EXPECT_TRUE(*VI) << "strengthened true but input false\nin:  "
                         << In->toString(Sym)
                         << "\nst:  " << St->toString(Sym);
    }
  }
}

TEST_P(PdagPropertyTest, CascadeStagesImplyFullPredicate) {
  Rng R(GetParam() ^ 0x1234567);
  const Pred *In = randomPred(R, 4, 0);
  auto Stages = buildCascade(P, In);
  for (const CascadeStage &S : Stages) {
    for (int Trial = 0; Trial < 10; ++Trial) {
      sym::Bindings B = randomBindings(R);
      auto VS = tryEvalPred(S.P, B);
      auto VI = tryEvalPred(In, B);
      if (VS && VI && *VS)
        EXPECT_TRUE(*VI);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PdagPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

//===----------------------------------------------------------------------===//
// Fourier-Motzkin
//===----------------------------------------------------------------------===//

class FourierMotzkinTest : public ::testing::Test {
protected:
  FourierMotzkinTest() : P(Sym) {}
  sym::Context Sym;
  PredContext P;
  sym::RangeEnv Env;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
};

TEST_F(FourierMotzkinTest, InvariantExprUntouched) {
  const Pred *R = reduceGE0(P, Sym.sub(s("a"), s("b")), Env);
  EXPECT_EQ(R, P.ge(s("a"), s("b")));
}

TEST_F(FourierMotzkinTest, PositiveCoefficientUsesLowerBound) {
  // i - 3 >= 0 for all i in [L, U]  <==  L - 3 >= 0.
  sym::SymbolId I = Sym.symbol("i", 1);
  Env.bind(I, s("L"), s("U"));
  const Pred *R = reduceGE0(P, Sym.addConst(Sym.symRef(I), -3), Env);
  EXPECT_EQ(R, P.ge(s("L"), c(3)));
}

TEST_F(FourierMotzkinTest, NegativeCoefficientUsesUpperBound) {
  // n - i >= 0 for all i in [1, U]  <==  n - U >= 0.
  sym::SymbolId I = Sym.symbol("i", 1);
  Env.bind(I, c(1), s("U"));
  const Pred *R = reduceGE0(P, Sym.sub(s("n"), Sym.symRef(I)), Env);
  EXPECT_EQ(R, P.ge(s("n"), s("U")));
}

TEST_F(FourierMotzkinTest, PaperExampleCorrecDo711) {
  // Sec 3.2: eliminate i from IX(1) + 1 - IX(2) - i > 0, i in [1, NOP]
  // must yield IX(2) + NOP <= IX(1).
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IX = Sym.symbol("IX", 0, true);
  Env.bind(I, c(1), s("NOP"));
  const sym::Expr *E =
      Sym.sub(Sym.addConst(Sym.arrayRef(IX, c(1)), 1),
              Sym.add(Sym.arrayRef(IX, c(2)), Sym.symRef(I)));
  const Pred *R = reduceGT0(P, E, Env);
  EXPECT_FALSE(R->dependsOn(I));
  EXPECT_EQ(R, P.le(Sym.add(Sym.arrayRef(IX, c(2)), s("NOP")),
                    Sym.arrayRef(IX, c(1))));
}

TEST_F(FourierMotzkinTest, SymbolicCoefficientSplitsOnSign) {
  // a*i + b >= 0, i in [1, N]: (a>=0 and a+b>=0) or (a<0 and a*N+b>=0).
  sym::SymbolId I = Sym.symbol("i", 1);
  Env.bind(I, c(1), s("N"));
  const sym::Expr *E =
      Sym.add(Sym.mul(s("a"), Sym.symRef(I)), s("b"));
  const Pred *R = reduceGE0(P, E, Env);
  EXPECT_FALSE(R->dependsOn(I));
  const auto *O = dyn_cast<NaryPred>(R);
  ASSERT_NE(O, nullptr);
  EXPECT_FALSE(O->isAnd());
  EXPECT_EQ(O->getChildren().size(), 2u);
}

TEST_F(FourierMotzkinTest, QuadraticEliminationTerminates) {
  // i*i - i >= 0 over i in [1, N]: degree decreases each recursion.
  sym::SymbolId I = Sym.symbol("i", 1);
  Env.bind(I, c(1), s("N"));
  const sym::Expr *E =
      Sym.sub(Sym.mul(Sym.symRef(I), Sym.symRef(I)), Sym.symRef(I));
  const Pred *R = reduceGE0(P, E, Env);
  EXPECT_FALSE(R->dependsOn(I));
}

TEST_F(FourierMotzkinTest, OpaqueAtomSurvives) {
  // IB(i) >= 0 cannot eliminate i; the leaf survives for LoopAll wrapping.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  Env.bind(I, c(1), s("N"));
  const Pred *R = reduceGE0(P, Sym.arrayRef(IB, Sym.symRef(I)), Env);
  EXPECT_TRUE(R->dependsOn(I));
}

TEST_F(FourierMotzkinTest, SoundnessSpotCheck) {
  // If the reduced predicate holds, the original holds for every i.
  sym::SymbolId I = Sym.symbol("i", 1);
  Env.bind(I, c(1), s("N"));
  const sym::Expr *E = Sym.add(Sym.mul(s("a"), Sym.symRef(I)), s("b"));
  const Pred *R = reduceGE0(P, E, Env);
  Rng Rand(42);
  for (int Trial = 0; Trial < 200; ++Trial) {
    sym::Bindings B;
    B.setScalar(Sym.symbol("a"), Rand.nextInRange(-3, 3));
    B.setScalar(Sym.symbol("b"), Rand.nextInRange(-5, 5));
    int64_t N = Rand.nextInRange(1, 6);
    B.setScalar(Sym.symbol("N"), N);
    auto V = tryEvalPred(R, B);
    ASSERT_TRUE(V.has_value());
    if (!*V)
      continue;
    for (int64_t IV = 1; IV <= N; ++IV) {
      B.setScalar(I, IV);
      const Pred *Orig = P.ge0(E);
      EXPECT_TRUE(evalPred(Orig, B));
    }
  }
}

} // namespace
