//===- tests/sym_eval_test.cpp - Evaluator unit tests ---------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sym/Eval.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::sym;

namespace {

class SymEvalTest : public ::testing::Test {
protected:
  Context Ctx;
  Bindings B;
  const Expr *c(int64_t V) { return Ctx.intConst(V); }
  const Expr *s(const std::string &N) { return Ctx.symRef(N); }
  void bind(const std::string &N, int64_t V) {
    B.setScalar(Ctx.symbol(N), V);
  }
};

TEST_F(SymEvalTest, Constants) { EXPECT_EQ(eval(c(-7), B), -7); }

TEST_F(SymEvalTest, Scalars) {
  bind("n", 10);
  EXPECT_EQ(eval(s("n"), B), 10);
}

TEST_F(SymEvalTest, UnboundScalarFails) {
  EXPECT_FALSE(tryEval(s("zz"), B).has_value());
}

TEST_F(SymEvalTest, Polynomial) {
  bind("n", 4);
  bind("m", 5);
  // 3*n*m - 2*n + 1 = 60 - 8 + 1 = 53.
  const Expr *E = Ctx.add(
      Ctx.mulConst(Ctx.mul(s("n"), s("m")), 3),
      Ctx.addConst(Ctx.mulConst(s("n"), -2), 1));
  EXPECT_EQ(eval(E, B), 53);
}

TEST_F(SymEvalTest, MinMax) {
  bind("a", 3);
  bind("b", 8);
  EXPECT_EQ(eval(Ctx.min(s("a"), s("b")), B), 3);
  EXPECT_EQ(eval(Ctx.max(s("a"), s("b")), B), 8);
}

TEST_F(SymEvalTest, DivModFloorSemantics) {
  bind("x", -7);
  EXPECT_EQ(eval(Ctx.floorDiv(s("x"), 2), B), -4);
  EXPECT_EQ(eval(Ctx.mod(s("x"), 3), B), 2);
}

TEST_F(SymEvalTest, ArrayRefReadsBinding) {
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  ArrayBinding A;
  A.Lo = 1;
  A.Vals = {10, 20, 30};
  B.setArray(IB, A);
  bind("i", 2);
  EXPECT_EQ(eval(Ctx.arrayRef(IB, s("i")), B), 20);
  EXPECT_EQ(eval(Ctx.arrayRef(IB, Ctx.addConst(s("i"), 1)), B), 30);
}

TEST_F(SymEvalTest, ArrayRefOutOfBoundsFails) {
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  ArrayBinding A;
  A.Lo = 1;
  A.Vals = {10};
  B.setArray(IB, A);
  EXPECT_FALSE(tryEval(Ctx.arrayRef(IB, c(2)), B).has_value());
  EXPECT_FALSE(tryEval(Ctx.arrayRef(IB, c(0)), B).has_value());
}

TEST_F(SymEvalTest, NestedArrayIndex) {
  // IX(IX(1)) with IX = [2, 99] evaluates to IX(2) = 99.
  SymbolId IX = Ctx.symbol("IX", 0, /*IsArray=*/true);
  ArrayBinding A;
  A.Lo = 1;
  A.Vals = {2, 99};
  B.setArray(IX, A);
  const Expr *Inner = Ctx.arrayRef(IX, c(1));
  EXPECT_EQ(eval(Ctx.arrayRef(IX, Inner), B), 99);
}

} // namespace
