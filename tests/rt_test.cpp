//===- tests/rt_test.cpp - Runtime executor unit tests --------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "rt/Executor.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::rt;
using namespace halo::ir;

namespace {

class RtTest : public ::testing::Test {
protected:
  RtTest() : P(Sym), U(Sym, P), Prog(Sym, P) {
    Main = Prog.makeSubroutine("main");
  }
  sym::Context Sym;
  pdag::PredContext P;
  usr::USRContext U;
  Program Prog;
  Subroutine *Main;

  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }

  /// DO i = 1..N: X[i-1] = f(Y[i-1]) — trivially parallel.
  DoLoop *parLoop(sym::SymbolId X, sym::SymbolId Y) {
    sym::SymbolId I = Sym.symbol("i", 1);
    DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
    const sym::Expr *Off = Sym.addConst(Sym.symRef(I), -1);
    L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                    std::vector<ArrayAccess>{{Y, Off}},
                                    false, 0));
    return L;
  }

  analysis::LoopPlan planFor(DoLoop *L, sym::Bindings *Probe = nullptr) {
    analysis::AnalyzerOptions Opts;
    Opts.Probe = Probe;
    analysis::HybridAnalyzer A(U, Prog, Opts);
    return A.analyze(*L);
  }
};

TEST_F(RtTest, ThreadPoolParallelForCoversRange) {
  ThreadPool Pool(4);
  std::vector<int> Hits(100, 0);
  Pool.parallelFor(0, 100, [&](int64_t I) { Hits[I]++; });
  for (int H : Hits)
    EXPECT_EQ(H, 1);
}

TEST_F(RtTest, ThreadPoolEmptyRange) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(5, 5, [&](int64_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST_F(RtTest, ThreadPoolSingleThreadInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1u);
  int64_t Sum = 0;
  Pool.parallelFor(0, 10, [&](int64_t I) { Sum += I; }); // No races: inline.
  EXPECT_EQ(Sum, 45);
}

TEST_F(RtTest, SequentialExecutionWritesExpectedValues) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId Y = Sym.symbol("Y", 0, true);
  Main->declareArray(ArrayDecl{X, Sym.mulConst(s("N"), 1), false});
  DoLoop *L = parLoop(X, Y);
  Memory M;
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 8);
  M.alloc(X, 8);
  auto &YV = M.alloc(Y, 8);
  for (int I = 0; I < 8; ++I)
    YV[I] = I;
  Executor E(Prog, U);
  E.runSequential(*L, M, B);
  // X[i] = 1.0 + 0.5 * Y[i].
  for (int I = 0; I < 8; ++I)
    EXPECT_DOUBLE_EQ((*M.find(X))[I], 1.0 + 0.5 * I);
}

TEST_F(RtTest, PlannedParallelMatchesSequentialOnStaticPar) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId Y = Sym.symbol("Y", 0, true);
  DoLoop *L = parLoop(X, Y);
  analysis::LoopPlan Plan = planFor(L);
  EXPECT_EQ(Plan.Class, analysis::LoopClass::StaticPar);

  Memory M;
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 1000);
  M.alloc(X, 1000);
  auto &YV = M.alloc(Y, 1000);
  for (int I = 0; I < 1000; ++I)
    YV[I] = I * 0.25;
  ThreadPool Pool(4);
  Executor E(Prog, U);
  ExecStats S = E.runPlanned(Plan, M, B, Pool);
  EXPECT_TRUE(S.RanParallel);
  EXPECT_FALSE(S.UsedTLS);
  for (int I = 0; I < 1000; ++I)
    EXPECT_DOUBLE_EQ((*M.find(X))[I], 1.0 + 0.5 * (I * 0.25));
}

TEST_F(RtTest, SpeculationDetectsGenuineConflicts) {
  // X[IDX(i)] = f(X[JDX(i)]) with colliding IDX: the LRPD run must
  // detect the conflict and fall back to sequential semantics.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId IDX = Sym.symbol("IDX", 0, true);
  sym::SymbolId JDX = Sym.symbol("JDX", 0, true);
  Main->declareArray(ArrayDecl{X, nullptr, false});
  Main->declareArray(ArrayDecl{IDX, nullptr, true});
  Main->declareArray(ArrayDecl{JDX, nullptr, true});
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("irr", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.arrayRef(IDX, Sym.symRef(I))},
      std::vector<ArrayAccess>{{X, Sym.arrayRef(JDX, Sym.symRef(I))}},
      false, 0));

  auto Setup = [&](Memory &M, sym::Bindings &B, bool Conflict) {
    int64_t N = 64;
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding IV, JV;
    IV.Lo = JV.Lo = 1;
    for (int64_t K = 0; K < N; ++K) {
      // Conflicting: all writes hit slot 0 and iteration i reads what
      // iteration i-1 wrote. Clean: disjoint odd/even split.
      IV.Vals.push_back(Conflict ? 0 : 2 * K);
      JV.Vals.push_back(Conflict ? 0 : 2 * K + 1);
    }
    B.setArray(IDX, IV);
    B.setArray(JDX, JV);
    auto &XV = M.alloc(X, 130);
    for (size_t K = 0; K < XV.size(); ++K)
      XV[K] = static_cast<double>(K);
  };

  for (bool Conflict : {false, true}) {
    Memory SeqM, ParM;
    sym::Bindings SeqB, ParB;
    Setup(SeqM, SeqB, Conflict);
    Setup(ParM, ParB, Conflict);
    analysis::LoopPlan Plan = planFor(L, &ParB);
    Executor E(Prog, U);
    E.runSequential(*L, SeqM, SeqB);
    ThreadPool Pool(4);
    ExecStats S = E.runPlanned(Plan, ParM, ParB, Pool);
    SCOPED_TRACE(Conflict ? "conflicting" : "clean");
    if (Conflict) {
      // Misspeculation must not corrupt state: results match sequential.
      EXPECT_TRUE(S.UsedTLS || !S.RanParallel);
      EXPECT_FALSE(S.TLSSucceeded);
    } else {
      EXPECT_TRUE(S.RanParallel);
    }
    for (size_t K = 0; K < 130; ++K)
      EXPECT_DOUBLE_EQ((*SeqM.find(X))[K], (*ParM.find(X))[K]);
  }
}

TEST_F(RtTest, HoistCacheMemoizesExactTests) {
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  const usr::USR *S =
      U.recur(I, c(1), s("N"),
              U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2)));
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 50);
  sym::ArrayBinding A;
  A.Lo = 1;
  for (int K = 0; K < 50; ++K)
    A.Vals.push_back(K * 3);
  B.setArray(IB, A);

  HoistCache Cache;
  bool Hit = false;
  auto V1 = Cache.emptiness(S, B, Sym, Hit);
  ASSERT_TRUE(V1.has_value());
  EXPECT_FALSE(Hit);
  EXPECT_FALSE(*V1); // The set is nonempty.
  auto V2 = Cache.emptiness(S, B, Sym, Hit);
  EXPECT_TRUE(Hit); // Second evaluation is a cache hit.
  EXPECT_EQ(*V1, *V2);
  // Different data invalidates the key.
  A.Vals[0] = 999;
  B.setArray(IB, A);
  auto V3 = Cache.emptiness(S, B, Sym, Hit);
  EXPECT_FALSE(Hit);
  ASSERT_TRUE(V3.has_value());
}

TEST_F(RtTest, ComputeBoundsMatchesBruteForce) {
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  const usr::USR *S =
      U.recur(I, c(1), s("N"),
              U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(3)));
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 40);
  sym::ArrayBinding A;
  A.Lo = 1;
  int64_t Min = 1 << 30, Max = -1;
  for (int K = 0; K < 40; ++K) {
    int64_t V = (K * 37) % 101;
    A.Vals.push_back(V);
    Min = std::min(Min, V);
    Max = std::max(Max, V + 2);
  }
  B.setArray(IB, A);
  ThreadPool Pool(4);
  Executor E(Prog, U);
  int64_t Lo = 0, Hi = -1;
  ASSERT_TRUE(E.computeBounds(S, B, Pool, Lo, Hi));
  EXPECT_EQ(Lo, Min);
  EXPECT_EQ(Hi, Max);
}

TEST_F(RtTest, CivSliceComputesPrefixValues) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId NSP = Sym.symbol("NSP", 0, true);
  sym::SymbolId Civ = Sym.symbol("civ", 1);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  DoLoop *L = Prog.make<DoLoop>("civ", I, c(1), s("N"), 1);
  DoLoop *Inner = Prog.make<DoLoop>("civ_j", J, c(1),
                                    Sym.arrayRef(NSP, Sym.symRef(I)), 2);
  Inner->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.addConst(Sym.add(Sym.symRef(Civ), Sym.symRef(J)),
                                  -1)},
      std::vector<ArrayAccess>{}, false, 0));
  L->append(Inner);
  L->append(Prog.make<CivIncrStmt>(Civ, Sym.arrayRef(NSP, Sym.symRef(I))));

  summary::SummaryBuilder SB(U, Prog);
  summary::CivPlan Plan;
  (void)SB.summarizeIteration(*L, Plan);
  ASSERT_EQ(Plan.Civs.size(), 1u);

  Memory M;
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 4);
  B.setScalar(Civ, 0);
  sym::ArrayBinding NV;
  NV.Lo = 1;
  NV.Vals = {3, 1, 0, 5};
  B.setArray(NSP, NV);
  Executor E(Prog, U);
  E.runCivSlice(*L, Plan, M, B);
  const sym::ArrayBinding *Pre = B.array(Plan.Civs[0].EntryArr);
  ASSERT_NE(Pre, nullptr);
  // Prefix sums: 0, 3, 4, 4, 9 (the last entry is the final value).
  EXPECT_EQ(Pre->Vals, (std::vector<int64_t>{0, 3, 4, 4, 9}));
}

TEST_F(RtTest, ReductionPrivateCopiesMatchDirect) {
  // A pure reduction loop: parallel private-copy merge must equal
  // sequential accumulation (up to FP tolerance).
  sym::SymbolId A = Sym.symbol("A", 0, true);
  sym::SymbolId QQ = Sym.symbol("Q", 0, true);
  Main->declareArray(ArrayDecl{A, nullptr, false});
  Main->declareArray(ArrayDecl{QQ, nullptr, true});
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("red", I, c(1), s("N"), 1);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{A, Sym.arrayRef(QQ, Sym.symRef(I))},
      std::vector<ArrayAccess>{}, true, 0));

  auto Setup = [&](Memory &M, sym::Bindings &B) {
    int64_t N = 500;
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding QV;
    QV.Lo = 1;
    for (int64_t K = 0; K < N; ++K)
      QV.Vals.push_back(K % 7); // Heavy collisions.
    B.setArray(QQ, QV);
    M.alloc(A, 8);
  };
  Memory SeqM, ParM;
  sym::Bindings SeqB, ParB;
  Setup(SeqM, SeqB);
  Setup(ParM, ParB);
  analysis::LoopPlan Plan = planFor(L, &ParB);
  Executor E(Prog, U);
  E.runSequential(*L, SeqM, SeqB);
  ThreadPool Pool(4);
  ExecStats S = E.runPlanned(Plan, ParM, ParB, Pool);
  EXPECT_TRUE(S.RanParallel);
  for (int K = 0; K < 8; ++K)
    EXPECT_NEAR((*SeqM.find(A))[K], (*ParM.find(A))[K], 1e-9);
}

TEST_F(RtTest, CallSiteAliasingResolvesNestedOffsets) {
  // main calls work(X + 10) which calls inner(formal + 5): stores land at
  // base offset 15.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId F1 = Sym.symbol("F1", 0, true);
  sym::SymbolId F2 = Sym.symbol("F2", 0, true);
  Subroutine *InnerS = Prog.makeSubroutine("inner");
  {
    sym::SymbolId J = Sym.symbol("j_in", 0);
    DoLoop *D = Prog.make<DoLoop>("d", J, c(1), c(4), 1);
    D->append(Prog.make<AssignStmt>(
        ArrayAccess{F2, Sym.addConst(Sym.symRef(J), -1)},
        std::vector<ArrayAccess>{}, false, 0));
    InnerS->append(D);
  }
  Subroutine *Work = Prog.makeSubroutine("work");
  Work->append(Prog.make<CallStmt>(
      InnerS, std::vector<CallStmt::ArrayArg>{{F2, F1, c(5)}},
      std::vector<CallStmt::ScalarArg>{}));
  Memory M;
  sym::Bindings B;
  M.alloc(X, 32);
  Executor E(Prog, U);
  std::vector<const Stmt *> Stmts{Prog.make<CallStmt>(
      Work, std::vector<CallStmt::ArrayArg>{{F1, X, c(10)}},
      std::vector<CallStmt::ScalarArg>{})};
  E.runStmts(Stmts, M, B);
  for (int K = 0; K < 32; ++K) {
    if (K >= 15 && K < 19)
      EXPECT_NE((*M.find(X))[K], 0.0) << K;
    else
      EXPECT_EQ((*M.find(X))[K], 0.0) << K;
  }
}

} // namespace
