//===- tests/usr_test.cpp - USR language unit tests -----------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "usr/USREval.h"
#include "usr/USR.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::usr;

namespace {

class UsrTest : public ::testing::Test {
protected:
  UsrTest() : P(Sym), U(Sym, P) {}
  sym::Context Sym;
  pdag::PredContext P;
  USRContext U;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }

  std::vector<int64_t> evalPts(const USR *S, sym::Bindings &B) {
    auto V = evalUSR(S, B);
    EXPECT_TRUE(V.has_value());
    return V.value_or(std::vector<int64_t>{});
  }
};

TEST_F(UsrTest, EmptyFolding) {
  const USR *E = U.empty();
  const USR *L = U.interval(c(0), c(10));
  EXPECT_EQ(U.union2(E, L), L);
  EXPECT_EQ(U.intersect(E, L), E);
  EXPECT_EQ(U.subtract(L, E), L);
  EXPECT_EQ(U.subtract(E, L), E);
  EXPECT_EQ(U.subtract(L, L), E);
  EXPECT_EQ(U.intersect(L, L), L);
}

TEST_F(UsrTest, IntervalWithNonPositiveLengthIsEmpty) {
  EXPECT_TRUE(U.interval(c(5), c(0))->isEmptySet());
  EXPECT_TRUE(U.interval(c(5), c(-3))->isEmptySet());
}

TEST_F(UsrTest, UnionFlattensAndMergesLeaves) {
  const USR *A = U.interval(c(0), c(4));
  const USR *B = U.interval(c(10), c(4));
  const USR *C = U.interval(c(20), c(4));
  const USR *AB = U.union2(A, B);
  const USR *All = U.union2(AB, C);
  // All three LMADs merge into one leaf node.
  ASSERT_TRUE(isa<LeafUSR>(All));
  EXPECT_EQ(cast<LeafUSR>(All)->getLMADs().size(), 3u);
}

TEST_F(UsrTest, GateFolding) {
  const USR *L = U.interval(c(0), c(4));
  EXPECT_EQ(U.gate(P.getTrue(), L), L);
  EXPECT_TRUE(U.gate(P.getFalse(), L)->isEmptySet());
  // Nested gates conjoin.
  const pdag::Pred *G1 = P.ne(s("SYM"), c(1));
  const pdag::Pred *G2 = P.gt(s("NP"), c(0));
  const USR *Nested = U.gate(G1, U.gate(G2, L));
  ASSERT_TRUE(isa<GateUSR>(Nested));
  EXPECT_EQ(cast<GateUSR>(Nested)->getGate(), P.and2(G1, G2));
}

TEST_F(UsrTest, SameGateUnionMerges) {
  const pdag::Pred *G = P.ne(s("SYM"), c(1));
  const USR *A = U.gate(G, U.interval(c(0), c(4)));
  const USR *B = U.gate(G, U.interval(c(100), c(4)));
  const USR *Un = U.union2(A, B);
  ASSERT_TRUE(isa<GateUSR>(Un));
  EXPECT_EQ(cast<GateUSR>(Un)->getGate(), G);
}

TEST_F(UsrTest, SubtractReassociates) {
  // (A - B) - C  ==>  A - (B u C)  (Fig. 8a, applied in the constructor).
  const USR *A = U.interval(c(0), s("n"));
  const USR *B = U.interval(c(0), c(3));
  const USR *C = U.interval(c(5), c(3));
  const USR *S = U.subtract(U.subtract(A, B), C);
  const auto *Bin = dyn_cast<BinaryUSR>(S);
  ASSERT_NE(Bin, nullptr);
  EXPECT_EQ(Bin->getLHS(), A);
  EXPECT_EQ(Bin->getRHS(), U.union2(B, C));
}

TEST_F(UsrTest, GatePullsOutOfSubtractLHS) {
  const pdag::Pred *G = P.ne(s("SYM"), c(1));
  const USR *A = U.interval(c(0), s("n"));
  const USR *B = U.interval(c(0), c(3));
  const USR *S = U.subtract(U.gate(G, A), B);
  ASSERT_TRUE(isa<GateUSR>(S));
  EXPECT_EQ(cast<GateUSR>(S)->getChild(), U.subtract(A, B));
}

TEST_F(UsrTest, RecurAggregatesAffineLeaf) {
  // U_{i=1..N} [32(i-1), 32(i-1)+NS-1] folds to a gated 2-dim leaf.
  sym::SymbolId I = Sym.symbol("i", 1);
  const USR *Body = U.interval(Sym.mulConst(Sym.addConst(Sym.symRef(I), -1), 32),
                               s("NS"));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  // Shape: gate(1 <= N) # leaf with a new [32]-stride dimension.
  const auto *G = dyn_cast<GateUSR>(R);
  ASSERT_NE(G, nullptr);
  const auto *L = dyn_cast<LeafUSR>(G->getChild());
  ASSERT_NE(L, nullptr);
  ASSERT_EQ(L->getLMADs().size(), 1u);
  EXPECT_EQ(L->getLMADs()[0].rank(), 2u);
  EXPECT_EQ(L->getLMADs()[0].dims()[1].Stride, c(32));
}

TEST_F(UsrTest, RecurInvariantBodyGates) {
  sym::SymbolId I = Sym.symbol("i", 1);
  const USR *Body = U.interval(c(0), s("NS"));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  EXPECT_EQ(R, U.gate(P.le(c(1), s("N")), Body));
}

TEST_F(UsrTest, RecurIndexArrayBodyStaysIrreducible) {
  // Offset IB(i): aggregation fails, an irreducible node remains.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(4));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  EXPECT_TRUE(isa<RecurUSR>(R));
}

TEST_F(UsrTest, RecurUnrollsSmallConstantRange) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2));
  const USR *R = U.recur(I, c(1), c(3), Body);
  // Unrolled to a leaf set of 3 intervals (IB(1), IB(2), IB(3)).
  ASSERT_TRUE(isa<LeafUSR>(R));
  EXPECT_EQ(cast<LeafUSR>(R)->getLMADs().size(), 3u);
}

//===----------------------------------------------------------------------===//
// Evaluation semantics
//===----------------------------------------------------------------------===//

TEST_F(UsrTest, EvalSetAlgebra) {
  sym::Bindings B;
  const USR *A = U.interval(c(0), c(6));  // {0..5}
  const USR *C = U.interval(c(4), c(4));  // {4..7}
  EXPECT_EQ(evalPts(U.union2(A, C), B),
            (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(evalPts(U.intersect(A, C), B), (std::vector<int64_t>{4, 5}));
  EXPECT_EQ(evalPts(U.subtract(A, C), B),
            (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST_F(UsrTest, EvalGate) {
  sym::Bindings B;
  const USR *A = U.interval(c(0), c(3));
  const USR *G = U.gate(P.ne(s("SYM"), c(1)), A);
  B.setScalar(Sym.symbol("SYM"), 0);
  EXPECT_EQ(evalPts(G, B).size(), 3u);
  B.setScalar(Sym.symbol("SYM"), 1);
  EXPECT_TRUE(evalPts(G, B).empty());
}

TEST_F(UsrTest, EvalRecurWithIndexArray) {
  // U_{i=1..3} [IB(i), IB(i)+1].
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 3);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {10, 20, 21};
  B.setArray(IB, A);
  EXPECT_EQ(evalPts(R, B), (std::vector<int64_t>{10, 11, 20, 21, 22}));
}

TEST_F(UsrTest, EvalPartialRecurrenceTriangle) {
  // U_{k=1..i-1} {k} under i = 4 gives {1,2,3}.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(K)), c(1));
  const USR *R = U.recur(K, c(1), Sym.addConst(Sym.symRef(I), -1), Body);
  sym::Bindings B;
  B.setScalar(I, 4);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {1, 2, 3, 4};
  B.setArray(IB, A);
  EXPECT_EQ(evalPts(R, B), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(UsrTest, EvalEmptyRangeRecur) {
  sym::SymbolId K = Sym.symbol("k", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(K)), c(1));
  const USR *R = U.recur(K, c(1), c(0), Body);
  sym::Bindings B;
  EXPECT_TRUE(evalPts(R, B).empty());
}

TEST_F(UsrTest, EvalFailsOnUnbound) {
  sym::Bindings B;
  const USR *A = U.interval(s("unbound"), c(3));
  EXPECT_FALSE(evalUSR(A, B).has_value());
}

TEST_F(UsrTest, SubstituteRebindsRecurrenceCorrectly) {
  // Substituting the outer variable inside a partial recurrence: the
  // paper's Eq. 2 construction (WF_k from WF_i).
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *WFi = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(4));
  std::map<sym::SymbolId, const sym::Expr *> M{{I, Sym.symRef(K)}};
  const USR *WFk = U.substitute(WFi, M);
  EXPECT_TRUE(WFk->dependsOn(K));
  EXPECT_FALSE(WFk->dependsOn(I));
}

TEST_F(UsrTest, PrintingIsReadable) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(4));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  std::string Str = R->toString(Sym);
  EXPECT_NE(Str.find("U(i=1..N:"), std::string::npos);
  EXPECT_NE(Str.find("IB(i)"), std::string::npos);
}

} // namespace
