//===- tests/usr_transform_test.cpp - USR reshaping tests -----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "usr/USREval.h"
#include "usr/USRTransform.h"

#include <gtest/gtest.h>

#include <set>

using namespace halo;
using namespace halo::usr;

namespace {

class UsrTransformTest : public ::testing::Test {
protected:
  UsrTransformTest() : P(Sym), U(Sym, P) {}
  sym::Context Sym;
  pdag::PredContext P;
  USRContext U;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
};

TEST_F(UsrTransformTest, ViewUMEGDetectsExclusiveGates) {
  const pdag::Pred *G1 = P.ne(s("SYM"), c(1));
  const pdag::Pred *G2 = P.eq(s("SYM"), c(1));
  const USR *S = U.union2(U.gate(G1, U.interval(c(0), c(4))),
                          U.gate(G2, U.interval(c(8), c(4))));
  auto V = viewUMEG(U, S);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->Components.size(), 2u);
  EXPECT_TRUE(V->Ungated->isEmptySet());
}

TEST_F(UsrTransformTest, ViewUMEGRejectsOverlappingGates) {
  const pdag::Pred *G1 = P.ge(s("a"), c(0));
  const pdag::Pred *G2 = P.ge(s("a"), c(5)); // Overlaps G1.
  const USR *S = U.union2(U.gate(G1, U.interval(c(0), c(4))),
                          U.gate(G2, U.interval(c(8), c(4))));
  EXPECT_FALSE(viewUMEG(U, S).has_value());
}

TEST_F(UsrTransformTest, UMEGSubtractDistributes) {
  // The Fig. 3(c) / Fig. 4 shape arises from UMEG distribution:
  //   (g#R u !g#R) - (g#W)  ==>  g#(R - W) u !g#R.
  const pdag::Pred *G = P.ne(s("SYM"), c(1));
  const pdag::Pred *NG = P.eq(s("SYM"), c(1));
  const USR *R = U.interval(c(0), s("NS"));
  const USR *W = U.interval(c(0), Sym.mulConst(s("NP"), 16));
  const USR *X = U.union2(U.gate(G, R), U.gate(NG, R));
  const USR *Y = U.gate(G, W);
  const USR *D = reshapeUMEG(U, U.subtract(X, Y));
  // Expected: g#(R - W) u !g#R.
  const USR *Expected =
      U.union2(U.gate(G, U.subtract(R, W)), U.gate(NG, R));
  EXPECT_EQ(D, Expected);
}

TEST_F(UsrTransformTest, UMEGIntersectKeepsOnlyMatchingGate) {
  const pdag::Pred *G = P.ne(s("SYM"), c(1));
  const pdag::Pred *NG = P.eq(s("SYM"), c(1));
  const USR *A = U.interval(c(0), c(8));
  const USR *B = U.interval(c(4), c(8));
  const USR *X = U.union2(U.gate(G, A), U.gate(NG, B));
  const USR *Y = U.gate(G, U.interval(c(6), c(2)));
  const USR *D = reshapeUMEG(U, U.intersect(X, Y));
  // Under NG, Y is invisible: NG-component intersects with empty.
  sym::Bindings Bind;
  Bind.setScalar(Sym.symbol("SYM"), 1); // NG holds.
  auto V = evalUSR(D, Bind);
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(V->empty());
  Bind.setScalar(Sym.symbol("SYM"), 0); // G holds: {6,7} visible.
  V = evalUSR(D, Bind);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, (std::vector<int64_t>{6, 7}));
}

TEST_F(UsrTransformTest, UMEGPreservesSemantics) {
  // Property: reshapeUMEG result evaluates identically.
  Rng R(7);
  const pdag::Pred *G = P.ne(s("SYM"), c(1));
  const pdag::Pred *NG = P.eq(s("SYM"), c(1));
  const USR *X = U.union2(U.gate(G, U.interval(s("a"), c(6))),
                          U.gate(NG, U.interval(c(0), c(9))));
  const USR *Y = U.union2(U.gate(G, U.interval(c(2), c(6))),
                          U.gate(NG, U.interval(s("b"), c(3))));
  for (USRKind Op : {USRKind::Subtract, USRKind::Intersect}) {
    const USR *In = Op == USRKind::Subtract ? U.subtract(X, Y)
                                            : U.intersect(X, Y);
    const USR *Out = reshapeUMEG(U, In);
    for (int Trial = 0; Trial < 40; ++Trial) {
      sym::Bindings B;
      B.setScalar(Sym.symbol("SYM"), R.nextInRange(0, 2));
      B.setScalar(Sym.symbol("a"), R.nextInRange(-4, 8));
      B.setScalar(Sym.symbol("b"), R.nextInRange(-4, 8));
      auto VI = evalUSR(In, B), VO = evalUSR(Out, B);
      ASSERT_TRUE(VI.has_value());
      ASSERT_TRUE(VO.has_value());
      EXPECT_EQ(*VI, *VO);
    }
  }
}

TEST_F(UsrTransformTest, InvariantOverestimateAggregatesLeaf) {
  // [32(i-1), 32(i-1)+7] widened over i in [1,N].
  sym::SymbolId I = Sym.symbol("i", 1);
  const USR *S = U.interval(
      Sym.mulConst(Sym.addConst(Sym.symRef(I), -1), 32), c(8));
  auto O = invariantOverestimate(U, S, I, c(1), s("N"));
  ASSERT_TRUE(O.has_value());
  EXPECT_FALSE((*O)->dependsOn(I));
  // Superset property on concrete instances.
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 5);
  auto Wide = evalUSR(*O, B);
  ASSERT_TRUE(Wide.has_value());
  std::set<int64_t> WideSet(Wide->begin(), Wide->end());
  for (int64_t IV = 1; IV <= 5; ++IV) {
    B.setScalar(I, IV);
    auto Inst = evalUSR(S, B);
    ASSERT_TRUE(Inst.has_value());
    for (int64_t X : *Inst)
      EXPECT_TRUE(WideSet.count(X));
  }
}

TEST_F(UsrTransformTest, InvariantOverestimateDropsVariantGate) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId X = Sym.symbol("X", 0, true);
  const pdag::Pred *VarGate = P.ne(Sym.arrayRef(X, Sym.symRef(I)), c(1));
  const USR *S = U.gate(VarGate, U.interval(c(0), s("NS")));
  auto O = invariantOverestimate(U, S, I, c(1), s("N"));
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(*O, U.interval(c(0), s("NS")));
}

TEST_F(UsrTransformTest, InvariantOverestimateDropsVariantSubtrahend) {
  sym::SymbolId I = Sym.symbol("i", 1);
  const USR *A = U.interval(c(0), s("NS"));
  const USR *B = U.interval(Sym.symRef(I), c(4));
  auto O = invariantOverestimate(U, U.subtract(A, B), I, c(1), s("N"));
  ASSERT_TRUE(O.has_value());
  EXPECT_EQ(*O, A);
}

TEST_F(UsrTransformTest, InvariantOverestimateFailsOnIndexArrayLeaf) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *S = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(4));
  EXPECT_FALSE(invariantOverestimate(U, S, I, c(1), s("N")).has_value());
}

TEST_F(UsrTransformTest, InvariantOverestimateWidensInnerRecurrence) {
  // U_{k=1..i-1} [IB(k),..] over i in [1,N] widens to U_{k=1..N-1}.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(K)), c(4));
  const USR *R = U.recur(K, c(1), Sym.addConst(Sym.symRef(I), -1), Body);
  auto O = invariantOverestimate(U, R, I, c(1), s("N"));
  ASSERT_TRUE(O.has_value());
  const auto *OR = dyn_cast<RecurUSR>(*O);
  ASSERT_NE(OR, nullptr);
  EXPECT_EQ(OR->getHi(), Sym.addConst(s("N"), -1));
}

TEST_F(UsrTransformTest, StripForBoundsRemovesSubtractionAndGates) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *A = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(8));
  const USR *Bad = U.interval(c(2), c(2));
  const pdag::Pred *G = P.ne(Sym.arrayRef(IB, Sym.symRef(I)), c(0));
  const USR *S =
      U.recur(I, c(1), s("N"), U.gate(G, U.subtract(A, Bad)));
  const USR *Stripped = stripForBounds(U, S);
  // Only recur/leaf remain.
  const auto *R = dyn_cast<RecurUSR>(Stripped);
  ASSERT_NE(R, nullptr);
  EXPECT_TRUE(isa<LeafUSR>(R->getBody()));
  // Superset check on concrete data.
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 3);
  sym::ArrayBinding AB;
  AB.Lo = 1;
  AB.Vals = {0, 4, 9};
  B.setArray(IB, AB);
  auto VS = evalUSR(S, B);
  auto VT = evalUSR(Stripped, B);
  ASSERT_TRUE(VS.has_value() && VT.has_value());
  std::set<int64_t> TSet(VT->begin(), VT->end());
  for (int64_t X : *VS)
    EXPECT_TRUE(TSet.count(X));
}

} // namespace
