//===- tests/serve_test.cpp - Serving-engine unit & parity tests ----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The serving contract: randomized requests submitted concurrently from
// several client threads, served by a sharded multi-program engine, must
// produce bit-identical Memory and the same ExecStats classification as
// executing the same requests one-by-one through a lone session::Session.
// CI runs this suite under ThreadSanitizer (shards, the bounded MPMC
// queue, the worker pool and the config lock are the surfaces).
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "support/FaultInjection.h"
#include "support/Rng.h"
#include "suite/Suite.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <memory>
#include <stdexcept>
#include <thread>
#include <gtest/gtest.h>

using namespace halo;

namespace {

void expectMemoryEq(const rt::Memory &A, const rt::Memory &B,
                    const char *What) {
  ASSERT_EQ(A.arrays().size(), B.arrays().size()) << What;
  for (const auto &KV : A.arrays()) {
    auto It = B.arrays().find(KV.first);
    ASSERT_NE(It, B.arrays().end()) << What;
    ASSERT_EQ(KV.second.size(), It->second.size()) << What;
    if (!KV.second.empty())
      EXPECT_EQ(std::memcmp(KV.second.data(), It->second.data(),
                            KV.second.size() * sizeof(double)),
                0)
          << What;
  }
}

/// One served program: the four-loop pattern mix of session_test (an O(1)
/// symbolic-stride predicate, an O(N) monotonicity predicate, a hoistable
/// exact test and an injectivity reduction).
struct ServedProgram {
  suite::Benchmark B;
  suite::BenchBuilder BB{B};
  ir::DoLoop *Strided = nullptr, *Blocks = nullptr, *Irregular = nullptr,
             *Reduce = nullptr;
  sym::SymbolId XS, XB, XI, XR, IB, IDX, JDX, Q;
  int64_t N = 160;

  ServedProgram() {
    XS = BB.dataArray("XS", BB.Sym.mulConst(BB.s("N"), 4));
    XB = BB.dataArray("XB", BB.Sym.mulConst(BB.s("N"), 8));
    XI = BB.dataArray("XI", BB.Sym.mulConst(BB.s("N"), 2));
    XR = BB.dataArray("XR", BB.Sym.mulConst(BB.s("N"), 2));
    IB = BB.indexArray("IB");
    IDX = BB.indexArray("IDX");
    JDX = BB.indexArray("JDX");
    Q = BB.indexArray("Q");
    Strided = suite::makeSymbolicStrideLoop(BB, "strided", "i", XS, "s",
                                            BB.s("N"), 0);
    Blocks = suite::makeMonotonicBlockLoop(BB, "blocks", "i", XB, IB,
                                           BB.c(4), BB.s("N"), 0);
    Irregular = suite::makeIrregularLoop(BB, "irr", "i", XI, IDX, JDX,
                                         BB.s("N"), 0);
    Reduce = BB.loop("reduce", "i", BB.c(1), BB.s("N"), 1);
    Reduce->append(
        BB.reduce(XR, BB.Sym.arrayRef(Q, BB.sv(BB.Sym.symbol("i", 1)))));
  }

  std::vector<ir::DoLoop *> loops() {
    return {Strided, Blocks, Irregular, Reduce};
  }

  analysis::AnalyzerOptions optsFor(const ir::DoLoop *L) {
    analysis::AnalyzerOptions O;
    O.HoistableContext = (L == Irregular);
    return O;
  }

  /// Builds one request dataset deterministically from \p Seed. Seeds map
  /// to predicate-pass / predicate-fail / exact-test / speculation
  /// outcomes, so the randomized requests cover every governor path.
  void dataset(uint64_t Seed, rt::Memory &M, sym::Bindings &Bd) {
    Rng R(Seed * 2654435761u + 17);
    Bd.setScalar(BB.Sym.symbol("N"), N);
    M.alloc(XS, static_cast<size_t>(4 * N));
    M.alloc(XB, static_cast<size_t>(8 * N + 16));
    M.alloc(XI, static_cast<size_t>(2 * N));
    M.alloc(XR, static_cast<size_t>(2 * N));
    Bd.setScalar(BB.Sym.symbol("s"), R.nextInRange(1, 3));
    {
      bool Monotone = R.chance(2, 3);
      sym::ArrayBinding A;
      A.Lo = 1;
      for (int64_t K = 0; K < N; ++K)
        A.Vals.push_back(Monotone ? 1 + K * R.nextInRange(4, 5) : 1 + K * 2);
      Bd.setArray(IB, A);
    }
    {
      bool Disjoint = R.chance(1, 2);
      sym::ArrayBinding AI, AJ;
      AI.Lo = AJ.Lo = 1;
      for (int64_t K = 0; K < N; ++K) {
        AI.Vals.push_back(Disjoint ? K : R.nextInRange(0, N - 1));
        AJ.Vals.push_back(Disjoint ? N + K : R.nextInRange(0, N - 1));
      }
      Bd.setArray(IDX, AI);
      Bd.setArray(JDX, AJ);
    }
    {
      int Mode = static_cast<int>(R.nextBelow(3));
      sym::ArrayBinding AQ;
      if (Mode == 1) {
        AQ = suite::permutationArray(N, R.next());
      } else {
        AQ.Lo = 1;
        for (int64_t K = 0; K < N; ++K)
          AQ.Vals.push_back(Mode == 0 ? K : K / 2);
      }
      Bd.setArray(Q, AQ);
    }
  }
};

/// Registers both programs and prepares every loop (the warm-up phase).
void prepareAll(serve::Engine &E, std::vector<ServedProgram> &Progs,
                std::vector<serve::ProgramId> &Ids) {
  for (ServedProgram &P : Progs) {
    serve::ProgramId Id = E.addProgram(P.B.prog(), P.B.usr());
    Ids.push_back(Id);
    for (ir::DoLoop *L : P.loops())
      E.prepare(Id, *L, P.optsFor(L));
  }
}

TEST(ServeEngineTest, ConcurrentSubmissionsMatchSequentialSession) {
  serve::EngineOptions EO;
  EO.Shards = 3;
  EO.Workers = 3;
  EO.QueueCapacity = 8; // Small on purpose: exercises push backpressure.
  EO.Session.Threads = 2;

  std::vector<ServedProgram> Progs(2);
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  // Request plan: (program, loop, seed) descriptors fixed up front so the
  // engine run and the sequential reference see identical datasets.
  struct Desc {
    size_t Prog;
    size_t Loop;
    uint64_t Seed;
  };
  const size_t NumRequests = 48;
  std::vector<Desc> Plan;
  for (size_t I = 0; I < NumRequests; ++I)
    Plan.push_back(Desc{I % Progs.size(), (I / 2) % 4, 1000 + I});

  struct Slot {
    rt::Memory M;
    sym::Bindings B;
    std::future<serve::Response> Fut;
  };
  std::vector<Slot> Slots(NumRequests);

  // 4 closed-loop clients, interleaved request ranges.
  const unsigned Clients = 4;
  std::vector<std::thread> Cs;
  for (unsigned C = 0; C < Clients; ++C)
    Cs.emplace_back([&, C] {
      for (size_t I = C; I < NumRequests; I += Clients) {
        const Desc &D = Plan[I];
        ServedProgram &P = Progs[D.Prog];
        P.dataset(D.Seed, Slots[I].M, Slots[I].B);
        serve::Request Req;
        Req.Program = Ids[D.Prog];
        Req.Loop = P.loops()[D.Loop];
        Req.M = &Slots[I].M;
        Req.B = &Slots[I].B;
        Slots[I].Fut = E.submit(Req);
      }
    });
  for (std::thread &T : Cs)
    T.join();
  E.drain();

  // Sequential reference: one lone session per program, same options as
  // the shard sessions, requests replayed in plan order.
  std::vector<std::unique_ptr<session::Session>> Refs;
  for (ServedProgram &P : Progs) {
    Refs.push_back(std::make_unique<session::Session>(P.B.prog(), P.B.usr(),
                                                      EO.Session));
    for (ir::DoLoop *L : P.loops())
      Refs.back()->prepare(*L, P.optsFor(L));
  }
  for (size_t I = 0; I < NumRequests; ++I) {
    const Desc &D = Plan[I];
    ServedProgram &P = Progs[D.Prog];
    ir::DoLoop *L = P.loops()[D.Loop];

    ASSERT_TRUE(Slots[I].Fut.valid());
    serve::Response Resp = Slots[I].Fut.get();
    ASSERT_TRUE(Resp.OK) << Resp.Error;
    EXPECT_EQ(Resp.Shard, E.shardOf(Ids[D.Prog], *L));
    ASSERT_EQ(Resp.Stats.size(), 1u);

    rt::Memory MR;
    sym::Bindings BR;
    P.dataset(D.Seed, MR, BR);
    rt::ExecStats Ref = Refs[D.Prog]->run(*L, MR, BR);

    const rt::ExecStats &Got = Resp.Stats[0];
    EXPECT_EQ(Got.RanParallel, Ref.RanParallel) << L->getLabel();
    EXPECT_EQ(Got.UsedTLS, Ref.UsedTLS) << L->getLabel();
    EXPECT_EQ(Got.TLSSucceeded, Ref.TLSSucceeded) << L->getLabel();
    EXPECT_EQ(Got.UsedExactTest, Ref.UsedExactTest) << L->getLabel();
    EXPECT_EQ(Got.CascadeDepthUsed, Ref.CascadeDepthUsed) << L->getLabel();
    expectMemoryEq(Slots[I].M, MR, L->getLabel().c_str());
  }

  serve::ServeStats St = E.stats();
  EXPECT_EQ(St.Submitted, NumRequests);
  EXPECT_EQ(St.Rejected, 0u);
  EXPECT_EQ(St.Unroutable, 0u);
  serve::ShardStats T = St.totals();
  EXPECT_EQ(T.Completed, NumRequests);
  EXPECT_EQ(T.Failed, 0u);
  EXPECT_EQ(T.Executions, NumRequests);
  EXPECT_TRUE(T.Exec.RanParallel); // Some dataset must have parallelized.
}

TEST(ServeEngineTest, PreparingNewLoopsWhileServingIsExcluded) {
  // The config lock must make warm-up (which interns into the shared
  // contexts) mutually exclusive with request processing: clients hammer
  // one loop while the main thread prepares the remaining loops of the
  // same program. TSan verifies the exclusion.
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 2;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  serve::Engine E(EO);
  serve::ProgramId Id = E.addProgram(P.B.prog(), P.B.usr());
  E.prepare(Id, *P.Strided, P.optsFor(P.Strided));

  std::vector<std::unique_ptr<rt::Memory>> Ms;
  std::vector<std::unique_ptr<sym::Bindings>> Bs;
  for (int I = 0; I < 16; ++I) {
    Ms.push_back(std::make_unique<rt::Memory>());
    Bs.push_back(std::make_unique<sym::Bindings>());
    P.dataset(77 + I, *Ms.back(), *Bs.back());
  }

  std::vector<std::future<serve::Response>> Futs(16);
  std::thread Client([&] {
    for (int I = 0; I < 16; ++I) {
      serve::Request Req;
      Req.Program = Id;
      Req.Loop = P.Strided;
      Req.M = Ms[I].get();
      Req.B = Bs[I].get();
      Futs[I] = E.submit(Req);
    }
  });
  // Concurrent warm-up of more loops (analysis interns USRs/predicates).
  for (ir::DoLoop *L : {P.Blocks, P.Irregular, P.Reduce})
    E.prepare(Id, *L, P.optsFor(L));
  Client.join();
  E.drain();
  for (auto &F : Futs) {
    serve::Response Resp = F.get();
    EXPECT_TRUE(Resp.OK) << Resp.Error;
  }
}

TEST(ServeEngineTest, InvalidRequestsResolveAsErrors) {
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 1;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  serve::Engine E(EO);
  serve::ProgramId Id = E.addProgram(P.B.prog(), P.B.usr());
  E.prepare(Id, *P.Strided, P.optsFor(P.Strided));

  rt::Memory M;
  sym::Bindings B;
  P.dataset(5, M, B);

  // Unknown program id.
  serve::Request Req;
  Req.Program = 42;
  Req.Loop = P.Strided;
  Req.M = &M;
  Req.B = &B;
  serve::Response Resp = E.submit(Req).get();
  EXPECT_FALSE(Resp.OK);
  EXPECT_NE(Resp.Error.find("unknown program"), std::string::npos);

  // Null loop.
  Req.Program = Id;
  Req.Loop = nullptr;
  Resp = E.submit(Req).get();
  EXPECT_FALSE(Resp.OK);

  // Known program, loop never prepared.
  Req.Loop = P.Blocks;
  Resp = E.submit(Req).get();
  EXPECT_FALSE(Resp.OK);
  EXPECT_NE(Resp.Error.find("never prepared"), std::string::npos);

  // Prepared loop but no dataset.
  Req.Loop = P.Strided;
  Req.M = nullptr;
  Resp = E.submit(Req).get();
  EXPECT_FALSE(Resp.OK);

  serve::ServeStats St = E.stats();
  EXPECT_EQ(St.Unroutable, 2u); // Unknown program + null loop.
  EXPECT_EQ(St.totals().Failed, 2u); // Unprepared loop + null dataset.
  EXPECT_EQ(St.totals().Completed, 0u);
}

TEST(ServeEngineTest, FindLoopAddressesPreparedLoopsByLabel) {
  serve::EngineOptions EO;
  std::vector<ServedProgram> Progs(2);
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  EXPECT_EQ(E.findLoop(Ids[0], "strided"), Progs[0].Strided);
  EXPECT_EQ(E.findLoop(Ids[1], "strided"), Progs[1].Strided);
  EXPECT_EQ(E.findLoop(Ids[0], "irr"), Progs[0].Irregular);
  EXPECT_EQ(E.findLoop(Ids[0], "no-such-loop"), nullptr);
  EXPECT_EQ(E.findLoop(99, "strided"), nullptr);
}

TEST(ServeEngineTest, RepeatsRunAsOneBatchAndMatchRunBatch) {
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 2;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  rt::Memory M, MR;
  sym::Bindings B, BR;
  P.dataset(9, M, B);
  P.dataset(9, MR, BR);

  serve::Request Req;
  Req.Program = Ids[0];
  Req.Loop = P.Blocks;
  Req.M = &M;
  Req.B = &B;
  Req.Repeats = 5;
  serve::Response Resp = E.submit(Req).get();
  ASSERT_TRUE(Resp.OK) << Resp.Error;
  ASSERT_EQ(Resp.Stats.size(), 5u);

  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  Ref.prepare(*P.Blocks, P.optsFor(P.Blocks));
  auto RefStats = Ref.runBatch(*P.Blocks, MR, BR, 5);
  ASSERT_EQ(RefStats.size(), 5u);
  expectMemoryEq(M, MR, "repeats");
  // Steady-state frame reuse holds inside the served batch too.
  for (size_t I = 1; I < 5; ++I)
    EXPECT_EQ(Resp.Stats[I].FrameBinds, RefStats[I].FrameBinds);

  EXPECT_EQ(E.stats().totals().Executions, 5u);
  EXPECT_EQ(E.stats().totals().Completed, 1u);
}

TEST(ServeEngineTest, DrainAndShutdownFulfillEveryAcceptedRequest) {
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;

  std::vector<std::unique_ptr<rt::Memory>> Ms;
  std::vector<std::unique_ptr<sym::Bindings>> Bs;
  std::vector<std::future<serve::Response>> Futs;
  {
    serve::EngineOptions EO;
    EO.Workers = 1;
    EO.QueueCapacity = 4;
    serve::Engine E(EO);
    prepareAll(E, Progs, Ids);
    for (int I = 0; I < 12; ++I) {
      Ms.push_back(std::make_unique<rt::Memory>());
      Bs.push_back(std::make_unique<sym::Bindings>());
      P.dataset(200 + I, *Ms.back(), *Bs.back());
      serve::Request Req;
      Req.Program = Ids[0];
      Req.Loop = P.loops()[I % 4];
      Req.M = Ms.back().get();
      Req.B = Bs.back().get();
      Futs.push_back(E.submit(Req));
    }
    E.drain();
    // After drain, every future must already be resolved.
    for (auto &F : Futs)
      EXPECT_EQ(F.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
    EXPECT_EQ(E.stats().totals().Completed, 12u);
    // Destructor path: accepted-but-undrained requests (none here) would
    // still be served; the engine must shut down cleanly regardless.
  }
  for (auto &F : Futs)
    EXPECT_TRUE(F.get().OK);
}

TEST(ServeEngineTest, ManyClientsOneLoopMatchSequentialSession) {
  // The intra-shard concurrency contract: every request targets ONE
  // prepared loop — one shard, one session — served by 4 workers at
  // once, the configuration the old shard-wide execute lock used to
  // serialize. Aggregate results must stay bit-identical to a lone
  // sequential session. Runs once per loop kind so the concurrent
  // surface covers O(1) cascades, the O(N) parallel and-reduction, the
  // hoistable exact test (shared HOIST-USR memo under contention) and
  // the reduction path. TSan-covered in CI.
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 4;
  EO.QueueCapacity = 16;

  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  for (ir::DoLoop *L : P.loops())
    Ref.prepare(*L, P.optsFor(L));

  const unsigned Clients = 4;
  const size_t PerClient = 6;
  const size_t NumRequests = Clients * PerClient;
  size_t TotalOk = 0;
  for (size_t LI = 0; LI < P.loops().size(); ++LI) {
    ir::DoLoop *L = P.loops()[LI];
    struct Slot {
      rt::Memory M;
      sym::Bindings B;
      std::future<serve::Response> Fut;
      uint64_t Seed = 0;
    };
    std::vector<Slot> Slots(NumRequests);
    // Seeds repeat (mod 4): concurrent workers race on identical
    // datasets, so HOIST-USR memo hits and context checkout happen under
    // genuine contention, not just distinct-input parallelism.
    for (size_t I = 0; I < NumRequests; ++I)
      Slots[I].Seed = 3000 + 16 * LI + (I % 4);

    std::vector<std::thread> Cs;
    for (unsigned C = 0; C < Clients; ++C)
      Cs.emplace_back([&, C] {
        for (size_t I = C; I < NumRequests; I += Clients) {
          P.dataset(Slots[I].Seed, Slots[I].M, Slots[I].B);
          serve::Request Req;
          Req.Program = Ids[0];
          Req.Loop = L;
          Req.M = &Slots[I].M;
          Req.B = &Slots[I].B;
          Slots[I].Fut = E.submit(Req);
        }
      });
    for (std::thread &T : Cs)
      T.join();
    E.drain();

    for (size_t I = 0; I < NumRequests; ++I) {
      ASSERT_TRUE(Slots[I].Fut.valid());
      serve::Response Resp = Slots[I].Fut.get();
      ASSERT_TRUE(Resp.OK) << L->getLabel() << ": " << Resp.Error;
      ASSERT_EQ(Resp.Stats.size(), 1u);
      ++TotalOk;

      rt::Memory MR;
      sym::Bindings BR;
      P.dataset(Slots[I].Seed, MR, BR);
      std::optional<rt::ExecStats> RefSt = Ref.runPrepared(*L, MR, BR);
      ASSERT_TRUE(RefSt.has_value()) << L->getLabel();

      const rt::ExecStats &Got = Resp.Stats[0];
      EXPECT_EQ(Got.RanParallel, RefSt->RanParallel) << L->getLabel();
      EXPECT_EQ(Got.UsedTLS, RefSt->UsedTLS) << L->getLabel();
      EXPECT_EQ(Got.TLSSucceeded, RefSt->TLSSucceeded) << L->getLabel();
      EXPECT_EQ(Got.UsedExactTest, RefSt->UsedExactTest) << L->getLabel();
      EXPECT_EQ(Got.CascadeDepthUsed, RefSt->CascadeDepthUsed)
          << L->getLabel();
      expectMemoryEq(Slots[I].M, MR, L->getLabel().c_str());
    }
  }
  serve::ServeStats St = E.stats();
  serve::ShardStats T = St.totals();
  EXPECT_EQ(T.Completed, TotalOk);
  EXPECT_EQ(T.Failed, 0u);
  EXPECT_EQ(T.Executions, TotalOk);
}

#if defined(__linux__)
namespace {
double processCpuSeconds() {
  timespec TS;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &TS);
  return static_cast<double>(TS.tv_sec) + 1e-9 * TS.tv_nsec;
}
} // namespace

TEST(ServeEngineTest, WorkersParkNotSpinDuringExclusivePhases) {
  // The writer-preference gate must park workers on a condition variable
  // while an exclusive phase is pending — the yield-spin it replaced
  // burned one full core per worker for the whole duration of a
  // prepare(). Process CPU time over a quiesced window is the observable:
  // spinning workers consume ~wall-clock x min(cores, workers); parked
  // workers consume (almost) nothing.
  serve::EngineOptions EO;
  EO.Shards = 1;
  EO.Workers = 3;
  EO.QueueCapacity = 8;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  std::vector<std::unique_ptr<rt::Memory>> Ms;
  std::vector<std::unique_ptr<sym::Bindings>> Bs;
  std::vector<std::future<serve::Response>> Futs;
  {
    serve::Engine::ExclusiveHold Hold = E.quiesce();
    // Workers pop these and hit the gate with requests in hand (the
    // exact spot the old code spun at).
    for (int I = 0; I < 5; ++I) {
      Ms.push_back(std::make_unique<rt::Memory>());
      Bs.push_back(std::make_unique<sym::Bindings>());
      P.dataset(400 + I, *Ms.back(), *Bs.back());
      serve::Request Req;
      Req.Program = Ids[0];
      Req.Loop = P.Strided;
      Req.M = Ms.back().get();
      Req.B = Bs.back().get();
      Futs.push_back(E.submit(Req));
    }
    // Let every worker reach the gate, then measure a quiet window.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const double Cpu0 = processCpuSeconds();
    const auto Wall0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const double CpuBurn = processCpuSeconds() - Cpu0;
    const double Wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Wall0)
            .count();
    // Generous bound for CI noise: even ONE spinning worker on one core
    // would burn ~1.0x wall.
    EXPECT_LT(CpuBurn, 0.5 * Wall)
        << "workers appear to busy-wait during an exclusive phase";
  }
  // Releasing the hold must wake the parked workers and serve everything.
  E.drain();
  for (auto &F : Futs)
    EXPECT_TRUE(F.get().OK);
}
#endif // __linux__

TEST(ServeEngineTest, DuplicateLoopLabelsAreRejectedAtPrepare) {
  // The label registry is the engine's routing address space: two
  // different loops of one program behind one label would silently route
  // findLoop traffic to whichever prepared last. prepare() must throw.
  serve::EngineOptions EO;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  serve::Engine E(EO);
  serve::ProgramId Id = E.addProgram(P.B.prog(), P.B.usr());
  E.prepare(Id, *P.Strided, P.optsFor(P.Strided));

  // A different loop under the already-registered label.
  ir::DoLoop *Dup = P.BB.loop("strided", "i", P.BB.c(1), P.BB.s("N"), 1);
  Dup->append(P.BB.reduce(
      P.XR, P.BB.Sym.arrayRef(P.Q, P.BB.sv(P.BB.Sym.symbol("i", 1)))));
  EXPECT_THROW(E.prepare(Id, *Dup), std::invalid_argument);

  // The registry still routes to the original loop, and re-preparing the
  // SAME loop under its own label stays legal (idempotent warm-up).
  EXPECT_EQ(E.findLoop(Id, "strided"), P.Strided);
  EXPECT_NO_THROW(E.prepare(Id, *P.Strided, P.optsFor(P.Strided)));

  // The engine must keep serving after the rejected prepare (the
  // exclusive section unwound cleanly).
  rt::Memory M;
  sym::Bindings B;
  P.dataset(7, M, B);
  serve::Request Req;
  Req.Program = Id;
  Req.Loop = P.Strided;
  Req.M = &M;
  Req.B = &B;
  EXPECT_TRUE(E.submit(Req).get().OK);
}

TEST(ServeEngineTest, RePrepareWhileServingKeepsServedPlansAlive) {
  // The deferred-reclaim contract: re-preparing a loop mid-traffic
  // retires the old plan instead of destroying it, so requests already
  // executing against it finish safely (TSan-covered; before the fix
  // this was a use-after-free on the plan's cascade stages).
  serve::EngineOptions EO;
  EO.Shards = 1;
  EO.Workers = 2;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  serve::Engine E(EO);
  serve::ProgramId Id = E.addProgram(P.B.prog(), P.B.usr());
  E.prepare(Id, *P.Irregular, P.optsFor(P.Irregular));

  const int Rounds = 4, PerRound = 6;
  std::vector<std::unique_ptr<rt::Memory>> Ms;
  std::vector<std::unique_ptr<sym::Bindings>> Bs;
  std::vector<std::future<serve::Response>> Futs;
  std::vector<uint64_t> Seeds;
  for (int R = 0; R < Rounds; ++R) {
    for (int I = 0; I < PerRound; ++I) {
      uint64_t Seed = 9000 + static_cast<uint64_t>(R) * PerRound + I;
      Seeds.push_back(Seed);
      Ms.push_back(std::make_unique<rt::Memory>());
      Bs.push_back(std::make_unique<sym::Bindings>());
      P.dataset(Seed, *Ms.back(), *Bs.back());
      serve::Request Req;
      Req.Program = Id;
      Req.Loop = P.Irregular;
      Req.M = Ms.back().get();
      Req.B = Bs.back().get();
      Futs.push_back(E.submit(Req));
    }
    // Re-analysis races the in-flight requests above (the exclusive
    // section waits for executions, the retired plan outlives them).
    E.prepare(Id, *P.Irregular, P.optsFor(P.Irregular));
  }
  E.drain();

  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  Ref.prepare(*P.Irregular, P.optsFor(P.Irregular));
  for (size_t I = 0; I < Futs.size(); ++I) {
    serve::Response Resp = Futs[I].get();
    ASSERT_TRUE(Resp.OK) << Resp.Error;
    rt::Memory MR;
    sym::Bindings BR;
    P.dataset(Seeds[I], MR, BR);
    std::optional<rt::ExecStats> RefSt = Ref.runPrepared(*P.Irregular, MR, BR);
    ASSERT_TRUE(RefSt.has_value());
    expectMemoryEq(*Ms[I], MR, "re-prepare-while-serving");
  }
}

TEST(ServeEngineTest, PrepareStatsTrafficStormKeepsSessionMapConsistent) {
  // Regression for a guard gap surfaced by the thread-safety
  // annotations: Engine::prepareImpl used to create and insert a
  // program's lazily-built Session into Shard::Sessions without holding
  // the shard mutex, leaning on the exclusive config phase alone — a
  // contract the annotations could not express and stats()' map walks
  // did not share. The map is now HALO_GUARDED_BY(Shard::M) and the
  // probe/publish happens under it (session construction and warm-start
  // stay outside, per the never-hold-Shard::M-across-prepare rule).
  // This storm drives the fixed path from every direction at once:
  // lazy first-prepare of fresh programs, re-prepare of a served loop,
  // stats() snapshots walking the session maps, and live traffic.
  // TSan in CI pins the synchronization; the parity check pins results.
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 3;
  EO.QueueCapacity = 32;

  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  // Fresh programs the operator thread registers and first-prepares
  // mid-traffic (each first prepare publishes a new session).
  const int FreshPrograms = 4;
  std::vector<ServedProgram> Fresh(FreshPrograms);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Snapshots{0};

  // Stats threads: walk the shard session maps while they grow.
  std::vector<std::thread> StatsTs;
  for (int T = 0; T < 2; ++T)
    StatsTs.emplace_back([&] {
      size_t LastPrograms = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        serve::ServeStats St = E.stats();
        size_t NumPrograms = 0;
        for (const serve::ShardStats &SS : St.Shards)
          NumPrograms += SS.Programs;
        // The session count only ever grows (sessions are retired in
        // place, never removed) — a torn map walk would break this.
        EXPECT_GE(NumPrograms, LastPrograms);
        LastPrograms = NumPrograms;
        ++Snapshots;
      }
    });

  // Client threads: steady traffic against the pre-storm program.
  struct Slot {
    rt::Memory M;
    sym::Bindings B;
    std::future<serve::Response> Fut;
    uint64_t Seed = 0;
  };
  const unsigned Clients = 3;
  const size_t PerClient = 10;
  std::vector<Slot> Slots(Clients * PerClient);
  std::vector<std::thread> Cs;
  for (unsigned C = 0; C < Clients; ++C)
    Cs.emplace_back([&, C] {
      for (size_t I = C; I < Slots.size(); I += Clients) {
        Slots[I].Seed = 7700 + (I % 5);
        P.dataset(Slots[I].Seed, Slots[I].M, Slots[I].B);
        serve::Request Req;
        Req.Program = Ids[0];
        Req.Loop = P.Irregular;
        Req.M = &Slots[I].M;
        Req.B = &Slots[I].B;
        Slots[I].Fut = E.submit(Req);
      }
    });

  // Operator: register fresh programs (lazy session publish on first
  // prepare) interleaved with re-prepares of the served loop.
  std::vector<serve::ProgramId> FreshIds;
  for (int F = 0; F < FreshPrograms; ++F) {
    serve::ProgramId Id = E.addProgram(Fresh[F].B.prog(), Fresh[F].B.usr());
    FreshIds.push_back(Id);
    E.prepare(Id, *Fresh[F].Strided, Fresh[F].optsFor(Fresh[F].Strided));
    E.prepare(Ids[0], *P.Irregular, P.optsFor(P.Irregular));
  }

  for (std::thread &T : Cs)
    T.join();
  E.drain();
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : StatsTs)
    T.join();
  EXPECT_GT(Snapshots.load(), 0u);

  // Fresh programs must be fully served after their mid-storm publish.
  for (int F = 0; F < FreshPrograms; ++F) {
    rt::Memory M;
    sym::Bindings B;
    Fresh[F].dataset(7600 + F, M, B);
    serve::Request Req;
    Req.Program = FreshIds[F];
    Req.Loop = Fresh[F].Strided;
    Req.M = &M;
    Req.B = &B;
    serve::Response Resp = E.submit(Req).get();
    EXPECT_TRUE(Resp.OK) << Resp.Error;
  }

  // And the storm traffic stayed exact: parity against a lone session.
  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  Ref.prepare(*P.Irregular, P.optsFor(P.Irregular));
  for (Slot &S : Slots) {
    ASSERT_TRUE(S.Fut.valid());
    serve::Response Resp = S.Fut.get();
    ASSERT_TRUE(Resp.OK) << Resp.Error;
    rt::Memory MR;
    sym::Bindings BR;
    P.dataset(S.Seed, MR, BR);
    ASSERT_TRUE(Ref.runPrepared(*P.Irregular, MR, BR).has_value());
    expectMemoryEq(S.M, MR, "prepare-stats-traffic-storm");
  }

  serve::ServeStats St = E.stats();
  size_t TotalPrograms = 0;
  for (const serve::ShardStats &SS : St.Shards)
    TotalPrograms += SS.Programs;
  EXPECT_EQ(TotalPrograms, 1u + FreshPrograms);
}

TEST(ServeEngineTest, TrySubmitAcceptsWithRoomAndCountsSheds) {
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::EngineOptions EO;
  EO.Workers = 1;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  rt::Memory M;
  sym::Bindings B;
  P.dataset(3, M, B);
  serve::Request Req;
  Req.Program = Ids[0];
  Req.Loop = P.Strided;
  Req.M = &M;
  Req.B = &B;
  std::future<serve::Response> Fut;
  ASSERT_TRUE(E.trySubmit(Req, Fut));
  ASSERT_TRUE(Fut.valid());
  EXPECT_TRUE(Fut.get().OK);
  E.drain();
  EXPECT_EQ(E.stats().Submitted, 1u);
  EXPECT_EQ(E.stats().Rejected, 0u);
}

//===----------------------------------------------------------------------===//
// Robustness: deadlines, cancellation, retries, circuit breaker, chaos
//===----------------------------------------------------------------------===//

/// Disarms the global fault injector on scope exit so a failing test
/// cannot poison the rest of the binary.
struct InjectorGuard {
  ~InjectorGuard() { support::FaultInjector::instance().disarm(); }
};

/// Every response must be internally consistent: OK mirrors the status,
/// failures carry a reason and never a partial success payload, and the
/// status is a named member of the taxonomy.
void expectClassified(const serve::Response &R) {
  const bool OkStatus =
      R.St == serve::Status::Ok || R.St == serve::Status::DegradedOk;
  EXPECT_EQ(R.OK, OkStatus) << serve::statusName(R.St);
  if (!R.OK) {
    EXPECT_FALSE(R.Error.empty()) << serve::statusName(R.St);
    EXPECT_TRUE(R.Stats.empty()) << serve::statusName(R.St);
  }
  EXPECT_STRNE(serve::statusName(R.St), "?");
}

TEST(ServeEngineTest, DeadlinesAndCancellationShedWithoutSideEffects) {
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 1;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  // Already-expired deadline: shed at dequeue, memory untouched.
  rt::Memory M, MTwin;
  sym::Bindings B, BTwin;
  P.dataset(11, M, B);
  P.dataset(11, MTwin, BTwin); // Never executed: the untouched baseline.
  serve::Request Req;
  Req.Program = Ids[0];
  Req.Loop = P.Strided;
  Req.M = &M;
  Req.B = &B;
  Req.Deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  serve::Response Resp = E.submit(Req).get();
  expectClassified(Resp);
  EXPECT_EQ(Resp.St, serve::Status::Expired);
  EXPECT_FALSE(Resp.OK);
  EXPECT_EQ(Resp.Shard, E.shardOf(Ids[0], *P.Strided));
  expectMemoryEq(M, MTwin, "expired request must not touch memory");

  // Pre-cancelled caller token: shed at dequeue as Cancelled.
  support::CancelToken Tok;
  Tok.cancel();
  Req.Deadline = {};
  Req.Cancel = &Tok;
  Resp = E.submit(Req).get();
  expectClassified(Resp);
  EXPECT_EQ(Resp.St, serve::Status::Cancelled);
  expectMemoryEq(M, MTwin, "cancelled request must not touch memory");

  // Cancelled-then-expired classifies by the first latched reason.
  support::CancelToken Tok2;
  Tok2.cancel();
  Req.Deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Req.Cancel = &Tok2;
  Resp = E.submit(Req).get();
  EXPECT_EQ(Resp.St, serve::Status::Cancelled);

  // A generous deadline serves normally.
  Req.Deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  Req.Cancel = nullptr;
  Resp = E.submit(Req).get();
  expectClassified(Resp);
  EXPECT_EQ(Resp.St, serve::Status::Ok);

  serve::ServeStats St = E.stats();
  serve::ShardStats T = St.totals();
  EXPECT_EQ(T.Expired, 1u);
  EXPECT_EQ(T.Cancelled, 2u);
  EXPECT_EQ(T.Completed, 1u);
  EXPECT_EQ(St.Expired, 1u); // Engine-wide mirrors of the shard rows.
  EXPECT_EQ(St.Cancelled, 2u);
}

TEST(ServeEngineTest, TransientFaultsRetryWithBackoffThenClassify) {
  InjectorGuard G;
  serve::EngineOptions EO;
  EO.Shards = 1;
  EO.Workers = 1;
  EO.MaxRetries = 3;
  EO.RetryBackoff = std::chrono::microseconds(1); // Fast test.
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  // Two injected transient failures, then success: the request recovers
  // and reports the retries it consumed.
  support::FaultInjector::instance().arm(7, 0.0);
  support::FaultInjector::instance().failNext("serve.process.transient", 2);
  rt::Memory M, MR;
  sym::Bindings B, BR;
  P.dataset(21, M, B);
  P.dataset(21, MR, BR);
  serve::Request Req;
  Req.Program = Ids[0];
  Req.Loop = P.Blocks;
  Req.M = &M;
  Req.B = &B;
  serve::Response Resp = E.submit(Req).get();
  expectClassified(Resp);
  ASSERT_EQ(Resp.St, serve::Status::Ok) << Resp.Error;
  EXPECT_EQ(Resp.Retries, 2u);

  // The recovered result is bit-identical to an unfaulted session.
  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  Ref.prepare(*P.Blocks, P.optsFor(P.Blocks));
  ASSERT_TRUE(Ref.runPrepared(*P.Blocks, MR, BR).has_value());
  expectMemoryEq(M, MR, "retried request");

  // A persistent transient fault exhausts the budget and classifies
  // ExecError (after exactly MaxRetries retries).
  support::FaultInjector::instance().armPoint("serve.process.transient",
                                              1.0);
  Resp = E.submit(Req).get();
  expectClassified(Resp);
  EXPECT_EQ(Resp.St, serve::Status::ExecError);
  EXPECT_EQ(Resp.Retries, EO.MaxRetries);
  EXPECT_NE(Resp.Error.find("transient"), std::string::npos);

  support::FaultInjector::instance().disarm();
  serve::ServeStats St = E.stats();
  serve::ShardStats T = St.totals();
  EXPECT_EQ(T.Retried, 2u + EO.MaxRetries);
  EXPECT_EQ(St.Retried, T.Retried);
  EXPECT_EQ(T.ExecErrors, 1u);
  EXPECT_EQ(T.Completed, 1u);
}

TEST(ServeEngineTest, BreakerOpensDegradesProbesAndRecovers) {
  InjectorGuard G;
  serve::EngineOptions EO;
  EO.Shards = 1;
  EO.Workers = 1; // Deterministic request ordering for the state walk.
  EO.BreakerThreshold = 2;
  EO.BreakerCooldown = 3;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  Ref.prepare(*P.Strided, P.optsFor(P.Strided));

  // Ok results are collected and verified after disarm (the reference
  // session shares the global injector, so it cannot replay while the
  // rt.exec point is armed).
  std::vector<std::pair<uint64_t, std::unique_ptr<rt::Memory>>> OkResults;
  auto Serve = [&](uint64_t Seed) {
    auto M = std::make_unique<rt::Memory>();
    sym::Bindings B;
    P.dataset(Seed, *M, B);
    serve::Request Req;
    Req.Program = Ids[0];
    Req.Loop = P.Strided;
    Req.M = M.get();
    Req.B = &B;
    serve::Response Resp = E.submit(Req).get();
    expectClassified(Resp);
    if (Resp.OK)
      OkResults.emplace_back(Seed, std::move(M));
    return Resp.St;
  };

  // Every normal-tier execution of this loop now fails.
  support::FaultInjector::instance().arm(3, 0.0);
  support::FaultInjector::instance().armPoint("rt.exec", 1.0);

  // Closed: two ExecErrors trip the breaker (threshold 2)...
  EXPECT_EQ(Serve(500), serve::Status::ExecError);
  EXPECT_EQ(Serve(501), serve::Status::ExecError);
  // ...open: the sequential tier serves (exactly) until the cooldown...
  EXPECT_EQ(Serve(502), serve::Status::DegradedOk);
  EXPECT_EQ(Serve(503), serve::Status::DegradedOk);
  // ...half-open: the cooldown-crossing request probes the (still
  // faulted) normal tier and re-opens...
  EXPECT_EQ(Serve(504), serve::Status::ExecError);
  EXPECT_EQ(Serve(505), serve::Status::DegradedOk);
  EXPECT_EQ(Serve(506), serve::Status::DegradedOk);
  // ...the fault clears: the next probe succeeds and closes the breaker.
  support::FaultInjector::instance().disarm();
  EXPECT_EQ(Serve(507), serve::Status::Ok);
  EXPECT_EQ(Serve(508), serve::Status::Ok); // Normal tier again.

  // Both tiers must have produced exact results.
  for (auto &[Seed, M] : OkResults) {
    rt::Memory MR;
    sym::Bindings BR;
    P.dataset(Seed, MR, BR);
    ASSERT_TRUE(Ref.runPrepared(*P.Strided, MR, BR).has_value());
    expectMemoryEq(*M, MR, "breaker-tier result");
  }

  serve::ServeStats St = E.stats();
  serve::ShardStats T = St.totals();
  EXPECT_EQ(T.ExecErrors, 3u);
  EXPECT_EQ(T.DegradedExecs, 4u);
  EXPECT_EQ(T.BreakerOpen, 2u); // Initial trip + the failed probe.
  EXPECT_EQ(T.Completed, 6u);   // 4 degraded + 2 normal.
  EXPECT_EQ(T.Executions, 2u);  // Normal-tier executions only.
  EXPECT_EQ(St.BreakerOpen, 2u);
  EXPECT_EQ(St.DegradedExecs, 4u);

  // Re-preparing the loop resets its breaker (fresh plan, fresh health).
  E.prepare(Ids[0], *P.Strided, P.optsFor(P.Strided));
  EXPECT_EQ(Serve(509), serve::Status::Ok);
}

TEST(ServeEngineTest, PrepareSurvivesInjectedCompileFaults) {
  InjectorGuard G;
  serve::EngineOptions EO;
  EO.Workers = 1;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  serve::Engine E(EO);
  serve::ProgramId Id = E.addProgram(P.B.prog(), P.B.usr());
  E.prepare(Id, *P.Strided, P.optsFor(P.Strided));

  // A compile-cache fault unwinds prepare() cleanly (exclusive section
  // released, registry untouched) and a retry succeeds.
  support::FaultInjector::instance().arm(9, 0.0);
  support::FaultInjector::instance().failNext("rt.compile.pred", 1);
  EXPECT_THROW(E.prepare(Id, *P.Blocks, P.optsFor(P.Blocks)),
               support::FaultInjectedError);
  EXPECT_EQ(E.findLoop(Id, "blocks"), nullptr);
  EXPECT_NO_THROW(E.prepare(Id, *P.Blocks, P.optsFor(P.Blocks)));

  // Same through the USR-compile warm-up path (hoistable plan).
  support::FaultInjector::instance().failNext("rt.compile.usr", 1);
  EXPECT_THROW(E.prepare(Id, *P.Irregular, P.optsFor(P.Irregular)),
               support::FaultInjectedError);
  EXPECT_NO_THROW(E.prepare(Id, *P.Irregular, P.optsFor(P.Irregular)));
  support::FaultInjector::instance().disarm();

  // The engine serves every recovered loop normally.
  for (ir::DoLoop *L : {P.Strided, P.Blocks, P.Irregular}) {
    rt::Memory M;
    sym::Bindings B;
    P.dataset(31, M, B);
    serve::Request Req;
    Req.Program = Id;
    Req.Loop = L;
    Req.M = &M;
    Req.B = &B;
    serve::Response Resp = E.submit(Req).get();
    EXPECT_EQ(Resp.St, serve::Status::Ok) << Resp.Error;
  }
}

TEST(ServeEngineTest, ShutdownRacesDrainAndStaysIdempotent) {
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::EngineOptions EO;
  EO.Workers = 2;
  EO.QueueCapacity = 4;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  std::vector<std::unique_ptr<rt::Memory>> Ms;
  std::vector<std::unique_ptr<sym::Bindings>> Bs;
  std::vector<std::future<serve::Response>> Futs;
  std::mutex FutM;
  std::thread Client([&] {
    for (int I = 0; I < 16; ++I) {
      auto M = std::make_unique<rt::Memory>();
      auto B = std::make_unique<sym::Bindings>();
      P.dataset(600 + I, *M, *B);
      serve::Request Req;
      Req.Program = Ids[0];
      Req.Loop = P.loops()[I % 4];
      Req.M = M.get();
      Req.B = B.get();
      std::future<serve::Response> F = E.submit(Req);
      std::lock_guard<std::mutex> L(FutM);
      Ms.push_back(std::move(M));
      Bs.push_back(std::move(B));
      Futs.push_back(std::move(F));
    }
  });
  // shutdown() races drain(), a second shutdown(), and the client above.
  std::thread D([&] { E.drain(); });
  std::thread S1([&] { E.shutdown(); });
  std::thread S2([&] { E.shutdown(); });
  Client.join();
  D.join();
  S1.join();
  S2.join();

  // Every future resolved: served if accepted before the close won the
  // race, Rejected ("engine is shut down") otherwise — never abandoned.
  for (auto &F : Futs) {
    ASSERT_TRUE(F.valid());
    ASSERT_EQ(F.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    serve::Response Resp = F.get();
    expectClassified(Resp);
    if (!Resp.OK) {
      EXPECT_EQ(Resp.St, serve::Status::Rejected);
      EXPECT_NE(Resp.Error.find("shut down"), std::string::npos);
    }
  }
  // Still idempotent after the races, and new submits are refused.
  E.shutdown();
  rt::Memory M;
  sym::Bindings B;
  P.dataset(777, M, B);
  serve::Request Req;
  Req.Program = Ids[0];
  Req.Loop = P.Strided;
  Req.M = &M;
  Req.B = &B;
  serve::Response Resp = E.submit(Req).get();
  EXPECT_EQ(Resp.St, serve::Status::Rejected);
}

TEST(ServeEngineTest, ChaosEveryFutureResolvesClassifiedAndExact) {
  // The chaos suite: seeded faults at every serving-plane injection
  // point, concurrent clients, random deadlines and cancellations. Pins:
  // no abandoned future, no dead worker, every response classified, Ok
  // results bit-identical to a lone sequential session, stats coherent,
  // and the engine healthy again once disarmed.
  InjectorGuard G;
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 3;
  EO.QueueCapacity = 8;
  EO.MaxRetries = 3;
  EO.RetryBackoff = std::chrono::microseconds(1);
  EO.BreakerThreshold = 3;
  EO.BreakerCooldown = 4;
  std::vector<ServedProgram> Progs(1);
  ServedProgram &P = Progs[0];
  std::vector<serve::ProgramId> Ids;
  serve::Engine E(EO);
  prepareAll(E, Progs, Ids);

  const uint64_t ChaosSeed = 0xC4A05; // Logged so a failure replays.
  support::FaultInjector::instance().arm(ChaosSeed, 0.0);
  support::FaultInjector::instance().armPoint("queue.push", 0.03);
  support::FaultInjector::instance().armPoint("serve.worker.task", 0.05);
  support::FaultInjector::instance().armPoint("serve.process.transient",
                                              0.15);
  support::FaultInjector::instance().armPoint("rt.exec", 0.05);

  const unsigned Clients = 3;
  const size_t NumRequests = 48;
  struct Slot {
    rt::Memory M;
    sym::Bindings B;
    std::future<serve::Response> Fut;
    std::unique_ptr<support::CancelToken> Tok;
    uint64_t Seed = 0;
    size_t Loop = 0;
  };
  std::vector<Slot> Slots(NumRequests);
  for (size_t I = 0; I < NumRequests; ++I) {
    Slots[I].Seed = 7000 + I;
    Slots[I].Loop = I % 4;
  }

  std::vector<std::thread> Cs;
  for (unsigned C = 0; C < Clients; ++C)
    Cs.emplace_back([&, C] {
      Rng R(100 + C);
      for (size_t I = C; I < NumRequests; I += Clients) {
        P.dataset(Slots[I].Seed, Slots[I].M, Slots[I].B);
        serve::Request Req;
        Req.Program = Ids[0];
        Req.Loop = P.loops()[Slots[I].Loop];
        Req.M = &Slots[I].M;
        Req.B = &Slots[I].B;
        if (R.chance(1, 6)) // Some deadlines land already expired.
          Req.Deadline = std::chrono::steady_clock::now() +
                         std::chrono::microseconds(
                             R.nextInRange(-1000, 2000));
        if (R.chance(1, 6)) {
          Slots[I].Tok = std::make_unique<support::CancelToken>();
          Req.Cancel = Slots[I].Tok.get();
        }
        Slots[I].Fut = E.submit(Req);
        if (Slots[I].Tok && R.chance(1, 2))
          Slots[I].Tok->cancel(); // Races the in-flight execution.
      }
    });
  for (std::thread &T : Cs)
    T.join();
  E.drain();
  // Chaos over: disarm before verification (the reference session below
  // shares the global injector and must replay unfaulted).
  support::FaultInjector::instance().disarm();

  // Zero abandoned futures; every outcome classified; Ok results exact.
  session::Session Ref(P.B.prog(), P.B.usr(), EO.Session);
  for (ir::DoLoop *L : P.loops())
    Ref.prepare(*L, P.optsFor(L));
  size_t OkResponses = 0, RejectedResponses = 0;
  for (Slot &S : Slots) {
    ASSERT_TRUE(S.Fut.valid());
    ASSERT_EQ(S.Fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "abandoned future (chaos seed " << ChaosSeed << ")";
    serve::Response Resp = S.Fut.get();
    expectClassified(Resp);
    if (Resp.OK) {
      ++OkResponses;
      rt::Memory MR;
      sym::Bindings BR;
      P.dataset(S.Seed, MR, BR);
      ir::DoLoop *L = P.loops()[S.Loop];
      ASSERT_TRUE(Ref.runPrepared(*L, MR, BR).has_value());
      expectMemoryEq(S.M, MR, "chaos Ok response");
    } else if (Resp.St == serve::Status::Rejected) {
      ++RejectedResponses;
    }
  }

  // Stats coherence: every accepted request landed in exactly one
  // outcome bucket; queue-push faults surfaced as rejections.
  serve::ServeStats St = E.stats();
  serve::ShardStats T = St.totals();
  EXPECT_EQ(T.Completed, OkResponses);
  EXPECT_EQ(St.Rejected, RejectedResponses);
  EXPECT_EQ(St.Submitted + St.Rejected, NumRequests);
  EXPECT_EQ(T.Completed + T.Failed + T.Expired + T.Cancelled,
            St.Submitted);
  EXPECT_EQ(St.Expired, T.Expired);
  EXPECT_EQ(St.Cancelled, T.Cancelled);
  EXPECT_EQ(St.Retried, T.Retried);
  EXPECT_EQ(St.DegradedExecs, T.DegradedExecs);

  // Disarmed, the engine is healthy: no worker died, every loop serves
  // Ok (requests would hang or fail here if the chaos run wedged a
  // worker, leaked the gate, or poisoned a cache with a partial result).
  for (size_t LI = 0; LI < P.loops().size(); ++LI) {
    rt::Memory M, MR;
    sym::Bindings B, BR;
    P.dataset(9000 + LI, M, B);
    P.dataset(9000 + LI, MR, BR);
    serve::Request Req;
    Req.Program = Ids[0];
    Req.Loop = P.loops()[LI];
    Req.M = &M;
    Req.B = &B;
    serve::Response Resp = E.submit(Req).get();
    expectClassified(Resp);
    ASSERT_TRUE(Resp.OK) << Resp.Error;
    ASSERT_TRUE(
        Ref.runPrepared(*P.loops()[LI], MR, BR).has_value());
    expectMemoryEq(M, MR, "post-chaos health check");
  }
}

} // namespace
