//===- tests/support_test.cpp - Support library unit tests ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/CancelToken.h"
#include "support/Casting.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/Sync.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace halo;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Base {
  enum class Kind { A, B } K;
  explicit Base(Kind K) : K(K) {}
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->K == Base::Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->K == Base::Kind::B; }
};

TEST(CastingTest, IsaAndDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_NE(dyn_cast<DerivedA>(B), nullptr);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(cast<DerivedA>(B), &A);
}

TEST(CastingTest, ConstVariants) {
  const DerivedB D;
  const Base *B = &D;
  EXPECT_TRUE(isa<DerivedB>(B));
  EXPECT_EQ(cast<DerivedB>(B), &D);
  EXPECT_EQ(dyn_cast<DerivedA>(B), nullptr);
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(HashingTest, CombineIsOrderSensitive) {
  size_t H1 = 0, H2 = 0;
  hashCombine(H1, size_t(1));
  hashCombine(H1, size_t(2));
  hashCombine(H2, size_t(2));
  hashCombine(H2, size_t(1));
  EXPECT_NE(H1, H2);
}

TEST(HashingTest, RangeHashingMatchesElementwise) {
  std::vector<int> V{3, 1, 4, 1, 5};
  size_t HR = 0, HE = 0;
  hashRange(HR, V.begin(), V.end());
  for (int X : V)
    hashCombine(HE, std::hash<int>{}(X));
  EXPECT_EQ(HR, HE);
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u); // All five values appear.
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunAndWait) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 64; ++I)
    Pool.run([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 64);
}

TEST(ThreadPoolTest, BlockedVariantPartitionsContiguously) {
  ThreadPool Pool(4);
  std::mutex Mu;
  std::vector<std::pair<int64_t, int64_t>> Blocks;
  Pool.parallelForBlocked(0, 100, [&](int64_t Lo, int64_t Hi, unsigned) {
    std::lock_guard<std::mutex> G(Mu);
    Blocks.emplace_back(Lo, Hi);
  });
  std::sort(Blocks.begin(), Blocks.end());
  int64_t Next = 0;
  for (auto &[Lo, Hi] : Blocks) {
    EXPECT_EQ(Lo, Next);
    EXPECT_GT(Hi, Lo);
    Next = Hi;
  }
  EXPECT_EQ(Next, 100);
}

TEST(ThreadPoolTest, MoreBlocksThanItemsIsSafe) {
  ThreadPool Pool(8);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 3, [&](int64_t) { ++Count; });
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, NestedWaitDoesNotDeadlock) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 4, [&](int64_t) { ++Count; });
  Pool.parallelFor(0, 4, [&](int64_t) { ++Count; });
  EXPECT_EQ(Count.load(), 8);
}

TEST(ThreadPoolTest, ParallelAllOfAllTrueCoversRange) {
  ThreadPool Pool(4);
  std::mutex Mu;
  std::vector<std::pair<int64_t, int64_t>> Blocks;
  bool Ok = Pool.parallelAllOf(
      0, 100, [&](int64_t Lo, int64_t Hi, unsigned W, std::atomic<bool> &) {
        EXPECT_LT(W, Pool.numThreads());
        std::lock_guard<std::mutex> G(Mu);
        Blocks.emplace_back(Lo, Hi);
        return true;
      });
  EXPECT_TRUE(Ok);
  std::sort(Blocks.begin(), Blocks.end());
  int64_t Next = 0;
  for (auto &[Lo, Hi] : Blocks) {
    EXPECT_EQ(Lo, Next);
    Next = Hi;
  }
  EXPECT_EQ(Next, 100);
}

TEST(ThreadPoolTest, ParallelAllOfFailingBlockFailsReduction) {
  ThreadPool Pool(4);
  bool Ok = Pool.parallelAllOf(
      0, 1000, [&](int64_t Lo, int64_t, unsigned, std::atomic<bool> &) {
        return Lo != 0; // The first block votes false.
      });
  EXPECT_FALSE(Ok);
}

TEST(ThreadPoolTest, ParallelAllOfRaisesStopForEarlyExit) {
  ThreadPool Pool(2);
  std::atomic<bool> SawStop{false};
  bool Ok = Pool.parallelAllOf(
      0, 2, [&](int64_t Lo, int64_t, unsigned, std::atomic<bool> &Stop) {
        if (Lo == 0)
          return false; // Fails immediately; the pool must raise Stop.
        // The sibling block spins until it observes the early-exit flag
        // (bounded so a regression fails instead of hanging).
        for (long I = 0; I < 2000000000L; ++I)
          if (Stop.load(std::memory_order_relaxed)) {
            SawStop = true;
            return true;
          }
        return true;
      });
  EXPECT_FALSE(Ok);
  EXPECT_TRUE(SawStop.load());
}

TEST(ThreadPoolTest, ParallelAllOfSingleThreadRunsInline) {
  ThreadPool Pool(1);
  std::vector<std::pair<int64_t, int64_t>> Blocks;
  bool Ok = Pool.parallelAllOf(
      0, 10, [&](int64_t Lo, int64_t Hi, unsigned W, std::atomic<bool> &) {
        EXPECT_EQ(W, 0u);
        Blocks.emplace_back(Lo, Hi);
        return true;
      });
  EXPECT_TRUE(Ok);
  ASSERT_EQ(Blocks.size(), 1u);
  EXPECT_EQ(Blocks[0], std::make_pair(int64_t(0), int64_t(10)));
  EXPECT_TRUE(Pool.parallelAllOf(
      5, 5, [&](int64_t, int64_t, unsigned, std::atomic<bool> &) {
        ADD_FAILURE() << "empty range must not invoke the body";
        return false;
      }));
}

//===----------------------------------------------------------------------===//
// BoundedWorkQueue (the serving layer's request queue)
//===----------------------------------------------------------------------===//

TEST(BoundedWorkQueueTest, FifoOrderAndDepthTelemetry) {
  BoundedWorkQueue Q(8);
  std::vector<int> Ran;
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(Q.push([&Ran, I] { Ran.push_back(I); }));
  EXPECT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.peakDepth(), 3u);
  for (int I = 0; I < 3; ++I)
    Q.pop()();
  EXPECT_EQ(Ran, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_EQ(Q.peakDepth(), 3u); // High-water mark survives the drain.
}

TEST(BoundedWorkQueueTest, TryPushShedsAtCapacity) {
  // Deterministic backpressure: no consumer exists, so capacity is hit
  // exactly.
  BoundedWorkQueue Q(2);
  EXPECT_TRUE(Q.tryPush([] {}));
  EXPECT_TRUE(Q.tryPush([] {}));
  EXPECT_FALSE(Q.tryPush([] {})); // Full: shed.
  (void)Q.pop()();
  EXPECT_TRUE(Q.tryPush([] {})); // A pop made room again.
}

TEST(BoundedWorkQueueTest, CloseRefusesProducersButDrainsConsumers) {
  BoundedWorkQueue Q(4);
  int Ran = 0;
  EXPECT_TRUE(Q.push([&Ran] { ++Ran; }));
  EXPECT_TRUE(Q.push([&Ran] { ++Ran; }));
  Q.close();
  EXPECT_TRUE(Q.closed());
  EXPECT_FALSE(Q.push([&Ran] { ++Ran; }));    // Refused.
  EXPECT_FALSE(Q.tryPush([&Ran] { ++Ran; })); // Refused.
  // The two accepted tasks still drain; then pop reports exhaustion.
  while (std::function<void()> T = Q.pop())
    T();
  EXPECT_EQ(Ran, 2);
  EXPECT_EQ(Q.pop(), nullptr); // Stays exhausted (no spurious tasks).
}

TEST(BoundedWorkQueueTest, MpmcStressConsumesEveryTaskExactlyOnce) {
  // 3 producers x 3 consumers through a tiny queue: every task must run
  // exactly once, with producers blocking at capacity (TSan covers the
  // handoff).
  BoundedWorkQueue Q(4);
  const int PerProducer = 64;
  std::atomic<int> Ran{0};
  std::vector<std::thread> Consumers;
  for (int C = 0; C < 3; ++C)
    Consumers.emplace_back([&Q] {
      while (std::function<void()> T = Q.pop())
        T();
    });
  std::vector<std::thread> Producers;
  for (int P = 0; P < 3; ++P)
    Producers.emplace_back([&Q, &Ran] {
      for (int I = 0; I < PerProducer; ++I)
        EXPECT_TRUE(Q.push([&Ran] { ++Ran; }));
    });
  for (std::thread &T : Producers)
    T.join();
  Q.close();
  for (std::thread &T : Consumers)
    T.join();
  EXPECT_EQ(Ran.load(), 3 * PerProducer);
}

TEST(BoundedWorkQueueTest, PeakDepthIsMonotoneUnderMpmcStress) {
  // peakDepth() is a high-water mark: under concurrent producers,
  // consumers and samplers it must never appear to move backwards (each
  // thread's successive samples are non-decreasing) and must stay within
  // [deepest observed size, capacity].
  BoundedWorkQueue Q(16);
  const int PerProducer = 200;
  std::atomic<int> Ran{0};
  std::atomic<bool> Monotone{true};
  std::atomic<size_t> DeepestSeen{0};

  std::vector<std::thread> Consumers;
  for (int C = 0; C < 2; ++C)
    Consumers.emplace_back([&] {
      size_t LastPeak = 0;
      while (std::function<void()> T = Q.pop()) {
        T();
        const size_t Pk = Q.peakDepth();
        if (Pk < LastPeak)
          Monotone.store(false, std::memory_order_relaxed);
        LastPeak = Pk;
      }
    });
  std::vector<std::thread> Producers;
  for (int P = 0; P < 3; ++P)
    Producers.emplace_back([&] {
      size_t LastPeak = 0;
      for (int I = 0; I < PerProducer; ++I) {
        EXPECT_TRUE(Q.push([&Ran] { ++Ran; }));
        const size_t Sz = Q.size();
        size_t Prev = DeepestSeen.load(std::memory_order_relaxed);
        while (Sz > Prev &&
               !DeepestSeen.compare_exchange_weak(
                   Prev, Sz, std::memory_order_relaxed))
          ;
        const size_t Pk = Q.peakDepth();
        if (Pk < LastPeak)
          Monotone.store(false, std::memory_order_relaxed);
        LastPeak = Pk;
      }
    });
  for (std::thread &T : Producers)
    T.join();
  Q.close();
  for (std::thread &T : Consumers)
    T.join();

  EXPECT_TRUE(Monotone.load());
  EXPECT_EQ(Ran.load(), 3 * PerProducer);
  EXPECT_GE(Q.peakDepth(), DeepestSeen.load());
  EXPECT_LE(Q.peakDepth(), Q.capacity());
  EXPECT_GE(Q.peakDepth(), 1u);
}

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

TEST(CancelTokenTest, DefaultIsLiveAndCancelLatches) {
  support::CancelToken T;
  EXPECT_EQ(T.state(), support::CancelToken::State::Live);
  EXPECT_FALSE(T.stopRequested());
  T.cancel();
  EXPECT_EQ(T.state(), support::CancelToken::State::Cancelled);
  EXPECT_TRUE(T.stopRequested());
  T.cancel(); // Idempotent.
  EXPECT_EQ(T.state(), support::CancelToken::State::Cancelled);
}

TEST(CancelTokenTest, DeadlineLatchesExpired) {
  using Clock = std::chrono::steady_clock;
  support::CancelToken Past(Clock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(Past.state(), support::CancelToken::State::Expired);
  support::CancelToken Future(Clock::now() + std::chrono::hours(1));
  EXPECT_EQ(Future.state(), support::CancelToken::State::Live);
  EXPECT_FALSE(Future.stopRequested());
}

TEST(CancelTokenTest, FirstLatchedReasonWins) {
  using Clock = std::chrono::steady_clock;
  // Cancelled before the deadline passes: stays Cancelled even after the
  // deadline is long gone.
  support::CancelToken T(Clock::now() + std::chrono::milliseconds(5));
  T.cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(T.state(), support::CancelToken::State::Cancelled);
  // And the converse: an expired token ignores later cancel() calls.
  support::CancelToken U(Clock::now() - std::chrono::milliseconds(1));
  ASSERT_EQ(U.state(), support::CancelToken::State::Expired);
  U.cancel();
  EXPECT_EQ(U.state(), support::CancelToken::State::Expired);
}

TEST(CancelTokenTest, ChildInheritsParentState) {
  support::CancelToken Parent;
  support::CancelToken Child(&Parent);
  EXPECT_FALSE(Child.stopRequested());
  Parent.cancel();
  EXPECT_EQ(Child.state(), support::CancelToken::State::Cancelled);
  // A deadline child under a live parent fires on its own deadline.
  support::CancelToken Parent2;
  support::CancelToken Child2(
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
      &Parent2);
  EXPECT_EQ(Child2.state(), support::CancelToken::State::Expired);
  EXPECT_EQ(Parent2.state(), support::CancelToken::State::Live);
}

TEST(CancelTokenTest, NullHelperNeverStops) {
  EXPECT_FALSE(support::stopRequested(nullptr));
  support::CancelToken T;
  EXPECT_FALSE(support::stopRequested(&T));
  T.cancel();
  EXPECT_TRUE(support::stopRequested(&T));
}

//===----------------------------------------------------------------------===//
// FaultInjection
//===----------------------------------------------------------------------===//

/// Disarms the global injector on scope exit so a failing test cannot
/// poison the rest of the binary.
struct InjectorGuard {
  ~InjectorGuard() { support::FaultInjector::instance().disarm(); }
};

TEST(FaultInjectionTest, DisarmedNeverFires) {
  support::FaultInjector::instance().disarm();
  EXPECT_FALSE(support::faultHit("test.point"));
  EXPECT_NO_THROW(support::faultAt("test.point"));
  // Disarmed checks do not even count.
  EXPECT_TRUE(support::FaultInjector::instance().stats().empty());
}

TEST(FaultInjectionTest, DeterministicForSameSeed) {
  InjectorGuard G;
  auto Run = [] {
    support::FaultInjector::instance().arm(1234, 0.3);
    std::vector<bool> Fired;
    for (int I = 0; I < 200; ++I)
      Fired.push_back(support::faultHit("test.determinism"));
    return Fired;
  };
  const std::vector<bool> A = Run(), B = Run();
  EXPECT_EQ(A, B);
  // A rate of 0.3 over 200 checks fires at least once and not always.
  EXPECT_NE(std::count(A.begin(), A.end(), true), 0);
  EXPECT_NE(std::count(A.begin(), A.end(), true), 200);
  // A different seed produces a different firing pattern.
  support::FaultInjector::instance().arm(5678, 0.3);
  std::vector<bool> C;
  for (int I = 0; I < 200; ++I)
    C.push_back(support::faultHit("test.determinism"));
  EXPECT_NE(A, C);
}

TEST(FaultInjectionTest, RateExtremesAndPerPointOverride) {
  InjectorGuard G;
  support::FaultInjector::instance().arm(1, 0.0);
  support::FaultInjector::instance().armPoint("test.always", 1.0);
  for (int I = 0; I < 50; ++I) {
    EXPECT_TRUE(support::faultHit("test.always"));
    EXPECT_FALSE(support::faultHit("test.never"));
  }
  auto St = support::FaultInjector::instance().stats();
  EXPECT_EQ(St["test.always"].Checked, 50u);
  EXPECT_EQ(St["test.always"].Fired, 50u);
  EXPECT_EQ(St["test.never"].Checked, 50u);
  EXPECT_EQ(St["test.never"].Fired, 0u);
}

TEST(FaultInjectionTest, FailNextFiresExactlyN) {
  InjectorGuard G;
  support::FaultInjector::instance().arm(1, 0.0);
  support::FaultInjector::instance().failNext("test.next", 3);
  int Fired = 0;
  for (int I = 0; I < 10; ++I)
    Fired += support::faultHit("test.next") ? 1 : 0;
  EXPECT_EQ(Fired, 3);
  // faultAt throws the dedicated error type, tagged with the point name.
  support::FaultInjector::instance().failNext("test.throwing", 1);
  EXPECT_THROW(support::faultAt("test.throwing"),
               support::FaultInjectedError);
  EXPECT_NO_THROW(support::faultAt("test.throwing"));
}

//===----------------------------------------------------------------------===//
// parallelAllOf cancellation
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelAllOfShedsOnPreFiredToken) {
  ThreadPool Pool(4);
  support::CancelToken T;
  T.cancel();
  bool Ran = false;
  const bool Ok = Pool.parallelAllOf(
      0, 100,
      [&](int64_t, int64_t, unsigned, std::atomic<bool> &) {
        Ran = true;
        return true;
      },
      &T);
  EXPECT_FALSE(Ok);
  EXPECT_FALSE(Ran); // Shed before any block ran.
}

TEST(ThreadPoolTest, ParallelAllOfStopsAtChunkBoundaryMidFlight) {
  ThreadPool Pool(2);
  support::CancelToken T;
  std::atomic<int> Blocks{0};
  // The first block to run fires the token; the reduction must fail even
  // though every executed body voted true.
  const bool Ok = Pool.parallelAllOf(
      0, 100,
      [&](int64_t, int64_t, unsigned, std::atomic<bool> &) {
        ++Blocks;
        T.cancel();
        return true;
      },
      &T);
  EXPECT_FALSE(Ok);
  EXPECT_GE(Blocks.load(), 1);
}

//===----------------------------------------------------------------------===//
// Queue shutdown ordering
//===----------------------------------------------------------------------===//

TEST(BoundedWorkQueueTest, CloseIsIdempotentAndRacesSafely) {
  // Satellite of the shutdown-ordering contract: concurrent close()
  // calls racing producers and consumers must neither lose an accepted
  // task, run one twice, nor wedge a consumer. Closers arrive mid-drain.
  for (int Round = 0; Round < 20; ++Round) {
    BoundedWorkQueue Q(8);
    std::atomic<int> Ran{0};
    std::atomic<int> Pushed{0};
    std::vector<std::thread> Consumers;
    for (int C = 0; C < 2; ++C)
      Consumers.emplace_back([&Q] {
        while (std::function<void()> T = Q.pop())
          T();
        // Once exhausted, pop stays exhausted for this consumer.
        EXPECT_EQ(Q.pop(), nullptr);
      });
    std::vector<std::thread> Producers;
    for (int P = 0; P < 2; ++P)
      Producers.emplace_back([&Q, &Ran, &Pushed] {
        for (int I = 0; I < 100; ++I)
          if (Q.tryPush([&Ran] { ++Ran; }))
            ++Pushed;
      });
    std::vector<std::thread> Closers;
    for (int K = 0; K < 3; ++K)
      Closers.emplace_back([&Q] { Q.close(); });
    for (std::thread &T : Closers)
      T.join();
    for (std::thread &T : Producers)
      T.join();
    for (std::thread &T : Consumers)
      T.join();
    EXPECT_TRUE(Q.closed());
    EXPECT_EQ(Ran.load(), Pushed.load()); // Exactly once each.
  }
}

TEST(ThreadPoolTest, DrainQueueServesUntilClosed) {
  // The serving shape: a pool whose workers drain the bounded queue as
  // long-running tasks, including the 1-thread pool that must spawn a
  // real worker instead of inlining.
  for (unsigned Threads : {1u, 3u}) {
    BoundedWorkQueue Q(4);
    ThreadPool Pool(Threads, ThreadPool::SingleThread::Spawn);
    Pool.drainQueue(Q);
    std::atomic<int> Ran{0};
    for (int I = 0; I < 32; ++I)
      EXPECT_TRUE(Q.push([&Ran] { ++Ran; }));
    Q.close();
    Pool.wait(); // Drainers exit once the queue is closed and empty.
    EXPECT_EQ(Ran.load(), 32);
  }
}

//===----------------------------------------------------------------------===//
// Sync.h — annotated synchronization primitives
//===----------------------------------------------------------------------===//

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  // Two threads hammer a guarded counter through MutexLock; any lost
  // update (or data race under TSan) fails the invariant.
  support::Mutex M;
  int Counter = 0; // Guarded by M by protocol; asserted by the final sum.
  constexpr int PerThread = 20000;
  auto Bump = [&] {
    for (int I = 0; I < PerThread; ++I) {
      support::MutexLock L(M);
      ++Counter;
    }
  };
  std::thread A(Bump), B(Bump);
  A.join();
  B.join();
  support::MutexLock L(M);
  EXPECT_EQ(Counter, 2 * PerThread);
}

TEST(SyncTest, MutexLockUnlocksOnThrow) {
  // The scoped guard must release on the exception path: if it did not,
  // the second acquisition below would deadlock (and the ctest TIMEOUT
  // would flag it).
  support::Mutex M;
  EXPECT_THROW(
      {
        support::MutexLock L(M);
        throw std::runtime_error("unwind across the guard");
      },
      std::runtime_error);
  support::MutexLock L(M); // Re-acquirable: the throw released it.
  SUCCEED();
}

TEST(SyncTest, TryMutexLockReportsOwnership) {
  support::Mutex M;
  {
    support::TryMutexLock First(M);
    ASSERT_TRUE(First.owns()); // Uncontended try-lock must succeed.
    // A second try-lock while held must fail — from another thread
    // (try_lock on a mutex the same thread holds is UB on std::mutex).
    bool SecondOwns = true;
    std::thread T([&M, &SecondOwns] {
      support::TryMutexLock Second(M);
      SecondOwns = Second.owns();
    });
    T.join();
    EXPECT_FALSE(SecondOwns);
  }
  // First's destructor released it: now acquirable again.
  support::TryMutexLock Third(M);
  EXPECT_TRUE(Third.owns());
}

TEST(SyncTest, SharedMutexAllowsConcurrentReadersExcludesWriter) {
  support::SharedMutex SM;
  int Value = 0; // Guarded by SM by protocol.
  std::atomic<int> ReadersInside{0};
  std::atomic<int> MaxReadersInside{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Readers;
  for (int R = 0; R < 4; ++R)
    Readers.emplace_back([&] {
      while (!Go.load())
        std::this_thread::yield();
      for (int I = 0; I < 200; ++I) {
        support::SharedLock L(SM);
        int Inside = ReadersInside.fetch_add(1) + 1;
        int Prev = MaxReadersInside.load();
        while (Inside > Prev &&
               !MaxReadersInside.compare_exchange_weak(Prev, Inside)) {
        }
        EXPECT_GE(Value, 0); // Reads are safe under the shared hold.
        ReadersInside.fetch_sub(1);
      }
    });
  std::thread Writer([&] {
    while (!Go.load())
      std::this_thread::yield();
    for (int I = 0; I < 50; ++I) {
      support::ExclusiveLock L(SM);
      // Writer exclusivity: no reader may be inside while we hold it.
      EXPECT_EQ(ReadersInside.load(), 0);
      ++Value;
    }
  });
  Go.store(true);
  for (std::thread &T : Readers)
    T.join();
  Writer.join();
  support::SharedLock L(SM);
  EXPECT_EQ(Value, 50);
  // With 4 readers iterating 200 times each, at least one overlap is
  // effectively certain; a shared mutex that serialized readers would
  // leave the high-water mark at 1.
  EXPECT_GE(MaxReadersInside.load(), 1);
}

TEST(SyncTest, CondVarRecheckLoopSeesNotifiedPredicate) {
  // The canonical wait shape the whole tree uses: explicit re-check
  // loop under the held mutex (predicate lambdas are opaque to the
  // thread-safety analysis, so Sync.h deliberately has no predicate
  // overload). Also exercises spurious-wakeup tolerance: notify_all
  // fires while the predicate is still false, and the loop must keep
  // waiting.
  support::Mutex M;
  support::CondVar CV;
  int Stage = 0; // Guarded by M.
  bool Woke = false;
  std::thread Waiter([&] {
    support::MutexLock L(M);
    while (Stage < 2)
      CV.wait(M);
    Woke = true;
  });
  {
    support::MutexLock L(M);
    Stage = 1;
  }
  CV.notify_all(); // Predicate still false: the waiter must re-sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    support::MutexLock L(M);
    EXPECT_FALSE(Woke); // Still parked: a half-true predicate held it.
    Stage = 2;
  }
  CV.notify_one();
  Waiter.join();
  support::MutexLock L(M);
  EXPECT_TRUE(Woke);
}

TEST(SyncTest, CondVarWaitReleasesMutexWhileParked) {
  // wait() must atomically release the mutex while sleeping — otherwise
  // the notifier below could never acquire it to flip the predicate and
  // this test would deadlock against the ctest TIMEOUT.
  support::Mutex M;
  support::CondVar CV;
  bool Ready = false;
  std::thread Waiter([&] {
    support::MutexLock L(M);
    while (!Ready)
      CV.wait(M);
  });
  {
    // Acquirable while the waiter is parked: proof the wait dropped it.
    support::MutexLock L(M);
    Ready = true;
  }
  CV.notify_one();
  Waiter.join();
  SUCCEED();
}

} // namespace
