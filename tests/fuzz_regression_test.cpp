//===- tests/fuzz_regression_test.cpp - Corpus replay ---------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Replays every checked-in fuzz repro (tests/corpus/*.repro) against the
// full oracle stack. Each entry pins a fixed defect or a hardened front
// door: a failure here means a regression of a bug the fuzzer already
// found once. The corpus directory is injected by CMake as
// HALO_FUZZ_CORPUS_DIR; see docs/FUZZING.md for the triage workflow and
// the policy for adding entries.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace halo;

namespace {

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Ent :
       std::filesystem::directory_iterator(HALO_FUZZ_CORPUS_DIR))
    if (Ent.is_regular_file() && Ent.path().extension() == ".repro")
      Files.push_back(Ent.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string firstFailure(const fuzz::OracleResult &R) {
  if (!R.Soundness.empty())
    return R.Soundness.front();
  if (!R.Parity.empty())
    return R.Parity.front();
  if (!R.Other.empty())
    return R.Other.front();
  return "";
}

} // namespace

TEST(FuzzRegression, CorpusIsNonEmpty) {
  EXPECT_FALSE(corpusFiles().empty())
      << "no *.repro entries under " << HALO_FUZZ_CORPUS_DIR;
}

TEST(FuzzRegression, ReplayCorpus) {
  for (const std::filesystem::path &File : corpusFiles()) {
    SCOPED_TRACE(File.filename().string());
    std::string Err;
    auto E = fuzz::parseEntry(slurp(File), Err);
    ASSERT_TRUE(E.has_value()) << Err;

    auto Case = fuzz::generate(E->Opts);
    fuzz::OracleOptions OO;
    OO.Threads = 3;
    fuzz::OracleResult Res = fuzz::checkCase(*Case, OO);
    if (E->Expect == "validation-error") {
      EXPECT_TRUE(Res.ValidationRejected)
          << "front door accepted a pinned hostile case";
      EXPECT_TRUE(Res.ok()) << Res.failureKind() << ": "
                            << firstFailure(Res);
      EXPECT_FALSE(Res.DiagCodes.empty());
    } else {
      ASSERT_EQ(E->Expect, "clean");
      EXPECT_FALSE(Res.ValidationRejected)
          << "pinned benign case rejected by the front door";
      EXPECT_TRUE(Res.ok())
          << "pinned defect regressed (" << Res.failureKind()
          << "): " << firstFailure(Res) << "\n"
          << Case->dump();
    }
  }
}
