//===- tests/usr_compile_test.cpp - Compiled-USR parity tests -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The compiled interval-run engine must agree with the reference
// interpreter on every input: full evaluation bit-identical to evalUSR
// (including nullopt on unbound symbols and cap overflow), emptiness mode
// identical to evalUSREmpty (including the short-circuit-before-cap
// semantics), and the chunked-parallel root recurrence identical to the
// serial order under the first-failure protocol.
//
//===----------------------------------------------------------------------===//

#include "usr/USRCompile.h"

#include "pdag/PredCompile.h"
#include "rt/CompiledCascade.h"
#include "support/Rng.h"
#include "usr/USREval.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using namespace halo;
using namespace halo::usr;

namespace {

class UsrCompileTest : public ::testing::Test {
protected:
  UsrCompileTest() : P(Sym), U(Sym, P) {}
  sym::Context Sym;
  pdag::PredContext P;
  USRContext U;

  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }

  /// Full + emptiness parity of the compiled engine against the
  /// reference interpreter, on fresh binding copies (the interpreter
  /// mutates its bindings while iterating recurrences).
  void expectParity(const USR *S, const sym::Bindings &B,
                    size_t Cap = 1u << 22) {
    sym::Bindings BRef = B;
    auto Ref = evalUSR(S, BRef, Cap);
    auto CU = CompiledUSR::compile(S, Sym);
    auto Got = CU->evalPoints(B, Cap);
    ASSERT_EQ(Ref.has_value(), Got.has_value())
        << "full-eval failure mismatch on " << S->toString(Sym);
    if (Ref && Got)
      EXPECT_EQ(*Ref, *Got) << "point-set mismatch on " << S->toString(Sym);
    // Batched gate sweeps off: must be bit-identical to the default
    // (batched) evaluation, including WHICH failure fires.
    auto GotScalar = CU->evalPoints(B, Cap, nullptr, /*BlockGates=*/false);
    ASSERT_EQ(Got.has_value(), GotScalar.has_value())
        << "block/scalar failure mismatch on " << S->toString(Sym);
    if (Got && GotScalar)
      EXPECT_EQ(*Got, *GotScalar)
          << "block/scalar point-set mismatch on " << S->toString(Sym);

    sym::Bindings BRefE = B;
    auto RefE = evalUSREmpty(S, BRefE, Cap);
    auto GotE = CU->evalEmpty(B, Cap);
    EXPECT_EQ(RefE, GotE) << "emptiness mismatch on " << S->toString(Sym);
    EXPECT_EQ(CU->evalEmpty(B, Cap, nullptr, /*BlockGates=*/false), GotE)
        << "block/scalar emptiness mismatch on " << S->toString(Sym);
    if (Ref && RefE)
      EXPECT_EQ(*RefE, Ref->empty());
  }
};

//===----------------------------------------------------------------------===//
// Directed cases
//===----------------------------------------------------------------------===//

TEST_F(UsrCompileTest, SetAlgebraParity) {
  sym::Bindings B;
  const USR *A = U.interval(c(0), c(6));
  const USR *C = U.interval(c(4), c(4));
  expectParity(U.union2(A, C), B);
  expectParity(U.intersect(A, C), B);
  expectParity(U.subtract(A, C), B);
  expectParity(U.subtract(C, A), B);
  expectParity(U.empty(), B);
}

TEST_F(UsrCompileTest, StridedLeavesCoalesceExactly) {
  sym::Bindings B;
  // [4]v[28]+0 = {0,4,...,28} and the odd complement interleaved.
  const USR *Evens = U.leaf(lmad::LMAD::makeStrided(c(4), c(28), c(0)));
  const USR *Odds = U.leaf(lmad::LMAD::makeStrided(c(4), c(28), c(2)));
  expectParity(Evens, B);
  expectParity(U.union2(Evens, Odds), B);
  expectParity(U.intersect(Evens, Odds), B);
  expectParity(U.subtract(U.interval(c(0), c(32)), Evens), B);
  // Multi-dimensional leaf: [1,32]v[3,96]+5 (blocks of 4, stride 32).
  const USR *Blocks = U.leaf(
      lmad::LMAD({lmad::Dim{c(1), c(3)}, lmad::Dim{c(32), c(96)}}, c(5)));
  expectParity(Blocks, B);
  expectParity(U.intersect(Blocks, U.interval(c(30), c(40))), B);
}

TEST_F(UsrCompileTest, GateParity) {
  const USR *A = U.interval(c(0), c(4));
  const USR *G = U.gate(P.ne(s("SYM"), c(1)), A);
  sym::Bindings B;
  B.setScalar(Sym.symbol("SYM"), 0);
  expectParity(G, B);
  B.setScalar(Sym.symbol("SYM"), 1);
  expectParity(G, B);
  // Unknown gate: unbound symbol fails both evaluators identically.
  sym::Bindings BU;
  expectParity(G, BU);
}

TEST_F(UsrCompileTest, RecurWithIndexArrayParity) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 3);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {10, 20, 21};
  B.setArray(IB, A);
  expectParity(R, B);
  // Empty range and failing (out-of-bounds) range.
  B.setScalar(Sym.symbol("N"), 0);
  expectParity(R, B);
  B.setScalar(Sym.symbol("N"), 5);
  expectParity(R, B);
}

TEST_F(UsrCompileTest, GateUnderRecurrenceVariable) {
  // The partial-recurrence gate shape: `1 <= i-1 # S`, with the gate
  // depending on the recurrence variable (fed from the frame slot).
  sym::SymbolId I = Sym.symbol("i", 1);
  const USR *Body =
      U.gate(P.le(c(2), Sym.symRef(I)),
             U.interval(Sym.mulConst(Sym.symRef(I), 10), c(3)));
  const USR *R = U.recur(I, c(1), c(5), Body);
  sym::Bindings B;
  expectParity(R, B);
}

TEST_F(UsrCompileTest, TriangularOIndParity) {
  // The Fig. 3(b)-style OIND equation at small N, on independent
  // (monotone disjoint), dependent (overlapping) and unsorted data.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  auto WF = [&](sym::SymbolId V) {
    return U.interval(
        Sym.mulConst(Sym.addConst(Sym.arrayRef(IB, Sym.symRef(V)), -1), 8),
        c(8));
  };
  const USR *Prior =
      U.recur(K, c(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
  const USR *OInd =
      U.recur(I, c(1), s("N"), U.intersect(WF(I), Prior));

  const int64_t N = 40;
  for (int Mode = 0; Mode < 3; ++Mode) {
    sym::Bindings B;
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t X = 0; X < N; ++X)
      A.Vals.push_back(Mode == 0 ? 1 + X * 2
                       : Mode == 1 ? 1 + (X % 7)
                                   : 1 + ((X * 13) % 29));
    B.setArray(IB, A);
    expectParity(OInd, B);
  }
}

TEST_F(UsrCompileTest, EmptinessShortCircuitsBeforeCap) {
  // Satellite regression: the set exceeds Cap, but the first leaf is
  // nonempty, so emptiness answers "not empty" where full evaluation
  // (and the old emptiness path) overflow to nullopt.
  const USR *Big = U.interval(c(0), c(1000));
  sym::Bindings B;
  auto CU = CompiledUSR::compile(Big, Sym);
  EXPECT_FALSE(evalUSR(Big, B, /*Cap=*/100).has_value());
  EXPECT_FALSE(CU->evalPoints(B, /*Cap=*/100).has_value());
  sym::Bindings B2;
  EXPECT_EQ(evalUSREmpty(Big, B2, /*Cap=*/100), std::make_optional(false));
  EXPECT_EQ(CU->evalEmpty(B, /*Cap=*/100), std::make_optional(false));
  expectParity(Big, B, /*Cap=*/100);

  // A nonempty leaf ahead of an unbound one: emptiness decides at the
  // first leaf; full evaluation fails on the second.
  const USR *Mixed =
      U.union2(U.interval(c(0), c(4)), U.interval(s("unbound"), c(4)));
  sym::Bindings B3;
  EXPECT_FALSE(evalUSR(Mixed, B3, 1u << 22).has_value());
  EXPECT_EQ(evalUSREmpty(Mixed, B3), std::make_optional(false));
  expectParity(Mixed, B3);

  // Reversed order: the unbound leaf comes first and decides nullopt in
  // both modes (traversal order is part of the contract).
  const USR *Rev =
      U.unionN({U.interval(s("unbound"), c(4)), U.interval(c(0), c(4))});
  expectParity(Rev, B3);
}

TEST_F(UsrCompileTest, IntersectSkipsRhsWhenLhsEmpty) {
  // evalUSR returns {} for `{} ∩ unbound` without touching the RHS; the
  // compiled SkipIfEmpty path must do the same.
  const USR *L = U.interval(c(5), s("len")); // len = 0 -> empty leaf
  const USR *R = U.interval(s("unbound"), c(4));
  sym::Bindings B;
  B.setScalar(Sym.symbol("len"), 0);
  // Canonicalization folds statically-empty sets, so force a dynamic one:
  // len bound to 0 keeps the leaf symbolic but empty at runtime.
  expectParity(U.intersect(L, R), B);
  expectParity(U.subtract(L, R), B);
  B.setScalar(Sym.symbol("len"), 3);
  expectParity(U.intersect(L, R), B); // Now the RHS failure surfaces.
}

//===----------------------------------------------------------------------===//
// Randomized parity
//===----------------------------------------------------------------------===//

/// Random USR programs over a small symbol pool: strided/multi-dim
/// leaves, gates (sometimes over recurrence variables, sometimes over an
/// unbound symbol), unions, intersections, subtractions, call sites and
/// nested/partial recurrences.
class RandomUsr {
public:
  RandomUsr(UsrCompileTest &T, sym::Context &Sym, pdag::PredContext &P,
            USRContext &U, uint64_t Seed)
      : Sym(Sym), P(P), U(U), R(Seed) {
    (void)T;
    IB = Sym.symbol("IB", 0, true);
    IC = Sym.symbol("IC", 0, true);
  }

  const sym::Expr *smallExpr(const std::vector<sym::SymbolId> &Vars) {
    switch (R.nextBelow(6)) {
    case 0:
      return Sym.intConst(R.nextInRange(-4, 40));
    case 1:
      return Sym.symRef("m");
    case 2:
      if (!Vars.empty())
        return Sym.mulConst(
            Sym.symRef(Vars[R.nextBelow(Vars.size())]),
            R.nextInRange(1, 4));
      return Sym.intConst(R.nextInRange(0, 20));
    case 3: {
      const sym::Expr *Idx =
          Vars.empty() ? Sym.intConst(R.nextInRange(1, 6))
                       : Sym.addConst(Sym.symRef(Vars[R.nextBelow(
                                          Vars.size())]),
                                      R.nextInRange(0, 1));
      return Sym.arrayRef(R.chance(1, 2) ? IB : IC, Idx);
    }
    case 4:
      return R.chance(1, 8) ? Sym.symRef("unbound")
                            : Sym.intConst(R.nextInRange(0, 30));
    default:
      if (!Vars.empty())
        return Sym.addConst(Sym.symRef(Vars[R.nextBelow(Vars.size())]),
                            R.nextInRange(-2, 6));
      return Sym.intConst(R.nextInRange(0, 25));
    }
  }

  const USR *leaf(const std::vector<sym::SymbolId> &Vars) {
    switch (R.nextBelow(4)) {
    case 0:
      return U.interval(smallExpr(Vars),
                        Sym.intConst(R.nextInRange(-1, 6)));
    case 1:
      return U.leaf(lmad::LMAD::makeStrided(
          Sym.intConst(R.nextInRange(1, 5)),
          Sym.intConst(R.nextInRange(-2, 24)), smallExpr(Vars)));
    case 2:
      return U.leaf(lmad::LMAD(
          {lmad::Dim{Sym.intConst(1), Sym.intConst(R.nextInRange(0, 3))},
           lmad::Dim{Sym.intConst(R.nextInRange(2, 9)),
                     Sym.intConst(R.nextInRange(0, 27))}},
          smallExpr(Vars)));
    default:
      return U.leaf(lmad::LMAD::makePoint(smallExpr(Vars)));
    }
  }

  const pdag::Pred *pred(const std::vector<sym::SymbolId> &Vars) {
    const sym::Expr *A = smallExpr(Vars);
    const sym::Expr *B = smallExpr(Vars);
    switch (R.nextBelow(3)) {
    case 0:
      return P.le(A, B);
    case 1:
      return P.ne(A, B);
    default:
      return P.gt(A, B);
    }
  }

  const USR *gen(int Depth, std::vector<sym::SymbolId> &Vars) {
    if (Depth <= 0 || R.chance(1, 4))
      return leaf(Vars);
    switch (R.nextBelow(6)) {
    case 0: {
      std::vector<const USR *> Cs;
      size_t N = 2 + R.nextBelow(3);
      for (size_t I = 0; I < N; ++I)
        Cs.push_back(gen(Depth - 1, Vars));
      return U.unionN(std::move(Cs));
    }
    case 1:
      return U.intersect(gen(Depth - 1, Vars), gen(Depth - 1, Vars));
    case 2:
      return U.subtract(gen(Depth - 1, Vars), gen(Depth - 1, Vars));
    case 3:
      return U.gate(pred(Vars), gen(Depth - 1, Vars));
    case 4:
      return U.callSite("ext", gen(Depth - 1, Vars));
    default: {
      sym::SymbolId V = Sym.freshSymbol("q", static_cast<int>(Vars.size()) + 1);
      const sym::Expr *Lo = Sym.intConst(R.nextInRange(0, 2));
      const sym::Expr *Hi;
      if (!Vars.empty() && R.chance(1, 3))
        Hi = Sym.addConst(Sym.symRef(Vars.back()), -1); // Partial recur.
      else if (R.chance(1, 3))
        Hi = Sym.symRef("m");
      else
        Hi = Sym.intConst(R.nextInRange(-1, 6));
      Vars.push_back(V);
      const USR *Body = gen(Depth - 1, Vars);
      Vars.pop_back();
      return U.recur(V, Lo, Hi, Body);
    }
    }
  }

  sym::Bindings bindings() {
    sym::Bindings B;
    B.setScalar(Sym.symbol("m"), R.nextInRange(-1, 7));
    auto MakeArr = [&](sym::SymbolId Id) {
      if (R.chance(1, 10))
        return; // Sometimes leave an index array unbound.
      sym::ArrayBinding A;
      A.Lo = 1;
      size_t N = 4 + R.nextBelow(8);
      for (size_t I = 0; I < N; ++I)
        A.Vals.push_back(R.nextInRange(-3, 30));
      B.setArray(Id, A);
    };
    MakeArr(IB);
    MakeArr(IC);
    return B;
  }

  sym::Context &Sym;
  pdag::PredContext &P;
  USRContext &U;
  Rng R;
  sym::SymbolId IB = 0, IC = 0;
};

TEST_F(UsrCompileTest, RandomizedParity) {
  for (uint64_t Seed = 1; Seed <= 600; ++Seed) {
    RandomUsr G(*this, Sym, P, U, Seed * 7919);
    std::vector<sym::SymbolId> Vars;
    const USR *S = G.gen(3, Vars);
    sym::Bindings B = G.bindings();
    size_t Cap = G.R.chance(1, 4) ? (8 + G.R.nextBelow(64)) : (1u << 22);
    SCOPED_TRACE("seed " + std::to_string(Seed) + " cap " +
                 std::to_string(Cap));
    expectParity(S, B, Cap);
  }
}

//===----------------------------------------------------------------------===//
// Pooled frames and chunked-parallel recurrences
//===----------------------------------------------------------------------===//

TEST_F(UsrCompileTest, PooledFrameReuseAndInvalidation) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2));
  const USR *R = U.recur(I, c(1), s("N"), Body);
  auto CU = CompiledUSR::compile(R, Sym);

  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), 4);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {10, 20, 30, 40};
  B.setArray(IB, A);

  CompiledUSR::PooledFrame PF;
  EXPECT_EQ(CU->evalEmptyPooled(PF, B), std::make_optional(false));
  // Same stamp: served again (warm caches), same answer.
  EXPECT_EQ(CU->evalEmptyPooled(PF, B), std::make_optional(false));
  // Mutation invalidates: an empty range flips the answer to "empty".
  B.setScalar(Sym.symbol("N"), 0);
  EXPECT_EQ(CU->evalEmptyPooled(PF, B), std::make_optional(true));
  // An unbound bound expression fails — on a rebound frame.
  B.clearScalar(Sym.symbol("N"));
  EXPECT_EQ(CU->evalEmptyPooled(PF, B), std::nullopt);
}

TEST_F(UsrCompileTest, ParallelRecurMatchesSerial) {
  // Root recurrence over a large range: U_{i=1..N} [IB(i), IB(i)+1] ∩
  // [5000, 5001]. The parallel chunked evaluation must agree with the
  // serial order on empty, nonempty-at-position and failure-at-position
  // data, including when both a failure and a nonemptiness exist (the
  // earliest iteration decides).
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const int64_t N = 20000;
  const USR *Body =
      U.intersect(U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2)),
                  U.interval(c(5000), c(2)));
  const USR *R = U.recur(I, c(1), c(N), Body);
  auto CU = CompiledUSR::compile(R, Sym);
  ASSERT_TRUE(CU->hasParallelRoot());
  ThreadPool Pool(4);

  Rng Rand(42);
  for (int Case = 0; Case < 12; ++Case) {
    sym::Bindings B;
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t X = 0; X < N; ++X)
      A.Vals.push_back(10 + (X % 997) * 4); // Never hits 5000/5001.
    int64_t HitAt = -1, FailAt = -1;
    if (Case % 3 == 1 || Case >= 9) {
      HitAt = Rand.nextInRange(1, N);
      A.Vals[static_cast<size_t>(HitAt - 1)] = 5000;
    }
    if (Case % 3 == 2 || Case >= 9) {
      // Iteration whose body fails: IB read goes out of bounds by
      // binding a shorter array? Instead poison via an unbound-symbol
      // gate... simplest: make the last iterations OOB by truncating.
      FailAt = Rand.nextInRange(1, N);
    }
    if (FailAt > 0)
      A.Vals.resize(static_cast<size_t>(FailAt - 1));
    B.setArray(IB, A);

    sym::Bindings BSer = B;
    auto Serial = CU->evalEmpty(BSer);
    CompiledUSR::PooledFrame PF;
    auto Par = CU->evalEmptyParallel(PF, B, Pool, 1u << 22, nullptr,
                                     /*MinParallelIters=*/16);
    EXPECT_EQ(Serial, Par) << "case " << Case << " hit " << HitAt
                           << " fail " << FailAt;
    sym::Bindings BInt = B;
    EXPECT_EQ(evalUSREmpty(R, BInt), Serial) << "case " << Case;
  }
}

TEST_F(UsrCompileTest, BatchedGateSweepTripsStraddlingBlockWidth) {
  // Gated root recurrence in exactly the batchable shape (the body is one
  // variant gate over the recurrence variable): trips of W-1, W, W+1 and
  // 2W+1 with gate-false lanes planted at every position and the bound
  // array truncated so out-of-bounds gate reads (conservative unknown)
  // fire mid-block. expectParity cross-checks BlockGates on vs off vs the
  // interpreter on every combination, for both full and emptiness modes.
  const int64_t W = static_cast<int64_t>(pdag::PredBlockWidth);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const USR *Body = U.gate(P.gt(Sym.arrayRef(IB, Sym.symRef(I)), c(0)),
                           U.interval(Sym.symRef(I), c(1)));
  for (int64_t N : {W - 1, W, W + 1, 2 * W + 1}) {
    const USR *R = U.recur(I, c(1), c(N), Body);
    for (int64_t Drop : {int64_t(0), int64_t(1), N / 2, N})
      for (int64_t Len : {N, N / 2, W}) {
        sym::ArrayBinding A;
        A.Lo = 1;
        A.Vals.assign(static_cast<size_t>(N), 1);
        if (Drop)
          A.Vals[static_cast<size_t>(Drop - 1)] = 0; // Gate-false lane.
        A.Vals.resize(static_cast<size_t>(std::min(Len, N))); // OOB > Len.
        sym::Bindings B;
        B.setArray(IB, A);
        expectParity(R, B);
      }
    // The default path really batches: a full sweep probes the gate in
    // ceil(N/W) blocks and never scalar; BlockGates off is all-scalar.
    sym::ArrayBinding A;
    A.Lo = 1;
    A.Vals.assign(static_cast<size_t>(N), 1);
    sym::Bindings B;
    B.setArray(IB, A);
    auto CU = CompiledUSR::compile(R, Sym);
    USREvalStats SBlk, SScl;
    ASSERT_TRUE(CU->evalPoints(B, 1u << 22, &SBlk).has_value());
    EXPECT_EQ(SBlk.GateBlockEvals, static_cast<uint64_t>((N + W - 1) / W));
    EXPECT_EQ(SBlk.GateScalarEvals, 0u);
    ASSERT_TRUE(
        CU->evalPoints(B, 1u << 22, &SScl, /*BlockGates=*/false).has_value());
    EXPECT_EQ(SScl.GateBlockEvals, 0u);
    EXPECT_EQ(SScl.GateScalarEvals, static_cast<uint64_t>(N));
  }
}

TEST_F(UsrCompileTest, BatchedGateParallelFirstDecisionExactness) {
  // Emptiness of a gated root recurrence under parallelAllOf chunking:
  // the gate passes only where IB(i) == 5 (nonempty decision) and reads
  // out of bounds past the array end (failure decision). Whichever
  // iteration comes FIRST must decide — serial and parallel, batched and
  // scalar, all bit-identical to the interpreter.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const int64_t N = 5000;
  const USR *Body = U.gate(P.eq(Sym.arrayRef(IB, Sym.symRef(I)), c(5)),
                           U.interval(Sym.symRef(I), c(1)));
  const USR *R = U.recur(I, c(1), c(N), Body);
  auto CU = CompiledUSR::compile(R, Sym);
  ASSERT_TRUE(CU->hasParallelRoot());
  ThreadPool Pool(4);

  Rng Rand(20260808);
  for (int Case = 0; Case < 12; ++Case) {
    sym::Bindings B;
    sym::ArrayBinding A;
    A.Lo = 1;
    A.Vals.assign(static_cast<size_t>(N), 1); // Gate false everywhere.
    int64_t HitAt = -1, FailAt = -1;
    if (Case % 3 == 1 || Case >= 9) {
      HitAt = Rand.nextInRange(1, N);
      A.Vals[static_cast<size_t>(HitAt - 1)] = 5; // Gate passes: nonempty.
    }
    if (Case % 3 == 2 || Case >= 9) {
      FailAt = Rand.nextInRange(1, N);
      A.Vals.resize(static_cast<size_t>(FailAt - 1)); // OOB from FailAt.
    }
    B.setArray(IB, A);

    sym::Bindings BInt = B;
    auto Ref = evalUSREmpty(R, BInt);
    EXPECT_EQ(CU->evalEmpty(B, 1u << 22, nullptr, /*BlockGates=*/true), Ref)
        << "case " << Case << " hit " << HitAt << " fail " << FailAt;
    EXPECT_EQ(CU->evalEmpty(B, 1u << 22, nullptr, /*BlockGates=*/false), Ref)
        << "case " << Case;
    CompiledUSR::PooledFrame PFB, PFS;
    EXPECT_EQ(CU->evalEmptyParallel(PFB, B, Pool, 1u << 22, nullptr,
                                    /*MinParallelIters=*/16, nullptr,
                                    /*BlockGates=*/true),
              Ref)
        << "case " << Case << " hit " << HitAt << " fail " << FailAt;
    EXPECT_EQ(CU->evalEmptyParallel(PFS, B, Pool, 1u << 22, nullptr,
                                    /*MinParallelIters=*/16, nullptr,
                                    /*BlockGates=*/false),
              Ref)
        << "case " << Case;
  }
}

TEST_F(UsrCompileTest, StatsReportRunsAndAvoidedPoints) {
  // One 128-point contiguous leaf: one run, 127 enumerations avoided.
  const USR *A = U.interval(c(0), c(128));
  auto CU = CompiledUSR::compile(A, Sym);
  sym::Bindings B;
  USREvalStats St;
  auto V = CU->evalPoints(B, 1u << 22, &St);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->size(), 128u);
  EXPECT_EQ(St.RunsProduced, 1u);
  EXPECT_EQ(St.PointsAvoided, 127u);
  EXPECT_EQ(St.PointsMaterialized, 0u);
}

//===----------------------------------------------------------------------===//
// USRCompileCache frameless-caller serialization (regression)
//===----------------------------------------------------------------------===//

TEST_F(UsrCompileTest, FramelessConcurrentEmptinessSerializesOnFallback) {
  // Regression for a guard gap surfaced by the thread-safety
  // annotations: frameless USRCompileCache::emptiness() callers all
  // share the cache entry's fallback evaluation frame (mutable bind
  // stamps and recurrence prefix caches). They used to touch it with no
  // synchronization — a data race under concurrency, with the prefix
  // cache of one dataset poisoning another's evaluation. The entry now
  // carries a fallback mutex held for the whole frameless evaluation,
  // so concurrent frameless callers serialize and stay exact. TSan (CI)
  // pins the race half; the per-dataset answers pin the poisoning half.
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const int64_t N = 4096;
  const USR *Body =
      U.intersect(U.interval(Sym.arrayRef(IB, Sym.symRef(I)), c(2)),
                  U.interval(c(5000), c(2)));
  const USR *R = U.recur(I, c(1), c(N), Body);

  rt::PredCompileCache Preds(Sym);
  rt::USRCompileCache Cache(Sym, Preds);

  // Per-thread datasets with different answers: even threads see a hit
  // (non-empty), odd threads never do (empty). Re-binding the same
  // shared fallback frame between datasets is exactly the state the old
  // code raced on.
  constexpr int Threads = 8, Rounds = 25;
  auto MakeBindings = [&](bool Hit) {
    sym::Bindings B;
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t X = 0; X < N; ++X)
      A.Vals.push_back(10 + (X % 997) * 4);
    if (Hit)
      A.Vals[N / 2] = 5000;
    B.setArray(IB, A);
    return B;
  };
  std::atomic<int> Wrong{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      const bool Hit = (T % 2) == 0;
      sym::Bindings B = MakeBindings(Hit);
      for (int Rd = 0; Rd < Rounds; ++Rd) {
        // Frameless: no USRFramePool argument — the fallback-frame path.
        auto E = Cache.emptiness(R, B);
        if (E != std::make_optional(!Hit))
          ++Wrong;
      }
    });
  for (std::thread &Th : Ts)
    Th.join();
  EXPECT_EQ(Wrong.load(), 0);

  // Mixed mode: framed callers must stay parallel (they never touch the
  // fallback frame) while frameless callers serialize beside them.
  std::atomic<int> WrongMixed{0};
  std::vector<std::thread> Ms;
  for (int T = 0; T < Threads; ++T)
    Ms.emplace_back([&, T] {
      const bool Hit = (T % 2) == 0;
      const bool Framed = T < Threads / 2;
      sym::Bindings B = MakeBindings(Hit);
      rt::USRFramePool Pool;
      for (int Rd = 0; Rd < Rounds; ++Rd) {
        auto E = Cache.emptiness(R, B, nullptr, nullptr,
                                 Framed ? &Pool : nullptr);
        if (E != std::make_optional(!Hit))
          ++WrongMixed;
      }
    });
  for (std::thread &Th : Ms)
    Th.join();
  EXPECT_EQ(WrongMixed.load(), 0);
}

} // namespace
