//===- tests/sym_range_test.cpp - Symbolic range bound tests --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "sym/Range.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::sym;

namespace {

class SymRangeTest : public ::testing::Test {
protected:
  Context Ctx;
  RangeEnv Env;
  const Expr *c(int64_t V) { return Ctx.intConst(V); }
  const Expr *s(const std::string &N) { return Ctx.symRef(N); }
};

TEST_F(SymRangeTest, InvariantExprIsItsOwnBound) {
  const Expr *E = Ctx.add(s("n"), c(3));
  EXPECT_EQ(boundExpr(Ctx, E, Env, /*IsLower=*/true).value(), E);
  EXPECT_EQ(boundExpr(Ctx, E, Env, /*IsLower=*/false).value(), E);
}

TEST_F(SymRangeTest, PositiveCoefficientUsesMatchingEnd) {
  // i in [1, N]: lower(2i + 1) = 3, upper = 2N + 1.
  SymbolId I = Ctx.symbol("i");
  Env.bind(I, c(1), s("N"));
  const Expr *E = Ctx.addConst(Ctx.mulConst(Ctx.symRef(I), 2), 1);
  EXPECT_EQ(boundExpr(Ctx, E, Env, true).value(), c(3));
  EXPECT_EQ(boundExpr(Ctx, E, Env, false).value(),
            Ctx.addConst(Ctx.mulConst(s("N"), 2), 1));
}

TEST_F(SymRangeTest, NegativeCoefficientFlipsEnds) {
  // i in [1, N]: lower(-i) = -N, upper(-i) = -1.
  SymbolId I = Ctx.symbol("i");
  Env.bind(I, c(1), s("N"));
  const Expr *E = Ctx.neg(Ctx.symRef(I));
  EXPECT_EQ(boundExpr(Ctx, E, Env, true).value(), Ctx.neg(s("N")));
  EXPECT_EQ(boundExpr(Ctx, E, Env, false).value(), c(-1));
}

TEST_F(SymRangeTest, ChainedRanges) {
  // k in [1, i-1], i in [1, N]: upper(k) = upper(i-1) = N-1.
  SymbolId I = Ctx.symbol("i");
  SymbolId K = Ctx.symbol("k");
  Env.bind(I, c(1), s("N"));
  Env.bind(K, c(1), Ctx.addConst(Ctx.symRef(I), -1));
  EXPECT_EQ(boundExpr(Ctx, Ctx.symRef(K), Env, false).value(),
            Ctx.addConst(s("N"), -1));
  EXPECT_EQ(boundExpr(Ctx, Ctx.symRef(K), Env, true).value(), c(1));
}

TEST_F(SymRangeTest, OpaqueAtomFails) {
  // Bounded symbol inside an array subscript cannot be bounded.
  SymbolId I = Ctx.symbol("i");
  SymbolId IB = Ctx.symbol("IB", 0, /*IsArray=*/true);
  Env.bind(I, c(1), s("N"));
  const Expr *E = Ctx.arrayRef(IB, Ctx.symRef(I));
  EXPECT_FALSE(boundExpr(Ctx, E, Env, true).has_value());
}

TEST_F(SymRangeTest, ProductOfBoundedSymbolsFails) {
  // i*j with both bounded: conservative failure (sign analysis not done).
  SymbolId I = Ctx.symbol("i");
  SymbolId J = Ctx.symbol("j");
  Env.bind(I, c(1), s("N"));
  Env.bind(J, c(1), s("M"));
  const Expr *E = Ctx.mul(Ctx.symRef(I), Ctx.symRef(J));
  EXPECT_FALSE(boundExpr(Ctx, E, Env, true).has_value());
}

TEST_F(SymRangeTest, MixedInvariantAndBoundedTerms) {
  // n - 3i, i in [2, 5]: lower = n - 15, upper = n - 6.
  SymbolId I = Ctx.symbol("i");
  Env.bind(I, c(2), c(5));
  const Expr *E = Ctx.sub(s("n"), Ctx.mulConst(Ctx.symRef(I), 3));
  EXPECT_EQ(boundExpr(Ctx, E, Env, true).value(), Ctx.addConst(s("n"), -15));
  EXPECT_EQ(boundExpr(Ctx, E, Env, false).value(), Ctx.addConst(s("n"), -6));
}

} // namespace
