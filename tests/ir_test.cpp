//===- tests/ir_test.cpp - Mini-IR unit tests -----------------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::ir;

namespace {

class IrTest : public ::testing::Test {
protected:
  IrTest() : P(Sym), Prog(Sym, P) {}
  sym::Context Sym;
  pdag::PredContext P;
  Program Prog;
};

TEST_F(IrTest, SubroutineLookup) {
  Subroutine *A = Prog.makeSubroutine("alpha");
  Subroutine *B = Prog.makeSubroutine("beta");
  EXPECT_EQ(Prog.findSubroutine("alpha"), A);
  EXPECT_EQ(Prog.findSubroutine("beta"), B);
  EXPECT_EQ(Prog.findSubroutine("gamma"), nullptr);
}

TEST_F(IrTest, ArrayDeclLookupAcrossSubroutines) {
  Subroutine *A = Prog.makeSubroutine("alpha");
  Subroutine *B = Prog.makeSubroutine("beta");
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId Y = Sym.symbol("Y", 0, true);
  A->declareArray(ArrayDecl{X, Sym.intConst(100), false});
  B->declareArray(ArrayDecl{Y, nullptr, true});
  const ArrayDecl *DX = Prog.findArrayDecl(X);
  ASSERT_NE(DX, nullptr);
  EXPECT_EQ(DX->Size, Sym.intConst(100));
  EXPECT_FALSE(DX->IsIndex);
  const ArrayDecl *DY = Prog.findArrayDecl(Y);
  ASSERT_NE(DY, nullptr);
  EXPECT_EQ(DY->Size, nullptr); // Assumed-size.
  EXPECT_TRUE(DY->IsIndex);
  EXPECT_EQ(Prog.findArrayDecl(Sym.symbol("Z", 0, true)), nullptr);
}

TEST_F(IrTest, StmtKindsAndClassof) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  Stmt *Assign = Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.intConst(0)}, std::vector<ArrayAccess>{}, false, 3);
  Stmt *Loop = Prog.make<DoLoop>("L", I, Sym.intConst(1), Sym.symRef("N"), 1);
  Stmt *If = Prog.make<IfStmt>(P.getTrue());
  Stmt *Civ = Prog.make<CivIncrStmt>(Sym.symbol("civ", 1), Sym.intConst(2));

  EXPECT_TRUE(isa<AssignStmt>(Assign));
  EXPECT_FALSE(isa<DoLoop>(Assign));
  EXPECT_TRUE(isa<DoLoop>(Loop));
  EXPECT_TRUE(isa<IfStmt>(If));
  EXPECT_TRUE(isa<CivIncrStmt>(Civ));
  EXPECT_EQ(cast<AssignStmt>(Assign)->getWorkCost(), 3u);
  EXPECT_EQ(cast<DoLoop>(Loop)->getDepth(), 1);
}

TEST_F(IrTest, LoopBodyOrderPreserved) {
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, Sym.intConst(1), Sym.symRef("N"), 1);
  std::vector<const Stmt *> Made;
  for (int K = 0; K < 5; ++K) {
    const Stmt *S = Prog.make<CivIncrStmt>(Sym.symbol("c", 1),
                                           Sym.intConst(K));
    Made.push_back(S);
    L->append(S);
  }
  EXPECT_EQ(L->getBody(), Made);
}

TEST_F(IrTest, IfBranchesIndependent) {
  IfStmt *If = Prog.make<IfStmt>(P.ne(Sym.symRef("SYM"), Sym.intConst(1)));
  const Stmt *T = Prog.make<CivIncrStmt>(Sym.symbol("c", 1), Sym.intConst(1));
  const Stmt *E = Prog.make<CivIncrStmt>(Sym.symbol("c", 1), Sym.intConst(2));
  If->appendThen(T);
  If->appendElse(E);
  ASSERT_EQ(If->getThen().size(), 1u);
  ASSERT_EQ(If->getElse().size(), 1u);
  EXPECT_EQ(If->getThen()[0], T);
  EXPECT_EQ(If->getElse()[0], E);
}

TEST_F(IrTest, CallArgsRecorded) {
  Subroutine *Callee = Prog.makeSubroutine("work");
  sym::SymbolId F = Sym.symbol("F", 0, true);
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId NS = Sym.symbol("NSf");
  CallStmt *Call = Prog.make<CallStmt>(
      Callee,
      std::vector<CallStmt::ArrayArg>{{F, X, Sym.intConst(32)}},
      std::vector<CallStmt::ScalarArg>{{NS, Sym.symRef("NS")}});
  EXPECT_EQ(Call->getCallee(), Callee);
  ASSERT_EQ(Call->getArrayArgs().size(), 1u);
  EXPECT_EQ(Call->getArrayArgs()[0].Actual, X);
  EXPECT_EQ(Call->getArrayArgs()[0].Offset, Sym.intConst(32));
  ASSERT_EQ(Call->getScalarArgs().size(), 1u);
  EXPECT_EQ(Call->getScalarArgs()[0].Formal, NS);
}

} // namespace
