//===- compile_fail/reclaim_outside_exclusive.cpp - TSA negative case -----===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: mutating the retired-plan reclaim list outside an
// exclusive phase. Retired plans are kept alive for in-flight executions
// and swept only while the config lock is held exclusively (no request in
// flight); sweeping under a shared hold would free plans a concurrent
// request is executing. reclaim() requires the exclusive capability, so a
// shared-held caller must not compile.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include <vector>

namespace {

using namespace halo::support;

struct PlanRegistry {
  SharedMutex ConfigLock;
  std::vector<int> Retired HALO_GUARDED_BY(ConfigLock);

  void reclaim() HALO_REQUIRES(ConfigLock) { Retired.clear(); }

  void sweep() HALO_EXCLUDES(ConfigLock) {
#ifdef HALO_EXPECT_TSA_VIOLATION
    SharedLock L(ConfigLock); // Shared hold only…
    reclaim();                // …but the sweep needs exclusivity.
#else
    ExclusiveLock L(ConfigLock);
    reclaim();
#endif
  }
};

} // namespace

int main() {
  PlanRegistry R;
  R.sweep();
  return 0;
}
