//===- compile_fail/unguarded_cache_map.cpp - TSA negative case -----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: touching a mutex-guarded cache map without holding the
// cache mutex — the PredCompileCache/USRCompileCache probe contract
// (rt/CompiledCascade.h). As written this file compiles clean; with
// HALO_EXPECT_TSA_VIOLATION the probe drops the lock and the thread-safety
// analysis must reject it (the driver in CMakeLists.txt checks both).
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include <unordered_map>

namespace {

using namespace halo::support;

struct CompileCache {
  mutable Mutex M;
  std::unordered_map<int, int> Cache HALO_GUARDED_BY(M);

  int get(int Key) HALO_EXCLUDES(M) {
#ifndef HALO_EXPECT_TSA_VIOLATION
    MutexLock L(M);
#endif
    auto It = Cache.find(Key);
    return It == Cache.end() ? -1 : It->second;
  }
};

} // namespace

int main() {
  CompileCache C;
  return C.get(7) == -1 ? 0 : 1;
}
