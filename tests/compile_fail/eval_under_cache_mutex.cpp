//===- compile_fail/eval_under_cache_mutex.cpp - TSA negative case --------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: running the (expensive) evaluation while still holding
// the cache mutex. The probe-under-mutex / evaluate-outside contract
// (USRCompileCache::emptiness, HoistCache::emptiness) exists so concurrent
// executions never serialize on each other's exact tests; evaluate() says
// so with HALO_EXCLUDES(M), and calling it under M must not compile.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

namespace {

using namespace halo::support;

struct EmptinessCache {
  mutable Mutex M;
  int Probes HALO_GUARDED_BY(M) = 0;

  /// The expensive tier: must never run under the cache mutex.
  bool evaluate() HALO_EXCLUDES(M) { return true; }

  bool emptiness() HALO_EXCLUDES(M) {
#ifdef HALO_EXPECT_TSA_VIOLATION
    MutexLock L(M);
    ++Probes;
    return evaluate(); // Evaluation under the cache mutex.
#else
    {
      MutexLock L(M);
      ++Probes;
    }
    return evaluate();
#endif
  }
};

} // namespace

int main() {
  EmptinessCache C;
  return C.emptiness() ? 0 : 1;
}
