//===- compile_fail/guarded_write_under_shared.cpp - TSA negative case ----===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: writing config-lock-guarded registry state while
// holding the lock only shared. The serving path reads Programs/Labels/
// Breakers under a shared hold; every mutation belongs to the exclusive
// warm-up phase. A shared-held write must not compile.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

namespace {

using namespace halo::support;

struct Registry {
  mutable SharedMutex ConfigLock;
  int Version HALO_GUARDED_BY(ConfigLock) = 0;

  int read() const HALO_EXCLUDES(ConfigLock) {
    SharedLock L(ConfigLock);
    return Version; // Reads are fine under a shared hold.
  }

  void bump() HALO_EXCLUDES(ConfigLock) {
#ifdef HALO_EXPECT_TSA_VIOLATION
    SharedLock L(ConfigLock);
    ++Version; // Writing under a shared hold.
#else
    ExclusiveLock L(ConfigLock);
    ++Version;
#endif
  }
};

} // namespace

int main() {
  Registry R;
  R.bump();
  return R.read() == 1 ? 0 : 1;
}
