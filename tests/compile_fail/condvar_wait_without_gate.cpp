//===- compile_fail/condvar_wait_without_gate.cpp - TSA negative case -----===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: waiting on the writer-preference gate's condition
// variable without holding the gate mutex (the lost-wakeup bug: a waiter
// between its predicate check and its sleep must hold GateM or the
// exclusive section's decrement can slip past it). support::CondVar::wait
// requires its mutex by signature, so the bad wait must not compile.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

namespace {

using namespace halo::support;

struct Gate {
  Mutex GateM;
  CondVar GateCv;
  bool Open HALO_GUARDED_BY(GateM) = false;

  void waitOpen() HALO_EXCLUDES(GateM) {
#ifdef HALO_EXPECT_TSA_VIOLATION
    GateCv.wait(GateM); // Wait without holding the gate mutex.
#else
    MutexLock L(GateM);
    while (!Open)
      GateCv.wait(GateM);
#endif
  }

  void open() HALO_EXCLUDES(GateM) {
    {
      MutexLock L(GateM);
      Open = true;
    }
    GateCv.notify_all();
  }
};

} // namespace

int main() {
  Gate G;
  G.open(); // Never actually wait: try_compile only builds this.
  return 0;
}
