//===- compile_fail/double_release.cpp - TSA negative case ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: releasing a mutex that is no longer held (the classic
// unlock-twice on an error path — undefined behavior on std::mutex). The
// annotated Mutex makes the second unlock a compile error instead of a
// runtime lottery.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

namespace {

using namespace halo::support;

struct Counter {
  Mutex M;
  int N HALO_GUARDED_BY(M) = 0;

  void bump() HALO_EXCLUDES(M) {
    M.lock();
    ++N;
    M.unlock();
#ifdef HALO_EXPECT_TSA_VIOLATION
    M.unlock(); // Releasing a mutex that is not held.
#endif
  }
};

} // namespace

int main() {
  Counter C;
  C.bump();
  return 0;
}
