//===- compile_fail/shard_mutex_across_run.cpp - TSA negative case --------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Violation class: holding a shard's session-map mutex across the request
// execution. serve::Engine's contract is that Shard::M covers exactly the
// session-map lookup — the execution runs with no shard-wide lock held, so
// one hot loop is served by every worker at once. runPrepared() states
// that with HALO_EXCLUDES(M); serving under the shard mutex must not
// compile.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include <map>

namespace {

using namespace halo::support;

struct Session {
  int Served = 0;
};

struct Shard {
  Mutex M;
  std::map<int, Session> Sessions HALO_GUARDED_BY(M);

  /// Long-running execution: must not run under the shard mutex.
  void runPrepared(Session &S) HALO_EXCLUDES(M) { ++S.Served; }

  void serve(int Program) HALO_EXCLUDES(M) {
#ifdef HALO_EXPECT_TSA_VIOLATION
    MutexLock SL(M);
    Session &S = Sessions[Program];
    runPrepared(S); // Shard mutex held across the execution.
#else
    Session *S;
    {
      MutexLock SL(M);
      S = &Sessions[Program];
    }
    runPrepared(*S);
#endif
  }
};

} // namespace

int main() {
  Shard S;
  S.serve(3);
  return 0;
}
