//===- tests/plan_test.cpp - Plan-cache round-trip / corruption battery ---===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The .hplan serialization battery (src/plan/, docs/PLAN_FORMAT.md):
//
//  - round-trip parity: every suite loop and hundreds of fuzzed nests are
//    prepared, serialized, loaded into a fresh session (fresh contexts for
//    the fuzz sweep — a process restart in miniature) and executed; the
//    warm-started run must be adopted without a single fallback and must
//    produce bit-identical memory AND the same compiled/interpreted
//    ExecStats split as the fresh-compile path;
//  - hostile bytes: a directed test per rejection Diag (bad magic, version
//    skew up/down, truncation at every chunk boundary, a flipped payload
//    byte, trailing bytes, out-of-range counts/indices, plan-key mismatch
//    after an options change) plus a randomized bit-flip sweep — every
//    mutated load must either throw a *typed* ValidationError or stage
//    plans that still adopt and execute correctly; nothing may crash and
//    no wrong plan may ever be adopted silently;
//  - the two-hash key discipline: a forged primary key (KeyA patched to
//    the adopting loop's own value, chunk CRC re-sealed) must be caught by
//    the independent verify hash and counted as a key collision;
//  - engine warm-start: EngineOptions::PlanCachePath populates shard
//    sessions at creation, visible as ShardStats::PlansWarmStarted.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"
#include "plan/Plan.h"
#include "serve/Engine.h"
#include "session/Session.h"
#include "suite/Suite.h"
#include "support/Error.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace halo;

namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool Sanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool Sanitized = true;
#else
constexpr bool Sanitized = false;
#endif
#else
constexpr bool Sanitized = false;
#endif

/// Fuzz sweep sizes: full breadth in plain CI, trimmed under sanitizers
/// (5-20x slower per case) to stay inside the ctest timeout.
constexpr uint64_t NumRoundTripSeeds = Sanitized ? 60 : 300;
constexpr int NumBitFlips = Sanitized ? 120 : 500;

//===----------------------------------------------------------------------===//
// Byte-level helpers
//===----------------------------------------------------------------------===//

std::string saveBytes(session::Session &S) {
  std::ostringstream OS(std::ios::binary);
  S.savePlans(OS);
  return OS.str();
}

plan::LoadResult loadBytes(session::Session &S, const std::string &Bytes) {
  std::istringstream IS(Bytes, std::ios::binary);
  return S.loadPlans(IS);
}

uint32_t rdU32(const std::string &B, size_t Off) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(B[Off + I])) << (8 * I);
  return V;
}

void wrU32(std::string &B, size_t Off, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B[Off + I] = static_cast<char>(V >> (8 * I));
}

void wrU64(std::string &B, size_t Off, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B[Off + I] = static_cast<char>(V >> (8 * I));
}

/// Parsed chunk frame: header at HeaderOff (tag, len, crc), payload after.
struct ChunkRef {
  uint32_t Tag = 0;
  size_t HeaderOff = 0;
  size_t PayloadOff = 0;
  uint32_t Len = 0;
};

std::vector<ChunkRef> chunksOf(const std::string &B) {
  std::vector<ChunkRef> Out;
  uint32_t Count = rdU32(B, 8);
  size_t Off = 12;
  for (uint32_t I = 0; I < Count; ++I) {
    ChunkRef C;
    C.HeaderOff = Off;
    C.Tag = rdU32(B, Off);
    C.Len = rdU32(B, Off + 4);
    C.PayloadOff = Off + 12;
    Out.push_back(C);
    Off = C.PayloadOff + C.Len;
  }
  EXPECT_EQ(Off, B.size()) << "chunk walk must consume the whole stream";
  return Out;
}

/// Recomputes and rewrites \p C's CRC after a deliberate payload patch.
void resealChunk(std::string &B, const ChunkRef &C) {
  wrU32(B, C.HeaderOff + 8, plan::crc32(B.data() + C.PayloadOff, C.Len));
}

ChunkRef chunkByTag(const std::vector<ChunkRef> &Cs, uint32_t Tag) {
  for (const ChunkRef &C : Cs)
    if (C.Tag == Tag)
      return C;
  ADD_FAILURE() << "missing chunk";
  return Cs.front();
}

/// Loads \p Bytes into a fresh session over a fresh generated case and
/// asserts the load throws a ValidationError whose first Diag carries
/// \p Code.
void expectLoadThrows(const std::string &Bytes, support::Diag::Code Code,
                      const char *What) {
  fuzz::GenOptions GO;
  GO.Seed = 5;
  auto C = fuzz::generate(GO);
  session::Session S(C->prog(), C->usrCtx());
  try {
    loadBytes(S, Bytes);
    ADD_FAILURE() << What << ": load accepted the stream";
  } catch (const support::ValidationError &E) {
    ASSERT_FALSE(E.diags().empty()) << What;
    EXPECT_EQ(E.diags().front().Kind, Code)
        << What << ": got "
        << support::diagCodeName(E.diags().front().Kind) << ": "
        << E.diags().front().Message;
  }
  EXPECT_EQ(S.numStagedPlans(), 0u) << What;
}

/// One serialized plan stream of one fuzz case (fresh every call so tests
/// can mutate it freely).
std::string fuzzPlanBytes(uint64_t Seed = 5) {
  fuzz::GenOptions GO;
  GO.Seed = Seed;
  auto C = fuzz::generate(GO);
  session::Session S(C->prog(), C->usrCtx());
  S.prepare(*C->Loop);
  return saveBytes(S);
}

void expectSameMemory(const rt::Memory &Want, const rt::Memory &Got,
                      const char *What) {
  ASSERT_EQ(Want.arrays().size(), Got.arrays().size()) << What;
  for (const auto &KV : Want.arrays()) {
    auto It = Got.arrays().find(KV.first);
    ASSERT_TRUE(It != Got.arrays().end()) << What;
    ASSERT_EQ(KV.second.size(), It->second.size()) << What;
    for (size_t I = 0; I < KV.second.size(); ++I)
      ASSERT_EQ(KV.second[I], It->second[I])
          << What << ": element " << I << " diverged";
  }
}

void expectSameSplit(const rt::ExecStats &Cold, const rt::ExecStats &Warm,
                     const char *What) {
  EXPECT_EQ(Cold.RanParallel, Warm.RanParallel) << What;
  EXPECT_EQ(Cold.UsedExactTest, Warm.UsedExactTest) << What;
  EXPECT_EQ(Cold.CascadeDepthUsed, Warm.CascadeDepthUsed) << What;
  EXPECT_EQ(Cold.CompiledPredEvals, Warm.CompiledPredEvals) << What;
  EXPECT_EQ(Cold.InterpPredEvals, Warm.InterpPredEvals) << What;
  EXPECT_EQ(Cold.CompiledUSREvals, Warm.CompiledUSREvals) << What;
  EXPECT_EQ(Cold.InterpUSREvals, Warm.InterpUSREvals) << What;
  EXPECT_EQ(Cold.BlockEvals, Warm.BlockEvals) << What;
  EXPECT_EQ(Cold.ScalarEvals, Warm.ScalarEvals) << What;
  EXPECT_EQ(Cold.GuardDemotions, Warm.GuardDemotions) << What;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round-trip parity
//===----------------------------------------------------------------------===//

// Every suite loop: serialize from one build of the benchmarks, load into
// a second identical build (fresh contexts), and require every prepare()
// to adopt the staged plan — zero full re-analyses, zero diagnostics.
TEST(PlanRoundTrip, SuiteLoopsAdoptWithoutReanalysis) {
  auto Save = suite::buildAllBenchmarks();
  auto Load = suite::buildAllBenchmarks();
  ASSERT_EQ(Save.size(), Load.size());
  size_t Loops = 0;
  for (size_t BI = 0; BI < Save.size(); ++BI) {
    SCOPED_TRACE(Save[BI]->Name);
    session::Session SA(Save[BI]->prog(), Save[BI]->usr());
    for (const suite::LoopSpec &LS : Save[BI]->Loops)
      SA.prepare(*LS.Loop);
    std::string Bytes = saveBytes(SA);
    EXPECT_EQ(rdU32(Bytes, 8), 6 + Save[BI]->Loops.size())
        << "one LOOP chunk per prepared loop";

    session::Session SB(Load[BI]->prog(), Load[BI]->usr());
    plan::LoadResult R = loadBytes(SB, Bytes);
    EXPECT_EQ(R.Rejected, 0u)
        << (R.Diags.empty() ? "" : R.Diags.front().Message);
    EXPECT_EQ(R.Staged, Save[BI]->Loops.size());
    for (const suite::LoopSpec &LS : Load[BI]->Loops)
      SB.prepare(*LS.Loop);
    EXPECT_EQ(SB.numPlansWarmStarted(), Load[BI]->Loops.size());
    EXPECT_TRUE(SB.planDiags().empty())
        << SB.planDiags().front().Message;
    Loops += Load[BI]->Loops.size();
  }
  EXPECT_GE(Loops, 80u) << "the suite should cover all reconstructed loops";
}

// Fuzzed nests: save from one generated case, regenerate the recipe (fresh
// contexts), load, execute. Memory must match bit-for-bit and the
// compiled/interpreted stats split must be identical — the warm plan runs
// the exact same engine tiers as the cold one. Alternating UseBlockEval
// covers the block-vectorized tier on both sides of the round trip, and a
// second warm run pins pooled-frame reuse after a load.
TEST(PlanRoundTrip, FuzzedNestsExecuteIdentically) {
  uint64_t FrameReuse = 0, CompiledEvals = 0;
  for (uint64_t Seed = 1; Seed <= NumRoundTripSeeds; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    fuzz::GenOptions GO;
    GO.Seed = Seed;
    GO.BodyStmts = 4;
    GO.Trip = 16;

    session::SessionOptions SO;
    SO.Threads = 1; // Deterministic reduction order: bit-exact compare.
    SO.UseBlockEval = (Seed % 2) == 0;
    // A tight factorization budget keeps the 300-seed sweep inside the
    // ctest timeout (a few seeds hit multi-second LMAD blowups at the
    // default). Degradation is sound and both sides of the round trip
    // key on the same options, so parity is unaffected.
    SO.Analyzer.Factor.MaxSteps = 512;

    auto CA = fuzz::generate(GO);
    session::Session SA(CA->prog(), CA->usrCtx(), SO);
    SA.prepare(*CA->Loop);
    rt::Memory MA;
    sym::Bindings BA;
    CA->bind(MA, BA);
    rt::ExecStats ESA = SA.run(*CA->Loop, MA, BA);
    std::string Bytes = saveBytes(SA);

    auto CB = fuzz::generate(GO);
    session::Session SB(CB->prog(), CB->usrCtx(), SO);
    plan::LoadResult R = loadBytes(SB, Bytes);
    ASSERT_EQ(R.Rejected, 0u)
        << (R.Diags.empty() ? "" : R.Diags.front().Message);
    ASSERT_EQ(R.Staged, 1u);
    rt::Memory MB;
    sym::Bindings BB;
    CB->bind(MB, BB);
    rt::ExecStats ESB = SB.run(*CB->Loop, MB, BB);
    ASSERT_EQ(SB.numPlansWarmStarted(), 1u)
        << (SB.planDiags().empty() ? "no diags"
                                   : SB.planDiags().front().Message);
    expectSameMemory(MA, MB, "warm vs cold");
    expectSameSplit(ESA, ESB, "warm vs cold");
    CompiledEvals += ESB.CompiledPredEvals + ESB.CompiledUSREvals;

    // Pooled frames survive adoption: a second warm execution reuses the
    // frames the first one bound.
    rt::Memory MB2;
    sym::Bindings BB2;
    CB->bind(MB2, BB2);
    rt::ExecStats ESB2 = SB.run(*CB->Loop, MB2, BB2);
    expectSameMemory(MA, MB2, "second warm run");
    FrameReuse += ESB2.FrameRebindsSkipped;
  }
  // The sweep as a whole must have exercised the compiled tier and the
  // pooled-frame fast path through adopted plans — otherwise the parity
  // above proved nothing about the warm engine configuration.
  EXPECT_GT(CompiledEvals, 0u);
  EXPECT_GT(FrameReuse, 0u);
}

//===----------------------------------------------------------------------===//
// Hostile bytes: directed rejections
//===----------------------------------------------------------------------===//

TEST(PlanHostile, BadMagic) {
  std::string B = fuzzPlanBytes();
  B[0] = 'X';
  expectLoadThrows(B, support::Diag::Code::PlanBadMagic, "bad magic");
}

TEST(PlanHostile, VersionSkewBothDirections) {
  for (int Delta : {+1, -1}) {
    std::string B = fuzzPlanBytes();
    wrU32(B, 4, plan::FormatVersion + static_cast<uint32_t>(Delta));
    expectLoadThrows(B, support::Diag::Code::PlanVersionSkew,
                     Delta > 0 ? "version+1" : "version-1");
  }
}

TEST(PlanHostile, TruncationAtEveryChunkBoundary) {
  std::string B = fuzzPlanBytes();
  std::vector<ChunkRef> Cs = chunksOf(B);
  // Preamble cuts: inside the magic -> BadMagic, after it -> Corrupt.
  expectLoadThrows(B.substr(0, 2), support::Diag::Code::PlanBadMagic,
                   "cut inside magic");
  expectLoadThrows(B.substr(0, 6), support::Diag::Code::PlanCorrupt,
                   "cut inside version");
  expectLoadThrows(B.substr(0, 10), support::Diag::Code::PlanCorrupt,
                   "cut inside chunk count");
  for (size_t I = 0; I < Cs.size(); ++I) {
    SCOPED_TRACE("chunk " + std::to_string(I));
    // At the header, inside the header, at the payload, one byte short.
    expectLoadThrows(B.substr(0, Cs[I].HeaderOff),
                     support::Diag::Code::PlanCorrupt, "cut at header");
    expectLoadThrows(B.substr(0, Cs[I].HeaderOff + 5),
                     support::Diag::Code::PlanCorrupt, "cut inside header");
    if (Cs[I].Len > 0) {
      expectLoadThrows(B.substr(0, Cs[I].PayloadOff),
                       support::Diag::Code::PlanCorrupt,
                       "cut before payload");
      expectLoadThrows(B.substr(0, Cs[I].PayloadOff + Cs[I].Len - 1),
                       support::Diag::Code::PlanCorrupt,
                       "cut one byte short");
    }
  }
}

TEST(PlanHostile, FlippedPayloadByteFailsCrc) {
  std::string Orig = fuzzPlanBytes();
  for (const ChunkRef &C : chunksOf(Orig)) {
    if (C.Len == 0)
      continue;
    std::string B = Orig;
    B[C.PayloadOff + C.Len / 2] ^= 0x20;
    expectLoadThrows(B, support::Diag::Code::PlanCorrupt, "flipped byte");
  }
}

TEST(PlanHostile, TrailingBytesRejected) {
  std::string B = fuzzPlanBytes();
  B += '\0';
  expectLoadThrows(B, support::Diag::Code::PlanCorrupt, "trailing bytes");
}

// A hostile record count / table index sealed under a valid CRC: the CRC
// defends against corruption, not forgery, so the decoder's own bounds
// checks must reject these with PlanCorrupt (never crash or over-read).
TEST(PlanHostile, OutOfRangeCountsAndIndices) {
  std::string Orig = fuzzPlanBytes();
  std::vector<ChunkRef> Cs = chunksOf(Orig);
  // Record count of every table chunk patched far beyond the payload.
  for (uint32_t Tag : {plan::ChunkSymbols, plan::ChunkExprs,
                       plan::ChunkPreds, plan::ChunkUsrs,
                       plan::ChunkPredCode, plan::ChunkUsrCode}) {
    std::string B = Orig;
    ChunkRef C = chunkByTag(Cs, Tag);
    wrU32(B, C.PayloadOff, 0x10000000u);
    resealChunk(B, C);
    expectLoadThrows(B, support::Diag::Code::PlanCorrupt, "hostile count");
  }
  // First table reference of the PCOD chunk (a pred index) out of range.
  {
    std::string B = Orig;
    ChunkRef C = chunkByTag(Cs, plan::ChunkPredCode);
    ASSERT_GT(rdU32(B, C.PayloadOff), 0u) << "expected a PCOD record";
    wrU32(B, C.PayloadOff + 4, 0xFFFFFFFEu);
    resealChunk(B, C);
    expectLoadThrows(B, support::Diag::Code::PlanCorrupt, "hostile index");
  }
}

//===----------------------------------------------------------------------===//
// Key discipline
//===----------------------------------------------------------------------===//

// Codegen-affecting options are part of the plan key: a cache written
// under one configuration must not be adopted under another. The load
// itself succeeds (the stream is intact); adoption falls back with a
// structured PlanKeyMismatch.
TEST(PlanKeys, OptionsChangeFallsBackToAnalysis) {
  std::string Bytes = fuzzPlanBytes(5);
  fuzz::GenOptions GO;
  GO.Seed = 5;
  auto C = fuzz::generate(GO);
  session::SessionOptions SO;
  SO.UseBlockEval = false; // Differs from the save-side default (true).
  session::Session S(C->prog(), C->usrCtx(), SO);
  plan::LoadResult R = loadBytes(S, Bytes);
  EXPECT_EQ(R.Rejected, 0u);
  ASSERT_EQ(R.Staged, 1u);
  S.prepare(*C->Loop);
  EXPECT_EQ(S.numPlansWarmStarted(), 0u)
      << "a plan keyed under different options must not be adopted";
  ASSERT_FALSE(S.planDiags().empty());
  EXPECT_EQ(S.planDiags().front().Kind,
            support::Diag::Code::PlanKeyMismatch);
}

// A different loop under the same label (two fuzz recipes share the
// label "fuzz"): the plan must not survive into the other program. The
// load-time bytecode verification already catches it — the serialized
// compiled records cannot be reproduced by a fresh compile in the other
// program's contexts — and reports a structured PlanKeyMismatch; prepare
// then falls back to full analysis with zero warm starts.
TEST(PlanKeys, DifferentLoopSameLabelRejected) {
  std::string Bytes = fuzzPlanBytes(5);
  fuzz::GenOptions GO;
  GO.Seed = 9; // A different nest, same outer-loop label.
  auto C = fuzz::generate(GO);
  session::Session S(C->prog(), C->usrCtx());
  plan::LoadResult R = loadBytes(S, Bytes);
  EXPECT_EQ(R.Staged, 0u);
  ASSERT_EQ(R.Rejected, 1u);
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags.front().Kind, support::Diag::Code::PlanKeyMismatch);
  // The fallback full analysis still produces a usable plan.
  const session::PreparedLoop &PL = S.prepare(*C->Loop);
  EXPECT_EQ(S.numPlansWarmStarted(), 0u);
  EXPECT_EQ(PL.Plan.Loop, C->Loop);
}

// The PR 2 HoistCache discipline, serialized: adoption re-derives the
// plan key under BOTH seeds and requires both to match. Forging the
// verify key (patched in the LOOP payload, chunk CRC re-sealed) simulates
// a primary-hash collision — same KeyA, different structure — and must be
// caught by the independent verify hash and counted, never adopted.
TEST(PlanKeys, PrimaryKeyCollisionCaughtByVerifyHash) {
  std::string Bytes = fuzzPlanBytes(5);
  ChunkRef Loop = chunkByTag(chunksOf(Bytes), plan::ChunkLoop);
  size_t LabelLen = rdU32(Bytes, Loop.PayloadOff);
  // KeyA then KeyB follow the length-prefixed label; corrupt KeyB only.
  wrU64(Bytes, Loop.PayloadOff + 4 + LabelLen + 8, 0xDEADBEEFCAFEF00Dull);
  resealChunk(Bytes, Loop);

  fuzz::GenOptions GO;
  GO.Seed = 5; // The same nest: the primary key genuinely matches.
  auto C = fuzz::generate(GO);
  session::Session S(C->prog(), C->usrCtx());
  plan::LoadResult R = loadBytes(S, Bytes);
  EXPECT_EQ(R.Rejected, 0u);
  ASSERT_EQ(R.Staged, 1u);
  S.prepare(*C->Loop);
  EXPECT_EQ(S.numPlansWarmStarted(), 0u)
      << "a plan whose verify key differs must not be adopted";
  EXPECT_EQ(S.numPlanKeyCollisions(), 1u)
      << "the verify hash must see and count the primary-hash collision";
  ASSERT_FALSE(S.planDiags().empty());
  EXPECT_EQ(S.planDiags().front().Kind,
            support::Diag::Code::PlanKeyMismatch);
}

//===----------------------------------------------------------------------===//
// Randomized mutation sweep
//===----------------------------------------------------------------------===//

// Hundreds of single-bit flips over a valid stream. Every load must
// either throw a typed Plan* ValidationError or succeed — and anything
// that loads must adopt-and-execute with results identical to the cold
// path (a flip that survives the CRCs can only be in the un-CRC'd
// preamble, where the framing checks catch it, or be semantically inert).
TEST(PlanHostile, RandomBitFlipsNeverCrashOrCorrupt) {
  std::string Orig = fuzzPlanBytes(5);
  fuzz::GenOptions GO;
  GO.Seed = 5;

  // Cold reference for the rare clean-load case.
  auto CRef = fuzz::generate(GO);
  session::SessionOptions SO;
  SO.Threads = 1;
  session::Session SRef(CRef->prog(), CRef->usrCtx(), SO);
  rt::Memory MRef;
  sym::Bindings BRef;
  CRef->bind(MRef, BRef);
  SRef.run(*CRef->Loop, MRef, BRef);

  std::mt19937_64 Rng(0xC0FFEE);
  int Rejected = 0, Clean = 0;
  for (int I = 0; I < NumBitFlips; ++I) {
    SCOPED_TRACE("mutation " + std::to_string(I));
    std::string B = Orig;
    size_t Bit = Rng() % (B.size() * 8);
    B[Bit / 8] ^= static_cast<char>(1u << (Bit % 8));

    auto C = fuzz::generate(GO);
    session::Session S(C->prog(), C->usrCtx(), SO);
    try {
      plan::LoadResult R = loadBytes(S, B);
      // Loaded: the flip was caught semantically (rejected loop) or was
      // inert. Whatever staged must still execute correctly.
      (void)R;
      rt::Memory M;
      sym::Bindings Bd;
      C->bind(M, Bd);
      S.run(*C->Loop, M, Bd);
      expectSameMemory(MRef, M, "mutated-load execution");
      ++Clean;
    } catch (const support::ValidationError &E) {
      ASSERT_FALSE(E.diags().empty());
      support::Diag::Code K = E.diags().front().Kind;
      EXPECT_TRUE(K == support::Diag::Code::PlanBadMagic ||
                  K == support::Diag::Code::PlanVersionSkew ||
                  K == support::Diag::Code::PlanCorrupt ||
                  K == support::Diag::Code::PlanKeyMismatch)
          << "untyped rejection: " << support::diagCodeName(K);
      ++Rejected;
    }
    // Any other exception type escapes and fails the test: the loader's
    // crash-freedom contract is "typed rejection or clean load", nothing
    // else.
  }
  EXPECT_GT(Rejected, 0) << "the sweep never hit a CRC?";
  EXPECT_EQ(Rejected + Clean, NumBitFlips);
}

//===----------------------------------------------------------------------===//
// Engine warm-start
//===----------------------------------------------------------------------===//

TEST(PlanEngine, WarmStartFromPlanCachePath) {
  fuzz::GenOptions GO;
  GO.Seed = 5;
  std::string Path = ::testing::TempDir() + "plan_engine_test.hplan";
  {
    auto C = fuzz::generate(GO);
    session::Session S(C->prog(), C->usrCtx());
    S.prepare(*C->Loop);
    std::ofstream Out(Path, std::ios::binary);
    ASSERT_TRUE(Out.is_open());
    ASSERT_EQ(S.savePlans(Out), 1u);
  }

  auto C = fuzz::generate(GO);
  serve::EngineOptions EO;
  EO.Shards = 2;
  EO.Workers = 2;
  EO.PlanCachePath = Path;
  serve::Engine E(EO);
  serve::ProgramId Id = E.addProgram(C->prog(), C->usrCtx());
  E.prepare(Id, *C->Loop);
  EXPECT_GT(E.stats().totals().PlansWarmStarted, 0u)
      << "the shard session must adopt from the plan cache";

  // The warm-started plan serves requests like a cold one.
  rt::Memory M;
  sym::Bindings B;
  C->bind(M, B);
  serve::Request R;
  R.Program = Id;
  R.Loop = C->Loop;
  R.M = &M;
  R.B = &B;
  serve::Response Resp = E.submit(R).get();
  EXPECT_TRUE(Resp.OK) << Resp.Error;

  // A corrupt cache degrades engine warm-start to a cold start — the
  // engine must neither fail construction nor prepare().
  {
    std::ifstream In(Path, std::ios::binary);
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Bad = SS.str();
    Bad[Bad.size() / 2] ^= 0x01;
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Bad;
  }
  auto C2 = fuzz::generate(GO);
  serve::Engine E2(EO);
  serve::ProgramId Id2 = E2.addProgram(C2->prog(), C2->usrCtx());
  E2.prepare(Id2, *C2->Loop);
  EXPECT_EQ(E2.stats().totals().PlansWarmStarted, 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

TEST(PlanInspect, SummarizesChunksAndKeys) {
  std::string Bytes = fuzzPlanBytes(5);
  std::istringstream IS(Bytes, std::ios::binary);
  std::string Summary = plan::inspect(IS);
  EXPECT_NE(Summary.find("SYMB"), std::string::npos);
  EXPECT_NE(Summary.find("PCOD"), std::string::npos);
  EXPECT_NE(Summary.find("loop 'fuzz'"), std::string::npos);
}
