//===- tests/pdag_pred_test.cpp - PDAG construction unit tests ------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/Pred.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::pdag;

namespace {

class PdagPredTest : public ::testing::Test {
protected:
  PdagPredTest() : P(Sym) {}
  sym::Context Sym;
  PredContext P;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
};

TEST_F(PdagPredTest, ConstantComparisonsFold) {
  EXPECT_TRUE(P.ge0(c(0))->isTrue());
  EXPECT_TRUE(P.ge0(c(-1))->isFalse());
  EXPECT_TRUE(P.le(c(3), c(5))->isTrue());
  EXPECT_TRUE(P.lt(c(5), c(5))->isFalse());
  EXPECT_TRUE(P.eq(c(4), c(4))->isTrue());
  EXPECT_TRUE(P.ne(c(4), c(4))->isFalse());
}

TEST_F(PdagPredTest, ComparisonLeavesAreInterned) {
  EXPECT_EQ(P.le(s("a"), s("b")), P.le(s("a"), s("b")));
  EXPECT_EQ(P.le(s("a"), s("b")), P.ge(s("b"), s("a")));
  EXPECT_EQ(P.lt(s("a"), s("b")), P.gt(s("b"), s("a")));
}

TEST_F(PdagPredTest, IntegerTighteningNormalizesGE) {
  // 2n - 3 >= 0  <=>  n - 2 >= 0 for integers.
  const Pred *A = P.ge0(Sym.addConst(Sym.mulConst(s("n"), 2), -3));
  const Pred *B = P.ge0(Sym.addConst(s("n"), -2));
  EXPECT_EQ(A, B);
}

TEST_F(PdagPredTest, InfeasibleCongruenceFolds) {
  // 2n + 1 == 0 has no integer solution.
  const sym::Expr *E = Sym.addConst(Sym.mulConst(s("n"), 2), 1);
  EXPECT_TRUE(P.eq0(E)->isFalse());
  EXPECT_TRUE(P.ne0(E)->isTrue());
}

TEST_F(PdagPredTest, EqualitySignNormalized) {
  // a - b == 0 and b - a == 0 are the same leaf.
  EXPECT_EQ(P.eq(s("a"), s("b")), P.eq(s("b"), s("a")));
  EXPECT_EQ(P.ne(s("a"), s("b")), P.ne(s("b"), s("a")));
}

TEST_F(PdagPredTest, DividesFolding) {
  EXPECT_TRUE(P.divides(c(1), s("n"))->isTrue());
  EXPECT_TRUE(P.divides(c(4), c(12))->isTrue());
  EXPECT_TRUE(P.divides(c(4), c(13))->isFalse());
  EXPECT_TRUE(P.divides(c(8), Sym.mulConst(s("n"), 32))->isTrue());
  // gcd interleave test from Sec. 3.2: 1 divides everything.
  EXPECT_TRUE(P.divides(c(1), Sym.sub(s("a"), s("b")), /*Neg=*/true)
                  ->isFalse());
}

TEST_F(PdagPredTest, DividesCanonicalizesModDivisor) {
  // 4 | (8n + 5m + 4) == 4 | (5m) == 4 | m  (coeff reduced mod 4)...
  // canonically both sides reduce coefficients modulo the divisor.
  const Pred *A = P.divides(
      c(4), Sym.add(Sym.mulConst(s("n"), 8),
                    Sym.addConst(Sym.mulConst(s("m"), 5), 4)));
  const Pred *B = P.divides(c(4), s("m"));
  EXPECT_EQ(A, B);
}

TEST_F(PdagPredTest, AndOrConstantFolding) {
  const Pred *L = P.le(s("a"), s("b"));
  EXPECT_EQ(P.and2(L, P.getTrue()), L);
  EXPECT_TRUE(P.and2(L, P.getFalse())->isFalse());
  EXPECT_TRUE(P.or2(L, P.getTrue())->isTrue());
  EXPECT_EQ(P.or2(L, P.getFalse()), L);
}

TEST_F(PdagPredTest, AndOrFlattenSortDedup) {
  const Pred *A = P.le(s("a"), s("b"));
  const Pred *B = P.le(s("c"), s("d"));
  const Pred *C = P.le(s("e"), s("f"));
  EXPECT_EQ(P.and2(P.and2(A, B), C), P.and2(A, P.and2(B, C)));
  EXPECT_EQ(P.and2(A, A), A);
  EXPECT_EQ(P.or2(B, P.or2(A, B)), P.or2(A, B));
}

TEST_F(PdagPredTest, ComplementaryLiteralsFold) {
  const Pred *L = P.ge(s("a"), s("b"));
  const Pred *NL = P.tryNot(L);
  ASSERT_NE(NL, nullptr);
  EXPECT_TRUE(P.and2(L, NL)->isFalse());
  EXPECT_TRUE(P.or2(L, NL)->isTrue());
  // The paper's mutually exclusive gates: SYM.NE.1 vs SYM.EQ.1.
  const Pred *G1 = P.ne(s("SYM"), c(1));
  const Pred *G2 = P.eq(s("SYM"), c(1));
  EXPECT_TRUE(P.and2(G1, G2)->isFalse());
  EXPECT_TRUE(P.or2(G1, G2)->isTrue());
}

TEST_F(PdagPredTest, AbsorptionDropsRedundantDisjunct) {
  const Pred *A = P.le(s("a"), s("b"));
  const Pred *B = P.le(s("c"), s("d"));
  // A and (A or B) == A.
  EXPECT_EQ(P.and2(A, P.or2(A, B)), A);
  // A or (A and B) == A.
  EXPECT_EQ(P.or2(A, P.and2(A, B)), A);
}

TEST_F(PdagPredTest, NegationRoundTrips) {
  const Pred *L = P.lt(s("a"), s("b"));
  const Pred *NL = P.tryNot(L);
  ASSERT_NE(NL, nullptr);
  EXPECT_EQ(NL, P.ge(s("a"), s("b")));
  EXPECT_EQ(P.tryNot(NL), L);
  EXPECT_EQ(P.tryNot(P.eq(s("a"), c(0))), P.ne(s("a"), c(0)));
}

TEST_F(PdagPredTest, DeMorganOnNary) {
  const Pred *A = P.le(s("a"), s("b"));
  const Pred *B = P.eq(s("c"), c(0));
  const Pred *N = P.tryNot(P.and2(A, B));
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N, P.or2(P.tryNot(A), P.tryNot(B)));
}

TEST_F(PdagPredTest, LoopAllInvariantBodyFolds) {
  // ALL(i=1..N: a <= b) == (1 > N) or (a <= b).
  sym::SymbolId I = Sym.symbol("i", /*DefLevel=*/1);
  const Pred *Body = P.le(s("a"), s("b"));
  const Pred *L = P.loopAll(I, c(1), s("N"), Body);
  EXPECT_EQ(L, P.or2(P.gt(c(1), s("N")), Body));
  EXPECT_EQ(L->loopDepth(), 0);
}

TEST_F(PdagPredTest, LoopAllEmptyConstantRangeIsTrue) {
  sym::SymbolId I = Sym.symbol("i", 1);
  const Pred *Body = P.le(Sym.symRef(I), s("b"));
  EXPECT_TRUE(P.loopAll(I, c(5), c(2), Body)->isTrue());
}

TEST_F(PdagPredTest, LoopAllUnrollsSmallConstantRanges) {
  // ALL(i=1..3: i <= b) == (1<=b and 2<=b and 3<=b) == 3 <= b.
  sym::SymbolId I = Sym.symbol("i", 1);
  const Pred *Body = P.le(Sym.symRef(I), s("b"));
  const Pred *L = P.loopAll(I, c(1), c(3), Body);
  EXPECT_EQ(L, P.andN({P.le(c(1), s("b")), P.le(c(2), s("b")),
                       P.le(c(3), s("b"))}));
}

TEST_F(PdagPredTest, LoopAllIrreducibleKeepsDepth) {
  sym::SymbolId I = Sym.symbol("i", 1);
  // The paper's Fig. 3(b) predicate shape: a genuine O(N) loop node.
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  const Pred *Body =
      P.le(s("NS"), Sym.mulConst(Sym.arrayRef(IB, Sym.symRef(I)), 32));
  const Pred *L = P.loopAll(I, c(1), Sym.addConst(s("N"), -1), Body);
  ASSERT_TRUE(isa<LoopAllPred>(L));
  EXPECT_EQ(L->loopDepth(), 1);
  EXPECT_FALSE(L->dependsOn(I));
  EXPECT_TRUE(L->dependsOn(IB));
}

TEST_F(PdagPredTest, SubstituteIntoLoopBoundsAndBody) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  // ALL(k=1..i-1: k <= m), substitute i := 4 => unrolled conjunction.
  const Pred *L = P.loopAll(K, c(1), Sym.addConst(Sym.symRef(I), -1),
                            P.le(Sym.symRef(K), s("m")));
  std::map<sym::SymbolId, const sym::Expr *> M{{I, c(4)}};
  const Pred *Sub = P.substitute(L, M);
  EXPECT_EQ(Sub, P.andN({P.le(c(1), s("m")), P.le(c(2), s("m")),
                         P.le(c(3), s("m"))}));
}

TEST_F(PdagPredTest, SubstituteAvoidsCapture) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  // ALL(k=1..N: k + i <= IB(k)) with i := k (outer k!) must not capture.
  const Pred *Body = P.le(Sym.add(Sym.symRef(K), Sym.symRef(I)),
                          Sym.arrayRef(IB, Sym.symRef(K)));
  const Pred *L = P.loopAll(K, c(1), s("N"), Body);
  std::map<sym::SymbolId, const sym::Expr *> M{{I, Sym.symRef(K)}};
  const Pred *Sub = P.substitute(L, M);
  const auto *SL = dyn_cast<LoopAllPred>(Sub);
  ASSERT_NE(SL, nullptr);
  // The bound variable was renamed; the free k is now inside the body.
  EXPECT_NE(SL->getVar(), K);
  EXPECT_TRUE(SL->getBody()->dependsOn(K));
}

TEST_F(PdagPredTest, CallSiteWraps) {
  const Pred *B = P.le(s("a"), s("b"));
  const Pred *CS = P.callSite("geteu", B);
  ASSERT_TRUE(isa<CallSitePred>(CS));
  EXPECT_EQ(cast<CallSitePred>(CS)->getCallee(), "geteu");
  EXPECT_EQ(P.tryNot(CS), nullptr);
}

TEST_F(PdagPredTest, PrintingIsReadable) {
  const Pred *Pr = P.and2(P.ne(s("SYM"), c(1)),
                          P.le(s("NS"), Sym.mulConst(s("NP"), 16)));
  std::string Str = Pr->toString(Sym);
  EXPECT_NE(Str.find("and"), std::string::npos);
  EXPECT_NE(Str.find("SYM"), std::string::npos);
}

} // namespace
