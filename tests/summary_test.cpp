//===- tests/summary_test.cpp - Summary construction tests ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Exercises the Fig. 2 data-flow equations on the mini-IR, call-site
// translation, CIV aggregation (Fig. 7b), and the full SOLVH_DO20 example
// of Fig. 1 end-to-end through the independence equations.
//
//===----------------------------------------------------------------------===//

#include "factor/Factor.h"
#include "pdag/PredEval.h"
#include "pdag/PredSimplify.h"
#include "summary/Independence.h"
#include "summary/Summary.h"
#include "usr/USREval.h"
#include "usr/USRTransform.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::summary;
using namespace halo::ir;
using usr::USR;

namespace {

class SummaryTest : public ::testing::Test {
protected:
  SummaryTest() : P(Sym), U(Sym, P), Prog(Sym, P), B(U, Prog) {}
  sym::Context Sym;
  pdag::PredContext P;
  usr::USRContext U;
  Program Prog;
  SummaryBuilder B;

  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }

  AccessTriple tripleOf(const RegionSummary &R, sym::SymbolId A) {
    auto It = R.Arrays.find(A);
    if (It == R.Arrays.end())
      return AccessTriple{U.empty(), U.empty(), U.empty()};
    AccessTriple T = It->second;
    if (!T.RO)
      T.RO = U.empty();
    if (!T.WF)
      T.WF = U.empty();
    if (!T.RW)
      T.RW = U.empty();
    return T;
  }
};

TEST_F(SummaryTest, WriteCoversLaterRead) {
  // X[i] = ...; ... = X[i]  ==> X is write-first, RO empty.
  sym::SymbolId X = Sym.symbol("X", 0, true); // Treated as data array id.
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  const sym::Expr *Off = Sym.addConst(Sym.symRef(I), -1);
  L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                  std::vector<ArrayAccess>{}, false, 0));
  L->append(Prog.make<AssignStmt>(std::nullopt,
                                  std::vector<ArrayAccess>{{X, Off}}, false,
                                  0));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, X);
  EXPECT_TRUE(T.RO->isEmptySet());
  EXPECT_FALSE(T.WF->isEmptySet());
  EXPECT_TRUE(T.RW->isEmptySet());
  EXPECT_TRUE(Plan.empty());
}

TEST_F(SummaryTest, ReadThenWriteIsReadWrite) {
  // ... = X[i]; X[i] = ...  ==> RW (the matmult XE pattern).
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  const sym::Expr *Off = Sym.addConst(Sym.symRef(I), -1);
  L->append(Prog.make<AssignStmt>(std::nullopt,
                                  std::vector<ArrayAccess>{{X, Off}}, false,
                                  0));
  L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                  std::vector<ArrayAccess>{}, false, 0));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, X);
  EXPECT_TRUE(T.RO->isEmptySet());
  EXPECT_TRUE(T.WF->isEmptySet());
  EXPECT_FALSE(T.RW->isEmptySet());
}

TEST_F(SummaryTest, SingleStatementReadAndWriteIsRW) {
  // X[i] = X[i] + 1 (not marked reduction): RW.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  const sym::Expr *Off = Sym.addConst(Sym.symRef(I), -1);
  L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                  std::vector<ArrayAccess>{{X, Off}}, false,
                                  0));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, X);
  EXPECT_FALSE(T.RW->isEmptySet());
  EXPECT_TRUE(T.WF->isEmptySet());
}

TEST_F(SummaryTest, ReductionGoesToSeparateSet) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  const sym::Expr *Off = Sym.arrayRef(IB, Sym.symRef(I));
  L->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                  std::vector<ArrayAccess>{{X, Off}}, true,
                                  0));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, X);
  EXPECT_TRUE(T.RO->isEmptySet());
  EXPECT_TRUE(T.WF->isEmptySet());
  EXPECT_TRUE(T.RW->isEmptySet());
  ASSERT_TRUE(It.Reductions.count(X));
  EXPECT_FALSE(It.Reductions.at(X)->isEmptySet());
}

TEST_F(SummaryTest, IfMergeCreatesMutuallyExclusiveGates) {
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  IfStmt *If = Prog.make<IfStmt>(P.ne(s("SYM"), c(1)));
  const sym::Expr *Off = Sym.addConst(Sym.symRef(I), -1);
  If->appendThen(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                       std::vector<ArrayAccess>{}, false, 0));
  If->appendElse(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.add(Off, s("N"))}, std::vector<ArrayAccess>{}, false,
      0));
  L->append(If);
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, X);
  auto View = usr::viewUMEG(U, T.WF);
  ASSERT_TRUE(View.has_value());
  EXPECT_EQ(View->Components.size(), 2u);
}

TEST_F(SummaryTest, InnerLoopAggregatesToLeaf) {
  // DO j = 1..M: X[(i-1)*M + j - 1] = ... folds to one LMAD leaf.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  DoLoop *Inner = Prog.make<DoLoop>("Inner", J, c(1), s("M"), 2);
  const sym::Expr *Off = Sym.addConst(
      Sym.add(Sym.mul(Sym.addConst(Sym.symRef(I), -1), s("M")),
              Sym.symRef(J)),
      -1);
  Inner->append(Prog.make<AssignStmt>(ArrayAccess{X, Off},
                                      std::vector<ArrayAccess>{}, false, 0));
  L->append(Inner);
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, X);
  // Gated (1 <= M) leaf.
  const USR *WF = T.WF;
  if (const auto *G = dyn_cast<usr::GateUSR>(WF))
    WF = G->getChild();
  EXPECT_TRUE(isa<usr::LeafUSR>(WF));
}

TEST_F(SummaryTest, CallTranslationRebasesOffsets) {
  // CALL work(HE + 32*(i-1)) where work writes HE[0..7].
  sym::SymbolId HEf = Sym.symbol("HEf", 0, true);
  sym::SymbolId HE = Sym.symbol("HE", 0, true);
  Subroutine *Work = Prog.makeSubroutine("work");
  sym::SymbolId J = Sym.symbol("jw", 0);
  DoLoop *WL = Prog.make<DoLoop>("w", J, c(1), c(8), 1);
  WL->append(Prog.make<AssignStmt>(
      ArrayAccess{HEf, Sym.addConst(Sym.symRef(J), -1)},
      std::vector<ArrayAccess>{}, false, 0));
  Work->append(WL);

  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  L->append(Prog.make<CallStmt>(
      Work,
      std::vector<CallStmt::ArrayArg>{
          {HEf, HE, Sym.mulConst(Sym.addConst(Sym.symRef(I), -1), 32)}},
      std::vector<CallStmt::ScalarArg>{}));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  AccessTriple T = tripleOf(It, HE);
  ASSERT_FALSE(T.WF->isEmptySet());
  // Evaluate at i = 2: offsets 32..39.
  sym::Bindings Bd;
  Bd.setScalar(I, 2);
  auto V = usr::evalUSR(T.WF, Bd);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->front(), 32);
  EXPECT_EQ(V->back(), 39);
  EXPECT_EQ(V->size(), 8u);
}

TEST_F(SummaryTest, AggregateLoopLevelROExcludesWritten) {
  // Reads [0..N-1] each iteration; writes X[i-1]: loop-level RO must
  // subtract the written part.
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  DoLoop *RdLoop = Prog.make<DoLoop>("rd", J, c(1), s("N"), 2);
  RdLoop->append(Prog.make<AssignStmt>(
      std::nullopt,
      std::vector<ArrayAccess>{{X, Sym.addConst(Sym.symRef(J), -1)}}, false,
      0));
  L->append(RdLoop);
  L->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.addConst(Sym.symRef(I), -1)},
      std::vector<ArrayAccess>{}, false, 0));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  RegionSummary Agg = B.aggregateLoop(*L, It);
  AccessTriple T = tripleOf(Agg, X);
  sym::Bindings Bd;
  Bd.setScalar(Sym.symbol("N"), 4);
  auto RO = usr::evalUSR(T.RO, Bd);
  ASSERT_TRUE(RO.has_value());
  // All of [0..3] is eventually written, so the loop-level RO is empty
  // (reads are covered within the loop as a whole).
  EXPECT_TRUE(RO->empty());
}

//===----------------------------------------------------------------------===//
// CIV aggregation (Fig. 7b)
//===----------------------------------------------------------------------===//

TEST_F(SummaryTest, CivContiguousBlocks) {
  // DO i: DO j = 1..NSP(i): X[civ + j - 1] = ...; civ += NSP(i).
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId NSP = Sym.symbol("NSP", 0, true);
  sym::SymbolId Civ = Sym.symbol("civ", 1);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  DoLoop *Inner = Prog.make<DoLoop>(
      "In", J, c(1), Sym.arrayRef(NSP, Sym.symRef(I)), 2);
  Inner->append(Prog.make<AssignStmt>(
      ArrayAccess{X, Sym.addConst(Sym.add(Sym.symRef(Civ), Sym.symRef(J)),
                                  -1)},
      std::vector<ArrayAccess>{}, false, 0));
  L->append(Inner);
  L->append(Prog.make<CivIncrStmt>(Civ, Sym.arrayRef(NSP, Sym.symRef(I))));

  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  ASSERT_EQ(Plan.Civs.size(), 1u);
  EXPECT_TRUE(Plan.Joins.empty());
  AccessTriple T = tripleOf(It, X);
  ASSERT_FALSE(T.WF->isEmptySet());

  // Evaluate WF_i at i=2 with civ@pre = prefix sums of NSP = {3, 2, 4}:
  // civ@pre = {0, 3, 5, 9}; WF_2 = [3 .. 4].
  sym::Bindings Bd;
  Bd.setScalar(I, 2);
  sym::ArrayBinding NSPV;
  NSPV.Lo = 1;
  NSPV.Vals = {3, 2, 4};
  Bd.setArray(NSP, NSPV);
  sym::ArrayBinding Pre;
  Pre.Lo = 1;
  Pre.Vals = {0, 3, 5, 9};
  Bd.setArray(Plan.Civs[0].EntryArr, Pre);
  auto V = usr::evalUSR(T.WF, Bd);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, (std::vector<int64_t>{3, 4}));
}

TEST_F(SummaryTest, CivJoinMintedOnDivergentBranches) {
  // IF (cond) { X[civ] = ..; civ += 1 } : the post-IF civ value needs a
  // join pseudo-array (Fig. 7b's CIV@4).
  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId C = Sym.symbol("Cnd", 0, true);
  sym::SymbolId Civ = Sym.symbol("civ", 1);
  sym::SymbolId I = Sym.symbol("i", 1);
  DoLoop *L = Prog.make<DoLoop>("L", I, c(1), s("N"), 1);
  IfStmt *If =
      Prog.make<IfStmt>(P.gt(Sym.arrayRef(C, Sym.symRef(I)), c(0)));
  If->appendThen(Prog.make<AssignStmt>(ArrayAccess{X, Sym.symRef(Civ)},
                                       std::vector<ArrayAccess>{}, false, 0));
  If->appendThen(Prog.make<CivIncrStmt>(Civ, c(1)));
  L->append(If);
  // A later access uses the joined value.
  L->append(Prog.make<AssignStmt>(
      std::nullopt, std::vector<ArrayAccess>{{X, Sym.symRef(Civ)}}, false,
      0));
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*L, Plan);
  ASSERT_EQ(Plan.Civs.size(), 1u);
  ASSERT_EQ(Plan.Joins.size(), 1u);
  EXPECT_EQ(Plan.Joins[0].Civ, Civ);
  EXPECT_EQ(Plan.Joins[0].At, If);
  // The summary references the join array.
  AccessTriple T = tripleOf(It, X);
  EXPECT_TRUE(T.RO->dependsOn(Plan.Joins[0].JoinArr));
}

//===----------------------------------------------------------------------===//
// The full Fig. 1 example: SOLVH_DO20
//===----------------------------------------------------------------------===//

class SolvhTest : public SummaryTest {
protected:
  sym::SymbolId XE, HE, IA, IB, I, K;
  DoLoop *Loop = nullptr;

  void buildSolvh() {
    XE = Sym.symbol("XE", 0, true);
    HE = Sym.symbol("HE", 0, true);
    IA = Sym.symbol("IA", 0, true);
    IB = Sym.symbol("IB", 0, true);
    I = Sym.symbol("i", 1);
    K = Sym.symbol("k", 2);

    // geteu(XEf, SYM, NP): IF (SYM != 1) DO m = 1..16*NP: XEf[m-1] = ...
    sym::SymbolId XEf = Sym.symbol("XEf", 0, true);
    Subroutine *Geteu = Prog.makeSubroutine("geteu");
    {
      sym::SymbolId M = Sym.symbol("m_g", 0);
      IfStmt *If = Prog.make<IfStmt>(P.ne(s("SYMf"), c(1)));
      DoLoop *D = Prog.make<DoLoop>(
          "g", M, c(1), Sym.mulConst(s("NPf_g"), 16), 1);
      D->append(Prog.make<AssignStmt>(
          ArrayAccess{XEf, Sym.addConst(Sym.symRef(M), -1)},
          std::vector<ArrayAccess>{}, false, 0));
      If->appendThen(D);
      Geteu->append(If);
    }

    // matmult(HEf, XEf2, NSf): DO j = 1..NSf: HEf[j-1] = XEf2[j-1];
    //                                         XEf2[j-1] = ...
    sym::SymbolId HEf = Sym.symbol("HEf_m", 0, true);
    sym::SymbolId XEf2 = Sym.symbol("XEf_m", 0, true);
    Subroutine *Matmult = Prog.makeSubroutine("matmult");
    {
      sym::SymbolId J = Sym.symbol("j_m", 0);
      DoLoop *D = Prog.make<DoLoop>("m", J, c(1), s("NSf"), 1);
      const sym::Expr *Off = Sym.addConst(Sym.symRef(J), -1);
      D->append(Prog.make<AssignStmt>(ArrayAccess{HEf, Off},
                                      std::vector<ArrayAccess>{{XEf2, Off}},
                                      false, 0));
      D->append(Prog.make<AssignStmt>(ArrayAccess{XEf2, Off},
                                      std::vector<ArrayAccess>{}, false, 0));
      Matmult->append(D);
    }

    // solvhe(HEf2, NPf): DO j = 1..3: DO i2 = 1..NPf:
    //   HEf2[8*(i2-1)+j-1] += ...
    sym::SymbolId HEf2 = Sym.symbol("HEf_s", 0, true);
    Subroutine *Solvhe = Prog.makeSubroutine("solvhe");
    {
      sym::SymbolId J = Sym.symbol("j_s", 0);
      sym::SymbolId I2 = Sym.symbol("i_s", 0);
      DoLoop *DJ = Prog.make<DoLoop>("sj", J, c(1), c(3), 1);
      DoLoop *DI = Prog.make<DoLoop>("si", I2, c(1), s("NPf_s"), 2);
      const sym::Expr *Off = Sym.addConst(
          Sym.add(Sym.mulConst(Sym.addConst(Sym.symRef(I2), -1), 8),
                  Sym.symRef(J)),
          -1);
      DI->append(Prog.make<AssignStmt>(ArrayAccess{HEf2, Off},
                                       std::vector<ArrayAccess>{{HEf2, Off}},
                                       false, 0));
      DJ->append(DI);
      Solvhe->append(DJ);
    }

    // SOLVH_DO20 (Fig. 1): DO i = 1..N: DO k = 1..IA(i):
    //   id = IB(i)+k-1; CALL geteu(XE,SYM,NP); CALL matmult(HE(1,id),XE,NS);
    //   CALL solvhe(HE(1,id), NP).
    Loop = Prog.make<DoLoop>("SOLVH_do20", I, c(1), s("N"), 1);
    DoLoop *KL = Prog.make<DoLoop>("SOLVH_do20k", K, c(1),
                                   Sym.arrayRef(IA, Sym.symRef(I)), 2);
    const sym::Expr *Id = Sym.addConst(
        Sym.add(Sym.arrayRef(IB, Sym.symRef(I)), Sym.symRef(K)), -1);
    const sym::Expr *HEOff = Sym.mulConst(Sym.addConst(Id, -1), 32);
    KL->append(Prog.make<CallStmt>(
        Prog.findSubroutine("geteu"),
        std::vector<CallStmt::ArrayArg>{{XEf, XE, c(0)}},
        std::vector<CallStmt::ScalarArg>{{Sym.symbol("SYMf"), s("SYM")},
                                         {Sym.symbol("NPf_g"), s("NP")}}));
    KL->append(Prog.make<CallStmt>(
        Prog.findSubroutine("matmult"),
        std::vector<CallStmt::ArrayArg>{{HEf, HE, HEOff}, {XEf2, XE, c(0)}},
        std::vector<CallStmt::ScalarArg>{{Sym.symbol("NSf"), s("NS")}}));
    KL->append(Prog.make<CallStmt>(
        Prog.findSubroutine("solvhe"),
        std::vector<CallStmt::ArrayArg>{{HEf2, HE, HEOff}},
        std::vector<CallStmt::ScalarArg>{{Sym.symbol("NPf_s"), s("NP")}}));
    Loop->append(KL);
  }
};

TEST_F(SolvhTest, XEFlowIndependencePredicate) {
  // Sec. 1.2: the XE cross-iteration check must hold exactly when
  // SYM != 1 and NS <= 16*NP (the Fig. 4 predicate).
  buildSolvh();
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*Loop, Plan);
  AccessTriple T = tripleOf(It, XE);
  // XE per iteration: WF gated by SYM != 1; RW = reads not covered.
  EXPECT_TRUE(T.RO->isEmptySet());

  LoopSpace L{I, c(1), s("N")};
  const USR *Find = buildFlowIndepUSR(U, L, T);
  const USR *Reshaped = usr::reshapeUMEG(U, Find);
  factor::Factorizer F(U);
  const pdag::Pred *Pr = pdag::simplify(P, F.factor(Reshaped));

  auto Check = [&](int64_t SYM, int64_t NS, int64_t NP, bool Expect) {
    sym::Bindings Bd;
    Bd.setScalar(Sym.symbol("SYM"), SYM);
    Bd.setScalar(Sym.symbol("NS"), NS);
    Bd.setScalar(Sym.symbol("NP"), NP);
    Bd.setScalar(Sym.symbol("N"), 8);
    sym::ArrayBinding VIA;
    VIA.Lo = 1;
    VIA.Vals.assign(8, 2);
    Bd.setArray(IA, VIA);
    auto V = pdag::tryEvalPred(Pr, Bd);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, Expect) << "SYM=" << SYM << " NS=" << NS << " NP=" << NP
                          << "\n" << Pr->toString(Sym);
  };
  Check(0, 16, 1, true);
  Check(0, 32, 2, true);
  Check(0, 17, 1, false);
  Check(1, 16, 1, false); // SYM == 1: XE never written, reads flow across.
}

TEST_F(SolvhTest, XEOutputIndependenceViaInvariantWF) {
  // The per-iteration WF of XE is invariant to the outer loop modulo the
  // inner loop's execution gate (IA(i) >= 1), so XE is privatizable with
  // static last value (Sec. 1.2): the SLV predicate must succeed at
  // runtime whenever the last iteration executes the inner loop.
  buildSolvh();
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*Loop, Plan);
  AccessTriple T = tripleOf(It, XE);
  LoopSpace L{I, c(1), s("N")};
  SLVPair SLV = buildSLVPair(U, L, T.WF);
  factor::Factorizer F(U);
  const pdag::Pred *Pr = F.included(SLV.AllWrites, SLV.LastIter);
  sym::Bindings Bd;
  Bd.setScalar(Sym.symbol("SYM"), 0);
  Bd.setScalar(Sym.symbol("NS"), 16);
  Bd.setScalar(Sym.symbol("NP"), 1);
  Bd.setScalar(Sym.symbol("N"), 8);
  sym::ArrayBinding VIA;
  VIA.Lo = 1;
  VIA.Vals.assign(8, 2);
  Bd.setArray(IA, VIA);
  auto V = pdag::tryEvalPred(Pr, Bd);
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(*V);
  // If the last iteration skips the inner loop, SLV must fail (the last
  // value does not come from iteration N).
  VIA.Vals.back() = 0;
  Bd.setArray(IA, VIA);
  V = pdag::tryEvalPred(Pr, Bd);
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(*V);
}

TEST_F(SolvhTest, HEFlowIndependencePredicate) {
  // Sec. 1.2: HE's reads (in solvhe) are covered by matmult's writes when
  // 8*NP < NS + 6.
  buildSolvh();
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*Loop, Plan);
  AccessTriple T = tripleOf(It, HE);

  LoopSpace L{I, c(1), s("N")};
  const USR *Find = buildFlowIndepUSR(U, L, T);
  factor::Factorizer F(U);
  const pdag::Pred *Pr = pdag::simplify(P, F.factor(Find));

  auto Check = [&](int64_t NS, int64_t NP, bool Expect) {
    sym::Bindings Bd;
    Bd.setScalar(Sym.symbol("SYM"), 0);
    Bd.setScalar(Sym.symbol("NS"), NS);
    Bd.setScalar(Sym.symbol("NP"), NP);
    Bd.setScalar(Sym.symbol("N"), 4);
    sym::ArrayBinding VIA, VIB;
    VIA.Lo = VIB.Lo = 1;
    VIA.Vals = {2, 2, 2, 2};
    VIB.Vals = {1, 4, 7, 10}; // Monotone, gap 3 blocks >= IA(i)+1.
    Bd.setArray(IA, VIA);
    Bd.setArray(IB, VIB);
    auto V = pdag::tryEvalPred(Pr, Bd);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, Expect) << "NS=" << NS << " NP=" << NP;
  };
  Check(32, 4, true);  // 32 < 38: solvhe reads inside matmult's writes.
  Check(32, 5, false); // 40 >= 38.
}

TEST_F(SolvhTest, HEOutputIndependenceViaMonotonicity) {
  // Fig. 3(b): HE's cross-iteration write overlap is empty under the
  // monotonicity predicate AND_i NS <= 32*(IB(i+1)-IA(i)-IB(i)+1).
  buildSolvh();
  CivPlan Plan;
  RegionSummary It = B.summarizeIteration(*Loop, Plan);
  AccessTriple T = tripleOf(It, HE);
  // HE is written (WF from matmult) and read-written (solvhe), both under
  // the same extents; output independence is about the writes.
  const USR *Writes = U.union2(T.WF, T.RW);
  LoopSpace L{I, c(1), s("N")};
  const USR *OInd = buildOutputIndepUSR(U, L, Writes);
  factor::Factorizer F(U);
  const pdag::Pred *Pr = pdag::simplify(P, F.factor(OInd));
  EXPECT_GE(F.stats().MonotonicityRule, 1u);

  auto Check = [&](std::vector<int64_t> IBv, std::vector<int64_t> IAv,
                   int64_t NS, bool Expect) {
    sym::Bindings Bd;
    Bd.setScalar(Sym.symbol("SYM"), 0);
    Bd.setScalar(Sym.symbol("NS"), NS);
    Bd.setScalar(Sym.symbol("NP"), 2);
    Bd.setScalar(Sym.symbol("N"), static_cast<int64_t>(IBv.size()));
    sym::ArrayBinding VIA, VIB;
    VIA.Lo = VIB.Lo = 1;
    VIA.Vals = IAv;
    VIB.Vals = IBv;
    Bd.setArray(IA, VIA);
    Bd.setArray(IB, VIB);
    auto V = pdag::tryEvalPred(Pr, Bd);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, Expect);
  };
  // Paper predicate: NS <= 32*(IB(i+1)-IA(i)-IB(i)+1).
  // IB gaps of 3 with IA = 2: slack = 32*(3-2+1) = 64 >= NS.
  Check({1, 4, 7, 10}, {2, 2, 2, 2}, 64, true);
  Check({1, 4, 7, 10}, {2, 2, 2, 2}, 65, false);
  // Overlapping blocks: never independent.
  Check({1, 2, 3, 4}, {2, 2, 2, 2}, 32, false);
}

} // namespace
