//===- tests/pred_compile_test.cpp - Bytecode evaluator parity tests ------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// tryEvalPred is the reference interpreter; these tests prove the compiled
// bytecode evaluator (serial and chunked-parallel) agrees with it on random
// predicate programs, including the conservative-unknown paths (unbound
// symbols, out-of-bounds index-array reads).
//
//===----------------------------------------------------------------------===//

#include "pdag/PredCompile.h"

#include "pdag/PredEval.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace halo;
using namespace halo::pdag;

namespace {

class PredCompileTest : public ::testing::Test {
protected:
  PredCompileTest() : P(Sym) {}
  sym::Context Sym;
  PredContext P;
  sym::Bindings B;
  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
  void bind(const std::string &N, int64_t V) { B.setScalar(Sym.symbol(N), V); }

  std::optional<bool> compiledEval(const Pred *Pr, EvalStats *St = nullptr) {
    return CompiledPred::compile(Pr, Sym)->eval(B, St);
  }
};

//===----------------------------------------------------------------------===//
// Directed parity cases
//===----------------------------------------------------------------------===//

TEST_F(PredCompileTest, LeavesMatchInterpreter) {
  bind("a", 3);
  bind("b", 5);
  for (const Pred *Pr :
       {P.le(s("a"), s("b")), P.gt(s("a"), s("b")), P.eq(s("a"), s("b")),
        P.ne(s("a"), s("b")), P.divides(s("b"), s("a")),
        P.divides(s("a"), s("a"), /*Neg=*/true)})
    EXPECT_EQ(compiledEval(Pr), tryEvalPred(Pr, B)) << Pr->toString(Sym);
}

TEST_F(PredCompileTest, ConstantPredicateFoldsToPushBool) {
  const Pred *Pr = P.ge0(c(7)); // Folds at canonicalization or compile.
  auto CP = CompiledPred::compile(Pr, Sym);
  EXPECT_EQ(CP->eval(B), std::optional<bool>(true));
  EXPECT_LE(CP->codeSize(), 1u);
}

TEST_F(PredCompileTest, UnboundSymbolIsConservativeUnknown) {
  const Pred *Pr = P.le(s("nope"), c(4));
  EXPECT_EQ(compiledEval(Pr), std::nullopt);
  EXPECT_EQ(tryEvalPred(Pr, B), std::nullopt);
}

TEST_F(PredCompileTest, DecidedConnectiveToleratesUnbound) {
  bind("a", 3);
  bind("b", 5);
  const Pred *T = P.le(s("a"), s("b"));
  const Pred *F = P.gt(s("a"), s("b"));
  const Pred *U = P.le(s("unbound"), s("b"));
  EXPECT_EQ(compiledEval(P.or2(T, U)), std::optional<bool>(true));
  EXPECT_EQ(compiledEval(P.and2(F, U)), std::optional<bool>(false));
  EXPECT_EQ(compiledEval(P.and2(T, U)), std::nullopt);
  EXPECT_EQ(compiledEval(P.or2(F, U)), std::nullopt);
}

TEST_F(PredCompileTest, OutOfBoundsArrayReadIsConservativeUnknown) {
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {4, 5, 6};
  B.setArray(IB, A);
  const Pred *In = P.ge0(Sym.arrayRef(IB, c(2)));
  const Pred *Oob = P.ge0(Sym.arrayRef(IB, c(9)));
  EXPECT_EQ(compiledEval(In), std::optional<bool>(true));
  EXPECT_EQ(compiledEval(Oob), std::nullopt);
  EXPECT_EQ(tryEvalPred(Oob, B), std::nullopt);
}

TEST_F(PredCompileTest, LoopAllMatchesInterpreterIncludingEarlyExit) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Mono =
      P.loopAll(I, c(1), Sym.addConst(s("n"), -1),
                P.le(Sym.arrayRef(IB, Sym.symRef(I)),
                     Sym.arrayRef(IB, Sym.addConst(Sym.symRef(I), 1))));
  bind("n", 5);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals = {1, 3, 7, 7, 20};
  B.setArray(IB, A);
  EXPECT_EQ(compiledEval(Mono), std::optional<bool>(true));
  A.Vals = {1, 3, 2, 7, 20};
  B.setArray(IB, A);
  EXPECT_EQ(compiledEval(Mono), std::optional<bool>(false));
  // Range beyond a monotone array: the first out-of-bounds read decides
  // unknown (no earlier iteration is false).
  A.Vals = {1, 3, 7, 7, 20};
  B.setArray(IB, A);
  bind("n", 50);
  EXPECT_EQ(compiledEval(Mono), tryEvalPred(Mono, B));
  EXPECT_EQ(compiledEval(Mono), std::nullopt);
}

TEST_F(PredCompileTest, InvariantSubPredicateIsMemoized) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  // ALL(i=1..n: (m >= 0 or IB(i) != 0) ...) with an invariant disjunct that
  // is false, so every iteration must also evaluate the variant part; the
  // invariant one must be served from the memo table after iteration 1.
  const Pred *Inv = P.ge0(s("m"));
  const Pred *Var = P.ne0(Sym.arrayRef(IB, Sym.symRef(I)));
  const Pred *L = P.loopAll(I, c(1), s("n"), P.or2(Inv, Var));
  bind("n", 64);
  bind("m", -1);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.assign(64, 3);
  B.setArray(IB, A);

  auto CP = CompiledPred::compile(L, Sym);
  EvalStats St;
  EXPECT_EQ(CP->eval(B, &St), std::optional<bool>(true));
  EXPECT_EQ(tryEvalPred(L, B), std::optional<bool>(true));
  EXPECT_GE(CP->numMemoSlots(), 1u);
  EXPECT_EQ(St.MemoHits, 63u); // Evaluated once, cached for 63 iterations.
  EXPECT_EQ(St.CompiledEvals, 1u);
}

TEST_F(PredCompileTest, CostEstimateOrdersByDepthThenLength) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *O1 = P.le(s("a"), s("b"));
  const Pred *ON =
      P.loopAll(I, c(1), s("n"), P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  auto C1 = CompiledPred::compile(O1, Sym);
  auto CN = CompiledPred::compile(ON, Sym);
  EXPECT_LT(C1->costEstimate(), CN->costEstimate());
  EXPECT_FALSE(C1->hasParallelRoot());
  EXPECT_TRUE(CN->hasParallelRoot());
}

TEST_F(PredCompileTest, LoopVarEscapingItsBinderStaysUnbound) {
  // `i` occurs free OUTSIDE its LoopAll binder while unbound in B. Both
  // evaluators must treat the free occurrence as unbound (conservative
  // unknown) and must not leak the loop's last iteration value into the
  // caller's bindings.
  sym::SymbolId I = Sym.symbol("i", 1);
  const Pred *L = P.loopAll(I, c(1), s("n"), P.ge0(Sym.symRef(I)));
  const Pred *Escaped = P.and2(L, P.ge0(Sym.addConst(Sym.symRef(I), -2)));
  bind("n", 3);
  EXPECT_EQ(tryEvalPred(Escaped, B), std::nullopt);
  EXPECT_EQ(compiledEval(Escaped), std::nullopt);
  EXPECT_EQ(B.scalar(I), std::nullopt); // No binding leaked.
}

TEST_F(PredCompileTest, SharedDagCompilesLinearNotExponential) {
  // A 20-level DAG whose tree expansion has ~2^20 nodes: every level
  // references the previous one twice. Interned sharing means the DAG has
  // ~100 nodes; the compiler must emit shared nodes once (as subroutines),
  // not expand the tree. (The reference interpreter DOES pay the
  // exponential walk here, which is exactly the pathology the compiled
  // form removes — keep the depth moderate so this test stays fast.)
  bind("a", 3);
  bind("b", 5);
  const Pred *X = P.le(s("a"), s("b"));
  for (int K = 0; K < 20; ++K) {
    const Pred *Leaf = P.ne(s("a"), c(100 + K)); // Keeps levels distinct.
    X = P.and2(P.or2(X, P.gt(s("a"), c(K))), P.or2(X, Leaf));
  }
  auto CP = CompiledPred::compile(X, Sym);
  EXPECT_LT(CP->codeSize(), 2000u);
  EXPECT_EQ(CP->eval(B), tryEvalPred(X, B));
  EXPECT_EQ(CP->eval(B), std::optional<bool>(true));
}

//===----------------------------------------------------------------------===//
// Block-tier parity (directed)
//===----------------------------------------------------------------------===//

TEST_F(PredCompileTest, BlockTierTripsStraddlingBlockWidth) {
  // Root LoopAll trips of W-1, W, W+1 and 2W+1 — every partial-tail shape
  // around the block width — with a false lane and a poisoned (unknown)
  // lane planted at every position. Sequential semantics demand the
  // EARLIEST decision wins, so block evaluation must resolve decisions to
  // exact iterations, never block granularity. BlockEval::Force and
  // BlockEval::Off must both match the interpreter bit for bit.
  const int64_t W = PredBlockWidth;
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  // Unknown where IB(i) == 7 (guards an unbound scalar), false where
  // IB(i) < 0, true elsewhere.
  const Pred *Body =
      P.and2(P.or2(P.ne(Sym.arrayRef(IB, Sym.symRef(I)), c(7)),
                   P.ge0(s("ghost"))),
             P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  const Pred *L = P.loopAll(I, c(1), s("n"), Body);
  auto CP = CompiledPred::compile(L, Sym);
  ThreadPool Pool(4);
  for (int64_t N : {W - 1, W, W + 1, 2 * W + 1}) {
    bind("n", N);
    for (int64_t FalseAt = 0; FalseAt <= N; ++FalseAt) // 0 = no false lane.
      for (int64_t UnkAt : {int64_t(0), int64_t(1), N / 2, N}) {
        sym::ArrayBinding A;
        A.Lo = 1;
        A.Vals.assign(static_cast<size_t>(N), 1);
        if (FalseAt)
          A.Vals[static_cast<size_t>(FalseAt - 1)] = -1;
        if (UnkAt)
          A.Vals[static_cast<size_t>(UnkAt - 1)] = 7;
        B.setArray(IB, A);
        std::optional<bool> Want;
        if (UnkAt && (!FalseAt || UnkAt <= FalseAt))
          Want = std::nullopt; // Unknown lane decides (or overwrote false).
        else if (FalseAt)
          Want = false;
        else
          Want = true;
        ASSERT_EQ(tryEvalPred(L, B), Want) << N << " " << FalseAt;
        EvalStats SB, SS;
        ASSERT_EQ(CP->eval(B, &SB, BlockEval::Force), Want)
            << "N=" << N << " FalseAt=" << FalseAt << " UnkAt=" << UnkAt;
        ASSERT_EQ(CP->eval(B, &SS, BlockEval::Off), Want)
            << "N=" << N << " FalseAt=" << FalseAt << " UnkAt=" << UnkAt;
        EXPECT_GE(SB.BlockEvals, 1u);
        EXPECT_EQ(SS.BlockEvals, 0u);
        // Chunked-parallel with tiny chunks: the first-failure frontier
        // must resolve the same exact iteration.
        ASSERT_EQ(CP->evalParallel(B, Pool, nullptr, /*MinParallelIters=*/1,
                                   nullptr, BlockEval::Force),
                  Want)
            << "N=" << N << " FalseAt=" << FalseAt << " UnkAt=" << UnkAt;
      }
  }
}

TEST_F(PredCompileTest, BlockTierMidBlockOutOfBoundsRead) {
  // The bound array ends mid-block: lanes past the end poison (exactly as
  // the interpreter's conservative-unknown OOB contract), lanes before it
  // stay live — including a false lane after the block's first OOB lane,
  // which must NOT decide because the earlier unknown wins.
  const int64_t W = PredBlockWidth;
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *L =
      P.loopAll(I, c(1), s("n"), P.ge0(Sym.arrayRef(IB, Sym.symRef(I))));
  auto CP = CompiledPred::compile(L, Sym);
  const int64_t N = 2 * W + 5;
  bind("n", N);
  for (int64_t Len : {W / 2, W - 1, W + 3, 2 * W + 1}) {
    sym::ArrayBinding A;
    A.Lo = 1;
    A.Vals.assign(static_cast<size_t>(Len), 1);
    B.setArray(IB, A);
    EvalStats St;
    ASSERT_EQ(tryEvalPred(L, B), std::nullopt);
    ASSERT_EQ(CP->eval(B, &St, BlockEval::Force), std::nullopt) << Len;
    ASSERT_EQ(CP->eval(B, nullptr, BlockEval::Off), std::nullopt) << Len;
    EXPECT_GE(St.LanesPoisoned, 1u) << Len;
    // A false lane BEHIND the first OOB lane (i == Len+2 fails ne, but
    // the read at Len+1 already poisoned): the earlier unknown decides.
    const Pred *L2 =
        P.loopAll(I, c(1), s("n"),
                  P.and2(P.ge0(Sym.arrayRef(IB, Sym.symRef(I))),
                         P.ne(Sym.symRef(I), c(Len + 2))));
    auto CP2 = CompiledPred::compile(L2, Sym);
    ASSERT_EQ(tryEvalPred(L2, B), std::nullopt);
    ASSERT_EQ(CP2->eval(B, nullptr, BlockEval::Force), std::nullopt) << Len;
    ASSERT_EQ(CP2->eval(B, nullptr, BlockEval::Off), std::nullopt) << Len;
    // And a false lane BEFORE the end of the array: false decides.
    sym::ArrayBinding A3 = A;
    A3.Vals[static_cast<size_t>(Len / 2)] = -1;
    B.setArray(IB, A3);
    ASSERT_EQ(tryEvalPred(L, B), std::optional<bool>(false));
    ASSERT_EQ(CP->eval(B, nullptr, BlockEval::Force),
              std::optional<bool>(false))
        << Len;
  }
}

//===----------------------------------------------------------------------===//
// Parallel evaluation parity
//===----------------------------------------------------------------------===//

TEST_F(PredCompileTest, ParallelMatchesSerialOnLargeRange) {
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  const Pred *Mono =
      P.loopAll(I, c(1), Sym.addConst(s("n"), -1),
                P.le(Sym.arrayRef(IB, Sym.symRef(I)),
                     Sym.arrayRef(IB, Sym.addConst(Sym.symRef(I), 1))));
  const int64_t N = 100000;
  bind("n", N);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.resize(N);
  for (int64_t K = 0; K < N; ++K)
    A.Vals[static_cast<size_t>(K)] = K / 3;
  B.setArray(IB, A);

  auto CP = CompiledPred::compile(Mono, Sym);
  ThreadPool Pool(4);
  EXPECT_EQ(CP->evalParallel(B, Pool), std::optional<bool>(true));

  // Violation near the end: still false, found by the owning chunk.
  A.Vals[N - 2] = -1000000;
  B.setArray(IB, A);
  auto CP2 = CompiledPred::compile(Mono, Sym);
  EXPECT_EQ(CP2->evalParallel(B, Pool), std::optional<bool>(false));
  EXPECT_EQ(tryEvalPred(Mono, B), std::optional<bool>(false));
}

TEST_F(PredCompileTest, ParallelPreservesEarliestDecision) {
  // Sequential semantics: an unknown at i=100 decides before a false at
  // i=7000, even though a later chunk finds the false first. The frontier
  // merge must return unknown, exactly like the interpreter.
  sym::SymbolId I = Sym.symbol("i", 1);
  const Pred *UnknownAt100 =
      P.or2(P.ne(Sym.symRef(I), c(100)), P.ge0(s("unbound")));
  const Pred *FalseAt7000 = P.ne(Sym.symRef(I), c(7000));
  const Pred *L =
      P.loopAll(I, c(1), s("n"), P.and2(UnknownAt100, FalseAt7000));
  bind("n", 10000);

  auto CP = CompiledPred::compile(L, Sym);
  ThreadPool Pool(4);
  EXPECT_EQ(tryEvalPred(L, B), std::nullopt);
  EXPECT_EQ(CP->evalParallel(B, Pool, nullptr, /*MinParallelIters=*/1),
            std::nullopt);

  // And the mirror image: the false comes first, so false wins.
  const Pred *L2 = P.loopAll(
      I, c(1), s("n"),
      P.and2(P.or2(P.ne(Sym.symRef(I), c(7000)), P.ge0(s("unbound"))),
             P.ne(Sym.symRef(I), c(100))));
  auto CP2 = CompiledPred::compile(L2, Sym);
  EXPECT_EQ(tryEvalPred(L2, B), std::optional<bool>(false));
  EXPECT_EQ(CP2->evalParallel(B, Pool, nullptr, /*MinParallelIters=*/1),
            std::optional<bool>(false));
}

TEST_F(PredCompileTest, ParallelUnknownBoundsMatchInterpreter) {
  sym::SymbolId I = Sym.symbol("i", 1);
  const Pred *L = P.loopAll(I, c(1), s("unbound_n"), P.ge0(Sym.symRef(I)));
  auto CP = CompiledPred::compile(L, Sym);
  ThreadPool Pool(4);
  EXPECT_EQ(CP->evalParallel(B, Pool), std::nullopt);
  EXPECT_EQ(tryEvalPred(L, B), std::nullopt);
  // Empty range is vacuously true.
  bind("unbound_n", -5);
  EXPECT_EQ(CP->evalParallel(B, Pool), std::optional<bool>(true));
}

//===----------------------------------------------------------------------===//
// Randomized property test
//===----------------------------------------------------------------------===//

/// Generates random predicate programs over a small symbol universe with
/// deliberately unbound scalars and short index arrays so the conservative
/// paths (unbound symbol, out-of-bounds read) fire regularly.
class RandomPredGen {
public:
  RandomPredGen(sym::Context &Sym, PredContext &P, Rng &R)
      : Sym(Sym), P(P), R(R) {
    for (const char *N : {"a", "b", "c", "d"})
      Scalars.push_back(Sym.symbol(N));
    for (const char *N : {"A1", "A2"})
      Arrays.push_back(Sym.symbol(N, 0, /*IsArray=*/true));
    Unbound = Sym.symbol("ghost");
  }

  const sym::Expr *genExpr(int Depth) {
    if (Depth <= 0 || R.chance(1, 3))
      return genAtom();
    switch (R.nextBelow(6)) {
    case 0:
      return Sym.add(genExpr(Depth - 1), genExpr(Depth - 1));
    case 1:
      return Sym.mulConst(genExpr(Depth - 1), R.nextInRange(-3, 3));
    case 2:
      return Sym.min(genExpr(Depth - 1), genExpr(Depth - 1));
    case 3:
      return Sym.max(genExpr(Depth - 1), genExpr(Depth - 1));
    case 4:
      return Sym.floorDiv(genExpr(Depth - 1),
                          static_cast<int64_t>(R.nextInRange(1, 4)));
    default:
      return Sym.mod(genExpr(Depth - 1),
                     static_cast<int64_t>(R.nextInRange(1, 4)));
    }
  }

  const Pred *genPred(int Depth, int LoopBudget) {
    if (Depth <= 0 || R.chance(1, 4)) {
      switch (R.nextBelow(4)) {
      case 0:
        return P.ge0(genExpr(2));
      case 1:
        return P.eq0(genExpr(2));
      case 2:
        return P.ne0(genExpr(2));
      default:
        return P.divides(genExpr(1), genExpr(2), R.chance(1, 2));
      }
    }
    if (LoopBudget > 0 && R.chance(1, 3)) {
      sym::SymbolId Var = Sym.freshSymbol("i", 1);
      InScope.push_back(Var);
      const Pred *Body = genPred(Depth - 1, LoopBudget - 1);
      InScope.pop_back();
      const sym::Expr *Lo = Sym.intConst(R.nextInRange(-2, 2));
      const sym::Expr *Hi =
          R.chance(1, 3)
              ? Sym.symRef(Scalars[R.nextBelow(Scalars.size())])
              : Sym.addConst(Lo, R.nextInRange(-1, 6));
      return P.loopAll(Var, Lo, Hi, Body);
    }
    size_t N = 2 + R.nextBelow(2);
    std::vector<const Pred *> Cs;
    for (size_t I = 0; I < N; ++I)
      Cs.push_back(genPred(Depth - 1, LoopBudget));
    if (R.chance(1, 8))
      return P.callSite("ext", P.andN(std::move(Cs)));
    return R.chance(1, 2) ? P.andN(std::move(Cs)) : P.orN(std::move(Cs));
  }

  sym::Bindings genBindings() {
    sym::Bindings B;
    for (sym::SymbolId S : Scalars)
      if (R.chance(7, 8)) // Occasionally unbound.
        B.setScalar(S, R.nextInRange(-10, 10));
    for (sym::SymbolId A : Arrays) {
      sym::ArrayBinding AB;
      AB.Lo = R.nextInRange(-1, 1);
      AB.Vals.resize(4 + R.nextBelow(5)); // Short: OOB reads happen.
      for (auto &V : AB.Vals)
        V = R.nextInRange(-10, 10);
      B.setArray(A, AB);
    }
    return B;
  }

private:
  const sym::Expr *genAtom() {
    switch (R.nextBelow(5)) {
    case 0:
      return Sym.intConst(R.nextInRange(-8, 8));
    case 1:
      if (!InScope.empty())
        return Sym.symRef(InScope[R.nextBelow(InScope.size())]);
      [[fallthrough]];
    case 2:
      if (R.chance(1, 12))
        return Sym.symRef(Unbound);
      return Sym.symRef(Scalars[R.nextBelow(Scalars.size())]);
    default:
      return Sym.arrayRef(Arrays[R.nextBelow(Arrays.size())], genExpr(0));
    }
  }

  sym::Context &Sym;
  PredContext &P;
  Rng &R;
  std::vector<sym::SymbolId> Scalars;
  std::vector<sym::SymbolId> Arrays;
  std::vector<sym::SymbolId> InScope;
  sym::SymbolId Unbound = 0;
};

TEST(PredCompilePropertyTest, CompiledAgreesWithInterpreter) {
  sym::Context Sym;
  PredContext P(Sym);
  Rng R(20260726);
  RandomPredGen Gen(Sym, P, R);
  ThreadPool Pool(3);
  for (int Case = 0; Case < 600; ++Case) {
    const Pred *Pr = Gen.genPred(3, 2);
    sym::Bindings B = Gen.genBindings();
    auto Ref = tryEvalPred(Pr, B);
    auto CP = CompiledPred::compile(Pr, Sym);
    auto Serial = CP->eval(B);
    auto Parallel = CP->evalParallel(B, Pool, nullptr, /*MinParallelIters=*/1);
    ASSERT_EQ(Serial, Ref) << "case " << Case << ": " << Pr->toString(Sym);
    ASSERT_EQ(Parallel, Ref) << "case " << Case << " (parallel): "
                             << Pr->toString(Sym);
  }
}

TEST(PredCompilePropertyTest, BlockTierAgreesWithScalarAndInterpreter) {
  // Block-vs-scalar-vs-interpreter, 500 random programs: BlockEval::Force
  // (blocked wherever the body is structurally blockable, any trip) and
  // BlockEval::Off (always scalar) must produce identical results, equal
  // to the reference interpreter — including programs where unbound
  // scalars and short arrays poison lanes mid-block. The serial and
  // chunked-parallel (1-iteration chunks) forced paths are both checked.
  sym::Context Sym;
  PredContext P(Sym);
  Rng R(20260808);
  RandomPredGen Gen(Sym, P, R);
  ThreadPool Pool(3);
  for (int Case = 0; Case < 500; ++Case) {
    const Pred *Pr = Gen.genPred(3, 2);
    sym::Bindings B = Gen.genBindings();
    auto Ref = tryEvalPred(Pr, B);
    auto CP = CompiledPred::compile(Pr, Sym);
    auto Scalar = CP->eval(B, nullptr, BlockEval::Off);
    auto Blocked = CP->eval(B, nullptr, BlockEval::Force);
    auto BlockedPar = CP->evalParallel(B, Pool, nullptr,
                                       /*MinParallelIters=*/1, nullptr,
                                       BlockEval::Force);
    ASSERT_EQ(Scalar, Ref) << "case " << Case << ": " << Pr->toString(Sym);
    ASSERT_EQ(Blocked, Ref) << "case " << Case << " (block): "
                            << Pr->toString(Sym);
    ASSERT_EQ(BlockedPar, Ref) << "case " << Case << " (block parallel): "
                               << Pr->toString(Sym);
  }
}

TEST(PredCompilePropertyTest, PooledFramesMatchInterpreterUnderRebinding) {
  // The analyze-once / execute-many entry point: pooled frames must agree
  // with the reference interpreter whether the bindings changed since the
  // last evaluation (full re-bind) or not (re-bind skipped, memo warm).
  sym::Context Sym;
  PredContext P(Sym);
  Rng R(777);
  RandomPredGen Gen(Sym, P, R);
  ThreadPool Pool(3);
  for (int Case = 0; Case < 300; ++Case) {
    const Pred *Pr = Gen.genPred(3, 2);
    auto CP = CompiledPred::compile(Pr, Sym);
    CompiledPred::PooledFrame PF, PFP;
    sym::Bindings B1 = Gen.genBindings();
    sym::Bindings B2 = Gen.genBindings();
    for (int Round = 0; Round < 4; ++Round) {
      sym::Bindings &B = (Round % 2) ? B2 : B1;
      auto Ref = tryEvalPred(Pr, B);
      EvalStats SBind, SReuse;
      ASSERT_EQ(CP->evalPooled(PF, B, &SBind), Ref)
          << "case " << Case << ": " << Pr->toString(Sym);
      // Nothing touched B since: the re-bind must be skipped and the
      // result unchanged.
      ASSERT_EQ(CP->evalPooled(PF, B, &SReuse), Ref);
      EXPECT_EQ(SReuse.FrameBinds, 0u);
      EXPECT_EQ(SReuse.FrameRebindsSkipped, 1u);
      // Parallel pooled path, twice: the second call reuses the
      // per-worker frame copies.
      ASSERT_EQ(CP->evalParallelPooled(PFP, B, Pool, nullptr, 1), Ref)
          << "case " << Case << " (parallel): " << Pr->toString(Sym);
      ASSERT_EQ(CP->evalParallelPooled(PFP, B, Pool, nullptr, 1), Ref);
    }
  }
}

TEST(PredCompilePropertyTest, RepeatedEvalIsDeterministic) {
  sym::Context Sym;
  PredContext P(Sym);
  Rng R(42);
  RandomPredGen Gen(Sym, P, R);
  for (int Case = 0; Case < 50; ++Case) {
    const Pred *Pr = Gen.genPred(3, 2);
    sym::Bindings B = Gen.genBindings();
    auto CP = CompiledPred::compile(Pr, Sym);
    auto First = CP->eval(B);
    for (int K = 0; K < 3; ++K)
      ASSERT_EQ(CP->eval(B), First);
  }
}

} // namespace
