//===- tests/suite_test.cpp - Benchmark suite integration tests -----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// For every loop of every reconstructed benchmark (Tables 1-3):
//  - the computed classification must agree with the paper's category,
//  - hybrid parallel execution must produce the same memory state as
//    sequential execution (with reductions compared under a tolerance),
//  - the static-only baseline (commercial-compiler proxy) must never
//    parallelize the runtime-test loops.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace halo;
using namespace halo::suite;
using analysis::LoopClass;
using analysis::Technique;

namespace {

struct LoopCase {
  Benchmark *B;
  const LoopSpec *LS;
};

std::vector<std::unique_ptr<Benchmark>> &allBenchmarks() {
  static std::vector<std::unique_ptr<Benchmark>> Benches =
      buildAllBenchmarks();
  return Benches;
}

std::vector<LoopCase> allLoops() {
  std::vector<LoopCase> Out;
  for (auto &B : allBenchmarks())
    for (const LoopSpec &LS : B->Loops)
      Out.push_back(LoopCase{B.get(), &LS});
  return Out;
}

class SuiteLoopTest : public ::testing::TestWithParam<size_t> {
protected:
  LoopCase theCase() { return allLoops()[GetParam()]; }
};

std::string loopCaseName(const ::testing::TestParamInfo<size_t> &Info) {
  LoopCase C = allLoops()[Info.param];
  std::string Name = C.B->Name + "_" + C.LS->Name;
  for (char &Ch : Name)
    if (!isalnum(static_cast<unsigned char>(Ch)))
      Ch = '_';
  return Name;
}

TEST_P(SuiteLoopTest, ClassificationMatchesPaperCategory) {
  LoopCase C = theCase();
  rt::Memory M;
  sym::Bindings Bd;
  C.B->Setup(M, Bd, 1);
  analysis::AnalyzerOptions Opts;
  Opts.Probe = &Bd;
  Opts.HoistableContext = C.LS->Hoistable;
  analysis::HybridAnalyzer A(C.B->usr(), C.B->prog(), Opts);
  analysis::LoopPlan Plan = A.analyze(*C.LS->Loop);

  const std::string &Paper = C.LS->PaperClass;
  std::string Computed = Plan.classString();
  SCOPED_TRACE("paper=" + Paper + " computed=" + Computed);

  if (Paper == "STATIC-PAR") {
    EXPECT_EQ(Plan.Class, LoopClass::StaticPar);
  } else if (Paper == "STATIC-SEQ") {
    EXPECT_EQ(Plan.Class, LoopClass::StaticSeq);
  } else if (Paper == "TLS") {
    EXPECT_EQ(Plan.Class, LoopClass::TLS);
  } else if (Paper.find("HOIST-USR") != std::string::npos) {
    EXPECT_EQ(Plan.Class, LoopClass::HoistUSR);
  } else if (Paper.find("CIV") != std::string::npos) {
    EXPECT_TRUE(Plan.Techniques.count(Technique::CivAgg));
    EXPECT_EQ(Plan.Class, LoopClass::Predicated);
  } else if (Paper.find("BOUNDS-COMP") != std::string::npos) {
    EXPECT_TRUE(Plan.Techniques.count(Technique::BoundsComp));
    EXPECT_EQ(Plan.Class, LoopClass::Predicated);
  } else {
    // A predicate classification like "FI O(1)" / "OI O(N)" /
    // "F/OI O(1)/O(N)" / "SLV O(N)".
    EXPECT_EQ(Plan.Class, LoopClass::Predicated);
    // Complexity never exceeds O(N) (Sec. 3.6).
    EXPECT_LE(Plan.ReportFlowDepth, 1);
    EXPECT_LE(Plan.ReportOutDepth, 1);
  }
}

TEST_P(SuiteLoopTest, ParallelExecutionMatchesSequential) {
  LoopCase C = theCase();

  // Sequential reference.
  rt::Memory SeqM;
  sym::Bindings SeqB;
  C.B->Setup(SeqM, SeqB, 1);
  rt::Executor SeqE(C.B->prog(), C.B->usr());
  SeqE.runSequential(*C.LS->Loop, SeqM, SeqB);

  // Hybrid parallel execution under the plan.
  rt::Memory ParM;
  sym::Bindings ParB;
  C.B->Setup(ParM, ParB, 1);
  analysis::AnalyzerOptions Opts;
  Opts.Probe = &ParB;
  Opts.HoistableContext = C.LS->Hoistable;
  analysis::HybridAnalyzer A(C.B->usr(), C.B->prog(), Opts);
  analysis::LoopPlan Plan = A.analyze(*C.LS->Loop);
  ThreadPool Pool(4);
  rt::Executor ParE(C.B->prog(), C.B->usr());
  rt::HoistCache Hoist;
  rt::ExecStats Stats = ParE.runPlanned(Plan, ParM, ParB, Pool, &Hoist);
  SCOPED_TRACE("class=" + Plan.classString() +
               " parallel=" + std::to_string(Stats.RanParallel) +
               " tls=" + std::to_string(Stats.UsedTLS));

  // Memory states must agree (reductions may reorder float additions).
  ASSERT_EQ(SeqM.arrays().size(), ParM.arrays().size());
  for (const auto &KV : SeqM.arrays()) {
    const auto &Seq = KV.second;
    const auto *Par = ParM.find(KV.first);
    ASSERT_NE(Par, nullptr);
    ASSERT_EQ(Seq.size(), Par->size());
    for (size_t I = 0; I < Seq.size(); ++I) {
      double Diff = std::fabs(Seq[I] - (*Par)[I]);
      double Tol = 1e-9 * (1.0 + std::fabs(Seq[I]));
      ASSERT_LE(Diff, Tol)
          << "array " << C.B->sym().symbolInfo(KV.first).Name << "[" << I
          << "]: seq=" << Seq[I] << " par=" << (*Par)[I];
    }
  }

  // Loops the paper parallelizes must actually run in parallel here.
  if (Plan.Class == LoopClass::StaticPar ||
      Plan.Class == LoopClass::Predicated)
    EXPECT_TRUE(Stats.RanParallel);
  if (Plan.Class == LoopClass::StaticSeq)
    EXPECT_FALSE(Stats.RanParallel && !Stats.UsedTLS);
}

TEST_P(SuiteLoopTest, StaticOnlyBaselineNeverUsesPredicates) {
  LoopCase C = theCase();
  rt::Memory M;
  sym::Bindings Bd;
  C.B->Setup(M, Bd, 1);
  analysis::AnalyzerOptions Opts;
  Opts.RuntimeTests = false; // The ifort/xlf_r proxy.
  Opts.Probe = &Bd;
  analysis::HybridAnalyzer A(C.B->usr(), C.B->prog(), Opts);
  analysis::LoopPlan Plan = A.analyze(*C.LS->Loop);
  for (const analysis::ArrayPlan &AP : Plan.Arrays) {
    EXPECT_TRUE(AP.Flow.Stages.empty());
    EXPECT_TRUE(AP.Output.Stages.empty());
  }
  // A paper-STATIC-PAR loop still parallelizes statically.
  if (C.LS->PaperClass == "STATIC-PAR")
    EXPECT_EQ(Plan.Class, LoopClass::StaticPar);
}

INSTANTIATE_TEST_SUITE_P(AllBenchLoops, SuiteLoopTest,
                         ::testing::Range<size_t>(0, allLoops().size()),
                         loopCaseName);

//===----------------------------------------------------------------------===//
// Whole-suite sanity
//===----------------------------------------------------------------------===//

TEST(SuiteShapeTest, AllTablesPresent) {
  auto &Benches = allBenchmarks();
  EXPECT_GE(Benches.size(), 26u);
  size_t Perfect = 0, S92 = 0, S2k = 0;
  for (auto &B : Benches) {
    if (B->SuiteName == "PERFECT")
      ++Perfect;
    else if (B->SuiteName == "SPEC92")
      ++S92;
    else
      ++S2k;
  }
  EXPECT_EQ(Perfect, 10u); // Table 1.
  EXPECT_EQ(S92, 7u);      // Table 2.
  EXPECT_EQ(S2k, 10u);     // Table 3.
}

TEST(SuiteShapeTest, EveryLoopHasWorkloadWeight) {
  for (auto &B : allBenchmarks())
    for (const LoopSpec &LS : B->Loops) {
      EXPECT_GT(LS.LscPercent, 0.0) << B->Name << " " << LS.Name;
      EXPECT_NE(LS.Loop, nullptr);
      EXPECT_FALSE(LS.PaperClass.empty());
    }
}

} // namespace
