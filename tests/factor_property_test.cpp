//===- tests/factor_property_test.cpp - Soundness property tests ----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The central invariant of the whole system (Sec. 3):
//
//     F(S) evaluates to true  ==>  S evaluates to the empty set,
//
// checked against exact USR evaluation over randomized summaries and
// bindings. The same harness checks DISJOINT and INCLUDED, and that the
// UMEG reshaping + simplification pipeline preserves the invariant.
//
//===----------------------------------------------------------------------===//

#include "factor/Factor.h"
#include "pdag/PredEval.h"
#include "pdag/PredSimplify.h"
#include "support/Rng.h"
#include "usr/USREval.h"
#include "usr/USRTransform.h"

#include <gtest/gtest.h>

#include <set>

using namespace halo;
using namespace halo::factor;
using namespace halo::usr;
using pdag::Pred;

namespace {

class FactorSoundness : public ::testing::TestWithParam<uint64_t> {
protected:
  FactorSoundness() : P(Sym), U(Sym, P) {}
  sym::Context Sym;
  pdag::PredContext P;
  USRContext U;

  sym::SymbolId loopVar(int Depth) {
    return Sym.symbol("rv" + std::to_string(Depth), Depth);
  }

  /// Random symbolic length expression over the scalar pool.
  const sym::Expr *randomExpr(Rng &R, int LoopDepth) {
    const sym::Expr *E = Sym.intConst(R.nextInRange(-2, 6));
    if (R.chance(1, 2))
      E = Sym.add(E, Sym.mulConst(Sym.symRef("a"), R.nextInRange(-1, 2)));
    if (R.chance(1, 3))
      E = Sym.add(E, Sym.mulConst(Sym.symRef("b"), R.nextInRange(-1, 2)));
    if (LoopDepth > 0 && R.chance(1, 2)) {
      if (R.chance(1, 2)) {
        sym::SymbolId IB = Sym.symbol("IB", 0, true);
        E = Sym.add(E, Sym.arrayRef(IB, Sym.symRef(loopVar(LoopDepth))));
      } else {
        E = Sym.add(E, Sym.mulConst(Sym.symRef(loopVar(LoopDepth)),
                                    R.nextInRange(1, 3)));
      }
    }
    return E;
  }

  const Pred *randomGate(Rng &R, int LoopDepth) {
    const sym::Expr *E = randomExpr(R, LoopDepth);
    return R.chance(1, 2) ? P.ge0(E) : P.ne0(E);
  }

  const USR *randomUSR(Rng &R, int Depth, int LoopDepth) {
    if (Depth <= 0 || R.chance(1, 4)) {
      // Leaf: interval or strided LMAD.
      const sym::Expr *Off = randomExpr(R, LoopDepth);
      if (R.chance(1, 3)) {
        int64_t Stride = R.nextInRange(2, 4);
        int64_t Count = R.nextInRange(1, 4);
        return U.leaf(lmad::LMAD::makeStrided(
            Sym.intConst(Stride), Sym.intConst(Stride * (Count - 1)), Off));
      }
      return U.interval(Off, Sym.intConst(R.nextInRange(0, 6)));
    }
    switch (R.nextBelow(6)) {
    case 0:
      return U.union2(randomUSR(R, Depth - 1, LoopDepth),
                      randomUSR(R, Depth - 1, LoopDepth));
    case 1:
      return U.intersect(randomUSR(R, Depth - 1, LoopDepth),
                         randomUSR(R, Depth - 1, LoopDepth));
    case 2:
      return U.subtract(randomUSR(R, Depth - 1, LoopDepth),
                        randomUSR(R, Depth - 1, LoopDepth));
    case 3:
      return U.gate(randomGate(R, LoopDepth),
                    randomUSR(R, Depth - 1, LoopDepth));
    case 4: {
      sym::SymbolId V = loopVar(LoopDepth + 1);
      return U.recur(V, Sym.intConst(1), Sym.symRef("n"),
                     randomUSR(R, Depth - 1, LoopDepth + 1));
    }
    default:
      return randomUSR(R, Depth - 1, LoopDepth);
    }
  }

  sym::Bindings randomBindings(Rng &R) {
    sym::Bindings B;
    B.setScalar(Sym.symbol("a"), R.nextInRange(-3, 5));
    B.setScalar(Sym.symbol("b"), R.nextInRange(-3, 5));
    B.setScalar(Sym.symbol("n"), R.nextInRange(0, 5));
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int I = 0; I < 8; ++I)
      A.Vals.push_back(R.nextInRange(-3, 12));
    B.setArray(Sym.symbol("IB", 0, true), A);
    return B;
  }
};

TEST_P(FactorSoundness, FactorImpliesEmpty) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 12; ++Trial) {
    const USR *S = randomUSR(R, 3, 0);
    Factorizer F(U);
    const Pred *Pr = F.factor(S);
    for (int BTrial = 0; BTrial < 12; ++BTrial) {
      sym::Bindings B = randomBindings(R);
      auto PV = pdag::tryEvalPred(Pr, B);
      if (!PV || !*PV)
        continue;
      auto SV = evalUSR(S, B);
      ASSERT_TRUE(SV.has_value());
      EXPECT_TRUE(SV->empty())
          << "F(S) true but S nonempty\nS: " << S->toString(Sym)
          << "\nF(S): " << Pr->toString(Sym);
    }
  }
}

TEST_P(FactorSoundness, FactorSurvivesSimplifyAndCascade) {
  Rng R(GetParam() ^ 0x1111);
  for (int Trial = 0; Trial < 8; ++Trial) {
    const USR *S = randomUSR(R, 3, 0);
    Factorizer F(U);
    const Pred *Pr = F.factor(S);
    auto Stages = pdag::buildCascade(P, Pr);
    for (int BTrial = 0; BTrial < 8; ++BTrial) {
      sym::Bindings B = randomBindings(R);
      for (const auto &St : Stages) {
        auto PV = pdag::tryEvalPred(St.P, B);
        if (!PV || !*PV)
          continue;
        auto SV = evalUSR(S, B);
        ASSERT_TRUE(SV.has_value());
        EXPECT_TRUE(SV->empty())
            << "cascade stage true but S nonempty\nS: " << S->toString(Sym)
            << "\nstage: " << St.P->toString(Sym);
      }
    }
  }
}

TEST_P(FactorSoundness, FactorAfterUMEGReshapeStillSound) {
  Rng R(GetParam() ^ 0x2222);
  for (int Trial = 0; Trial < 8; ++Trial) {
    const USR *S = randomUSR(R, 3, 0);
    const USR *Reshaped = reshapeUMEG(U, S);
    Factorizer F(U);
    const Pred *Pr = F.factor(Reshaped);
    for (int BTrial = 0; BTrial < 8; ++BTrial) {
      sym::Bindings B = randomBindings(R);
      auto PV = pdag::tryEvalPred(Pr, B);
      if (!PV || !*PV)
        continue;
      auto SV = evalUSR(S, B); // Original semantics!
      ASSERT_TRUE(SV.has_value());
      EXPECT_TRUE(SV->empty());
    }
  }
}

TEST_P(FactorSoundness, DisjointImpliesEmptyIntersection) {
  Rng R(GetParam() ^ 0x3333);
  for (int Trial = 0; Trial < 10; ++Trial) {
    const USR *A = randomUSR(R, 2, 0);
    const USR *B = randomUSR(R, 2, 0);
    Factorizer F(U);
    const Pred *Pr = F.disjoint(A, B);
    for (int BTrial = 0; BTrial < 10; ++BTrial) {
      sym::Bindings Bd = randomBindings(R);
      auto PV = pdag::tryEvalPred(Pr, Bd);
      if (!PV || !*PV)
        continue;
      auto VA = evalUSR(A, Bd);
      auto VB = evalUSR(B, Bd);
      ASSERT_TRUE(VA.has_value() && VB.has_value());
      std::set<int64_t> SB(VB->begin(), VB->end());
      for (int64_t X : *VA)
        EXPECT_FALSE(SB.count(X))
            << "disjoint claimed but share " << X << "\nA: "
            << A->toString(Sym) << "\nB: " << B->toString(Sym)
            << "\npred: " << Pr->toString(Sym);
    }
  }
}

TEST_P(FactorSoundness, IncludedImpliesSubset) {
  Rng R(GetParam() ^ 0x4444);
  for (int Trial = 0; Trial < 10; ++Trial) {
    const USR *A = randomUSR(R, 2, 0);
    const USR *B = randomUSR(R, 2, 0);
    Factorizer F(U);
    const Pred *Pr = F.included(A, B);
    for (int BTrial = 0; BTrial < 10; ++BTrial) {
      sym::Bindings Bd = randomBindings(R);
      auto PV = pdag::tryEvalPred(Pr, Bd);
      if (!PV || !*PV)
        continue;
      auto VA = evalUSR(A, Bd);
      auto VB = evalUSR(B, Bd);
      ASSERT_TRUE(VA.has_value() && VB.has_value());
      std::set<int64_t> SB(VB->begin(), VB->end());
      for (int64_t X : *VA)
        EXPECT_TRUE(SB.count(X))
            << "inclusion claimed but " << X << " not in B\nA: "
            << A->toString(Sym) << "\nB: " << B->toString(Sym);
    }
  }
}

TEST_P(FactorSoundness, FactorIsNotVacuous) {
  // Anti-vacuity: on summaries that are definitely empty by construction
  // (S - S over random S), the factorization must prove it statically.
  Rng R(GetParam() ^ 0x5555);
  for (int Trial = 0; Trial < 10; ++Trial) {
    const USR *S = randomUSR(R, 2, 0);
    Factorizer F(U);
    EXPECT_TRUE(F.factor(U.subtract(S, S))->isTrue());
    EXPECT_TRUE(F.included(S, S)->isTrue());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FactorSoundness,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
