//===- examples/civ_aggregation.cpp - Fig. 7(b) CIV aggregation -----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Conditionally-incremented induction variables (Sec. 3.3, Fig. 7b): the
// loop below packs variable-size records through a CIV. The analysis
// summarizes the writes through civ^pre pseudo-arrays, proves output
// independence statically via the CIV write envelope, and the runtime
// precomputes the CIV values with a loop slice (CIV-COMP) so chunks can
// start at the right offsets — the track EXTEND_DO400 story, including
// its measurable slice overhead.
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"

#include <iostream>

using namespace halo;

int main() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  usr::USRContext U(Sym, P);
  ir::Program Prog(Sym, P);
  ir::Subroutine *Main = Prog.makeSubroutine("main");

  sym::SymbolId X = Sym.symbol("X", 0, true);
  sym::SymbolId CND = Sym.symbol("CND", 0, true);
  Main->declareArray(ir::ArrayDecl{X, Sym.mulConst(Sym.symRef("N"), 4),
                                   false});
  Main->declareArray(ir::ArrayDecl{CND, nullptr, true});

  sym::SymbolId Civ = Sym.symbol("civ", 1);
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  ir::DoLoop *L = Prog.make<ir::DoLoop>("pack", I, Sym.intConst(1),
                                        Sym.symRef("N"), 1);
  ir::IfStmt *If = Prog.make<ir::IfStmt>(
      P.gt(Sym.arrayRef(CND, Sym.symRef(I)), Sym.intConst(0)));
  ir::DoLoop *Blk = Prog.make<ir::DoLoop>("pack_j", J, Sym.intConst(1),
                                          Sym.intConst(3), 2);
  Blk->append(Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{X, Sym.addConst(
                             Sym.add(Sym.symRef(Civ), Sym.symRef(J)), -1)},
      std::vector<ir::ArrayAccess>{}, false, 20));
  If->appendThen(Blk);
  If->appendThen(Prog.make<ir::CivIncrStmt>(Civ, Sym.intConst(3)));
  L->append(If);

  session::SessionOptions SO;
  SO.Threads = 4;
  session::Session S(Prog, U, SO);
  const analysis::LoopPlan &Plan = S.prepare(*L).Plan;
  std::cout << "classification: " << Plan.classString() << "\n";
  std::cout << "techniques:     " << Plan.techniqueString() << "\n";
  std::cout << "CIVs discovered: " << Plan.Civ.Civs.size()
            << ", joins: " << Plan.Civ.Joins.size()
            << ", validated envelopes: " << Plan.Civ.Envelopes.size()
            << "\n";
  for (const summary::CivDesc &D : Plan.Civ.Civs)
    std::cout << "  " << Sym.symbolInfo(D.Civ).Name
              << " -> entry array " << Sym.symbolInfo(D.EntryArr).Name
              << (D.Monotone ? " (monotone)" : "") << "\n";

  rt::Memory M;
  sym::Bindings B;
  int64_t N = 2000;
  B.setScalar(Sym.symbol("N"), N);
  B.setScalar(Civ, 0);
  sym::ArrayBinding CV;
  CV.Lo = 1;
  for (int64_t K = 0; K < N; ++K)
    CV.Vals.push_back(K % 2); // Half the iterations pack a record.
  B.setArray(CND, CV);
  M.alloc(X, static_cast<size_t>(4 * N));
  rt::ExecStats St = S.run(*L, M, B);
  std::cout << "parallel=" << St.RanParallel << ", CIV-COMP slice took "
            << St.CivSliceSeconds * 1e3 << " ms of " << St.TotalSeconds * 1e3
            << " ms total (the track-style overhead)\n";
  return 0;
}
