//===- examples/bounds_comp.cpp - Fig. 7(a) BOUNDS-COMP -------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The gromacs INL1130 situation (Sec. 4, Fig. 7a): a reduction into an
// assumed-size array (FSHIFT, passed from C into Fortran) whose bounds
// are unknown at compile time. Reduction parallelization needs the
// touched-index bounds; BOUNDS-COMP strips the access summary to a
// min/max-computable overestimate and evaluates it in parallel at
// runtime.
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"
#include "usr/USRTransform.h"

#include <iostream>

using namespace halo;

int main() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  usr::USRContext U(Sym, P);
  ir::Program Prog(Sym, P);
  ir::Subroutine *Main = Prog.makeSubroutine("main");

  sym::SymbolId FSH = Sym.symbol("FSHIFT", 0, true);
  sym::SymbolId SHF = Sym.symbol("SHIFT", 0, true);
  // Assumed-size: no declared extent — the BOUNDS-COMP trigger.
  Main->declareArray(ir::ArrayDecl{FSH, nullptr, false});
  Main->declareArray(ir::ArrayDecl{SHF, nullptr, true});

  sym::SymbolId I = Sym.symbol("n", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  ir::DoLoop *L = Prog.make<ir::DoLoop>("INL_do1130", I, Sym.intConst(1),
                                        Sym.symRef("NRI"), 1);
  ir::DoLoop *Inner = Prog.make<ir::DoLoop>("INL_j", J, Sym.intConst(1),
                                            Sym.intConst(3), 2);
  // FSHIFT(3*SHIFT(n) + j) += ...
  Inner->append(Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{FSH,
                      Sym.addConst(
                          Sym.add(Sym.mulConst(Sym.arrayRef(SHF,
                                                            Sym.symRef(I)),
                                               3),
                                  Sym.symRef(J)),
                          -1)},
      std::vector<ir::ArrayAccess>{}, true, 6));
  L->append(Inner);

  session::SessionOptions SO;
  SO.Threads = 4;
  session::Session S(Prog, U, SO);
  const analysis::LoopPlan &Plan = S.prepare(*L).Plan;
  std::cout << "classification: " << Plan.classString() << "\n";
  std::cout << "techniques:     " << Plan.techniqueString() << "\n";
  for (const analysis::ArrayPlan &AP : Plan.Arrays)
    if (AP.NeedsBoundsComp) {
      std::cout << "bounds USR (stripped, Fig. 7a): "
                << AP.BoundsUSR->toString(Sym) << "\n";
      rt::Memory M;
      sym::Bindings B;
      int64_t NRI = 100000;
      B.setScalar(Sym.symbol("NRI"), NRI);
      sym::ArrayBinding SV;
      SV.Lo = 1;
      for (int64_t K = 0; K < NRI; ++K)
        SV.Vals.push_back(K % 27);
      B.setArray(SHF, SV);
      int64_t Lo = 0, Hi = -1;
      bool Ok = S.computeBounds(AP.BoundsUSR, B, Lo, Hi);
      std::cout << "runtime bounds: ok=" << Ok << " [" << Lo << ", " << Hi
                << "] (expected [0, 80])\n";
    }
  return 0;
}
