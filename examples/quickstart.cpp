//===- examples/quickstart.cpp - End-to-end walkthrough (Fig. 1) ----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The paper's running example: loop SOLVH_DO20 from dyfesm (Fig. 1). We
// build the interprocedural mini-IR program, run the hybrid analysis,
// print the derived independence predicates (compare with Sec. 1.2:
// `SYM.NE.1 and NS<=16*NP` for XE, `8*NP<NS+6` for HE and the Fig. 3(b)
// monotonicity predicate for HE's output independence), and execute the
// loop in parallel under the plan.
//
// Build: cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"
#include "suite/Suite.h"

#include <iostream>

using namespace halo;

int main() {
  // dyfesm's reconstruction contains the full Fig. 1 program
  // (solvh -> geteu / matmult / solvhe with array reshaping at the calls).
  auto Benches = suite::buildPerfectClub();
  suite::Benchmark *Dyfesm = nullptr;
  for (auto &B : Benches)
    if (B->Name == "dyfesm")
      Dyfesm = B.get();
  const suite::LoopSpec *Solvh = nullptr;
  for (const suite::LoopSpec &LS : Dyfesm->Loops)
    if (LS.Name == "SOLVH_do20")
      Solvh = &LS;

  rt::Memory M;
  sym::Bindings Bd;
  Dyfesm->Setup(M, Bd, 1);

  std::cout << "== Analyzing " << Solvh->Name << " (paper Fig. 1) ==\n";
  // The session owns the whole analyze-once / execute-many lifecycle:
  // prepare() analyzes the loop (and compiles its cascades) exactly once,
  // every run() reuses the cached plan.
  session::SessionOptions SO;
  SO.Threads = 4;
  session::Session S(Dyfesm->prog(), Dyfesm->usr(), SO);
  analysis::AnalyzerOptions Opts;
  Opts.Probe = &Bd;
  const analysis::LoopPlan &Plan = S.prepare(*Solvh->Loop, Opts).Plan;

  std::cout << "classification: " << Plan.classString()
            << "   (paper: " << Solvh->PaperClass << ")\n";
  std::cout << "techniques:     " << Plan.techniqueString() << "\n\n";

  for (const analysis::ArrayPlan &AP : Plan.Arrays) {
    if (AP.ReadOnly)
      continue;
    std::cout << "array " << Dyfesm->sym().symbolInfo(AP.Array).Name << ":\n";
    auto Show = [&](const char *What, const analysis::TestCascade &C) {
      if (C.StaticallyTrue) {
        std::cout << "  " << What << ": proven statically\n";
        return;
      }
      for (const pdag::CascadeStage &St : C.Stages) {
        std::string S = St.P->toString(Dyfesm->sym());
        if (S.size() > 160)
          S = S.substr(0, 157) + "...";
        std::cout << "  " << What << " O(N^" << St.Depth << "): " << S
                  << "\n";
      }
    };
    Show("flow", AP.Flow);
    Show("output", AP.Output);
  }

  std::cout << "\n== Executing under the plan (4 threads) ==\n";
  rt::ExecStats St = S.run(*Solvh->Loop, M, Bd);
  std::cout << "ran parallel: " << (St.RanParallel ? "yes" : "no")
            << ", test overhead: "
            << (St.PredicateSeconds + St.CivSliceSeconds) * 1e3 << " ms of "
            << St.TotalSeconds * 1e3 << " ms total\n";
  return 0;
}
