//===- examples/reduction_ext.cpp - Sec. 4 reduction machinery ------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The Sec. 4 example:
//
//    DO i = 1, N
//      A(P(i))  = ...          ! S1: a direct (write-first) store
//      A(Q(i)) += ...          ! S2: a reduction update
//    ENDDO
//
// S1 and S2 do not form a classical reduction group; the loop still
// parallelizes as an *extended* reduction (EXT-RRED) when the direct
// writes never touch reduction locations of other iterations, and the
// reduction can even update the shared array directly when Q is proven
// injective at runtime (the RRED predicate AND_i Q(i) < Q(i+1) extracted
// by the monotonicity rule — footnote 5 of the paper).
//
//===----------------------------------------------------------------------===//

#include "session/Session.h"

#include <iostream>

using namespace halo;

int main() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  usr::USRContext U(Sym, P);
  ir::Program Prog(Sym, P);
  ir::Subroutine *Main = Prog.makeSubroutine("main");

  sym::SymbolId A = Sym.symbol("A", 0, true);
  sym::SymbolId PIdx = Sym.symbol("P", 0, true);
  sym::SymbolId QIdx = Sym.symbol("Q", 0, true);
  Main->declareArray(ir::ArrayDecl{A, Sym.mulConst(Sym.symRef("N"), 4),
                                   false});
  Main->declareArray(ir::ArrayDecl{PIdx, nullptr, true});
  Main->declareArray(ir::ArrayDecl{QIdx, nullptr, true});

  sym::SymbolId I = Sym.symbol("i", 1);
  ir::DoLoop *L = Prog.make<ir::DoLoop>("extred", I, Sym.intConst(1),
                                        Sym.symRef("N"), 1);
  L->append(Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{A, Sym.arrayRef(PIdx, Sym.symRef(I))},
      std::vector<ir::ArrayAccess>{}, false, 12));
  L->append(Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{A, Sym.arrayRef(QIdx, Sym.symRef(I))},
      std::vector<ir::ArrayAccess>{}, true, 12));

  session::SessionOptions SO;
  SO.Threads = 4;
  SO.Analyzer.HoistableContext = true;
  session::Session S(Prog, U, SO);
  const analysis::LoopPlan &Plan = S.prepare(*L).Plan;
  std::cout << "classification: " << Plan.classString() << "\n";
  std::cout << "techniques:     " << Plan.techniqueString() << "\n";
  for (const analysis::ArrayPlan &AP : Plan.Arrays) {
    for (const pdag::CascadeStage &St : AP.RRed.Stages)
      std::cout << "RRED injectivity test O(N^" << St.Depth
                << "): " << St.P->toString(Sym) << "\n";
  }

  auto Run = [&](int64_t Stride, const char *What) {
    rt::Memory M;
    sym::Bindings B;
    int64_t N = 1000;
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding PV, QV;
    PV.Lo = QV.Lo = 1;
    for (int64_t X = 0; X < N; ++X) {
      PV.Vals.push_back(X);                      // Injective direct writes.
      QV.Vals.push_back(2 * N + Stride * X);     // Reduction targets.
    }
    B.setArray(PIdx, PV);
    B.setArray(QIdx, QV);
    M.alloc(A, static_cast<size_t>(4 * N));
    // The session supplies the HOIST-USR cache, pooled frames and pool.
    rt::ExecStats St = S.run(*L, M, B);
    std::cout << What << ": parallel=" << St.RanParallel
              << " exact-test=" << St.UsedExactTest << "\n";
  };
  Run(1, "injective Q (direct shared updates)");
  Run(0, "colliding Q (private copies + merge)");
  return 0;
}
