//===- examples/nonlinear_monotonic.cpp - Sec. 3.3 monotonicity -----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Non-linear (index-array) accesses: every iteration writes the block
// A[IB(i)-1 .. IB(i)+LEN-2]. No affine test can disambiguate this; the
// monotonicity rule of Sec. 3.3 extracts the O(N) predicate
//   AND_{i} ( IB(i+1) > IB(i) + LEN - 1 )
// (compare Fig. 3(b)'s AND_i NS <= 32*(IB(i+1)-IA(i)-IB(i)+1)). The
// example evaluates the predicate against a monotone and an overlapping
// index array and executes the loop accordingly.
//
//===----------------------------------------------------------------------===//

#include "pdag/PredEval.h"
#include "session/Session.h"

#include <iostream>

using namespace halo;

int main() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  usr::USRContext U(Sym, P);
  ir::Program Prog(Sym, P);
  ir::Subroutine *Main = Prog.makeSubroutine("main");

  sym::SymbolId A = Sym.symbol("A", 0, true);
  sym::SymbolId IB = Sym.symbol("IB", 0, true);
  Main->declareArray(ir::ArrayDecl{A, Sym.mulConst(Sym.symRef("N"), 8),
                                   false});
  Main->declareArray(ir::ArrayDecl{IB, nullptr, true});

  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId J = Sym.symbol("j", 2);
  ir::DoLoop *L = Prog.make<ir::DoLoop>("blocks", I, Sym.intConst(1),
                                        Sym.symRef("N"), 1);
  ir::DoLoop *Inner = Prog.make<ir::DoLoop>("blocks_j", J, Sym.intConst(1),
                                            Sym.intConst(4), 2);
  const sym::Expr *Off = Sym.addConst(
      Sym.add(Sym.arrayRef(IB, Sym.symRef(I)), Sym.symRef(J)), -2);
  Inner->append(Prog.make<ir::AssignStmt>(
      ir::ArrayAccess{A, Off}, std::vector<ir::ArrayAccess>{}, false, 16));
  L->append(Inner);

  // One session: the loop is analyzed once, then executed under its
  // cached plan against two different datasets below.
  session::SessionOptions SO;
  SO.Threads = 4;
  session::Session S(Prog, U, SO);
  const session::PreparedLoop &PL = S.prepare(*L);
  const analysis::LoopPlan &Plan = PL.Plan;
  std::cout << "classification: " << Plan.classString() << "\n";
  std::cout << "monotonicity rule fired "
            << PL.FactorStats.MonotonicityRule << " time(s)\n";

  for (const analysis::ArrayPlan &AP : Plan.Arrays)
    for (const pdag::CascadeStage &St : AP.Output.Stages)
      std::cout << "output test O(N^" << St.Depth
                << "): " << St.P->toString(Sym) << "\n";

  auto Run = [&](std::vector<int64_t> IBVals, const char *What) {
    rt::Memory M;
    sym::Bindings B;
    int64_t N = static_cast<int64_t>(IBVals.size());
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding AB;
    AB.Lo = 1;
    AB.Vals = std::move(IBVals);
    B.setArray(IB, AB);
    M.alloc(A, static_cast<size_t>(8 * N + 16));
    rt::ExecStats St = S.run(*L, M, B);
    std::cout << What << ": ran "
              << (St.RanParallel ? "PARALLEL" : "sequential")
              << (St.UsedTLS ? " (speculative)" : "") << "\n";
  };
  // Monotone with gaps >= 4: the predicate passes, the loop runs DOALL.
  Run({1, 6, 11, 16, 21, 26, 31, 36}, "monotone IB  ");
  // Overlapping blocks: the predicate fails, execution stays safe.
  Run({1, 3, 5, 7, 9, 11, 13, 15}, "overlapping IB");
  return 0;
}
