//===- bench/fig13_scalability.cpp - Figure 13 harness --------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Speedup scalability of the SPEC2000/2006 benchmarks from 1 to 16
// threads (paper Figure 13). Speedup = sequential time / hybrid parallel
// time at each thread count.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace halo;
using namespace halo::benchutil;

int main() {
  auto Benches = suite::buildSpec2000();
  const unsigned ThreadCounts[] = {1, 2, 4, 8, 16};
  std::printf(
      "=== Figure 13: SPEC2000/2006 speedup scalability (1..16 threads) "
      "===\n");
  std::printf("%-12s", "BENCH");
  for (unsigned T : ThreadCounts)
    std::printf(" %9up", T);
  std::printf("\n");
  for (auto &B : Benches) {
    std::printf("%-12s", B->Name.c_str());
    for (unsigned T : ThreadCounts) {
      BenchTiming R = timeBenchmark(*B, T, 8, true, 2);
      std::printf(" %9.2f", R.SeqSeconds / R.ParSeconds);
    }
    std::printf("\n");
  }
  return 0;
}
