//===- bench/BenchUtil.h - Shared harness helpers --------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing and execution helpers shared by the table/figure harnesses.
/// Each harness regenerates one table or figure of the paper's evaluation
/// (see DESIGN.md, per-experiment index).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_BENCH_BENCHUTIL_H
#define HALO_BENCH_BENCHUTIL_H

#include "session/Session.h"
#include "suite/Suite.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace halo {
namespace benchutil {

inline double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// One benchmark's timing under a given thread count and analyzer options.
struct BenchTiming {
  double SeqSeconds = 0;       ///< All loops, sequential interpretation.
  double ParSeconds = 0;       ///< All loops under their plans.
  double TestOverheadSec = 0;  ///< Predicate + CIV + bounds + exact time.
  bool AnyTLS = false;
  /// Cascade evaluation counters from the best parallel repetition (the
  /// compiled/interpreted split and the invariant-memoization win).
  uint64_t PredMemoHits = 0;
  uint64_t CompiledPredEvals = 0;
  uint64_t InterpPredEvals = 0;
  /// Frame-pool effectiveness across the best repetition.
  uint64_t FrameBinds = 0;
  uint64_t FrameRebindsSkipped = 0;
  /// Exact-test (HOIST-USR) evaluations by engine, and the enumeration
  /// work the compiled interval-run engine avoided.
  uint64_t CompiledUSREvals = 0;
  uint64_t InterpUSREvals = 0;
  uint64_t USRPointsAvoided = 0;
};

/// Builds a session for \p B sized for \p Threads workers: every bench
/// harness runs through halo::Session, which owns the plan cache,
/// compiled cascades, HOIST-USR cache, frame pool and thread pool.
inline session::Session makeSession(suite::Benchmark &B, unsigned Threads,
                                    bool CompiledPreds = true) {
  session::SessionOptions SO;
  SO.Threads = Threads;
  SO.UseCompiledPredicates = CompiledPreds;
  // The A/B toggle selects the fully-interpreted runtime: tree-walking
  // predicates and point-materializing exact tests together.
  SO.UseCompiledUSRs = CompiledPreds;
  return session::Session(B.prog(), B.usr(), SO);
}

/// Prepares every measured loop of \p B in \p S once (the paper's static
/// phase), probing with a dataset at \p Scale.
inline void prepareBenchmark(session::Session &S, suite::Benchmark &B,
                             int64_t Scale, bool RuntimeTests = true) {
  rt::Memory M;
  sym::Bindings Bd;
  B.Setup(M, Bd, Scale);
  for (const suite::LoopSpec &LS : B.Loops) {
    analysis::AnalyzerOptions Opts;
    Opts.RuntimeTests = RuntimeTests;
    Opts.Probe = &Bd;
    Opts.HoistableContext = LS.Hoistable;
    S.prepare(*LS.Loop, Opts);
  }
}

/// Analyzes every loop of \p B once (into a session) and executes the
/// whole benchmark (all measured loops, in order) sequentially and under
/// the plans. Scale sizes the synthetic datasets so loop granularities
/// are large enough to amortize thread spawning (the paper makes the same
/// point about PERFECT-CLUB's outdated small datasets in Sec. 6.2).
inline BenchTiming timeBenchmark(suite::Benchmark &B, unsigned Threads,
                                 int64_t Scale,
                                 bool RuntimeTests = true,
                                 int Repeats = 3,
                                 bool CompiledPreds = true) {
  BenchTiming Out;

  // One long-lived session, as in the paper's runtime: plans, compiled
  // cascades and pooled frames are set up once and amortized across every
  // repeated execution below.
  session::Session S = makeSession(B, Threads, CompiledPreds);
  prepareBenchmark(S, B, Scale, RuntimeTests);

  double SeqBest = 1e30, ParBest = 1e30, OvAtBest = 0;
  for (int R = 0; R < Repeats; ++R) {
    {
      rt::Memory M;
      sym::Bindings Bd;
      B.Setup(M, Bd, Scale);
      double T0 = nowSeconds();
      for (const suite::LoopSpec &LS : B.Loops)
        S.runSequential(*LS.Loop, M, Bd);
      SeqBest = std::min(SeqBest, nowSeconds() - T0);
    }
    {
      rt::Memory M;
      sym::Bindings Bd;
      B.Setup(M, Bd, Scale);
      double T0 = nowSeconds();
      double Ov = 0;
      bool TLS = false;
      uint64_t Memo = 0, Compiled = 0, Interp = 0, Binds = 0, Skips = 0;
      uint64_t UsrC = 0, UsrI = 0, UsrAvoided = 0;
      for (const suite::LoopSpec &LS : B.Loops) {
        rt::ExecStats St = S.run(*LS.Loop, M, Bd);
        Ov += St.PredicateSeconds + St.CivSliceSeconds +
              St.ExactTestSeconds + St.BoundsCompSeconds;
        TLS |= St.UsedTLS;
        Memo += St.PredMemoHits;
        Compiled += St.CompiledPredEvals;
        Interp += St.InterpPredEvals;
        Binds += St.FrameBinds;
        Skips += St.FrameRebindsSkipped;
        UsrC += St.CompiledUSREvals;
        UsrI += St.InterpUSREvals;
        UsrAvoided += St.USRPointsAvoided;
      }
      double T = nowSeconds() - T0;
      if (T < ParBest) {
        ParBest = T;
        OvAtBest = Ov;
        Out.PredMemoHits = Memo;
        Out.CompiledPredEvals = Compiled;
        Out.InterpPredEvals = Interp;
        Out.FrameBinds = Binds;
        Out.FrameRebindsSkipped = Skips;
        Out.CompiledUSREvals = UsrC;
        Out.InterpUSREvals = UsrI;
        Out.USRPointsAvoided = UsrAvoided;
      }
      Out.AnyTLS |= TLS;
    }
  }
  Out.SeqSeconds = SeqBest;
  Out.ParSeconds = ParBest;
  Out.TestOverheadSec = OvAtBest;
  return Out;
}

} // namespace benchutil
} // namespace halo

#endif // HALO_BENCH_BENCHUTIL_H
