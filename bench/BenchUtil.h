//===- bench/BenchUtil.h - Shared harness helpers --------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing and execution helpers shared by the table/figure harnesses.
/// Each harness regenerates one table or figure of the paper's evaluation
/// (see DESIGN.md, per-experiment index).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_BENCH_BENCHUTIL_H
#define HALO_BENCH_BENCHUTIL_H

#include "suite/Suite.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace halo {
namespace benchutil {

inline double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// One benchmark's timing under a given thread count and analyzer options.
struct BenchTiming {
  double SeqSeconds = 0;       ///< All loops, sequential interpretation.
  double ParSeconds = 0;       ///< All loops under their plans.
  double TestOverheadSec = 0;  ///< Predicate + CIV + bounds + exact time.
  bool AnyTLS = false;
  /// Cascade evaluation counters from the best parallel repetition (the
  /// compiled/interpreted split and the invariant-memoization win).
  uint64_t PredMemoHits = 0;
  uint64_t CompiledPredEvals = 0;
  uint64_t InterpPredEvals = 0;
};

/// Analyzes every loop of \p B once and executes the whole benchmark
/// (all measured loops, in order) sequentially and under the plans.
/// Scale sizes the synthetic datasets so loop granularities are large
/// enough to amortize thread spawning (the paper makes the same point
/// about PERFECT-CLUB's outdated small datasets in Sec. 6.2).
inline BenchTiming timeBenchmark(suite::Benchmark &B, unsigned Threads,
                                 int64_t Scale,
                                 bool RuntimeTests = true,
                                 int Repeats = 3,
                                 bool CompiledPreds = true) {
  BenchTiming Out;

  // Plans are compiled once (the paper's static phase).
  std::vector<analysis::LoopPlan> Plans;
  {
    rt::Memory M;
    sym::Bindings Bd;
    B.Setup(M, Bd, Scale);
    for (const suite::LoopSpec &LS : B.Loops) {
      analysis::AnalyzerOptions Opts;
      Opts.RuntimeTests = RuntimeTests;
      Opts.Probe = &Bd;
      Opts.HoistableContext = LS.Hoistable;
      analysis::HybridAnalyzer A(B.usr(), B.prog(), Opts);
      Plans.push_back(A.analyze(*LS.Loop));
    }
  }

  double SeqBest = 1e30, ParBest = 1e30, OvAtBest = 0;
  ThreadPool Pool(Threads);
  rt::HoistCache Hoist;
  // Long-lived executors, as in the paper's runtime: cascade stages are
  // compiled on first use and amortized across repeated executions.
  rt::Executor SeqE(B.prog(), B.usr());
  rt::Executor ParE(B.prog(), B.usr());
  ParE.setUseCompiledPredicates(CompiledPreds);
  for (int R = 0; R < Repeats; ++R) {
    {
      rt::Memory M;
      sym::Bindings Bd;
      B.Setup(M, Bd, Scale);
      double T0 = nowSeconds();
      for (const suite::LoopSpec &LS : B.Loops)
        SeqE.runSequential(*LS.Loop, M, Bd);
      SeqBest = std::min(SeqBest, nowSeconds() - T0);
    }
    {
      rt::Memory M;
      sym::Bindings Bd;
      B.Setup(M, Bd, Scale);
      double T0 = nowSeconds();
      double Ov = 0;
      bool TLS = false;
      uint64_t Memo = 0, Compiled = 0, Interp = 0;
      for (size_t I = 0; I < B.Loops.size(); ++I) {
        rt::ExecStats S = ParE.runPlanned(Plans[I], M, Bd, Pool, &Hoist);
        Ov += S.PredicateSeconds + S.CivSliceSeconds + S.ExactTestSeconds +
              S.BoundsCompSeconds;
        TLS |= S.UsedTLS;
        Memo += S.PredMemoHits;
        Compiled += S.CompiledPredEvals;
        Interp += S.InterpPredEvals;
      }
      double T = nowSeconds() - T0;
      if (T < ParBest) {
        ParBest = T;
        OvAtBest = Ov;
        Out.PredMemoHits = Memo;
        Out.CompiledPredEvals = Compiled;
        Out.InterpPredEvals = Interp;
      }
      Out.AnyTLS |= TLS;
    }
  }
  Out.SeqSeconds = SeqBest;
  Out.ParSeconds = ParBest;
  Out.TestOverheadSec = OvAtBest;
  return Out;
}

} // namespace benchutil
} // namespace halo

#endif // HALO_BENCH_BENCHUTIL_H
