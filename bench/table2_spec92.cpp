//===- bench/table2_spec92.cpp - Regenerates Table 2 ----------------------===//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//===----------------------------------------------------------------------===//
#include "bench/TableReport.h"
using namespace halo;
int main() {
  benchutil::printTable("Table 2: SPEC89/92 suite (paper Table 2)",
                        suite::buildSpec92(), 4, 1);
  return 0;
}
