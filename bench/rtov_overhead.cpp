//===- bench/rtov_overhead.cpp - Runtime-test overhead (RTov) -------------===//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
// Measures, per runtime-assisted benchmark, the share of the parallel
// runtime spent in predicate cascades, CIV slices, bounds computation and
// exact tests — the paper's claim is "under 1% of the parallel runtime"
// except track (47%), gromacs (3.4%) and calculix (8.5%).
//===----------------------------------------------------------------------===//
#include "bench/BenchUtil.h"
using namespace halo;
using namespace halo::benchutil;
int main() {
  std::printf("=== Runtime-test overhead (RTov, %% of parallel runtime) ===\n");
  std::printf("%-12s %-10s %-12s %s\n", "BENCH", "RTov%", "paper-RTov%", "NOTE");
  struct Row { const char *Name; const char *Paper; };
  const std::map<std::string, const char *> PaperRTov = {
      {"flo52", "0%"},   {"bdna", "0%"},     {"arc2d", ".2%"},
      {"dyfesm", ".3%"}, {"mdg", "0%"},      {"trfd", "0%"},
      {"track", "47%"},  {"spec77", "0%"},   {"ocean", ".1%"},
      {"qcd", "0%"},     {"nasa7", ".03%"},  {"wupwise", "0%"},
      {"apsi", ".2%"},   {"zeusmp", ".01%"}, {"gromacs", "3.4%"},
      {"calculix", "8.5%"}};
  auto Benches = suite::buildAllBenchmarks();
  for (auto &B : Benches) {
    auto It = PaperRTov.find(B->Name);
    if (It == PaperRTov.end())
      continue;
    BenchTiming T = timeBenchmark(*B, 4, 8, true);
    std::printf("%-12s %-10.2f %-12s %s\n", B->Name.c_str(),
                100.0 * T.TestOverheadSec / T.ParSeconds, It->second,
                T.AnyTLS ? "TLS used" : "");
  }
  return 0;
}
