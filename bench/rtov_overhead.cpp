//===- bench/rtov_overhead.cpp - Runtime-test overhead (RTov) -------------===//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
// Measures, per runtime-assisted benchmark, the share of the parallel
// runtime spent in predicate cascades, CIV slices, bounds computation and
// exact tests — the paper's claim is "under 1% of the parallel runtime"
// except track (47%), gromacs (3.4%) and calculix (8.5%).
//
// Three sections:
//  1. a micro-benchmark of one O(N) cascade stage at N = 1e6 comparing the
//     tree-walking interpreter against the compiled bytecode evaluator
//     (serial and chunked-parallel), the direct measure of the
//     compile-once/run-many win;
//  2. the analyze-once / execute-many benchmark: the same plan executed
//     repeatedly through halo::Session, reporting 1st-execution vs
//     steady-state per-execution predicate overhead (frame binding and
//     cascade sorting amortize away) with exact result parity against the
//     reference interpreter path;
//  3. the per-benchmark RTov table, reported for both evaluators so the
//     compiled/interpreted split is visible end to end.
//===----------------------------------------------------------------------===//
#include "bench/BenchUtil.h"

#include "pdag/PredCompile.h"
#include "pdag/PredEval.h"
#include "usr/USRCompile.h"
#include "usr/USREval.h"

#include <algorithm>
#include <utility>

using namespace halo;
using namespace halo::benchutil;

namespace {

double bestOf(int Reps, const std::function<double()> &Run) {
  double Best = 1e30;
  for (int R = 0; R < Reps; ++R)
    Best = std::min(Best, Run());
  return Best;
}

double medianOf(int Samples, const std::function<double()> &Run) {
  std::vector<double> T(static_cast<size_t>(Samples));
  for (double &X : T)
    X = Run();
  std::sort(T.begin(), T.end());
  return T[static_cast<size_t>(Samples) / 2];
}

/// Per-section results destined for BENCH_rtov.json: section -> key ->
/// value (times in ns/exec, ratios dimensionless, counters raw). Written
/// once at exit so the perf trajectory is machine-trackable across PRs.
std::map<std::string, std::map<std::string, double>> GJson;

void writeJson(const char *Path) {
  FILE *F = std::fopen(Path, "w");
  if (!F)
    return;
  std::fprintf(F, "{\n");
  size_t SI = 0;
  for (const auto &S : GJson) {
    std::fprintf(F, "  \"%s\": {", S.first.c_str());
    size_t KI = 0;
    for (const auto &KV : S.second)
      std::fprintf(F, "%s\n    \"%s\": %.3f", KI++ ? "," : "",
                   KV.first.c_str(), KV.second);
    std::fprintf(F, "\n  }%s\n", ++SI < GJson.size() ? "," : "");
  }
  std::fprintf(F, "}\n");
  std::fclose(F);
}

/// One O(N) cascade stage at N = 1e6: the Fig. 3b shape
/// ALL(i=1..N-1: NS >= 0 and IB(i) <= IB(i+1)) with an invariant conjunct
/// (memoized by the compiled evaluator) and a monotone index array.
void microBench() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  const int64_t N = 1000000;
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  const sym::Expr *Ii = Sym.symRef(I);
  const pdag::Pred *Body =
      P.and2(P.ge0(Sym.symRef(Sym.symbol("NS"))),
             P.le(Sym.arrayRef(IB, Ii), Sym.arrayRef(IB, Sym.addConst(Ii, 1))));
  const pdag::Pred *Stage =
      P.loopAll(I, Sym.intConst(1), Sym.addConst(Sym.symRef(Sym.symbol("n")), -1),
                Body);

  sym::Bindings B;
  B.setScalar(Sym.symbol("n"), N);
  B.setScalar(Sym.symbol("NS"), 7);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.resize(static_cast<size_t>(N));
  for (int64_t K = 0; K < N; ++K)
    A.Vals[static_cast<size_t>(K)] = K / 2;
  B.setArray(IB, A);

  auto CP = pdag::CompiledPred::compile(Stage, Sym);

  // Randomized first-failure parity, aborting: plant a violation (false)
  // and/or a truncation (the IB(i+1) read at the new end goes OOB:
  // conservative unknown) at random iterations. The OUTCOME encodes
  // which iteration decided first — interpreter, scalar bytecode and
  // block tier must agree bit for bit, serial and chunked-parallel.
  {
    ThreadPool Pool(4);
    uint64_t Seed = 0x5eedULL;
    auto Next = [&Seed] {
      Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
      return Seed >> 33;
    };
    for (int T = 0; T < 32; ++T) {
      sym::ArrayBinding A2 = A;
      if (Next() % 2) // False lane: IB(k) > IB(k+1) at iteration k.
        A2.Vals[1 + Next() % static_cast<uint64_t>(N - 2)] = -1;
      if (Next() % 2) // Poison lane: reads past the new end are OOB.
        A2.Vals.resize(1 + Next() % static_cast<uint64_t>(N - 1));
      sym::Bindings B2 = B;
      B2.setArray(IB, A2);
      auto Ref = pdag::tryEvalPred(Stage, B2);
      if (CP->eval(B2, nullptr, pdag::BlockEval::Off) != Ref ||
          CP->eval(B2, nullptr, pdag::BlockEval::Force) != Ref ||
          CP->evalParallel(B2, Pool, nullptr, 4096, nullptr,
                           pdag::BlockEval::Force) != Ref)
        std::abort(); // First-failure parity violated.
    }
  }

  const int Reps = 5;
  double Interp = medianOf(Reps, [&] {
    double T0 = nowSeconds();
    bool R = pdag::tryEvalPred(Stage, B).value_or(false);
    if (!R)
      std::abort();
    return nowSeconds() - T0;
  });
  pdag::EvalStats ScalStats;
  double Scalar = medianOf(Reps, [&] {
    ScalStats = pdag::EvalStats();
    double T0 = nowSeconds();
    bool R = CP->eval(B, &ScalStats, pdag::BlockEval::Off).value_or(false);
    if (!R)
      std::abort();
    return nowSeconds() - T0;
  });
  pdag::EvalStats BlkStats;
  double Block = medianOf(Reps, [&] {
    BlkStats = pdag::EvalStats();
    double T0 = nowSeconds();
    bool R = CP->eval(B, &BlkStats, pdag::BlockEval::Force).value_or(false);
    if (!R)
      std::abort();
    return nowSeconds() - T0;
  });
  if (ScalStats.BlockEvals != 0 || BlkStats.BlockEvals == 0)
    std::abort(); // The tier toggle must actually route.

  std::printf("=== Compiled cascade stage, O(N) at N=1e6 (median of %d) ===\n",
              Reps);
  std::printf("%-22s %10s %9s %10s %8s %9s %9s\n", "EVALUATOR", "ms",
              "ns/iter", "speedup", "blockEv", "scalarEv", "poisoned");
  std::printf("%-22s %10.2f %9.2f %10s %8s %9s %9s\n", "interpreter",
              1e3 * Interp, 1e9 * Interp / N, "1.00x", "-", "-", "-");
  std::printf("%-22s %10.2f %9.2f %9.2fx %8llu %9llu %9llu\n",
              "compiled scalar, 1t", 1e3 * Scalar, 1e9 * Scalar / N,
              Interp / Scalar,
              static_cast<unsigned long long>(ScalStats.BlockEvals),
              static_cast<unsigned long long>(ScalStats.ScalarEvals),
              static_cast<unsigned long long>(ScalStats.LanesPoisoned));
  std::printf("%-22s %10.2f %9.2f %9.2fx %8llu %9llu %9llu\n",
              "compiled block, 1t", 1e3 * Block, 1e9 * Block / N,
              Interp / Block,
              static_cast<unsigned long long>(BlkStats.BlockEvals),
              static_cast<unsigned long long>(BlkStats.ScalarEvals),
              static_cast<unsigned long long>(BlkStats.LanesPoisoned));
  std::printf("block tier vs scalar bytecode (1 thread): %.2fx\n",
              Scalar / Block);
  double Par4 = 0;
  for (unsigned T : {2u, 4u}) {
    ThreadPool Pool(T);
    double Par = medianOf(Reps, [&] {
      double T0 = nowSeconds();
      bool R = CP->evalParallel(B, Pool).value_or(false);
      if (!R)
        std::abort();
      return nowSeconds() - T0;
    });
    if (T == 4)
      Par4 = Par;
    std::printf("compiled block, %ut    %10.2f %9.2f %9.2fx\n", T, 1e3 * Par,
                1e9 * Par / N, Interp / Par);
  }
  std::printf("bytecode=%zu instrs, memo-hits/eval=%llu\n\n", CP->codeSize(),
              static_cast<unsigned long long>(BlkStats.MemoHits));

  auto &J = GJson["loopall_n1e6"];
  J["interp_ns_per_exec"] = 1e9 * Interp;
  J["scalar_ns_per_exec"] = 1e9 * Scalar;
  J["block_ns_per_exec"] = 1e9 * Block;
  J["block_par4_ns_per_exec"] = 1e9 * Par4;
  J["speedup_block_vs_scalar"] = Scalar / Block;
  J["speedup_block_vs_interp"] = Interp / Block;
  J["block_evals"] = static_cast<double>(BlkStats.BlockEvals);
  J["scalar_evals"] = static_cast<double>(ScalStats.ScalarEvals);
  J["lanes_poisoned"] = static_cast<double>(BlkStats.LanesPoisoned);
}

/// The execute-many fixture: one loop writing three symbolically-strided
/// arrays (each needs its O(1) predicate s_k >= 1) plus a Fig. 3(b)-style
/// monotone block write (the O(N) monotonicity predicate over IB). The
/// cascade therefore evaluates several compiled stages per execution —
/// exactly the per-execution frame-bind cost the session's pooled frames
/// amortize away.
struct ReuseFixture {
  sym::Context Sym;
  pdag::PredContext P{Sym};
  usr::USRContext U{Sym, P};
  ir::Program Prog{Sym, P};
  ir::DoLoop *L = nullptr;
  sym::SymbolId A = 0, IB = 0;
  sym::SymbolId X[3] = {0, 0, 0};
  int64_t N = 256;

  ReuseFixture() {
    ir::Subroutine *Main = Prog.makeSubroutine("main");
    A = Sym.symbol("A", 0, /*IsArray=*/true);
    IB = Sym.symbol("IB", 0, /*IsArray=*/true);
    Main->declareArray(
        ir::ArrayDecl{A, Sym.mulConst(Sym.symRef("N"), 8), false});
    Main->declareArray(ir::ArrayDecl{IB, nullptr, true});
    sym::SymbolId I = Sym.symbol("i", 1);
    sym::SymbolId J = Sym.symbol("j", 2);
    L = Prog.make<ir::DoLoop>("blocks", I, Sym.intConst(1), Sym.symRef("N"),
                              1);
    for (int K = 0; K < 3; ++K) {
      std::string Name = "X" + std::to_string(K);
      X[K] = Sym.symbol(Name, 0, /*IsArray=*/true);
      Main->declareArray(ir::ArrayDecl{
          X[K], Sym.mul(Sym.symRef("N"), Sym.symRef("s" + std::to_string(K))),
          false});
      // X_k[(i-1) * s_k]: output independence needs s_k >= 1 (O(1)).
      const sym::Expr *Off = Sym.mul(Sym.addConst(Sym.symRef(I), -1),
                                     Sym.symRef("s" + std::to_string(K)));
      L->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{X[K], Off}, std::vector<ir::ArrayAccess>{}, false,
          2));
    }
    ir::DoLoop *Inner = Prog.make<ir::DoLoop>("blocks_j", J, Sym.intConst(1),
                                              Sym.intConst(4), 2);
    const sym::Expr *Off = Sym.addConst(
        Sym.add(Sym.arrayRef(IB, Sym.symRef(I)), Sym.symRef(J)), -2);
    Inner->append(Prog.make<ir::AssignStmt>(
        ir::ArrayAccess{A, Off}, std::vector<ir::ArrayAccess>{}, false, 4));
    L->append(Inner);
  }

  void setup(rt::Memory &M, sym::Bindings &B) {
    B.setScalar(Sym.symbol("N"), N);
    for (int K = 0; K < 3; ++K) {
      B.setScalar(Sym.symbol("s" + std::to_string(K)), 1);
      M.alloc(X[K], static_cast<size_t>(N));
    }
    sym::ArrayBinding AB;
    AB.Lo = 1;
    for (int64_t K = 0; K < N; ++K)
      AB.Vals.push_back(1 + K * 4); // Monotone, disjoint blocks.
    B.setArray(IB, AB);
    M.alloc(A, static_cast<size_t>(4 * N + 16));
  }

  session::Session makeSession(unsigned Threads, bool Compiled) {
    session::SessionOptions SO;
    SO.Threads = Threads;
    SO.UseCompiledPredicates = Compiled;
    return session::Session(Prog, U, SO);
  }
};

/// Per-execution predicate overhead of the 1st vs steady-state execution
/// of one cached plan. The 1st execution of a fresh session pays frame
/// binding (and worker-frame copies under a multi-thread pool); from the
/// 2nd on, the bindings stamp is unchanged, so the pooled frames are
/// reused without any re-binding.
void sessionReuseBench() {
  ReuseFixture F;
  const int KFresh = 50;   // Fresh sessions averaged for the 1st-exec column.
  const int MSteady = 500; // Executions per session for the steady column.

  std::printf("=== Analyze-once / execute-many: per-execution predicate "
              "overhead (N=%lld) ===\n",
              static_cast<long long>(F.N));
  std::printf("%-8s %-14s %-14s %-9s %-8s %-8s %s\n", "THREADS",
              "1st-exec(us)", "steady(us)", "speedup", "binds", "reuses",
              "parity");

  for (unsigned Threads : {1u, 4u}) {
    // Reference: the tree-walking interpreter path over the same data and
    // execution count (fresh per-evaluation state by construction).
    rt::Memory MRef;
    sym::Bindings BRef;
    F.setup(MRef, BRef);
    {
      session::Session SRef = F.makeSession(Threads, /*Compiled=*/false);
      for (int E = 0; E < MSteady; ++E)
        SRef.run(*F.L, MRef, BRef);
    }

    // 1st-execution column: execution #1 of KFresh fresh sessions.
    double FirstSum = 0;
    for (int K = 0; K < KFresh; ++K) {
      session::Session S = F.makeSession(Threads, /*Compiled=*/true);
      rt::Memory M;
      sym::Bindings B;
      F.setup(M, B);
      S.prepare(*F.L); // Analyze/compile outside the measured execution.
      FirstSum += S.run(*F.L, M, B).PredicateSeconds;
    }

    // Steady-state column: executions 2..MSteady of one session.
    session::Session S = F.makeSession(Threads, /*Compiled=*/true);
    rt::Memory M;
    sym::Bindings B;
    F.setup(M, B);
    double SteadySum = 0;
    uint64_t Binds = 0, Reuses = 0;
    bool AllParallel = true;
    for (int E = 0; E < MSteady; ++E) {
      rt::ExecStats St = S.run(*F.L, M, B);
      if (E > 0) {
        SteadySum += St.PredicateSeconds;
        Binds += St.FrameBinds;
        Reuses += St.FrameRebindsSkipped;
      }
      AllParallel &= St.RanParallel;
    }
    if (!AllParallel)
      std::abort(); // The monotone predicate must pass on every execution.

    // Exact result parity vs. the interpreter reference, on every
    // written array.
    bool Parity = true;
    for (sym::SymbolId Arr : {F.A, F.X[0], F.X[1], F.X[2]}) {
      const auto &Ref = std::as_const(MRef).arrays().at(Arr);
      const auto &Got = std::as_const(M).arrays().at(Arr);
      Parity &= Ref.size() == Got.size() &&
                std::equal(Ref.begin(), Ref.end(), Got.begin());
    }

    double FirstUs = 1e6 * FirstSum / KFresh;
    double SteadyUs = 1e6 * SteadySum / (MSteady - 1);
    auto &J = GJson["session_reuse_n256"];
    J["first_exec_ns_t" + std::to_string(Threads)] = 1e3 * FirstUs;
    J["steady_ns_t" + std::to_string(Threads)] = 1e3 * SteadyUs;
    std::printf("%-8u %-14.2f %-14.2f %6.2fx   %-8llu %-8llu %s\n", Threads,
                FirstUs, SteadyUs, FirstUs / SteadyUs,
                static_cast<unsigned long long>(Binds),
                static_cast<unsigned long long>(Reuses),
                Parity ? "exact" : "MISMATCH");
    if (!Parity)
      std::abort();
  }
  std::printf("\n");
}

/// The compiled-USR half of the compile-once story: the HOIST-USR
/// emptiness test on the Fig. 3(b)-style OIND equation, interpreted
/// (point materialization, Θ(N²) on the triangular prefix) vs the
/// interval-run bytecode engine. Aborts on an answer mismatch — this is
/// the CI-smoke parity check for the compiled exact-test path.
void usrMicroBench() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  usr::USRContext U(Sym, P);
  const int64_t N = 2048;
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId K = Sym.symbol("k", 2);
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  auto WF = [&](sym::SymbolId V) {
    return U.interval(
        Sym.mulConst(Sym.addConst(Sym.arrayRef(IB, Sym.symRef(V)), -1), 32),
        Sym.intConst(32));
  };
  const usr::USR *Prior =
      U.recur(K, Sym.intConst(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
  const usr::USR *OInd = U.recur(I, Sym.intConst(1), Sym.symRef("N"),
                                 U.intersect(WF(I), Prior));

  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), N);
  sym::ArrayBinding A;
  A.Lo = 1;
  for (int64_t X = 0; X < N; ++X)
    A.Vals.push_back(1 + X * 2); // Monotone, disjoint blocks: empty OIND.
  B.setArray(IB, A);

  sym::Bindings BI = B;
  double T0 = nowSeconds();
  auto InterpAns = usr::evalUSREmpty(OInd, BI);
  double Interp = nowSeconds() - T0;

  auto CU = usr::CompiledUSR::compile(OInd, Sym);
  usr::CompiledUSR::PooledFrame PF;
  usr::USREvalStats St;
  double Best = 1e30;
  std::optional<bool> Ans;
  for (int R = 0; R < 3; ++R) {
    sym::Bindings BC = B; // Fresh stamp per repetition: no frame reuse.
    St = usr::USREvalStats();
    T0 = nowSeconds();
    Ans = CU->evalEmptyPooled(PF, BC, 1u << 22, &St);
    Best = std::min(Best, nowSeconds() - T0);
  }
  if (!InterpAns || InterpAns != Ans)
    std::abort(); // Compiled/interpreted emptiness must agree.

  std::printf("=== HOIST-USR exact test, Fig. 3(b) OIND at N=%lld ===\n",
              static_cast<long long>(N));
  std::printf("%-26s %10s %10s\n", "EVALUATOR", "ms", "speedup");
  std::printf("%-26s %10.2f %10s\n", "interpreted evalUSREmpty",
              1e3 * Interp, "1.00x");
  std::printf("%-26s %10.2f %9.0fx\n", "compiled interval runs", 1e3 * Best,
              Interp / Best);
  std::printf("runs/eval=%llu, points-avoided/eval=%llu, answer=%s\n\n",
              static_cast<unsigned long long>(St.RunsProduced),
              static_cast<unsigned long long>(St.PointsAvoided),
              *Ans ? "empty (independent)" : "not-empty");
  auto &J = GJson["usr_oind_n2048"];
  J["interp_ns_per_exec"] = 1e9 * Interp;
  J["compiled_ns_per_exec"] = 1e9 * Best;
  J["speedup_compiled_vs_interp"] = Interp / Best;
}

/// The USR half of the block tier: a gated root recurrence whose gate is
/// probed once per iteration — batched W iterations per dispatch when
/// BlockGates is on, one predicate evaluation per iteration when off.
/// The gate is false everywhere (empty result), so the emptiness sweep
/// pays the full N gate probes: the directly-measured gate-batching win.
/// Aborts if batched and scalar sweeps (or the interpreter) disagree.
void usrGateSweepBench() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  usr::USRContext U(Sym, P);
  const int64_t N = 1000000;
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  const usr::USR *Body =
      U.gate(P.gt(Sym.arrayRef(IB, Sym.symRef(I)), Sym.intConst(1 << 30)),
             U.interval(Sym.symRef(I), Sym.intConst(1)));
  const usr::USR *R = U.recur(I, Sym.intConst(1), Sym.symRef("N"), Body);

  sym::Bindings B;
  B.setScalar(Sym.symbol("N"), N);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.resize(static_cast<size_t>(N));
  for (int64_t X = 0; X < N; ++X)
    A.Vals[static_cast<size_t>(X)] = X % 4096; // Never clears the gate.
  B.setArray(IB, A);

  auto CU = usr::CompiledUSR::compile(R, Sym);
  const int Reps = 5;
  usr::USREvalStats StB, StS;
  std::optional<bool> AnsB, AnsS;
  double Block = medianOf(Reps, [&] {
    StB = usr::USREvalStats();
    double T0 = nowSeconds();
    AnsB = CU->evalEmpty(B, 1u << 22, &StB, /*BlockGates=*/true);
    return nowSeconds() - T0;
  });
  double Scalar = medianOf(Reps, [&] {
    StS = usr::USREvalStats();
    double T0 = nowSeconds();
    AnsS = CU->evalEmpty(B, 1u << 22, &StS, /*BlockGates=*/false);
    return nowSeconds() - T0;
  });
  sym::Bindings BI = B;
  if (AnsB != AnsS || AnsB != usr::evalUSREmpty(R, BI) ||
      AnsB != std::optional<bool>(true))
    std::abort(); // Batched/scalar/interpreted sweeps must agree.
  if (StB.GateBlockEvals == 0 || StS.GateBlockEvals != 0)
    std::abort(); // The BlockGates toggle must actually route.

  std::printf("=== USR gated recurrence sweep at N=1e6 (median of %d) ===\n",
              Reps);
  std::printf("%-26s %10s %9s %10s %9s\n", "GATE SWEEP", "ms", "ns/iter",
              "speedup", "gateEv");
  std::printf("%-26s %10.2f %9.2f %10s %9llu\n", "scalar (1/iteration)",
              1e3 * Scalar, 1e9 * Scalar / N, "1.00x",
              static_cast<unsigned long long>(StS.GateScalarEvals));
  std::printf("%-26s %10.2f %9.2f %9.2fx %9llu\n", "batched (W/dispatch)",
              1e3 * Block, 1e9 * Block / N, Scalar / Block,
              static_cast<unsigned long long>(StB.GateBlockEvals));
  std::printf("\n");

  auto &J = GJson["usr_gate_sweep_n1e6"];
  J["scalar_ns_per_exec"] = 1e9 * Scalar;
  J["block_ns_per_exec"] = 1e9 * Block;
  J["speedup_block_vs_scalar"] = Scalar / Block;
  J["gate_block_evals"] = static_cast<double>(StB.GateBlockEvals);
  J["gate_lanes_poisoned"] = static_cast<double>(StB.GateLanesPoisoned);
}

} // namespace

int main() {
  microBench();
  sessionReuseBench();
  usrMicroBench();
  usrGateSweepBench();

  std::printf("=== Runtime-test overhead (RTov, %% of parallel runtime) ===\n");
  std::printf("%-12s %-10s %-10s %-12s %-10s %-6s %-6s %-12s %s\n", "BENCH",
              "RTov%", "interpRTov%", "paper-RTov%", "memo-hits", "usrC",
              "usrI", "usr-avoided", "NOTE");
  const std::map<std::string, const char *> PaperRTov = {
      {"flo52", "0%"},   {"bdna", "0%"},     {"arc2d", ".2%"},
      {"dyfesm", ".3%"}, {"mdg", "0%"},      {"trfd", "0%"},
      {"track", "47%"},  {"spec77", "0%"},   {"ocean", ".1%"},
      {"qcd", "0%"},     {"nasa7", ".03%"},  {"wupwise", "0%"},
      {"apsi", ".2%"},   {"zeusmp", ".01%"}, {"gromacs", "3.4%"},
      {"calculix", "8.5%"}};
  auto Benches = suite::buildAllBenchmarks();
  for (auto &B : Benches) {
    auto It = PaperRTov.find(B->Name);
    if (It == PaperRTov.end())
      continue;
    BenchTiming T = timeBenchmark(*B, 4, 8, true);
    BenchTiming TI = timeBenchmark(*B, 4, 8, true, 3, /*CompiledPreds=*/false);
    // Both engine paths must be governor-counted symmetrically: the
    // compiled session never falls back to interpreted exact tests and
    // vice versa.
    if (T.InterpUSREvals != 0 || TI.CompiledUSREvals != 0)
      std::abort();
    std::printf("%-12s %-10.2f %-10.2f %-12s %-10llu %-6llu %-6llu %-12llu "
                "%s\n",
                B->Name.c_str(), 100.0 * T.TestOverheadSec / T.ParSeconds,
                100.0 * TI.TestOverheadSec / TI.ParSeconds, It->second,
                static_cast<unsigned long long>(T.PredMemoHits),
                static_cast<unsigned long long>(T.CompiledUSREvals),
                static_cast<unsigned long long>(TI.InterpUSREvals),
                static_cast<unsigned long long>(T.USRPointsAvoided),
                T.AnyTLS ? "TLS used" : "");
  }
  writeJson("BENCH_rtov.json");
  return 0;
}
