//===- bench/rtov_overhead.cpp - Runtime-test overhead (RTov) -------------===//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
// Measures, per runtime-assisted benchmark, the share of the parallel
// runtime spent in predicate cascades, CIV slices, bounds computation and
// exact tests — the paper's claim is "under 1% of the parallel runtime"
// except track (47%), gromacs (3.4%) and calculix (8.5%).
//
// Two sections:
//  1. a micro-benchmark of one O(N) cascade stage at N = 1e6 comparing the
//     tree-walking interpreter against the compiled bytecode evaluator
//     (serial and chunked-parallel), the direct measure of the
//     compile-once/run-many win;
//  2. the per-benchmark RTov table, reported for both evaluators so the
//     compiled/interpreted split is visible end to end.
//===----------------------------------------------------------------------===//
#include "bench/BenchUtil.h"

#include "pdag/PredCompile.h"
#include "pdag/PredEval.h"

using namespace halo;
using namespace halo::benchutil;

namespace {

double bestOf(int Reps, const std::function<double()> &Run) {
  double Best = 1e30;
  for (int R = 0; R < Reps; ++R)
    Best = std::min(Best, Run());
  return Best;
}

/// One O(N) cascade stage at N = 1e6: the Fig. 3b shape
/// ALL(i=1..N-1: NS >= 0 and IB(i) <= IB(i+1)) with an invariant conjunct
/// (memoized by the compiled evaluator) and a monotone index array.
void microBench() {
  sym::Context Sym;
  pdag::PredContext P(Sym);
  const int64_t N = 1000000;
  sym::SymbolId I = Sym.symbol("i", 1);
  sym::SymbolId IB = Sym.symbol("IB", 0, /*IsArray=*/true);
  const sym::Expr *Ii = Sym.symRef(I);
  const pdag::Pred *Body =
      P.and2(P.ge0(Sym.symRef(Sym.symbol("NS"))),
             P.le(Sym.arrayRef(IB, Ii), Sym.arrayRef(IB, Sym.addConst(Ii, 1))));
  const pdag::Pred *Stage =
      P.loopAll(I, Sym.intConst(1), Sym.addConst(Sym.symRef(Sym.symbol("n")), -1),
                Body);

  sym::Bindings B;
  B.setScalar(Sym.symbol("n"), N);
  B.setScalar(Sym.symbol("NS"), 7);
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.resize(static_cast<size_t>(N));
  for (int64_t K = 0; K < N; ++K)
    A.Vals[static_cast<size_t>(K)] = K / 2;
  B.setArray(IB, A);

  auto CP = pdag::CompiledPred::compile(Stage, Sym);

  const int Reps = 5;
  double Interp = bestOf(Reps, [&] {
    double T0 = nowSeconds();
    bool R = pdag::tryEvalPred(Stage, B).value_or(false);
    if (!R)
      std::abort();
    return nowSeconds() - T0;
  });
  pdag::EvalStats Stats;
  double Serial = bestOf(Reps, [&] {
    double T0 = nowSeconds();
    bool R = CP->eval(B, &Stats).value_or(false);
    if (!R)
      std::abort();
    return nowSeconds() - T0;
  });

  std::printf("=== Compiled cascade stage, O(N) at N=1e6 (best of %d) ===\n",
              Reps);
  std::printf("%-22s %10s %10s\n", "EVALUATOR", "ms", "speedup");
  std::printf("%-22s %10.2f %10s\n", "interpreter", 1e3 * Interp, "1.00x");
  std::printf("%-22s %10.2f %9.2fx\n", "compiled, 1 thread", 1e3 * Serial,
              Interp / Serial);
  for (unsigned T : {2u, 4u}) {
    ThreadPool Pool(T);
    double Par = bestOf(Reps, [&] {
      double T0 = nowSeconds();
      bool R = CP->evalParallel(B, Pool).value_or(false);
      if (!R)
        std::abort();
      return nowSeconds() - T0;
    });
    std::printf("compiled, %u threads   %10.2f %9.2fx\n", T, 1e3 * Par,
                Interp / Par);
  }
  std::printf("bytecode=%zu instrs, memo-hits/eval=%llu\n\n", CP->codeSize(),
              static_cast<unsigned long long>(Stats.MemoHits / Reps));
}

} // namespace

int main() {
  microBench();

  std::printf("=== Runtime-test overhead (RTov, %% of parallel runtime) ===\n");
  std::printf("%-12s %-10s %-10s %-12s %-10s %s\n", "BENCH", "RTov%",
              "interpRTov%", "paper-RTov%", "memo-hits", "NOTE");
  const std::map<std::string, const char *> PaperRTov = {
      {"flo52", "0%"},   {"bdna", "0%"},     {"arc2d", ".2%"},
      {"dyfesm", ".3%"}, {"mdg", "0%"},      {"trfd", "0%"},
      {"track", "47%"},  {"spec77", "0%"},   {"ocean", ".1%"},
      {"qcd", "0%"},     {"nasa7", ".03%"},  {"wupwise", "0%"},
      {"apsi", ".2%"},   {"zeusmp", ".01%"}, {"gromacs", "3.4%"},
      {"calculix", "8.5%"}};
  auto Benches = suite::buildAllBenchmarks();
  for (auto &B : Benches) {
    auto It = PaperRTov.find(B->Name);
    if (It == PaperRTov.end())
      continue;
    BenchTiming T = timeBenchmark(*B, 4, 8, true);
    BenchTiming TI = timeBenchmark(*B, 4, 8, true, 3, /*CompiledPreds=*/false);
    std::printf("%-12s %-10.2f %-10.2f %-12s %-10llu %s\n", B->Name.c_str(),
                100.0 * T.TestOverheadSec / T.ParSeconds,
                100.0 * TI.TestOverheadSec / TI.ParSeconds, It->second,
                static_cast<unsigned long long>(T.PredMemoHits),
                T.AnyTLS ? "TLS used" : "");
  }
  return 0;
}
