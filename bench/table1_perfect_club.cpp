//===- bench/table1_perfect_club.cpp - Regenerates Table 1 ----------------===//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
// Per-loop classification and runtime-test overhead for the PERFECT-CLUB
// suite (paper Table 1), computed by the hybrid analyzer on the
// reconstructed benchmarks.
//===----------------------------------------------------------------------===//
#include "bench/TableReport.h"
using namespace halo;
int main() {
  benchutil::printTable("Table 1: PERFECT-CLUB suite (paper Table 1)",
                        suite::buildPerfectClub(), 4, 1);
  return 0;
}
