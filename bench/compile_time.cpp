//===- bench/compile_time.cpp - Sec. 3.6 compile-time microbench ----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Sec. 3.6: factorization is worst-case exponential but the typical USR
// is sparse in the operators that cause it, and Fourier-Motzkin is only
// exponential in the number of *eliminated* symbols (typically one).
// These benchmarks measure factorization wall time over growing summary
// shapes and the FM eliminator over a growing number of bound symbols.
//
//===----------------------------------------------------------------------===//

#include "factor/Factor.h"
#include "fuzz/Generator.h"
#include "pdag/FourierMotzkin.h"
#include "session/Session.h"
#include "summary/Independence.h"

#include <benchmark/benchmark.h>

#include <sstream>

using namespace halo;

namespace {

/// Factorize a union of K gated subtraction terms (Fig. 4 shapes).
void BM_FactorGatedUnion(benchmark::State &State) {
  int64_t K = State.range(0);
  for (auto _ : State) {
    sym::Context Sym;
    pdag::PredContext P(Sym);
    usr::USRContext U(Sym, P);
    std::vector<const usr::USR *> Terms;
    for (int64_t J = 0; J < K; ++J) {
      const pdag::Pred *G =
          P.ne(Sym.symRef("g" + std::to_string(J)), Sym.intConst(1));
      const usr::USR *S = U.subtract(
          U.interval(Sym.intConst(0), Sym.symRef("a" + std::to_string(J))),
          U.interval(Sym.intConst(0), Sym.symRef("b" + std::to_string(J))));
      Terms.push_back(U.gate(G, S));
    }
    factor::Factorizer F(U);
    auto *Pred = F.factor(U.unionN(Terms));
    benchmark::DoNotOptimize(Pred);
  }
  State.SetComplexityN(K);
}

/// Factorize the triangular output-independence equation over an index
/// array (the expensive shape; exercises the monotonicity rule).
void BM_FactorTriangularOInd(benchmark::State &State) {
  for (auto _ : State) {
    sym::Context Sym;
    pdag::PredContext P(Sym);
    usr::USRContext U(Sym, P);
    sym::SymbolId I = Sym.symbol("i", 1);
    sym::SymbolId K = Sym.symbol("k", 2);
    sym::SymbolId IB = Sym.symbol("IB", 0, true);
    auto WF = [&](sym::SymbolId V) {
      return U.interval(Sym.arrayRef(IB, Sym.symRef(V)), Sym.intConst(8));
    };
    const usr::USR *Prior =
        U.recur(K, Sym.intConst(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
    const usr::USR *OInd = U.recur(I, Sym.intConst(1), Sym.symRef("N"),
                                   U.intersect(WF(I), Prior));
    factor::Factorizer F(U);
    auto *Pred = F.factor(OInd);
    benchmark::DoNotOptimize(Pred);
  }
}

/// Fourier-Motzkin elimination over a growing number of bound symbols
/// (worst-case exponential — the paper eliminates one in practice).
void BM_FourierMotzkinSymbols(benchmark::State &State) {
  int64_t K = State.range(0);
  for (auto _ : State) {
    sym::Context Sym;
    pdag::PredContext P(Sym);
    sym::RangeEnv Env;
    const sym::Expr *E = Sym.symRef("c");
    for (int64_t J = 0; J < K; ++J) {
      sym::SymbolId V = Sym.symbol("v" + std::to_string(J), 1);
      Env.bind(V, Sym.intConst(1), Sym.symRef("N" + std::to_string(J)));
      E = Sym.add(E, Sym.mul(Sym.symRef(V),
                             Sym.symRef("a" + std::to_string(J))));
    }
    auto *Pred = pdag::reduceGE0(P, E, Env);
    benchmark::DoNotOptimize(Pred);
  }
  State.SetComplexityN(K);
}

/// Full prepare() of an FM-heavy fuzzed nest (seed 7: inner recurrences
/// drive the eliminator) — the cost a plan cache avoids on restart.
void BM_PrepareColdFMHeavy(benchmark::State &State) {
  fuzz::GenOptions GO;
  GO.Seed = 7;
  for (auto _ : State) {
    auto C = fuzz::generate(GO);
    session::Session S(C->prog(), C->usrCtx());
    benchmark::DoNotOptimize(&S.prepare(*C->Loop));
  }
}

/// The same nest warm-started from a serialized .hplan stream: load
/// re-interns and re-compiles bytecode (verified against the stream) but
/// skips analysis entirely. The BENCHMARKS.md plan-cache row is the ratio
/// of this to BM_PrepareColdFMHeavy.
void BM_PrepareWarmStart(benchmark::State &State) {
  fuzz::GenOptions GO;
  GO.Seed = 7;
  std::string Bytes;
  {
    auto C = fuzz::generate(GO);
    session::Session S(C->prog(), C->usrCtx());
    S.prepare(*C->Loop);
    std::ostringstream OS(std::ios::binary);
    S.savePlans(OS);
    Bytes = OS.str();
  }
  for (auto _ : State) {
    auto C = fuzz::generate(GO);
    session::Session S(C->prog(), C->usrCtx());
    std::istringstream IS(Bytes, std::ios::binary);
    S.loadPlans(IS);
    benchmark::DoNotOptimize(&S.prepare(*C->Loop));
  }
}

} // namespace

BENCHMARK(BM_FactorGatedUnion)->RangeMultiplier(2)->Range(2, 64)->Complexity();
BENCHMARK(BM_FactorTriangularOInd);
BENCHMARK(BM_FourierMotzkinSymbols)->DenseRange(1, 5)->Complexity();
BENCHMARK(BM_PrepareColdFMHeavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PrepareWarmStart)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
