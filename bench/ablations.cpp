//===- bench/ablations.cpp - Design-choice ablation harness ---------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Toggles the design choices DESIGN.md calls out and reports how each
// benchmark loop's classification degrades:
//
//  - no-MON   : monotonicity rule off (Sec. 3.3) — index-array output
//               independence (SOLVH, INTGRL, MXMULT) loses its O(N) test,
//  - no-FM    : Fourier-Motzkin off (Fig. 6b) — O(1) flow tests that need
//               loop-index elimination (CORREC_do711) degrade,
//  - no-INV   : invariant overestimates off (rule 1 of Fig. 5),
//  - no-RT    : all runtime tests off (the commercial-compiler proxy),
//  - no-CASC  : cascade separation / hoisting off (Sec. 3.5) — first
//               successful tests get more expensive.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace halo;

namespace {

analysis::AnalyzerOptions baseOpts(const sym::Bindings *Probe,
                                   bool Hoistable) {
  analysis::AnalyzerOptions O;
  O.Probe = Probe;
  O.HoistableContext = Hoistable;
  return O;
}

std::string classify(suite::Benchmark &B, const suite::LoopSpec &LS,
                     analysis::AnalyzerOptions Opts) {
  // Classification only: a single-worker session (no execution happens).
  session::SessionOptions SO;
  SO.Threads = 1;
  session::Session S(B.prog(), B.usr(), SO);
  return S.prepare(*LS.Loop, Opts).Plan.classString();
}

} // namespace

int main() {
  std::printf("=== Ablations: classification under disabled features ===\n");
  std::printf("%-10s %-16s %-20s %-20s %-20s %-20s %-12s\n", "BENCH", "LOOP",
              "FULL", "no-MON", "no-FM", "no-INV", "no-RT");
  auto Benches = suite::buildAllBenchmarks();
  for (auto &B : Benches) {
    rt::Memory M;
    sym::Bindings Bd;
    B->Setup(M, Bd, 1);
    for (const suite::LoopSpec &LS : B->Loops) {
      // Only show loops where some ablation changes the outcome.
      auto Opts = baseOpts(&Bd, LS.Hoistable);
      std::string Full = classify(*B, LS, Opts);

      auto NoMon = Opts;
      NoMon.Factor.Monotonicity = false;
      std::string SMon = classify(*B, LS, NoMon);

      auto NoFM = Opts;
      NoFM.Factor.FourierMotzkin = false;
      std::string SFM = classify(*B, LS, NoFM);

      auto NoInv = Opts;
      NoInv.Factor.InvariantOverestimates = false;
      std::string SInv = classify(*B, LS, NoInv);

      auto NoRT = Opts;
      NoRT.RuntimeTests = false;
      std::string SRT = classify(*B, LS, NoRT);

      if (SMon == Full && SFM == Full && SInv == Full && SRT == Full)
        continue;
      std::printf("%-10s %-16s %-20s %-20s %-20s %-20s %-12s\n",
                  B->Name.c_str(), LS.Name.c_str(), Full.c_str(),
                  SMon.c_str(), SFM.c_str(), SInv.c_str(), SRT.c_str());
    }
  }
  std::printf("\n(Unchanged loops are omitted. no-RT '%s' rows are the "
              "loops only the hybrid approach parallelizes.)\n",
              "STATIC-SEQ/TLS");
  return 0;
}
