//===- bench/usr_vs_predicate.cpp - Sec. 2.2/3 motivation microbench ------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The paper's central cost claim (Sec. 2.2 / Sec. 3): evaluating the
// independence USR exactly at runtime materializes every memory location
// involved in potential dependences, while the extracted predicate only
// *classifies* emptiness — typically O(1) or O(N) with tiny constants.
// This google-benchmark binary measures both on the Fig. 3(b)-style
// output-independence equation as N grows.
//
//===----------------------------------------------------------------------===//

#include "factor/Factor.h"
#include "pdag/PredEval.h"
#include "pdag/PredSimplify.h"
#include "summary/Independence.h"
#include "usr/USREval.h"

#include <benchmark/benchmark.h>

using namespace halo;

namespace {

/// Shared fixture: the monotone block-write OIND equation with index
/// array IB (the SOLVH HE pattern).
struct Setup {
  sym::Context Sym;
  pdag::PredContext P{Sym};
  usr::USRContext U{Sym, P};
  const usr::USR *OInd = nullptr;
  const pdag::Pred *Pred = nullptr;
  std::vector<pdag::CascadeStage> Stages;
  sym::SymbolId IB, I;

  Setup() {
    I = Sym.symbol("i", 1);
    IB = Sym.symbol("IB", 0, true);
    sym::SymbolId K = Sym.symbol("k", 2);
    auto WF = [&](sym::SymbolId V) {
      return U.interval(
          Sym.mulConst(
              Sym.addConst(Sym.arrayRef(IB, Sym.symRef(V)), -1), 32),
          Sym.intConst(32));
    };
    const usr::USR *Prior = U.recur(
        K, Sym.intConst(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
    OInd = U.recur(I, Sym.intConst(1), Sym.symRef("N"),
                   U.intersect(WF(I), Prior));
    factor::Factorizer F(U);
    Pred = pdag::simplify(P, F.factor(OInd));
    Stages = pdag::buildCascade(P, Pred);
  }

  sym::Bindings bindings(int64_t N) {
    sym::Bindings B;
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t X = 0; X < N; ++X)
      A.Vals.push_back(1 + X * 2); // Monotone, disjoint blocks.
    B.setArray(IB, A);
    return B;
  }
};

Setup &setup() {
  static Setup S;
  return S;
}

void BM_ExactUSREvaluation(benchmark::State &State) {
  Setup &S = setup();
  int64_t N = State.range(0);
  sym::Bindings B = S.bindings(N);
  for (auto _ : State) {
    auto V = usr::evalUSREmpty(S.OInd, B);
    benchmark::DoNotOptimize(V);
  }
  State.SetComplexityN(N);
}

void BM_PredicateCascade(benchmark::State &State) {
  Setup &S = setup();
  int64_t N = State.range(0);
  sym::Bindings B = S.bindings(N);
  for (auto _ : State) {
    bool Ok = false;
    for (const pdag::CascadeStage &St : S.Stages) {
      auto V = pdag::tryEvalPred(St.P, B);
      if (V && *V) {
        Ok = true;
        break;
      }
    }
    benchmark::DoNotOptimize(Ok);
  }
  State.SetComplexityN(N);
}

} // namespace

BENCHMARK(BM_ExactUSREvaluation)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_PredicateCascade)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

BENCHMARK_MAIN();
