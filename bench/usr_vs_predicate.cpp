//===- bench/usr_vs_predicate.cpp - Sec. 2.2/3 motivation microbench ------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The paper's central cost claim (Sec. 2.2 / Sec. 3): evaluating the
// independence USR exactly at runtime materializes every memory location
// involved in potential dependences, while the extracted predicate only
// *classifies* emptiness — typically O(1) or O(N) with tiny constants.
// This binary measures both on the Fig. 3(b)-style output-independence
// equation as N grows, in three tiers:
//
//  1. a self-timed HOIST-USR table comparing the interpreted
//     evalUSREmpty against the compiled interval-run engine
//     (usr::CompiledUSR emptiness mode). The interpreter is Θ(N²) on
//     this equation (it re-materializes the U_{k<i} prefix per
//     iteration), so rows at N >= 1e5 report a measured *linear* lower
//     bound for it — per-iteration cost only grows with N, making
//     time(N) >= time(N0) * N/N0 a strict underestimate;
//  2. google-benchmark curves for the two exact evaluators and the
//     predicate cascade (complexity fits);
//  3. the run/points-avoided counters of the compiled engine.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "factor/Factor.h"
#include "pdag/PredEval.h"
#include "pdag/PredSimplify.h"
#include "summary/Independence.h"
#include "usr/USRCompile.h"
#include "usr/USREval.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace halo;
using benchutil::nowSeconds;

namespace {

/// Shared fixture: the monotone block-write OIND equation with index
/// array IB (the SOLVH HE pattern).
struct Setup {
  sym::Context Sym;
  pdag::PredContext P{Sym};
  usr::USRContext U{Sym, P};
  const usr::USR *OInd = nullptr;
  const pdag::Pred *Pred = nullptr;
  std::vector<pdag::CascadeStage> Stages;
  sym::SymbolId IB, I;

  Setup() {
    I = Sym.symbol("i", 1);
    IB = Sym.symbol("IB", 0, true);
    sym::SymbolId K = Sym.symbol("k", 2);
    auto WF = [&](sym::SymbolId V) {
      return U.interval(
          Sym.mulConst(
              Sym.addConst(Sym.arrayRef(IB, Sym.symRef(V)), -1), 32),
          Sym.intConst(32));
    };
    const usr::USR *Prior = U.recur(
        K, Sym.intConst(1), Sym.addConst(Sym.symRef(I), -1), WF(K));
    OInd = U.recur(I, Sym.intConst(1), Sym.symRef("N"),
                   U.intersect(WF(I), Prior));
    factor::Factorizer F(U);
    Pred = pdag::simplify(P, F.factor(OInd));
    Stages = pdag::buildCascade(P, Pred);
  }

  sym::Bindings bindings(int64_t N) {
    sym::Bindings B;
    B.setScalar(Sym.symbol("N"), N);
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t X = 0; X < N; ++X)
      A.Vals.push_back(1 + X * 2); // Monotone, disjoint blocks.
    B.setArray(IB, A);
    return B;
  }
};

Setup &setup() {
  static Setup S;
  return S;
}

/// Tier 1: the HOIST-USR emptiness table. The acceptance bar is a >= 5x
/// compiled-over-interpreted win at N >= 1e5; the measured lower bound
/// reports orders of magnitude more.
void emptinessTable() {
  Setup &S = setup();
  auto CU = usr::CompiledUSR::compile(S.OInd, S.Sym);

  std::printf("=== HOIST-USR exact test: interpreted evalUSREmpty vs "
              "compiled interval runs ===\n");
  std::printf("Fig. 3(b)-style OIND, monotone disjoint blocks (answer: "
              "empty / independent)\n");
  std::printf("%-9s %13s %13s %12s %10s %13s %s\n", "N", "interp(ms)",
              "compiled(ms)", "speedup", "runs", "pts-avoided", "answer");

  double BaseMs = 0; // interp ms at BaseN, for the linear lower bound.
  int64_t BaseN = 0;
  for (int64_t N : {int64_t(1024), int64_t(4096), int64_t(100000),
                    int64_t(1000000)}) {
    sym::Bindings B = S.bindings(N);
    const bool MeasureInterp = N <= 4096;
    // The U_{k<i} prefix holds 32(N-1) points at its widest; scale the
    // materialization cap with N so neither engine overflows it (they
    // agree on cap failures too — that case is covered by the tests).
    const size_t Cap =
        std::max<size_t>(1u << 22, static_cast<size_t>(64 * N));

    double InterpSec = 0;
    std::optional<bool> InterpAns;
    if (MeasureInterp) {
      sym::Bindings BI = B;
      double T0 = nowSeconds();
      InterpAns = usr::evalUSREmpty(S.OInd, BI, Cap);
      InterpSec = nowSeconds() - T0;
      BaseMs = 1e3 * InterpSec;
      BaseN = N;
    }

    usr::USREvalStats St;
    usr::CompiledUSR::PooledFrame PF;
    double Best = 1e30;
    std::optional<bool> Ans;
    for (int R = 0; R < 3; ++R) {
      sym::Bindings BC = B; // Fresh stamp: no cross-repetition reuse.
      St = usr::USREvalStats();
      double T0 = nowSeconds();
      Ans = CU->evalEmptyPooled(PF, BC, Cap, &St);
      Best = std::min(Best, nowSeconds() - T0);
    }
    if (!Ans || (MeasureInterp && InterpAns != Ans))
      std::abort(); // Parity failure: the engines must agree.

    if (MeasureInterp) {
      std::printf("%-9lld %13.2f %13.2f %11.1fx %10llu %13llu %s\n",
                  static_cast<long long>(N), 1e3 * InterpSec, 1e3 * Best,
                  InterpSec / Best,
                  static_cast<unsigned long long>(St.RunsProduced),
                  static_cast<unsigned long long>(St.PointsAvoided),
                  *Ans ? "empty" : "not-empty");
    } else {
      // Θ(N²) interpreter: linear extrapolation is a strict lower bound.
      double LbMs = BaseMs * static_cast<double>(N) /
                    static_cast<double>(BaseN);
      std::printf("%-9lld %12.0f* %13.2f %10.0fx* %10llu %13llu %s\n",
                  static_cast<long long>(N), LbMs, 1e3 * Best,
                  (LbMs / 1e3) / Best,
                  static_cast<unsigned long long>(St.RunsProduced),
                  static_cast<unsigned long long>(St.PointsAvoided),
                  *Ans ? "empty" : "not-empty");
    }
  }
  std::printf("(*) interpreted column at N >= 1e5 is the measured linear "
              "lower bound\n    time(%lld) * N/%lld — the interpreter is "
              "Θ(N²) on this equation.\n\n",
              static_cast<long long>(BaseN), static_cast<long long>(BaseN));
}

void BM_ExactUSREvaluation(benchmark::State &State) {
  Setup &S = setup();
  int64_t N = State.range(0);
  sym::Bindings B = S.bindings(N);
  for (auto _ : State) {
    auto V = usr::evalUSREmpty(S.OInd, B);
    benchmark::DoNotOptimize(V);
  }
  State.SetComplexityN(N);
}

void BM_CompiledUSREmptiness(benchmark::State &State) {
  Setup &S = setup();
  int64_t N = State.range(0);
  sym::Bindings B = S.bindings(N);
  auto CU = usr::CompiledUSR::compile(S.OInd, S.Sym);
  usr::CompiledUSR::PooledFrame PF;
  // The U_{k<i} prefix holds 32(N-1) points: scale the cap with N so the
  // benchmark measures the emptiness test, not a cap-overflow abort.
  const size_t Cap =
      std::max<size_t>(1u << 22, static_cast<size_t>(64 * N));
  for (auto _ : State) {
    auto V = CU->evalEmptyPooled(PF, B, Cap);
    if (!V || !*V)
      std::abort(); // Must decide "empty" — anything else is a bug.
    benchmark::DoNotOptimize(V);
  }
  State.SetComplexityN(N);
}

void BM_PredicateCascade(benchmark::State &State) {
  Setup &S = setup();
  int64_t N = State.range(0);
  sym::Bindings B = S.bindings(N);
  for (auto _ : State) {
    bool Ok = false;
    for (const pdag::CascadeStage &St : S.Stages) {
      auto V = pdag::tryEvalPred(St.P, B);
      if (V && *V) {
        Ok = true;
        break;
      }
    }
    benchmark::DoNotOptimize(Ok);
  }
  State.SetComplexityN(N);
}

} // namespace

BENCHMARK(BM_ExactUSREvaluation)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_CompiledUSREmptiness)
    ->RangeMultiplier(4)
    ->Range(16, 1 << 20)
    ->Complexity();
BENCHMARK(BM_PredicateCascade)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();

int main(int argc, char **argv) {
  emptinessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
