//===- bench/table3_spec2000.cpp - Regenerates Table 3 --------------------===//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//===----------------------------------------------------------------------===//
#include "bench/TableReport.h"
using namespace halo;
int main() {
  benchutil::printTable("Table 3: SPEC2000/2006 suite (paper Table 3)",
                        suite::buildSpec2000(), 8, 1);
  return 0;
}
