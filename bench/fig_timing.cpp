//===- bench/fig_timing.cpp - Figures 10/11/12 harness --------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Normalized parallel timing (sequential = 1.0) per benchmark:
//  - "Factorization" = the hybrid analyzer with runtime predicates,
//  - "Static-Auto"   = the commercial-compiler proxy (static only; the
//    paper's Intel-Auto / XLF_R-Auto series).
//
// One binary serves Figures 10 (PERFECT-CLUB, 4 threads), 11 (SPEC89/92,
// 4 threads) and 12 (SPEC2000/2006, 8 threads); the suite is selected by
// the compile-time SUITE_* macro set in CMakeLists.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace halo;
using namespace halo::benchutil;

int main() {
#if defined(SUITE_PERFECT)
  auto Benches = suite::buildPerfectClub();
  const char *Title = "Figure 10: PERFECT-CLUB normalized parallel timing";
  unsigned Threads = 4;
  int64_t Scale = 6;
#elif defined(SUITE_SPEC92)
  auto Benches = suite::buildSpec92();
  const char *Title = "Figure 11: SPEC89/92 normalized parallel timing";
  unsigned Threads = 4;
  int64_t Scale = 6;
#else
  auto Benches = suite::buildSpec2000();
  const char *Title = "Figure 12: SPEC2000/2006 normalized parallel timing";
  unsigned Threads = 8;
  int64_t Scale = 6;
#endif

  std::printf("=== %s ===\n", Title);
  std::printf("(sequential time = 1.0; lower is better; %u threads)\n",
              Threads);
  std::printf("%-12s %-14s %-14s %-10s %s\n", "BENCH", "Factorization",
              "Static-Auto", "RTov%", "NOTE");
  for (auto &B : Benches) {
    BenchTiming Hybrid = timeBenchmark(*B, Threads, Scale,
                                       /*RuntimeTests=*/true, 2);
    BenchTiming Static = timeBenchmark(*B, Threads, Scale,
                                       /*RuntimeTests=*/false, 2);
    double NormH = Hybrid.ParSeconds / Hybrid.SeqSeconds;
    double NormS = Static.ParSeconds / Static.SeqSeconds;
    double RTov = 100.0 * Hybrid.TestOverheadSec / Hybrid.ParSeconds;
    std::printf("%-12s %-14.3f %-14.3f %-10.2f %s\n", B->Name.c_str(), NormH,
                NormS, RTov, Hybrid.AnyTLS ? "TLS used" : "");
  }
  return 0;
}
