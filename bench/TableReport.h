//===- bench/TableReport.h - Tables 1-3 row generator ----------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints one of the paper's benchmark-property tables: per benchmark the
/// sequential coverage, and per loop the LSC weight, measured granularity
/// (GR, sequential ms per loop invocation), the computed classification
/// side by side with the paper's, the techniques used, and the measured
/// runtime-test overhead (RTov, percent of the parallel runtime).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_BENCH_TABLEREPORT_H
#define HALO_BENCH_TABLEREPORT_H

#include "bench/BenchUtil.h"

namespace halo {
namespace benchutil {

inline void printTable(const char *Title,
                       std::vector<std::unique_ptr<suite::Benchmark>> Benches,
                       unsigned Threads, int64_t Scale) {
  std::printf("=== %s ===\n", Title);
  std::printf("%-10s %-6s %-16s %-6s %-9s %-26s %-26s %s\n", "BENCH", "SC%",
              "LOOP", "LSC%", "GR(ms)", "COMPUTED", "PAPER", "TECHNIQUES");
  for (auto &B : Benches) {
    double RTovPct = 0, ParTotal = 0;
    bool First = true;
    std::string Rows;
    // One session per benchmark: analyze-once (with probe data), then
    // every timed execution below reuses the cached plan.
    session::Session S = makeSession(*B, Threads);
    for (const suite::LoopSpec &LS : B->Loops) {
      rt::Memory M;
      sym::Bindings Bd;
      B->Setup(M, Bd, Scale);
      analysis::AnalyzerOptions Opts;
      Opts.Probe = &Bd;
      Opts.HoistableContext = LS.Hoistable;
      const analysis::LoopPlan &Plan = S.prepare(*LS.Loop, Opts).Plan;

      // Granularity: sequential time of one loop invocation.
      double GrMs;
      {
        rt::Memory M2;
        sym::Bindings B2;
        B->Setup(M2, B2, Scale);
        double T0 = nowSeconds();
        S.runSequential(*LS.Loop, M2, B2);
        GrMs = (nowSeconds() - T0) * 1e3;
      }
      // Runtime-test overhead under the plan.
      rt::ExecStats St = S.run(*LS.Loop, M, Bd);
      ParTotal += St.TotalSeconds;
      RTovPct += St.PredicateSeconds + St.CivSliceSeconds +
                 St.ExactTestSeconds + St.BoundsCompSeconds;

      char Row[512];
      std::snprintf(Row, sizeof(Row),
                    "%-10s %-6s %-16s %-6.1f %-9.3f %-26s %-26s %s\n",
                    First ? B->Name.c_str() : "",
                    First ? (std::to_string((int)B->SeqCoveragePct) + "%")
                                .c_str()
                          : "",
                    LS.Name.c_str(), LS.LscPercent, GrMs,
                    Plan.classString().c_str(), LS.PaperClass.c_str(),
                    Plan.techniqueString().c_str());
      Rows += Row;
      First = false;
    }
    std::fputs(Rows.c_str(), stdout);
    if (ParTotal > 0)
      std::printf("%-10s RTov = %.2f%% of parallel runtime\n", "",
                  100.0 * RTovPct / ParTotal);
  }
}

} // namespace benchutil
} // namespace halo

#endif // HALO_BENCH_TABLEREPORT_H
