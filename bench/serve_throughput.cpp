//===- bench/serve_throughput.cpp - Multi-program serving load generator --===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The serving-layer claim behind the ROADMAP's heavy-traffic north star:
// once loops are analyzed (once), a sharded serve::Engine must sustain
// the session layer's steady-state execution rate while serving many
// programs to many concurrent clients — i.e. the bounded queue and the
// shard hand-off must not cost noticeable throughput against a lone
// Session::runBatch on one thread.
//
// The generator builds M programs (each with an O(1) symbolic-stride
// cascade loop and an O(N) monotonicity-cascade loop), pre-builds every
// client's dataset, then measures:
//
//  1. the single-session baseline: all requests executed back-to-back
//     through one Session on one thread (the PR 2 steady state);
//  2. the engine under several shards x workers configurations, K
//     closed-loop client threads each submitting its share of requests
//     and blocking on the response future (concurrency = K).
//
// Columns: req/s (served requests per second), xbase (speedup over the
// single-session baseline; 1sx1w >= ~1.0x is the no-queue-regression
// check), p50/p99 (client-observed request latency, queueing included),
// peakQ (queue high-water mark), and a per-shard ServeStats table for
// the last configuration. A fault-rate sweep (0%/1%/10% injected
// transient failures on one worker) closes the run: the 0% row bounds
// the clean-path cost of the robustness layer, the rest chart retries,
// classified failures and breaker-driven degradation under load. The
// container CI runs on is single-core, so xbase > 1 is *not* expected
// from the multi-worker rows here — see docs/BENCHMARKS.md.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "serve/Engine.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

using namespace halo;
using namespace halo::benchutil;

namespace {

/// One served program: a strided-write loop (O(1) predicate s >= 1) and a
/// monotone block-write loop (O(N) predicate over IB), both passing their
/// cascades on the generated datasets (the steady serving state).
struct ServedProgram {
  suite::Benchmark B;
  suite::BenchBuilder BB{B};
  ir::DoLoop *Strided = nullptr, *Blocks = nullptr;
  sym::SymbolId XS, XB, IB;
  int64_t N;

  explicit ServedProgram(int64_t N) : N(N) {
    XS = BB.dataArray("XS", BB.Sym.mulConst(BB.s("N"), 4));
    XB = BB.dataArray("XB", BB.Sym.mulConst(BB.s("N"), 8));
    IB = BB.indexArray("IB");
    Strided = suite::makeSymbolicStrideLoop(BB, "strided", "i", XS, "s",
                                            BB.s("N"), 0);
    Blocks = suite::makeMonotonicBlockLoop(BB, "blocks", "i", XB, IB,
                                           BB.c(4), BB.s("N"), 0);
  }

  void setup(rt::Memory &M, sym::Bindings &Bd) {
    Bd.setScalar(BB.Sym.symbol("N"), N);
    Bd.setScalar(BB.Sym.symbol("s"), 2);
    M.alloc(XS, static_cast<size_t>(4 * N));
    M.alloc(XB, static_cast<size_t>(8 * N + 16));
    Bd.setArray(IB, suite::rampArray(N, 1, 4)); // Monotone, gaps of 4.
  }
};

struct LoadResult {
  double Seconds = 0;
  double P50Us = 0, P99Us = 0;
  uint64_t OkResp = 0, DegradedResp = 0, FailResp = 0;
  serve::ServeStats Stats;
};

double percentileUs(std::vector<double> &LatSeconds, double P) {
  if (LatSeconds.empty())
    return 0;
  std::sort(LatSeconds.begin(), LatSeconds.end());
  size_t Idx = static_cast<size_t>(P * (LatSeconds.size() - 1));
  return 1e6 * LatSeconds[Idx];
}

/// Runs \p Requests loop executions through an engine with the given
/// geometry, \p Clients closed-loop threads submitting round-robin over
/// programs and loops. \p Batch is Request::Repeats: how many executions
/// one submission carries (the mini-runBatch shape that amortizes the
/// queue hand-off; Batch=1 measures the raw per-request overhead).
/// \p SameLoop routes EVERY request to one (program, loop) — the
/// same-loop-contention scenario: one shard, one session, all workers.
/// Before the intra-shard concurrency work this serialized on the shard
/// lock regardless of the worker count. \p AllowFaults tolerates
/// classified non-OK responses (the fault-rate sweep arms the injector,
/// so ExecError after exhausted retries is an expected outcome there);
/// on the clean path any non-OK response still aborts the run. Returns
/// wall time and client-observed per-submission latency percentiles.
LoadResult runEngine(std::vector<std::unique_ptr<ServedProgram>> &Progs,
                     unsigned Shards, unsigned Workers, unsigned Clients,
                     size_t Requests, unsigned Batch, bool SameLoop = false,
                     bool AllowFaults = false) {
  serve::EngineOptions EO;
  EO.Shards = Shards;
  EO.Workers = Workers;
  EO.QueueCapacity = 64;
  serve::Engine E(EO);
  std::vector<serve::ProgramId> Ids;
  for (auto &P : Progs) {
    serve::ProgramId Id = E.addProgram(P->B.prog(), P->B.usr());
    Ids.push_back(Id);
    E.prepare(Id, *P->Strided);
    E.prepare(Id, *P->Blocks);
  }

  // Per-client request state, built outside the timed region. A client
  // reuses its Memory/Bindings across its requests — the steady
  // serving shape (a resident client with a live dataset).
  struct ClientState {
    std::vector<std::unique_ptr<rt::Memory>> Ms;
    std::vector<std::unique_ptr<sym::Bindings>> Bs;
    std::vector<double> LatSeconds;
    uint64_t Ok = 0, Degraded = 0, Fail = 0;
  };
  std::vector<ClientState> CS(Clients);
  for (unsigned C = 0; C < Clients; ++C)
    for (size_t P = 0; P < Progs.size(); ++P) {
      CS[C].Ms.push_back(std::make_unique<rt::Memory>());
      CS[C].Bs.push_back(std::make_unique<sym::Bindings>());
      Progs[P]->setup(*CS[C].Ms.back(), *CS[C].Bs.back());
    }

  const size_t PerClient = Requests / Clients / Batch;
  double T0 = nowSeconds();
  std::vector<std::thread> Ts;
  for (unsigned C = 0; C < Clients; ++C)
    Ts.emplace_back([&, C] {
      ClientState &St = CS[C];
      St.LatSeconds.reserve(PerClient);
      for (size_t I = 0; I < PerClient; ++I) {
        const size_t P = SameLoop ? 0 : (C + I) % Progs.size();
        serve::Request Req;
        Req.Program = Ids[P];
        Req.Loop = SameLoop ? Progs[0]->Blocks
                            : (I % 2 ? Progs[P]->Strided : Progs[P]->Blocks);
        Req.M = St.Ms[P].get();
        Req.B = St.Bs[P].get();
        Req.Repeats = Batch;
        double S0 = nowSeconds();
        serve::Response Resp = E.submit(Req).get();
        St.LatSeconds.push_back(nowSeconds() - S0);
        if (Resp.OK)
          ++(Resp.St == serve::Status::DegradedOk ? St.Degraded : St.Ok);
        else if (AllowFaults)
          ++St.Fail; // Classified outcome; tallied in the fault table.
        else
          std::abort(); // Every warm-up loop must serve on the clean path.
      }
    });
  for (std::thread &T : Ts)
    T.join();
  E.drain();

  LoadResult R;
  R.Seconds = nowSeconds() - T0;
  std::vector<double> All;
  for (ClientState &St : CS) {
    All.insert(All.end(), St.LatSeconds.begin(), St.LatSeconds.end());
    R.OkResp += St.Ok;
    R.DegradedResp += St.Degraded;
    R.FailResp += St.Fail;
  }
  R.P50Us = percentileUs(All, 0.50);
  R.P99Us = percentileUs(All, 0.99);
  R.Stats = E.stats();
  return R;
}

} // namespace

int main() {
  const int64_t N = 4096;
  const size_t Requests = 800;
  const unsigned Clients = 4;
  const size_t Programs = 4;
  const int Reps = 3;

  std::vector<std::unique_ptr<ServedProgram>> Progs;
  for (size_t P = 0; P < Programs; ++P)
    Progs.push_back(std::make_unique<ServedProgram>(N));

  // Baseline: one Session per program, one thread, all requests
  // back-to-back (the steady-state runBatch shape of
  // bench_rtov_overhead). Crucially it walks the SAME working set in the
  // SAME (client, program, loop) order as the engine's clients below —
  // Clients x Programs live datasets — so the comparison isolates the
  // queue/shard hand-off instead of cache-footprint differences.
  session::SessionOptions SO;
  SO.Threads = 1;
  std::vector<std::unique_ptr<session::Session>> Sessions;
  for (auto &P : Progs) {
    Sessions.push_back(
        std::make_unique<session::Session>(P->B.prog(), P->B.usr(), SO));
    Sessions.back()->prepare(*P->Strided);
    Sessions.back()->prepare(*P->Blocks);
  }
  std::vector<std::unique_ptr<rt::Memory>> BaseM;
  std::vector<std::unique_ptr<sym::Bindings>> BaseB;
  for (unsigned C = 0; C < Clients; ++C)
    for (size_t P = 0; P < Progs.size(); ++P) {
      BaseM.push_back(std::make_unique<rt::Memory>());
      BaseB.push_back(std::make_unique<sym::Bindings>());
      Progs[P]->setup(*BaseM.back(), *BaseB.back());
    }
  double BaseBest = 1e30;
  std::vector<double> BaseLat;
  const unsigned BaseBatch = 8; // Same mini-batch grain as the b8 rows.
  for (int Rep = 0; Rep < Reps; ++Rep) {
    std::vector<double> Lat;
    Lat.reserve(Requests / BaseBatch);
    double T0 = nowSeconds();
    for (size_t I = 0; I < Requests / BaseBatch / Clients; ++I)
      for (unsigned C = 0; C < Clients; ++C) {
        const size_t P = (C + I) % Progs.size();
        const ir::DoLoop *L = I % 2 ? Progs[P]->Strided : Progs[P]->Blocks;
        rt::Memory &M = *BaseM[C * Progs.size() + P];
        sym::Bindings &Bd = *BaseB[C * Progs.size() + P];
        double S0 = nowSeconds();
        for (unsigned E = 0; E < BaseBatch; ++E) {
          auto St = Sessions[P]->runPrepared(*L, M, Bd);
          if (!St || (!St->RanParallel && !St->TLSSucceeded))
            std::abort(); // The steady-state predicates must keep passing.
        }
        Lat.push_back(nowSeconds() - S0);
      }
    double T = nowSeconds() - T0;
    if (T < BaseBest) {
      BaseBest = T;
      BaseLat = std::move(Lat);
    }
  }
  double BaseRps = Requests / BaseBest;

  std::printf("=== Multi-program serving throughput (%zu programs, %zu "
              "requests, N=%lld, %u clients) ===\n",
              Programs, Requests, static_cast<long long>(N), Clients);
  std::printf("%-18s %10s %8s %9s %9s %6s %9s\n", "CONFIG", "req/s", "xbase",
              "p50(us)", "p99(us)", "peakQ", "rejected");
  std::printf("%-18s %10.0f %8s %9.1f %9.1f %6s %9s\n", "single-session",
              BaseRps, "1.00x", percentileUs(BaseLat, 0.50),
              percentileUs(BaseLat, 0.99), "-", "-");

  // Batch=1 rows expose the raw per-request queue + future hand-off cost
  // (two context switches per request on a single core); Batch=8 is the
  // engine-side analog of the runBatch baseline, amortizing the hand-off
  // across a mini-batch — the steady-state serving configuration.
  struct Geometry {
    unsigned Shards, Workers, Batch;
  };
  const Geometry Geos[] = {{1, 1, 1}, {1, 1, 8}, {2, 2, 8}, {4, 4, 8}};
  LoadResult Last;
  for (const Geometry &G : Geos) {
    LoadResult Best;
    Best.Seconds = 1e30;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      LoadResult R = runEngine(Progs, G.Shards, G.Workers, Clients, Requests,
                               G.Batch);
      if (R.Seconds < Best.Seconds)
        Best = std::move(R);
    }
    double Rps = Requests / Best.Seconds;
    char Name[32];
    std::snprintf(Name, sizeof(Name), "engine %usx%uw b%u", G.Shards,
                  G.Workers, G.Batch);
    std::printf("%-18s %10.0f %7.2fx %9.1f %9.1f %6zu %9llu\n", Name, Rps,
                Rps / BaseRps, Best.P50Us, Best.P99Us,
                Best.Stats.PeakQueueDepth,
                static_cast<unsigned long long>(Best.Stats.Rejected));
    Last = std::move(Best);
  }

  // Same-loop contention: every client hammers ONE prepared loop of ONE
  // program — one shard, one session. The scenario the shard-wide execute
  // lock used to serialize: with intra-shard concurrency, W workers all
  // execute the same plan at once (per-execution contexts, shared memo).
  // The 1-worker row is the no-regression check against the same-loop
  // single-session baseline; multi-worker xbase only exceeds ~1.0 on a
  // multi-core runner (see docs/BENCHMARKS.md, "Single-core caveat").
  {
    std::vector<std::unique_ptr<rt::Memory>> SameM;
    std::vector<std::unique_ptr<sym::Bindings>> SameB;
    for (unsigned C = 0; C < Clients; ++C) {
      SameM.push_back(std::make_unique<rt::Memory>());
      SameB.push_back(std::make_unique<sym::Bindings>());
      Progs[0]->setup(*SameM.back(), *SameB.back());
    }
    double SameBest = 1e30;
    std::vector<double> SameLatBest;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      std::vector<double> Lat;
      Lat.reserve(Requests / BaseBatch);
      double T0 = nowSeconds();
      for (size_t I = 0; I < Requests / BaseBatch / Clients; ++I)
        for (unsigned C = 0; C < Clients; ++C) {
          double S0 = nowSeconds();
          for (unsigned E = 0; E < BaseBatch; ++E) {
            auto St = Sessions[0]->runPrepared(*Progs[0]->Blocks, *SameM[C],
                                               *SameB[C]);
            if (!St || (!St->RanParallel && !St->TLSSucceeded))
              std::abort();
          }
          Lat.push_back(nowSeconds() - S0);
        }
      double T = nowSeconds() - T0;
      if (T < SameBest) {
        SameBest = T;
        SameLatBest = std::move(Lat);
      }
    }
    double SameRps = Requests / SameBest;

    std::printf("\n=== Same-loop contention (1 program, 1 loop, %zu "
                "requests, %u clients) ===\n",
                Requests, Clients);
    std::printf("%-18s %10s %8s %9s %9s %6s %9s\n", "CONFIG", "req/s",
                "xbase", "p50(us)", "p99(us)", "peakQ", "rejected");
    std::printf("%-18s %10.0f %8s %9.1f %9.1f %6s %9s\n", "single-session",
                SameRps, "1.00x", percentileUs(SameLatBest, 0.50),
                percentileUs(SameLatBest, 0.99), "-", "-");
    const Geometry SameGeos[] = {{1, 1, 8}, {1, 2, 8}, {1, 4, 8}};
    for (const Geometry &G : SameGeos) {
      LoadResult Best;
      Best.Seconds = 1e30;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        LoadResult R = runEngine(Progs, G.Shards, G.Workers, Clients,
                                 Requests, G.Batch, /*SameLoop=*/true);
        if (R.Seconds < Best.Seconds)
          Best = std::move(R);
      }
      double Rps = Requests / Best.Seconds;
      char Name[32];
      std::snprintf(Name, sizeof(Name), "engine %usx%uw b%u", G.Shards,
                    G.Workers, G.Batch);
      std::printf("%-18s %10.0f %7.2fx %9.1f %9.1f %6zu %9llu\n", Name, Rps,
                  Rps / SameRps, Best.P50Us, Best.P99Us,
                  Best.Stats.PeakQueueDepth,
                  static_cast<unsigned long long>(Best.Stats.Rejected));
    }
  }

  // Fault-rate sweep: the 1sx1w b8 clean-path geometry with the
  // "serve.process.transient" injection point armed at increasing rates.
  // The 0% row runs with the injector fully disarmed and is the
  // robustness-overhead gate: deadline/token checks, the breaker lookup
  // and the injector fast path together must stay within ~2% of the
  // pre-robustness engine (compare req/s against the engine 1sx1w b8 row
  // above — same geometry, same requests). Non-zero rows show the
  // degradation curve: retries absorb most faults (Ok stays dominant),
  // exhausted retries surface as classified ExecError responses, and
  // breaker opens demote to the sequential tier (degExec).
  {
    support::FaultInjector &FI = support::FaultInjector::instance();
    std::printf("\n=== Fault-rate sweep (engine 1sx1w b8, point "
                "serve.process.transient) ===\n");
    std::printf("%-18s %10s %8s %9s %6s %6s %6s %8s %7s %8s\n", "CONFIG",
                "req/s", "xbase", "p50(us)", "ok", "degr", "fail", "retried",
                "brOpen", "degExec");
    const double Rates[] = {0.0, 0.01, 0.10};
    for (double Rate : Rates) {
      LoadResult Best;
      Best.Seconds = 1e30;
      for (int Rep = 0; Rep < Reps; ++Rep) {
        if (Rate > 0.0) {
          // Re-arm per rep: resets the per-point sequence so every rep
          // replays the same deterministic fault pattern.
          FI.arm(0xBE7C5, 0.0);
          FI.armPoint("serve.process.transient", Rate);
        }
        LoadResult R =
            runEngine(Progs, 1, 1, Clients, Requests, 8, /*SameLoop=*/false,
                      /*AllowFaults=*/true);
        FI.disarm();
        if (R.Seconds < Best.Seconds)
          Best = std::move(R);
      }
      double Rps = Requests / Best.Seconds;
      serve::ShardStats T = Best.Stats.totals();
      char Name[32];
      std::snprintf(Name, sizeof(Name), "faults %g%%", 100.0 * Rate);
      std::printf("%-18s %10.0f %7.2fx %9.1f %6llu %6llu %6llu %8llu %7llu "
                  "%8llu\n",
                  Name, Rps, Rps / BaseRps, Best.P50Us,
                  static_cast<unsigned long long>(Best.OkResp),
                  static_cast<unsigned long long>(Best.DegradedResp),
                  static_cast<unsigned long long>(Best.FailResp),
                  static_cast<unsigned long long>(T.Retried),
                  static_cast<unsigned long long>(T.BreakerOpen),
                  static_cast<unsigned long long>(T.DegradedExecs));
    }
  }

  // Per-shard ServeStats of the last geometry: routing spread, execution
  // counts and the shard-local compile/frame caches.
  std::printf("\nPer-shard ServeStats (last config):\n");
  std::printf("%-6s %8s %8s %8s %10s %12s %12s\n", "SHARD", "progs", "loops",
              "reqs", "execs", "predEvals", "frameReuse");
  const serve::ServeStats &SS = Last.Stats;
  for (size_t I = 0; I < SS.Shards.size(); ++I) {
    const serve::ShardStats &S = SS.Shards[I];
    std::printf("%-6zu %8zu %8zu %8llu %10llu %12llu %12llu\n", I, S.Programs,
                S.PreparedLoops, static_cast<unsigned long long>(S.Completed),
                static_cast<unsigned long long>(S.Executions),
                static_cast<unsigned long long>(S.Exec.CompiledPredEvals),
                static_cast<unsigned long long>(
                    S.Exec.FrameRebindsSkipped));
  }
  serve::ShardStats T = SS.totals();
  std::printf("%-6s %8zu %8zu %8llu %10llu %12llu %12llu\n", "total",
              T.Programs, T.PreparedLoops,
              static_cast<unsigned long long>(T.Completed),
              static_cast<unsigned long long>(T.Executions),
              static_cast<unsigned long long>(T.Exec.CompiledPredEvals),
              static_cast<unsigned long long>(T.Exec.FrameRebindsSkipped));
  return 0;
}
