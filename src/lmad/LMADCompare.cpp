//===- lmad/LMADCompare.cpp - Disjoint/included LMAD predicates -----------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lmad/LMADCompare.h"

#include <algorithm>
#include <numeric>

using namespace halo;
using namespace halo::lmad;
using pdag::Pred;
using pdag::PredContext;
using sym::Expr;

//===----------------------------------------------------------------------===//
// 1-D comparisons (Sec. 3.2)
//===----------------------------------------------------------------------===//

/// Divisibility predicate `DA | V` usable with symbolic strides: constant
/// divisors fold, a structurally-equal symbolic divisor folds, otherwise a
/// Divides leaf is emitted (evaluable at runtime).
static const Pred *stridesDividePred(PredContext &Ctx, const Expr *D,
                                     const Expr *V, bool Neg) {
  return Ctx.divides(D, V, Neg);
}

/// gcd of the two strides when computable: both constants fold to their
/// gcd; structurally equal strides fold to themselves. Returns null when
/// no useful gcd exists.
static const Expr *strideGcd(sym::Context &Sym, const Expr *S1,
                             const Expr *S2) {
  auto C1 = Sym.constValue(S1), C2 = Sym.constValue(S2);
  if (C1 && C2)
    return Sym.intConst(std::gcd(*C1, *C2));
  if (S1 == S2)
    return S1;
  // gcd(s, c*s) = s for a constant multiple: detect via coefficient view.
  return nullptr;
}

const Pred *lmad::disjointLMAD1D(PredContext &Ctx, const LMAD &A,
                                 const LMAD &B) {
  sym::Context &Sym = Ctx.symCtx();
  Interval IA = intervalOverestimate(Sym, A);
  Interval IB = intervalOverestimate(Sym, B);
  // Disjoint interval overestimates.
  const Pred *Intervals = Ctx.or2(Ctx.gt(IA.Lo, IB.Hi), Ctx.gt(IB.Lo, IA.Hi));

  // Interleaved accesses: gcd(d1, d2) does not divide (t1 - t2).
  const Pred *Interleave = Ctx.getFalse();
  if (A.rank() == 1 && B.rank() == 1) {
    const Expr *G = strideGcd(Sym, A.dims()[0].Stride, B.dims()[0].Stride);
    if (G)
      Interleave = stridesDividePred(
          Ctx, G, Sym.sub(A.offset(), B.offset()), /*Neg=*/true);
  } else if (A.isPoint() && B.rank() == 1) {
    Interleave = stridesDividePred(
        Ctx, B.dims()[0].Stride, Sym.sub(A.offset(), B.offset()), true);
  } else if (B.isPoint() && A.rank() == 1) {
    Interleave = stridesDividePred(
        Ctx, A.dims()[0].Stride, Sym.sub(A.offset(), B.offset()), true);
  }
  return Ctx.or2(Interleave, Intervals);
}

const Pred *lmad::includedLMAD1D(PredContext &Ctx, const LMAD &A,
                                 const LMAD &B) {
  sym::Context &Sym = Ctx.symCtx();
  Interval IA = intervalOverestimate(Sym, A);
  Interval IB = intervalOverestimate(Sym, B);
  const Pred *Bounds =
      Ctx.and2(Ctx.ge(IA.Lo, IB.Lo), Ctx.le(IA.Hi, IB.Hi));

  // Stride compatibility: d2 | d1 and d2 | (t1 - t2).
  const Expr *D2 = B.isPoint() ? nullptr : B.dims()[0].Stride;
  const Expr *D1 =
      A.isPoint() ? Sym.intConst(0) : A.dims()[0].Stride; // 0 divisible by all.
  const Pred *Strides = Ctx.getTrue();
  if (D2) {
    Strides = Ctx.and2(
        stridesDividePred(Ctx, D2, D1, false),
        stridesDividePred(Ctx, D2, Sym.sub(A.offset(), B.offset()), false));
  } else {
    // B is a single point: A must be that point.
    Strides = Ctx.and2(Ctx.eq(A.offset(), B.offset()),
                       Ctx.eq(IA.Hi, IA.Lo));
  }
  return Ctx.and2(Strides, Bounds);
}

//===----------------------------------------------------------------------===//
// Multi-dimensional disjointness (Fig. 6a)
//===----------------------------------------------------------------------===//

namespace {

/// Result of PROJ_OUTER_DIM: a well-formedness predicate plus the inner
/// LMAD (all but the outermost dimension, carrying the loop-variant part of
/// the offset) and the outer 1-D LMAD (outer dimension plus the part of the
/// offset divisible by the outer stride).
struct Projection {
  const Pred *WellFormed;
  LMAD Inner;
  LMAD Outer;
};

/// Splits the offset T into (T_out, T_in) where T_out collects the
/// monomials divisible by the outer stride S (syntactically: coefficient
/// divisibility for constant S, factor membership for an atomic symbolic
/// S), and T_in the remainder.
std::pair<const Expr *, const Expr *> splitOffset(sym::Context &Sym,
                                                  const Expr *T,
                                                  const Expr *S) {
  sym::LinearForm LF = Sym.toLinear(T);
  sym::LinearForm OutF, InF;
  if (auto SC = Sym.constValue(S)) {
    for (const sym::Monomial &M : LF.Terms)
      (M.Coeff % *SC == 0 ? OutF : InF).Terms.push_back(M);
    (LF.Constant % *SC == 0 ? OutF : InF).Constant = LF.Constant;
  } else {
    // Symbolic stride: a monomial is divisible when S appears among its
    // product's factors (e.g. 2*M is divisible by M).
    sym::LinearForm SF = Sym.toLinear(S);
    const Expr *Atom =
        (SF.Terms.size() == 1 && SF.Constant == 0 && SF.Terms[0].Coeff == 1)
            ? SF.Terms[0].Prod
            : nullptr;
    for (const sym::Monomial &M : LF.Terms) {
      bool Div = false;
      if (Atom) {
        if (M.Prod == Atom)
          Div = true;
        else if (const auto *Mul = dyn_cast<sym::MulExpr>(M.Prod))
          Div = std::find(Mul->getFactors().begin(), Mul->getFactors().end(),
                          Atom) != Mul->getFactors().end();
      }
      (Div ? OutF : InF).Terms.push_back(M);
    }
    InF.Constant = LF.Constant;
  }
  return {Sym.fromLinear(std::move(OutF)), Sym.fromLinear(std::move(InF))};
}

/// PROJ_OUTER_DIM(C): separates the last dimension. The well-formedness
/// predicate checks that the inner part stays inside one outer-stride
/// period: 0 <= t_in and t_in + sum(inner spans) < outer stride.
Projection projectOuterDim(PredContext &Ctx, const LMAD &L) {
  sym::Context &Sym = Ctx.symCtx();
  assert(L.rank() >= 1 && "projection needs at least one dimension");
  const Dim &OuterD = L.dims().back();
  auto [TOut, TIn] = splitOffset(Sym, L.offset(), OuterD.Stride);

  std::vector<Dim> InnerDims(L.dims().begin(), L.dims().end() - 1);
  LMAD Inner(std::move(InnerDims), TIn);
  LMAD Outer = LMAD::makeStrided(OuterD.Stride, OuterD.Span, TOut);

  Interval II = intervalOverestimate(Sym, Inner);
  const Pred *WF = Ctx.andN(
      {Ctx.ge0(TIn), Ctx.lt(II.Hi, OuterD.Stride)});
  return Projection{WF, std::move(Inner), Outer};
}

} // namespace

const Pred *lmad::disjointLMAD(PredContext &Ctx, const LMAD &A,
                               const LMAD &B) {
  sym::Context &Sym = Ctx.symCtx();
  if (A.rank() <= 1 && B.rank() <= 1)
    return disjointLMAD1D(Ctx, A, B);

  // FLATTEN_LMADS: 1-D overestimates; their disjointness is sufficient.
  const Pred *PFlat =
      disjointLMAD1D(Ctx, flatten1D(Sym, A), flatten1D(Sym, B));

  // UNIFY_LMAD_DIMS: pad the lower-rank input with [1]v[0] dimensions
  // below the outer dimension so both have the same rank.
  LMAD C = A, D = B;
  auto Pad = [&Sym](LMAD &L, size_t Rank) {
    std::vector<Dim> Dims(L.dims());
    std::vector<Dim> Extra;
    while (Dims.size() + Extra.size() < Rank)
      Extra.push_back(Dim{Sym.intConst(1), Sym.intConst(0)});
    if (Extra.empty())
      return;
    // Insert padding below the outermost dimension (a point gets only
    // padding dimensions).
    Dims.insert(Dims.empty() ? Dims.end() : Dims.end() - 1, Extra.begin(),
                Extra.end());
    L = LMAD(std::move(Dims), L.offset());
  };
  size_t Rank = std::max(C.rank(), D.rank());
  if (C.rank() < Rank)
    Pad(C, Rank);
  if (D.rank() < Rank)
    Pad(D, Rank);

  // The projection route needs equal outer strides.
  if (C.dims().back().Stride != D.dims().back().Stride)
    return PFlat;

  Projection PC = projectOuterDim(Ctx, C);
  Projection PD = projectOuterDim(Ctx, D);
  const Pred *POut = disjointLMAD1D(Ctx, PC.Outer, PD.Outer);
  const Pred *PIn = disjointLMAD(Ctx, PC.Inner, PD.Inner);
  const Pred *Proj = Ctx.andN(
      {PC.WellFormed, PD.WellFormed, Ctx.or2(POut, PIn)});
  return Ctx.or2(PFlat, Proj);
}

CondLMAD lmad::denseUnderestimate(PredContext &Ctx, const LMAD &L) {
  sym::Context &Sym = Ctx.symCtx();
  if (L.isPoint())
    return CondLMAD{Ctx.getTrue(), L};
  if (L.rank() == 1) {
    // Dense iff stride 1 (a stride-s LMAD underestimates nothing denser).
    const Pred *C = Ctx.eq(L.dims()[0].Stride, Sym.intConst(1));
    return CondLMAD{C, LMAD::makeStrided(Sym.intConst(1), L.dims()[0].Span,
                                         L.offset())};
  }
  // Multi-dim: dims must tile exactly — inner span + inner stride == next
  // stride, innermost stride == 1. Then the set is the full interval.
  std::vector<const Pred *> Conds;
  const Expr *Reach = Sym.intConst(0); // max reachable inner extent so far
  const Expr *One = Sym.intConst(1);
  const Expr *PrevStride = One;
  Conds.push_back(Ctx.eq(L.dims().front().Stride, One));
  for (size_t I = 0; I + 1 < L.rank(); ++I) {
    Reach = Sym.add(Reach, L.dims()[I].Span);
    const Expr *NextStride = L.dims()[I + 1].Stride;
    // Next stride must equal reach + previous stride (exact tiling).
    Conds.push_back(Ctx.eq(NextStride, Sym.add(Reach, PrevStride)));
    PrevStride = NextStride;
  }
  const Expr *Span = Sym.intConst(0);
  for (const Dim &D : L.dims())
    Span = Sym.add(Span, D.Span);
  return CondLMAD{Ctx.andN(std::move(Conds)),
                  LMAD::makeStrided(One, Span, L.offset())};
}

const Pred *lmad::includedLMAD(PredContext &Ctx, const LMAD &A,
                               const LMAD &B) {
  sym::Context &Sym = Ctx.symCtx();
  if (A.rank() <= 1 && B.rank() <= 1)
    return includedLMAD1D(Ctx, A, B);
  // Overestimate A by flattening (sound for the subset side) and
  // underestimate B densely (sound for the superset side).
  LMAD AFlat = flatten1D(Sym, A);
  CondLMAD BU = denseUnderestimate(Ctx, B);
  return Ctx.and2(BU.Cond, includedLMAD1D(Ctx, AFlat, BU.Descriptor));
}

const Pred *lmad::fillsArray(PredContext &Ctx, const LMAD &L,
                             const Expr *Size) {
  sym::Context &Sym = Ctx.symCtx();
  CondLMAD U = denseUnderestimate(Ctx, L);
  Interval I = intervalOverestimate(Sym, U.Descriptor);
  return Ctx.andN({U.Cond, Ctx.le(U.Descriptor.offset(), Sym.intConst(0)),
                   Ctx.ge(I.Hi, Sym.addConst(Size, -1))});
}

//===----------------------------------------------------------------------===//
// Set lifts
//===----------------------------------------------------------------------===//

const Pred *lmad::disjointSets(PredContext &Ctx, const LMADSet &A,
                               const LMADSet &B) {
  std::vector<const Pred *> Cs;
  Cs.reserve(A.size() * B.size());
  for (const LMAD &LA : A)
    for (const LMAD &LB : B)
      Cs.push_back(disjointLMAD(Ctx, LA, LB));
  return Ctx.andN(std::move(Cs));
}

const Pred *lmad::includedSets(PredContext &Ctx, const LMADSet &A,
                               const LMADSet &B) {
  std::vector<const Pred *> All;
  All.reserve(A.size());
  for (const LMAD &LA : A) {
    std::vector<const Pred *> Any;
    Any.reserve(B.size());
    for (const LMAD &LB : B)
      Any.push_back(includedLMAD(Ctx, LA, LB));
    All.push_back(Ctx.orN(std::move(Any)));
  }
  return Ctx.andN(std::move(All));
}
