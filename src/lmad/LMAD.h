//===- lmad/LMAD.h - Linear memory access descriptors ----------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LMADs (linear memory access descriptors, Paek/Hoeflinger/Padua) are the
/// leaf sets of the USR language (Sec. 2.1 of the paper):
///
///   [d1,...,dM] v [s1,...,sM] + t
///     ==  { t + i1*d1 + ... + iM*dM | 0 <= ik*dk <= sk }
///
/// with symbolic strides dk, spans sk and offset t, all assumed
/// non-negative strides (the paper's simplifying assumption). Offsets are
/// 0-based linearized element offsets, which makes LMADs transparent to
/// array reshaping at call sites (Sec. 2.1: an LMAD is by definition a set
/// of unidimensional points).
///
/// Aggregating an access over a loop adds one "virtual" dimension; the
/// union over i in [lo,hi] of `a*i + b + pts` is *exactly* the LMAD with a
/// new dimension [a] v [a*(hi-lo)] and offset a*lo + b, provided hi >= lo
/// (callers gate on loop non-emptiness to stay exact).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_LMAD_LMAD_H
#define HALO_LMAD_LMAD_H

#include "sym/Eval.h"
#include "sym/Expr.h"

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace halo {
namespace lmad {

/// One (virtual) dimension: stride and span (span = stride * (count - 1)).
struct Dim {
  const sym::Expr *Stride = nullptr;
  const sym::Expr *Span = nullptr;

  bool operator==(const Dim &O) const {
    return Stride == O.Stride && Span == O.Span;
  }
};

/// A linear memory access descriptor over one array.
class LMAD {
public:
  LMAD() = default;
  LMAD(std::vector<Dim> Dims, const sym::Expr *Offset)
      : Dims(std::move(Dims)), Offset(Offset) {}

  /// Single point {offset}.
  static LMAD makePoint(const sym::Expr *Offset) { return LMAD({}, Offset); }
  /// One-dimensional descriptor [stride] v [span] + offset.
  static LMAD makeStrided(const sym::Expr *Stride, const sym::Expr *Span,
                          const sym::Expr *Offset) {
    return LMAD({Dim{Stride, Span}}, Offset);
  }
  /// Contiguous interval [offset, offset + len - 1] (stride 1).
  static LMAD makeInterval(sym::Context &Ctx, const sym::Expr *Offset,
                           const sym::Expr *Len);

  const std::vector<Dim> &dims() const { return Dims; }
  const sym::Expr *offset() const { return Offset; }
  bool isPoint() const { return Dims.empty(); }
  size_t rank() const { return Dims.size(); }

  bool operator==(const LMAD &O) const {
    return Offset == O.Offset && Dims == O.Dims;
  }

  /// True iff no component mentions \p S.
  bool dependsOn(sym::SymbolId S) const;
  /// True iff every component is invariant w.r.t. loop depth \p D.
  bool isInvariantAtDepth(int D, const sym::Context &Ctx) const;

  void print(std::ostream &OS, const sym::Context &Ctx) const;
  std::string toString(const sym::Context &Ctx) const;

private:
  std::vector<Dim> Dims;
  const sym::Expr *Offset = nullptr;
};

/// A set of LMADs (the leaf payload of a USR node).
using LMADSet = std::vector<LMAD>;

//===----------------------------------------------------------------------===//
// Symbolic operations
//===----------------------------------------------------------------------===//

/// Rewrites every component through the scalar substitution \p M.
LMAD substitute(sym::Context &Ctx, const LMAD &L,
                const std::map<sym::SymbolId, const sym::Expr *> &M);

/// Adds \p Delta to the offset (call-site translation of a formal array
/// parameter onto the actual argument's linearized offset).
LMAD translate(sym::Context &Ctx, const LMAD &L, const sym::Expr *Delta);

/// Aggregates \p L over `Var = Lo..Hi` (Sec. 2.1): the offset must be
/// linear in Var with a Var-invariant coefficient, and strides/spans must
/// be Var-invariant. The result is the exact union for Hi >= Lo. Negative
/// constant coefficients are normalized (the direction flips); symbolic
/// coefficients are assumed non-negative only when provably so, otherwise
/// aggregation fails and the caller falls back to a USR recurrence node.
std::optional<LMAD> aggregate(sym::Context &Ctx, const LMAD &L,
                              sym::SymbolId Var, const sym::Expr *Lo,
                              const sym::Expr *Hi);

/// Interval overestimate [lo, hi] of \p L (strides assumed non-negative):
/// lo = offset, hi = offset + sum of spans.
struct Interval {
  const sym::Expr *Lo;
  const sym::Expr *Hi;
};
Interval intervalOverestimate(sym::Context &Ctx, const LMAD &L);

/// 1-D overestimate used by FLATTEN_LMADS (Fig. 6a): stride = gcd of the
/// constant strides (or the common symbolic stride), span = sum of spans.
LMAD flatten1D(sym::Context &Ctx, const LMAD &L);

//===----------------------------------------------------------------------===//
// Concrete enumeration (reference semantics / exact runtime tests)
//===----------------------------------------------------------------------===//

/// Enumerates the concrete offsets of \p L under \p B into \p Out
/// (unsorted, may contain duplicates when dimensions overlap). Returns
/// false when evaluation fails or the set exceeds \p Cap points.
bool enumerate(const LMAD &L, const sym::Bindings &B,
               std::vector<int64_t> &Out, size_t Cap = 1u << 22);

} // namespace lmad
} // namespace halo

#endif // HALO_LMAD_LMAD_H
