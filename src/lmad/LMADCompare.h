//===- lmad/LMADCompare.h - Disjoint/included LMAD predicates --*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts sufficient predicates from LMAD comparisons (Sec. 3.2, Fig. 6a):
///
///  - 1-D disjointness: interleaved non-overlapping accesses
///    (`gcd(d1,d2) does not divide t1-t2`) or disjoint interval
///    overestimates (`t1 > t2+s2 or t2 > t1+s1`).
///  - 1-D inclusion: `d2 | d1 and d2 | t1-t2 and t1 >= t2 and
///    t1+s1 <= t2+s2`.
///  - Multi-dimensional disjointness: flatten to 1-D, unify dimensions,
///    project the (equal-stride) outer dimension with well-formedness
///    predicates, and recurse on inner/outer parts.
///  - FILLS_ARR: the predicate under which an LMAD covers the whole
///    declared array (rule (5) of Fig. 5).
///
/// All results are *sufficient* conditions: predicate true implies the set
/// relation holds. They may mention loop variables; the factorization layer
/// eliminates those with Fourier-Motzkin or wraps them in loop nodes.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_LMAD_LMADCOMPARE_H
#define HALO_LMAD_LMADCOMPARE_H

#include "lmad/LMAD.h"
#include "pdag/Pred.h"

namespace halo {
namespace lmad {

/// Sufficient predicate for `A intersect B == empty` (1-D inputs; callers
/// with multi-dimensional inputs use disjointLMAD).
const pdag::Pred *disjointLMAD1D(pdag::PredContext &Ctx, const LMAD &A,
                                 const LMAD &B);

/// Sufficient predicate for `A subset-of B` on 1-D LMADs.
const pdag::Pred *includedLMAD1D(pdag::PredContext &Ctx, const LMAD &A,
                                 const LMAD &B);

/// Sufficient predicate for `A intersect B == empty`, any ranks
/// (the DISJOINT_LMAD algorithm of Fig. 6a).
const pdag::Pred *disjointLMAD(pdag::PredContext &Ctx, const LMAD &A,
                               const LMAD &B);

/// Sufficient predicate for `A subset-of B`, any ranks (flattens B to a
/// dense 1-D underestimate when possible).
const pdag::Pred *includedLMAD(pdag::PredContext &Ctx, const LMAD &A,
                               const LMAD &B);

/// Sufficient predicate for `L covers [0, Size-1]` — the whole declared
/// array, 0-based linearized (FILLS_ARR, rule (5) of Fig. 5).
const pdag::Pred *fillsArray(pdag::PredContext &Ctx, const LMAD &L,
                             const sym::Expr *Size);

/// Conditional dense 1-D *underestimate* (P, L1d): when P holds, L1d is a
/// stride-1 LMAD whose set is contained in (here: equal to) L's. Used as
/// the inclusion target bDc in INCLUDED_APP.
struct CondLMAD {
  const pdag::Pred *Cond;
  LMAD Descriptor;
};
CondLMAD denseUnderestimate(pdag::PredContext &Ctx, const LMAD &L);

//===-- Set-of-LMAD lifts (footnote 2 of the paper) -----------------------==/

/// AND over all pairs: every LMAD of A disjoint from every LMAD of B.
const pdag::Pred *disjointSets(pdag::PredContext &Ctx, const LMADSet &A,
                               const LMADSet &B);

/// Every LMAD of A included in at least one LMAD of B.
const pdag::Pred *includedSets(pdag::PredContext &Ctx, const LMADSet &A,
                               const LMADSet &B);

} // namespace lmad
} // namespace halo

#endif // HALO_LMAD_LMADCOMPARE_H
