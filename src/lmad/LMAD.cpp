//===- lmad/LMAD.cpp - Linear memory access descriptors -------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "lmad/LMAD.h"

#include <cassert>
#include <numeric>
#include <sstream>

using namespace halo;
using namespace halo::lmad;
using sym::Expr;

LMAD LMAD::makeInterval(sym::Context &Ctx, const Expr *Offset,
                        const Expr *Len) {
  return makeStrided(Ctx.intConst(1), Ctx.addConst(Len, -1), Offset);
}

bool LMAD::dependsOn(sym::SymbolId S) const {
  if (Offset->dependsOn(S))
    return true;
  for (const Dim &D : Dims)
    if (D.Stride->dependsOn(S) || D.Span->dependsOn(S))
      return true;
  return false;
}

bool LMAD::isInvariantAtDepth(int D, const sym::Context &Ctx) const {
  if (!Offset->isInvariantAtDepth(D, Ctx))
    return false;
  for (const Dim &Dm : Dims)
    if (!Dm.Stride->isInvariantAtDepth(D, Ctx) ||
        !Dm.Span->isInvariantAtDepth(D, Ctx))
      return false;
  return true;
}

void LMAD::print(std::ostream &OS, const sym::Context &Ctx) const {
  OS << "[";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ",";
    Dims[I].Stride->print(OS, Ctx);
  }
  OS << "]v[";
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      OS << ",";
    Dims[I].Span->print(OS, Ctx);
  }
  OS << "]+";
  Offset->print(OS, Ctx);
}

std::string LMAD::toString(const sym::Context &Ctx) const {
  std::ostringstream OS;
  print(OS, Ctx);
  return OS.str();
}

LMAD lmad::substitute(sym::Context &Ctx, const LMAD &L,
                      const std::map<sym::SymbolId, const Expr *> &M) {
  std::vector<Dim> Dims;
  Dims.reserve(L.dims().size());
  for (const Dim &D : L.dims())
    Dims.push_back(Dim{Ctx.substitute(D.Stride, M), Ctx.substitute(D.Span, M)});
  return LMAD(std::move(Dims), Ctx.substitute(L.offset(), M));
}

LMAD lmad::translate(sym::Context &Ctx, const LMAD &L, const Expr *Delta) {
  return LMAD(std::vector<Dim>(L.dims()), Ctx.add(L.offset(), Delta));
}

std::optional<LMAD> lmad::aggregate(sym::Context &Ctx, const LMAD &L,
                                    sym::SymbolId Var, const Expr *Lo,
                                    const Expr *Hi) {
  // Strides and spans must not vary with the loop.
  for (const Dim &D : L.dims())
    if (D.Stride->dependsOn(Var) || D.Span->dependsOn(Var))
      return std::nullopt;

  auto Split = Ctx.splitLinearIn(L.offset(), Var);
  if (!Split)
    return std::nullopt;
  const Expr *A = Split->A;
  const Expr *B = Split->B;
  if (A->dependsOn(Var))
    return std::nullopt; // Quadratic in Var: no closed-form aggregation.

  if (A == Ctx.intConst(0))
    return L; // The access is invariant: the union over i is L itself.

  const Expr *Count = Ctx.addConst(Ctx.sub(Hi, Lo), 1);
  auto AC = Ctx.constValue(A);
  if (AC && *AC < 0) {
    // Negative constant stride: flip direction so strides stay positive.
    const Expr *PosA = Ctx.intConst(-*AC);
    const Expr *NewOffset = Ctx.add(Ctx.mul(A, Hi), B);
    const Expr *Span = Ctx.mul(PosA, Ctx.addConst(Count, -1));
    std::vector<Dim> Dims(L.dims());
    Dims.push_back(Dim{PosA, Span});
    return LMAD(std::move(Dims), NewOffset);
  }
  // Non-negative (constant or assumed-positive symbolic) stride.
  const Expr *NewOffset = Ctx.add(Ctx.mul(A, Lo), B);
  const Expr *Span = Ctx.mul(A, Ctx.addConst(Count, -1));
  std::vector<Dim> Dims(L.dims());
  Dims.push_back(Dim{A, Span});
  return LMAD(std::move(Dims), NewOffset);
}

Interval lmad::intervalOverestimate(sym::Context &Ctx, const LMAD &L) {
  const Expr *Hi = L.offset();
  for (const Dim &D : L.dims())
    Hi = Ctx.add(Hi, D.Span);
  return Interval{L.offset(), Hi};
}

LMAD lmad::flatten1D(sym::Context &Ctx, const LMAD &L) {
  if (L.rank() <= 1)
    return L;
  // gcd of constant strides; if all strides are the same symbolic
  // expression, that expression; otherwise stride 1 (always sound).
  bool AllConst = true;
  int64_t G = 0;
  bool AllSameSym = true;
  const Expr *FirstStride = L.dims().front().Stride;
  for (const Dim &D : L.dims()) {
    if (auto C = Ctx.constValue(D.Stride))
      G = std::gcd(G, *C);
    else
      AllConst = false;
    if (D.Stride != FirstStride)
      AllSameSym = false;
  }
  const Expr *Stride = nullptr;
  if (AllConst && G > 0)
    Stride = Ctx.intConst(G);
  else if (AllSameSym)
    Stride = FirstStride;
  else
    Stride = Ctx.intConst(1);

  const Expr *Span = Ctx.intConst(0);
  for (const Dim &D : L.dims())
    Span = Ctx.add(Span, D.Span);
  return LMAD::makeStrided(Stride, Span, L.offset());
}

bool lmad::enumerate(const LMAD &L, const sym::Bindings &B,
                     std::vector<int64_t> &Out, size_t Cap) {
  auto Offset = sym::tryEval(L.offset(), B);
  if (!Offset)
    return false;
  std::vector<std::pair<int64_t, int64_t>> DimVals; // (stride, count)
  size_t Total = 1;
  for (const Dim &D : L.dims()) {
    auto S = sym::tryEval(D.Stride, B);
    auto Sp = sym::tryEval(D.Span, B);
    if (!S || !Sp || *S < 0)
      return false;
    // A negative span denotes the empty set ({t + i*d | 0 <= i*d <= s}
    // has no solution): contribute nothing.
    if (*Sp < 0)
      return true;
    // Count of positions: span/stride + 1 (stride 0 with span 0 is a point).
    int64_t Count = (*S == 0) ? 1 : (*Sp / *S + 1);
    DimVals.emplace_back(*S, Count);
    if (Count <= 0)
      Count = 1;
    if (Total > Cap / static_cast<size_t>(Count))
      return false;
    Total *= static_cast<size_t>(Count);
  }
  Out.reserve(Out.size() + Total);
  // Odometer enumeration over all dimensions.
  std::vector<int64_t> Idx(DimVals.size(), 0);
  for (;;) {
    int64_t P = *Offset;
    for (size_t D = 0; D < DimVals.size(); ++D)
      P += Idx[D] * DimVals[D].first;
    Out.push_back(P);
    size_t D = 0;
    for (; D < DimVals.size(); ++D) {
      if (++Idx[D] < DimVals[D].second)
        break;
      Idx[D] = 0;
    }
    if (D == DimVals.size())
      break;
  }
  return true;
}
