//===- serve/Engine.h - Concurrent multi-program serving engine -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// halo::serve::Engine — the analyze-once / execute-MANY-CLIENTS layer.
///
/// The paper's HOIST-USR amortization argument (Sec. 5) pays off when one
/// analysis serves many executions; the session layer (session/Session.h)
/// made that one-program and single-threaded. The engine makes it
/// concurrent and multi-program:
///
///  - it owns N *shards*, each wrapping per-program sessions with their
///    own plan / predicate-compile / USR-compile caches (shard-local for
///    cache warmth, internally synchronized for the execute path — see
///    the contract in rt/CompiledCascade.h);
///  - a registry hash-routes every (program, loop) pair to one shard, so
///    a hot program's loops spread across shards while every request for
///    the same loop always lands where its caches are warm;
///  - submit()/submitBatch() enqueue execution requests onto a bounded
///    MPMC work queue (support/ThreadPool.h BoundedWorkQueue) drained by
///    a pool of worker threads; push-side backpressure (submit blocks at
///    capacity, trySubmit sheds load) bounds memory under overload;
///  - ServeStats aggregates the per-execution rt::ExecStats into
///    per-shard and engine-wide totals.
///
/// Concurrency contract (machine-checked: the locks below are
/// support/Sync.h capabilities, the guarded fields carry HALO_GUARDED_BY,
/// and CI's thread-safety job compiles the tree with
/// -Werror=thread-safety — see docs/CONCURRENCY.md for the full
/// capability map):
///
///  1. addProgram()/prepare() take the engine's config lock *exclusively*
///     — analysis interns into the program's shared symbol/predicate/USR
///     contexts, so it must never overlap an execution of that program.
///     A condition-variable gate parks workers (no spinning) while an
///     exclusive phase is pending or active, giving warm-up writer
///     preference over a saturated serving plane.
///  2. Workers take the config lock *shared* per request. The shard
///     mutex guards only the session-map lookup; the execution itself
///     runs with NO shard-wide lock held, so one hot prepared loop is
///     served by every worker at once (intra-shard concurrency).
///  3. Requests execute through Session::runPrepared(), which never
///     analyzes and is safe for concurrent callers: immutable
///     PreparedLoop plans, per-execution rt::ExecContext leases, and
///     internally-synchronized session caches (see session/Session.h).
///  4. Per-request stats land in per-worker accumulators (no shared
///     counters on the execute path) and are merged by stats().
///
/// Each request brings its own rt::Memory / sym::Bindings (the request's
/// dataset); results are therefore bit-identical to running the same
/// request sequentially through a lone Session (tests/serve_test.cpp pins
/// this under ThreadSanitizer, including the many-clients-one-loop case).
///
/// Robustness layer (see src/serve/README.md for the long form): every
/// future resolves with a classified Status (never an exception);
/// requests carry deadlines and cancellation tokens, shed at dequeue and
/// polled at the governor's stage/exact-test/chunk boundaries; transient
/// retry-safe failures are retried with bounded backoff; and a per-loop
/// circuit breaker demotes a repeatedly-failing loop to the
/// always-correct sequential tier, probing for recovery after a
/// deterministic cooldown. A seedable fault-injection registry
/// (support/FaultInjection.h) drives the chaos suite pinning all of this.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SERVE_ENGINE_H
#define HALO_SERVE_ENGINE_H

#include "session/Session.h"
#include "support/CancelToken.h"
#include "support/Sync.h"

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace halo {
namespace serve {

/// Handle for one registered program (index into the engine's program
/// table; returned by Engine::addProgram).
using ProgramId = uint32_t;

/// Engine sizing knobs, fixed at construction.
struct EngineOptions {
  /// Number of shards (independent session groups). Shards partition the
  /// cache working set; since executions no longer serialize per shard,
  /// more shards buy cache locality, not concurrency (workers do that).
  unsigned Shards = 4;
  /// Worker threads draining the request queue. This is the execution
  /// concurrency — even a single (program, loop) can be served by all
  /// workers at once.
  unsigned Workers = 2;
  /// Bounded request-queue capacity (the backpressure point).
  size_t QueueCapacity = 256;
  /// Template for every shard session. Threads defaults to 1 here (unlike
  /// a standalone session): serving-side parallelism comes from workers,
  /// not from fan-out inside one request.
  session::SessionOptions Session;

  /// Warm-start: path of a .hplan plan-cache stream (plan/Plan.h) loaded
  /// into each shard session when it is first created (under the same
  /// writer-preference exclusive gate prepare() takes). Prepared loops
  /// whose label and re-derived plan key match a loaded plan skip full
  /// analysis; everything else cold-starts exactly as without the file.
  /// A missing, stale (version-skewed) or corrupt file degrades to a
  /// cold start — it never fails engine construction or prepare().
  /// Empty (default) disables warm-start.
  std::string PlanCachePath;

  /// Retries per repeat for *transient, retry-safe* failures (a failure
  /// observed before the repeat touched the request's memory, e.g. losing
  /// the plan-retirement race during a concurrent re-prepare). 0 disables
  /// retrying.
  unsigned MaxRetries = 3;
  /// Backoff before the first retry; doubles per attempt. The sleeping
  /// worker is off-duty, which is exactly the point: a transient failure
  /// signals contention somewhere.
  std::chrono::microseconds RetryBackoff{50};
  /// Circuit breaker: consecutive ExecError / mid-run-Expired outcomes on
  /// one prepared loop that trip its breaker open (the loop is then
  /// served by the always-correct sequential tier). 0 disables the
  /// breaker.
  unsigned BreakerThreshold = 5;
  /// Degraded requests served while open before the breaker half-opens
  /// and probes the normal tier again. Counted in requests (not time) so
  /// breaker tests and replayed chaos runs are deterministic.
  unsigned BreakerCooldown = 8;

  EngineOptions() { Session.Threads = 1; }
};

/// Structured outcome of a served request: every future resolves with
/// exactly one of these — no error ever travels as an exception through a
/// future.
enum class Status : uint8_t {
  /// Served by the normal (planned) tier.
  Ok = 0,
  /// Never executed: shed at capacity, refused at shutdown, or failed
  /// request validation (unknown program, unprepared loop, null dataset).
  Rejected,
  /// The request's deadline passed — at dequeue (shed before any work) or
  /// mid-run (the execution unwound at a cancellation boundary).
  Expired,
  /// The caller's CancelToken fired.
  Cancelled,
  /// The execute path failed (exception, exhausted retries, or a vanished
  /// plan). Feeds the loop's circuit breaker.
  ExecError,
  /// Served correctly by the degraded sequential tier while the loop's
  /// circuit breaker is open. Results are exact; only the execution
  /// strategy differs.
  DegradedOk,
};

/// Stable display name of \p S ("Ok", "Rejected", ...).
const char *statusName(Status S);

/// One execution request. The caller owns \p M and \p B (the request's
/// dataset) and must keep them alive and untouched until the response
/// future resolves.
struct Request {
  ProgramId Program = 0;
  const ir::DoLoop *Loop = nullptr;
  rt::Memory *M = nullptr;
  sym::Bindings *B = nullptr;
  /// Executions of the loop to run back-to-back (a mini runBatch); the
  /// whole batch runs on one worker without re-dispatch.
  unsigned Repeats = 1;
  /// Absolute deadline (steady clock). Default (epoch) means none. An
  /// expired request is shed at dequeue before any work; one expiring
  /// mid-run unwinds at the next cancellation boundary, leaving the
  /// request's memory either untouched or with only whole repeats
  /// applied.
  std::chrono::steady_clock::time_point Deadline{};
  /// Caller-held cancellation token (optional; must outlive the response
  /// future). The engine derives its per-request token from this, so
  /// firing it cancels the request wherever it currently is.
  const support::CancelToken *Cancel = nullptr;
};

/// What a request resolves to.
struct Response {
  /// True iff the request was served with correct results (St is Ok or
  /// DegradedOk) — the coarse yes/no view of \p St.
  bool OK = false;
  /// Structured outcome classification (see Status).
  Status St = Status::Rejected;
  /// Why the request failed (set iff OK is false): unknown program id,
  /// loop never prepared, null dataset, expired, cancelled, exec error.
  std::string Error;
  /// Shard that served (or would have served) the request; ~0u when the
  /// request was unroutable (unknown program / null loop).
  unsigned Shard = ~0u;
  /// Transient-failure retries this request consumed across its repeats.
  unsigned Retries = 0;
  /// Per-repeat execution stats, in order. Populated only when OK is
  /// true (a failed request never carries a partial success payload).
  /// Degraded (sequential-tier) repeats carry timing-only entries.
  std::vector<rt::ExecStats> Stats;
};

/// Per-shard serving totals (a snapshot; see Engine::stats).
struct ShardStats {
  uint64_t Completed = 0;  ///< Requests served successfully (Ok or
                           ///< DegradedOk).
  uint64_t Failed = 0;     ///< Requests that failed shard-side validation
                           ///< or exhausted the execute path (ExecError).
  uint64_t Executions = 0; ///< Normal-tier loop executions (sum of served
                           ///< request repeats; degraded repeats count in
                           ///< DegradedExecs instead).
  uint64_t Expired = 0;    ///< Requests shed or unwound on a deadline.
  uint64_t Cancelled = 0;  ///< Requests stopped by a caller's token.
  uint64_t Retried = 0;    ///< Transient-failure retry attempts.
  uint64_t ExecErrors = 0; ///< Requests classified ExecError.
  uint64_t BreakerOpen = 0;   ///< Circuit-breaker open transitions.
  uint64_t DegradedExecs = 0; ///< Sequential-tier executions served while
                              ///< a breaker was open (or probing peers).
  rt::ExecStats Exec;      ///< All per-execution stats, accumulated.
  size_t Programs = 0;      ///< Programs with a session on this shard.
  size_t PreparedLoops = 0; ///< Plans cached across the shard's sessions.
  size_t CompiledPreds = 0; ///< Predicates lowered by the shard's caches.
  size_t CompiledUSRs = 0;  ///< USRs lowered by the shard's caches.
  size_t PooledFrames = 0;  ///< Pooled predicate frames on the shard.
  size_t ExecContexts = 0;  ///< Execution contexts created on the shard —
                            ///< the high-water mark of concurrent
                            ///< executions its sessions have served.
  size_t PlansWarmStarted = 0; ///< Plans adopted from the engine's plan
                               ///< cache (EngineOptions::PlanCachePath)
                               ///< instead of analyzed.

  ShardStats &operator+=(const ShardStats &O) {
    Completed += O.Completed;
    Failed += O.Failed;
    Executions += O.Executions;
    Expired += O.Expired;
    Cancelled += O.Cancelled;
    Retried += O.Retried;
    ExecErrors += O.ExecErrors;
    BreakerOpen += O.BreakerOpen;
    DegradedExecs += O.DegradedExecs;
    Exec += O.Exec;
    Programs += O.Programs;
    PreparedLoops += O.PreparedLoops;
    CompiledPreds += O.CompiledPreds;
    CompiledUSRs += O.CompiledUSRs;
    PooledFrames += O.PooledFrames;
    ExecContexts += O.ExecContexts;
    PlansWarmStarted += O.PlansWarmStarted;
    return *this;
  }
};

/// Engine-wide serving totals (a snapshot; see Engine::stats).
struct ServeStats {
  uint64_t Submitted = 0;  ///< Requests accepted onto the queue.
  uint64_t Rejected = 0;   ///< trySubmit loads shed at capacity.
  uint64_t Unroutable = 0; ///< Requests with no valid shard target.
  uint64_t Expired = 0;    ///< Deadline-shed/unwound requests (all shards).
  uint64_t Cancelled = 0;  ///< Token-stopped requests (all shards).
  uint64_t Retried = 0;    ///< Transient-failure retries (all shards).
  uint64_t BreakerOpen = 0;    ///< Breaker open transitions (all shards).
  uint64_t DegradedExecs = 0;  ///< Degraded-tier executions (all shards).
  size_t QueueDepth = 0;     ///< Requests queued right now.
  size_t PeakQueueDepth = 0; ///< Queue high-water mark since construction.
  std::vector<ShardStats> Shards; ///< One entry per shard, in shard order.

  /// Sums the per-shard entries.
  ShardStats totals() const {
    ShardStats T;
    for (const ShardStats &S : Shards)
      T += S;
    return T;
  }
};

/// The thread-safe multi-program serving engine. See the file comment for
/// the shard/queue architecture and the concurrency contract.
class Engine {
public:
  explicit Engine(EngineOptions Opts = EngineOptions());
  /// Runs shutdown(), then joins the workers. No accepted request's
  /// future is ever abandoned.
  ~Engine();

  /// Explicit orderly shutdown: closes the queue (new submits are refused
  /// and resolve Rejected) and waits until every already-accepted request
  /// has been served. Idempotent, and safe to race with drain() or with
  /// the destructor — the close/drain/shutdown ordering contract lives on
  /// BoundedWorkQueue. Must not be called from a worker (it drains).
  void shutdown();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Registers a program for serving and returns its handle. \p Prog and
  /// \p Ctx must outlive the engine. Takes the config lock exclusively
  /// (waits for in-flight requests; see the concurrency contract).
  ProgramId addProgram(ir::Program &Prog, usr::USRContext &Ctx)
      HALO_EXCLUDES(ConfigLock);

  /// Analyzes \p Loop once, in the session of its owning shard, and
  /// registers it for serving (the warm-up step: plans, compiled
  /// cascades, compiled USRs and frames are all built here, so no served
  /// request ever analyzes). Takes the config lock exclusively. Invalid
  /// \p Program throws std::out_of_range; a label collision (a
  /// *different* loop of the same program already registered under this
  /// IR label) throws std::invalid_argument instead of silently
  /// re-routing the label's traffic.
  const session::PreparedLoop &
  prepare(ProgramId Program, const ir::DoLoop &Loop,
          const analysis::AnalyzerOptions &Opts) HALO_EXCLUDES(ConfigLock);
  /// Same with the shard session's default analyzer options.
  const session::PreparedLoop &
  prepare(ProgramId Program, const ir::DoLoop &Loop)
      HALO_EXCLUDES(ConfigLock);

  /// Finds a prepared loop by (program, IR label) — the engine's loop-id
  /// addressing for clients that do not hold IR pointers. Returns nullptr
  /// for unknown ids. Labels are collision-checked at prepare time, so a
  /// non-null result is the unique loop serving that label.
  const ir::DoLoop *findLoop(ProgramId Program, std::string_view Label)
      const HALO_EXCLUDES(ConfigLock);

  /// Shard that requests for (\p Program, \p Loop) are routed to.
  unsigned shardOf(ProgramId Program, const ir::DoLoop &Loop) const;
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// Enqueues \p R, blocking while the queue is at capacity
  /// (backpressure). The future resolves once a worker served the
  /// request; an engine being destroyed resolves it with an error.
  std::future<Response> submit(Request R) HALO_EXCLUDES(FinMutex);

  /// Non-blocking submit: refuses (returns false, counts a rejection)
  /// when the queue is full instead of waiting. On success \p Out is the
  /// response future.
  bool trySubmit(Request R, std::future<Response> &Out)
      HALO_EXCLUDES(FinMutex);

  /// Enqueues every request in order (blocking semantics of submit()).
  std::vector<std::future<Response>> submitBatch(std::vector<Request> Rs);

  /// Blocks until every accepted request has been served. Must not be
  /// called from a worker (i.e. from inside a response future chain) or
  /// while holding an ExclusiveHold.
  void drain() HALO_EXCLUDES(FinMutex);

  /// RAII handle over an exclusive pause of the serving plane, as
  /// prepare()'s warm-up critical section takes one: while it lives,
  /// workers are parked on the writer-preference gate (blocked on a
  /// condition variable, not spinning) and the holder may mutate the
  /// registered programs' shared contexts safely. Released on
  /// destruction.
  class ExclusiveHold {
  public:
    ExclusiveHold(ExclusiveHold &&) noexcept = default;
    ExclusiveHold(const ExclusiveHold &) = delete;
    ExclusiveHold &operator=(const ExclusiveHold &) = delete;
    ExclusiveHold &operator=(ExclusiveHold &&) = delete;
    ~ExclusiveHold();

  private:
    friend class Engine;
    explicit ExclusiveHold(Engine &E);
    struct Impl;
    std::unique_ptr<Impl> I;
  };

  /// Pauses serving (exclusive config lock + parked workers) until the
  /// returned hold is destroyed. Do not submit-and-wait, drain(), or call
  /// stats() while holding it.
  ExclusiveHold quiesce() HALO_EXCLUDES(ConfigLock);

  /// Snapshot of the serving counters, per shard and engine-wide.
  ServeStats stats() const HALO_EXCLUDES(ConfigLock);

private:
  /// One shard: per-program sessions. The mutex guards only the map
  /// lookup; executions run outside it (sessions are internally safe for
  /// concurrent runPrepared). The map itself is only mutated during
  /// config-exclusive phases.
  struct Shard {
    support::Mutex M;
    std::map<ProgramId, std::unique_ptr<session::Session>> Sessions
        HALO_GUARDED_BY(M);
  };
  struct ProgramEntry {
    ir::Program *Prog = nullptr;
    usr::USRContext *Ctx = nullptr;
  };
  /// Per-request counters one worker accumulated for one shard.
  struct ShardCounters {
    uint64_t Completed = 0;
    uint64_t Failed = 0;
    uint64_t Executions = 0;
    uint64_t Expired = 0;
    uint64_t Cancelled = 0;
    uint64_t Retried = 0;
    uint64_t ExecErrors = 0;
    uint64_t BreakerOpen = 0;
    uint64_t DegradedExecs = 0;
    rt::ExecStats Exec;
  };
  /// One worker's accumulators, one row per shard. The mutex is owned by
  /// that worker in practice (contention-free on the serving path) and
  /// taken by stats() snapshots only.
  struct WorkerCounters {
    support::Mutex M;
    std::vector<ShardCounters> Shards HALO_GUARDED_BY(M);
  };
  /// RAII writer-preference section: raises the gate (parking workers),
  /// takes the config lock exclusively, releases both on destruction.
  class HALO_SCOPED_CAPABILITY ExclusiveSection;

  /// Per-prepared-loop health: the closed -> open -> half-open circuit
  /// breaker demoting a misbehaving loop to the sequential tier. Entries
  /// are created (and reset) at prepare time under the exclusive config
  /// lock and only read (atomics) on the serving path.
  struct Breaker {
    /// 0 closed, 1 open, 2 half-open (probe in flight).
    std::atomic<uint8_t> State{0};
    /// Consecutive breaker-relevant failures (ExecError / mid-run
    /// Expired) while closed; reset by any Ok.
    std::atomic<uint32_t> Fails{0};
    /// Degraded requests served since the breaker opened; reaching
    /// EngineOptions::BreakerCooldown triggers the half-open probe.
    std::atomic<uint32_t> OpenServed{0};
  };

  const session::PreparedLoop &
  prepareImpl(ProgramId Program, const ir::DoLoop &Loop,
              const analysis::AnalyzerOptions *AOpts)
      HALO_EXCLUDES(ConfigLock);
  Response process(const Request &R) HALO_EXCLUDES(ConfigLock);
  /// The unit of work a worker dequeues: process() under a top-level
  /// catch-all so no exception can cross the drained-task boundary and
  /// kill the worker; always resolves the promise and always counts the
  /// request finished.
  void serveTask(const Request &R,
                 const std::shared_ptr<std::promise<Response>> &Prom);
  void finishOne() HALO_EXCLUDES(FinMutex);
  /// The long-running per-worker drain loop (records worker identity so
  /// process() can find its accumulator without shared state).
  void drainLoop(unsigned Worker);
  /// The calling worker's accumulator row set.
  WorkerCounters &myCounters();

  EngineOptions Opts;
  /// Exclusive for addProgram/prepare (analysis mutates shared contexts),
  /// shared for request processing and stats snapshots.
  mutable support::SharedMutex ConfigLock;
  /// Writer-preference gate for ConfigLock: PendingExclusive is nonzero
  /// while an exclusive section is pending or active; workers park on
  /// GateCv before taking new shared locks. Without the gate, glibc's
  /// reader-preferring rwlock would let a saturated serving plane starve
  /// warm-up forever; with a condvar (instead of the yield-spin this
  /// replaced) the parked workers burn no CPU. The counter is atomic so
  /// the steady-state fast path is one relaxed-cost load with no mutex;
  /// decrements happen under GateM (a waiter between its predicate check
  /// and its sleep holds GateM, so the wakeup cannot be lost).
  mutable support::Mutex GateM;
  mutable support::CondVar GateCv;
  std::atomic<unsigned> PendingExclusive{0};
  std::vector<ProgramEntry> Programs HALO_GUARDED_BY(ConfigLock);
  /// (program, loop label) -> prepared loop, for id-based addressing.
  /// Collision-checked at prepare time.
  std::map<std::pair<ProgramId, std::string>, const ir::DoLoop *> Labels
      HALO_GUARDED_BY(ConfigLock);
  /// (program, loop) -> circuit breaker. Like Labels: inserted/reset only
  /// under the exclusive config lock (prepare), looked up under the
  /// shared lock; the Breaker's own fields are atomics.
  std::map<std::pair<ProgramId, const ir::DoLoop *>,
           std::unique_ptr<Breaker>>
      Breakers HALO_GUARDED_BY(ConfigLock);
  std::vector<std::unique_ptr<Shard>> Shards;
  /// One accumulator set per worker, created up front (index == worker).
  std::vector<std::unique_ptr<WorkerCounters>> PerWorker;
  BoundedWorkQueue Queue;

  /// Request accounting for drain(): Accepted counts queue admissions,
  /// Finished counts fulfilled futures (served or shed after admission).
  mutable support::Mutex FinMutex;
  support::CondVar FinCv;
  uint64_t Accepted HALO_GUARDED_BY(FinMutex) = 0;
  uint64_t Finished HALO_GUARDED_BY(FinMutex) = 0;
  uint64_t RejectedCount HALO_GUARDED_BY(FinMutex) = 0;
  uint64_t UnroutableCount HALO_GUARDED_BY(FinMutex) = 0;

  /// Declared last: destroyed (joined) first, while Queue still exists.
  ThreadPool Workers;
};

} // namespace serve
} // namespace halo

#endif // HALO_SERVE_ENGINE_H
