//===- serve/Engine.cpp - Concurrent multi-program serving engine ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <utility>

using namespace halo;
using namespace halo::serve;

namespace {

EngineOptions sanitized(EngineOptions O) {
  O.Shards = std::max(1u, O.Shards);
  O.Workers = std::max(1u, O.Workers);
  O.QueueCapacity = std::max<size_t>(1, O.QueueCapacity);
  return O;
}

} // namespace

Engine::Engine(EngineOptions O)
    : Opts(sanitized(std::move(O))), Queue(Opts.QueueCapacity),
      Workers(Opts.Workers, ThreadPool::SingleThread::Spawn) {
  Shards.reserve(Opts.Shards);
  for (unsigned I = 0; I != Opts.Shards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  // Every worker becomes a drainer of the request queue for the engine's
  // whole lifetime; the pool is dedicated to that (requests fan out over
  // shards, not over this pool).
  Workers.drainQueue(Queue);
}

Engine::~Engine() {
  // Refuse new requests, let the workers serve everything already
  // accepted (close() keeps the queue poppable until drained), then the
  // ThreadPool member's destructor joins them.
  Queue.close();
}

ProgramId Engine::addProgram(ir::Program &Prog, usr::USRContext &Ctx) {
  ++PendingExclusive;
  std::unique_lock<std::shared_mutex> Cfg(ConfigLock);
  --PendingExclusive;
  Programs.push_back(ProgramEntry{&Prog, &Ctx});
  return static_cast<ProgramId>(Programs.size() - 1);
}

const session::PreparedLoop &
Engine::prepareImpl(ProgramId Program, const ir::DoLoop &Loop,
                    const analysis::AnalyzerOptions *AOpts) {
  // Announce the exclusive intent first: workers pause before taking new
  // shared locks, so a reader-preferring rwlock cannot starve warm-up
  // under sustained traffic (see process()).
  ++PendingExclusive;
  std::unique_lock<std::shared_mutex> Cfg(ConfigLock);
  --PendingExclusive;
  ProgramEntry &PE = Programs.at(Program);
  Shard &S = *Shards[shardOf(Program, Loop)];
  std::unique_ptr<session::Session> &Sess = S.Sessions[Program];
  if (!Sess)
    Sess = std::make_unique<session::Session>(*PE.Prog, *PE.Ctx,
                                              Opts.Session);
  const session::PreparedLoop &PL =
      AOpts ? Sess->prepare(Loop, *AOpts) : Sess->prepare(Loop);
  Labels[{Program, Loop.getLabel()}] = &Loop;
  return PL;
}

const session::PreparedLoop &
Engine::prepare(ProgramId Program, const ir::DoLoop &Loop,
                const analysis::AnalyzerOptions &AOpts) {
  return prepareImpl(Program, Loop, &AOpts);
}

const session::PreparedLoop &Engine::prepare(ProgramId Program,
                                             const ir::DoLoop &Loop) {
  return prepareImpl(Program, Loop, nullptr);
}

const ir::DoLoop *Engine::findLoop(ProgramId Program,
                                   std::string_view Label) const {
  std::shared_lock<std::shared_mutex> Cfg(ConfigLock);
  auto It = Labels.find({Program, std::string(Label)});
  return It == Labels.end() ? nullptr : It->second;
}

unsigned Engine::shardOf(ProgramId Program, const ir::DoLoop &Loop) const {
  // Hash-sharded registry: route by (program, loop) so one hot program's
  // loops spread over shards while any single loop always lands on the
  // shard whose caches served it before.
  size_t H = std::hash<const ir::DoLoop *>{}(&Loop);
  hashCombine(H, static_cast<size_t>(Program) + 0x9e3779b9u);
  return static_cast<unsigned>(H % Shards.size());
}

void Engine::finishOne() {
  {
    std::lock_guard<std::mutex> L(FinMutex);
    ++Finished;
  }
  FinCv.notify_all();
}

Response Engine::process(const Request &R) {
  // Shared: excludes addProgram/prepare (which intern into the shared
  // contexts) but runs concurrently with every other request. The
  // pending-exclusive gate gives warm-up writer preference: glibc's
  // rwlock lets new readers barge past a waiting writer, so without the
  // pause a saturated serving plane would starve prepare() forever.
  while (PendingExclusive.load(std::memory_order_acquire) > 0)
    std::this_thread::yield();
  std::shared_lock<std::shared_mutex> Cfg(ConfigLock);
  Response Resp;
  if (R.Program >= Programs.size() || !R.Loop) {
    std::lock_guard<std::mutex> L(FinMutex);
    ++UnroutableCount;
    Resp.Error = R.Loop ? "unknown program id" : "null loop";
    return Resp;
  }
  const unsigned SI = shardOf(R.Program, *R.Loop);
  Resp.Shard = SI;
  Shard &S = *Shards[SI];
  std::lock_guard<std::mutex> SL(S.M);
  auto It = S.Sessions.find(R.Program);
  session::Session *Sess = It == S.Sessions.end() ? nullptr
                                                  : It->second.get();
  if (!Sess || !Sess->isPrepared(*R.Loop)) {
    ++S.Stats.Failed;
    Resp.Error = "loop was never prepared on this engine";
    return Resp;
  }
  if (!R.M || !R.B) {
    ++S.Stats.Failed;
    Resp.Error = "request carries no memory/bindings";
    return Resp;
  }
  const unsigned Repeats = std::max(1u, R.Repeats);
  Resp.Stats.reserve(Repeats);
  for (unsigned E = 0; E != Repeats; ++E) {
    // Never analyzes (the loop is prepared): shared contexts stay
    // read-only, per the concurrency contract.
    std::optional<rt::ExecStats> St = Sess->runPrepared(*R.Loop, *R.M, *R.B);
    assert(St && "isPrepared was just checked under the shard lock");
    S.Stats.Exec += *St;
    ++S.Stats.Executions;
    Resp.Stats.push_back(*St);
  }
  ++S.Stats.Completed;
  Resp.OK = true;
  return Resp;
}

std::future<Response> Engine::submit(Request R) {
  auto Prom = std::make_shared<std::promise<Response>>();
  std::future<Response> Fut = Prom->get_future();
  {
    std::lock_guard<std::mutex> L(FinMutex);
    ++Accepted;
  }
  const bool Queued = Queue.push([this, R, Prom] {
    Prom->set_value(process(R));
    finishOne();
  });
  if (!Queued) {
    // Engine shutting down: resolve the future instead of abandoning it.
    // Nothing was admitted, so this counts as rejected, not submitted.
    {
      std::lock_guard<std::mutex> L(FinMutex);
      --Accepted;
      ++RejectedCount;
    }
    FinCv.notify_all();
    Response Resp;
    Resp.Error = "engine is shut down";
    Prom->set_value(std::move(Resp));
  }
  return Fut;
}

bool Engine::trySubmit(Request R, std::future<Response> &Out) {
  auto Prom = std::make_shared<std::promise<Response>>();
  std::future<Response> Fut = Prom->get_future();
  {
    std::lock_guard<std::mutex> L(FinMutex);
    ++Accepted;
  }
  const bool Queued = Queue.tryPush([this, R, Prom] {
    Prom->set_value(process(R));
    finishOne();
  });
  if (!Queued) {
    {
      std::lock_guard<std::mutex> L(FinMutex);
      --Accepted; // Nothing admitted; undo for drain accounting.
      ++RejectedCount;
    }
    // The transient ++Accepted may have parked a drain(); re-evaluate.
    FinCv.notify_all();
    return false;
  }
  Out = std::move(Fut);
  return true;
}

std::vector<std::future<Response>> Engine::submitBatch(
    std::vector<Request> Rs) {
  std::vector<std::future<Response>> Out;
  Out.reserve(Rs.size());
  for (Request &R : Rs)
    Out.push_back(submit(R));
  return Out;
}

void Engine::drain() {
  std::unique_lock<std::mutex> L(FinMutex);
  FinCv.wait(L, [this] { return Finished >= Accepted; });
}

ServeStats Engine::stats() const {
  std::shared_lock<std::shared_mutex> Cfg(ConfigLock);
  ServeStats Out;
  {
    std::lock_guard<std::mutex> L(FinMutex);
    Out.Submitted = Accepted;
    Out.Rejected = RejectedCount;
    Out.Unroutable = UnroutableCount;
  }
  Out.QueueDepth = Queue.size();
  Out.PeakQueueDepth = Queue.peakDepth();
  Out.Shards.reserve(Shards.size());
  for (const std::unique_ptr<Shard> &SP : Shards) {
    Shard &S = *SP;
    std::lock_guard<std::mutex> SL(S.M);
    ShardStats SS = S.Stats;
    SS.Programs = S.Sessions.size();
    for (const auto &KV : S.Sessions) {
      SS.PreparedLoops += KV.second->numPreparedLoops();
      SS.CompiledPreds += KV.second->numCompiledPreds();
      SS.CompiledUSRs += KV.second->numCompiledUSRs();
      SS.PooledFrames += KV.second->numPooledFrames();
    }
    Out.Shards.push_back(std::move(SS));
  }
  return Out;
}
