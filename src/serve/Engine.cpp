//===- serve/Engine.cpp - Concurrent multi-program serving engine ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

using namespace halo;
using namespace halo::serve;

namespace {

EngineOptions sanitized(EngineOptions O) {
  O.Shards = std::max(1u, O.Shards);
  O.Workers = std::max(1u, O.Workers);
  O.QueueCapacity = std::max<size_t>(1, O.QueueCapacity);
  return O;
}

/// Identity of the engine worker running on this thread, recorded by
/// drainLoop. Worker threads belong to exactly one engine for their whole
/// lifetime, so a (engine, index) pair never goes stale while the thread
/// runs.
thread_local const void *TlEngine = nullptr;
thread_local unsigned TlWorker = 0;

} // namespace

//===----------------------------------------------------------------------===//
// Exclusive sections (warm-up / quiesce) and the writer-preference gate
//===----------------------------------------------------------------------===//

/// Raises PendingExclusive for its whole lifetime (workers park on the
/// gate, burning no CPU) and holds the config lock exclusively. The gate
/// stays raised until release so a stream of back-to-back exclusive
/// sections keeps its writer preference.
class Engine::ExclusiveSection {
public:
  explicit ExclusiveSection(Engine &E) : E(E) {
    // Raising needs no GateM: it only makes workers (start to) wait,
    // it never wakes one.
    E.PendingExclusive.fetch_add(1, std::memory_order_release);
    Lock = std::unique_lock<std::shared_mutex>(E.ConfigLock);
  }
  ~ExclusiveSection() {
    Lock.unlock();
    {
      // Decrement under GateM: a worker between its predicate check and
      // its sleep holds GateM, so this transition cannot slip past it
      // (no lost wakeup).
      std::lock_guard<std::mutex> G(E.GateM);
      E.PendingExclusive.fetch_sub(1, std::memory_order_release);
    }
    E.GateCv.notify_all();
  }
  ExclusiveSection(const ExclusiveSection &) = delete;
  ExclusiveSection &operator=(const ExclusiveSection &) = delete;

private:
  Engine &E;
  std::unique_lock<std::shared_mutex> Lock;
};

struct Engine::ExclusiveHold::Impl {
  explicit Impl(Engine &E) : Section(E) {}
  ExclusiveSection Section;
};

Engine::ExclusiveHold::ExclusiveHold(Engine &E)
    : I(std::make_unique<Impl>(E)) {}
Engine::ExclusiveHold::~ExclusiveHold() = default;

Engine::ExclusiveHold Engine::quiesce() { return ExclusiveHold(*this); }

//===----------------------------------------------------------------------===//
// Construction / shutdown
//===----------------------------------------------------------------------===//

Engine::Engine(EngineOptions O)
    : Opts(sanitized(std::move(O))), Queue(Opts.QueueCapacity),
      Workers(Opts.Workers, ThreadPool::SingleThread::Spawn) {
  Shards.reserve(Opts.Shards);
  for (unsigned I = 0; I != Opts.Shards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  PerWorker.reserve(Opts.Workers);
  for (unsigned W = 0; W != Opts.Workers; ++W) {
    PerWorker.push_back(std::make_unique<WorkerCounters>());
    PerWorker.back()->Shards.resize(Opts.Shards);
  }
  // Every worker becomes a drainer of the request queue for the engine's
  // whole lifetime; the pool is dedicated to that (one drainLoop per
  // worker, which also stamps the thread with its accumulator index).
  for (unsigned W = 0; W != Opts.Workers; ++W)
    Workers.run([this, W] { drainLoop(W); });
}

Engine::~Engine() {
  // Refuse new requests, let the workers serve everything already
  // accepted (close() keeps the queue poppable until drained), then the
  // ThreadPool member's destructor joins them.
  Queue.close();
}

void Engine::drainLoop(unsigned Worker) {
  TlEngine = this;
  TlWorker = Worker;
  while (std::function<void()> Task = Queue.pop())
    Task();
}

Engine::WorkerCounters &Engine::myCounters() {
  // Off-worker callers (never expected) fall back to row 0; the per-row
  // mutex keeps even that case safe, merely contended.
  const unsigned W = TlEngine == this ? TlWorker : 0;
  return *PerWorker[W];
}

//===----------------------------------------------------------------------===//
// Warm-up (config-exclusive)
//===----------------------------------------------------------------------===//

ProgramId Engine::addProgram(ir::Program &Prog, usr::USRContext &Ctx) {
  ExclusiveSection Cfg(*this);
  Programs.push_back(ProgramEntry{&Prog, &Ctx});
  return static_cast<ProgramId>(Programs.size() - 1);
}

const session::PreparedLoop &
Engine::prepareImpl(ProgramId Program, const ir::DoLoop &Loop,
                    const analysis::AnalyzerOptions *AOpts) {
  ExclusiveSection Cfg(*this);
  ProgramEntry &PE = Programs.at(Program);
  // Label collision check before touching any session: the label is the
  // routing address, and two different loops behind one address would
  // silently send findLoop traffic to whichever prepared last. The
  // session re-checks its own shard-local view (a colliding loop may
  // hash to a different shard, which only this registry can see).
  auto Key = std::make_pair(Program, Loop.getLabel());
  auto It = Labels.find(Key);
  if (It != Labels.end() && It->second != &Loop)
    throw std::invalid_argument(
        "duplicate loop label '" + Loop.getLabel() +
        "': a different loop of this program is already prepared under it");
  Shard &S = *Shards[shardOf(Program, Loop)];
  std::unique_ptr<session::Session> &Sess = S.Sessions[Program];
  if (!Sess)
    Sess = std::make_unique<session::Session>(*PE.Prog, *PE.Ctx,
                                              Opts.Session);
  const session::PreparedLoop &PL =
      AOpts ? Sess->prepare(Loop, *AOpts) : Sess->prepare(Loop);
  Labels[std::move(Key)] = &Loop;
  return PL;
}

const session::PreparedLoop &
Engine::prepare(ProgramId Program, const ir::DoLoop &Loop,
                const analysis::AnalyzerOptions &AOpts) {
  return prepareImpl(Program, Loop, &AOpts);
}

const session::PreparedLoop &Engine::prepare(ProgramId Program,
                                             const ir::DoLoop &Loop) {
  return prepareImpl(Program, Loop, nullptr);
}

const ir::DoLoop *Engine::findLoop(ProgramId Program,
                                   std::string_view Label) const {
  std::shared_lock<std::shared_mutex> Cfg(ConfigLock);
  auto It = Labels.find({Program, std::string(Label)});
  return It == Labels.end() ? nullptr : It->second;
}

unsigned Engine::shardOf(ProgramId Program, const ir::DoLoop &Loop) const {
  // Hash-sharded registry: route by (program, loop) so one hot program's
  // loops spread over shards while any single loop always lands on the
  // shard whose caches served it before.
  size_t H = std::hash<const ir::DoLoop *>{}(&Loop);
  hashCombine(H, static_cast<size_t>(Program) + 0x9e3779b9u);
  return static_cast<unsigned>(H % Shards.size());
}

//===----------------------------------------------------------------------===//
// Request processing (config-shared, no shard-wide execution lock)
//===----------------------------------------------------------------------===//

void Engine::finishOne() {
  {
    std::lock_guard<std::mutex> L(FinMutex);
    ++Finished;
  }
  FinCv.notify_all();
}

Response Engine::process(const Request &R) {
  // Writer-preference gate: park (condition variable, no CPU) while an
  // exclusive warm-up/quiesce section is pending or active. glibc's
  // rwlock lets new readers barge past a waiting writer, so without the
  // gate a saturated serving plane would starve prepare() forever. The
  // steady state pays one atomic load; only a raised gate touches GateM.
  if (PendingExclusive.load(std::memory_order_acquire) != 0) {
    std::unique_lock<std::mutex> G(GateM);
    GateCv.wait(G, [this] {
      return PendingExclusive.load(std::memory_order_acquire) == 0;
    });
  }
  // Shared: excludes addProgram/prepare (which intern into the shared
  // contexts) but runs concurrently with every other request — including
  // requests for the same loop on the same shard.
  std::shared_lock<std::shared_mutex> Cfg(ConfigLock);
  Response Resp;
  if (R.Program >= Programs.size() || !R.Loop) {
    std::lock_guard<std::mutex> L(FinMutex);
    ++UnroutableCount;
    Resp.Error = R.Loop ? "unknown program id" : "null loop";
    return Resp;
  }
  const unsigned SI = shardOf(R.Program, *R.Loop);
  Resp.Shard = SI;
  Shard &S = *Shards[SI];
  WorkerCounters &WC = myCounters();
  auto CountFailed = [&] {
    std::lock_guard<std::mutex> L(WC.M);
    ++WC.Shards[SI].Failed;
  };
  session::Session *Sess;
  {
    // The only shard-wide lock on this path, and it covers exactly the
    // session-map lookup (the map mutates only under the exclusive
    // config lock; the narrow mutex keeps the lookup defensive and
    // documents the boundary).
    std::lock_guard<std::mutex> SL(S.M);
    auto It = S.Sessions.find(R.Program);
    Sess = It == S.Sessions.end() ? nullptr : It->second.get();
  }
  if (!Sess || !Sess->isPrepared(*R.Loop)) {
    CountFailed();
    Resp.Error = "loop was never prepared on this engine";
    return Resp;
  }
  if (!R.M || !R.B) {
    CountFailed();
    Resp.Error = "request carries no memory/bindings";
    return Resp;
  }
  const unsigned Repeats = std::max(1u, R.Repeats);
  Resp.Stats.reserve(Repeats);
  rt::ExecStats Acc;
  for (unsigned E = 0; E != Repeats; ++E) {
    // Never analyzes (the loop is prepared): shared contexts stay
    // read-only and the session hands this worker its own ExecContext,
    // per the concurrency contract. No engine lock is held beyond the
    // shared config lock.
    std::optional<rt::ExecStats> St = Sess->runPrepared(*R.Loop, *R.M, *R.B);
    assert(St && "prepared plans cannot vanish outside exclusive phases");
    if (!St) {
      // Defensive (contract violation, e.g. an embedder invalidating an
      // engine-owned session directly): fail the request but still
      // account the repeats that DID execute, and drop their partial
      // Stats so OK=false never carries a half-filled success payload.
      std::lock_guard<std::mutex> L(WC.M);
      ShardCounters &SC = WC.Shards[SI];
      ++SC.Failed;
      SC.Executions += E;
      SC.Exec += Acc;
      Resp.Stats.clear();
      Resp.Error = "loop was invalidated while serving";
      return Resp;
    }
    Acc += *St;
    Resp.Stats.push_back(*St);
  }
  {
    // Publish once per request into this worker's own accumulator row —
    // never a shard-shared counter, so N workers on one hot loop do not
    // contend.
    std::lock_guard<std::mutex> L(WC.M);
    ShardCounters &SC = WC.Shards[SI];
    ++SC.Completed;
    SC.Executions += Repeats;
    SC.Exec += Acc;
  }
  Resp.OK = true;
  return Resp;
}

std::future<Response> Engine::submit(Request R) {
  auto Prom = std::make_shared<std::promise<Response>>();
  std::future<Response> Fut = Prom->get_future();
  {
    std::lock_guard<std::mutex> L(FinMutex);
    ++Accepted;
  }
  const bool Queued = Queue.push([this, R, Prom] {
    Prom->set_value(process(R));
    finishOne();
  });
  if (!Queued) {
    // Engine shutting down: resolve the future instead of abandoning it.
    // Nothing was admitted, so this counts as rejected, not submitted.
    {
      std::lock_guard<std::mutex> L(FinMutex);
      --Accepted;
      ++RejectedCount;
    }
    FinCv.notify_all();
    Response Resp;
    Resp.Error = "engine is shut down";
    Prom->set_value(std::move(Resp));
  }
  return Fut;
}

bool Engine::trySubmit(Request R, std::future<Response> &Out) {
  auto Prom = std::make_shared<std::promise<Response>>();
  std::future<Response> Fut = Prom->get_future();
  {
    std::lock_guard<std::mutex> L(FinMutex);
    ++Accepted;
  }
  const bool Queued = Queue.tryPush([this, R, Prom] {
    Prom->set_value(process(R));
    finishOne();
  });
  if (!Queued) {
    {
      std::lock_guard<std::mutex> L(FinMutex);
      --Accepted; // Nothing admitted; undo for drain accounting.
      ++RejectedCount;
    }
    // The transient ++Accepted may have parked a drain(); re-evaluate.
    FinCv.notify_all();
    return false;
  }
  Out = std::move(Fut);
  return true;
}

std::vector<std::future<Response>> Engine::submitBatch(
    std::vector<Request> Rs) {
  std::vector<std::future<Response>> Out;
  Out.reserve(Rs.size());
  for (Request &R : Rs)
    Out.push_back(submit(R));
  return Out;
}

void Engine::drain() {
  std::unique_lock<std::mutex> L(FinMutex);
  FinCv.wait(L, [this] { return Finished >= Accepted; });
}

ServeStats Engine::stats() const {
  std::shared_lock<std::shared_mutex> Cfg(ConfigLock);
  ServeStats Out;
  {
    std::lock_guard<std::mutex> L(FinMutex);
    Out.Submitted = Accepted;
    Out.Rejected = RejectedCount;
    Out.Unroutable = UnroutableCount;
  }
  Out.QueueDepth = Queue.size();
  Out.PeakQueueDepth = Queue.peakDepth();
  Out.Shards.reserve(Shards.size());
  for (const std::unique_ptr<Shard> &SP : Shards) {
    Shard &S = *SP;
    ShardStats SS;
    {
      std::lock_guard<std::mutex> SL(S.M);
      SS.Programs = S.Sessions.size();
      for (const auto &KV : S.Sessions) {
        SS.PreparedLoops += KV.second->numPreparedLoops();
        SS.CompiledPreds += KV.second->numCompiledPreds();
        SS.CompiledUSRs += KV.second->numCompiledUSRs();
        SS.PooledFrames += KV.second->numPooledFrames();
        SS.ExecContexts += KV.second->numExecContexts();
      }
    }
    Out.Shards.push_back(std::move(SS));
  }
  // Merge every worker's accumulator rows. A worker holds its row mutex
  // only for the += at the end of a request, so this snapshot neither
  // blocks nor skews serving.
  for (const std::unique_ptr<WorkerCounters> &WCP : PerWorker) {
    WorkerCounters &WC = *WCP;
    std::lock_guard<std::mutex> L(WC.M);
    for (size_t SI = 0; SI < WC.Shards.size(); ++SI) {
      const ShardCounters &SC = WC.Shards[SI];
      ShardStats &SS = Out.Shards[SI];
      SS.Completed += SC.Completed;
      SS.Failed += SC.Failed;
      SS.Executions += SC.Executions;
      SS.Exec += SC.Exec;
    }
  }
  return Out;
}
