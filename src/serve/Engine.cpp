//===- serve/Engine.cpp - Concurrent multi-program serving engine ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "serve/Engine.h"

#include "support/FaultInjection.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

using namespace halo;
using namespace halo::serve;

const char *halo::serve::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "Ok";
  case Status::Rejected:
    return "Rejected";
  case Status::Expired:
    return "Expired";
  case Status::Cancelled:
    return "Cancelled";
  case Status::ExecError:
    return "ExecError";
  case Status::DegradedOk:
    return "DegradedOk";
  }
  return "?";
}

namespace {

EngineOptions sanitized(EngineOptions O) {
  O.Shards = std::max(1u, O.Shards);
  O.Workers = std::max(1u, O.Workers);
  O.QueueCapacity = std::max<size_t>(1, O.QueueCapacity);
  return O;
}

/// Breaker state encoding (Engine::Breaker::State).
constexpr uint8_t BrClosed = 0, BrOpen = 1, BrHalfOpen = 2;

double nowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Identity of the engine worker running on this thread, recorded by
/// drainLoop. Worker threads belong to exactly one engine for their whole
/// lifetime, so a (engine, index) pair never goes stale while the thread
/// runs.
thread_local const void *TlEngine = nullptr;
thread_local unsigned TlWorker = 0;

} // namespace

//===----------------------------------------------------------------------===//
// Exclusive sections (warm-up / quiesce) and the writer-preference gate
//===----------------------------------------------------------------------===//

/// Raises PendingExclusive for its whole lifetime (workers park on the
/// gate, burning no CPU) and holds the config lock exclusively. The gate
/// stays raised until release so a stream of back-to-back exclusive
/// sections keeps its writer preference.
class HALO_SCOPED_CAPABILITY Engine::ExclusiveSection {
public:
  explicit ExclusiveSection(Engine &E) HALO_ACQUIRE(E.ConfigLock) : E(E) {
    // Raising needs no GateM: it only makes workers (start to) wait,
    // it never wakes one.
    E.PendingExclusive.fetch_add(1, std::memory_order_release);
    E.ConfigLock.lock();
  }
  ~ExclusiveSection() HALO_RELEASE() {
    E.ConfigLock.unlock();
    {
      // Decrement under GateM: a worker between its predicate check and
      // its sleep holds GateM, so this transition cannot slip past it
      // (no lost wakeup).
      support::MutexLock G(E.GateM);
      E.PendingExclusive.fetch_sub(1, std::memory_order_release);
    }
    E.GateCv.notify_all();
  }
  ExclusiveSection(const ExclusiveSection &) = delete;
  ExclusiveSection &operator=(const ExclusiveSection &) = delete;

private:
  Engine &E;
};

struct Engine::ExclusiveHold::Impl {
  // A scoped capability stored as a member outlives the constructor's
  // scope, which the analysis cannot track (it models scoped locks as
  // strictly block-scoped) — the one deliberate escape hatch in the
  // serving plane. The capability is still released exactly once, by
  // ~Impl running ~ExclusiveSection.
  explicit Impl(Engine &E) HALO_NO_THREAD_SAFETY_ANALYSIS : Section(E) {}
  ExclusiveSection Section;
};

Engine::ExclusiveHold::ExclusiveHold(Engine &E)
    : I(std::make_unique<Impl>(E)) {}
Engine::ExclusiveHold::~ExclusiveHold() = default;

Engine::ExclusiveHold Engine::quiesce() { return ExclusiveHold(*this); }

//===----------------------------------------------------------------------===//
// Construction / shutdown
//===----------------------------------------------------------------------===//

Engine::Engine(EngineOptions O)
    : Opts(sanitized(std::move(O))), Queue(Opts.QueueCapacity),
      Workers(Opts.Workers, ThreadPool::SingleThread::Spawn) {
  Shards.reserve(Opts.Shards);
  for (unsigned I = 0; I != Opts.Shards; ++I)
    Shards.push_back(std::make_unique<Shard>());
  PerWorker.reserve(Opts.Workers);
  for (unsigned W = 0; W != Opts.Workers; ++W) {
    PerWorker.push_back(std::make_unique<WorkerCounters>());
    WorkerCounters &WC = *PerWorker.back();
    support::MutexLock L(WC.M);
    WC.Shards.resize(Opts.Shards);
  }
  // Every worker becomes a drainer of the request queue for the engine's
  // whole lifetime; the pool is dedicated to that (one drainLoop per
  // worker, which also stamps the thread with its accumulator index).
  for (unsigned W = 0; W != Opts.Workers; ++W)
    Workers.run([this, W] { drainLoop(W); });
}

Engine::~Engine() {
  // Orderly close -> drain -> join (the ordering contract documented on
  // BoundedWorkQueue): refuse new requests, wait until the workers have
  // served everything already accepted, then the ThreadPool member's
  // destructor joins them.
  shutdown();
}

void Engine::shutdown() {
  // close() is idempotent and never re-notifies, and drain() merely
  // waits on the Finished/Accepted accounting — so shutdown() racing
  // another shutdown(), a drain(), or the destructor all settle on the
  // same quiescent state.
  Queue.close();
  drain();
}

void Engine::drainLoop(unsigned Worker) {
  TlEngine = this;
  TlWorker = Worker;
  while (std::function<void()> Task = Queue.pop())
    Task();
}

Engine::WorkerCounters &Engine::myCounters() {
  // Off-worker callers (never expected) fall back to row 0; the per-row
  // mutex keeps even that case safe, merely contended.
  const unsigned W = TlEngine == this ? TlWorker : 0;
  return *PerWorker[W];
}

//===----------------------------------------------------------------------===//
// Warm-up (config-exclusive)
//===----------------------------------------------------------------------===//

ProgramId Engine::addProgram(ir::Program &Prog, usr::USRContext &Ctx) {
  ExclusiveSection Cfg(*this);
  Programs.push_back(ProgramEntry{&Prog, &Ctx});
  return static_cast<ProgramId>(Programs.size() - 1);
}

const session::PreparedLoop &
Engine::prepareImpl(ProgramId Program, const ir::DoLoop &Loop,
                    const analysis::AnalyzerOptions *AOpts) {
  ExclusiveSection Cfg(*this);
  ProgramEntry &PE = Programs.at(Program);
  // Label collision check before touching any session: the label is the
  // routing address, and two different loops behind one address would
  // silently send findLoop traffic to whichever prepared last. The
  // session re-checks its own shard-local view (a colliding loop may
  // hash to a different shard, which only this registry can see).
  auto Key = std::make_pair(Program, Loop.getLabel());
  auto It = Labels.find(Key);
  if (It != Labels.end() && It->second != &Loop)
    throw std::invalid_argument(
        "duplicate loop label '" + Loop.getLabel() +
        "': a different loop of this program is already prepared under it");
  Shard &S = *Shards[shardOf(Program, Loop)];
  session::Session *Sess;
  {
    support::MutexLock SL(S.M);
    auto It = S.Sessions.find(Program);
    Sess = It == S.Sessions.end() ? nullptr : It->second.get();
  }
  if (!Sess) {
    // Build and warm-start the session outside the shard mutex (the
    // config-exclusive phase already serializes prepares), then publish
    // it under S.M — the shard mutex covers map access only and is never
    // held across analysis or execution.
    auto NewSess = std::make_unique<session::Session>(*PE.Prog, *PE.Ctx,
                                                      Opts.Session);
    // Warm-start: stage the plan cache into the fresh session while we
    // hold the exclusive gate (loading interns into the shared contexts).
    // Every failure mode — absent file, version skew, corruption — lands
    // here and degrades to a cold start; prepare() below then simply
    // finds nothing to adopt.
    if (!Opts.PlanCachePath.empty()) {
      std::ifstream PlanIn(Opts.PlanCachePath, std::ios::binary);
      if (PlanIn) {
        try {
          (void)NewSess->loadPlans(PlanIn);
        } catch (const support::ValidationError &) {
          // Degraded cold start; the session records nothing and the
          // next savePlans simply regenerates the cache.
        }
      }
    }
    Sess = NewSess.get();
    support::MutexLock SL(S.M);
    S.Sessions[Program] = std::move(NewSess);
  }
  const session::PreparedLoop &PL =
      AOpts ? Sess->prepare(Loop, *AOpts) : Sess->prepare(Loop);
  Labels[std::move(Key)] = &Loop;
  // A fresh (or re-)prepare starts the loop with a closed breaker: the
  // failure history belongs to the plan that produced it, and this call
  // just replaced the plan.
  std::unique_ptr<Breaker> &BrSlot = Breakers[{Program, &Loop}];
  if (!BrSlot)
    BrSlot = std::make_unique<Breaker>();
  else {
    BrSlot->State.store(BrClosed, std::memory_order_relaxed);
    BrSlot->Fails.store(0, std::memory_order_relaxed);
    BrSlot->OpenServed.store(0, std::memory_order_relaxed);
  }
  return PL;
}

const session::PreparedLoop &
Engine::prepare(ProgramId Program, const ir::DoLoop &Loop,
                const analysis::AnalyzerOptions &AOpts) {
  return prepareImpl(Program, Loop, &AOpts);
}

const session::PreparedLoop &Engine::prepare(ProgramId Program,
                                             const ir::DoLoop &Loop) {
  return prepareImpl(Program, Loop, nullptr);
}

const ir::DoLoop *Engine::findLoop(ProgramId Program,
                                   std::string_view Label) const {
  support::SharedLock Cfg(ConfigLock);
  auto It = Labels.find({Program, std::string(Label)});
  return It == Labels.end() ? nullptr : It->second;
}

unsigned Engine::shardOf(ProgramId Program, const ir::DoLoop &Loop) const {
  // Hash-sharded registry: route by (program, loop) so one hot program's
  // loops spread over shards while any single loop always lands on the
  // shard whose caches served it before.
  size_t H = std::hash<const ir::DoLoop *>{}(&Loop);
  hashCombine(H, static_cast<size_t>(Program) + 0x9e3779b9u);
  return static_cast<unsigned>(H % Shards.size());
}

//===----------------------------------------------------------------------===//
// Request processing (config-shared, no shard-wide execution lock)
//===----------------------------------------------------------------------===//

void Engine::finishOne() {
  {
    support::MutexLock L(FinMutex);
    ++Finished;
  }
  FinCv.notify_all();
}

Response Engine::process(const Request &R) {
  Response Resp;
  WorkerCounters &WC = myCounters();

  // Per-request cancellation token: with a deadline, derive a child that
  // latches whichever fires first (the deadline or the caller's token);
  // without one, the caller's token is used directly. Stack-lived — the
  // session's context lease clears its pointer before the context is
  // pooled again.
  std::optional<support::CancelToken> TokStore;
  const support::CancelToken *Tok = R.Cancel;
  if (R.Deadline != std::chrono::steady_clock::time_point{})
    Tok = &TokStore.emplace(R.Deadline, R.Cancel);

  // Dequeue shed: a request that is already dead is classified and
  // counted without touching the gate, the config lock, or any session.
  // shardOf reads only the immutable shard array, so attribution is safe
  // here (unroutable requests attribute to shard 0).
  if (support::stopRequested(Tok)) {
    const bool Exp =
        Tok->state() == support::CancelToken::State::Expired;
    Resp.St = Exp ? Status::Expired : Status::Cancelled;
    Resp.Error = Exp ? "deadline expired before execution"
                     : "cancelled before execution";
    const unsigned SI = R.Loop ? shardOf(R.Program, *R.Loop) : 0;
    if (R.Loop)
      Resp.Shard = SI;
    support::MutexLock L(WC.M);
    ShardCounters &SC = WC.Shards[SI];
    ++(Exp ? SC.Expired : SC.Cancelled);
    return Resp;
  }

  // Writer-preference gate: park (condition variable, no CPU) while an
  // exclusive warm-up/quiesce section is pending or active. glibc's
  // rwlock lets new readers barge past a waiting writer, so without the
  // gate a saturated serving plane would starve prepare() forever. The
  // steady state pays one atomic load; only a raised gate touches GateM.
  if (PendingExclusive.load(std::memory_order_acquire) != 0) {
    support::MutexLock G(GateM);
    while (PendingExclusive.load(std::memory_order_acquire) != 0)
      GateCv.wait(GateM);
  }
  // Shared: excludes addProgram/prepare (which intern into the shared
  // contexts) but runs concurrently with every other request — including
  // requests for the same loop on the same shard.
  support::SharedLock Cfg(ConfigLock);
  if (R.Program >= Programs.size() || !R.Loop) {
    support::MutexLock L(FinMutex);
    ++UnroutableCount;
    Resp.Error = R.Loop ? "unknown program id" : "null loop";
    return Resp;
  }
  const unsigned SI = shardOf(R.Program, *R.Loop);
  Resp.Shard = SI;
  Shard &S = *Shards[SI];
  auto CountFailed = [&] {
    support::MutexLock L(WC.M);
    ++WC.Shards[SI].Failed;
  };
  session::Session *Sess;
  {
    // The only shard-wide lock on this path, and it covers exactly the
    // session-map lookup (the map mutates only under the exclusive
    // config lock; the narrow mutex keeps the lookup defensive and
    // documents the boundary).
    support::MutexLock SL(S.M);
    auto It = S.Sessions.find(R.Program);
    Sess = It == S.Sessions.end() ? nullptr : It->second.get();
  }
  if (!Sess || !Sess->isPrepared(*R.Loop)) {
    CountFailed();
    Resp.Error = "loop was never prepared on this engine";
    return Resp;
  }
  if (!R.M || !R.B) {
    CountFailed();
    Resp.Error = "request carries no memory/bindings";
    return Resp;
  }
  const unsigned Repeats = std::max(1u, R.Repeats);
  Resp.Stats.reserve(Repeats);

  // Degraded tier: the always-correct sequential interpreter, serving
  // while the loop's breaker is open (or while a half-open probe is in
  // flight on another worker). Results are exact — only the execution
  // strategy (and its stats payload, timing-only) differ.
  auto ServeDegraded = [&]() -> Response {
    for (unsigned E = 0; E != Repeats; ++E) {
      if (support::stopRequested(Tok)) {
        const bool Exp =
            Tok->state() == support::CancelToken::State::Expired;
        support::MutexLock L(WC.M);
        ShardCounters &SC = WC.Shards[SI];
        ++(Exp ? SC.Expired : SC.Cancelled);
        SC.DegradedExecs += E;
        Resp.Stats.clear();
        Resp.St = Exp ? Status::Expired : Status::Cancelled;
        Resp.Error = Exp ? "deadline expired during degraded execution"
                         : "cancelled during degraded execution";
        return Resp;
      }
      const double T0 = nowSeconds();
      Sess->runSequential(*R.Loop, *R.M, *R.B);
      rt::ExecStats St;
      St.TotalSeconds = nowSeconds() - T0;
      Resp.Stats.push_back(St);
    }
    {
      support::MutexLock L(WC.M);
      ShardCounters &SC = WC.Shards[SI];
      ++SC.Completed;
      SC.DegradedExecs += Repeats;
    }
    Resp.OK = true;
    Resp.St = Status::DegradedOk;
    return Resp;
  };

  // Per-loop circuit breaker. Entries exist for every prepared loop (made
  // at prepare time under the exclusive lock); a zero threshold disables
  // the machinery entirely.
  Breaker *Br = nullptr;
  if (Opts.BreakerThreshold) {
    auto BIt = Breakers.find({R.Program, R.Loop});
    if (BIt != Breakers.end())
      Br = BIt->second.get();
  }
  bool Probe = false;
  if (Br) {
    const uint8_t BS = Br->State.load(std::memory_order_acquire);
    if (BS == BrOpen) {
      // Count this request toward the cooldown; the one that crosses it
      // CASes open -> half-open and probes the normal tier itself (the
      // CAS elects exactly one prober among racing workers).
      const uint32_t Served =
          Br->OpenServed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (Served >= Opts.BreakerCooldown) {
        uint8_t Expect = BrOpen;
        if (Br->State.compare_exchange_strong(Expect, BrHalfOpen,
                                              std::memory_order_acq_rel))
          Probe = true;
      }
      if (!Probe)
        return ServeDegraded();
    } else if (BS == BrHalfOpen) {
      // A probe is in flight; peers stay degraded until it settles.
      return ServeDegraded();
    }
  }

  // Breaker outcome feedback. Every path out of the normal tier MUST
  // settle the breaker when Probe is set — a half-open breaker nobody
  // resolves would pin the loop on the degraded tier forever.
  enum class BrOutcome { Success, Failure, Inconclusive };
  uint64_t BreakerOpened = 0;
  auto FeedBreaker = [&](BrOutcome O) {
    if (!Br)
      return;
    switch (O) {
    case BrOutcome::Success:
      Br->Fails.store(0, std::memory_order_relaxed);
      if (Probe) {
        // Healthy again: close and forget the failure history.
        Br->OpenServed.store(0, std::memory_order_relaxed);
        Br->State.store(BrClosed, std::memory_order_release);
      }
      return;
    case BrOutcome::Inconclusive:
      // Cancelled / shed before the tier could prove anything. A probe
      // re-opens already ripe, so the next request re-probes at once.
      if (Probe) {
        Br->OpenServed.store(Opts.BreakerCooldown,
                             std::memory_order_relaxed);
        Br->State.store(BrOpen, std::memory_order_release);
      }
      return;
    case BrOutcome::Failure: {
      if (Probe) {
        // Failed probe: back to open for a full fresh cooldown.
        Br->OpenServed.store(0, std::memory_order_relaxed);
        Br->State.store(BrOpen, std::memory_order_release);
        ++BreakerOpened;
        return;
      }
      const uint32_t F =
          Br->Fails.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (F >= Opts.BreakerThreshold) {
        uint8_t Expect = BrClosed;
        if (Br->State.compare_exchange_strong(Expect, BrOpen,
                                              std::memory_order_acq_rel)) {
          Br->OpenServed.store(0, std::memory_order_relaxed);
          Br->Fails.store(0, std::memory_order_relaxed);
          ++BreakerOpened;
        }
      }
      return;
    }
    }
  };

  rt::ExecStats Acc;
  uint64_t ExecsDone = 0;
  // Abort epilogue: account whole repeats that DID complete, drop the
  // partial Stats payload (a non-OK response never carries one), and
  // classify. Only a mid-run expiry is the loop's fault (too slow), so
  // only that feeds the breaker as a failure.
  auto FinishAborted = [&](bool Exp, bool MidRun) -> Response {
    FeedBreaker(MidRun && Exp ? BrOutcome::Failure
                              : BrOutcome::Inconclusive);
    support::MutexLock L(WC.M);
    ShardCounters &SC = WC.Shards[SI];
    ++(Exp ? SC.Expired : SC.Cancelled);
    SC.Executions += ExecsDone;
    SC.Exec += Acc;
    SC.Retried += Resp.Retries;
    SC.BreakerOpen += BreakerOpened;
    Resp.Stats.clear();
    Resp.St = Exp ? Status::Expired : Status::Cancelled;
    Resp.Error = Exp ? "deadline expired during execution"
                     : "cancelled during execution";
    return Resp;
  };

  Status Out = Status::Ok;
  std::string ErrMsg;
  try {
    for (unsigned E = 0; E != Repeats && Out == Status::Ok; ++E) {
      for (unsigned Attempt = 0;; ++Attempt) {
        if (support::stopRequested(Tok))
          return FinishAborted(Tok->state() ==
                                   support::CancelToken::State::Expired,
                               /*MidRun=*/false);
        // Never analyzes (the loop is prepared): shared contexts stay
        // read-only and the session hands this worker its own
        // ExecContext, per the concurrency contract. No engine lock is
        // held beyond the shared config lock. The injected transient
        // fault fires BEFORE the repeat touches the request's memory —
        // the same retry-safe shape as losing the plan to a concurrent
        // re-prepare.
        std::optional<rt::ExecStats> St;
        if (!support::faultHit("serve.process.transient"))
          St = Sess->runPrepared(*R.Loop, *R.M, *R.B, Tok);
        if (St && St->Aborted != rt::ExecStats::AbortReason::None)
          return FinishAborted(St->Aborted ==
                                   rt::ExecStats::AbortReason::Expired,
                               /*MidRun=*/true);
        if (St) {
          Acc += *St;
          Resp.Stats.push_back(*St);
          ++ExecsDone;
          break;
        }
        // Transient failure observed before this repeat ran (vanished
        // plan or injected fault): bounded retry with doubling backoff.
        if (Attempt >= Opts.MaxRetries) {
          Out = Status::ExecError;
          ErrMsg = "transient execution failure persisted through " +
                   std::to_string(Attempt) + " retries";
          break;
        }
        ++Resp.Retries;
        const auto Backoff = Opts.RetryBackoff * (1u << Attempt);
        if (Backoff.count() > 0)
          std::this_thread::sleep_for(Backoff);
      }
    }
  } catch (const std::exception &Ex) {
    Out = Status::ExecError;
    ErrMsg = Ex.what();
  } catch (...) {
    Out = Status::ExecError;
    ErrMsg = "unknown execution failure";
  }

  FeedBreaker(Out == Status::Ok ? BrOutcome::Success : BrOutcome::Failure);
  {
    // Publish once per request into this worker's own accumulator row —
    // never a shard-shared counter, so N workers on one hot loop do not
    // contend.
    support::MutexLock L(WC.M);
    ShardCounters &SC = WC.Shards[SI];
    SC.Executions += ExecsDone;
    SC.Exec += Acc;
    SC.Retried += Resp.Retries;
    SC.BreakerOpen += BreakerOpened;
    if (Out == Status::Ok) {
      ++SC.Completed;
    } else {
      ++SC.Failed;
      ++SC.ExecErrors;
    }
  }
  if (Out == Status::Ok) {
    Resp.OK = true;
    Resp.St = Status::Ok;
  } else {
    Resp.Stats.clear();
    Resp.St = Status::ExecError;
    Resp.Error = std::move(ErrMsg);
  }
  return Resp;
}

void Engine::serveTask(const Request &R,
                       const std::shared_ptr<std::promise<Response>> &Prom) {
  Response Resp;
  try {
    // Worker-infrastructure fault point, distinct from faults inside the
    // execute path (which process() classifies itself).
    support::faultAt("serve.worker.task");
    Resp = process(R);
  } catch (const std::exception &Ex) {
    Resp.St = Status::ExecError;
    Resp.Error = std::string("worker task failed: ") + Ex.what();
  } catch (...) {
    Resp.St = Status::ExecError;
    Resp.Error = "worker task failed: unknown exception";
  }
  if (Resp.St == Status::ExecError && Resp.Shard == ~0u) {
    // The task failed before process() could attribute a shard; account
    // it on row/shard 0 so chaos-run stats stay coherent.
    WorkerCounters &WC = myCounters();
    support::MutexLock L(WC.M);
    ++WC.Shards[0].Failed;
    ++WC.Shards[0].ExecErrors;
  }
  Prom->set_value(std::move(Resp));
  finishOne();
}

std::future<Response> Engine::submit(Request R) {
  auto Prom = std::make_shared<std::promise<Response>>();
  std::future<Response> Fut = Prom->get_future();
  {
    support::MutexLock L(FinMutex);
    ++Accepted;
  }
  const bool Queued = Queue.push([this, R, Prom] { serveTask(R, Prom); });
  if (!Queued) {
    // Engine shutting down (or the injected queue.push fault): resolve
    // the future instead of abandoning it. Nothing was admitted, so this
    // counts as rejected, not submitted.
    {
      support::MutexLock L(FinMutex);
      --Accepted;
      ++RejectedCount;
    }
    FinCv.notify_all();
    Response Resp;
    Resp.Error = "engine is shut down";
    Prom->set_value(std::move(Resp));
  }
  return Fut;
}

bool Engine::trySubmit(Request R, std::future<Response> &Out) {
  auto Prom = std::make_shared<std::promise<Response>>();
  std::future<Response> Fut = Prom->get_future();
  {
    support::MutexLock L(FinMutex);
    ++Accepted;
  }
  const bool Queued =
      Queue.tryPush([this, R, Prom] { serveTask(R, Prom); });
  if (!Queued) {
    {
      support::MutexLock L(FinMutex);
      --Accepted; // Nothing admitted; undo for drain accounting.
      ++RejectedCount;
    }
    // The transient ++Accepted may have parked a drain(); re-evaluate.
    FinCv.notify_all();
    return false;
  }
  Out = std::move(Fut);
  return true;
}

std::vector<std::future<Response>> Engine::submitBatch(
    std::vector<Request> Rs) {
  std::vector<std::future<Response>> Out;
  Out.reserve(Rs.size());
  for (Request &R : Rs)
    Out.push_back(submit(R));
  return Out;
}

void Engine::drain() {
  support::MutexLock L(FinMutex);
  while (Finished < Accepted)
    FinCv.wait(FinMutex);
}

ServeStats Engine::stats() const {
  support::SharedLock Cfg(ConfigLock);
  ServeStats Out;
  {
    support::MutexLock L(FinMutex);
    Out.Submitted = Accepted;
    Out.Rejected = RejectedCount;
    Out.Unroutable = UnroutableCount;
  }
  Out.QueueDepth = Queue.size();
  Out.PeakQueueDepth = Queue.peakDepth();
  Out.Shards.reserve(Shards.size());
  for (const std::unique_ptr<Shard> &SP : Shards) {
    Shard &S = *SP;
    ShardStats SS;
    {
      support::MutexLock SL(S.M);
      SS.Programs = S.Sessions.size();
      for (const auto &KV : S.Sessions) {
        SS.PreparedLoops += KV.second->numPreparedLoops();
        SS.CompiledPreds += KV.second->numCompiledPreds();
        SS.CompiledUSRs += KV.second->numCompiledUSRs();
        SS.PooledFrames += KV.second->numPooledFrames();
        SS.ExecContexts += KV.second->numExecContexts();
        SS.PlansWarmStarted += KV.second->numPlansWarmStarted();
      }
    }
    Out.Shards.push_back(std::move(SS));
  }
  // Merge every worker's accumulator rows. A worker holds its row mutex
  // only for the += at the end of a request, so this snapshot neither
  // blocks nor skews serving.
  for (const std::unique_ptr<WorkerCounters> &WCP : PerWorker) {
    WorkerCounters &WC = *WCP;
    support::MutexLock L(WC.M);
    for (size_t SI = 0; SI < WC.Shards.size(); ++SI) {
      const ShardCounters &SC = WC.Shards[SI];
      ShardStats &SS = Out.Shards[SI];
      SS.Completed += SC.Completed;
      SS.Failed += SC.Failed;
      SS.Executions += SC.Executions;
      SS.Expired += SC.Expired;
      SS.Cancelled += SC.Cancelled;
      SS.Retried += SC.Retried;
      SS.ExecErrors += SC.ExecErrors;
      SS.BreakerOpen += SC.BreakerOpen;
      SS.DegradedExecs += SC.DegradedExecs;
      SS.Exec += SC.Exec;
    }
  }
  // Engine-wide robustness counters, summed over the shard rows.
  const ShardStats T = Out.totals();
  Out.Expired = T.Expired;
  Out.Cancelled = T.Cancelled;
  Out.Retried = T.Retried;
  Out.BreakerOpen = T.BreakerOpen;
  Out.DegradedExecs = T.DegradedExecs;
  return Out;
}
