//===- ir/Program.h - Structured mini-IR for analyzed programs -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small structured program representation standing in for the Polaris
/// Fortran77 front end (see DESIGN.md, substitution table). The analysis
/// consumes structured control flow walked in program order, which is all
/// the paper's data-flow equations (Fig. 2) need: statements, IF/ELSE
/// branches (gates), DO loops (recurrences), CALLs with array reshaping
/// (call-site translation) and conditionally-incremented induction
/// variables (Sec. 3.3).
///
/// Array subscripts are 0-based linearized element offsets; multi-
/// dimensional accesses like HE(j, id) are expressed by the front end as
/// offset expressions (e.g. 32*(id-1) + j-1), exactly the form in which
/// the paper's LMADs see them.
///
/// The same IR is *executed* by the rt interpreter, so the analyzed
/// program and the measured program are one object.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_IR_PROGRAM_H
#define HALO_IR_PROGRAM_H

#include "pdag/Pred.h"
#include "sym/Expr.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace halo {
namespace ir {

enum class StmtKind : uint8_t {
  Assign,
  DoLoop,
  If,
  Call,
  CivIncr,
};

/// One array access: array symbol + 0-based linearized offset expression.
struct ArrayAccess {
  sym::SymbolId Array = 0;
  const sym::Expr *Offset = nullptr;
};

class Stmt {
public:
  virtual ~Stmt() = default;
  StmtKind getKind() const { return Kind; }

protected:
  explicit Stmt(StmtKind K) : Kind(K) {}

private:
  StmtKind Kind;
};

/// `W = f(R1, ..., Rk)` or a reduction update `W op= f(...)`. The executor
/// computes a deterministic combination of the read values; WorkCost adds
/// synthetic per-execution work so kernels can model the paper's loop
/// granularities (the GR column of Tables 1-3).
class AssignStmt : public Stmt {
public:
  AssignStmt(std::optional<ArrayAccess> Write, std::vector<ArrayAccess> Reads,
             bool IsReduction, unsigned WorkCost)
      : Stmt(StmtKind::Assign), Write(Write), Reads(std::move(Reads)),
        IsReduction(IsReduction), WorkCost(WorkCost) {}

  const std::optional<ArrayAccess> &getWrite() const { return Write; }
  const std::vector<ArrayAccess> &getReads() const { return Reads; }
  /// Reduction updates (`A(s) = A(s) + e`) are summarized separately
  /// (Sec. 4) and executed with reduction semantics.
  bool isReduction() const { return IsReduction; }
  unsigned getWorkCost() const { return WorkCost; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Assign;
  }

private:
  std::optional<ArrayAccess> Write;
  std::vector<ArrayAccess> Reads;
  bool IsReduction;
  unsigned WorkCost;
};

/// `DO Var = Lo, Hi` with unit step.
class DoLoop : public Stmt {
public:
  DoLoop(std::string Label, sym::SymbolId Var, const sym::Expr *Lo,
         const sym::Expr *Hi, int Depth)
      : Stmt(StmtKind::DoLoop), Label(std::move(Label)), Var(Var), Lo(Lo),
        Hi(Hi), Depth(Depth) {}

  const std::string &getLabel() const { return Label; }
  sym::SymbolId getVar() const { return Var; }
  const sym::Expr *getLo() const { return Lo; }
  const sym::Expr *getHi() const { return Hi; }
  /// 1-based loop nesting depth (outermost analyzed loop = 1).
  int getDepth() const { return Depth; }
  const std::vector<const Stmt *> &getBody() const { return Body; }
  void append(const Stmt *S) { Body.push_back(S); }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::DoLoop;
  }

private:
  std::string Label;
  sym::SymbolId Var;
  const sym::Expr *Lo;
  const sym::Expr *Hi;
  int Depth;
  std::vector<const Stmt *> Body;
};

/// `IF (Cond) THEN ... ELSE ... ENDIF`; the condition becomes a gate.
class IfStmt : public Stmt {
public:
  explicit IfStmt(const pdag::Pred *Cond) : Stmt(StmtKind::If), Cond(Cond) {}

  const pdag::Pred *getCond() const { return Cond; }
  const std::vector<const Stmt *> &getThen() const { return Then; }
  const std::vector<const Stmt *> &getElse() const { return Else; }
  void appendThen(const Stmt *S) { Then.push_back(S); }
  void appendElse(const Stmt *S) { Else.push_back(S); }

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }

private:
  const pdag::Pred *Cond;
  std::vector<const Stmt *> Then;
  std::vector<const Stmt *> Else;
};

class Subroutine;

/// `CALL Callee(...)`: formal arrays bind to caller arrays at a linear
/// offset (array reshaping is transparent at the LMAD level); formal
/// scalars bind to caller expressions.
class CallStmt : public Stmt {
public:
  struct ArrayArg {
    sym::SymbolId Formal;        // Callee-side array symbol.
    sym::SymbolId Actual;        // Caller-side array symbol.
    const sym::Expr *Offset;     // Linearized offset of the actual slice.
  };
  struct ScalarArg {
    sym::SymbolId Formal;
    const sym::Expr *Actual;
  };

  CallStmt(const Subroutine *Callee, std::vector<ArrayArg> Arrays,
           std::vector<ScalarArg> Scalars)
      : Stmt(StmtKind::Call), Callee(Callee), Arrays(std::move(Arrays)),
        Scalars(std::move(Scalars)) {}

  const Subroutine *getCallee() const { return Callee; }
  const std::vector<ArrayArg> &getArrayArgs() const { return Arrays; }
  const std::vector<ScalarArg> &getScalarArgs() const { return Scalars; }

  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::Call; }

private:
  const Subroutine *Callee;
  std::vector<ArrayArg> Arrays;
  std::vector<ScalarArg> Scalars;
};

/// `Civ = Civ + Amount` — a conditionally-incremented induction variable
/// update (Sec. 3.3 / Fig. 7b). Amount must be non-negative for the CIV
/// aggregation machinery to derive monotone prefix values.
class CivIncrStmt : public Stmt {
public:
  CivIncrStmt(sym::SymbolId Civ, const sym::Expr *Amount)
      : Stmt(StmtKind::CivIncr), Civ(Civ), Amount(Amount) {}

  sym::SymbolId getCiv() const { return Civ; }
  const sym::Expr *getAmount() const { return Amount; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::CivIncr;
  }

private:
  sym::SymbolId Civ;
  const sym::Expr *Amount;
};

/// Declared array: data arrays hold doubles at runtime; index arrays hold
/// integers and may appear in subscripts (IB, IA, IX...).
struct ArrayDecl {
  sym::SymbolId Name = 0;
  const sym::Expr *Size = nullptr; // Element count; null = assumed-size.
  bool IsIndex = false;
};

/// A subroutine: declarations plus a structured statement list.
class Subroutine {
public:
  explicit Subroutine(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  const std::vector<const Stmt *> &getBody() const { return Body; }
  void append(const Stmt *S) { Body.push_back(S); }

  void declareArray(ArrayDecl D) { Arrays.push_back(D); }
  const std::vector<ArrayDecl> &getArrays() const { return Arrays; }
  const ArrayDecl *findArray(sym::SymbolId Id) const {
    for (const ArrayDecl &D : Arrays)
      if (D.Name == Id)
        return &D;
    return nullptr;
  }

private:
  std::string Name;
  std::vector<const Stmt *> Body;
  std::vector<ArrayDecl> Arrays;
};

/// Owns subroutines and statements; one Program per benchmark.
class Program {
public:
  Program(sym::Context &Sym, pdag::PredContext &Pred)
      : SymCtx(Sym), PredCtx(Pred) {}

  sym::Context &symCtx() { return SymCtx; }
  pdag::PredContext &predCtx() { return PredCtx; }
  const sym::Context &symCtx() const { return SymCtx; }
  const pdag::PredContext &predCtx() const { return PredCtx; }

  Subroutine *makeSubroutine(const std::string &Name) {
    Subs.push_back(std::make_unique<Subroutine>(Name));
    return Subs.back().get();
  }
  Subroutine *findSubroutine(const std::string &Name) {
    for (auto &S : Subs)
      if (S->getName() == Name)
        return S.get();
    return nullptr;
  }

  /// Finds an array declaration by symbol anywhere in the program (array
  /// symbols are global to a benchmark program).
  const ArrayDecl *findArrayDecl(sym::SymbolId Id) const {
    for (const auto &S : Subs)
      if (const ArrayDecl *D = S->findArray(Id))
        return D;
    return nullptr;
  }

  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Raw = Node.get();
    Stmts.push_back(std::move(Node));
    return Raw;
  }

private:
  sym::Context &SymCtx;
  pdag::PredContext &PredCtx;
  std::vector<std::unique_ptr<Subroutine>> Subs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
};

} // namespace ir
} // namespace halo

#endif // HALO_IR_PROGRAM_H
