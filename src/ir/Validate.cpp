//===- ir/Validate.cpp - Front-door validation of untrusted IR ------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "ir/Validate.h"

#include "support/Casting.h"

#include <unordered_map>
#include <unordered_set>

namespace halo {
namespace ir {

namespace {

using support::Diag;

/// Depth of an expression tree, computed iteratively (explicit stack) so a
/// hostile deeply-nested expression cannot blow the C++ stack before the
/// cap fires. Depths are memoized per node and saturate at Cap + 1.
class ExprDepthMap {
public:
  explicit ExprDepthMap(unsigned Cap) : Cap(Cap) {}

  unsigned depth(const sym::Expr *E) {
    struct Frame {
      const sym::Expr *E;
      bool ChildrenPushed;
    };
    std::vector<Frame> Stack;
    Stack.push_back({E, false});
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      if (Memo.count(F.E))
        continue;
      if (!F.ChildrenPushed) {
        Stack.push_back({F.E, true});
        forEachChild(F.E, [&](const sym::Expr *C) {
          if (!Memo.count(C))
            Stack.push_back({C, false});
        });
        continue;
      }
      unsigned MaxChild = 0;
      forEachChild(F.E, [&](const sym::Expr *C) {
        auto It = Memo.find(C);
        unsigned D = It == Memo.end() ? Cap + 1 : It->second;
        if (D > MaxChild)
          MaxChild = D;
      });
      unsigned D = MaxChild >= Cap ? Cap + 1 : MaxChild + 1;
      Memo.emplace(F.E, D);
    }
    return Memo.at(E);
  }

private:
  template <typename Fn> static void forEachChild(const sym::Expr *E, Fn F) {
    switch (E->getKind()) {
    case sym::ExprKind::IntConst:
    case sym::ExprKind::SymRef:
      break;
    case sym::ExprKind::ArrayRef:
      F(cast<sym::ArrayRefExpr>(E)->getIndex());
      break;
    case sym::ExprKind::Min:
    case sym::ExprKind::Max: {
      const auto *M = cast<sym::MinMaxExpr>(E);
      F(M->getLHS());
      F(M->getRHS());
      break;
    }
    case sym::ExprKind::FloorDiv:
    case sym::ExprKind::Mod:
      F(cast<sym::DivModExpr>(E)->getOperand());
      break;
    case sym::ExprKind::Mul:
      for (const sym::Expr *C : cast<sym::MulExpr>(E)->getFactors())
        F(C);
      break;
    case sym::ExprKind::Add:
      for (const sym::Monomial &M : cast<sym::AddExpr>(E)->getTerms())
        F(M.Prod);
      break;
    }
  }

  unsigned Cap;
  std::unordered_map<const sym::Expr *, unsigned> Memo;
};

/// Iterative predicate-depth computation, mirroring ExprDepthMap.
class PredDepthMap {
public:
  explicit PredDepthMap(unsigned Cap) : Cap(Cap) {}

  unsigned depth(const pdag::Pred *P) {
    struct Frame {
      const pdag::Pred *P;
      bool ChildrenPushed;
    };
    std::vector<Frame> Stack;
    Stack.push_back({P, false});
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      if (Memo.count(F.P))
        continue;
      if (!F.ChildrenPushed) {
        Stack.push_back({F.P, true});
        forEachChild(F.P, [&](const pdag::Pred *C) {
          if (!Memo.count(C))
            Stack.push_back({C, false});
        });
        continue;
      }
      unsigned MaxChild = 0;
      forEachChild(F.P, [&](const pdag::Pred *C) {
        auto It = Memo.find(C);
        unsigned D = It == Memo.end() ? Cap + 1 : It->second;
        if (D > MaxChild)
          MaxChild = D;
      });
      unsigned D = MaxChild >= Cap ? Cap + 1 : MaxChild + 1;
      Memo.emplace(F.P, D);
    }
    return Memo.at(P);
  }

  template <typename Fn> static void forEachChild(const pdag::Pred *P, Fn F) {
    switch (P->getKind()) {
    case pdag::PredKind::True:
    case pdag::PredKind::False:
    case pdag::PredKind::Cmp:
    case pdag::PredKind::Divides:
      break;
    case pdag::PredKind::And:
    case pdag::PredKind::Or:
      for (const pdag::Pred *C : cast<pdag::NaryPred>(P)->getChildren())
        F(C);
      break;
    case pdag::PredKind::LoopAll:
      F(cast<pdag::LoopAllPred>(P)->getBody());
      break;
    case pdag::PredKind::CallSite:
      F(cast<pdag::CallSitePred>(P)->getBody());
      break;
    }
  }

private:
  unsigned Cap;
  std::unordered_map<const pdag::Pred *, unsigned> Memo;
};

class Validator {
public:
  Validator(const Program &P, const ValidateLimits &Lim)
      : Prog(P), Sym(P.symCtx()), Lim(Lim), ExprDepths(Lim.MaxExprDepth),
        PredDepths(Lim.MaxPredDepth) {}

  std::vector<Diag> run(const DoLoop &L) {
    walkStmt(&L, 0);
    return std::move(Diags);
  }

private:
  std::string symName(sym::SymbolId Id) { return Sym.symbolInfo(Id).Name; }

  void report(Diag::Code C, std::string Msg) {
    Diags.emplace_back(C, std::move(Msg));
  }

  /// Depth + null check of one expression; \p What names the syntactic
  /// slot for diagnostics. Returns false when the expression is unusable.
  bool checkExpr(const sym::Expr *E, const char *What) {
    if (!E) {
      report(Diag::Code::MalformedAccess, std::string("null ") + What);
      return false;
    }
    if (ExprDepths.depth(E) > Lim.MaxExprDepth) {
      if (DeepExprs.insert(E).second)
        report(Diag::Code::ExprTooDeep,
               std::string(What) + " nested deeper than " +
                   std::to_string(Lim.MaxExprDepth));
      return false;
    }
    // Every index array read inside the expression must be declared.
    for (sym::SymbolId S : E->freeSymbols())
      if (Sym.symbolInfo(S).IsArray)
        checkArrayDeclared(S, "index array");
    return true;
  }

  void checkArrayDeclared(sym::SymbolId Id, const char *What) {
    if (Prog.findArrayDecl(Id))
      return;
    for (const auto &Scope : FormalArrayScopes)
      if (Scope.count(Id))
        return;
    if (UndeclaredReported.insert(Id).second)
      report(Diag::Code::UndeclaredArray,
             std::string(What) + " '" + symName(Id) + "' is not declared");
  }

  void checkPred(const pdag::Pred *P) {
    if (!P) {
      report(Diag::Code::MalformedAccess, "null IF condition");
      return;
    }
    if (PredDepths.depth(P) > Lim.MaxPredDepth) {
      if (DeepPreds.insert(P).second)
        report(Diag::Code::PredTooDeep,
               "IF condition nested deeper than " +
                   std::to_string(Lim.MaxPredDepth));
      return;
    }
    // Leaf expressions: iterative DAG walk with a visited set.
    std::vector<const pdag::Pred *> Stack{P};
    std::unordered_set<const pdag::Pred *> Seen;
    while (!Stack.empty()) {
      const pdag::Pred *N = Stack.back();
      Stack.pop_back();
      if (!Seen.insert(N).second)
        continue;
      if (const auto *C = dyn_cast<pdag::CmpPred>(N)) {
        checkExpr(C->getExpr(), "comparison operand");
      } else if (const auto *D = dyn_cast<pdag::DividesPred>(N)) {
        checkExpr(D->getDivisor(), "divisibility divisor");
        checkExpr(D->getValue(), "divisibility operand");
      } else if (const auto *LA = dyn_cast<pdag::LoopAllPred>(N)) {
        checkExpr(LA->getLo(), "loop-all lower bound");
        checkExpr(LA->getHi(), "loop-all upper bound");
      }
      PredDepthMap::forEachChild(N,
                                 [&](const pdag::Pred *Ch) {
                                   Stack.push_back(Ch);
                                 });
    }
  }

  void checkAccess(const ArrayAccess &A, bool IsWrite) {
    const char *What = IsWrite ? "write subscript" : "read subscript";
    if (!checkExpr(A.Offset, What))
      return;
    checkArrayDeclared(A.Array, "array");
    std::optional<int64_t> Off = Sym.constValue(A.Offset);
    if (!Off)
      return;
    if (*Off < 0) {
      report(Diag::Code::OobSubscript,
             std::string(What) + " of '" + symName(A.Array) +
                 "' is the negative constant " + std::to_string(*Off));
      return;
    }
    if (const ArrayDecl *D = Prog.findArrayDecl(A.Array))
      if (D->Size)
        if (std::optional<int64_t> Sz = Sym.constValue(D->Size))
          if (*Off >= *Sz)
            report(Diag::Code::OobSubscript,
                   std::string(What) + " of '" + symName(A.Array) +
                       "' is constant " + std::to_string(*Off) +
                       " but the array has " + std::to_string(*Sz) +
                       " elements");
  }

  void walkStmts(const std::vector<const Stmt *> &Body, unsigned Depth) {
    for (const Stmt *S : Body)
      walkStmt(S, Depth);
  }

  void walkStmt(const Stmt *S, unsigned Depth) {
    if (!S) {
      report(Diag::Code::MalformedAccess, "null statement");
      return;
    }
    if (Depth > Lim.MaxStmtDepth) {
      if (!StmtDepthReported) {
        StmtDepthReported = true;
        report(Diag::Code::MalformedAccess,
               "statement nesting deeper than " +
                   std::to_string(Lim.MaxStmtDepth));
      }
      return;
    }
    switch (S->getKind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (A->getWrite())
        checkAccess(*A->getWrite(), /*IsWrite=*/true);
      for (const ArrayAccess &R : A->getReads())
        checkAccess(R, /*IsWrite=*/false);
      break;
    }
    case StmtKind::DoLoop: {
      const auto *L = cast<DoLoop>(S);
      bool BoundsOk = checkExpr(L->getLo(), "loop lower bound");
      BoundsOk &= checkExpr(L->getHi(), "loop upper bound");
      if (BoundsOk) {
        std::optional<int64_t> Lo = Sym.constValue(L->getLo());
        std::optional<int64_t> Hi = Sym.constValue(L->getHi());
        if (Lo && Hi && *Hi < *Lo)
          report(Diag::Code::NonPositiveTrip,
                 "loop '" + L->getLabel() + "' has constant bounds " +
                     std::to_string(*Lo) + ".." + std::to_string(*Hi) +
                     " (empty by construction)");
      }
      bool Reused = false;
      for (sym::SymbolId V : LoopVarStack)
        if (V == L->getVar()) {
          Reused = true;
          break;
        }
      if (Reused)
        report(Diag::Code::DuplicateLoopVar,
               "loop '" + L->getLabel() + "' reuses enclosing loop variable '" +
                   symName(L->getVar()) + "'");
      LoopVarStack.push_back(L->getVar());
      walkStmts(L->getBody(), Depth + 1);
      LoopVarStack.pop_back();
      break;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      checkPred(I->getCond());
      walkStmts(I->getThen(), Depth + 1);
      walkStmts(I->getElse(), Depth + 1);
      break;
    }
    case StmtKind::CivIncr: {
      const auto *C = cast<CivIncrStmt>(S);
      for (sym::SymbolId V : LoopVarStack)
        if (V == C->getCiv())
          report(Diag::Code::CivIsLoopVar,
                 "CIV increment targets loop variable '" +
                     symName(C->getCiv()) + "'");
      if (checkExpr(C->getAmount(), "CIV increment amount"))
        if (std::optional<int64_t> Amt = Sym.constValue(C->getAmount()))
          if (*Amt < 0)
            report(Diag::Code::NegativeCivStep,
                   "CIV '" + symName(C->getCiv()) +
                       "' has negative constant increment " +
                       std::to_string(*Amt));
      break;
    }
    case StmtKind::Call: {
      const auto *C = cast<CallStmt>(S);
      const Subroutine *Callee = C->getCallee();
      if (!Callee) {
        report(Diag::Code::MissingCallee,
               "CALL statement has no resolvable subroutine");
        break;
      }
      bool Cyclic = false;
      for (const Subroutine *Sub : CallStack)
        if (Sub == Callee) {
          Cyclic = true;
          break;
        }
      if (Cyclic) {
        report(Diag::Code::CallCycle,
               "recursive call chain through subroutine '" +
                   Callee->getName() + "'");
        break;
      }
      std::unordered_set<sym::SymbolId> Formals;
      for (const CallStmt::ArrayArg &AA : C->getArrayArgs()) {
        checkExpr(AA.Offset, "call array-argument offset");
        checkArrayDeclared(AA.Actual, "actual array argument");
        Formals.insert(AA.Formal);
      }
      for (const CallStmt::ScalarArg &SA : C->getScalarArgs())
        checkExpr(SA.Actual, "call scalar argument");
      CallStack.push_back(Callee);
      FormalArrayScopes.push_back(std::move(Formals));
      walkStmts(Callee->getBody(), Depth + 1);
      FormalArrayScopes.pop_back();
      CallStack.pop_back();
      break;
    }
    }
  }

  const Program &Prog;
  const sym::Context &Sym;
  const ValidateLimits &Lim;
  ExprDepthMap ExprDepths;
  PredDepthMap PredDepths;
  std::vector<Diag> Diags;
  std::vector<sym::SymbolId> LoopVarStack;
  std::vector<const Subroutine *> CallStack;
  std::vector<std::unordered_set<sym::SymbolId>> FormalArrayScopes;
  std::unordered_set<const sym::Expr *> DeepExprs;
  std::unordered_set<const pdag::Pred *> DeepPreds;
  std::unordered_set<sym::SymbolId> UndeclaredReported;
  bool StmtDepthReported = false;
};

/// Collects, over the whole nest, (a) the scalars execution itself defines
/// (loop variables, CIV targets, callee formal scalars, LoopAll bound
/// variables) and (b) every free symbol of every expression/predicate.
/// Assumes the nest already passed structural validation (bounded depth).
class InputScanner {
public:
  explicit InputScanner(const Program &P) : Prog(P) {}

  void scanStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (A->getWrite())
        addExpr(A->getWrite()->Offset);
      for (const ArrayAccess &R : A->getReads())
        addExpr(R.Offset);
      break;
    }
    case StmtKind::DoLoop: {
      const auto *L = cast<DoLoop>(S);
      addExpr(L->getLo());
      addExpr(L->getHi());
      Defined.insert(L->getVar());
      for (const Stmt *B : L->getBody())
        scanStmt(B);
      break;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      scanPred(I->getCond());
      for (const Stmt *B : I->getThen())
        scanStmt(B);
      for (const Stmt *B : I->getElse())
        scanStmt(B);
      break;
    }
    case StmtKind::CivIncr: {
      const auto *C = cast<CivIncrStmt>(S);
      Defined.insert(C->getCiv());
      addExpr(C->getAmount());
      break;
    }
    case StmtKind::Call: {
      const auto *C = cast<CallStmt>(S);
      if (!C->getCallee())
        return;
      for (const CallStmt::ArrayArg &AA : C->getArrayArgs()) {
        addExpr(AA.Offset);
        AliasedFormals.insert(AA.Formal);
      }
      for (const CallStmt::ScalarArg &SA : C->getScalarArgs()) {
        addExpr(SA.Actual);
        Defined.insert(SA.Formal);
      }
      if (VisitedSubs.insert(C->getCallee()).second)
        for (const Stmt *B : C->getCallee()->getBody())
          scanStmt(B);
      break;
    }
    }
  }

  void scanPred(const pdag::Pred *P) {
    if (!P)
      return;
    if (const auto *C = dyn_cast<pdag::CmpPred>(P)) {
      addExpr(C->getExpr());
    } else if (const auto *D = dyn_cast<pdag::DividesPred>(P)) {
      addExpr(D->getDivisor());
      addExpr(D->getValue());
    } else if (const auto *LA = dyn_cast<pdag::LoopAllPred>(P)) {
      addExpr(LA->getLo());
      addExpr(LA->getHi());
      Defined.insert(LA->getVar());
      scanPred(LA->getBody());
    } else if (const auto *CS = dyn_cast<pdag::CallSitePred>(P)) {
      scanPred(CS->getBody());
    } else if (const auto *N = dyn_cast<pdag::NaryPred>(P)) {
      for (const pdag::Pred *Ch : N->getChildren())
        scanPred(Ch);
    }
  }

  void addExpr(const sym::Expr *E) {
    if (!E)
      return;
    for (sym::SymbolId S : E->freeSymbols())
      Referenced.insert(S);
  }

  const Program &Prog;
  std::unordered_set<sym::SymbolId> Referenced;
  std::unordered_set<sym::SymbolId> Defined;
  std::unordered_set<sym::SymbolId> AliasedFormals;
  std::unordered_set<const Subroutine *> VisitedSubs;
};

} // namespace

std::vector<support::Diag> collectLoopDiags(const Program &P, const DoLoop &L,
                                            const ValidateLimits &Lim) {
  Validator V(P, Lim);
  return V.run(L);
}

void validateLoop(const Program &P, const DoLoop &L,
                  const ValidateLimits &Lim) {
  std::vector<support::Diag> Ds = collectLoopDiags(P, L, Lim);
  if (!Ds.empty())
    throw support::ValidationError(std::move(Ds));
}

std::vector<support::Diag> collectInputDiags(const Program &P, const DoLoop &L,
                                             const sym::Bindings &B) {
  InputScanner S(P);
  S.scanStmt(&L);
  const sym::Context &Sym = P.symCtx();
  std::vector<support::Diag> Ds;
  for (sym::SymbolId Id : S.Referenced) {
    if (S.Defined.count(Id))
      continue;
    const sym::Symbol &Info = Sym.symbolInfo(Id);
    if (Info.IsArray) {
      if (!B.array(Id))
        Ds.emplace_back(support::Diag::Code::UnboundScalar,
                        "index array '" + Info.Name + "' has no binding");
    } else if (!B.scalar(Id)) {
      Ds.emplace_back(support::Diag::Code::UnboundScalar,
                      "scalar '" + Info.Name + "' has no binding");
    }
  }
  return Ds;
}

} // namespace ir
} // namespace halo
