//===- ir/Validate.h - Front-door validation of untrusted IR ---*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation of untrusted `ir::Program` loop nests before they
/// reach the analyzer or the interpreter. The interpreter substrate
/// (rt/Interp.cpp) asserts on unknown arrays and out-of-bounds stores —
/// correct for trusted suite programs, undefined behavior for hostile
/// input. `validateLoop` runs at `Session::prepare` and turns every such
/// shape into a `support::ValidationError` carrying structured
/// `support::Diag`s instead: undeclared arrays, constant non-positive
/// trips, provably out-of-bounds subscripts, loop-variable reuse, CIV
/// updates targeting loop variables, missing/cyclic callees, null access
/// expressions, and expression/predicate nesting beyond a structural cap
/// (so every program that passes validation is safe to walk recursively).
///
/// `collectInputDiags` is the bindings-aware second gate (unbound free
/// scalars, missing index-array bindings) used by harnesses that control
/// execution inputs — it is not on the prepare hot path because bindings
/// are per-execution, not per-plan.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_IR_VALIDATE_H
#define HALO_IR_VALIDATE_H

#include "ir/Program.h"
#include "support/Error.h"
#include "sym/Eval.h"

#include <vector>

namespace halo {
namespace ir {

/// Structural caps enforced by validation. Programs within these caps are
/// safe for the recursive reference walkers; the lowering pipeline applies
/// its own (smaller) caps and demotes to the interpreter tier when they
/// are exceeded (see pdag/PredCompile.h, usr/USRCompile.h).
struct ValidateLimits {
  /// Maximum expression nesting depth (IntConst/SymRef leaves count 1).
  unsigned MaxExprDepth = 1024;
  /// Maximum predicate nesting depth (leaves count 1).
  unsigned MaxPredDepth = 1024;
  /// Maximum statement nesting depth (loop/if/call bodies).
  unsigned MaxStmtDepth = 256;
};

/// Walks the loop nest rooted at \p L and returns every structural
/// finding, in program order; an empty vector means the loop passed.
/// Never throws, never asserts on malformed input.
std::vector<support::Diag> collectLoopDiags(const Program &P, const DoLoop &L,
                                            const ValidateLimits &Lim = {});

/// Throws `support::ValidationError` when `collectLoopDiags` reports any
/// finding. Called by `Session::prepare` on every first-use analysis.
void validateLoop(const Program &P, const DoLoop &L,
                  const ValidateLimits &Lim = {});

/// Bindings-aware input gate: every free scalar that execution will not
/// itself define (loop variables, CIV targets, callee formals) must be
/// bound in \p B, and every index array read by a subscript or gate must
/// have an array binding. Data arrays live in rt::Memory and are checked
/// by the caller. Returns findings; empty means the inputs are complete.
std::vector<support::Diag> collectInputDiags(const Program &P, const DoLoop &L,
                                             const sym::Bindings &B);

} // namespace ir
} // namespace halo

#endif // HALO_IR_VALIDATE_H
