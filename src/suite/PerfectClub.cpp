//===- suite/PerfectClub.cpp - PERFECT-CLUB benchmark reconstructions -----===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Table 1 of the paper: flo52, bdna, arc2d, dyfesm, mdg, trfd, track,
// spec77, ocean, qcd — rebuilt around the loop patterns the paper
// describes, with LSC weights from the table.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace halo;
using namespace halo::suite;
using namespace halo::ir;

namespace {

std::unique_ptr<Benchmark> makeFlo52() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "flo52";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 95;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("W", BB.Sym.mulConst(N, 4));
  auto Y = BB.dataArray("FW", BB.Sym.mulConst(N, 4));
  auto Z = BB.dataArray("DW", BB.Sym.mul(N, BB.s("STR")));

  B->Loops.push_back({"PSMOO_do40", 19.5, "STATIC-PAR",
                      makeStaticParLoop(BB, "PSMOO_do40", "i_p", X, Y, N, 40),
                      false});
  B->Loops.push_back({"DFLUX_do30", 9.6, "STATIC-PAR",
                      makeStaticParLoop(BB, "DFLUX_do30", "i_d", Y, X, N, 24),
                      false});
  B->Loops.push_back({"EFLUX_do10", 8.2, "STATIC-PAR",
                      makeStaticParLoop(BB, "EFLUX_do10", "i_e", X, Y, N, 20),
                      false});
  B->Loops.push_back(
      {"DFLUX_do40", 0.3, "OI O(1)",
       makeSymbolicStrideLoop(BB, "DFLUX_do40", "i_f", Z, "STR", N, 6),
       false});

  sym::Context *Sym = &B->sym();
  sym::SymbolId XI = X, YI = Y, ZI = Z;
  B->Setup = [Sym, XI, YI, ZI](rt::Memory &M, sym::Bindings &Bd,
                               int64_t Scale) {
    int64_t N = 600 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("STR"), 3);
    M.alloc(XI, static_cast<size_t>(4 * N));
    M.alloc(YI, static_cast<size_t>(4 * N));
    M.alloc(ZI, static_cast<size_t>(3 * N + 4));
  };
  return B;
}

std::unique_ptr<Benchmark> makeBdna() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "bdna";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 94;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("XDT", BB.Sym.mulConst(N, 4));
  auto Y = BB.dataArray("FDT", BB.Sym.mulConst(N, 4));

  B->Loops.push_back(
      {"ACTFOR_do500", 59.5, "STATIC-PAR",
       makeStaticParLoop(BB, "ACTFOR_do500", "i_a", X, Y, N, 120), false});

  // ACTFOR_do240 (CIVagg): gated CIV block writes (Fig. 7b shape).
  {
    auto XCIV = BB.dataArray("XCIV", BB.Sym.mulConst(N, 4));
    auto KND = BB.indexArray("KND");
    sym::SymbolId Civ = BB.Sym.symbol("civ240", 1);
    DoLoop *L = BB.loop("ACTFOR_do240", "i_c", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_c", 1));
    IfStmt *If =
        B->prog().make<IfStmt>(BB.P.gt(BB.Sym.arrayRef(KND, I), BB.c(0)));
    DoLoop *Blk = BB.loop("ACTFOR_do240_j", "j_c", BB.c(1), BB.c(3), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol("j_c", 2));
    Blk->append(BB.assign(
        XCIV, BB.Sym.addConst(BB.Sym.add(BB.sv(Civ), J), -1), {}, 30));
    If->appendThen(Blk);
    If->appendThen(B->prog().make<CivIncrStmt>(Civ, BB.c(3)));
    L->append(If);
    B->Loops.push_back({"ACTFOR_do240", 31.5, "CIVagg", L, false});
  }

  B->Loops.push_back(
      {"RESTAR_do15", 4.8, "STATIC-PAR",
       makeStaticParLoop(BB, "RESTAR_do15", "i_r", Y, X, N, 60), false});

  // CORREC_do711 (Sec. 3.2): point writes at IX(2)+i-2, triangular reads
  // at IX(1)+j-2 — flow independence via Fourier-Motzkin, O(1).
  {
    auto XC = BB.dataArray("XC", BB.Sym.mulConst(N, 4));
    DoLoop *L = BB.loop("CORREC_do711", "i_x", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_x", 1));
    auto IX = BB.indexArray("IX");
    L->append(BB.assign(
        XC,
        BB.Sym.addConst(BB.Sym.add(BB.Sym.arrayRef(IX, BB.c(2)), I), -2),
        {}, 8));
    DoLoop *Rd = BB.loop("CORREC_do711_j", "j_x", BB.c(1),
                         BB.Sym.addConst(I, -1), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol("j_x", 2));
    Rd->append(BB.readOnly(
        {ArrayAccess{XC, BB.Sym.addConst(
                             BB.Sym.add(BB.Sym.arrayRef(IX, BB.c(1)), J),
                             -2)}},
        4));
    L->append(Rd);
    B->Loops.push_back({"CORREC_do711", 2.0, "FI O(1)", L, false});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 400 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("civ240"), 0);
    for (const ArrayDecl &D : Arrays) {
      if (D.IsIndex)
        continue;
      M.alloc(D.Name, static_cast<size_t>(4 * N));
    }
    Bd.setArray(Sym->symbol("KND"), constArray(N, 1));
    // IX(1) far beyond the written region: IX(2)+N <= IX(1).
    sym::ArrayBinding IX;
    IX.Lo = 1;
    IX.Vals = {2 * N + 2, 1};
    Bd.setArray(Sym->symbol("IX"), IX);
  };
  return B;
}

std::unique_ptr<Benchmark> makeArc2d() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "arc2d";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 97;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("XY", BB.Sym.mulConst(N, 4));
  auto Y = BB.dataArray("Q", BB.Sym.mulConst(N, 4));

  B->Loops.push_back(
      {"STEPFX_do210", 16.3, "STATIC-PAR",
       makeStaticParLoop(BB, "STEPFX_do210", "i_s", X, Y, N, 30), false});
  B->Loops.push_back(
      {"STEPFX_do230", 11.9, "STATIC-PAR",
       makeStaticParLoop(BB, "STEPFX_do230", "i_t", Y, X, N, 30), false});

  // XPENT2_do11 (FI O(1)): write block at [JL .. JL+N-1], read [0..N-1];
  // flow independence iff JL >= N (quasi-affine, Sec. 7's filerx class).
  {
    auto XP = BB.dataArray("XP", BB.Sym.add(BB.s("JL"), N));
    DoLoop *L = BB.loop("XPENT2_do11", "i_q", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_q", 1));
    L->append(BB.assign(XP, BB.Sym.addConst(BB.Sym.add(BB.s("JL"), I), -1),
                        {ArrayAccess{XP, BB.Sym.addConst(I, -1)}}, 4));
    B->Loops.push_back({"XPENT2_do11", 10.7, "FI O(1)", L, false});
  }
  // FILERX_do15 (FI O(1)): same family, different region split.
  {
    auto XF = BB.dataArray("XF",
                           BB.Sym.add(BB.s("JF"), BB.Sym.mulConst(N, 2)));
    DoLoop *L = BB.loop("FILERX_do15", "i_f", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_f", 1));
    L->append(BB.assign(
        XF, BB.Sym.addConst(BB.Sym.add(BB.s("JF"), BB.Sym.mulConst(I, 2)),
                            -2),
        {ArrayAccess{XF, BB.Sym.addConst(I, -1)}}, 6));
    B->Loops.push_back({"FILERX_do15", 9.0, "FI O(1)", L, false});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 700 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("JL"), N);
    Bd.setScalar(Sym->symbol("JF"), N);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(4 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeDyfesm() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "dyfesm";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 97;
  BenchBuilder BB(*B);
  auto &Prog = B->prog();
  auto N = BB.s("N");

  // MXMULT_do10 (EXT-RRED + HOIST-USR): direct writes at P(i), reduction
  // updates at Q(i) — the Sec. 4 extended-reduction pattern.
  {
    auto A = BB.dataArray("AMX", BB.Sym.mulConst(N, 4));
    auto PP = BB.indexArray("PMX");
    auto QQ = BB.indexArray("QMX");
    DoLoop *L = BB.loop("MXMULT_do10", "i_m", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_m", 1));
    L->append(BB.assign(A, BB.Sym.arrayRef(PP, I), {}, 40));
    L->append(BB.reduce(A, BB.Sym.arrayRef(QQ, I), {}, 40));
    B->Loops.push_back(
        {"MXMULT_do10", 43.9, "FI HOIST-USR / OI O(N)", L, true});
  }

  // SOLXDD_do10 (OI O(N)): monotone block writes.
  {
    auto XS = BB.dataArray("XDD", BB.Sym.mulConst(N, 8));
    auto IBS = BB.indexArray("IBS");
    B->Loops.push_back(
        {"SOLXDD_do10", 27.3, "OI O(N)",
         makeMonotonicBlockLoop(BB, "SOLXDD_do10", "i_sx", XS, IBS,
                                BB.c(4), N, 24),
         false});
  }

  // SOLVH_do20 (F/OI O(1)/O(N)) — the Fig. 1 program, interprocedural.
  {
    auto XE = BB.dataArray("XE", BB.Sym.mulConst(BB.s("NP"), 16));
    auto HE = BB.dataArray(
        "HE", BB.Sym.mulConst(BB.Sym.add(N, BB.Sym.mulConst(N, 3)), 32));
    auto IA = BB.indexArray("IA");
    auto IB = BB.indexArray("IB");

    auto XEf = BB.Sym.symbol("XEf", 0, true);
    Subroutine *Geteu = Prog.makeSubroutine("geteu");
    {
      auto M = BB.Sym.symbol("m_g", 0);
      IfStmt *If = Prog.make<IfStmt>(BB.P.ne(BB.s("SYMf"), BB.c(1)));
      DoLoop *D = Prog.make<DoLoop>(
          "g", M, BB.c(1), BB.Sym.mulConst(BB.s("NPf_g"), 16), 1);
      D->append(BB.assign(XEf, BB.Sym.addConst(BB.sv(M), -1), {}, 2));
      If->appendThen(D);
      Geteu->append(If);
    }
    auto HEf = BB.Sym.symbol("HEf_m", 0, true);
    auto XEf2 = BB.Sym.symbol("XEf_m", 0, true);
    Subroutine *Matmult = Prog.makeSubroutine("matmult");
    {
      auto J = BB.Sym.symbol("j_m", 0);
      DoLoop *D = Prog.make<DoLoop>("m", J, BB.c(1), BB.s("NSf"), 1);
      auto Off = BB.Sym.addConst(BB.sv(J), -1);
      D->append(BB.assign(HEf, Off, {ArrayAccess{XEf2, Off}}, 3));
      D->append(BB.assign(XEf2, Off, {}, 1));
      Matmult->append(D);
    }
    auto HEf2 = BB.Sym.symbol("HEf_s", 0, true);
    Subroutine *Solvhe = Prog.makeSubroutine("solvhe");
    {
      auto J = BB.Sym.symbol("j_s", 0);
      auto I2 = BB.Sym.symbol("i_s", 0);
      DoLoop *DJ = Prog.make<DoLoop>("sj", J, BB.c(1), BB.c(3), 1);
      DoLoop *DI = Prog.make<DoLoop>("si", I2, BB.c(1), BB.s("NPf_s"), 2);
      auto Off = BB.Sym.addConst(
          BB.Sym.add(BB.Sym.mulConst(BB.Sym.addConst(BB.sv(I2), -1), 8),
                     BB.sv(J)),
          -1);
      DI->append(BB.assign(HEf2, Off, {ArrayAccess{HEf2, Off}}, 2));
      DJ->append(DI);
      Solvhe->append(DJ);
    }
    DoLoop *Loop = BB.loop("SOLVH_do20", "i_h", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_h", 1));
    DoLoop *KL = BB.loop("SOLVH_do20k", "k_h", BB.c(1),
                         BB.Sym.arrayRef(IA, I), 2);
    const sym::Expr *K = BB.sv(BB.Sym.symbol("k_h", 2));
    auto Id = BB.Sym.addConst(BB.Sym.add(BB.Sym.arrayRef(IB, I), K), -1);
    auto HEOff = BB.Sym.mulConst(BB.Sym.addConst(Id, -1), 32);
    KL->append(Prog.make<CallStmt>(
        Geteu, std::vector<CallStmt::ArrayArg>{{XEf, XE, BB.c(0)}},
        std::vector<CallStmt::ScalarArg>{
            {BB.Sym.symbol("SYMf"), BB.s("SYM")},
            {BB.Sym.symbol("NPf_g"), BB.s("NP")}}));
    KL->append(Prog.make<CallStmt>(
        Matmult,
        std::vector<CallStmt::ArrayArg>{{HEf, HE, HEOff},
                                        {XEf2, XE, BB.c(0)}},
        std::vector<CallStmt::ScalarArg>{{BB.Sym.symbol("NSf"), BB.s("NS")}}));
    KL->append(Prog.make<CallStmt>(
        Solvhe, std::vector<CallStmt::ArrayArg>{{HEf2, HE, HEOff}},
        std::vector<CallStmt::ScalarArg>{
            {BB.Sym.symbol("NPf_s"), BB.s("NP")}}));
    Loop->append(KL);
    B->Loops.push_back({"SOLVH_do20", 14.2, "F/OI O(1)/O(N)", Loop, false});
  }

  // FORMR_do20: second EXT-RRED loop.
  {
    auto A = BB.dataArray("AFR", BB.Sym.mulConst(N, 4));
    auto PP = BB.indexArray("PFR");
    auto QQ = BB.indexArray("QFR");
    DoLoop *L = BB.loop("FORMR_do20", "i_fr", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_fr", 1));
    L->append(BB.assign(A, BB.Sym.arrayRef(PP, I), {}, 20));
    L->append(BB.reduce(A, BB.Sym.arrayRef(QQ, I), {}, 20));
    B->Loops.push_back(
        {"FORMR_do20", 10.5, "FI HOIST-USR / OI O(N)", L, true});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 80 * Scale;
    int64_t NP = 8, NS = 64; // 8*NP < NS+6 and NS <= 16*NP.
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("NP"), NP);
    Bd.setScalar(Sym->symbol("NS"), NS);
    Bd.setScalar(Sym->symbol("SYM"), 0);
    // HE reaches offsets up to 32*(IB(N)+IA(N)-2)+8*NP-6 ~ 96*N.
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(100 * N + 512));
    // SOLVH: IA(i) = 2 blocks, IB monotone with 32-slack gaps
    // (NS <= 32*(IB(i+1)-IA(i)-IB(i)+1): 64 <= 32*(3-2+1) = 64).
    Bd.setArray(Sym->symbol("IA"), constArray(N, 2));
    Bd.setArray(Sym->symbol("IB"), rampArray(N, 1, 3));
    // MXMULT/FORMR: direct writes in the lower half, reductions
    // monotonically in the upper half (disjoint, increasing).
    Bd.setArray(Sym->symbol("PMX"), rampArray(N, 0, 1));
    Bd.setArray(Sym->symbol("QMX"), rampArray(N, 2 * N, 1));
    Bd.setArray(Sym->symbol("PFR"), rampArray(N, 0, 1));
    Bd.setArray(Sym->symbol("QFR"), rampArray(N, 2 * N, 1));
    Bd.setArray(Sym->symbol("IBS"), rampArray(N, 1, 5));
  };
  return B;
}

std::unique_ptr<Benchmark> makeMdg() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "mdg";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 99;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("RS", BB.Sym.mulConst(N, 4));
  auto Y = BB.dataArray("FS", BB.Sym.mulConst(N, 4));
  B->Loops.push_back(
      {"INTERF_do1000", 92.0, "STATIC-PAR",
       makeStaticParLoop(BB, "INTERF_do1000", "i_i", X, Y, N, 160), false});
  B->Loops.push_back(
      {"POTENG_do2000", 7.2, "STATIC-PAR",
       makeStaticParLoop(BB, "POTENG_do2000", "i_o", Y, X, N, 80), false});
  sym::Context *Sym = &B->sym();
  sym::SymbolId XI = X, YI = Y;
  B->Setup = [Sym, XI, YI](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 500 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    M.alloc(XI, static_cast<size_t>(4 * N));
    M.alloc(YI, static_cast<size_t>(4 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeTrfd() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "trfd";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 99;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("XIJ", BB.Sym.mulConst(N, 4));
  auto Y = BB.dataArray("XKL", BB.Sym.mulConst(N, 4));
  B->Loops.push_back(
      {"OLDA_do100", 63.7, "STATIC-PAR",
       makeStaticParLoop(BB, "OLDA_do100", "i_1", X, Y, N, 60), false});

  // OLDA_do300 (FI O(1)): writes a moving block [JL+(i-1)*M ..], reads a
  // fixed prefix [0..M-1]: flow independence iff JL >= M (the paper
  // resolves the original quadratic indexing with a light predicate).
  {
    auto XO = BB.dataArray(
        "XO", BB.Sym.add(BB.s("JLo"), BB.Sym.mul(N, BB.s("Mo"))));
    DoLoop *L = BB.loop("OLDA_do300", "i_3", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_3", 1));
    DoLoop *Inner = BB.loop("OLDA_do300_j", "j_3", BB.c(1), BB.s("Mo"), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol("j_3", 2));
    const sym::Expr *WOff = BB.Sym.addConst(
        BB.Sym.add(BB.s("JLo"),
                   BB.Sym.add(BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s("Mo")),
                              J)),
        -1);
    Inner->append(BB.assign(XO, WOff,
                            {ArrayAccess{XO, BB.Sym.addConst(J, -1)}}, 30));
    L->append(Inner);
    B->Loops.push_back({"OLDA_do300", 30.9, "FI O(1)", L, false});
  }

  // INTGRL_do140 (OI O(N)): monotone block writes via index array.
  {
    auto XI2 = BB.dataArray("XIN", BB.Sym.mulConst(N, 8));
    auto IBT = BB.indexArray("IBT");
    B->Loops.push_back(
        {"INTGRL_do140", 3.9, "OI O(N)",
         makeMonotonicBlockLoop(BB, "INTGRL_do140", "i_4", XI2, IBT,
                                BB.c(4), N, 10),
         false});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 300 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("JLo"), 64);
    Bd.setScalar(Sym->symbol("Mo"), 16);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(20 * N + 128));
    Bd.setArray(Sym->symbol("IBT"), rampArray(N, 1, 5));
  };
  return B;
}

std::unique_ptr<Benchmark> makeTrack() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "track";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 97;
  BenchBuilder BB(*B);
  auto &Prog = B->prog();
  auto N = BB.s("N");

  // EXTEND_do400 / FPTRAK_do300 (CIV-COMP): data-dependent CIV growth —
  // the while-loop conversion the paper describes, whose slice is almost
  // as expensive as the loop (RTov = 47%).
  auto MakeCivLoop = [&](const std::string &Name, const std::string &Var,
                         const std::string &CondArr,
                         const std::string &DataArr) {
    auto X = BB.dataArray(DataArr, BB.Sym.mulConst(N, 6));
    auto CND = BB.indexArray(CondArr);
    sym::SymbolId Civ = BB.Sym.symbol("civ_" + Name, 1);
    DoLoop *L = BB.loop(Name, Var, BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
    IfStmt *If =
        Prog.make<IfStmt>(BB.P.gt(BB.Sym.arrayRef(CND, I), BB.c(0)));
    DoLoop *Blk = BB.loop(Name + "_j", Var + "j", BB.c(1), BB.c(4), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol(Var + "j", 2));
    Blk->append(BB.assign(
        X, BB.Sym.addConst(BB.Sym.add(BB.sv(Civ), J), -1), {}, 90));
    If->appendThen(Blk);
    If->appendThen(Prog.make<CivIncrStmt>(Civ, BB.c(4)));
    L->append(If);
    return L;
  };
  B->Loops.push_back({"EXTEND_do400", 49.2, "CIV-COMP",
                      MakeCivLoop("EXTEND_do400", "i_e", "CNDE", "XTRK"),
                      false});
  B->Loops.push_back({"FPTRAK_do300", 47.7, "CIV-COMP",
                      MakeCivLoop("FPTRAK_do300", "i_f", "CNDF", "YTRK"),
                      false});

  // NLFILT_do300 (TLS): irregular subscripted subscripts.
  {
    auto X = BB.dataArray("ZTRK", BB.Sym.mulConst(N, 2));
    auto IDX = BB.indexArray("IDXN");
    auto JDX = BB.indexArray("JDXN");
    B->Loops.push_back(
        {"NLFILT_do300", 1.2, "TLS",
         makeIrregularLoop(BB, "NLFILT_do300", "i_n", X, IDX, JDX, N, 40),
         false});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 300 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("civ_EXTEND_do400"), 0);
    Bd.setScalar(Sym->symbol("civ_FPTRAK_do300"), 0);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(6 * N));
    // Roughly half the iterations extend a track.
    sym::ArrayBinding C1, C2;
    C1.Lo = C2.Lo = 1;
    for (int64_t I = 0; I < N; ++I) {
      C1.Vals.push_back(I % 2);
      C2.Vals.push_back((I + 1) % 2);
    }
    Bd.setArray(Sym->symbol("CNDE"), C1);
    Bd.setArray(Sym->symbol("CNDF"), C2);
    // NLFILT: disjoint index sets at runtime (speculation succeeds).
    Bd.setArray(Sym->symbol("IDXN"), rampArray(N, 0, 2));
    Bd.setArray(Sym->symbol("JDXN"), rampArray(N, 1, 2));
  };
  return B;
}

std::unique_ptr<Benchmark> makeSpec77() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "spec77";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 76;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("GW", BB.Sym.mulConst(N, 4));
  auto Y = BB.dataArray("GZ", BB.Sym.mulConst(N, 4));
  B->Loops.push_back(
      {"GLOOP_do1000", 57.1, "STATIC-PAR",
       makeStaticParLoop(BB, "GLOOP_do1000", "i_g", X, Y, N, 80), false});
  {
    auto Z = BB.dataArray("GT", BB.Sym.mulConst(N, 2));
    auto IDX = BB.indexArray("IDXG");
    auto JDX = BB.indexArray("JDXG");
    B->Loops.push_back(
        {"GWATER_do190", 16.5, "TLS",
         makeIrregularLoop(BB, "GWATER_do190", "i_w", Z, IDX, JDX, N, 120),
         false});
  }
  {
    auto XS = BB.dataArray("SIC", BB.Sym.add(BB.s("JS"), N));
    DoLoop *L = BB.loop("SICDKD_do1000", "i_k", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_k", 1));
    L->append(BB.assign(XS, BB.Sym.addConst(BB.Sym.add(BB.s("JS"), I), -1),
                        {ArrayAccess{XS, BB.Sym.addConst(I, -1)}}, 10));
    B->Loops.push_back({"SICDKD_do1000", 2.6, "FI O(1)", L, false});
  }
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 400 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("JS"), N);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(4 * N));
    Bd.setArray(Sym->symbol("IDXG"), rampArray(N, 0, 2));
    Bd.setArray(Sym->symbol("JDXG"), rampArray(N, 1, 2));
  };
  return B;
}

std::unique_ptr<Benchmark> makeOcean() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "ocean";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 65;
  BenchBuilder BB(*B);
  auto N = BB.s("N");

  // FTRVMT_do109 (FI O(1)): interleaved strided accesses — exercises the
  // gcd/divisibility disjointness test of Sec. 3.2.
  {
    auto X = BB.dataArray("FT", BB.Sym.mulConst(N, 4));
    DoLoop *L = BB.loop("FTRVMT_do109", "i_v", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_v", 1));
    const sym::Expr *WOff = BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s("INC"));
    const sym::Expr *ROff = BB.Sym.addConst(
        BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s("INC")), 1);
    L->append(BB.assign(X, WOff, {ArrayAccess{X, ROff}}, 30));
    B->Loops.push_back({"FTRVMT_do109", 45.4, "FI O(1)", L, false});
  }
  {
    auto X = BB.dataArray("CS", BB.Sym.mulConst(N, 2));
    auto Y = BB.dataArray("CZ", BB.Sym.mulConst(N, 2));
    B->Loops.push_back(
        {"CSR_do20", 5.2, "STATIC-PAR",
         makeStaticParLoop(BB, "CSR_do20", "i_c", X, Y, N, 12), false});
    B->Loops.push_back(
        {"SCSC_do30", 3.8, "STATIC-PAR",
         makeStaticParLoop(BB, "SCSC_do30", "i_s", Y, X, N, 12), false});
  }
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 500 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("INC"), 2); // gcd(2,2) does not divide 1.
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(4 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeQcd() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "qcd";
  B->SuiteName = "PERFECT";
  B->SeqCoveragePct = 99;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("U1", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("U2", BB.Sym.mulConst(N, 2));
  B->Loops.push_back({"UPDATE_do1", 31.9, "STATIC-SEQ",
                      makeSeqChainLoop(BB, "UPDATE_do1", "i_u", X, N, 30),
                      false});
  B->Loops.push_back({"UPDATE_do2", 31.6, "STATIC-SEQ",
                      makeSeqChainLoop(BB, "UPDATE_do2", "i_v", Y, N, 30),
                      false});
  {
    auto Z = BB.dataArray("UI", BB.Sym.mul(N, BB.s("SQ")));
    B->Loops.push_back(
        {"INIT_do2", 1.0, "OI O(1)",
         makeSymbolicStrideLoop(BB, "INIT_do2", "i_q", Z, "SQ", N, 4),
         false});
  }
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 400 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("SQ"), 2);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(2 * N + 8));
  };
  return B;
}

} // namespace

std::vector<std::unique_ptr<Benchmark>> suite::buildPerfectClub() {
  std::vector<std::unique_ptr<Benchmark>> Out;
  Out.push_back(makeFlo52());
  Out.push_back(makeBdna());
  Out.push_back(makeArc2d());
  Out.push_back(makeDyfesm());
  Out.push_back(makeMdg());
  Out.push_back(makeTrfd());
  Out.push_back(makeTrack());
  Out.push_back(makeSpec77());
  Out.push_back(makeOcean());
  Out.push_back(makeQcd());
  return Out;
}
