//===- suite/Patterns.cpp - Shared loop-pattern constructors --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace halo;
using namespace halo::suite;
using namespace halo::ir;

DoLoop *suite::makeStaticParLoop(BenchBuilder &BB, const std::string &Label,
                                 const std::string &Var, sym::SymbolId X,
                                 sym::SymbolId Y, const sym::Expr *N,
                                 unsigned Work) {
  DoLoop *L = BB.loop(Label, Var, BB.c(1), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
  const sym::Expr *Off = BB.Sym.addConst(I, -1);
  L->append(BB.assign(X, Off, {ArrayAccess{Y, Off}}, Work));
  return L;
}

DoLoop *suite::makeSymbolicStrideLoop(BenchBuilder &BB,
                                      const std::string &Label,
                                      const std::string &Var, sym::SymbolId X,
                                      const std::string &StrideSym,
                                      const sym::Expr *N, unsigned Work) {
  DoLoop *L = BB.loop(Label, Var, BB.c(1), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
  // X[(i-1)*S] = ... : output independence needs S >= 1 (O(1) predicate
  // extracted by Fourier-Motzkin from the monotonicity of the offsets).
  const sym::Expr *Off =
      BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s(StrideSym));
  L->append(BB.assign(X, Off, {}, Work));
  return L;
}

DoLoop *suite::makeMonotonicBlockLoop(BenchBuilder &BB,
                                      const std::string &Label,
                                      const std::string &Var, sym::SymbolId X,
                                      sym::SymbolId IB, const sym::Expr *Len,
                                      const sym::Expr *N, unsigned Work) {
  // DO i: DO j = 1..Len: X[IB(i) + j - 2] = ... — block writes at
  // index-array offsets; output independence via the monotonicity rule
  // (an O(N) predicate like Fig. 3b's).
  DoLoop *L = BB.loop(Label, Var, BB.c(1), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
  DoLoop *Inner = BB.loop(Label + "_j", Label + "_j", BB.c(1), Len, 2);
  const sym::Expr *J = BB.sv(BB.Sym.symbol(Label + "_j", 2));
  const sym::Expr *Off = BB.Sym.addConst(
      BB.Sym.add(BB.Sym.arrayRef(IB, I), J), -2);
  Inner->append(BB.assign(X, Off, {}, Work));
  L->append(Inner);
  return L;
}

DoLoop *suite::makeSeqChainLoop(BenchBuilder &BB, const std::string &Label,
                                const std::string &Var, sym::SymbolId X,
                                const sym::Expr *N, unsigned Work) {
  DoLoop *L = BB.loop(Label, Var, BB.c(2), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
  // X[i-1] = f(X[i-2]): a loop-carried flow dependence.
  L->append(BB.assign(X, BB.Sym.addConst(I, -1),
                      {ArrayAccess{X, BB.Sym.addConst(I, -2)}}, Work));
  return L;
}

DoLoop *suite::makeIrregularLoop(BenchBuilder &BB, const std::string &Label,
                                 const std::string &Var, sym::SymbolId X,
                                 sym::SymbolId IDX, sym::SymbolId JDX,
                                 const sym::Expr *N, unsigned Work) {
  DoLoop *L = BB.loop(Label, Var, BB.c(1), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
  // X[IDX(i)] = f(X[JDX(i)]): no structure; exact test or speculation.
  L->append(BB.assign(X, BB.Sym.arrayRef(IDX, I),
                      {ArrayAccess{X, BB.Sym.arrayRef(JDX, I)}}, Work));
  return L;
}
