//===- suite/Spec2000.cpp - SPEC2000/2006 benchmark reconstructions -------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Table 3 of the paper: wupwise, apsi, applu, mgrid, swim, bwaves, zeusmp,
// gromacs, calculix, gamess.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace halo;
using namespace halo::suite;
using namespace halo::ir;

namespace {

std::unique_ptr<Benchmark> makeWupwise() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "wupwise";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 93;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("SU3", BB.Sym.mul(N, BB.s("LD")));

  // MULDEO/MULDOE (F/OI O(1)): block rows at symbolic leading dimension,
  // reads from the previous row half: both tests are O(1) comparisons on
  // LD and M.
  auto MakeMul = [&](const std::string &Name, const std::string &Var,
                     double Lsc) {
    DoLoop *L = BB.loop(Name, Var, BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
    DoLoop *Inner = BB.loop(Name + "_j", Var + "j", BB.c(1), BB.s("M"), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol(Var + "j", 2));
    const sym::Expr *Row =
        BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s("LD"));
    // Write the first half of the row, read the second half.
    Inner->append(BB.assign(
        X, BB.Sym.addConst(BB.Sym.add(Row, J), -1),
        {ArrayAccess{X, BB.Sym.addConst(
                            BB.Sym.add(Row, BB.Sym.add(J, BB.s("M"))), -1)}},
        50));
    L->append(Inner);
    B->Loops.push_back({Name, Lsc, "F/OI O(1)", L, false});
  };
  MakeMul("MULDEO_do100", "i_a", 20.6);
  MakeMul("MULDEO_do200", "i_b", 25.8);
  MakeMul("MULDOE_do100", "i_c", 20.7);
  MakeMul("MULDOE_do200", "i_d", 25.9);

  sym::Context *Sym = &B->sym();
  sym::SymbolId XI = X;
  B->Setup = [Sym, XI](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 150 * Scale, MM = 8;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("M"), MM);
    Bd.setScalar(Sym->symbol("LD"), 2 * MM); // LD >= 2M: rows disjoint.
    M.alloc(XI, static_cast<size_t>(N * 2 * MM + 16));
  };
  return B;
}

std::unique_ptr<Benchmark> makeApsi() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "apsi";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 99;
  BenchBuilder BB(*B);
  auto N = BB.s("N");

  // RUN_do20/do50 (FI HOIST-USR): irregular accesses whose exact test is
  // hoisted and memoized across the many executions of the loop.
  {
    auto X = BB.dataArray("WRK", BB.Sym.mulConst(N, 2));
    auto IDX = BB.indexArray("IDXA");
    auto JDX = BB.indexArray("JDXA");
    B->Loops.push_back(
        {"RUN_do20", 17.6, "FI HOIST-USR",
         makeIrregularLoop(BB, "RUN_do20", "i_r", X, IDX, JDX, N, 60),
         true});
    B->Loops.push_back(
        {"RUN_do50", 10.4, "FI HOIST-USR",
         makeIrregularLoop(BB, "RUN_do50", "i_s", X, IDX, JDX, N, 40),
         true});
  }
  {
    auto X = BB.dataArray("WC", BB.Sym.mulConst(N, 2));
    auto Y = BB.dataArray("DV", BB.Sym.mulConst(N, 2));
    B->Loops.push_back(
        {"WCONT_do40", 11.0, "STATIC-PAR",
         makeStaticParLoop(BB, "WCONT_do40", "i_w", X, Y, N, 60), false});
    B->Loops.push_back(
        {"DVDTZ_do40", 10.3, "STATIC-PAR",
         makeStaticParLoop(BB, "DVDTZ_do40", "i_d", Y, X, N, 60), false});
  }
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 300 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(2 * N));
    Bd.setArray(Sym->symbol("IDXA"), rampArray(N, 0, 2));
    Bd.setArray(Sym->symbol("JDXA"), rampArray(N, 1, 2));
  };
  return B;
}

std::unique_ptr<Benchmark> makeApplu() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "applu";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 98;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("VLU", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("JAC", BB.Sym.mulConst(N, 2));
  B->Loops.push_back({"BLTS_do10", 28.4, "STATIC-SEQ",
                      makeSeqChainLoop(BB, "BLTS_do10", "i_l", X, N, 40),
                      false});
  B->Loops.push_back({"BUTS_do1", 28.1, "STATIC-SEQ",
                      makeSeqChainLoop(BB, "BUTS_do1", "i_u", Y, N, 40),
                      false});
  B->Loops.push_back(
      {"JACLD_do1", 14.1, "STATIC-PAR",
       makeStaticParLoop(BB, "JACLD_do1", "i_j", X, Y, N, 40), false});
  B->Loops.push_back(
      {"JACU_do1", 10.0, "STATIC-PAR",
       makeStaticParLoop(BB, "JACU_do1", "i_k", Y, X, N, 30), false});
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 400 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      M.alloc(D.Name, static_cast<size_t>(2 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeSimpleStaticPar(
    const std::string &Name, double SC,
    std::vector<std::tuple<std::string, double, unsigned>> LoopDefs,
    int64_t BaseN) {
  auto B = std::make_unique<Benchmark>();
  B->Name = Name;
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = SC;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("X_" + Name, BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("Y_" + Name, BB.Sym.mulConst(N, 2));
  int Flip = 0;
  for (auto &[LName, Lsc, Work] : LoopDefs) {
    auto W = (Flip++ % 2) ? Y : X;
    auto R = (W == X) ? Y : X;
    B->Loops.push_back(
        {LName, Lsc, "STATIC-PAR",
         makeStaticParLoop(BB, LName, "i" + std::to_string(Flip), W, R, N,
                           Work),
         false});
  }
  sym::Context *Sym = &B->sym();
  sym::SymbolId XI = X, YI = Y;
  B->Setup = [Sym, XI, YI, BaseN](rt::Memory &M, sym::Bindings &Bd,
                                  int64_t Scale) {
    int64_t N = BaseN * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    M.alloc(XI, static_cast<size_t>(2 * N));
    M.alloc(YI, static_cast<size_t>(2 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeZeusmp() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "zeusmp";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 99;
  BenchBuilder BB(*B);
  auto &Prog = B->prog();
  auto N = BB.s("N");
  auto X = BB.dataArray("HS", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("MX", BB.Sym.mulConst(N, 2));
  B->Loops.push_back(
      {"HSMOC_do360", 10.3, "STATIC-PAR",
       makeStaticParLoop(BB, "HSMOC_do360", "i_h", X, Y, N, 90), false});
  B->Loops.push_back(
      {"MOMX3_do3000", 5.1, "STATIC-PAR",
       makeStaticParLoop(BB, "MOMX3_do3000", "i_m", Y, X, N, 40), false});

  // TRANX2_do2100 (F/OI O(1), UMEG): the Fig. 9(b) pattern — mutually
  // exclusive gates select between two row layouts; UMEG-preserving
  // reshaping keeps the gated shape so each side yields an O(1) predicate.
  {
    auto DEOD = BB.dataArray("DEOD", BB.Sym.mul(N, BB.s("MT")));
    DoLoop *L = BB.loop("TRANX2_do2100", "i_z", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_z", 1));
    const sym::Expr *Row = BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s("MT"));
    IfStmt *If = Prog.make<IfStmt>(BB.P.eq(BB.s("jbeg"), BB.s("js")));
    {
      DoLoop *DJ = BB.loop("TRANX2_then", "j_z1", BB.c(1), BB.s("jend"), 2);
      const sym::Expr *J = BB.sv(BB.Sym.symbol("j_z1", 2));
      DJ->append(BB.assign(
          DEOD, BB.Sym.addConst(BB.Sym.add(Row, J), -1),
          {ArrayAccess{DEOD,
                       BB.Sym.addConst(
                           BB.Sym.add(Row, BB.Sym.add(J, BB.s("jend"))),
                           -1)}},
          25));
      If->appendThen(DJ);
    }
    {
      DoLoop *DJ = BB.loop("TRANX2_else", "j_z2", BB.c(1), BB.s("jend"), 2);
      const sym::Expr *J = BB.sv(BB.Sym.symbol("j_z2", 2));
      // Same row, shifted by one element (jbeg != js layout).
      DJ->append(BB.assign(
          DEOD, BB.Sym.add(Row, J),
          {ArrayAccess{DEOD,
                       BB.Sym.add(Row, BB.Sym.add(J, BB.s("jend")))}},
          25));
      If->appendElse(DJ);
    }
    L->append(If);
    B->Loops.push_back({"TRANX2_do2100", 7.6, "F/OI O(1)", L, false});
  }

  // TRANX1_do100 (OI O(1)): symbolic-stride rows.
  {
    auto Z = BB.dataArray("TRX", BB.Sym.mul(N, BB.s("MT")));
    B->Loops.push_back(
        {"TRANX1_do100", 2.4, "OI O(1)",
         makeSymbolicStrideLoop(BB, "TRANX1_do100", "i_t", Z, "MT", N, 20),
         false});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 220 * Scale, MT = 40, JEND = 18;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("MT"), MT);   // MT >= 2*jend + 2.
    Bd.setScalar(Sym->symbol("jend"), JEND);
    Bd.setScalar(Sym->symbol("jbeg"), 3);
    Bd.setScalar(Sym->symbol("js"), 3); // jbeg == js branch.
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(N * MT + 64));
  };
  return B;
}

std::unique_ptr<Benchmark> makeGromacs() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "gromacs";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 90;
  BenchBuilder BB(*B);
  auto N = BB.s("N");

  // INL1130_do1 (BOUNDS-COMP): reduction into an assumed-size array at
  // index-array offsets (Fig. 7a: FSHIFT(3*SHIFT(n)+j)); the bounds of
  // the touched region are computed at runtime.
  auto MakeInl = [&](const std::string &Name, const std::string &Var,
                     double Lsc, unsigned Work) {
    auto FSH = BB.assumedSizeArray("FSHIFT_" + Name);
    auto SHF = BB.indexArray("SHIFT_" + Name);
    auto POS = BB.dataArray("POS_" + Name, BB.Sym.mulConst(N, 4));
    DoLoop *L = BB.loop(Name, Var, BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
    L->append(BB.readOnly(
        {ArrayAccess{POS, BB.Sym.addConst(I, -1)}}, Work));
    DoLoop *Inner = BB.loop(Name + "_j", Var + "j", BB.c(1), BB.c(3), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol(Var + "j", 2));
    Inner->append(BB.reduce(
        FSH,
        BB.Sym.addConst(
            BB.Sym.add(BB.Sym.mulConst(BB.Sym.arrayRef(SHF, I), 3), J), -1),
        {}, 4));
    L->append(Inner);
    B->Loops.push_back({Name, Lsc, "BOUNDS-COMP", L, false});
  };
  MakeInl("INL1130_do1", "i_1", 84.8, 40);
  MakeInl("INL1100_do1", "i_2", 2.2, 10);
  MakeInl("INL1000_do1", "i_3", 1.9, 10);
  MakeInl("INL0100_do1", "i_4", 0.8, 8);

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 280 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays) {
      if (D.IsIndex) {
        // SHIFT values in a small range: many cross-iteration collisions
        // (the reduction is genuinely needed).
        sym::ArrayBinding A;
        A.Lo = 1;
        for (int64_t I = 0; I < N; ++I)
          A.Vals.push_back(I % 27);
        Bd.setArray(D.Name, A);
      } else {
        M.alloc(D.Name, static_cast<size_t>(4 * N + 128));
      }
    }
  };
  return B;
}

std::unique_ptr<Benchmark> makeCalculix() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "calculix";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 74;
  BenchBuilder BB(*B);
  auto &Prog = B->prog();
  auto N = BB.s("N");

  // MAFILLSM_do7 (BOUNDS-COMP + F/OI O(N)): gated monotone block writes
  // (the Fig. 9a O(N) predicate) plus an assumed-size reduction (AUB).
  auto KONL = BB.dataArray("KONL", BB.Sym.mulConst(N, 8));
  auto AUB = BB.assumedSizeArray("AUB");
  auto IPK = BB.indexArray("IPKON");
  auto IRW = BB.indexArray("IROW");
  DoLoop *L = BB.loop("MAFILLSM_do7", "i_c", BB.c(1), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol("i_c", 1));
  IfStmt *If =
      Prog.make<IfStmt>(BB.P.ge(BB.Sym.arrayRef(IPK, I), BB.c(0)));
  DoLoop *Blk = BB.loop("MAFILLSM_do7_j", "j_c", BB.c(1), BB.c(4), 2);
  const sym::Expr *J = BB.sv(BB.Sym.symbol("j_c", 2));
  // Monotone block writes into KONL.
  Blk->append(BB.assign(
      KONL,
      BB.Sym.addConst(
          BB.Sym.add(BB.Sym.mulConst(BB.Sym.addConst(I, -1), 4), J), -1),
      {}, 80));
  // Reduction into the assumed-size stiffness array.
  Blk->append(BB.reduce(
      AUB,
      BB.Sym.addConst(BB.Sym.add(BB.Sym.arrayRef(IRW, I), J), -1), {}, 20));
  If->appendThen(Blk);
  L->append(If);
  B->Loops.push_back(
      {"MAFILLSM_do7", 73.7, "BOUNDS-COMP F/OI O(N)/O(1)", L, false});

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 200 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(8 * N + 64));
    Bd.setArray(Sym->symbol("IPKON"), constArray(N, 1));
    // Overlapping reduction rows: RRED fails, private copies merge.
    sym::ArrayBinding A;
    A.Lo = 1;
    for (int64_t I = 0; I < N; ++I)
      A.Vals.push_back((I % 16) * 4);
    Bd.setArray(Sym->symbol("IROW"), A);
  };
  return B;
}

std::unique_ptr<Benchmark> makeGamess() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "gamess";
  B->SuiteName = "SPEC2000/2006";
  B->SeqCoveragePct = 32;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("DIR", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("GEN", BB.Sym.mulConst(N, 2));
  B->Loops.push_back(
      {"DIRFCK_do300", 18.0, "STATIC-PAR",
       makeStaticParLoop(BB, "DIRFCK_do300", "i_d", X, Y, N, 10), false});
  B->Loops.push_back(
      {"GENR70_do170", 14.4, "STATIC-PAR",
       makeStaticParLoop(BB, "GENR70_do170", "i_g", Y, X, N, 8), false});
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 300 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      M.alloc(D.Name, static_cast<size_t>(2 * N));
  };
  return B;
}

} // namespace

std::vector<std::unique_ptr<Benchmark>> suite::buildSpec2000() {
  std::vector<std::unique_ptr<Benchmark>> Out;
  Out.push_back(makeWupwise());
  Out.push_back(makeApsi());
  Out.push_back(makeApplu());
  Out.push_back(makeSimpleStaticPar(
      "mgrid", 100,
      {{"RESID_do600", 51.5, 70},
       {"PSINV_do600", 28.9, 40},
       {"INTERP_do800", 4.9, 10},
       {"RPRJ3_do100", 4.5, 10}},
      500));
  Out.push_back(makeSimpleStaticPar(
      "swim", 100,
      {{"SHALOW_do3500", 44.8, 60},
       {"CALC2_do200", 20.5, 30},
       {"CALC1_do100", 18.0, 26},
       {"CALC3_do300", 15.4, 22}},
      500));
  Out.push_back(makeSimpleStaticPar(
      "bwaves", 100,
      {{"MATVEC_do1", 75.1, 110},
       {"FLUX_do2", 5.8, 12},
       {"SHELL_do5", 4.2, 10}},
      450));
  Out.push_back(makeZeusmp());
  Out.push_back(makeGromacs());
  Out.push_back(makeCalculix());
  Out.push_back(makeGamess());
  return Out;
}

std::vector<std::unique_ptr<Benchmark>> suite::buildAllBenchmarks() {
  std::vector<std::unique_ptr<Benchmark>> Out = buildPerfectClub();
  for (auto &B : buildSpec92())
    Out.push_back(std::move(B));
  for (auto &B : buildSpec2000())
    Out.push_back(std::move(B));
  return Out;
}
