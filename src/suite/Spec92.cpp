//===- suite/Spec92.cpp - SPEC89/92 benchmark reconstructions -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Table 2 of the paper: matrix300, swm256, ora, nasa7, tomcatv, mdljdp2,
// hydro2d.
//
//===----------------------------------------------------------------------===//

#include "suite/Suite.h"

using namespace halo;
using namespace halo::suite;
using namespace halo::ir;

namespace {

std::unique_ptr<Benchmark> makeMatrix300() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "matrix300";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 100;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto C = BB.dataArray("C", BB.Sym.mul(N, BB.s("LDA")));
  auto A = BB.dataArray("A", BB.Sym.mul(N, BB.s("LDA")));

  // SGEMM_do160 / do120 (STATIC-PAR): dense row updates.
  auto MakeGemm = [&](const std::string &Name, const std::string &Var,
                      double Lsc) {
    DoLoop *L = BB.loop(Name, Var, BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol(Var, 1));
    DoLoop *Inner = BB.loop(Name + "_j", Var + "j", BB.c(1), N, 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol(Var + "j", 2));
    const sym::Expr *Off = BB.Sym.addConst(
        BB.Sym.add(BB.Sym.mul(BB.Sym.addConst(I, -1), N), J), -1);
    Inner->append(BB.assign(C, Off, {ArrayAccess{A, Off}}, 8));
    L->append(Inner);
    B->Loops.push_back({Name, Lsc, "STATIC-PAR", L, false});
  };
  MakeGemm("SGEMM_do160", "i_a", 30.2);
  MakeGemm("SGEMM_do120", "i_b", 30.0);

  // SGEMM_do20/do40 (OI O(1)): leading-dimension test — rows of length M
  // written at stride LDA; independent iff LDA >= M.
  {
    DoLoop *L = BB.loop("SGEMM_do20", "i_c", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_c", 1));
    DoLoop *Inner = BB.loop("SGEMM_do20_j", "i_cj", BB.c(1), BB.s("M"), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol("i_cj", 2));
    const sym::Expr *Off = BB.Sym.addConst(
        BB.Sym.add(BB.Sym.mul(BB.Sym.addConst(I, -1), BB.s("LDA")), J), -1);
    Inner->append(BB.assign(C, Off, {}, 6));
    L->append(Inner);
    B->Loops.push_back({"SGEMM_do20", 12.8, "OI O(1)", L, false});
  }

  sym::Context *Sym = &B->sym();
  sym::SymbolId CI = C, AI = A;
  B->Setup = [Sym, CI, AI](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 90 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("LDA"), N + 2);
    Bd.setScalar(Sym->symbol("M"), N);
    M.alloc(CI, static_cast<size_t>(N * (N + 2) + 8));
    M.alloc(AI, static_cast<size_t>(N * (N + 2) + 8));
  };
  return B;
}

std::unique_ptr<Benchmark> makeSwm256() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "swm256";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 99;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto U = BB.dataArray("U", BB.Sym.mulConst(N, 2));
  auto V = BB.dataArray("V", BB.Sym.mulConst(N, 2));
  auto Z = BB.dataArray("Z", BB.Sym.mulConst(N, 2));
  B->Loops.push_back(
      {"CALC2_do200", 40.6, "STATIC-PAR",
       makeStaticParLoop(BB, "CALC2_do200", "i_2", U, V, N, 30), false});
  B->Loops.push_back(
      {"CALC3_do300", 29.7, "STATIC-PAR",
       makeStaticParLoop(BB, "CALC3_do300", "i_3", V, Z, N, 24), false});
  B->Loops.push_back(
      {"CALC1_do100", 27.8, "STATIC-PAR",
       makeStaticParLoop(BB, "CALC1_do100", "i_1", Z, U, N, 24), false});
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 800 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      M.alloc(D.Name, static_cast<size_t>(2 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeOra() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "ora";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 100;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  // MAIN_do9999: embarrassingly parallel ray tracing with a scalar
  // reduction (SRED) into a small accumulator array.
  auto ACC = BB.dataArray("ACC", BB.c(8));
  auto X = BB.dataArray("RAYS", N);
  DoLoop *L = BB.loop("MAIN_do9999", "i_o", BB.c(1), N, 1);
  const sym::Expr *I = BB.sv(BB.Sym.symbol("i_o", 1));
  L->append(BB.assign(X, BB.Sym.addConst(I, -1), {}, 400));
  L->append(BB.reduce(ACC, BB.c(0),
                      {ArrayAccess{X, BB.Sym.addConst(I, -1)}}, 8));
  B->Loops.push_back({"MAIN_do9999", 99.9, "STATIC-PAR", L, false});
  sym::Context *Sym = &B->sym();
  sym::SymbolId AI = ACC, XI = X;
  B->Setup = [Sym, AI, XI](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 250 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    M.alloc(AI, 8);
    M.alloc(XI, static_cast<size_t>(N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeNasa7() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "nasa7";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 90;
  BenchBuilder BB(*B);
  auto N = BB.s("N");

  // GMTTST_do120 (FI O(1)): block split at a symbolic boundary.
  {
    auto X = BB.dataArray("GM", BB.Sym.add(BB.s("JG"), N));
    DoLoop *L = BB.loop("GMTTST_do120", "i_g", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_g", 1));
    L->append(BB.assign(X, BB.Sym.addConst(BB.Sym.add(BB.s("JG"), I), -1),
                        {ArrayAccess{X, BB.Sym.addConst(I, -1)}}, 220));
    B->Loops.push_back({"GMTTST_do120", 21.1, "FI O(1)", L, false});
  }

  // EMIT_do5 (SLV O(N)): every iteration rewrites a prefix [0, NW(i)-1];
  // privatize + static-last-value under AND_i NW(i) <= NW(N).
  {
    auto PSI = BB.dataArray("PSI", BB.Sym.mulConst(N, 2));
    auto NW = BB.indexArray("NWALL");
    DoLoop *L = BB.loop("EMIT_do5", "i_e", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_e", 1));
    DoLoop *Inner = BB.loop("EMIT_do5_j", "j_e", BB.c(1),
                            BB.Sym.arrayRef(NW, I), 2);
    const sym::Expr *J = BB.sv(BB.Sym.symbol("j_e", 2));
    Inner->append(BB.assign(PSI, BB.Sym.addConst(J, -1), {}, 60));
    L->append(Inner);
    B->Loops.push_back({"EMIT_do5", 13.2, "SLV O(N)", L, false});
  }

  // BTRTST_do120 (FI O(1)): same family as GMTTST.
  {
    auto X = BB.dataArray("BT", BB.Sym.add(BB.s("JB"), BB.Sym.mulConst(N, 2)));
    DoLoop *L = BB.loop("BTRTST_do120", "i_b", BB.c(1), N, 1);
    const sym::Expr *I = BB.sv(BB.Sym.symbol("i_b", 1));
    L->append(BB.assign(
        X, BB.Sym.addConst(BB.Sym.add(BB.s("JB"), BB.Sym.mulConst(I, 2)), -2),
        {ArrayAccess{X, BB.Sym.addConst(I, -1)}}, 150));
    B->Loops.push_back({"BTRTST_do120", 9.4, "FI O(1)", L, false});
  }

  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 120 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    Bd.setScalar(Sym->symbol("JG"), N);
    Bd.setScalar(Sym->symbol("JB"), 2 * N);
    for (const ArrayDecl &D : Arrays)
      if (!D.IsIndex)
        M.alloc(D.Name, static_cast<size_t>(4 * N + 16));
    // NW non-decreasing with the maximum at the last iteration: SLV holds.
    Bd.setArray(Sym->symbol("NWALL"), rampArray(N, 4, 1));
  };
  return B;
}

std::unique_ptr<Benchmark> makeTomcatv() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "tomcatv";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 100;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("XT", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("YT", BB.Sym.mulConst(N, 2));
  B->Loops.push_back(
      {"MAIN_do60", 37.8, "STATIC-PAR",
       makeStaticParLoop(BB, "MAIN_do60", "i_6", X, Y, N, 16), false});
  B->Loops.push_back(
      {"MAIN_do100", 26.6, "STATIC-PAR",
       makeStaticParLoop(BB, "MAIN_do100", "i_1", Y, X, N, 2), false});
  B->Loops.push_back(
      {"MAIN_do120", 10.9, "STATIC-PAR",
       makeStaticParLoop(BB, "MAIN_do120", "i_2", X, Y, N, 2), false});
  B->Loops.push_back(
      {"MAIN_do80", 10.8, "STATIC-PAR",
       makeStaticParLoop(BB, "MAIN_do80", "i_8", Y, X, N, 10), false});
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 700 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      M.alloc(D.Name, static_cast<size_t>(2 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeMdljdp2() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "mdljdp2";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 87;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("FRC", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("POS", BB.Sym.mulConst(N, 2));
  B->Loops.push_back(
      {"FRCUSE_do20", 82.4, "STATIC-PAR",
       makeStaticParLoop(BB, "FRCUSE_do20", "i_f", X, Y, N, 60), false});
  B->Loops.push_back(
      {"POSTFR_do20", 1.6, "STATIC-PAR",
       makeStaticParLoop(BB, "POSTFR_do20", "i_p", Y, X, N, 4), false});
  B->Loops.push_back(
      {"PREFOR_do60", 1.5, "STATIC-PAR",
       makeStaticParLoop(BB, "PREFOR_do60", "i_r", X, Y, N, 4), false});
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 600 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      M.alloc(D.Name, static_cast<size_t>(2 * N));
  };
  return B;
}

std::unique_ptr<Benchmark> makeHydro2d() {
  auto B = std::make_unique<Benchmark>();
  B->Name = "hydro2d";
  B->SuiteName = "SPEC92";
  B->SeqCoveragePct = 92;
  BenchBuilder BB(*B);
  auto N = BB.s("N");
  auto X = BB.dataArray("RO", BB.Sym.mulConst(N, 2));
  auto Y = BB.dataArray("RU", BB.Sym.mulConst(N, 2));
  B->Loops.push_back(
      {"TISTEP_do400", 17.6, "STATIC-PAR",
       makeStaticParLoop(BB, "TISTEP_do400", "i_t", X, Y, N, 10), false});
  B->Loops.push_back(
      {"FILTER_do300", 14.2, "STATIC-PAR",
       makeStaticParLoop(BB, "FILTER_do300", "i_f", Y, X, N, 8), false});
  B->Loops.push_back(
      {"T1_do10", 7.5, "STATIC-PAR",
       makeStaticParLoop(BB, "T1_do10", "i_1", X, Y, N, 6), false});
  sym::Context *Sym = &B->sym();
  auto Arrays = B->prog().findSubroutine("main")->getArrays();
  B->Setup = [Sym, Arrays](rt::Memory &M, sym::Bindings &Bd, int64_t Scale) {
    int64_t N = 900 * Scale;
    Bd.setScalar(Sym->symbol("N"), N);
    for (const ArrayDecl &D : Arrays)
      M.alloc(D.Name, static_cast<size_t>(2 * N));
  };
  return B;
}

} // namespace

std::vector<std::unique_ptr<Benchmark>> suite::buildSpec92() {
  std::vector<std::unique_ptr<Benchmark>> Out;
  Out.push_back(makeMatrix300());
  Out.push_back(makeSwm256());
  Out.push_back(makeOra());
  Out.push_back(makeNasa7());
  Out.push_back(makeTomcatv());
  Out.push_back(makeMdljdp2());
  Out.push_back(makeHydro2d());
  return Out;
}
