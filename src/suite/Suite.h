//===- suite/Suite.h - The 26-benchmark reproduction suite -----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic reconstructions of the PERFECT-CLUB / SPEC89/92/2000/2006
/// benchmarks evaluated in the paper (Tables 1-3). We do not have the
/// Fortran sources or datasets; per the substitution policy in DESIGN.md,
/// each benchmark is rebuilt in the mini-IR around the loop patterns the
/// paper describes (SOLVH_DO20, CORREC_DO711/900, TRANX2_DO2100,
/// EXTEND_DO400, MXMULT_DO10, INL1130_DO1, ...), with workload weights
/// (the LSC column) taken from the tables.
///
/// Each LoopSpec records the paper's classification string so the table
/// harnesses can print computed-vs-paper side by side, and each benchmark
/// provides a Setup function that allocates memory/bindings at a given
/// scale so the figure harnesses can size datasets.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUITE_SUITE_H
#define HALO_SUITE_SUITE_H

#include "analysis/Analyzer.h"
#include "ir/Program.h"
#include "rt/Executor.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace halo {
namespace suite {

/// One analyzed/measured loop of a benchmark.
struct LoopSpec {
  std::string Name;         ///< Paper's loop name, e.g. "SOLVH_do20".
  double LscPercent = 0;    ///< Contribution to sequential coverage.
  std::string PaperClass;   ///< Column five of Tables 1-3.
  const ir::DoLoop *Loop = nullptr;
  bool Hoistable = false;   ///< Exact tests amortize across executions.
};

/// One benchmark: its own contexts, program, loops and data setup.
class Benchmark {
public:
  std::string Name;
  std::string SuiteName; ///< "PERFECT", "SPEC92", "SPEC2000/2006".
  double SeqCoveragePct = 0; ///< The SC column.
  std::vector<LoopSpec> Loops;

  /// Populates memory and bindings for a run at the given scale
  /// (Scale 1 corresponds to a small validation dataset).
  std::function<void(rt::Memory &, sym::Bindings &, int64_t Scale)> Setup;

  sym::Context &sym() { return *SymCtx; }
  pdag::PredContext &pred() { return *PredCtx; }
  usr::USRContext &usr() { return *UsrCtx; }
  ir::Program &prog() { return *Prog; }

  Benchmark() {
    SymCtx = std::make_unique<sym::Context>();
    PredCtx = std::make_unique<pdag::PredContext>(*SymCtx);
    UsrCtx = std::make_unique<usr::USRContext>(*SymCtx, *PredCtx);
    Prog = std::make_unique<ir::Program>(*SymCtx, *PredCtx);
  }

private:
  std::unique_ptr<sym::Context> SymCtx;
  std::unique_ptr<pdag::PredContext> PredCtx;
  std::unique_ptr<usr::USRContext> UsrCtx;
  std::unique_ptr<ir::Program> Prog;
};

/// Helper DSL for writing benchmark programs compactly.
class BenchBuilder {
public:
  explicit BenchBuilder(Benchmark &B)
      : B(B), Sym(B.sym()), P(B.pred()), Prog(B.prog()),
        Main(Prog.makeSubroutine("main")) {}

  const sym::Expr *c(int64_t V) { return Sym.intConst(V); }
  const sym::Expr *s(const std::string &N) { return Sym.symRef(N); }
  const sym::Expr *sv(sym::SymbolId Id) { return Sym.symRef(Id); }

  /// Declares a data array with a known size expression.
  sym::SymbolId dataArray(const std::string &N, const sym::Expr *Size) {
    sym::SymbolId Id = Sym.symbol(N, 0, /*IsArray=*/true);
    Main->declareArray(ir::ArrayDecl{Id, Size, false});
    return Id;
  }
  /// Declares an assumed-size data array (size unknown at compile time —
  /// triggers BOUNDS-COMP for reductions).
  sym::SymbolId assumedSizeArray(const std::string &N) {
    sym::SymbolId Id = Sym.symbol(N, 0, /*IsArray=*/true);
    Main->declareArray(ir::ArrayDecl{Id, nullptr, false});
    return Id;
  }
  /// Declares an integer index array (readable in subscripts).
  sym::SymbolId indexArray(const std::string &N) {
    sym::SymbolId Id = Sym.symbol(N, 0, /*IsArray=*/true);
    Main->declareArray(ir::ArrayDecl{Id, nullptr, true});
    return Id;
  }

  ir::DoLoop *loop(const std::string &Label, const std::string &Var,
                   const sym::Expr *Lo, const sym::Expr *Hi, int Depth) {
    sym::SymbolId V = Sym.symbol(Var, Depth);
    return Prog.make<ir::DoLoop>(Label, V, Lo, Hi, Depth);
  }

  ir::AssignStmt *assign(sym::SymbolId W, const sym::Expr *WOff,
                         std::vector<ir::ArrayAccess> Reads = {},
                         unsigned Work = 0) {
    return Prog.make<ir::AssignStmt>(ir::ArrayAccess{W, WOff},
                                     std::move(Reads), false, Work);
  }
  ir::AssignStmt *readOnly(std::vector<ir::ArrayAccess> Reads,
                           unsigned Work = 0) {
    return Prog.make<ir::AssignStmt>(std::nullopt, std::move(Reads), false,
                                     Work);
  }
  /// `W(off) += f(reads)`: the added value must not read the accumulator
  /// itself (associativity is what makes private-copy merging valid).
  ir::AssignStmt *reduce(sym::SymbolId W, const sym::Expr *WOff,
                         std::vector<ir::ArrayAccess> Reads = {},
                         unsigned Work = 0) {
    return Prog.make<ir::AssignStmt>(ir::ArrayAccess{W, WOff},
                                     std::move(Reads), true, Work);
  }

  ir::Subroutine *mainSub() { return Main; }

  Benchmark &B;
  sym::Context &Sym;
  pdag::PredContext &P;
  ir::Program &Prog;
  ir::Subroutine *Main;
};

/// Builds all benchmarks of one suite.
std::vector<std::unique_ptr<Benchmark>> buildPerfectClub();
std::vector<std::unique_ptr<Benchmark>> buildSpec92();
std::vector<std::unique_ptr<Benchmark>> buildSpec2000();

/// Builds every benchmark (Tables 1 + 2 + 3).
std::vector<std::unique_ptr<Benchmark>> buildAllBenchmarks();

//===----------------------------------------------------------------------===//
// Shared loop-pattern constructors (used by several benchmarks)
//===----------------------------------------------------------------------===//

/// A trivially parallel stencil-ish loop: X[i-1] = f(Y[i-1]) (STATIC-PAR).
ir::DoLoop *makeStaticParLoop(BenchBuilder &BB, const std::string &Label,
                              const std::string &Var, sym::SymbolId X,
                              sym::SymbolId Y, const sym::Expr *N,
                              unsigned Work);

/// Strided writes X[(i-1)*S] with a symbolic stride: output independence
/// needs the O(1) predicate S >= 1 (extracted via Fourier-Motzkin).
ir::DoLoop *makeSymbolicStrideLoop(BenchBuilder &BB, const std::string &Label,
                                   const std::string &Var, sym::SymbolId X,
                                   const std::string &StrideSym,
                                   const sym::Expr *N, unsigned Work);

/// Block writes X[IB(i)-1 .. IB(i)+LEN-2] through an index array: output
/// independence via the monotonicity rule, an O(N) predicate (Sec. 3.3).
ir::DoLoop *makeMonotonicBlockLoop(BenchBuilder &BB, const std::string &Label,
                                   const std::string &Var, sym::SymbolId X,
                                   sym::SymbolId IB, const sym::Expr *Len,
                                   const sym::Expr *N, unsigned Work);

/// Flow dependence X[i] = f(X[i-1]): proven dependent on probe data
/// (STATIC-SEQ).
ir::DoLoop *makeSeqChainLoop(BenchBuilder &BB, const std::string &Label,
                             const std::string &Var, sym::SymbolId X,
                             const sym::Expr *N, unsigned Work);

/// Fully irregular subscripted-subscript accesses X[IDX(i)] = f(X[JDX(i)]):
/// no predicate exists; falls back to TLS (or HOIST-USR when hoistable).
ir::DoLoop *makeIrregularLoop(BenchBuilder &BB, const std::string &Label,
                              const std::string &Var, sym::SymbolId X,
                              sym::SymbolId IDX, sym::SymbolId JDX,
                              const sym::Expr *N, unsigned Work);

//===----------------------------------------------------------------------===//
// Data generators for Setup functions
//===----------------------------------------------------------------------===//

/// 1-based arithmetic ramp: {start, start+step, ...} of length n.
inline sym::ArrayBinding rampArray(int64_t N, int64_t Start, int64_t Step) {
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.reserve(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    A.Vals.push_back(Start + I * Step);
  return A;
}

/// 1-based constant array of length n.
inline sym::ArrayBinding constArray(int64_t N, int64_t V) {
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.assign(static_cast<size_t>(N), V);
  return A;
}

/// 1-based pseudo-random permutation of [0, n) (injective subscripts).
inline sym::ArrayBinding permutationArray(int64_t N, uint64_t Seed) {
  sym::ArrayBinding A;
  A.Lo = 1;
  A.Vals.resize(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I)
    A.Vals[static_cast<size_t>(I)] = I;
  uint64_t S = Seed;
  for (int64_t I = N - 1; I > 0; --I) {
    S = S * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t J = static_cast<int64_t>((S >> 33) % (I + 1));
    std::swap(A.Vals[static_cast<size_t>(I)], A.Vals[static_cast<size_t>(J)]);
  }
  return A;
}

} // namespace suite
} // namespace halo

#endif // HALO_SUITE_SUITE_H
