//===- summary/Independence.h - Independence equations (Eq. 2/3) -*- C++ -*-=//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the independence USRs of Sec. 2.2 from per-iteration summaries:
///
///   OIND-USR (Eq. 2):
///     U_{i=1..N} ( WF_i  n  U_{k=1..i-1} WF_k )
///
///   FIND-USR (Eq. 3):
///     (U WF_i n U RO_i) u (U WF_i n U RW_i) u (U RO_i n U RW_i)
///       u  U_i ( RW_i n U_{k<i} RW_k )
///
/// plus the static-last-value equation of Sec. 4
/// (`U_i WF_i subset-of WF_N`) and the runtime-reduction equation
/// (`U_i (RED_i n U_{k<i} RED_k) = empty`).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUMMARY_INDEPENDENCE_H
#define HALO_SUMMARY_INDEPENDENCE_H

#include "summary/Summary.h"

namespace halo {
namespace summary {

/// Context of the analyzed loop: its variable and iteration space.
struct LoopSpace {
  sym::SymbolId Var;
  const sym::Expr *Lo;
  const sym::Expr *Hi;
};

/// Output-independence USR (Eq. 2) for one array's per-iteration WF.
const usr::USR *buildOutputIndepUSR(usr::USRContext &Ctx,
                                    const LoopSpace &L, const usr::USR *WFi);

/// Flow/anti-independence USR (Eq. 3) for one array's per-iteration
/// triple.
const usr::USR *buildFlowIndepUSR(usr::USRContext &Ctx, const LoopSpace &L,
                                  const AccessTriple &Iter);

/// The pair (U_i WF_i, WF_N) used by the static-last-value test:
/// the loop's whole write-first set must be included in the last
/// iteration's (Sec. 4, EMIT_DO5 of nasa7).
struct SLVPair {
  const usr::USR *AllWrites;
  const usr::USR *LastIter;
};
SLVPair buildSLVPair(usr::USRContext &Ctx, const LoopSpace &L,
                     const usr::USR *WFi);

/// Cross-iteration overlap USR for reduction accesses (the RRED equation
/// of Sec. 4): U_i (RED_i n U_{k<i} RED_k).
const usr::USR *buildReductionOverlapUSR(usr::USRContext &Ctx,
                                         const LoopSpace &L,
                                         const usr::USR *REDi);

} // namespace summary
} // namespace halo

#endif // HALO_SUMMARY_INDEPENDENCE_H
