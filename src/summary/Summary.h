//===- summary/Summary.h - RO/WF/RW access summarization -------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural, structural access summarization (Sec. 2 of the paper):
/// every region of the program is summarized, per array, into a triple of
/// USRs —
///
///   RO: read-only     (read, never written in the region),
///   WF: write-first   (written before any read),
///   RW: read-write    (read with a possibly earlier/overlapping write),
///
/// built bottom-up with the data-flow equations of Fig. 2:
/// statement-level initialization, gated branch merge, consecutive-region
/// COMPOSE (Fig. 2a), loop AGGREGATE (Fig. 2b), and call-site translation
/// (formal arrays rebased onto actual arguments' linear offsets).
///
/// Reduction statements (`A(s) = A(s) + e`) are summarized into a separate
/// per-array reduction access set (Sec. 4) so the reduction machinery can
/// decide between SRED / RRED / EXT-RRED treatment.
///
/// Conditionally-incremented induction variables (CIV, Sec. 3.3) are
/// summarized flow-sensitively: the value of a CIV at the entry of
/// iteration i becomes a reference into a *pseudo index array* civ^pre(i)
/// (monotone when all increments are non-negative); IF-joins where the two
/// branches disagree mint join pseudo-arrays, exactly the role of the
/// paper's CIV@k SSA names in Fig. 7(b). The runtime precomputes these
/// arrays with a sequential loop slice (CIV-COMP).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUMMARY_SUMMARY_H
#define HALO_SUMMARY_SUMMARY_H

#include "ir/Program.h"
#include "usr/USR.h"

#include <map>
#include <optional>
#include <vector>

namespace halo {
namespace summary {

/// Per-array RO/WF/RW triple. Components default to the empty set.
struct AccessTriple {
  const usr::USR *RO = nullptr;
  const usr::USR *WF = nullptr;
  const usr::USR *RW = nullptr;
};

/// Summary of one region: triples per array plus reduction access sets.
struct RegionSummary {
  std::map<sym::SymbolId, AccessTriple> Arrays;
  /// Per-array accesses made by reduction statements (RW-like).
  std::map<sym::SymbolId, const usr::USR *> Reductions;
};

/// One CIV discovered in a loop: the scalar, its entry-value pseudo array
/// (civ^pre(i) = value at entry of iteration i; index N+1 holds the final
/// value), and whether all increments are provably non-negative.
struct CivDesc {
  sym::SymbolId Civ = 0;
  sym::SymbolId EntryArr = 0;
  bool Monotone = true;
};

/// Join pseudo-array minted at an IF whose branches disagree on a CIV's
/// value (the CIV@4 = gamma(cond, CIV@3, CIV@2) of Fig. 7b). The runtime
/// slice records the CIV's value right after the IF executes.
struct CivJoin {
  const ir::IfStmt *At = nullptr;
  sym::SymbolId Civ = 0;
  sym::SymbolId JoinArr = 0;
};

/// A validated *write envelope* for CIV-based accesses (the Fig. 7(b)
/// overestimate `dW_ie = [CIV@2+1, CIV@4]`): every write of Array inside
/// the join's branches lies in [civ^pre(i) + MinRel, civ^pre(i+1) - 1],
/// which is empty exactly on iterations that skip the writes. The analyzer
/// substitutes this interval for the gated writes when building the
/// output-independence equation, turning the monotonicity test static.
struct CivEnvelope {
  sym::SymbolId Civ = 0;
  sym::SymbolId Array = 0;
  int64_t MinRel = 0;
};

/// Everything the runtime needs to precompute CIV values (CIV-COMP).
struct CivPlan {
  std::vector<CivDesc> Civs;
  std::vector<CivJoin> Joins;
  std::vector<CivEnvelope> Envelopes;
  bool empty() const { return Civs.empty(); }

  const CivDesc *findCiv(sym::SymbolId Civ) const {
    for (const CivDesc &D : Civs)
      if (D.Civ == Civ)
        return &D;
    return nullptr;
  }
  const CivEnvelope *findEnvelope(sym::SymbolId Array) const {
    for (const CivEnvelope &E : Envelopes)
      if (E.Array == Array)
        return &E;
    return nullptr;
  }
};

/// Builds summaries over the mini-IR.
class SummaryBuilder {
public:
  SummaryBuilder(usr::USRContext &Ctx, ir::Program &Prog);

  /// Per-iteration summary of \p Loop's body, as a function of the loop
  /// variable. Also returns the CIV plan when the body updates CIVs.
  RegionSummary summarizeIteration(const ir::DoLoop &Loop, CivPlan &Plan);

  /// Whole-loop summary (Fig. 2b AGGREGATE) built from the per-iteration
  /// summary.
  RegionSummary aggregateLoop(const ir::DoLoop &Loop,
                              const RegionSummary &Iter);

  /// Summary of a callee body (memoized), in terms of its formal symbols.
  const RegionSummary &summarizeSubroutine(const ir::Subroutine &Sub);

private:
  struct CivState;
  RegionSummary summarizeStmts(const std::vector<const ir::Stmt *> &Stmts,
                               CivState &Civ);
  RegionSummary summarizeStmt(const ir::Stmt *S, CivState &Civ);
  RegionSummary compose(RegionSummary First, RegionSummary Second);
  RegionSummary gateSummary(const pdag::Pred *G, RegionSummary S);
  RegionSummary mergeBranches(const pdag::Pred *C, RegionSummary Then,
                              RegionSummary Else);
  RegionSummary aggregateOver(const RegionSummary &Body, sym::SymbolId Var,
                              const sym::Expr *Lo, const sym::Expr *Hi);
  RegionSummary translateCall(const ir::CallStmt &Call, CivState &Civ);
  /// Checks the Fig. 7(b) envelope condition for one CIV at an IF join and
  /// records validated (civ, array) envelopes in the active plan.
  void validateEnvelopes(sym::SymbolId Civ, const sym::Expr *EntryVal,
                         const RegionSummary &Branch,
                         const sym::Expr *ExitVal);

  usr::USRContext &Ctx;
  pdag::PredContext &P;
  sym::Context &Sym;
  ir::Program &Prog;
  std::map<const ir::Subroutine *, RegionSummary> SubMemo;
  CivPlan *ActivePlan = nullptr;
  unsigned JoinCounter = 0;
};

} // namespace summary
} // namespace halo

#endif // HALO_SUMMARY_SUMMARY_H
