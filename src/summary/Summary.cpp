//===- summary/Summary.cpp - RO/WF/RW access summarization ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "summary/Summary.h"

#include "support/Error.h"

#include <algorithm>

#include <cassert>

using namespace halo;
using namespace halo::summary;
using namespace halo::ir;
using usr::USR;
using sym::Expr;
using sym::SymbolId;

SummaryBuilder::SummaryBuilder(usr::USRContext &Ctx, Program &Prog)
    : Ctx(Ctx), P(Ctx.predCtx()), Sym(Ctx.symCtx()), Prog(Prog) {}

//===----------------------------------------------------------------------===//
// CIV state
//===----------------------------------------------------------------------===//

/// Flow-sensitive CIV valuation: the current symbolic value of each CIV at
/// the program point being summarized (exact along structured paths).
struct SummaryBuilder::CivState {
  std::map<SymbolId, const Expr *> Values;
  /// The loop variable of the analyzed loop (join arrays index on it).
  SymbolId IterVar = 0;
  bool Active = false;

  const Expr *value(SymbolId Civ) const {
    auto It = Values.find(Civ);
    assert(It != Values.end() && "CIV used before registration");
    return It->second;
  }
};

//===----------------------------------------------------------------------===//
// Triple algebra (Fig. 2a)
//===----------------------------------------------------------------------===//

static AccessTriple emptyTriple(usr::USRContext &Ctx) {
  return AccessTriple{Ctx.empty(), Ctx.empty(), Ctx.empty()};
}

static AccessTriple normalizeTriple(usr::USRContext &Ctx, AccessTriple T) {
  if (!T.RO)
    T.RO = Ctx.empty();
  if (!T.WF)
    T.WF = Ctx.empty();
  if (!T.RW)
    T.RW = Ctx.empty();
  return T;
}

RegionSummary SummaryBuilder::compose(RegionSummary First,
                                      RegionSummary Second) {
  RegionSummary Out = std::move(First);
  for (auto &KV : Second.Arrays) {
    AccessTriple T2 = normalizeTriple(Ctx, KV.second);
    auto It = Out.Arrays.find(KV.first);
    if (It == Out.Arrays.end()) {
      Out.Arrays.emplace(KV.first, T2);
      continue;
    }
    AccessTriple T1 = normalizeTriple(Ctx, It->second);
    // COMPOSE (Fig. 2a).
    AccessTriple R;
    R.WF = Ctx.union2(T1.WF,
                      Ctx.subtract(T2.WF, Ctx.union2(T1.RO, T1.RW)));
    R.RO = Ctx.union2(Ctx.subtract(T1.RO, Ctx.union2(T2.WF, T2.RW)),
                      Ctx.subtract(T2.RO, Ctx.union2(T1.WF, T1.RW)));
    R.RW = Ctx.unionN({T1.RW, Ctx.subtract(T2.RW, T1.WF),
                       Ctx.intersect(T1.RO, T2.WF)});
    It->second = R;
  }
  for (auto &KV : Second.Reductions) {
    auto It = Out.Reductions.find(KV.first);
    if (It == Out.Reductions.end())
      Out.Reductions.emplace(KV.first, KV.second);
    else
      It->second = Ctx.union2(It->second, KV.second);
  }
  return Out;
}

RegionSummary SummaryBuilder::gateSummary(const pdag::Pred *G,
                                          RegionSummary S) {
  RegionSummary Out;
  for (auto &KV : S.Arrays) {
    AccessTriple T = normalizeTriple(Ctx, KV.second);
    Out.Arrays[KV.first] = AccessTriple{
        Ctx.gate(G, T.RO), Ctx.gate(G, T.WF), Ctx.gate(G, T.RW)};
  }
  for (auto &KV : S.Reductions)
    Out.Reductions[KV.first] = Ctx.gate(G, KV.second);
  return Out;
}

RegionSummary SummaryBuilder::mergeBranches(const pdag::Pred *C,
                                            RegionSummary Then,
                                            RegionSummary Else) {
  const pdag::Pred *NotC = P.tryNot(C);
  RegionSummary GT = gateSummary(C, std::move(Then));
  if (!NotC) {
    // No representable complement: the else side must be treated as
    // possibly-executing reads/writes — conservatively reclassify its
    // write-first parts as read-write (may or may not execute).
    RegionSummary Out = GT;
    for (auto &KV : Else.Arrays) {
      AccessTriple T = normalizeTriple(Ctx, KV.second);
      const USR *All = Ctx.unionN({T.RO, T.WF, T.RW});
      auto It = Out.Arrays.find(KV.first);
      AccessTriple Merged =
          It == Out.Arrays.end() ? emptyTriple(Ctx) : It->second;
      Merged.RW = Ctx.union2(Merged.RW ? Merged.RW : Ctx.empty(), All);
      Out.Arrays[KV.first] = normalizeTriple(Ctx, Merged);
    }
    for (auto &KV : Else.Reductions)
      Out.Reductions[KV.first] =
          Out.Reductions.count(KV.first)
              ? Ctx.union2(Out.Reductions[KV.first], KV.second)
              : KV.second;
    return Out;
  }
  RegionSummary GE = gateSummary(NotC, std::move(Else));
  // Mutually exclusive branches: plain union per component (this is where
  // UMEG shapes are born).
  RegionSummary Out = std::move(GT);
  for (auto &KV : GE.Arrays) {
    auto It = Out.Arrays.find(KV.first);
    if (It == Out.Arrays.end()) {
      Out.Arrays.emplace(KV.first, KV.second);
      continue;
    }
    AccessTriple &T1 = It->second;
    const AccessTriple &T2 = KV.second;
    T1.RO = Ctx.union2(T1.RO, T2.RO);
    T1.WF = Ctx.union2(T1.WF, T2.WF);
    T1.RW = Ctx.union2(T1.RW, T2.RW);
  }
  for (auto &KV : GE.Reductions)
    Out.Reductions[KV.first] =
        Out.Reductions.count(KV.first)
            ? Ctx.union2(Out.Reductions[KV.first], KV.second)
            : KV.second;
  return Out;
}

RegionSummary SummaryBuilder::aggregateOver(const RegionSummary &Body,
                                            SymbolId Var, const Expr *Lo,
                                            const Expr *Hi) {
  // AGGREGATE (Fig. 2b). The partial recurrences substitute a fresh k for
  // the iteration variable.
  RegionSummary Out;
  for (const auto &KV : Body.Arrays) {
    AccessTriple T = normalizeTriple(Ctx, KV.second);
    SymbolId K = Sym.freshSymbol(Sym.symbolInfo(Var).Name + "k",
                                 Sym.symbolInfo(Var).DefLevel + 1);
    std::map<SymbolId, const Expr *> IToK{{Var, Sym.symRef(K)}};
    const Expr *KM1 = Sym.addConst(Sym.symRef(Var), -1);

    const USR *ROK = Ctx.substitute(T.RO, IToK);
    const USR *RWK = Ctx.substitute(T.RW, IToK);
    const USR *PriorReads =
        Ctx.recur(K, Lo, KM1, Ctx.union2(ROK, RWK));

    // Exact fast path: when WF_i does not vary with the loop, the i = Lo
    // term of Fig. 2b's union is the full WF (no prior reads exist), and
    // every other term is a subset of it — so the loop-level WF is WF_i
    // itself, gated on the loop executing.
    const USR *WFAll =
        !T.WF->dependsOn(Var)
            ? Ctx.gate(P.le(Lo, Hi), T.WF)
            : Ctx.recur(Var, Lo, Hi, Ctx.subtract(T.WF, PriorReads));
    const USR *ROAll = Ctx.subtract(
        Ctx.recur(Var, Lo, Hi, T.RO),
        Ctx.recur(Var, Lo, Hi, Ctx.union2(T.WF, T.RW)));
    const USR *RWAll = Ctx.subtract(
        Ctx.recur(Var, Lo, Hi, Ctx.union2(T.RO, T.RW)),
        Ctx.union2(WFAll, ROAll));
    Out.Arrays[KV.first] = AccessTriple{ROAll, WFAll, RWAll};
  }
  for (const auto &KV : Body.Reductions)
    Out.Reductions[KV.first] = Ctx.recur(Var, Lo, Hi, KV.second);
  return Out;
}

//===----------------------------------------------------------------------===//
// Statement summarization
//===----------------------------------------------------------------------===//

RegionSummary SummaryBuilder::summarizeStmt(const Stmt *S, CivState &Civ) {
  switch (S->getKind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    // Substitute current CIV valuations into subscripts.
    auto Subst = [&](const Expr *E) {
      return Civ.Values.empty() ? E : Sym.substitute(E, Civ.Values);
    };
    RegionSummary Out;
    if (A->isReduction()) {
      assert(A->getWrite() && "reduction without a written location");
      const USR *Pt = Ctx.leaf(
          lmad::LMAD::makePoint(Subst(A->getWrite()->Offset)));
      Out.Reductions[A->getWrite()->Array] = Pt;
      // Reads from *other* arrays inside the reduction expression are
      // ordinary reads.
      for (const ArrayAccess &R : A->getReads())
        if (R.Array != A->getWrite()->Array) {
          RegionSummary Rd;
          Rd.Arrays[R.Array] = AccessTriple{
              Ctx.leaf(lmad::LMAD::makePoint(Subst(R.Offset))), Ctx.empty(),
              Ctx.empty()};
          Out = compose(std::move(Out), std::move(Rd));
        }
      return Out;
    }
    // Reads first (they happen before the write in `W = f(R...)`).
    for (const ArrayAccess &R : A->getReads()) {
      RegionSummary Rd;
      Rd.Arrays[R.Array] = AccessTriple{
          Ctx.leaf(lmad::LMAD::makePoint(Subst(R.Offset))), Ctx.empty(),
          Ctx.empty()};
      Out = compose(std::move(Out), std::move(Rd));
    }
    if (A->getWrite()) {
      RegionSummary Wr;
      Wr.Arrays[A->getWrite()->Array] = AccessTriple{
          Ctx.empty(),
          Ctx.leaf(lmad::LMAD::makePoint(Subst(A->getWrite()->Offset))),
          Ctx.empty()};
      Out = compose(std::move(Out), std::move(Wr));
    }
    return Out;
  }

  case StmtKind::CivIncr: {
    const auto *CI = cast<CivIncrStmt>(S);
    assert(Civ.Active && "CIV increment outside an analyzed loop");
    auto It = Civ.Values.find(CI->getCiv());
    assert(It != Civ.Values.end() && "CIV not registered");
    It->second = Sym.add(It->second, CI->getAmount());
    return RegionSummary{};
  }

  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    CivState CivThen = Civ, CivElse = Civ;
    RegionSummary Then = summarizeStmts(I->getThen(), CivThen);
    RegionSummary Else = summarizeStmts(I->getElse(), CivElse);
    // Join CIV valuations; disagreeing paths mint a join pseudo-array
    // (the CIV@join of Fig. 7b), recorded for the runtime slice.
    for (auto &KV : Civ.Values) {
      const Expr *VT = CivThen.Values[KV.first];
      const Expr *VE = CivElse.Values[KV.first];
      if (VT == VE) {
        KV.second = VT;
        continue;
      }
      assert(ActivePlan && "CIV join outside an active plan");
      SymbolId JoinArr = Sym.symbol(
          Sym.symbolInfo(KV.first).Name + "@join" +
              std::to_string(++JoinCounter),
          0, /*IsArray=*/true);
      Sym.setMonotoneArray(JoinArr);
      ActivePlan->Joins.push_back(CivJoin{I, KV.first, JoinArr});
      // Validate write envelopes (Fig. 7b): every write whose offset
      // tracks this CIV must stay below the branch's final CIV value.
      validateEnvelopes(KV.first, KV.second, Then, CivThen.Values[KV.first]);
      validateEnvelopes(KV.first, KV.second, Else, CivElse.Values[KV.first]);
      KV.second = Sym.arrayRef(JoinArr, Sym.symRef(Civ.IterVar));
    }
    return mergeBranches(I->getCond(), std::move(Then), std::move(Else));
  }

  case StmtKind::DoLoop: {
    const auto *L = cast<DoLoop>(S);
    // Two-pass CIV handling for inner loops: discover the per-iteration
    // CIV delta, then summarize with the valuation linear in the inner
    // variable. Only delta expressions invariant in the inner variable
    // are supported (exactness requirement).
    CivState Probe = Civ;
    {
      CivState Tmp = Probe;
      (void)summarizeStmts(L->getBody(), Tmp);
      for (auto &KV : Civ.Values) {
        const Expr *Delta = Sym.sub(Tmp.Values[KV.first], KV.second);
        if (Delta != Sym.intConst(0)) {
          assert(!Delta->dependsOn(L->getVar()) &&
                 "CIV delta varies with the inner loop variable");
          // Valuation at entry of inner iteration j.
          Probe.Values[KV.first] = Sym.add(
              KV.second,
              Sym.mul(Delta, Sym.sub(Sym.symRef(L->getVar()), L->getLo())));
        }
      }
    }
    RegionSummary Body = summarizeStmts(L->getBody(), Probe);
    // Final CIV values after the loop: entry + count * delta (count
    // clamped at zero for possibly-empty ranges).
    const Expr *Count = Sym.addConst(Sym.sub(L->getHi(), L->getLo()), 1);
    const Expr *ClampedCount = Sym.max(Count, Sym.intConst(0));
    for (auto &KV : Civ.Values) {
      const Expr *EntryJ = Probe.Values[KV.first];
      // Per-j delta reconstructed from the linear form: value(j) at
      // j = Lo equals the pre-loop value; the increment per iteration is
      // value(Lo+1) - value(Lo).
      std::map<SymbolId, const Expr *> AtLo{{L->getVar(), L->getLo()}};
      std::map<SymbolId, const Expr *> AtLo1{
          {L->getVar(), Sym.addConst(L->getLo(), 1)}};
      const Expr *D = Sym.sub(Sym.substitute(EntryJ, AtLo1),
                              Sym.substitute(EntryJ, AtLo));
      // One more delta accrues during the last executed iteration.
      KV.second = Sym.add(KV.second, Sym.mul(ClampedCount, D));
    }
    return aggregateOver(Body, L->getVar(), L->getLo(), L->getHi());
  }

  case StmtKind::Call:
    return translateCall(*cast<CallStmt>(S), Civ);
  }
  halo_unreachable("covered switch");
}

RegionSummary
SummaryBuilder::summarizeStmts(const std::vector<const Stmt *> &Stmts,
                               CivState &Civ) {
  RegionSummary Acc;
  for (const Stmt *S : Stmts)
    Acc = compose(std::move(Acc), summarizeStmt(S, Civ));
  return Acc;
}

void SummaryBuilder::validateEnvelopes(SymbolId Civ, const Expr *EntryVal,
                                       const RegionSummary &Branch,
                                       const Expr *ExitVal) {
  if (!ActivePlan)
    return;
  const CivDesc *Desc = ActivePlan->findCiv(Civ);
  if (!Desc || !Desc->Monotone)
    return;
  // The branch's CIV delta must be a known constant.
  auto Delta = Sym.constValue(Sym.sub(ExitVal, EntryVal));
  if (!Delta)
    return;
  for (const auto &KV : Branch.Arrays) {
    AccessTriple T = normalizeTriple(Ctx, KV.second);
    const usr::USR *W = Ctx.union2(T.WF, T.RW);
    if (W->isEmptySet() || !W->dependsOn(Desc->EntryArr))
      continue;
    // Collect the branch's write LMADs (gates inside the branch shrink
    // the set; peeling them is a sound overestimate here).
    bool Ok = true;
    int64_t MinRel = 0;
    bool AnyRel = false;
    std::vector<const usr::USR *> Work{W};
    while (!Work.empty() && Ok) {
      const usr::USR *S = Work.back();
      Work.pop_back();
      switch (S->getKind()) {
      case usr::USRKind::Empty:
        break;
      case usr::USRKind::Leaf:
        for (const lmad::LMAD &L : cast<usr::LeafUSR>(S)->getLMADs()) {
          lmad::Interval IV = lmad::intervalOverestimate(Sym, L);
          auto RelLo = Sym.constValue(Sym.sub(IV.Lo, EntryVal));
          auto RelHi = Sym.constValue(Sym.sub(IV.Hi, EntryVal));
          // Envelope condition: entry + RelLo .. entry + RelHi must fit
          // inside [entry, exit-1] = [entry, entry + Delta - 1].
          if (!RelLo || !RelHi || *RelLo < 0 || *RelHi > *Delta - 1) {
            Ok = false;
            break;
          }
          MinRel = AnyRel ? std::min(MinRel, *RelLo) : *RelLo;
          AnyRel = true;
        }
        break;
      case usr::USRKind::Union:
        for (const usr::USR *C : cast<usr::UnionUSR>(S)->getChildren())
          Work.push_back(C);
        break;
      case usr::USRKind::Gate:
        Work.push_back(cast<usr::GateUSR>(S)->getChild());
        break;
      case usr::USRKind::CallSite:
        Work.push_back(cast<usr::CallSiteUSR>(S)->getChild());
        break;
      case usr::USRKind::Intersect:
      case usr::USRKind::Subtract:
      case usr::USRKind::Recur:
        Ok = false; // Unsupported shapes: no envelope claim.
        break;
      }
    }
    if (Ok && AnyRel)
      ActivePlan->Envelopes.push_back(
          CivEnvelope{Civ, KV.first, MinRel});
  }
}

//===----------------------------------------------------------------------===//
// Call-site translation
//===----------------------------------------------------------------------===//

const RegionSummary &
SummaryBuilder::summarizeSubroutine(const Subroutine &Sub) {
  auto It = SubMemo.find(&Sub);
  if (It != SubMemo.end())
    return It->second;
  CivState NoCiv;
  RegionSummary S = summarizeStmts(Sub.getBody(), NoCiv);
  return SubMemo.emplace(&Sub, std::move(S)).first->second;
}

/// Translates a callee-side USR onto the caller's array space: substitutes
/// formal scalars and rebases all LMAD offsets by Delta.
static const USR *rebaseUSR(usr::USRContext &Ctx, const USR *S,
                            const Expr *Delta) {
  sym::Context &Sym = Ctx.symCtx();
  switch (S->getKind()) {
  case usr::USRKind::Empty:
    return S;
  case usr::USRKind::Leaf: {
    lmad::LMADSet Out;
    for (const lmad::LMAD &L : cast<usr::LeafUSR>(S)->getLMADs())
      Out.push_back(lmad::translate(Sym, L, Delta));
    return Ctx.leaf(std::move(Out));
  }
  case usr::USRKind::Union: {
    std::vector<const USR *> Cs;
    for (const USR *C : cast<usr::UnionUSR>(S)->getChildren())
      Cs.push_back(rebaseUSR(Ctx, C, Delta));
    return Ctx.unionN(std::move(Cs));
  }
  case usr::USRKind::Intersect: {
    const auto *B = cast<usr::BinaryUSR>(S);
    return Ctx.intersect(rebaseUSR(Ctx, B->getLHS(), Delta),
                         rebaseUSR(Ctx, B->getRHS(), Delta));
  }
  case usr::USRKind::Subtract: {
    const auto *B = cast<usr::BinaryUSR>(S);
    return Ctx.subtract(rebaseUSR(Ctx, B->getLHS(), Delta),
                        rebaseUSR(Ctx, B->getRHS(), Delta));
  }
  case usr::USRKind::Gate: {
    const auto *G = cast<usr::GateUSR>(S);
    return Ctx.gate(G->getGate(), rebaseUSR(Ctx, G->getChild(), Delta));
  }
  case usr::USRKind::CallSite: {
    const auto *C = cast<usr::CallSiteUSR>(S);
    return Ctx.callSite(C->getCallee(),
                        rebaseUSR(Ctx, C->getChild(), Delta));
  }
  case usr::USRKind::Recur: {
    const auto *R = cast<usr::RecurUSR>(S);
    return Ctx.recur(R->getVar(), R->getLo(), R->getHi(),
                     rebaseUSR(Ctx, R->getBody(), Delta));
  }
  }
  halo_unreachable("covered switch");
}

RegionSummary SummaryBuilder::translateCall(const CallStmt &Call,
                                            CivState &Civ) {
  const RegionSummary &Callee = summarizeSubroutine(*Call.getCallee());

  // Scalar substitution map (formals -> actuals, with CIV values applied).
  std::map<SymbolId, const Expr *> ScalarMap;
  for (const CallStmt::ScalarArg &A : Call.getScalarArgs()) {
    const Expr *Actual = Civ.Values.empty()
                             ? A.Actual
                             : Sym.substitute(A.Actual, Civ.Values);
    ScalarMap[A.Formal] = Actual;
  }

  RegionSummary Out;
  for (const CallStmt::ArrayArg &AA : Call.getArrayArgs()) {
    auto It = Callee.Arrays.find(AA.Formal);
    const Expr *Delta = Civ.Values.empty()
                            ? AA.Offset
                            : Sym.substitute(AA.Offset, Civ.Values);
    if (It != Callee.Arrays.end()) {
      AccessTriple T = normalizeTriple(Ctx, It->second);
      auto Xlate = [&](const USR *S) {
        return rebaseUSR(Ctx, Ctx.substitute(S, ScalarMap), Delta);
      };
      AccessTriple R{Xlate(T.RO), Xlate(T.WF), Xlate(T.RW)};
      RegionSummary One;
      One.Arrays[AA.Actual] = R;
      Out = compose(std::move(Out), std::move(One));
    }
    auto RIt = Callee.Reductions.find(AA.Formal);
    if (RIt != Callee.Reductions.end()) {
      RegionSummary One;
      One.Reductions[AA.Actual] =
          rebaseUSR(Ctx, Ctx.substitute(RIt->second, ScalarMap), Delta);
      Out = compose(std::move(Out), std::move(One));
    }
  }
  // Arrays the callee touches that were not passed (globals) would need a
  // call-site barrier; the mini-IR passes every touched array explicitly.
  return Out;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

RegionSummary SummaryBuilder::summarizeIteration(const DoLoop &Loop,
                                                 CivPlan &Plan) {
  // Discover CIVs: any CivIncr in the (transitive) body.
  std::vector<const Stmt *> Work(Loop.getBody().begin(),
                                 Loop.getBody().end());
  std::vector<SymbolId> Civs;
  while (!Work.empty()) {
    const Stmt *S = Work.back();
    Work.pop_back();
    if (const auto *CI = dyn_cast<CivIncrStmt>(S)) {
      if (std::find(Civs.begin(), Civs.end(), CI->getCiv()) == Civs.end())
        Civs.push_back(CI->getCiv());
    } else if (const auto *L = dyn_cast<DoLoop>(S)) {
      Work.insert(Work.end(), L->getBody().begin(), L->getBody().end());
    } else if (const auto *I = dyn_cast<IfStmt>(S)) {
      Work.insert(Work.end(), I->getThen().begin(), I->getThen().end());
      Work.insert(Work.end(), I->getElse().begin(), I->getElse().end());
    }
  }

  CivState Civ;
  Civ.IterVar = Loop.getVar();
  Civ.Active = true;
  Plan = CivPlan{};
  ActivePlan = &Plan;
  for (SymbolId C : Civs) {
    SymbolId EntryArr =
        Sym.symbol(Sym.symbolInfo(C).Name + "@pre", 0, /*IsArray=*/true);
    Sym.setMonotoneArray(EntryArr);
    Plan.Civs.push_back(CivDesc{C, EntryArr, true});
    Civ.Values[C] = Sym.arrayRef(EntryArr, Sym.symRef(Loop.getVar()));
  }
  RegionSummary S = summarizeStmts(Loop.getBody(), Civ);
  ActivePlan = nullptr;
  return S;
}

RegionSummary SummaryBuilder::aggregateLoop(const DoLoop &Loop,
                                            const RegionSummary &Iter) {
  return aggregateOver(Iter, Loop.getVar(), Loop.getLo(), Loop.getHi());
}
