//===- summary/Independence.cpp - Independence equations (Eq. 2/3) --------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "summary/Independence.h"

using namespace halo;
using namespace halo::summary;
using usr::USR;
using sym::Expr;
using sym::SymbolId;

/// Fresh recurrence variable for the triangular `U_{k=lo..i-1}` pattern,
/// one level deeper than the loop variable.
static SymbolId freshInnerVar(sym::Context &Sym, const LoopSpace &L) {
  const sym::Symbol &Info = Sym.symbolInfo(L.Var);
  return Sym.freshSymbol(Info.Name + "p", Info.DefLevel + 1);
}

const USR *summary::buildOutputIndepUSR(usr::USRContext &Ctx,
                                        const LoopSpace &L,
                                        const USR *WFi) {
  if (WFi->isEmptySet())
    return Ctx.empty();
  sym::Context &Sym = Ctx.symCtx();
  SymbolId K = freshInnerVar(Sym, L);
  std::map<SymbolId, const Expr *> IToK{{L.Var, Sym.symRef(K)}};
  const USR *WFk = Ctx.substitute(WFi, IToK);
  const USR *Prior =
      Ctx.recur(K, L.Lo, Sym.addConst(Sym.symRef(L.Var), -1), WFk);
  return Ctx.recur(L.Var, L.Lo, L.Hi, Ctx.intersect(WFi, Prior));
}

const USR *summary::buildFlowIndepUSR(usr::USRContext &Ctx,
                                      const LoopSpace &L,
                                      const AccessTriple &Iter) {
  sym::Context &Sym = Ctx.symCtx();
  const USR *WFi = Iter.WF ? Iter.WF : Ctx.empty();
  const USR *ROi = Iter.RO ? Iter.RO : Ctx.empty();
  const USR *RWi = Iter.RW ? Iter.RW : Ctx.empty();

  const USR *AllWF = Ctx.recur(L.Var, L.Lo, L.Hi, WFi);
  const USR *AllRO = Ctx.recur(L.Var, L.Lo, L.Hi, ROi);
  const USR *AllRW = Ctx.recur(L.Var, L.Lo, L.Hi, RWi);

  std::vector<const USR *> Terms;
  Terms.push_back(Ctx.intersect(AllWF, AllRO));
  Terms.push_back(Ctx.intersect(AllWF, AllRW));
  Terms.push_back(Ctx.intersect(AllRO, AllRW));

  if (!RWi->isEmptySet()) {
    SymbolId K = freshInnerVar(Sym, L);
    std::map<SymbolId, const Expr *> IToK{{L.Var, Sym.symRef(K)}};
    const USR *RWk = Ctx.substitute(RWi, IToK);
    const USR *Prior =
        Ctx.recur(K, L.Lo, Sym.addConst(Sym.symRef(L.Var), -1), RWk);
    Terms.push_back(Ctx.recur(L.Var, L.Lo, L.Hi, Ctx.intersect(RWi, Prior)));
  }
  return Ctx.unionN(std::move(Terms));
}

SLVPair summary::buildSLVPair(usr::USRContext &Ctx, const LoopSpace &L,
                              const USR *WFi) {
  const USR *All = Ctx.recur(L.Var, L.Lo, L.Hi, WFi);
  std::map<SymbolId, const Expr *> IToN{{L.Var, L.Hi}};
  const USR *Last = Ctx.substitute(WFi, IToN);
  return SLVPair{All, Last};
}

const USR *summary::buildReductionOverlapUSR(usr::USRContext &Ctx,
                                             const LoopSpace &L,
                                             const USR *REDi) {
  if (REDi->isEmptySet())
    return Ctx.empty();
  sym::Context &Sym = Ctx.symCtx();
  SymbolId K = freshInnerVar(Sym, L);
  std::map<SymbolId, const Expr *> IToK{{L.Var, Sym.symRef(K)}};
  const USR *REDk = Ctx.substitute(REDi, IToK);
  const USR *Prior =
      Ctx.recur(K, L.Lo, Sym.addConst(Sym.symRef(L.Var), -1), REDk);
  return Ctx.recur(L.Var, L.Lo, L.Hi, Ctx.intersect(REDi, Prior));
}
