//===- plan/Wire.h - .hplan byte-level encoding helpers --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal little-endian byte writer/reader shared by the .hplan codec
/// (src/plan/ only; not part of the public plan API). The reader treats
/// the buffer as hostile: every primitive is bounds-checked and any
/// overrun throws a typed `PlanCorrupt` ValidationError — by construction
/// no decode path can read past the chunk payload.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PLAN_WIRE_H
#define HALO_PLAN_WIRE_H

#include "support/Error.h"

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <vector>

namespace halo {
namespace plan {
namespace wire {

/// Raises a PlanCorrupt rejection with a one-line reason.
[[noreturn]] inline void corrupt(const std::string &What) {
  throw support::ValidationError(
      {support::Diag(support::Diag::Code::PlanCorrupt, What)});
}

/// Append-only little-endian encoder.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void bytes(const std::vector<uint8_t> &B) {
    u32(static_cast<uint32_t>(B.size()));
    Buf.insert(Buf.end(), B.begin(), B.end());
  }

  const std::vector<uint8_t> &data() const { return Buf; }
  size_t size() const { return Buf.size(); }
  /// Moves the buffer out (the writer is spent afterwards).
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder over one chunk payload.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Len, const char *ChunkName)
      : Data(Data), Len(Len), Name(ChunkName) {}

  uint8_t u8() {
    need(1);
    return Data[Pos++];
  }
  uint32_t u32() {
    need(4);
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    need(8);
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    need(N);
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
  std::vector<uint8_t> bytes() {
    uint32_t N = u32();
    need(N);
    std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
    Pos += N;
    return B;
  }

  /// A count prefix that also bounds later allocation: a hostile count
  /// larger than the bytes that could possibly back it is rejected before
  /// any vector reserve. \p MinBytesPer is the smallest on-wire footprint
  /// of one element.
  uint32_t count(size_t MinBytesPer) {
    uint32_t N = u32();
    if (MinBytesPer != 0 && N > (Len - Pos) / MinBytesPer)
      corrupt(std::string(Name) + ": element count exceeds payload");
    return N;
  }

  /// An index into a table of \p Size entries.
  uint32_t index(uint32_t Size, const char *What) {
    uint32_t V = u32();
    if (V >= Size)
      corrupt(std::string(Name) + ": out-of-range " + What + " index " +
              std::to_string(V) + " (table size " + std::to_string(Size) +
              ")");
    return V;
  }

  bool atEnd() const { return Pos == Len; }
  size_t pos() const { return Pos; }

  /// Whole payload consumed, nothing left over.
  void finish() {
    if (!atEnd())
      corrupt(std::string(Name) + ": " + std::to_string(Len - Pos) +
              " trailing payload bytes");
  }

private:
  void need(size_t N) {
    if (Len - Pos < N)
      corrupt(std::string(Name) + ": truncated payload");
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  const char *Name;
};

/// One framed chunk, CRC already checked by the reader.
struct Chunk {
  uint32_t Tag = 0;
  std::vector<uint8_t> Payload;
};

/// Writes the 12-byte preamble (magic + version + chunk count). The
/// preamble is deliberately *not* CRC-protected so a flipped version byte
/// classifies as PlanVersionSkew, not PlanCorrupt.
void writePreamble(std::ostream &Out, uint32_t ChunkCount);

/// Frames one chunk: tag + payload length + CRC32 + payload.
void writeChunk(std::ostream &Out, uint32_t Tag,
                const std::vector<uint8_t> &Payload);

/// Reads and validates the whole stream: magic (PlanBadMagic), version
/// (PlanVersionSkew), chunk framing, per-chunk CRC and trailing bytes
/// (PlanCorrupt). Throws support::ValidationError on any anomaly.
std::vector<Chunk> readAll(std::istream &In);

} // namespace wire
} // namespace plan
} // namespace halo

#endif // HALO_PLAN_WIRE_H
