//===- plan/Hash.cpp - CRC32 and durable structural plan keys -------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// The compile caches key on interned node pointers; pointers die with the
// process. The durable key hashes *structure*: symbol names and attributes
// instead of SymbolIds, node shapes instead of addresses, callee bodies
// instead of Subroutine pointers. Everything that changes what prepare()
// would produce must land in the hash; everything that doesn't (pointer
// identity, interning order) must not.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"
#include "plan/Plan.h"
#include "usr/USR.h"

#include <algorithm>
#include <array>
#include <set>
#include <unordered_map>

namespace halo {
namespace plan {

//===----------------------------------------------------------------------===//
// CRC32
//===----------------------------------------------------------------------===//

uint32_t crc32(const void *Data, size_t Len) {
  // Table-driven IEEE CRC32 (reflected, poly 0xEDB88320); table built on
  // first use — no zlib dependency.
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xFFu] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Structural hashing
//===----------------------------------------------------------------------===//

namespace {

inline uint64_t mix(uint64_t H, uint64_t V) {
  return H ^ (V + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2));
}

/// Hashes one structure family with per-node memoization (interned DAGs
/// share subtrees heavily; without the memo a chain of shared nodes walks
/// exponentially). Node hashes start from the seed, so the two key seeds
/// produce fully independent functions.
class StructHasher {
public:
  StructHasher(const sym::Context &Sym, uint64_t Seed)
      : Sym(Sym), Seed(Seed) {}

  uint64_t str(uint64_t H, const std::string &S) const {
    H = mix(H, S.size());
    for (char C : S)
      H = mix(H, static_cast<uint8_t>(C));
    return H;
  }

  /// Symbol identity on the wire: name + everything analysis reads off
  /// the symbol table (a DefLevel or monotonicity change invalidates any
  /// plan built against the old attributes).
  uint64_t symbol(uint64_t H, sym::SymbolId Id) const {
    const sym::Symbol &S = Sym.symbolInfo(Id);
    H = str(H, S.Name);
    H = mix(H, static_cast<uint64_t>(static_cast<int64_t>(S.DefLevel)));
    H = mix(H, S.IsArray ? 1 : 0);
    H = mix(H, S.MonotoneArray ? 1 : 0);
    return H;
  }

  uint64_t expr(const sym::Expr *E) {
    if (!E)
      return mix(Seed, 0xE0ull);
    auto It = ExprMemo.find(E);
    if (It != ExprMemo.end())
      return It->second;
    uint64_t H = mix(Seed, 0xE1ull + static_cast<uint64_t>(E->getKind()));
    switch (E->getKind()) {
    case sym::ExprKind::IntConst:
      H = mix(H, static_cast<uint64_t>(
                     static_cast<const sym::IntConstExpr *>(E)->getValue()));
      break;
    case sym::ExprKind::SymRef:
      H = symbol(H, static_cast<const sym::SymRefExpr *>(E)->getSymbol());
      break;
    case sym::ExprKind::ArrayRef: {
      auto *A = static_cast<const sym::ArrayRefExpr *>(E);
      H = symbol(H, A->getArray());
      H = mix(H, expr(A->getIndex()));
      break;
    }
    case sym::ExprKind::Min:
    case sym::ExprKind::Max: {
      // Operands are canonically sorted by node id, which is an artifact
      // of interning order and differs across processes: hash the operand
      // pair order-insensitively so structurally equal nodes in two
      // contexts key identically.
      auto *M = static_cast<const sym::MinMaxExpr *>(E);
      uint64_t A = expr(M->getLHS()), B = expr(M->getRHS());
      H = mix(H, std::min(A, B));
      H = mix(H, std::max(A, B));
      break;
    }
    case sym::ExprKind::FloorDiv:
    case sym::ExprKind::Mod: {
      auto *D = static_cast<const sym::DivModExpr *>(E);
      H = mix(H, expr(D->getOperand()));
      H = mix(H, static_cast<uint64_t>(D->getDivisor()));
      break;
    }
    case sym::ExprKind::Mul: {
      // Factors are id-sorted (interning-order artifact): fold the factor
      // hash multiset in value order instead.
      auto *M = static_cast<const sym::MulExpr *>(E);
      H = mix(H, M->getFactors().size());
      std::vector<uint64_t> Hs;
      Hs.reserve(M->getFactors().size());
      for (const sym::Expr *F : M->getFactors())
        Hs.push_back(expr(F));
      std::sort(Hs.begin(), Hs.end());
      for (uint64_t V : Hs)
        H = mix(H, V);
      break;
    }
    case sym::ExprKind::Add: {
      // Terms are id-sorted (interning-order artifact): same treatment.
      auto *A = static_cast<const sym::AddExpr *>(E);
      H = mix(H, A->getTerms().size());
      std::vector<uint64_t> Hs;
      Hs.reserve(A->getTerms().size());
      for (const sym::Monomial &T : A->getTerms())
        Hs.push_back(
            mix(expr(T.Prod), static_cast<uint64_t>(T.Coeff)));
      std::sort(Hs.begin(), Hs.end());
      for (uint64_t V : Hs)
        H = mix(H, V);
      H = mix(H, static_cast<uint64_t>(A->getConstant()));
      break;
    }
    }
    ExprMemo.emplace(E, H);
    return H;
  }

  uint64_t pred(const pdag::Pred *P) {
    if (!P)
      return mix(Seed, 0xB0ull);
    auto It = PredMemo.find(P);
    if (It != PredMemo.end())
      return It->second;
    uint64_t H = mix(Seed, 0xB1ull + static_cast<uint64_t>(P->getKind()));
    switch (P->getKind()) {
    case pdag::PredKind::True:
    case pdag::PredKind::False:
      break;
    case pdag::PredKind::Cmp: {
      auto *C = static_cast<const pdag::CmpPred *>(P);
      H = mix(H, static_cast<uint64_t>(C->getRel()));
      H = mix(H, expr(C->getExpr()));
      break;
    }
    case pdag::PredKind::Divides: {
      auto *D = static_cast<const pdag::DividesPred *>(P);
      H = mix(H, expr(D->getDivisor()));
      H = mix(H, expr(D->getValue()));
      H = mix(H, D->isNegated() ? 1 : 0);
      break;
    }
    case pdag::PredKind::And:
    case pdag::PredKind::Or: {
      // Children are id-sorted (interning-order artifact): fold the child
      // hash set in value order for cross-process stability.
      auto *N = static_cast<const pdag::NaryPred *>(P);
      H = mix(H, N->getChildren().size());
      std::vector<uint64_t> Hs;
      Hs.reserve(N->getChildren().size());
      for (const pdag::Pred *C : N->getChildren())
        Hs.push_back(pred(C));
      std::sort(Hs.begin(), Hs.end());
      for (uint64_t V : Hs)
        H = mix(H, V);
      break;
    }
    case pdag::PredKind::LoopAll: {
      auto *L = static_cast<const pdag::LoopAllPred *>(P);
      H = symbol(H, L->getVar());
      H = mix(H, expr(L->getLo()));
      H = mix(H, expr(L->getHi()));
      H = mix(H, pred(L->getBody()));
      break;
    }
    case pdag::PredKind::CallSite: {
      auto *C = static_cast<const pdag::CallSitePred *>(P);
      H = str(H, C->getCallee());
      H = mix(H, pred(C->getBody()));
      break;
    }
    }
    PredMemo.emplace(P, H);
    return H;
  }

  uint64_t usr(const usr::USR *S) {
    if (!S)
      return mix(Seed, 0xC0ull);
    auto It = UsrMemo.find(S);
    if (It != UsrMemo.end())
      return It->second;
    uint64_t H = mix(Seed, 0xC1ull + static_cast<uint64_t>(S->getKind()));
    switch (S->getKind()) {
    case usr::USRKind::Empty:
      break;
    case usr::USRKind::Leaf: {
      auto *L = static_cast<const usr::LeafUSR *>(S);
      H = mix(H, L->getLMADs().size());
      for (const lmad::LMAD &M : L->getLMADs()) {
        H = mix(H, expr(M.offset()));
        H = mix(H, M.dims().size());
        for (const lmad::Dim &D : M.dims()) {
          H = mix(H, expr(D.Stride));
          H = mix(H, expr(D.Span));
        }
      }
      break;
    }
    case usr::USRKind::Union: {
      // Children are id-sorted (interning-order artifact): fold the child
      // hash set in value order for cross-process stability.
      auto *U = static_cast<const usr::UnionUSR *>(S);
      H = mix(H, U->getChildren().size());
      std::vector<uint64_t> Hs;
      Hs.reserve(U->getChildren().size());
      for (const usr::USR *C : U->getChildren())
        Hs.push_back(usr(C));
      std::sort(Hs.begin(), Hs.end());
      for (uint64_t V : Hs)
        H = mix(H, V);
      break;
    }
    case usr::USRKind::Intersect:
    case usr::USRKind::Subtract: {
      auto *B = static_cast<const usr::BinaryUSR *>(S);
      H = mix(H, usr(B->getLHS()));
      H = mix(H, usr(B->getRHS()));
      break;
    }
    case usr::USRKind::Gate: {
      auto *G = static_cast<const usr::GateUSR *>(S);
      H = mix(H, pred(G->getGate()));
      H = mix(H, usr(G->getChild()));
      break;
    }
    case usr::USRKind::CallSite: {
      auto *C = static_cast<const usr::CallSiteUSR *>(S);
      H = str(H, C->getCallee());
      H = mix(H, usr(C->getChild()));
      break;
    }
    case usr::USRKind::Recur: {
      auto *R = static_cast<const usr::RecurUSR *>(S);
      H = symbol(H, R->getVar());
      H = mix(H, expr(R->getLo()));
      H = mix(H, expr(R->getHi()));
      H = mix(H, usr(R->getBody()));
      break;
    }
    }
    UsrMemo.emplace(S, H);
    return H;
  }

private:
  const sym::Context &Sym;
  uint64_t Seed;
  std::unordered_map<const sym::Expr *, uint64_t> ExprMemo;
  std::unordered_map<const pdag::Pred *, uint64_t> PredMemo;
  std::unordered_map<const usr::USR *, uint64_t> UsrMemo;
};

/// Statement-tree walk for hashLoop: statement shapes plus every
/// referenced array's declaration. Subroutine bodies are hashed inline at
/// the call (cycle-guarded; validateLoop rejects call cycles anyway).
class LoopHasher {
public:
  LoopHasher(const ir::Program &Prog, StructHasher &SH, uint64_t Seed)
      : Prog(Prog), SH(SH), Seed(Seed) {}

  uint64_t run(const ir::DoLoop &L) {
    uint64_t H = stmt(&L);
    // Referenced-array declarations, in name order (set iteration over
    // SymbolIds would leak interning order into the hash).
    std::vector<sym::SymbolId> Ids(ArraysSeen.begin(), ArraysSeen.end());
    std::sort(Ids.begin(), Ids.end(),
              [&](sym::SymbolId A, sym::SymbolId B) {
                return Prog.symCtx().symbolInfo(A).Name <
                       Prog.symCtx().symbolInfo(B).Name;
              });
    H = mix(H, Ids.size());
    for (sym::SymbolId Id : Ids) {
      H = SH.symbol(H, Id);
      const ir::ArrayDecl *D = Prog.findArrayDecl(Id);
      if (!D) {
        H = mix(H, 0xD0ull); // No program-level declaration.
        continue;
      }
      H = mix(H, 0xD1ull);
      H = mix(H, D->IsIndex ? 1 : 0);
      H = mix(H, D->Size ? SH.expr(D->Size) : 0xD2ull);
    }
    return H;
  }

private:
  uint64_t expr(const sym::Expr *E) {
    if (E)
      for (sym::SymbolId Id : E->freeSymbols())
        if (Prog.symCtx().symbolInfo(Id).IsArray)
          ArraysSeen.insert(Id);
    return SH.expr(E);
  }
  uint64_t pred(const pdag::Pred *P) {
    if (P)
      for (sym::SymbolId Id : P->freeSymbols())
        if (Prog.symCtx().symbolInfo(Id).IsArray)
          ArraysSeen.insert(Id);
    return SH.pred(P);
  }

  uint64_t access(uint64_t H, const ir::ArrayAccess &A) {
    ArraysSeen.insert(A.Array);
    H = SH.symbol(H, A.Array);
    H = mix(H, expr(A.Offset));
    return H;
  }

  uint64_t stmts(uint64_t H, const std::vector<const ir::Stmt *> &Ss) {
    H = mix(H, Ss.size());
    for (const ir::Stmt *S : Ss)
      H = mix(H, stmt(S));
    return H;
  }

  uint64_t stmt(const ir::Stmt *S) {
    uint64_t H = mix(Seed, 0xA1ull + static_cast<uint64_t>(S->getKind()));
    switch (S->getKind()) {
    case ir::StmtKind::Assign: {
      auto *A = static_cast<const ir::AssignStmt *>(S);
      if (A->getWrite()) {
        H = mix(H, 1);
        H = access(H, *A->getWrite());
      } else {
        H = mix(H, 0);
      }
      H = mix(H, A->getReads().size());
      for (const ir::ArrayAccess &R : A->getReads())
        H = access(H, R);
      H = mix(H, A->isReduction() ? 1 : 0);
      H = mix(H, A->getWorkCost());
      break;
    }
    case ir::StmtKind::DoLoop: {
      auto *L = static_cast<const ir::DoLoop *>(S);
      H = SH.str(H, L->getLabel());
      H = SH.symbol(H, L->getVar());
      H = mix(H, expr(L->getLo()));
      H = mix(H, expr(L->getHi()));
      H = mix(H, static_cast<uint64_t>(static_cast<int64_t>(L->getDepth())));
      H = stmts(H, L->getBody());
      break;
    }
    case ir::StmtKind::If: {
      auto *I = static_cast<const ir::IfStmt *>(S);
      H = mix(H, pred(I->getCond()));
      H = stmts(H, I->getThen());
      H = stmts(H, I->getElse());
      break;
    }
    case ir::StmtKind::Call: {
      auto *C = static_cast<const ir::CallStmt *>(S);
      const ir::Subroutine *Sub = C->getCallee();
      H = SH.str(H, Sub ? Sub->getName() : std::string("<null>"));
      for (const auto &AA : C->getArrayArgs()) {
        ArraysSeen.insert(AA.Actual);
        H = SH.symbol(H, AA.Formal);
        H = SH.symbol(H, AA.Actual);
        H = mix(H, expr(AA.Offset));
      }
      for (const auto &SA : C->getScalarArgs()) {
        H = SH.symbol(H, SA.Formal);
        H = mix(H, expr(SA.Actual));
      }
      if (Sub && ActiveSubs.insert(Sub).second) {
        H = stmts(H, Sub->getBody());
        H = mix(H, Sub->getArrays().size());
        for (const ir::ArrayDecl &D : Sub->getArrays()) {
          H = SH.symbol(H, D.Name);
          H = mix(H, D.IsIndex ? 1 : 0);
          H = mix(H, D.Size ? expr(D.Size) : 0xD2ull);
        }
        ActiveSubs.erase(Sub);
      } else if (Sub) {
        H = mix(H, 0xA9ull); // Recursive call chain: stop (validate rejects).
      }
      break;
    }
    case ir::StmtKind::CivIncr: {
      auto *C = static_cast<const ir::CivIncrStmt *>(S);
      H = SH.symbol(H, C->getCiv());
      H = mix(H, expr(C->getAmount()));
      break;
    }
    }
    return H;
  }

  const ir::Program &Prog;
  StructHasher &SH;
  uint64_t Seed;
  std::set<sym::SymbolId> ArraysSeen;
  std::set<const ir::Subroutine *> ActiveSubs;
};

} // namespace

uint64_t hashExpr(const sym::Expr *E, const sym::Context &Sym,
                  uint64_t Seed) {
  StructHasher H(Sym, Seed);
  return H.expr(E);
}

uint64_t hashPred(const pdag::Pred *P, const sym::Context &Sym,
                  uint64_t Seed) {
  StructHasher H(Sym, Seed);
  return H.pred(P);
}

uint64_t hashUSR(const usr::USR *S, const sym::Context &Sym, uint64_t Seed) {
  StructHasher H(Sym, Seed);
  return H.usr(S);
}

uint64_t hashLoop(const ir::Program &Prog, const ir::DoLoop &L,
                  uint64_t Seed) {
  StructHasher SH(Prog.symCtx(), Seed);
  LoopHasher LH(Prog, SH, Seed);
  return LH.run(L);
}

uint64_t hashOptions(const analysis::AnalyzerOptions &AO, CodegenKey CG,
                     uint64_t Seed) {
  uint64_t H = mix(Seed, 0xF1ull);
  // Format version: a new format is a new key space.
  H = mix(H, FormatVersion);
  // Codegen-affecting session toggles + the block width W.
  H = mix(H, CG.UseCompiledPredicates ? 1 : 0);
  H = mix(H, CG.UseCompiledUSRs ? 1 : 0);
  H = mix(H, CG.UseBlockEval ? 1 : 0);
  H = mix(H, pdag::ExprBlockWidth);
  // Analyzer options (Probe is excluded: probe-analyzed plans are never
  // serialized; Threads is excluded: it affects scheduling, not the plan).
  H = mix(H, AO.RuntimeTests ? 1 : 0);
  H = mix(H, static_cast<uint64_t>(static_cast<int64_t>(AO.MaxPredDepth)));
  H = mix(H, AO.UMEGReshape ? 1 : 0);
  H = mix(H, AO.CascadeSeparation ? 1 : 0);
  H = mix(H, AO.HoistableContext ? 1 : 0);
  H = mix(H, AO.Factor.Monotonicity ? 1 : 0);
  H = mix(H, AO.Factor.InvariantOverestimates ? 1 : 0);
  H = mix(H, AO.Factor.FourierMotzkin ? 1 : 0);
  H = mix(H, AO.Factor.LmadApproximation ? 1 : 0);
  H = mix(H, AO.Factor.MaxSteps);
  return H;
}

uint64_t planKey(const ir::Program &Prog, const ir::DoLoop &L,
                 const analysis::AnalyzerOptions &AO, CodegenKey CG,
                 uint64_t Seed) {
  return mix(hashLoop(Prog, L, Seed), hashOptions(AO, CG, Seed));
}

} // namespace plan
} // namespace halo
