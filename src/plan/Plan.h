//===- plan/Plan.h - Versioned plan-cache serialization --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.hplan` plan-cache format: everything `Session::prepare` produces
/// for a loop — the `analysis::LoopPlan`, the factor statistics, the
/// cost-ordered `rt::CompiledCascade` stage vectors, and verify-only
/// records of the `pdag::CompiledPred` / `usr::CompiledUSR` bytecode —
/// serialized to a length-prefixed chunked stream so the expensive
/// analyze-once phase survives process restarts (warm-start).
///
/// Trust model: a loaded plan is **never executed as read**. The stream
/// carries the *sources* (symbol, expression, predicate and USR tables);
/// loading re-interns them into the live contexts and re-compiles the
/// bytecode through the session's real compile caches, then byte-compares
/// the fresh encoding against the file record. Only the fresh compile ever
/// runs. Adoption additionally requires the loading session to re-derive
/// the plan key (structural loop hash ⊕ codegen-affecting options) from
/// its own loop and options — the serialized key is compared against,
/// never trusted.
///
/// Error contract: stream-integrity anomalies (bad magic, version skew,
/// CRC mismatch, truncation, trailing bytes, out-of-range indices) throw
/// `support::ValidationError` with the `PlanBadMagic` / `PlanVersionSkew`
/// / `PlanCorrupt` codes. Semantic per-loop problems (symbol attribute
/// drift, bytecode verify failure, cascade-order drift, key mismatch at
/// adoption) are *recorded* as `PlanKeyMismatch` / `PlanCorrupt` Diags and
/// the affected loop falls back to full analysis — a stale or foreign
/// cache degrades to a cold start, never to a wrong answer or a crash.
///
/// Layout and compatibility policy: docs/PLAN_FORMAT.md.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PLAN_PLAN_H
#define HALO_PLAN_PLAN_H

#include "analysis/Analyzer.h"
#include "rt/CompiledCascade.h"
#include "support/Error.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace halo {
namespace plan {

//===----------------------------------------------------------------------===//
// Format constants
//===----------------------------------------------------------------------===//

/// Stream magic: the first four bytes of every .hplan file.
inline constexpr char Magic[4] = {'H', 'P', 'L', 'N'};

/// Current format version. Bump on ANY layout change — there is no
/// in-place migration; a version-skewed cache is rejected with
/// `PlanVersionSkew` and the loader falls back to full analysis (the
/// cache is cheap to regenerate, wrong adoption is not).
inline constexpr uint32_t FormatVersion = 1;

/// Chunk tags (FourCC, little-endian on the wire). Chunks appear in this
/// order: one each of SYMB/EXPR/PRED/USRT/PCOD/UCOD, then one LOOP chunk
/// per serialized loop.
inline constexpr uint32_t ChunkSymbols = 0x424D5953u;  // "SYMB"
inline constexpr uint32_t ChunkExprs = 0x52505845u;    // "EXPR"
inline constexpr uint32_t ChunkPreds = 0x44455250u;    // "PRED"
inline constexpr uint32_t ChunkUsrs = 0x54525355u;     // "USRT"
inline constexpr uint32_t ChunkPredCode = 0x444F4350u; // "PCOD"
inline constexpr uint32_t ChunkUsrCode = 0x444F4355u;  // "UCOD"
inline constexpr uint32_t ChunkLoop = 0x504F4F4Cu;     // "LOOP"

/// CRC32 (IEEE 802.3, poly 0xEDB88320, bit-reflected) over \p Len bytes.
/// Exposed so tests can re-seal a deliberately patched chunk.
uint32_t crc32(const void *Data, size_t Len);

//===----------------------------------------------------------------------===//
// Plan keys (durable structural hashes)
//===----------------------------------------------------------------------===//
//
// The compile caches key on interned node *pointers*, which are meaningless
// across processes. The durable key is a pointer-free structural hash:
// names instead of SymbolIds, node shapes instead of addresses. Two
// independent seeds give two independent hashes; a primary-hash collision
// is caught by the verify hash (the PR 2 HoistCache discipline) and
// counted by the session.

/// Seed of the primary structural hash.
inline constexpr uint64_t PrimarySeed = 0x243F6A8885A308D3ull;
/// Seed of the independent verification hash.
inline constexpr uint64_t VerifySeed = 0x13198A2E03707344ull;

/// The session toggles that change what prepare() compiles (and therefore
/// what a plan contains); folded into the plan key together with the
/// analyzer options, the block width W and the format version.
struct CodegenKey {
  bool UseCompiledPredicates = true;
  bool UseCompiledUSRs = true;
  bool UseBlockEval = true;
};

/// Pointer-free structural hash of an expression DAG (symbols by name).
uint64_t hashExpr(const sym::Expr *E, const sym::Context &Sym, uint64_t Seed);
/// Pointer-free structural hash of a predicate DAG.
uint64_t hashPred(const pdag::Pred *P, const sym::Context &Sym, uint64_t Seed);
/// Pointer-free structural hash of a USR DAG.
uint64_t hashUSR(const usr::USR *S, const sym::Context &Sym, uint64_t Seed);
/// Pointer-free structural hash of a loop nest: statement shapes, bound
/// and subscript expressions, gate predicates, callee bodies, referenced
/// symbols' attributes and referenced arrays' declarations.
uint64_t hashLoop(const ir::Program &Prog, const ir::DoLoop &L,
                  uint64_t Seed);
/// Hash of everything besides the loop that affects the produced plan.
uint64_t hashOptions(const analysis::AnalyzerOptions &AO, CodegenKey CG,
                     uint64_t Seed);

/// The plan key under \p Seed: hashLoop ⊕ hashOptions. Adoption requires
/// the key under both PrimarySeed and VerifySeed to match.
uint64_t planKey(const ir::Program &Prog, const ir::DoLoop &L,
                 const analysis::AnalyzerOptions &AO, CodegenKey CG,
                 uint64_t Seed);

//===----------------------------------------------------------------------===//
// Save / load
//===----------------------------------------------------------------------===//

/// Save-side view of one prepared loop (borrowed from the session).
struct SavedLoop {
  const analysis::LoopPlan *Plan = nullptr;
  const factor::FactorStats *FStats = nullptr;
  const analysis::AnalyzerOptions *AOpts = nullptr;
  const rt::PlanCascades *Cascades = nullptr;
};

/// One deserialized-and-verified loop plan, staged until a live
/// `ir::DoLoop` with a matching label and plan key adopts it. `Plan.Loop`
/// and the CivJoin `At` pointers are null until adoption (the file stores
/// the join IF's pre-order index in `JoinIfIndex` instead).
struct StagedLoop {
  std::string Label;
  uint64_t KeyA = 0; ///< planKey under PrimarySeed, as serialized.
  uint64_t KeyB = 0; ///< planKey under VerifySeed, as serialized.
  analysis::LoopPlan Plan;
  factor::FactorStats FStats;
  /// Pre-order IfStmt index of each `Plan.Civ.Joins` entry's join point
  /// within the loop body (resolved to a pointer at adoption).
  std::vector<uint32_t> JoinIfIndex;
  rt::PlanCascades Cascades;
};

/// Outcome of a load: how many loops were staged for adoption, how many
/// were rejected (with a structured Diag each), and the Diags themselves.
struct LoadResult {
  size_t Staged = 0;
  size_t Rejected = 0;
  std::vector<support::Diag> Diags;
};

/// Serializes \p Loops to \p Out. Compiles any not-yet-compiled cascade
/// stage predicate / plan USR through the caches (so the record set is
/// complete) and returns the number of loops written. Loops analyzed with
/// a probe dataset are skipped (their plans depend on sample bindings that
/// are not serializable).
size_t save(std::ostream &Out, const ir::Program &Prog,
            rt::PredCompileCache &Preds, rt::USRCompileCache &Usrs,
            const std::vector<SavedLoop> &Loops, CodegenKey CG);

/// Reads a .hplan stream, re-interns every table into the live contexts
/// behind \p UC, re-compiles through \p Preds / \p Usrs (populating them)
/// and byte-verifies against the file's bytecode records. Verified loops
/// are appended to \p Out; per-loop failures are recorded in the result.
/// Throws `support::ValidationError` on stream-integrity anomalies.
LoadResult load(std::istream &In, usr::USRContext &UC,
                rt::PredCompileCache &Preds, rt::USRCompileCache &Usrs,
                std::vector<StagedLoop> &Out);

/// Pre-order collection of every IfStmt reachable from \p L's body
/// (including callee bodies, cycle-safe) — the index space CivJoin
/// anchors are serialized in and resolved from at adoption.
std::vector<const ir::IfStmt *> collectIfStmts(const ir::DoLoop &L);

/// Context-free integrity pass: checks magic, version, chunk framing and
/// CRCs and decodes table shapes, throwing the same typed errors as
/// load(), and returns a human-readable per-chunk summary (halo_planc
/// dump/verify).
std::string inspect(std::istream &In);

} // namespace plan
} // namespace halo

#endif // HALO_PLAN_PLAN_H
