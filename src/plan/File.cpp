//===- plan/File.cpp - .hplan chunk framing and inspection ----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Stream layout: a 12-byte preamble (magic "HPLN", u32 format version,
// u32 chunk count) followed by `chunk count` framed chunks, each
// `u32 tag | u32 payload length | u32 CRC32(payload) | payload`.
// Everything is little-endian. The preamble is outside the CRCs so a
// corrupted version field is reported as version skew (the actionable
// diagnosis: regenerate the cache) rather than generic corruption.
//
//===----------------------------------------------------------------------===//

#include "plan/Plan.h"
#include "plan/Wire.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace halo {
namespace plan {
namespace wire {

namespace {

void putU32(std::ostream &Out, uint32_t V) {
  char B[4];
  for (int I = 0; I < 4; ++I)
    B[I] = static_cast<char>(V >> (8 * I));
  Out.write(B, 4);
}

bool getU32(std::istream &In, uint32_t &V) {
  char B[4];
  if (!In.read(B, 4))
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<uint8_t>(B[I])) << (8 * I);
  return true;
}

[[noreturn]] void reject(support::Diag::Code Code, const std::string &What) {
  throw support::ValidationError({support::Diag(Code, What)});
}

} // namespace

void writePreamble(std::ostream &Out, uint32_t ChunkCount) {
  Out.write(Magic, 4);
  putU32(Out, FormatVersion);
  putU32(Out, ChunkCount);
}

void writeChunk(std::ostream &Out, uint32_t Tag,
                const std::vector<uint8_t> &Payload) {
  putU32(Out, Tag);
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, crc32(Payload.data(), Payload.size()));
  if (!Payload.empty())
    Out.write(reinterpret_cast<const char *>(Payload.data()),
              static_cast<std::streamsize>(Payload.size()));
}

std::vector<Chunk> readAll(std::istream &In) {
  char M[4];
  if (!In.read(M, 4) || std::memcmp(M, Magic, 4) != 0)
    reject(support::Diag::Code::PlanBadMagic,
           "not a plan-cache stream (bad magic)");
  uint32_t Version = 0, Count = 0;
  if (!getU32(In, Version))
    corrupt("truncated preamble (missing version)");
  if (Version != FormatVersion)
    reject(support::Diag::Code::PlanVersionSkew,
           "plan format version " + std::to_string(Version) +
               " (this build reads version " +
               std::to_string(FormatVersion) + ")");
  if (!getU32(In, Count))
    corrupt("truncated preamble (missing chunk count)");

  std::vector<Chunk> Chunks;
  Chunks.reserve(std::min<uint32_t>(Count, 1024));
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t Tag = 0, Len = 0, Crc = 0;
    if (!getU32(In, Tag) || !getU32(In, Len) || !getU32(In, Crc))
      corrupt("truncated chunk header (chunk " + std::to_string(I) + " of " +
              std::to_string(Count) + ")");
    Chunk C;
    C.Tag = Tag;
    // Read the payload in bounded pieces: a hostile length field fails on
    // the first short read instead of provoking a giant allocation.
    constexpr uint32_t Piece = 1u << 20;
    uint32_t Left = Len;
    while (Left > 0) {
      uint32_t N = std::min(Left, Piece);
      size_t Old = C.Payload.size();
      C.Payload.resize(Old + N);
      if (!In.read(reinterpret_cast<char *>(C.Payload.data() + Old), N))
        corrupt("truncated chunk payload (chunk " + std::to_string(I) +
                ", expected " + std::to_string(Len) + " bytes)");
      Left -= N;
    }
    if (crc32(C.Payload.data(), C.Payload.size()) != Crc)
      corrupt("CRC mismatch in chunk " + std::to_string(I));
    Chunks.push_back(std::move(C));
  }
  if (In.peek() != std::char_traits<char>::eof())
    corrupt("trailing bytes after last chunk");
  return Chunks;
}

} // namespace wire

std::string inspect(std::istream &In) {
  std::vector<wire::Chunk> Chunks = wire::readAll(In);
  std::ostringstream OS;
  OS << "hplan v" << FormatVersion << ", " << Chunks.size() << " chunks\n";
  for (const wire::Chunk &C : Chunks) {
    char Tag[5] = {static_cast<char>(C.Tag), static_cast<char>(C.Tag >> 8),
                   static_cast<char>(C.Tag >> 16),
                   static_cast<char>(C.Tag >> 24), 0};
    for (char &Ch : Tag)
      if (Ch != 0 && (Ch < 0x20 || Ch > 0x7E))
        Ch = '?';
    OS << "  " << Tag << "  " << C.Payload.size() << " bytes";
    wire::ByteReader R(C.Payload.data(), C.Payload.size(), Tag);
    switch (C.Tag) {
    case ChunkSymbols:
    case ChunkExprs:
    case ChunkPreds:
    case ChunkUsrs:
    case ChunkPredCode:
    case ChunkUsrCode:
      OS << "  (" << R.u32() << " records)";
      break;
    case ChunkLoop: {
      std::string Label = R.str();
      uint64_t KeyA = R.u64();
      uint64_t KeyB = R.u64();
      OS << "  loop '" << Label << "' key " << std::hex << KeyA << "/"
         << KeyB << std::dec;
      break;
    }
    default:
      OS << "  (unknown tag)";
      break;
    }
    OS << "\n";
  }
  return OS.str();
}

} // namespace plan
} // namespace halo
