//===- plan/Codec.cpp - .hplan table/bytecode encode + verify-load --------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
// Save side: walk every prepared loop's plan, register the structures it
// references (symbols, expressions, predicates, USRs) in deduplicated
// postorder tables, and emit the plan records plus verify-only encodings
// of the compiled bytecode.
//
// Load side: re-intern the tables into the live contexts, re-compile
// through the session's real compile caches (populating them — that is
// the warm start), encode the *fresh* compiles with the same encoder and
// byte-compare against the file records. Bytecode from the file is never
// decoded into an executable object; only fresh compiles ever run.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"
#include "plan/Plan.h"
#include "plan/Wire.h"

#include <array>
#include <functional>
#include <ostream>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace halo {
namespace plan {

using wire::ByteReader;
using wire::ByteWriter;

namespace {
/// Null reference on the wire (optional expr / USR slots).
constexpr uint32_t NullRef = 0xFFFFFFFFu;
} // namespace

//===----------------------------------------------------------------------===//
// Pre-order IF collection (CivJoin anchor resolution)
//===----------------------------------------------------------------------===//

namespace {
void collectIfs(const std::vector<const ir::Stmt *> &Ss,
                std::vector<const ir::IfStmt *> &Out,
                std::set<const ir::Subroutine *> &Active) {
  for (const ir::Stmt *S : Ss) {
    switch (S->getKind()) {
    case ir::StmtKind::If: {
      auto *I = static_cast<const ir::IfStmt *>(S);
      Out.push_back(I);
      collectIfs(I->getThen(), Out, Active);
      collectIfs(I->getElse(), Out, Active);
      break;
    }
    case ir::StmtKind::DoLoop:
      collectIfs(static_cast<const ir::DoLoop *>(S)->getBody(), Out, Active);
      break;
    case ir::StmtKind::Call: {
      const ir::Subroutine *Sub =
          static_cast<const ir::CallStmt *>(S)->getCallee();
      if (Sub && Active.insert(Sub).second) {
        collectIfs(Sub->getBody(), Out, Active);
        Active.erase(Sub);
      }
      break;
    }
    case ir::StmtKind::Assign:
    case ir::StmtKind::CivIncr:
      break;
    }
  }
}
} // namespace

std::vector<const ir::IfStmt *> collectIfStmts(const ir::DoLoop &L) {
  std::vector<const ir::IfStmt *> Out;
  std::set<const ir::Subroutine *> Active;
  collectIfs(L.getBody(), Out, Active);
  return Out;
}

//===----------------------------------------------------------------------===//
// Compiled-object encoders (verify-only records)
//===----------------------------------------------------------------------===//

/// Friend of CompiledPred / CompiledUSR: encodes the compiled tables into
/// a deterministic byte string. Used symmetrically at save (encode the
/// cached compile) and load (encode the fresh compile, byte-compare).
struct PlanCodec {
  using SymMap = std::function<uint32_t(sym::SymbolId)>;
  using PredMap = std::function<uint32_t(const pdag::Pred *)>;

  static void encodePred(const pdag::CompiledPred &CP, const SymMap &SM,
                         ByteWriter &W) {
    W.u32(static_cast<uint32_t>(CP.PCode.size()));
    for (const pdag::PredInstr &I : CP.PCode) {
      W.u8(static_cast<uint8_t>(I.Opcode));
      W.u32(I.A);
      W.u32(I.B);
      W.u32(I.C);
      W.u32(I.D);
      W.u8(I.Aux);
    }
    encodeExprCode(CP.XCode, W);
    W.u32(static_cast<uint32_t>(CP.Loops.size()));
    for (const pdag::CompiledLoop &L : CP.Loops) {
      W.u32(L.LoExprBegin);
      W.u32(L.LoExprEnd);
      W.u32(L.HiExprBegin);
      W.u32(L.HiExprEnd);
      W.u32(L.VarSlot);
      W.u32(L.BodyBegin);
      W.u32(L.StepIp);
      W.u32(L.EndIp);
    }
    encodeSlots(CP.ScalarSlots, SM, W);
    encodeSlots(CP.ArraySlots, SM, W);
    W.u32(CP.NumMemoSlots);
    W.u32(CP.MainCodeEnd);
    W.u32(CP.NumSubs);
    W.i32(CP.RootLoop);
    W.u32(CP.PMaxDepth);
    W.u32(CP.XMaxDepth);
    W.u32(CP.MaxLoopNest);
    W.u8(CP.BlockOk ? 1 : 0);
    W.u8(CP.MainBlockOk ? 1 : 0);
    W.u8(CP.BodyHasVarLoad ? 1 : 0);
  }

  static void encodeUSR(const usr::CompiledUSR &CU, const SymMap &SM,
                        const PredMap &PM, ByteWriter &W) {
    W.u32(static_cast<uint32_t>(CU.Code.size()));
    for (const usr::USRInstr &I : CU.Code) {
      W.u8(static_cast<uint8_t>(I.Opcode));
      W.u32(I.A);
      W.u32(I.B);
      W.u8(I.Deciding);
    }
    encodeExprCode(CU.XCode, W);
    W.u32(static_cast<uint32_t>(CU.Lmads.size()));
    for (const usr::CompiledUSRLmad &L : CU.Lmads) {
      W.u32(L.OffsetBegin);
      W.u32(L.OffsetEnd);
      W.u32(L.DimBegin);
      W.u32(L.DimEnd);
    }
    W.u32(static_cast<uint32_t>(CU.Dims.size()));
    for (const usr::CompiledUSRDim &D : CU.Dims) {
      W.u32(D.StrideBegin);
      W.u32(D.StrideEnd);
      W.u32(D.SpanBegin);
      W.u32(D.SpanEnd);
    }
    W.u32(static_cast<uint32_t>(CU.Gates.size()));
    for (const usr::CompiledUSRGate &G : CU.Gates) {
      W.u32(G.Pred ? PM(G.Pred->source()) : NullRef);
      W.u32(G.FeedBegin);
      W.u32(G.FeedEnd);
      W.u8(G.Invariant);
      W.u32(G.MemoSlot);
    }
    W.u32(static_cast<uint32_t>(CU.GateFeeds.size()));
    for (const usr::CompiledUSRGateFeed &F : CU.GateFeeds) {
      W.u32(F.PredSlot);
      W.u32(F.OurSlot);
    }
    W.u32(static_cast<uint32_t>(CU.Recurs.size()));
    for (const usr::CompiledUSRRecur &R : CU.Recurs) {
      W.u32(R.LoBegin);
      W.u32(R.LoEnd);
      W.u32(R.HiBegin);
      W.u32(R.HiEnd);
      W.u32(R.VarSlot);
      W.u32(R.BodyBegin);
      W.u32(R.BodyEnd);
      W.u8(R.PrefixCacheable);
      W.u32(R.CacheSlot);
    }
    W.u32(static_cast<uint32_t>(CU.Calls.size()));
    for (const usr::CompiledUSRCall &C : CU.Calls) {
      W.u32(C.Begin);
      W.u32(C.End);
    }
    encodeSlots(CU.ScalarSlots, SM, W);
    encodeSlots(CU.ArraySlots, SM, W);
    W.u32(CU.MainCodeEnd);
    W.u32(CU.NumGateMemoSlots);
    W.u32(CU.XMaxDepth);
    W.i32(CU.RootRecur);
  }

  /// The gate descriptors of a compiled USR (save side registers their
  /// source predicates as verify records).
  static const std::vector<usr::CompiledUSRGate> &
  gates(const usr::CompiledUSR &CU) {
    return CU.Gates;
  }

private:
  static void encodeExprCode(const std::vector<pdag::ExprInstr> &XCode,
                             ByteWriter &W) {
    W.u32(static_cast<uint32_t>(XCode.size()));
    for (const pdag::ExprInstr &I : XCode) {
      W.u8(static_cast<uint8_t>(I.Opcode));
      W.u32(I.Slot);
      W.i64(I.Imm);
    }
  }
  static void encodeSlots(const std::vector<sym::SymbolId> &Slots,
                          const SymMap &SM, ByteWriter &W) {
    W.u32(static_cast<uint32_t>(Slots.size()));
    for (sym::SymbolId Id : Slots)
      W.u32(SM(Id));
  }
};

//===----------------------------------------------------------------------===//
// Save-side tables
//===----------------------------------------------------------------------===//

namespace {

/// Deduplicated postorder registration of everything a plan references.
/// Children always register before (and thus index below) their parents,
/// which is the topological invariant the decoder checks.
class SaveTables {
public:
  explicit SaveTables(const sym::Context &Sym) : Sym(Sym) {}

  uint32_t sym(sym::SymbolId Id) {
    auto It = SymIdx.find(Id);
    if (It != SymIdx.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(Syms.size());
    Syms.push_back(Id);
    SymIdx.emplace(Id, Idx);
    return Idx;
  }

  uint32_t expr(const sym::Expr *E) {
    auto It = ExprIdx.find(E);
    if (It != ExprIdx.end())
      return It->second;
    switch (E->getKind()) {
    case sym::ExprKind::IntConst:
      break;
    case sym::ExprKind::SymRef:
      sym(static_cast<const sym::SymRefExpr *>(E)->getSymbol());
      break;
    case sym::ExprKind::ArrayRef: {
      auto *A = static_cast<const sym::ArrayRefExpr *>(E);
      sym(A->getArray());
      expr(A->getIndex());
      break;
    }
    case sym::ExprKind::Min:
    case sym::ExprKind::Max: {
      auto *M = static_cast<const sym::MinMaxExpr *>(E);
      expr(M->getLHS());
      expr(M->getRHS());
      break;
    }
    case sym::ExprKind::FloorDiv:
    case sym::ExprKind::Mod:
      expr(static_cast<const sym::DivModExpr *>(E)->getOperand());
      break;
    case sym::ExprKind::Mul:
      for (const sym::Expr *F :
           static_cast<const sym::MulExpr *>(E)->getFactors())
        expr(F);
      break;
    case sym::ExprKind::Add:
      for (const sym::Monomial &T :
           static_cast<const sym::AddExpr *>(E)->getTerms())
        expr(T.Prod);
      break;
    }
    uint32_t Idx = static_cast<uint32_t>(Exprs.size());
    Exprs.push_back(E);
    ExprIdx.emplace(E, Idx);
    return Idx;
  }

  uint32_t pred(const pdag::Pred *P) {
    auto It = PredIdx.find(P);
    if (It != PredIdx.end())
      return It->second;
    switch (P->getKind()) {
    case pdag::PredKind::True:
    case pdag::PredKind::False:
      break;
    case pdag::PredKind::Cmp:
      expr(static_cast<const pdag::CmpPred *>(P)->getExpr());
      break;
    case pdag::PredKind::Divides: {
      auto *D = static_cast<const pdag::DividesPred *>(P);
      expr(D->getDivisor());
      expr(D->getValue());
      break;
    }
    case pdag::PredKind::And:
    case pdag::PredKind::Or:
      for (const pdag::Pred *C :
           static_cast<const pdag::NaryPred *>(P)->getChildren())
        pred(C);
      break;
    case pdag::PredKind::LoopAll: {
      auto *L = static_cast<const pdag::LoopAllPred *>(P);
      sym(L->getVar());
      expr(L->getLo());
      expr(L->getHi());
      pred(L->getBody());
      break;
    }
    case pdag::PredKind::CallSite:
      pred(static_cast<const pdag::CallSitePred *>(P)->getBody());
      break;
    }
    uint32_t Idx = static_cast<uint32_t>(Preds.size());
    Preds.push_back(P);
    PredIdx.emplace(P, Idx);
    return Idx;
  }

  uint32_t usr(const usr::USR *S) {
    auto It = UsrIdx.find(S);
    if (It != UsrIdx.end())
      return It->second;
    switch (S->getKind()) {
    case usr::USRKind::Empty:
      break;
    case usr::USRKind::Leaf:
      for (const lmad::LMAD &M :
           static_cast<const usr::LeafUSR *>(S)->getLMADs()) {
        if (M.offset())
          expr(M.offset());
        for (const lmad::Dim &D : M.dims()) {
          expr(D.Stride);
          expr(D.Span);
        }
      }
      break;
    case usr::USRKind::Union:
      for (const usr::USR *C :
           static_cast<const usr::UnionUSR *>(S)->getChildren())
        usr(C);
      break;
    case usr::USRKind::Intersect:
    case usr::USRKind::Subtract: {
      auto *B = static_cast<const usr::BinaryUSR *>(S);
      usr(B->getLHS());
      usr(B->getRHS());
      break;
    }
    case usr::USRKind::Gate: {
      auto *G = static_cast<const usr::GateUSR *>(S);
      pred(G->getGate());
      usr(G->getChild());
      break;
    }
    case usr::USRKind::CallSite:
      usr(static_cast<const usr::CallSiteUSR *>(S)->getChild());
      break;
    case usr::USRKind::Recur: {
      auto *R = static_cast<const usr::RecurUSR *>(S);
      sym(R->getVar());
      expr(R->getLo());
      expr(R->getHi());
      usr(R->getBody());
      break;
    }
    }
    uint32_t Idx = static_cast<uint32_t>(Usrs.size());
    Usrs.push_back(S);
    UsrIdx.emplace(S, Idx);
    return Idx;
  }

  /// Re-sorts every table into ascending save-context node-ID order and
  /// rebuilds the index maps. IDs are creation-ordered and children are
  /// always created before parents, so ID order is a valid topological
  /// order — and it is the order the *load* context re-creates the nodes
  /// in. Matching relative creation order is what makes the ID-sorted
  /// canonical child order of n-ary nodes (and therefore the compiled
  /// bytecode) reproduce exactly in a deterministically rebuilt program,
  /// which the load-side byte-compare relies on.
  void finalize() {
    std::sort(Syms.begin(), Syms.end());
    SymIdx.clear();
    for (uint32_t I = 0; I < Syms.size(); ++I)
      SymIdx.emplace(Syms[I], I);
    std::sort(Exprs.begin(), Exprs.end(),
              [](const sym::Expr *A, const sym::Expr *B) {
                return A->getId() < B->getId();
              });
    ExprIdx.clear();
    for (uint32_t I = 0; I < Exprs.size(); ++I)
      ExprIdx.emplace(Exprs[I], I);
    std::sort(Preds.begin(), Preds.end(),
              [](const pdag::Pred *A, const pdag::Pred *B) {
                return A->getId() < B->getId();
              });
    PredIdx.clear();
    for (uint32_t I = 0; I < Preds.size(); ++I)
      PredIdx.emplace(Preds[I], I);
    std::sort(Usrs.begin(), Usrs.end(),
              [](const usr::USR *A, const usr::USR *B) {
                return A->getId() < B->getId();
              });
    UsrIdx.clear();
    for (uint32_t I = 0; I < Usrs.size(); ++I)
      UsrIdx.emplace(Usrs[I], I);
  }

  std::vector<uint8_t> emitSymbols() const {
    ByteWriter W;
    W.u32(static_cast<uint32_t>(Syms.size()));
    for (sym::SymbolId Id : Syms) {
      const sym::Symbol &S = Sym.symbolInfo(Id);
      W.str(S.Name);
      W.i32(S.DefLevel);
      W.u8(S.IsArray ? 1 : 0);
      W.u8(S.MonotoneArray ? 1 : 0);
    }
    return W.take();
  }

  std::vector<uint8_t> emitExprs() const {
    ByteWriter W;
    W.u32(static_cast<uint32_t>(Exprs.size()));
    for (const sym::Expr *E : Exprs) {
      W.u8(static_cast<uint8_t>(E->getKind()));
      switch (E->getKind()) {
      case sym::ExprKind::IntConst:
        W.i64(static_cast<const sym::IntConstExpr *>(E)->getValue());
        break;
      case sym::ExprKind::SymRef:
        W.u32(SymIdx.at(static_cast<const sym::SymRefExpr *>(E)->getSymbol()));
        break;
      case sym::ExprKind::ArrayRef: {
        auto *A = static_cast<const sym::ArrayRefExpr *>(E);
        W.u32(SymIdx.at(A->getArray()));
        W.u32(ExprIdx.at(A->getIndex()));
        break;
      }
      case sym::ExprKind::Min:
      case sym::ExprKind::Max: {
        auto *M = static_cast<const sym::MinMaxExpr *>(E);
        W.u32(ExprIdx.at(M->getLHS()));
        W.u32(ExprIdx.at(M->getRHS()));
        break;
      }
      case sym::ExprKind::FloorDiv:
      case sym::ExprKind::Mod: {
        auto *D = static_cast<const sym::DivModExpr *>(E);
        W.u32(ExprIdx.at(D->getOperand()));
        W.i64(D->getDivisor());
        break;
      }
      case sym::ExprKind::Mul: {
        auto *M = static_cast<const sym::MulExpr *>(E);
        W.u32(static_cast<uint32_t>(M->getFactors().size()));
        for (const sym::Expr *F : M->getFactors())
          W.u32(ExprIdx.at(F));
        break;
      }
      case sym::ExprKind::Add: {
        auto *A = static_cast<const sym::AddExpr *>(E);
        W.u32(static_cast<uint32_t>(A->getTerms().size()));
        for (const sym::Monomial &T : A->getTerms()) {
          W.u32(ExprIdx.at(T.Prod));
          W.i64(T.Coeff);
        }
        W.i64(A->getConstant());
        break;
      }
      }
    }
    return W.take();
  }

  std::vector<uint8_t> emitPreds() const {
    ByteWriter W;
    W.u32(static_cast<uint32_t>(Preds.size()));
    for (const pdag::Pred *P : Preds) {
      W.u8(static_cast<uint8_t>(P->getKind()));
      switch (P->getKind()) {
      case pdag::PredKind::True:
      case pdag::PredKind::False:
        break;
      case pdag::PredKind::Cmp: {
        auto *C = static_cast<const pdag::CmpPred *>(P);
        W.u8(static_cast<uint8_t>(C->getRel()));
        W.u32(ExprIdx.at(C->getExpr()));
        break;
      }
      case pdag::PredKind::Divides: {
        auto *D = static_cast<const pdag::DividesPred *>(P);
        W.u32(ExprIdx.at(D->getDivisor()));
        W.u32(ExprIdx.at(D->getValue()));
        W.u8(D->isNegated() ? 1 : 0);
        break;
      }
      case pdag::PredKind::And:
      case pdag::PredKind::Or: {
        auto *N = static_cast<const pdag::NaryPred *>(P);
        W.u32(static_cast<uint32_t>(N->getChildren().size()));
        for (const pdag::Pred *C : N->getChildren())
          W.u32(PredIdx.at(C));
        break;
      }
      case pdag::PredKind::LoopAll: {
        auto *L = static_cast<const pdag::LoopAllPred *>(P);
        W.u32(SymIdx.at(L->getVar()));
        W.u32(ExprIdx.at(L->getLo()));
        W.u32(ExprIdx.at(L->getHi()));
        W.u32(PredIdx.at(L->getBody()));
        break;
      }
      case pdag::PredKind::CallSite: {
        auto *C = static_cast<const pdag::CallSitePred *>(P);
        W.str(C->getCallee());
        W.u32(PredIdx.at(C->getBody()));
        break;
      }
      }
    }
    return W.take();
  }

  std::vector<uint8_t> emitUsrs() const {
    ByteWriter W;
    W.u32(static_cast<uint32_t>(Usrs.size()));
    for (const usr::USR *S : Usrs) {
      W.u8(static_cast<uint8_t>(S->getKind()));
      switch (S->getKind()) {
      case usr::USRKind::Empty:
        break;
      case usr::USRKind::Leaf: {
        auto *L = static_cast<const usr::LeafUSR *>(S);
        W.u32(static_cast<uint32_t>(L->getLMADs().size()));
        for (const lmad::LMAD &M : L->getLMADs()) {
          W.u32(M.offset() ? ExprIdx.at(M.offset()) : NullRef);
          W.u32(static_cast<uint32_t>(M.dims().size()));
          for (const lmad::Dim &D : M.dims()) {
            W.u32(ExprIdx.at(D.Stride));
            W.u32(ExprIdx.at(D.Span));
          }
        }
        break;
      }
      case usr::USRKind::Union: {
        auto *U = static_cast<const usr::UnionUSR *>(S);
        W.u32(static_cast<uint32_t>(U->getChildren().size()));
        for (const usr::USR *C : U->getChildren())
          W.u32(UsrIdx.at(C));
        break;
      }
      case usr::USRKind::Intersect:
      case usr::USRKind::Subtract: {
        auto *B = static_cast<const usr::BinaryUSR *>(S);
        W.u32(UsrIdx.at(B->getLHS()));
        W.u32(UsrIdx.at(B->getRHS()));
        break;
      }
      case usr::USRKind::Gate: {
        auto *G = static_cast<const usr::GateUSR *>(S);
        W.u32(PredIdx.at(G->getGate()));
        W.u32(UsrIdx.at(G->getChild()));
        break;
      }
      case usr::USRKind::CallSite: {
        auto *C = static_cast<const usr::CallSiteUSR *>(S);
        W.str(C->getCallee());
        W.u32(UsrIdx.at(C->getChild()));
        break;
      }
      case usr::USRKind::Recur: {
        auto *R = static_cast<const usr::RecurUSR *>(S);
        W.u32(SymIdx.at(R->getVar()));
        W.u32(ExprIdx.at(R->getLo()));
        W.u32(ExprIdx.at(R->getHi()));
        W.u32(UsrIdx.at(R->getBody()));
        break;
      }
      }
    }
    return W.take();
  }

  std::unordered_map<sym::SymbolId, uint32_t> SymIdx;
  std::unordered_map<const sym::Expr *, uint32_t> ExprIdx;
  std::unordered_map<const pdag::Pred *, uint32_t> PredIdx;
  std::unordered_map<const usr::USR *, uint32_t> UsrIdx;

private:
  const sym::Context &Sym;
  std::vector<sym::SymbolId> Syms;
  std::vector<const sym::Expr *> Exprs;
  std::vector<const pdag::Pred *> Preds;
  std::vector<const usr::USR *> Usrs;
};

void writeCascade(ByteWriter &W, const analysis::TestCascade &C,
                  SaveTables &T) {
  W.u8(C.StaticallyTrue ? 1 : 0);
  W.u32(static_cast<uint32_t>(C.Stages.size()));
  for (const pdag::CascadeStage &St : C.Stages) {
    W.u32(T.pred(St.P));
    W.i32(St.Depth);
  }
}

void writeOrder(ByteWriter &W, const rt::CompiledCascade &CC,
                const analysis::TestCascade &TC) {
  W.u8(CC.StaticallyTrue ? 1 : 0);
  W.u32(static_cast<uint32_t>(CC.Stages.size()));
  for (const rt::CompiledCascade::Stage &St : CC.Stages) {
    uint32_t Idx = static_cast<uint32_t>(St.Source - TC.Stages.data());
    W.u32(Idx);
    W.u8(St.Code != nullptr ? 1 : 0);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// save
//===----------------------------------------------------------------------===//

size_t save(std::ostream &Out, const ir::Program &Prog,
            rt::PredCompileCache &Preds, rt::USRCompileCache &Usrs,
            const std::vector<SavedLoop> &Loops, CodegenKey CG) {
  const sym::Context &Sym = Prog.symCtx();
  SaveTables T(Sym);

  // Verify-record worklists (insertion-ordered, deduplicated).
  std::vector<std::pair<const pdag::Pred *, const pdag::CompiledPred *>>
      PredRecs;
  std::unordered_set<const pdag::Pred *> PredSeen;
  std::vector<std::pair<const usr::USR *, const usr::CompiledUSR *>> UsrRecs;
  std::unordered_set<const usr::USR *> UsrSeen;

  auto addPredRec = [&](const pdag::Pred *P) {
    if (!P || !PredSeen.insert(P).second)
      return;
    T.pred(P);
    PredRecs.emplace_back(P, Preds.get(P));
  };
  auto addUsrRec = [&](const usr::USR *S) {
    if (!S || !UsrSeen.insert(S).second)
      return;
    T.usr(S);
    const usr::CompiledUSR *CU = Usrs.get(S);
    UsrRecs.emplace_back(S, CU);
    if (CU)
      for (const usr::CompiledUSRGate &G : PlanCodec::gates(*CU))
        if (G.Pred)
          addPredRec(G.Pred->source());
  };

  std::vector<std::vector<uint8_t>> LoopPayloads;
  std::vector<uint8_t> PCodBytes;
  std::vector<uint8_t> UCodBytes;

  // The payloads are built twice over identical traversals. Pass 1 exists
  // only to register every node reachable from the plans in the tables
  // (its bytes are discarded); finalize() then re-sorts the tables into
  // save-context node-ID order so a fresh load context re-creates the
  // nodes in their original relative creation order — the property the
  // bytecode byte-compare on load depends on (n-ary canonical child order
  // sorts by context-local node IDs). Pass 2 re-encodes with the stable
  // indices: every lookup hits and no node is newly inserted, so the
  // sorted order stays valid.
  auto buildPayloads = [&]() {
    PredRecs.clear();
    PredSeen.clear();
    UsrRecs.clear();
    UsrSeen.clear();
    LoopPayloads.clear();

    for (const SavedLoop &SL : Loops) {
      if (!SL.Plan || !SL.Plan->Loop || !SL.FStats || !SL.AOpts ||
          !SL.Cascades)
        continue;
      // Probe-analyzed plans depend on sample bindings that are not part of
      // the stream: never serialize them.
      if (SL.AOpts->Probe)
        continue;
      const analysis::LoopPlan &LP = *SL.Plan;

      // Resolve every CivJoin anchor to its pre-order IF index up front; a
      // join outside the loop (cannot happen for analyzer output) skips the
      // loop rather than writing an unresolvable record.
      std::vector<const ir::IfStmt *> Ifs = collectIfStmts(*LP.Loop);
      std::vector<uint32_t> JoinIdx;
      bool JoinsOk = true;
      for (const summary::CivJoin &J : LP.Civ.Joins) {
        uint32_t Idx = NullRef;
        for (size_t I = 0; I < Ifs.size(); ++I)
          if (Ifs[I] == J.At) {
            Idx = static_cast<uint32_t>(I);
            break;
          }
        if (Idx == NullRef) {
          JoinsOk = false;
          break;
        }
        JoinIdx.push_back(Idx);
      }
      if (!JoinsOk)
        continue;

      ByteWriter W;
      W.str(LP.Loop->getLabel());
      W.u64(planKey(Prog, *LP.Loop, *SL.AOpts, CG, PrimarySeed));
      W.u64(planKey(Prog, *LP.Loop, *SL.AOpts, CG, VerifySeed));
      W.u8(static_cast<uint8_t>(LP.Class));
      W.u32(static_cast<uint32_t>(LP.Techniques.size()));
      for (analysis::Technique Tq : LP.Techniques)
        W.u8(static_cast<uint8_t>(Tq));
      W.u8(LP.Hoistable ? 1 : 0);
      W.u8(LP.RuntimeTestsEnabled ? 1 : 0);
      W.i32(LP.ReportFlowDepth);
      W.i32(LP.ReportOutDepth);
      W.u8(LP.ReportNeedsFlow ? 1 : 0);
      W.u8(LP.ReportNeedsOut ? 1 : 0);

      const factor::FactorStats &FS = *SL.FStats;
      for (uint64_t V :
           {FS.GateRule, FS.UnionRule, FS.SubtractRule, FS.IntersectRule,
            FS.RecurRule, FS.MonotonicityRule, FS.InvariantOverRule,
            FS.LmadDisjointRule, FS.LmadIncludedRule, FS.FillsArrayRule,
            FS.FourierMotzkinUses, FS.BudgetBailouts})
        W.u64(V);

      W.u32(static_cast<uint32_t>(LP.Civ.Civs.size()));
      for (const summary::CivDesc &D : LP.Civ.Civs) {
        W.u32(T.sym(D.Civ));
        W.u32(T.sym(D.EntryArr));
        W.u8(D.Monotone ? 1 : 0);
      }
      W.u32(static_cast<uint32_t>(LP.Civ.Joins.size()));
      for (size_t I = 0; I < LP.Civ.Joins.size(); ++I) {
        W.u32(JoinIdx[I]);
        W.u32(T.sym(LP.Civ.Joins[I].Civ));
        W.u32(T.sym(LP.Civ.Joins[I].JoinArr));
      }
      W.u32(static_cast<uint32_t>(LP.Civ.Envelopes.size()));
      for (const summary::CivEnvelope &E : LP.Civ.Envelopes) {
        W.u32(T.sym(E.Civ));
        W.u32(T.sym(E.Array));
        W.i64(E.MinRel);
      }

      W.u32(static_cast<uint32_t>(LP.Arrays.size()));
      for (size_t AI = 0; AI < LP.Arrays.size(); ++AI) {
        const analysis::ArrayPlan &AP = LP.Arrays[AI];
        W.u32(T.sym(AP.Array));
        W.u8(AP.ReadOnly ? 1 : 0);
        W.u8(AP.LiveOut ? 1 : 0);
        W.u8(AP.HasReduction ? 1 : 0);
        W.u8(AP.RRedDeployed ? 1 : 0);
        W.u8(AP.NeedsBoundsComp ? 1 : 0);

        const analysis::TestCascade *Cs[6] = {&AP.Flow, &AP.Output, &AP.Priv,
                                              &AP.Slv, &AP.RRed,
                                              &AP.ExtRedFlow};
        for (const analysis::TestCascade *C : Cs) {
          writeCascade(W, *C, T);
          for (const pdag::CascadeStage &St : C->Stages)
            addPredRec(St.P);
        }

        const usr::USR *Us[4] = {AP.FlowUSR, AP.OutputUSR, AP.ExtRedUSR,
                                 AP.BoundsUSR};
        for (const usr::USR *U : Us)
          W.u32(U ? T.usr(U) : NullRef);
        // Exact-test USRs get compiled verify records; BoundsUSR is
        // evaluated through the interpreter, so structure alone suffices.
        addUsrRec(AP.FlowUSR);
        addUsrRec(AP.OutputUSR);
        addUsrRec(AP.ExtRedUSR);

        const rt::PlanCascades::ArrayCascades &AC = SL.Cascades->Arrays[AI];
        const rt::CompiledCascade *CCs[6] = {&AC.Flow, &AC.Output, &AC.Priv,
                                             &AC.Slv, &AC.RRed,
                                             &AC.ExtRedFlow};
        for (int K = 0; K < 6; ++K)
          writeOrder(W, *CCs[K], *Cs[K]);
      }
      LoopPayloads.push_back(W.take());
    }

    // Verify-only bytecode records. Built before the tables are emitted:
    // slot symbols and gate predicates register here.
    auto SymMapFn = [&T](sym::SymbolId Id) { return T.sym(Id); };
    auto PredMapFn = [&T](const pdag::Pred *P) { return T.pred(P); };

    ByteWriter PCod;
    PCod.u32(static_cast<uint32_t>(PredRecs.size()));
    for (const auto &[P, CP] : PredRecs) {
      PCod.u32(T.pred(P));
      PCod.u64(hashPred(P, Sym, PrimarySeed));
      PCod.u64(hashPred(P, Sym, VerifySeed));
      PCod.u8(CP ? 1 : 0);
      if (CP) {
        ByteWriter B;
        PlanCodec::encodePred(*CP, SymMapFn, B);
        PCod.bytes(B.data());
      }
    }

    ByteWriter UCod;
    UCod.u32(static_cast<uint32_t>(UsrRecs.size()));
    for (const auto &[S, CU] : UsrRecs) {
      UCod.u32(T.usr(S));
      UCod.u64(hashUSR(S, Sym, PrimarySeed));
      UCod.u64(hashUSR(S, Sym, VerifySeed));
      UCod.u8(CU ? 1 : 0);
      if (CU) {
        ByteWriter B;
        PlanCodec::encodeUSR(*CU, SymMapFn, PredMapFn, B);
        UCod.bytes(B.data());
      }
    }

    PCodBytes = PCod.take();
    UCodBytes = UCod.take();
  };

  buildPayloads();
  T.finalize();
  buildPayloads();

  wire::writePreamble(Out,
                      static_cast<uint32_t>(6 + LoopPayloads.size()));
  wire::writeChunk(Out, ChunkSymbols, T.emitSymbols());
  wire::writeChunk(Out, ChunkExprs, T.emitExprs());
  wire::writeChunk(Out, ChunkPreds, T.emitPreds());
  wire::writeChunk(Out, ChunkUsrs, T.emitUsrs());
  wire::writeChunk(Out, ChunkPredCode, PCodBytes);
  wire::writeChunk(Out, ChunkUsrCode, UCodBytes);
  for (const std::vector<uint8_t> &P : LoopPayloads)
    wire::writeChunk(Out, ChunkLoop, P);
  return LoopPayloads.size();
}

//===----------------------------------------------------------------------===//
// load
//===----------------------------------------------------------------------===//

namespace {

/// Decoded file tables mapped onto the live contexts.
struct FileTables {
  std::vector<sym::SymbolId> Syms;
  std::vector<const sym::Expr *> Exprs;
  std::vector<const pdag::Pred *> Preds;
  std::vector<const usr::USR *> Usrs;
};

analysis::TestCascade readCascade(ByteReader &R, const FileTables &T) {
  analysis::TestCascade C;
  C.StaticallyTrue = R.u8() != 0;
  uint32_t N = R.count(8);
  C.Stages.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    pdag::CascadeStage St;
    St.P = T.Preds[R.index(static_cast<uint32_t>(T.Preds.size()), "pred")];
    St.Depth = R.i32();
    C.Stages.push_back(St);
  }
  return C;
}

struct OrderRec {
  bool StaticallyTrue = false;
  std::vector<std::pair<uint32_t, bool>> Stages; // (stage index, has code)
};

OrderRec readOrder(ByteReader &R, uint32_t NumStages) {
  OrderRec O;
  O.StaticallyTrue = R.u8() != 0;
  uint32_t N = R.count(5);
  O.Stages.reserve(N);
  for (uint32_t I = 0; I < N; ++I) {
    uint32_t Idx = R.index(NumStages, "cascade stage");
    O.Stages.emplace_back(Idx, R.u8() != 0);
  }
  return O;
}

bool orderMatches(const OrderRec &O, const rt::CompiledCascade &CC,
                  const analysis::TestCascade &TC) {
  if (O.StaticallyTrue != CC.StaticallyTrue ||
      O.Stages.size() != CC.Stages.size())
    return false;
  for (size_t I = 0; I < O.Stages.size(); ++I) {
    const rt::CompiledCascade::Stage &St = CC.Stages[I];
    if (St.Source != &TC.Stages[O.Stages[I].first])
      return false;
    if ((St.Code != nullptr) != O.Stages[I].second)
      return false;
  }
  return true;
}

} // namespace

LoadResult load(std::istream &In, usr::USRContext &UC,
                rt::PredCompileCache &Preds, rt::USRCompileCache &Usrs,
                std::vector<StagedLoop> &Out) {
  std::vector<wire::Chunk> Chunks = wire::readAll(In);
  LoadResult Res;

  const uint32_t Expect[6] = {ChunkSymbols, ChunkExprs,    ChunkPreds,
                              ChunkUsrs,    ChunkPredCode, ChunkUsrCode};
  if (Chunks.size() < 6)
    wire::corrupt("expected at least 6 chunks, found " +
                  std::to_string(Chunks.size()));
  for (int I = 0; I < 6; ++I)
    if (Chunks[I].Tag != Expect[I])
      wire::corrupt("unexpected chunk tag at position " + std::to_string(I));
  for (size_t I = 6; I < Chunks.size(); ++I)
    if (Chunks[I].Tag != ChunkLoop)
      wire::corrupt("unexpected chunk tag at position " + std::to_string(I));
  const size_t LoopCount = Chunks.size() - 6;

  sym::Context &Sym = UC.symCtx();
  pdag::PredContext &PC = UC.predCtx();
  FileTables T;

  // --- SYMB: resolve or create; attribute drift rejects the whole file
  // semantically (the tables are shared by every loop record).
  {
    ByteReader R(Chunks[0].Payload.data(), Chunks[0].Payload.size(), "SYMB");
    uint32_t N = R.count(10);
    std::unordered_set<std::string> Names;
    for (uint32_t I = 0; I < N; ++I) {
      std::string Name = R.str();
      int32_t DefLevel = R.i32();
      bool IsArray = R.u8() != 0;
      bool Monotone = R.u8() != 0;
      if (!Names.insert(Name).second)
        wire::corrupt("SYMB: duplicate symbol name '" + Name + "'");
      if (Monotone && !IsArray)
        wire::corrupt("SYMB: monotone flag on scalar '" + Name + "'");
      sym::SymbolId Id = 0;
      if (Sym.findSymbol(Name, Id)) {
        const sym::Symbol &Info = Sym.symbolInfo(Id);
        if (Info.DefLevel != DefLevel || Info.IsArray != IsArray ||
            Info.MonotoneArray != Monotone) {
          Res.Rejected = LoopCount;
          Res.Diags.emplace_back(
              support::Diag::Code::PlanKeyMismatch,
              "symbol '" + Name +
                  "' exists with different attributes in the live "
                  "context; no plans adopted");
          return Res;
        }
      } else {
        Id = Sym.symbol(Name, DefLevel, IsArray);
        if (Monotone)
          Sym.setMonotoneArray(Id);
      }
      T.Syms.push_back(Id);
    }
    R.finish();
  }
  const uint32_t NSyms = static_cast<uint32_t>(T.Syms.size());

  // --- EXPR: rebuild bottom-up through the canonicalizing constructors.
  {
    ByteReader R(Chunks[1].Payload.data(), Chunks[1].Payload.size(), "EXPR");
    uint32_t N = R.count(2);
    T.Exprs.reserve(N);
    for (uint32_t I = 0; I < N; ++I) {
      uint8_t Kind = R.u8();
      const sym::Expr *E = nullptr;
      switch (static_cast<sym::ExprKind>(Kind)) {
      case sym::ExprKind::IntConst:
        E = Sym.intConst(R.i64());
        break;
      case sym::ExprKind::SymRef:
        E = Sym.symRef(T.Syms[R.index(NSyms, "symbol")]);
        break;
      case sym::ExprKind::ArrayRef: {
        sym::SymbolId Arr = T.Syms[R.index(NSyms, "symbol")];
        const sym::Expr *Idx = T.Exprs[R.index(I, "expr")];
        if (!Sym.symbolInfo(Arr).IsArray)
          wire::corrupt("EXPR: ArrayRef through a scalar symbol");
        E = Sym.arrayRef(Arr, Idx);
        break;
      }
      case sym::ExprKind::Min:
      case sym::ExprKind::Max: {
        const sym::Expr *A = T.Exprs[R.index(I, "expr")];
        const sym::Expr *B = T.Exprs[R.index(I, "expr")];
        E = Kind == static_cast<uint8_t>(sym::ExprKind::Min) ? Sym.min(A, B)
                                                             : Sym.max(A, B);
        break;
      }
      case sym::ExprKind::FloorDiv:
      case sym::ExprKind::Mod: {
        const sym::Expr *Op = T.Exprs[R.index(I, "expr")];
        int64_t D = R.i64();
        if (D <= 0)
          wire::corrupt("EXPR: non-positive divisor");
        E = Kind == static_cast<uint8_t>(sym::ExprKind::FloorDiv)
                ? Sym.floorDiv(Op, D)
                : Sym.mod(Op, D);
        break;
      }
      case sym::ExprKind::Mul: {
        uint32_t NF = R.count(4);
        if (NF < 2)
          wire::corrupt("EXPR: product with fewer than two factors");
        E = T.Exprs[R.index(I, "expr")];
        for (uint32_t K = 1; K < NF; ++K)
          E = Sym.mul(E, T.Exprs[R.index(I, "expr")]);
        break;
      }
      case sym::ExprKind::Add: {
        uint32_t NT = R.count(12);
        sym::LinearForm LF;
        LF.Terms.reserve(NT);
        for (uint32_t K = 0; K < NT; ++K) {
          sym::Monomial M;
          M.Prod = T.Exprs[R.index(I, "expr")];
          M.Coeff = R.i64();
          LF.Terms.push_back(M);
        }
        LF.Constant = R.i64();
        E = Sym.fromLinear(std::move(LF));
        break;
      }
      default:
        wire::corrupt("EXPR: unknown node kind " + std::to_string(Kind));
      }
      T.Exprs.push_back(E);
    }
    R.finish();
  }
  const uint32_t NExprs = static_cast<uint32_t>(T.Exprs.size());

  // --- PRED
  {
    ByteReader R(Chunks[2].Payload.data(), Chunks[2].Payload.size(), "PRED");
    uint32_t N = R.count(1);
    T.Preds.reserve(N);
    for (uint32_t I = 0; I < N; ++I) {
      uint8_t Kind = R.u8();
      const pdag::Pred *P = nullptr;
      switch (static_cast<pdag::PredKind>(Kind)) {
      case pdag::PredKind::True:
        P = PC.getTrue();
        break;
      case pdag::PredKind::False:
        P = PC.getFalse();
        break;
      case pdag::PredKind::Cmp: {
        uint8_t Rel = R.u8();
        const sym::Expr *E = T.Exprs[R.index(NExprs, "expr")];
        switch (Rel) {
        case static_cast<uint8_t>(pdag::CmpRel::GE0):
          P = PC.ge0(E);
          break;
        case static_cast<uint8_t>(pdag::CmpRel::EQ0):
          P = PC.eq0(E);
          break;
        case static_cast<uint8_t>(pdag::CmpRel::NE0):
          P = PC.ne0(E);
          break;
        default:
          wire::corrupt("PRED: unknown comparison relation");
        }
        break;
      }
      case pdag::PredKind::Divides: {
        const sym::Expr *D = T.Exprs[R.index(NExprs, "expr")];
        const sym::Expr *V = T.Exprs[R.index(NExprs, "expr")];
        P = PC.divides(D, V, R.u8() != 0);
        break;
      }
      case pdag::PredKind::And:
      case pdag::PredKind::Or: {
        uint32_t NC = R.count(4);
        std::vector<const pdag::Pred *> Cs;
        Cs.reserve(NC);
        for (uint32_t K = 0; K < NC; ++K)
          Cs.push_back(T.Preds[R.index(I, "pred")]);
        P = Kind == static_cast<uint8_t>(pdag::PredKind::And)
                ? PC.andN(std::move(Cs))
                : PC.orN(std::move(Cs));
        break;
      }
      case pdag::PredKind::LoopAll: {
        sym::SymbolId Var = T.Syms[R.index(NSyms, "symbol")];
        const sym::Expr *Lo = T.Exprs[R.index(NExprs, "expr")];
        const sym::Expr *Hi = T.Exprs[R.index(NExprs, "expr")];
        const pdag::Pred *Body = T.Preds[R.index(I, "pred")];
        P = PC.loopAll(Var, Lo, Hi, Body);
        break;
      }
      case pdag::PredKind::CallSite: {
        std::string Callee = R.str();
        P = PC.callSite(Callee, T.Preds[R.index(I, "pred")]);
        break;
      }
      default:
        wire::corrupt("PRED: unknown node kind " + std::to_string(Kind));
      }
      T.Preds.push_back(P);
    }
    R.finish();
  }
  const uint32_t NPreds = static_cast<uint32_t>(T.Preds.size());

  // --- USRT
  {
    ByteReader R(Chunks[3].Payload.data(), Chunks[3].Payload.size(), "USRT");
    uint32_t N = R.count(1);
    T.Usrs.reserve(N);
    for (uint32_t I = 0; I < N; ++I) {
      uint8_t Kind = R.u8();
      const usr::USR *S = nullptr;
      switch (static_cast<usr::USRKind>(Kind)) {
      case usr::USRKind::Empty:
        S = UC.empty();
        break;
      case usr::USRKind::Leaf: {
        uint32_t NL = R.count(8);
        lmad::LMADSet Set;
        Set.reserve(NL);
        for (uint32_t K = 0; K < NL; ++K) {
          uint32_t OffIdx = R.u32();
          if (OffIdx != NullRef && OffIdx >= NExprs)
            wire::corrupt("USRT: out-of-range offset expr index");
          const sym::Expr *Off = OffIdx == NullRef ? nullptr : T.Exprs[OffIdx];
          uint32_t ND = R.count(8);
          std::vector<lmad::Dim> Ds;
          Ds.reserve(ND);
          for (uint32_t J = 0; J < ND; ++J) {
            lmad::Dim D;
            D.Stride = T.Exprs[R.index(NExprs, "expr")];
            D.Span = T.Exprs[R.index(NExprs, "expr")];
            Ds.push_back(D);
          }
          Set.emplace_back(std::move(Ds), Off);
        }
        S = UC.leaf(std::move(Set));
        break;
      }
      case usr::USRKind::Union: {
        uint32_t NC = R.count(4);
        std::vector<const usr::USR *> Cs;
        Cs.reserve(NC);
        for (uint32_t K = 0; K < NC; ++K)
          Cs.push_back(T.Usrs[R.index(I, "usr")]);
        S = UC.unionN(std::move(Cs));
        break;
      }
      case usr::USRKind::Intersect:
      case usr::USRKind::Subtract: {
        const usr::USR *L = T.Usrs[R.index(I, "usr")];
        const usr::USR *Rh = T.Usrs[R.index(I, "usr")];
        S = Kind == static_cast<uint8_t>(usr::USRKind::Intersect)
                ? UC.intersect(L, Rh)
                : UC.subtract(L, Rh);
        break;
      }
      case usr::USRKind::Gate: {
        const pdag::Pred *G = T.Preds[R.index(NPreds, "pred")];
        S = UC.gate(G, T.Usrs[R.index(I, "usr")]);
        break;
      }
      case usr::USRKind::CallSite: {
        std::string Callee = R.str();
        S = UC.callSite(Callee, T.Usrs[R.index(I, "usr")]);
        break;
      }
      case usr::USRKind::Recur: {
        sym::SymbolId Var = T.Syms[R.index(NSyms, "symbol")];
        const sym::Expr *Lo = T.Exprs[R.index(NExprs, "expr")];
        const sym::Expr *Hi = T.Exprs[R.index(NExprs, "expr")];
        S = UC.recur(Var, Lo, Hi, T.Usrs[R.index(I, "usr")]);
        break;
      }
      default:
        wire::corrupt("USRT: unknown node kind " + std::to_string(Kind));
      }
      T.Usrs.push_back(S);
    }
    R.finish();
  }
  const uint32_t NUsrs = static_cast<uint32_t>(T.Usrs.size());

  // Live-node -> file-index maps for re-encoding fresh compiles. First
  // mapping wins; a redundant record diverges at byte-compare and the
  // affected loop falls back (sound).
  std::unordered_map<sym::SymbolId, uint32_t> SymToFile;
  for (uint32_t I = 0; I < NSyms; ++I)
    SymToFile.emplace(T.Syms[I], I);
  std::unordered_map<const pdag::Pred *, uint32_t> PredToFile;
  for (uint32_t I = 0; I < NPreds; ++I)
    PredToFile.emplace(T.Preds[I], I);
  auto SymMapFn = [&SymToFile](sym::SymbolId Id) {
    auto It = SymToFile.find(Id);
    return It == SymToFile.end() ? NullRef : It->second;
  };
  auto PredMapFn = [&PredToFile](const pdag::Pred *P) {
    auto It = PredToFile.find(P);
    return It == PredToFile.end() ? NullRef : It->second;
  };

  // --- PCOD: compile fresh through the cache (the warm start), verify
  // hashes and the byte-identical re-encoding. Divergent nodes taint
  // every loop that references them.
  std::unordered_set<const pdag::Pred *> BadPreds;
  {
    ByteReader R(Chunks[4].Payload.data(), Chunks[4].Payload.size(), "PCOD");
    uint32_t N = R.count(21);
    for (uint32_t I = 0; I < N; ++I) {
      const pdag::Pred *P = T.Preds[R.index(NPreds, "pred")];
      uint64_t HA = R.u64();
      uint64_t HB = R.u64();
      bool HasCode = R.u8() != 0;
      std::vector<uint8_t> Blob;
      if (HasCode)
        Blob = R.bytes();
      const char *Cause = nullptr;
      if (hashPred(P, Sym, PrimarySeed) != HA ||
          hashPred(P, Sym, VerifySeed) != HB) {
        Cause = "structural hash mismatch";
      } else {
        const pdag::CompiledPred *CP = Preds.get(P);
        if ((CP != nullptr) != HasCode) {
          Cause = "compilability disagrees";
        } else if (CP) {
          ByteWriter B;
          PlanCodec::encodePred(*CP, SymMapFn, B);
          if (B.data() != Blob)
            Cause = "bytecode differs from fresh compile";
        }
      }
      if (Cause) {
        BadPreds.insert(P);
        Res.Diags.emplace_back(support::Diag::Code::PlanKeyMismatch,
                               "PCOD record " + std::to_string(I) + ": " +
                                   Cause);
      }
    }
    R.finish();
  }

  // --- UCOD
  std::unordered_set<const usr::USR *> BadUsrs;
  {
    ByteReader R(Chunks[5].Payload.data(), Chunks[5].Payload.size(), "UCOD");
    uint32_t N = R.count(21);
    for (uint32_t I = 0; I < N; ++I) {
      const usr::USR *S = T.Usrs[R.index(NUsrs, "usr")];
      uint64_t HA = R.u64();
      uint64_t HB = R.u64();
      bool HasCode = R.u8() != 0;
      std::vector<uint8_t> Blob;
      if (HasCode)
        Blob = R.bytes();
      const char *Cause = nullptr;
      if (hashUSR(S, Sym, PrimarySeed) != HA ||
          hashUSR(S, Sym, VerifySeed) != HB) {
        Cause = "structural hash mismatch";
      } else {
        const usr::CompiledUSR *CU = Usrs.get(S);
        if ((CU != nullptr) != HasCode) {
          Cause = "compilability disagrees";
        } else if (CU) {
          ByteWriter B;
          PlanCodec::encodeUSR(*CU, SymMapFn, PredMapFn, B);
          if (B.data() != Blob)
            Cause = "bytecode differs from fresh compile";
        }
      }
      if (Cause) {
        BadUsrs.insert(S);
        Res.Diags.emplace_back(support::Diag::Code::PlanKeyMismatch,
                               "UCOD record " + std::to_string(I) + ": " +
                                   Cause);
      }
    }
    R.finish();
  }

  // --- LOOP chunks
  for (size_t CI = 6; CI < Chunks.size(); ++CI) {
    ByteReader R(Chunks[CI].Payload.data(), Chunks[CI].Payload.size(),
                 "LOOP");
    StagedLoop SL;
    SL.Label = R.str();
    SL.KeyA = R.u64();
    SL.KeyB = R.u64();
    analysis::LoopPlan &LP = SL.Plan;

    uint8_t Class = R.u8();
    if (Class > static_cast<uint8_t>(analysis::LoopClass::TLS))
      wire::corrupt("LOOP: unknown loop class");
    LP.Class = static_cast<analysis::LoopClass>(Class);
    uint32_t NT = R.count(1);
    for (uint32_t I = 0; I < NT; ++I) {
      uint8_t Tq = R.u8();
      if (Tq > static_cast<uint8_t>(analysis::Technique::UMEG))
        wire::corrupt("LOOP: unknown technique");
      LP.Techniques.insert(static_cast<analysis::Technique>(Tq));
    }
    LP.Hoistable = R.u8() != 0;
    LP.RuntimeTestsEnabled = R.u8() != 0;
    LP.ReportFlowDepth = R.i32();
    LP.ReportOutDepth = R.i32();
    LP.ReportNeedsFlow = R.u8() != 0;
    LP.ReportNeedsOut = R.u8() != 0;

    factor::FactorStats &FS = SL.FStats;
    for (uint64_t *V :
         {&FS.GateRule, &FS.UnionRule, &FS.SubtractRule, &FS.IntersectRule,
          &FS.RecurRule, &FS.MonotonicityRule, &FS.InvariantOverRule,
          &FS.LmadDisjointRule, &FS.LmadIncludedRule, &FS.FillsArrayRule,
          &FS.FourierMotzkinUses, &FS.BudgetBailouts})
      *V = R.u64();

    uint32_t NCivs = R.count(9);
    for (uint32_t I = 0; I < NCivs; ++I) {
      summary::CivDesc D;
      D.Civ = T.Syms[R.index(NSyms, "symbol")];
      D.EntryArr = T.Syms[R.index(NSyms, "symbol")];
      D.Monotone = R.u8() != 0;
      LP.Civ.Civs.push_back(D);
    }
    uint32_t NJoins = R.count(12);
    for (uint32_t I = 0; I < NJoins; ++I) {
      SL.JoinIfIndex.push_back(R.u32());
      summary::CivJoin J;
      J.At = nullptr; // Resolved at adoption against the live loop.
      J.Civ = T.Syms[R.index(NSyms, "symbol")];
      J.JoinArr = T.Syms[R.index(NSyms, "symbol")];
      LP.Civ.Joins.push_back(J);
    }
    uint32_t NEnv = R.count(16);
    for (uint32_t I = 0; I < NEnv; ++I) {
      summary::CivEnvelope E;
      E.Civ = T.Syms[R.index(NSyms, "symbol")];
      E.Array = T.Syms[R.index(NSyms, "symbol")];
      E.MinRel = R.i64();
      LP.Civ.Envelopes.push_back(E);
    }

    bool Tainted = false;
    uint32_t NArr = R.count(40);
    std::vector<std::array<OrderRec, 6>> Orders;
    LP.Arrays.reserve(NArr);
    Orders.reserve(NArr);
    for (uint32_t AI = 0; AI < NArr; ++AI) {
      analysis::ArrayPlan AP;
      AP.Array = T.Syms[R.index(NSyms, "symbol")];
      AP.ReadOnly = R.u8() != 0;
      AP.LiveOut = R.u8() != 0;
      AP.HasReduction = R.u8() != 0;
      AP.RRedDeployed = R.u8() != 0;
      AP.NeedsBoundsComp = R.u8() != 0;

      analysis::TestCascade *Cs[6] = {&AP.Flow, &AP.Output, &AP.Priv,
                                      &AP.Slv, &AP.RRed, &AP.ExtRedFlow};
      for (analysis::TestCascade *C : Cs) {
        *C = readCascade(R, T);
        for (const pdag::CascadeStage &St : C->Stages)
          if (BadPreds.count(St.P))
            Tainted = true;
      }

      const usr::USR **Us[4] = {&AP.FlowUSR, &AP.OutputUSR, &AP.ExtRedUSR,
                                &AP.BoundsUSR};
      for (const usr::USR **U : Us) {
        uint32_t Idx = R.u32();
        if (Idx == NullRef) {
          *U = nullptr;
          continue;
        }
        if (Idx >= NUsrs)
          wire::corrupt("LOOP: out-of-range usr index");
        *U = T.Usrs[Idx];
        if (BadUsrs.count(*U))
          Tainted = true;
      }

      std::array<OrderRec, 6> ORec;
      for (int K = 0; K < 6; ++K)
        ORec[K] = readOrder(R, static_cast<uint32_t>(Cs[K]->Stages.size()));
      Orders.push_back(std::move(ORec));
      LP.Arrays.push_back(std::move(AP));
    }
    R.finish();

    if (Tainted) {
      ++Res.Rejected;
      Res.Diags.emplace_back(
          support::Diag::Code::PlanKeyMismatch,
          "loop '" + SL.Label +
              "': bytecode verification failed for a referenced "
              "predicate/USR; falling back to full analysis");
      continue;
    }

    // Rebuild the cost-ordered compiled cascades from the staged plan
    // (pure cache hits after PCOD) and verify the serialized order.
    SL.Cascades = rt::PlanCascades::build(LP, Preds);
    bool OrderOk = SL.Cascades.Arrays.size() == LP.Arrays.size();
    for (size_t AI = 0; OrderOk && AI < LP.Arrays.size(); ++AI) {
      const analysis::ArrayPlan &AP = LP.Arrays[AI];
      const rt::PlanCascades::ArrayCascades &AC = SL.Cascades.Arrays[AI];
      const analysis::TestCascade *Cs[6] = {&AP.Flow, &AP.Output, &AP.Priv,
                                            &AP.Slv, &AP.RRed,
                                            &AP.ExtRedFlow};
      const rt::CompiledCascade *CCs[6] = {&AC.Flow, &AC.Output, &AC.Priv,
                                           &AC.Slv, &AC.RRed,
                                           &AC.ExtRedFlow};
      for (int K = 0; OrderOk && K < 6; ++K)
        OrderOk = orderMatches(Orders[AI][K], *CCs[K], *Cs[K]);
    }
    if (!OrderOk) {
      ++Res.Rejected;
      Res.Diags.emplace_back(
          support::Diag::Code::PlanKeyMismatch,
          "loop '" + SL.Label +
              "': compiled cascade order diverges from the stream; "
              "falling back to full analysis");
      continue;
    }

    Out.push_back(std::move(SL));
    ++Res.Staged;
  }
  return Res;
}

} // namespace plan
} // namespace halo
