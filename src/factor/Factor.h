//===- factor/Factor.h - The logic-inference factorization -----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central contribution (Sec. 3, Fig. 5): the language
/// translation `F : USR -> PDAG` with `F(S) ==> S = empty`, implemented as
/// a logic-inference algorithm that pattern matches the shape of the
/// independence summary:
///
///   FACTOR(q # S)      = not(q) or FACTOR(S)
///   FACTOR(S1 u S2)    = FACTOR(S1) and FACTOR(S2)
///   FACTOR(S1 - S2)    = FACTOR(S1) or INCLUDED(S1, S2)
///   FACTOR(S1 n S2)    = FACTOR(S1) or FACTOR(S2) or DISJOINT(S1, S2)
///   FACTOR(U_i S_i)    = AND_i FACTOR(S_i)        (with FM elimination)
///   FACTOR(S ./ call)  = FACTOR(S) ./ call
///
/// plus the specialized DISJOINT / INCLUDED inference rules (1)-(5) of
/// Fig. 5, the LMAD-level predicate extraction of Sec. 3.2 / Fig. 6, and
/// the monotonicity rule of Sec. 3.3 for the output-independence pattern
/// `U_i (S_i  n  U_{k<i} S_k) = empty`.
///
/// Every produced predicate is *sufficient*: if it evaluates true, the set
/// is empty. This is the soundness invariant the property tests check
/// against exact USR evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_FACTOR_FACTOR_H
#define HALO_FACTOR_FACTOR_H

#include "usr/USR.h"

#include <cstdint>
#include <unordered_map>

namespace halo {
namespace factor {

/// Feature toggles — each maps to one of the design choices benchmarked by
/// the ablation harness (DESIGN.md Sec. 5).
struct FactorOptions {
  /// The Sec. 3.3 monotonicity rule for U_i(S_i n U_{k<i} S_k).
  bool Monotonicity = true;
  /// Rule (1): loop-invariant overestimates for recurrence disjointness.
  bool InvariantOverestimates = true;
  /// Fourier-Motzkin elimination of recurrence variables (Fig. 6b).
  bool FourierMotzkin = true;
  /// LMAD-level approximation rules (INCLUDED_APP / DISJOINT_APP).
  bool LmadApproximation = true;
  /// Work budget: total FACTOR/DISJOINT/INCLUDED rule applications per
  /// factorization before the engine degrades to `false` (sound — every
  /// emitted predicate is merely sufficient, and the runtime exact test
  /// still covers the loop). Bounds analysis time on adversarial
  /// summaries with quadratically many distinct leaf pairs.
  uint64_t MaxSteps = 1 << 17;
};

/// Per-rule firing counters (diagnostics and ablation reporting).
struct FactorStats {
  uint64_t GateRule = 0;
  uint64_t UnionRule = 0;
  uint64_t SubtractRule = 0;
  uint64_t IntersectRule = 0;
  uint64_t RecurRule = 0;
  uint64_t MonotonicityRule = 0;
  uint64_t InvariantOverRule = 0;
  uint64_t LmadDisjointRule = 0;
  uint64_t LmadIncludedRule = 0;
  uint64_t FillsArrayRule = 0;
  uint64_t FourierMotzkinUses = 0;
  /// Times the factorization bailed out on an exhausted step or node
  /// budget (nonzero means some cascade stages degraded to `false`).
  uint64_t BudgetBailouts = 0;
};

/// The factorization engine. One instance per analyzed loop/array; holds
/// memoization tables keyed on interned node identity.
class Factorizer {
public:
  Factorizer(usr::USRContext &Ctx, FactorOptions Opts = FactorOptions());

  /// Sets the declared size (element count) of the array the summaries
  /// range over; enables the FILLS_ARR rule (5).
  void setArraySize(const sym::Expr *Size) { ArraySize = Size; }

  /// F(S): a sufficient predicate for S = empty.
  const pdag::Pred *factor(const usr::USR *S);

  /// Sufficient predicate for S1 n S2 = empty.
  const pdag::Pred *disjoint(const usr::USR *S1, const usr::USR *S2);

  /// Sufficient predicate for S1 subset-of S2.
  const pdag::Pred *included(const usr::USR *S1, const usr::USR *S2);

  const FactorStats &stats() const { return Stats; }

private:
  const pdag::Pred *factorImpl(const usr::USR *S, int Depth);
  const pdag::Pred *disjointImpl(const usr::USR *A, const usr::USR *B,
                                 int Depth);
  const pdag::Pred *disjointHomo(const usr::USR *U, const usr::USR *S,
                                 int Depth);
  const pdag::Pred *disjointApprox(const usr::USR *A, const usr::USR *B);
  const pdag::Pred *includedImpl(const usr::USR *A, const usr::USR *B,
                                 int Depth);
  const pdag::Pred *includedHomo(const usr::USR *S, const usr::USR *U,
                                 int Depth);
  const pdag::Pred *includedApprox(const usr::USR *A, const usr::USR *B);

  /// The Sec. 3.3 monotonicity rule; null when the pattern does not match.
  const pdag::Pred *tryMonotonicity(const usr::RecurUSR *R, int Depth);

  /// Wraps a per-iteration predicate into a loop conjunction, first trying
  /// Fourier-Motzkin elimination of the loop variable; the FM result is
  /// OR-ed in so the cascade can pick the O(1) side.
  const pdag::Pred *wrapLoop(sym::SymbolId Var, const sym::Expr *Lo,
                             const sym::Expr *Hi, const pdag::Pred *Body);

  /// LMAD-set overestimate of S (drops gates, subtrahends, one intersect
  /// operand; aggregates recurrences). Nullopt on failure.
  std::optional<lmad::LMADSet> overestimateLMADs(const usr::USR *S);

  /// Conditional LMAD-set *underestimate* (P, set): when P holds the set
  /// is contained in S's denotation.
  struct CondSet {
    const pdag::Pred *Cond;
    lmad::LMADSet Set;
  };
  std::optional<CondSet> underestimateLMADs(const usr::USR *S);

  /// Cheap predicate under which S is empty (gate negations, empty ranges,
  /// negative spans) — used as the P_C component of the *_APP rules
  /// without recursing into the full factorization.
  const pdag::Pred *shallowEmptyPred(const usr::USR *S);

  /// Symbolic interval hull [Lo, Hi] of a set of LMADs (min/max chains).
  lmad::Interval intervalHull(const lmad::LMADSet &Set);

  usr::USRContext &Ctx;
  pdag::PredContext &P;
  sym::Context &Sym;
  FactorOptions Opts;
  FactorStats Stats;
  const sym::Expr *ArraySize = nullptr;

  bool overBudget();

  static constexpr int MaxDepth = 48;
  /// Hard cap on predicate-node growth per factorization (worst-case
  /// exponential inputs degrade to `false` instead of hanging, Sec. 3.6).
  size_t NodeBudget;
  /// Rule applications spent so far (checked against Opts.MaxSteps).
  uint64_t Steps = 0;
  std::unordered_map<const usr::USR *, const pdag::Pred *> FactorMemo;
  std::unordered_map<uint64_t, const pdag::Pred *> DisjointMemo;
  std::unordered_map<uint64_t, const pdag::Pred *> IncludedMemo;
};

} // namespace factor
} // namespace halo

#endif // HALO_FACTOR_FACTOR_H
