//===- factor/Factor.cpp - The logic-inference factorization --------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "factor/Factor.h"

#include "lmad/LMADCompare.h"
#include "pdag/FourierMotzkin.h"
#include "support/Error.h"
#include "usr/USRTransform.h"

#include <cassert>

using namespace halo;
using namespace halo::factor;
using namespace halo::usr;
using lmad::LMADSet;
using pdag::Pred;
using sym::Expr;
using sym::SymbolId;

Factorizer::Factorizer(USRContext &Ctx, FactorOptions Opts)
    : Ctx(Ctx), P(Ctx.predCtx()), Sym(Ctx.symCtx()), Opts(Opts),
      NodeBudget(Ctx.predCtx().numPreds() + 100000) {}

bool Factorizer::overBudget() {
  if (P.numPreds() <= NodeBudget && ++Steps <= Opts.MaxSteps)
    return false;
  ++Stats.BudgetBailouts;
  return true;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

static uint64_t pairKey(const USR *A, const USR *B) {
  return (static_cast<uint64_t>(A->getId()) << 32) | B->getId();
}

/// Strips gate wrappers, returning the naked child (an overestimate of the
/// gated set — sound wherever a superset is acceptable).
static const USR *peelGates(const USR *S) {
  while (const auto *G = dyn_cast<GateUSR>(S))
    S = G->getChild();
  return S;
}

const Pred *Factorizer::wrapLoop(SymbolId Var, const Expr *Lo, const Expr *Hi,
                                 const Pred *Body) {
  if (!Body->dependsOn(Var))
    return P.loopAll(Var, Lo, Hi, Body);
  const Pred *Loop = P.loopAll(Var, Lo, Hi, Body);
  if (!Opts.FourierMotzkin)
    return Loop;
  sym::RangeEnv Env;
  Env.bind(Var, Lo, Hi);
  const Pred *Reduced = pdag::reducePred(P, Body, Env);
  if (Reduced->dependsOn(Var) || Reduced->isFalse())
    return Loop;
  ++Stats.FourierMotzkinUses;
  // The FM-eliminated form holds for every iteration, so it implies the
  // loop conjunction; OR-ing keeps the loop's precision while exposing an
  // O(1) stage to the cascade.
  return P.or2(Reduced, Loop);
}

const Pred *Factorizer::shallowEmptyPred(const USR *S) {
  switch (S->getKind()) {
  case USRKind::Empty:
    return P.getTrue();
  case USRKind::Leaf: {
    std::vector<const Pred *> All;
    for (const lmad::LMAD &L : cast<LeafUSR>(S)->getLMADs()) {
      if (L.isPoint()) // A point is never empty.
        return P.getFalse();
      std::vector<const Pred *> Any;
      for (const lmad::Dim &D : L.dims())
        Any.push_back(P.lt(D.Span, Sym.intConst(0)));
      All.push_back(P.orN(std::move(Any)));
    }
    return P.andN(std::move(All));
  }
  case USRKind::Union: {
    std::vector<const Pred *> All;
    for (const USR *C : cast<UnionUSR>(S)->getChildren())
      All.push_back(shallowEmptyPred(C));
    return P.andN(std::move(All));
  }
  case USRKind::Intersect: {
    const auto *B = cast<BinaryUSR>(S);
    return P.or2(shallowEmptyPred(B->getLHS()),
                 shallowEmptyPred(B->getRHS()));
  }
  case USRKind::Subtract:
    return shallowEmptyPred(cast<BinaryUSR>(S)->getLHS());
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    const Pred *NotQ = P.tryNot(G->getGate());
    const Pred *Inner = shallowEmptyPred(G->getChild());
    return NotQ ? P.or2(NotQ, Inner) : Inner;
  }
  case USRKind::CallSite:
    return shallowEmptyPred(cast<CallSiteUSR>(S)->getChild());
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    const Pred *EmptyRange = P.gt(R->getLo(), R->getHi());
    if (!R->getBody()->dependsOn(R->getVar()))
      return P.or2(EmptyRange, shallowEmptyPred(R->getBody()));
    return EmptyRange;
  }
  }
  halo_unreachable("covered switch");
}

std::optional<LMADSet> Factorizer::overestimateLMADs(const USR *S) {
  switch (S->getKind()) {
  case USRKind::Empty:
    return LMADSet{};
  case USRKind::Leaf:
    return cast<LeafUSR>(S)->getLMADs();
  case USRKind::Union: {
    LMADSet Out;
    for (const USR *C : cast<UnionUSR>(S)->getChildren()) {
      auto V = overestimateLMADs(C);
      if (!V)
        return std::nullopt;
      Out.insert(Out.end(), V->begin(), V->end());
    }
    return Out;
  }
  case USRKind::Intersect:
  case USRKind::Subtract:
    return overestimateLMADs(cast<BinaryUSR>(S)->getLHS());
  case USRKind::Gate:
    return overestimateLMADs(cast<GateUSR>(S)->getChild());
  case USRKind::CallSite:
    return overestimateLMADs(cast<CallSiteUSR>(S)->getChild());
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto Body = overestimateLMADs(R->getBody());
    if (!Body)
      return std::nullopt;
    LMADSet Out;
    for (const lmad::LMAD &L : *Body) {
      auto A = lmad::aggregate(Sym, L, R->getVar(), R->getLo(), R->getHi());
      if (!A)
        return std::nullopt;
      Out.push_back(*A);
    }
    return Out;
  }
  }
  halo_unreachable("covered switch");
}

std::optional<Factorizer::CondSet>
Factorizer::underestimateLMADs(const USR *S) {
  switch (S->getKind()) {
  case USRKind::Empty:
    return CondSet{P.getTrue(), {}};
  case USRKind::Leaf:
    return CondSet{P.getTrue(), cast<LeafUSR>(S)->getLMADs()};
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    auto Inner = underestimateLMADs(G->getChild());
    if (!Inner)
      return std::nullopt;
    return CondSet{P.and2(G->getGate(), Inner->Cond), Inner->Set};
  }
  case USRKind::Union: {
    const Pred *Cond = P.getTrue();
    LMADSet Out;
    for (const USR *C : cast<UnionUSR>(S)->getChildren()) {
      auto V = underestimateLMADs(C);
      if (!V)
        return std::nullopt;
      Cond = P.and2(Cond, V->Cond);
      Out.insert(Out.end(), V->Set.begin(), V->Set.end());
    }
    return CondSet{Cond, std::move(Out)};
  }
  case USRKind::Recur: {
    const auto *R = cast<RecurUSR>(S);
    auto Body = underestimateLMADs(R->getBody());
    if (!Body || Body->Cond->dependsOn(R->getVar()))
      return std::nullopt;
    LMADSet Out;
    for (const lmad::LMAD &L : *&Body->Set) {
      auto A = lmad::aggregate(Sym, L, R->getVar(), R->getLo(), R->getHi());
      if (!A)
        return std::nullopt;
      Out.push_back(*A);
    }
    // Aggregation is exact only over a non-empty range.
    return CondSet{P.and2(Body->Cond, P.le(R->getLo(), R->getHi())),
                   std::move(Out)};
  }
  case USRKind::Intersect:
  case USRKind::Subtract:
  case USRKind::CallSite:
    return std::nullopt;
  }
  halo_unreachable("covered switch");
}

lmad::Interval Factorizer::intervalHull(const LMADSet &Set) {
  assert(!Set.empty() && "hull of empty set");
  lmad::Interval Acc = lmad::intervalOverestimate(Sym, Set.front());
  for (size_t I = 1; I < Set.size(); ++I) {
    lmad::Interval Next = lmad::intervalOverestimate(Sym, Set[I]);
    Acc.Lo = Sym.min(Acc.Lo, Next.Lo);
    Acc.Hi = Sym.max(Acc.Hi, Next.Hi);
  }
  return Acc;
}

//===----------------------------------------------------------------------===//
// FACTOR
//===----------------------------------------------------------------------===//

const Pred *Factorizer::factor(const USR *S) { return factorImpl(S, 0); }

const Pred *Factorizer::factorImpl(const USR *S, int Depth) {
  if (Depth > MaxDepth || overBudget())
    return P.getFalse();
  auto It = FactorMemo.find(S);
  if (It != FactorMemo.end())
    return It->second;

  const Pred *Result = nullptr;
  switch (S->getKind()) {
  case USRKind::Empty:
    Result = P.getTrue();
    break;
  case USRKind::Leaf:
    // An LMAD is empty iff some span is negative; a point never is.
    Result = shallowEmptyPred(S);
    break;
  case USRKind::Union: {
    ++Stats.UnionRule;
    std::vector<const Pred *> All;
    for (const USR *C : cast<UnionUSR>(S)->getChildren())
      All.push_back(factorImpl(C, Depth + 1));
    Result = P.andN(std::move(All));
    break;
  }
  case USRKind::Subtract: {
    ++Stats.SubtractRule;
    const auto *B = cast<BinaryUSR>(S);
    Result = P.or2(factorImpl(B->getLHS(), Depth + 1),
                   includedImpl(B->getLHS(), B->getRHS(), Depth + 1));
    break;
  }
  case USRKind::Intersect: {
    ++Stats.IntersectRule;
    const auto *B = cast<BinaryUSR>(S);
    Result = P.orN({factorImpl(B->getLHS(), Depth + 1),
                    factorImpl(B->getRHS(), Depth + 1),
                    disjointImpl(B->getLHS(), B->getRHS(), Depth + 1)});
    break;
  }
  case USRKind::Gate: {
    ++Stats.GateRule;
    const auto *G = cast<GateUSR>(S);
    const Pred *Inner = factorImpl(G->getChild(), Depth + 1);
    const Pred *NotQ = P.tryNot(G->getGate());
    // When the gate has no cheap complement, F(child) alone remains a
    // sufficient condition (the gate can only shrink the set).
    Result = NotQ ? P.or2(NotQ, Inner) : Inner;
    break;
  }
  case USRKind::CallSite: {
    const auto *C = cast<CallSiteUSR>(S);
    Result = P.callSite(C->getCallee(), factorImpl(C->getChild(), Depth + 1));
    break;
  }
  case USRKind::Recur: {
    ++Stats.RecurRule;
    const auto *R = cast<RecurUSR>(S);
    std::vector<const Pred *> Alts;
    bool MonoStatic = false;
    if (Opts.Monotonicity)
      if (const Pred *Mono = tryMonotonicity(R, Depth)) {
        Alts.push_back(Mono);
        MonoStatic = Mono->isTrue();
      }
    // When the monotonicity rule already discharged the pattern
    // statically there is nothing left to gain from the generic
    // per-iteration expansion.
    if (!MonoStatic)
      Alts.push_back(wrapLoop(R->getVar(), R->getLo(), R->getHi(),
                              factorImpl(R->getBody(), Depth + 1)));
    Result = P.orN(std::move(Alts));
    break;
  }
  }
  assert(Result && "factorization produced no predicate");
  FactorMemo.emplace(S, Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Monotonicity rule (Sec. 3.3)
//===----------------------------------------------------------------------===//

const Pred *Factorizer::tryMonotonicity(const RecurUSR *R, int Depth) {
  (void)Depth; // Kept for symmetry with the other rule entry points.
  // Pattern: U_{i=lo..hi} ( S_i  n  U_{k=lo..i-1} S_k ), possibly under
  // gates (stripping gates overestimates, which is sound here).
  const USR *Body = peelGates(R->getBody());
  const auto *I = dyn_cast<BinaryUSR>(Body);
  if (!I || !I->isIntersect())
    return nullptr;

  SymbolId Var = R->getVar();
  const Expr *IM1 = Sym.addConst(Sym.symRef(Var), -1);

  // Collects the partial recurrences `U_{k=lo..i-1} B_k` hiding in Y
  // (possibly a union of them, since the recurrence constructor
  // distributes over unions). Returns false when Y has any other shape.
  auto CollectPartials =
      [&](const USR *Y,
          std::vector<const RecurUSR *> &Out) -> bool {
    Y = peelGates(Y);
    std::vector<const USR *> Work{Y};
    while (!Work.empty()) {
      const USR *C = peelGates(Work.back());
      Work.pop_back();
      if (const auto *Un = dyn_cast<UnionUSR>(C)) {
        for (const USR *Sub : Un->getChildren())
          Work.push_back(Sub);
        continue;
      }
      const auto *RY = dyn_cast<RecurUSR>(C);
      if (!RY || RY->getHi() != IM1 || RY->getLo() != R->getLo())
        return false;
      Out.push_back(RY);
    }
    return !Out.empty();
  };

  const USR *Side = nullptr;
  std::vector<const RecurUSR *> Partials;
  for (int Swap = 0; Swap < 2 && Partials.empty(); ++Swap) {
    const USR *X = Swap ? I->getRHS() : I->getLHS();
    const USR *Y = Swap ? I->getLHS() : I->getRHS();
    if (CollectPartials(Y, Partials))
      Side = X;
    else
      Partials.clear();
  }
  if (Partials.empty())
    return nullptr;

  auto OA = overestimateLMADs(Side);
  if (!OA || OA->empty())
    return nullptr;

  // Rebase every partial-recurrence body from its variable k to i, so a
  // single symbolic interval function [Lo(i), Hi(i)] covers both sides.
  LMADSet Hull = *OA;
  for (const RecurUSR *Partial : Partials) {
    auto OB = overestimateLMADs(Partial->getBody());
    if (!OB || OB->empty())
      return nullptr;
    std::map<SymbolId, const Expr *> KToI{
        {Partial->getVar(), Sym.symRef(Var)}};
    for (const lmad::LMAD &L : *OB)
      Hull.push_back(lmad::substitute(Sym, L, KToI));
  }
  lmad::Interval IV = intervalHull(Hull);

  ++Stats.MonotonicityRule;
  std::map<SymbolId, const Expr *> IToIP1{
      {Var, Sym.addConst(Sym.symRef(Var), 1)}};
  const Expr *LoNext = Sym.substitute(IV.Lo, IToIP1);
  const Expr *HiNext = Sym.substitute(IV.Hi, IToIP1);
  const Expr *HiM1 = Sym.addConst(R->getHi(), -1);
  // Strictly increasing or strictly decreasing interval sequence; either
  // implies pairwise disjointness across iterations. The second conjunct
  // (monotone lower bounds) makes the chain robust to *empty* per-
  // iteration intervals (hi(i) < lo(i), the CIV-envelope encoding of an
  // iteration that writes nothing): for i < j,
  //   hi(i) < lo(i+1) <= lo(j).
  const Pred *Inc = wrapLoop(
      Var, R->getLo(), HiM1,
      P.and2(P.gt(LoNext, IV.Hi), P.ge(LoNext, IV.Lo)));
  const Pred *Dec = wrapLoop(
      Var, R->getLo(), HiM1,
      P.and2(P.gt(IV.Lo, HiNext), P.ge(IV.Lo, LoNext)));
  return P.or2(Inc, Dec);
}

//===----------------------------------------------------------------------===//
// DISJOINT
//===----------------------------------------------------------------------===//

const Pred *Factorizer::disjoint(const USR *A, const USR *B) {
  return disjointImpl(A, B, 0);
}

const Pred *Factorizer::disjointImpl(const USR *A, const USR *B, int Depth) {
  if (A->isEmptySet() || B->isEmptySet())
    return P.getTrue();
  if (Depth > MaxDepth || overBudget())
    return P.getFalse();
  if (B->getId() < A->getId())
    std::swap(A, B); // Symmetric: canonical order for memoization.
  uint64_t Key = pairKey(A, B);
  auto It = DisjointMemo.find(Key);
  if (It != DisjointMemo.end())
    return It->second;
  // Block recursive re-entry on the same pair (conservative false).
  DisjointMemo.emplace(Key, P.getFalse());

  std::vector<const Pred *> Alts;
  Alts.push_back(shallowEmptyPred(A));
  Alts.push_back(shallowEmptyPred(B));

  const auto *RA = dyn_cast<RecurUSR>(A);
  const auto *RB = dyn_cast<RecurUSR>(B);

  // Rule (1): invariant overestimates for recurrence operands.
  if (Opts.InvariantOverestimates && (RA || RB)) {
    const USR *IA = A, *IB = B;
    bool Ok = true;
    if (RA) {
      auto O = invariantOverestimate(Ctx, RA->getBody(), RA->getVar(),
                                     RA->getLo(), RA->getHi());
      if (O)
        IA = *O;
      else
        Ok = false;
    }
    if (Ok && RB) {
      auto O = invariantOverestimate(Ctx, RB->getBody(), RB->getVar(),
                                     RB->getLo(), RB->getHi());
      if (O)
        IB = *O;
      else
        Ok = false;
    }
    if (Ok) {
      ++Stats.InvariantOverRule;
      Alts.push_back(disjointImpl(IA, IB, Depth + 1));
    }
  }

  // Loop expansion: disjointness for every iteration. Exact when only one
  // side varies with the recurrence variable; for two recurrences the
  // nested expansion quantifies over both variables.
  if (RA) {
    const USR *BodyA = RA->getBody();
    SymbolId VarA = RA->getVar();
    if (B->dependsOn(VarA)) {
      SymbolId Fresh = Sym.freshSymbol(Sym.symbolInfo(VarA).Name,
                                       Sym.symbolInfo(VarA).DefLevel);
      std::map<SymbolId, const Expr *> M{{VarA, Sym.symRef(Fresh)}};
      BodyA = Ctx.substitute(BodyA, M);
      VarA = Fresh;
    }
    Alts.push_back(wrapLoop(VarA, RA->getLo(), RA->getHi(),
                            disjointImpl(BodyA, B, Depth + 1)));
  } else if (RB) {
    const USR *BodyB = RB->getBody();
    SymbolId VarB = RB->getVar();
    if (A->dependsOn(VarB)) {
      SymbolId Fresh = Sym.freshSymbol(Sym.symbolInfo(VarB).Name,
                                       Sym.symbolInfo(VarB).DefLevel);
      std::map<SymbolId, const Expr *> M{{VarB, Sym.symRef(Fresh)}};
      BodyB = Ctx.substitute(BodyB, M);
      VarB = Fresh;
    }
    Alts.push_back(wrapLoop(VarB, RB->getLo(), RB->getHi(),
                            disjointImpl(A, BodyB, Depth + 1)));
  }

  Alts.push_back(disjointHomo(A, B, Depth));
  Alts.push_back(disjointHomo(B, A, Depth));
  if (Opts.LmadApproximation)
    Alts.push_back(disjointApprox(A, B));

  const Pred *Result = P.orN(std::move(Alts));
  DisjointMemo[Key] = Result;
  return Result;
}

const Pred *Factorizer::disjointHomo(const USR *U, const USR *S, int Depth) {
  switch (U->getKind()) {
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(U);
    const Pred *Inner = disjointImpl(G->getChild(), S, Depth + 1);
    const Pred *NotQ = P.tryNot(G->getGate());
    return NotQ ? P.or2(NotQ, Inner) : Inner;
  }
  case USRKind::Union: {
    std::vector<const Pred *> All;
    for (const USR *C : cast<UnionUSR>(U)->getChildren())
      All.push_back(disjointImpl(C, S, Depth + 1));
    return P.andN(std::move(All));
  }
  case USRKind::Subtract: {
    // Rule (2): S n (S1 - S2) empty <== S disjoint S1 or S subset S2.
    const auto *B = cast<BinaryUSR>(U);
    return P.or2(disjointImpl(B->getLHS(), S, Depth + 1),
                 includedImpl(S, B->getRHS(), Depth + 1));
  }
  case USRKind::Intersect: {
    const auto *B = cast<BinaryUSR>(U);
    return P.or2(disjointImpl(B->getLHS(), S, Depth + 1),
                 disjointImpl(B->getRHS(), S, Depth + 1));
  }
  case USRKind::CallSite:
    return P.callSite(cast<CallSiteUSR>(U)->getCallee(),
                      disjointImpl(cast<CallSiteUSR>(U)->getChild(), S,
                                   Depth + 1));
  case USRKind::Empty:
  case USRKind::Leaf:
  case USRKind::Recur:
    return P.getFalse(); // Handled by the caller's other strategies.
  }
  halo_unreachable("covered switch");
}

const Pred *Factorizer::disjointApprox(const USR *A, const USR *B) {
  auto OA = overestimateLMADs(A);
  auto OB = overestimateLMADs(B);
  if (!OA || !OB)
    return P.getFalse();
  ++Stats.LmadDisjointRule;
  return lmad::disjointSets(P, *OA, *OB);
}

//===----------------------------------------------------------------------===//
// INCLUDED
//===----------------------------------------------------------------------===//

const Pred *Factorizer::included(const USR *A, const USR *B) {
  return includedImpl(A, B, 0);
}

const Pred *Factorizer::includedImpl(const USR *A, const USR *B, int Depth) {
  if (A->isEmptySet())
    return P.getTrue();
  if (A == B)
    return P.getTrue();
  if (Depth > MaxDepth || overBudget())
    return P.getFalse();
  uint64_t Key = pairKey(A, B);
  auto It = IncludedMemo.find(Key);
  if (It != IncludedMemo.end())
    return It->second;
  IncludedMemo.emplace(Key, P.getFalse());

  std::vector<const Pred *> Alts;
  Alts.push_back(shallowEmptyPred(A));

  // Rule (3): recurrences over the same range include iff the bodies do.
  const auto *RA = dyn_cast<RecurUSR>(A);
  const auto *RB = dyn_cast<RecurUSR>(B);
  if (RA && RB && RA->getLo() == RB->getLo() && RA->getHi() == RB->getHi()) {
    std::map<SymbolId, const Expr *> M{
        {RB->getVar(), Sym.symRef(RA->getVar())}};
    const USR *BodyB = Ctx.substitute(RB->getBody(), M);
    Alts.push_back(wrapLoop(RA->getVar(), RA->getLo(), RA->getHi(),
                            includedImpl(RA->getBody(), BodyB, Depth + 1)));
  } else if (RA) {
    // U_i S_i subset-of B <== for every i, S_i subset-of B.
    const USR *BodyA = RA->getBody();
    SymbolId VarA = RA->getVar();
    if (B->dependsOn(VarA)) {
      SymbolId Fresh = Sym.freshSymbol(Sym.symbolInfo(VarA).Name,
                                       Sym.symbolInfo(VarA).DefLevel);
      std::map<SymbolId, const Expr *> M{{VarA, Sym.symRef(Fresh)}};
      BodyA = Ctx.substitute(BodyA, M);
      VarA = Fresh;
    }
    Alts.push_back(wrapLoop(VarA, RA->getLo(), RA->getHi(),
                            includedImpl(BodyA, B, Depth + 1)));
  }

  Alts.push_back(includedHomo(A, B, Depth));
  if (Opts.LmadApproximation)
    Alts.push_back(includedApprox(A, B));

  const Pred *Result = P.orN(std::move(Alts));
  IncludedMemo[Key] = Result;
  return Result;
}

const Pred *Factorizer::includedHomo(const USR *S, const USR *U, int Depth) {
  // Case analysis on the includer U (P1 of INCLUDED_H).
  const Pred *P1 = P.getFalse();
  switch (U->getKind()) {
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(U);
    P1 = P.and2(G->getGate(), includedImpl(S, G->getChild(), Depth + 1));
    break;
  }
  case USRKind::Union: {
    std::vector<const Pred *> Any;
    for (const USR *C : cast<UnionUSR>(U)->getChildren())
      Any.push_back(includedImpl(S, C, Depth + 1));
    P1 = P.orN(std::move(Any));
    break;
  }
  case USRKind::Subtract: {
    // Rule (4): S subset (S1 - S2) <== S subset S1 and S disjoint S2.
    const auto *B = cast<BinaryUSR>(U);
    P1 = P.and2(includedImpl(S, B->getLHS(), Depth + 1),
                disjointImpl(S, B->getRHS(), Depth + 1));
    break;
  }
  case USRKind::Intersect: {
    const auto *B = cast<BinaryUSR>(U);
    P1 = P.and2(includedImpl(S, B->getLHS(), Depth + 1),
                includedImpl(S, B->getRHS(), Depth + 1));
    break;
  }
  case USRKind::Leaf: {
    // Rule (5): an LMAD covering the whole declared array includes
    // everything that ranges over that array.
    if (ArraySize) {
      std::vector<const Pred *> Any;
      for (const lmad::LMAD &L : cast<LeafUSR>(U)->getLMADs())
        Any.push_back(lmad::fillsArray(P, L, ArraySize));
      P1 = P.orN(std::move(Any));
      if (!P1->isFalse())
        ++Stats.FillsArrayRule;
    }
    break;
  }
  case USRKind::CallSite:
    P1 = P.callSite(cast<CallSiteUSR>(U)->getCallee(),
                    includedImpl(S, cast<CallSiteUSR>(U)->getChild(),
                                 Depth + 1));
    break;
  case USRKind::Empty:
  case USRKind::Recur:
    break;
  }

  // Case analysis on the includee S (P2 of INCLUDED_H).
  const Pred *P2 = P.getFalse();
  switch (S->getKind()) {
  case USRKind::Gate: {
    const auto *G = cast<GateUSR>(S);
    const Pred *Inner = includedImpl(G->getChild(), U, Depth + 1);
    const Pred *NotQ = P.tryNot(G->getGate());
    P2 = NotQ ? P.or2(NotQ, Inner) : Inner;
    break;
  }
  case USRKind::Union: {
    std::vector<const Pred *> All;
    for (const USR *C : cast<UnionUSR>(S)->getChildren())
      All.push_back(includedImpl(C, U, Depth + 1));
    P2 = P.andN(std::move(All));
    break;
  }
  case USRKind::Subtract:
    P2 = includedImpl(cast<BinaryUSR>(S)->getLHS(), U, Depth + 1);
    break;
  case USRKind::Intersect: {
    const auto *B = cast<BinaryUSR>(S);
    P2 = P.or2(includedImpl(B->getLHS(), U, Depth + 1),
               includedImpl(B->getRHS(), U, Depth + 1));
    break;
  }
  case USRKind::CallSite:
    P2 = P.callSite(cast<CallSiteUSR>(S)->getCallee(),
                    includedImpl(cast<CallSiteUSR>(S)->getChild(), U,
                                 Depth + 1));
    break;
  case USRKind::Empty:
  case USRKind::Leaf:
  case USRKind::Recur:
    break;
  }
  return P.or2(P1, P2);
}

const Pred *Factorizer::includedApprox(const USR *A, const USR *B) {
  auto OA = overestimateLMADs(A);
  auto UB = underestimateLMADs(B);
  if (!OA || !UB)
    return P.getFalse();
  if (OA->empty())
    return P.getTrue();
  if (UB->Set.empty())
    return P.getFalse();
  ++Stats.LmadIncludedRule;
  return P.and2(UB->Cond, lmad::includedSets(P, *OA, UB->Set));
}
