//===- fuzz/Generator.h - Seed-deterministic loop-nest generator -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random loop-nest generation for the differential fuzzer. A GeneratedCase
/// is a complete, self-contained mini program — its own symbol / predicate /
/// USR contexts, an ir::Program, one outer DoLoop, and a data plan that
/// binds every referenced scalar, index array and data array — drawn
/// deterministically from a single seed: the same GenOptions always
/// reproduce the same program, byte for byte in dump() output.
///
/// The grammar covers the constructs the analyzer reasons about: affine
/// subscripts `A(i+c)`, subscripted subscripts `A(IX(i)+c)`, conditionally
/// incremented induction variables with CIV-relative writes, IF-gated
/// statements, inner loops (both iteration-disjoint and overlapping
/// flavors), reductions, read-only statements, and calls through a
/// subroutine with array reshaping. Benign programs are in-bounds by
/// construction: every subscript's runtime range is contained in the
/// declared (and allocated) array size, so any out-of-bounds access
/// reaching the interpreter is a generator or analyzer bug, not noise.
///
/// Under GenOptions::Hostile, one deliberate malformation is injected after
/// the benign draw (undeclared array, negative constant trip, constant
/// out-of-bounds subscript, duplicate loop variable, CIV aliasing the loop
/// variable, unbound scalar, or a pathologically deep expression). Hostile
/// cases must be rejected with structured diagnostics by the front door
/// (ir/Validate.h) — never crash, never reach the interpreter's asserts.
///
/// The Drop mask supports the minimizer: dropped statement slots are still
/// *drawn* from the RNG stream (so surviving slots are byte-identical to
/// the original case) but not appended to the loop body.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_FUZZ_GENERATOR_H
#define HALO_FUZZ_GENERATOR_H

#include "ir/Program.h"
#include "rt/Memory.h"
#include "usr/USR.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace halo {
namespace fuzz {

/// The full input of one generation — everything reproduction needs.
struct GenOptions {
  /// RNG seed; the sole source of randomness.
  uint64_t Seed = 1;
  /// Statement slots in the outer loop body (each slot is one grammar
  /// draw; a slot may expand to more than one IR statement).
  unsigned BodyStmts = 6;
  /// Nominal trip count of the outer loop (jittered ±8 by the seed).
  int64_t Trip = 48;
  /// Inject one deliberate malformation after the benign draw.
  bool Hostile = false;
  /// Slot indices to omit from the body (minimizer mask). Dropped slots
  /// still consume their RNG draws, so the surviving slots are identical
  /// to the unmasked case.
  std::vector<unsigned> Drop;
};

/// One generated program plus the data plan that makes it runnable.
class GeneratedCase {
public:
  GeneratedCase();
  ~GeneratedCase();
  GeneratedCase(const GeneratedCase &) = delete;
  GeneratedCase &operator=(const GeneratedCase &) = delete;

  /// The options the case was generated from (verbatim).
  GenOptions Opts;
  /// The loop under test.
  const ir::DoLoop *Loop = nullptr;
  /// Statement slots drawn (before Drop) — the minimizer's index space.
  unsigned NumSlots = 0;
  /// Which hostile malformation was injected ("" when benign).
  std::string HostileNote;

  /// Data array allocated in rt::Memory, with deterministic initial
  /// contents derived from the seed.
  struct DataArrayPlan {
    sym::SymbolId Id = 0;
    std::string Name;
    size_t Elems = 0;
  };
  /// Integer index array bound in sym::Bindings.
  struct IndexArrayPlan {
    sym::SymbolId Id = 0;
    std::string Name;
    sym::ArrayBinding Vals;
  };
  /// Loop-invariant input scalar.
  struct ScalarPlan {
    sym::SymbolId Id = 0;
    std::string Name;
    int64_t Val = 0;
  };
  std::vector<DataArrayPlan> DataArrays;
  std::vector<IndexArrayPlan> IndexArrays;
  std::vector<ScalarPlan> Scalars;
  /// Arrays receiving at least one reduction update (parity comparisons
  /// use a floating-point tolerance for these: parallel merge reorders
  /// the additions).
  std::set<sym::SymbolId> ReductionArrays;

  /// Allocates/binds every input of the case into fresh memory/bindings.
  void bind(rt::Memory &M, sym::Bindings &B) const;

  /// Deterministic textual rendering of the whole case (program, data
  /// plan, hostile note) — the determinism test compares these byte for
  /// byte, and repro reports embed them.
  std::string dump() const;

  sym::Context &sym() { return *SymCtx; }
  const sym::Context &sym() const { return *SymCtx; }
  pdag::PredContext &pred() { return *PredCtx; }
  usr::USRContext &usrCtx() { return *UsrCtx; }
  ir::Program &prog() { return *Prog; }
  const ir::Program &prog() const { return *Prog; }

private:
  std::unique_ptr<sym::Context> SymCtx;
  std::unique_ptr<pdag::PredContext> PredCtx;
  std::unique_ptr<usr::USRContext> UsrCtx;
  std::unique_ptr<ir::Program> Prog;
};

/// Generates the case \p O describes. Deterministic: equal options yield
/// byte-identical dump() output.
std::unique_ptr<GeneratedCase> generate(const GenOptions &O);

} // namespace fuzz
} // namespace halo

#endif // HALO_FUZZ_GENERATOR_H
