//===- fuzz/Oracle.h - Differential oracles for generated loops -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's ground truth. Three independent oracles check every
/// generated case:
///
///  1. **Brute-force dependence oracle.** traceLoop() walks the loop nest
///     exactly like the interpreter (control flow, CIV updates, call-site
///     aliasing) but records, per iteration and array, the *sets* of
///     touched 0-based offsets — exposed reads, non-reduction writes,
///     reduction updates — instead of moving doubles. The paper's
///     independence properties (flow/output independence Eqs. 2-3,
///     privatizability, static last value, reduction injectivity,
///     extended-reduction separation) are then decided exactly, and every
///     claim the analyzer's runtime machinery makes — a cascade stage that
///     evaluates true, an independence USR that evaluates empty — is
///     compared against the exact answer. A claim contradicting the trace
///     is a soundness bug (P0): the analyzer would have parallelized a
///     dependent loop.
///
///  2. **Execution parity oracle.** The case runs end to end through the
///     sequential reference interpreter and through session::Session in
///     three engine configurations (compiled+block, compiled scalar,
///     fully interpreted). All four final memory images must agree —
///     bit-exactly for non-reduction arrays, within a small tolerance for
///     reduction targets (parallel merge reorders floating-point adds).
///     Cascade stages are additionally cross-checked compiled-vs-
///     interpreted, tri-state, stage by stage.
///
///  3. **Front-door oracle.** Hostile cases must be rejected by the
///     structured validation gates (ir/Validate.h) — structural diags at
///     Session::prepare, binding diags from collectInputDiags — and never
///     reach execution; benign cases must pass both gates. Acceptance of
///     a hostile case or rejection of a benign one is reported.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_FUZZ_ORACLE_H
#define HALO_FUZZ_ORACLE_H

#include "fuzz/Generator.h"
#include "sym/Eval.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace halo {
namespace fuzz {

/// Per-iteration, per-array access sets (0-based element offsets).
struct IterAccesses {
  /// Reads of elements not previously written in the same iteration by a
  /// non-reduction write (the paper's RO ∪ RW read set).
  std::set<int64_t> ExposedReads;
  /// Non-reduction writes (WF ∪ RW).
  std::set<int64_t> Writes;
  /// Reduction updates (the RED set of Sec. 4).
  std::set<int64_t> RedWrites;
};

/// Exact cross-iteration access record of one loop execution.
struct TraceResult {
  bool Ok = true;
  std::string Error;
  /// Iters[k] maps array symbol -> access sets of the (k+1)-th executed
  /// outer iteration.
  std::vector<std::map<sym::SymbolId, IterAccesses>> Iters;
};

/// Walks \p Loop under \p B (scalars + index arrays; data values are never
/// needed — subscripts and gates only read integers) and materializes the
/// per-iteration access sets. \p B is taken by value: CIV updates mutate
/// the walker's copy exactly like the interpreter's.
TraceResult traceLoop(const ir::Program &Prog, const ir::DoLoop &Loop,
                      sym::Bindings B);

/// Exact property deciders over a trace, for one array. These are the
/// brute-force counterparts of the analyzer's independence equations.
bool flowIndependent(const TraceResult &T, sym::SymbolId Array);
bool outputIndependent(const TraceResult &T, sym::SymbolId Array);
bool privatizable(const TraceResult &T, sym::SymbolId Array);
bool slvValid(const TraceResult &T, sym::SymbolId Array);
bool redInjective(const TraceResult &T, sym::SymbolId Array);
bool extRedSeparated(const TraceResult &T, sym::SymbolId Array);

/// Oracle knobs.
struct OracleOptions {
  /// Session worker threads for the parity runs.
  unsigned Threads = 3;
  /// Relative/absolute tolerance for reduction-target arrays.
  double Tolerance = 1e-9;
};

/// Everything checkCase() observed about one case.
struct OracleResult {
  /// Analyzer claims contradicted by the brute-force trace (P0).
  std::vector<std::string> Soundness;
  /// End-state or per-stage engine disagreements.
  std::vector<std::string> Parity;
  /// Front-door anomalies and oracle-internal failures (benign case
  /// rejected, hostile case accepted, unexpected exception, trace error).
  std::vector<std::string> Other;

  /// The validation gates rejected the case (expected iff hostile).
  bool ValidationRejected = false;
  /// Diag mnemonics reported by the gates (support::diagCodeName).
  std::vector<std::string> DiagCodes;
  /// Plan classification of the compiled session ("" when not analyzed).
  std::string ClassString;
  /// Guard demotions summed over every engine run (reporting).
  uint64_t GuardDemotions = 0;

  bool ok() const {
    return Soundness.empty() && Parity.empty() && Other.empty();
  }
  /// Category of the first failure: "soundness", "parity", "front-door",
  /// or "" when ok. The minimizer preserves this signature.
  std::string failureKind() const {
    if (!Soundness.empty())
      return "soundness";
    if (!Parity.empty())
      return "parity";
    if (!Other.empty())
      return "front-door";
    return "";
  }
};

/// Runs every oracle against \p C. Never throws: all engine exceptions are
/// captured into the result.
OracleResult checkCase(GeneratedCase &C, const OracleOptions &O = {});

} // namespace fuzz
} // namespace halo

#endif // HALO_FUZZ_ORACLE_H
