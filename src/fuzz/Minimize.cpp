//===- fuzz/Minimize.cpp - Greedy repro minimization ----------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimize.h"

#include <algorithm>

using namespace halo;
using namespace halo::fuzz;

GenOptions fuzz::minimizeCase(
    const GenOptions &Failing,
    const std::function<bool(GeneratedCase &)> &StillFails) {
  GenOptions Cur = Failing;
  unsigned Slots = generate(Cur)->NumSlots;
  // One greedy sweep is 1-minimizing here because slots are independent
  // draws: re-adding a slot never changes the others, so a slot whose
  // removal kept the failure can never become necessary again.
  for (unsigned S = 0; S < Slots; ++S) {
    if (std::find(Cur.Drop.begin(), Cur.Drop.end(), S) != Cur.Drop.end())
      continue;
    GenOptions Trial = Cur;
    Trial.Drop.push_back(S);
    std::sort(Trial.Drop.begin(), Trial.Drop.end());
    auto Case = generate(Trial);
    if (StillFails(*Case))
      Cur = std::move(Trial);
  }
  return Cur;
}
