//===- fuzz/Minimize.h - Greedy repro minimization -------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy statement-slot deletion for failing fuzz cases. The generator
/// draws its whole RNG stream regardless of the Drop mask, so masking out
/// a slot leaves every surviving slot byte-identical — minimization is
/// pure search over Drop sets, with the failure re-established by the
/// caller's predicate (normally: the oracle still reports the same
/// failure kind). The result is 1-minimal: removing any single surviving
/// slot makes the failure disappear.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_FUZZ_MINIMIZE_H
#define HALO_FUZZ_MINIMIZE_H

#include "fuzz/Generator.h"

#include <functional>

namespace halo {
namespace fuzz {

/// Re-generates the case under each trial mask and keeps a slot dropped
/// whenever \p StillFails holds on the result. \p Failing must already
/// fail; the returned options carry the final Drop mask. \p StillFails is
/// invoked once per trial with a freshly generated case.
GenOptions
minimizeCase(const GenOptions &Failing,
             const std::function<bool(GeneratedCase &)> &StillFails);

} // namespace fuzz
} // namespace halo

#endif // HALO_FUZZ_MINIMIZE_H
