//===- fuzz/Generator.cpp - Seed-deterministic loop-nest generator --------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "pdag/Pred.h"
#include "support/Casting.h"
#include "support/Rng.h"
#include "usr/USR.h"

#include <algorithm>
#include <sstream>

using namespace halo;
using namespace halo::fuzz;

GeneratedCase::GeneratedCase() {
  SymCtx = std::make_unique<sym::Context>();
  PredCtx = std::make_unique<pdag::PredContext>(*SymCtx);
  UsrCtx = std::make_unique<usr::USRContext>(*SymCtx, *PredCtx);
  Prog = std::make_unique<ir::Program>(*SymCtx, *PredCtx);
}

GeneratedCase::~GeneratedCase() = default;

void GeneratedCase::bind(rt::Memory &M, sym::Bindings &B) const {
  for (const DataArrayPlan &A : DataArrays) {
    std::vector<double> &V = M.alloc(A.Id, A.Elems);
    // Deterministic non-trivial initial contents: dependent loops then
    // produce order-sensitive values the parity oracle can distinguish.
    for (size_t I = 0; I < V.size(); ++I)
      V[I] = 0.25 * static_cast<double>((I * 7 + A.Id * 13) % 31);
  }
  for (const IndexArrayPlan &A : IndexArrays)
    B.setArray(A.Id, A.Vals);
  for (const ScalarPlan &S : Scalars)
    B.setScalar(S.Id, S.Val);
}

//===----------------------------------------------------------------------===//
// Textual rendering (determinism oracle + repro reports)
//===----------------------------------------------------------------------===//

namespace {

/// Renders expressions/predicates/statements with a recursion cap so a
/// hostile 1500-deep expression prints as "..." instead of overflowing the
/// printer's own stack.
class CasePrinter {
public:
  CasePrinter(const sym::Context &Sym, std::ostringstream &OS)
      : Sym(Sym), OS(OS) {}

  void expr(const sym::Expr *E, unsigned Depth = 0) {
    if (!E) {
      OS << "<null>";
      return;
    }
    if (Depth > 12) {
      OS << "...";
      return;
    }
    switch (E->getKind()) {
    case sym::ExprKind::IntConst:
      OS << cast<sym::IntConstExpr>(E)->getValue();
      return;
    case sym::ExprKind::SymRef:
      OS << name(cast<sym::SymRefExpr>(E)->getSymbol());
      return;
    case sym::ExprKind::ArrayRef: {
      const auto *A = cast<sym::ArrayRefExpr>(E);
      OS << name(A->getArray()) << "(";
      expr(A->getIndex(), Depth + 1);
      OS << ")";
      return;
    }
    case sym::ExprKind::Min:
    case sym::ExprKind::Max: {
      const auto *M = cast<sym::MinMaxExpr>(E);
      OS << (E->getKind() == sym::ExprKind::Min ? "min(" : "max(");
      expr(M->getLHS(), Depth + 1);
      OS << ", ";
      expr(M->getRHS(), Depth + 1);
      OS << ")";
      return;
    }
    case sym::ExprKind::FloorDiv:
    case sym::ExprKind::Mod: {
      const auto *D = cast<sym::DivModExpr>(E);
      OS << (E->getKind() == sym::ExprKind::FloorDiv ? "div(" : "mod(");
      expr(D->getOperand(), Depth + 1);
      OS << ", " << D->getDivisor() << ")";
      return;
    }
    case sym::ExprKind::Mul: {
      const auto *M = cast<sym::MulExpr>(E);
      OS << "(";
      bool First = true;
      for (const sym::Expr *F : M->getFactors()) {
        if (!First)
          OS << " * ";
        First = false;
        expr(F, Depth + 1);
      }
      OS << ")";
      return;
    }
    case sym::ExprKind::Add: {
      const auto *A = cast<sym::AddExpr>(E);
      OS << "(";
      bool First = true;
      for (const sym::Monomial &T : A->getTerms()) {
        if (!First)
          OS << " + ";
        First = false;
        if (T.Coeff != 1)
          OS << T.Coeff << "*";
        expr(T.Prod, Depth + 1);
      }
      if (A->getConstant() != 0 || First) {
        if (!First)
          OS << " + ";
        OS << A->getConstant();
      }
      OS << ")";
      return;
    }
    }
  }

  void pred(const pdag::Pred *P, unsigned Depth = 0) {
    if (!P) {
      OS << "<null>";
      return;
    }
    if (Depth > 12) {
      OS << "...";
      return;
    }
    switch (P->getKind()) {
    case pdag::PredKind::True:
      OS << "true";
      return;
    case pdag::PredKind::False:
      OS << "false";
      return;
    case pdag::PredKind::Cmp: {
      const auto *C = cast<pdag::CmpPred>(P);
      expr(C->getExpr(), Depth + 1);
      switch (C->getRel()) {
      case pdag::CmpRel::GE0:
        OS << " >= 0";
        break;
      case pdag::CmpRel::EQ0:
        OS << " == 0";
        break;
      case pdag::CmpRel::NE0:
        OS << " != 0";
        break;
      }
      return;
    }
    case pdag::PredKind::Divides: {
      const auto *D = cast<pdag::DividesPred>(P);
      if (D->isNegated())
        OS << "!";
      OS << D->getDivisor() << " | ";
      expr(D->getValue(), Depth + 1);
      return;
    }
    case pdag::PredKind::And:
    case pdag::PredKind::Or: {
      const auto *N = cast<pdag::NaryPred>(P);
      OS << "(";
      bool First = true;
      for (const pdag::Pred *C : N->getChildren()) {
        if (!First)
          OS << (P->getKind() == pdag::PredKind::And ? " && " : " || ");
        First = false;
        pred(C, Depth + 1);
      }
      OS << ")";
      return;
    }
    case pdag::PredKind::LoopAll: {
      const auto *L = cast<pdag::LoopAllPred>(P);
      OS << "all(" << name(L->getVar()) << " in ";
      expr(L->getLo(), Depth + 1);
      OS << "..";
      expr(L->getHi(), Depth + 1);
      OS << ": ";
      pred(L->getBody(), Depth + 1);
      OS << ")";
      return;
    }
    case pdag::PredKind::CallSite:
      OS << "callsite(";
      pred(cast<pdag::CallSitePred>(P)->getBody(), Depth + 1);
      OS << ")";
      return;
    }
  }

  void stmt(const ir::Stmt *S, unsigned Indent, unsigned Depth = 0) {
    if (Depth > 24) {
      pad(Indent);
      OS << "...\n";
      return;
    }
    switch (S->getKind()) {
    case ir::StmtKind::Assign: {
      const auto *A = cast<ir::AssignStmt>(S);
      pad(Indent);
      if (A->getWrite()) {
        OS << name(A->getWrite()->Array) << "[";
        expr(A->getWrite()->Offset);
        OS << "] " << (A->isReduction() ? "+= " : "= ");
      } else {
        OS << "sink ";
      }
      OS << "f(";
      bool First = true;
      for (const ir::ArrayAccess &R : A->getReads()) {
        if (!First)
          OS << ", ";
        First = false;
        OS << name(R.Array) << "[";
        expr(R.Offset);
        OS << "]";
      }
      OS << ")\n";
      return;
    }
    case ir::StmtKind::DoLoop: {
      const auto *L = cast<ir::DoLoop>(S);
      pad(Indent);
      OS << "do " << L->getLabel() << ": " << name(L->getVar()) << " = ";
      expr(L->getLo());
      OS << ", ";
      expr(L->getHi());
      OS << "\n";
      for (const ir::Stmt *C : L->getBody())
        stmt(C, Indent + 2, Depth + 1);
      pad(Indent);
      OS << "end do\n";
      return;
    }
    case ir::StmtKind::If: {
      const auto *I = cast<ir::IfStmt>(S);
      pad(Indent);
      OS << "if (";
      pred(I->getCond());
      OS << ")\n";
      for (const ir::Stmt *T : I->getThen())
        stmt(T, Indent + 2, Depth + 1);
      if (!I->getElse().empty()) {
        pad(Indent);
        OS << "else\n";
        for (const ir::Stmt *T : I->getElse())
          stmt(T, Indent + 2, Depth + 1);
      }
      pad(Indent);
      OS << "end if\n";
      return;
    }
    case ir::StmtKind::Call: {
      const auto *C = cast<ir::CallStmt>(S);
      pad(Indent);
      OS << "call " << C->getCallee()->getName() << "(";
      bool First = true;
      for (const ir::CallStmt::ArrayArg &A : C->getArrayArgs()) {
        if (!First)
          OS << ", ";
        First = false;
        OS << name(A.Formal) << "=" << name(A.Actual) << "+";
        expr(A.Offset);
      }
      for (const ir::CallStmt::ScalarArg &A : C->getScalarArgs()) {
        if (!First)
          OS << ", ";
        First = false;
        OS << name(A.Formal) << "=";
        expr(A.Actual);
      }
      OS << ")\n";
      return;
    }
    case ir::StmtKind::CivIncr: {
      const auto *CI = cast<ir::CivIncrStmt>(S);
      pad(Indent);
      OS << name(CI->getCiv()) << " += ";
      expr(CI->getAmount());
      OS << "\n";
      return;
    }
    }
  }

private:
  std::string name(sym::SymbolId Id) { return Sym.symbolInfo(Id).Name; }
  void pad(unsigned N) {
    for (unsigned I = 0; I < N; ++I)
      OS << ' ';
  }

  const sym::Context &Sym;
  std::ostringstream &OS;
};

} // namespace

std::string GeneratedCase::dump() const {
  std::ostringstream OS;
  OS << "# seed " << Opts.Seed << " body " << Opts.BodyStmts << " trip "
     << Opts.Trip << " hostile " << (Opts.Hostile ? 1 : 0) << "\n";
  if (!Opts.Drop.empty()) {
    OS << "# drop";
    for (unsigned D : Opts.Drop)
      OS << " " << D;
    OS << "\n";
  }
  if (!HostileNote.empty())
    OS << "# hostile-note " << HostileNote << "\n";
  for (const DataArrayPlan &A : DataArrays)
    OS << "data " << A.Name << "[" << A.Elems << "]\n";
  for (const IndexArrayPlan &A : IndexArrays) {
    OS << "index " << A.Name << " =";
    for (int64_t V : A.Vals.Vals)
      OS << " " << V;
    OS << "\n";
  }
  for (const ScalarPlan &S : Scalars)
    OS << "scalar " << S.Name << " = " << S.Val << "\n";
  if (Loop) {
    CasePrinter P(*SymCtx, OS);
    P.stmt(Loop, 0);
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Generation
//===----------------------------------------------------------------------===//

namespace {

/// Builds one case from the RNG stream. Every random decision routes
/// through the single Rng member, and dropped slots draw exactly the same
/// stream as kept ones — the two invariants behind determinism and
/// minimizer stability.
class CaseBuilder {
public:
  CaseBuilder(GeneratedCase &C, const GenOptions &O)
      : C(C), O(O), R(O.Seed ^ 0x9e3779b97f4a7c15ULL), Sym(C.sym()),
        P(C.pred()), Prog(C.prog()) {}

  void build() {
    Main = Prog.makeSubroutine("main");
    Trip = O.Trip + R.nextInRange(-8, 8);
    if (Trip < 8)
      Trip = 8;
    InnerTrip = R.nextInRange(2, 4);

    // All data arrays share one generous size that bounds every benign
    // subscript form: affine i+c (c <= 8), inner-loop products up to
    // Trip*InnerTrip + 2, index-array values below Trip + 8, and CIV
    // prefixes — every slot could be a CIV bump of 2, so the prefix after
    // the last iteration is at most 2*BodyStmts*Trip.
    int64_t CivMax = 2 * static_cast<int64_t>(O.BodyStmts) * Trip;
    Cap = static_cast<size_t>(
        std::max<int64_t>({Trip * InnerTrip, 2 * Trip, CivMax}) + 16);

    unsigned NData = static_cast<unsigned>(R.nextInRange(2, 3));
    for (unsigned I = 0; I < NData; ++I) {
      std::string N = "A" + std::to_string(I);
      sym::SymbolId Id = Sym.symbol(N, 0, /*IsArray=*/true);
      Main->declareArray(
          ir::ArrayDecl{Id, Sym.intConst(static_cast<int64_t>(Cap)), false});
      C.DataArrays.push_back({Id, N, Cap});
    }
    unsigned NIdx = static_cast<unsigned>(R.nextInRange(1, 2));
    for (unsigned I = 0; I < NIdx; ++I) {
      std::string N = "IX" + std::to_string(I);
      sym::SymbolId Id = Sym.symbol(N, 0, /*IsArray=*/true);
      Main->declareArray(ir::ArrayDecl{Id, nullptr, true});
      GeneratedCase::IndexArrayPlan Plan{Id, N, makeIndexValues()};
      C.IndexArrays.push_back(std::move(Plan));
    }
    for (unsigned I = 0; I < 2; ++I) {
      std::string N = "s" + std::to_string(I);
      sym::SymbolId Id = Sym.symbol(N, 0);
      C.Scalars.push_back({Id, N, R.nextInRange(-2, 5)});
    }
    Civ = Sym.symbol("civ", 0);
    C.Scalars.push_back({Civ, "civ", 0});

    // Outer loop: constant or symbolic upper bound (symbolic bounds give
    // the factorizer non-trivial predicates to extract).
    IVar = Sym.symbol("i", 1);
    const sym::Expr *Hi;
    if (R.chance(1, 2)) {
      Hi = Sym.intConst(Trip);
    } else {
      sym::SymbolId N = Sym.symbol("n", 0);
      C.Scalars.push_back({N, "n", Trip});
      Hi = Sym.symRef(N);
    }
    ir::DoLoop *L =
        Prog.make<ir::DoLoop>("fuzz", IVar, Sym.intConst(1), Hi, 1);
    Main->append(L);
    C.Loop = L;

    for (unsigned Slot = 0; Slot < O.BodyStmts; ++Slot) {
      bool Dropped = std::find(O.Drop.begin(), O.Drop.end(), Slot) !=
                     O.Drop.end();
      emitSlot(L, Dropped);
    }
    C.NumSlots = O.BodyStmts;

    if (O.Hostile)
      injectHostile(L);
  }

private:
  /// Index-array contents: a permutation of [0, Trip) (injective — often
  /// provably independent via monotonicity/UMEG reasoning after sorting,
  /// or exactly-tested), or random values with duplicates (dependent).
  sym::ArrayBinding makeIndexValues() {
    sym::ArrayBinding A;
    A.Lo = 1;
    A.Vals.resize(static_cast<size_t>(Trip));
    bool Permute = R.chance(1, 2);
    for (int64_t I = 0; I < Trip; ++I)
      A.Vals[static_cast<size_t>(I)] =
          Permute ? I : R.nextInRange(0, Trip - 1);
    if (Permute)
      for (int64_t I = Trip - 1; I > 0; --I) {
        int64_t J = R.nextInRange(0, I);
        std::swap(A.Vals[static_cast<size_t>(I)],
                  A.Vals[static_cast<size_t>(J)]);
      }
    return A;
  }

  sym::SymbolId anyDataArray() {
    return C.DataArrays[R.nextBelow(C.DataArrays.size())].Id;
  }

  /// A subscript over the outer iteration variable, in-bounds by
  /// construction for arrays of size Cap.
  const sym::Expr *outerSubscript() {
    switch (R.nextBelow(4)) {
    case 0: // i + c, c in [-1, 6]: range [0, Trip+6).
      return Sym.addConst(Sym.symRef(IVar), R.nextInRange(-1, 6));
    case 1: { // IX(i) + c, c in [0, 3]: values in [0, Trip+3).
      const GeneratedCase::IndexArrayPlan &IA =
          C.IndexArrays[R.nextBelow(C.IndexArrays.size())];
      return Sym.addConst(Sym.arrayRef(IA.Id, Sym.symRef(IVar)),
                          R.nextInRange(0, 3));
    }
    case 2: // civ + c, c in [0, 3]: civ stays in [0, 2*Trip].
      return Sym.addConst(Sym.symRef(Civ), R.nextInRange(0, 3));
    default: // 2*i + c: strided, range [1, 2*Trip+3).
      return Sym.addConst(Sym.mulConst(Sym.symRef(IVar), 2),
                          R.nextInRange(-1, 3));
    }
  }

  std::vector<ir::ArrayAccess> someReads(unsigned Max) {
    std::vector<ir::ArrayAccess> Reads;
    unsigned N = static_cast<unsigned>(R.nextBelow(Max + 1));
    for (unsigned I = 0; I < N; ++I)
      Reads.push_back(ir::ArrayAccess{anyDataArray(), outerSubscript()});
    return Reads;
  }

  const pdag::Pred *somePred() {
    switch (R.nextBelow(3)) {
    case 0: // mod(i, k) == 0.
      return P.eq0(Sym.mod(Sym.symRef(IVar),
                           R.nextInRange(2, 3)));
    case 1: { // s >= c.
      const GeneratedCase::ScalarPlan &S =
          C.Scalars[R.nextBelow(C.Scalars.size())];
      return P.ge(Sym.symRef(S.Id), Sym.intConst(R.nextInRange(-1, 3)));
    }
    default: // i <= Trip/2.
      return P.le(Sym.symRef(IVar), Sym.intConst(Trip / 2));
    }
  }

  /// Appends \p S to \p L unless the current slot is dropped.
  void emit(ir::DoLoop *L, bool Dropped, const ir::Stmt *S) {
    if (!Dropped)
      L->append(S);
  }

  void emitSlot(ir::DoLoop *L, bool Dropped) {
    uint64_t Kind = R.nextBelow(95);
    if (Kind < 25) { // Plain assign.
      emit(L, Dropped,
           Prog.make<ir::AssignStmt>(
               ir::ArrayAccess{anyDataArray(), outerSubscript()},
               someReads(2), false, 0));
    } else if (Kind < 37) { // Reduction update.
      sym::SymbolId A = anyDataArray();
      emit(L, Dropped,
           Prog.make<ir::AssignStmt>(
               ir::ArrayAccess{A, outerSubscript()}, someReads(1), true, 0));
      if (!Dropped)
        C.ReductionArrays.insert(A);
    } else if (Kind < 49) { // IF-gated assign (optionally with else).
      ir::IfStmt *If = Prog.make<ir::IfStmt>(somePred());
      If->appendThen(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(), outerSubscript()}, someReads(1),
          false, 0));
      if (R.chance(1, 2))
        If->appendElse(Prog.make<ir::AssignStmt>(
            ir::ArrayAccess{anyDataArray(), outerSubscript()}, someReads(1),
            false, 0));
      emit(L, Dropped, If);
    } else if (Kind < 59) { // CIV bump (possibly gated) + CIV-relative write.
      const sym::Expr *Amt = Sym.intConst(R.nextInRange(1, 2));
      const ir::Stmt *Incr = Prog.make<ir::CivIncrStmt>(Civ, Amt);
      if (R.chance(1, 3)) {
        ir::IfStmt *If = Prog.make<ir::IfStmt>(somePred());
        If->appendThen(Incr);
        emit(L, Dropped, If);
      } else {
        emit(L, Dropped, Incr);
      }
      emit(L, Dropped,
           Prog.make<ir::AssignStmt>(
               ir::ArrayAccess{anyDataArray(),
                               Sym.addConst(Sym.symRef(Civ),
                                            R.nextInRange(0, 2))},
               someReads(1), false, 0));
    } else if (Kind < 71) { // Inner loop.
      sym::SymbolId J = Sym.symbol("j" + std::to_string(InnerCount++), 2);
      ir::DoLoop *Inner = Prog.make<ir::DoLoop>(
          "fz_in" + std::to_string(InnerCount), J, Sym.intConst(1),
          Sym.intConst(InnerTrip), 2);
      bool Disjoint = R.chance(2, 3);
      // Disjoint flavor writes (i-1)*InnerTrip + j (per-iteration blocks,
      // independent); the overlap flavor writes i + j (dependent).
      const sym::Expr *Sub =
          Disjoint
              ? Sym.add(Sym.mulConst(Sym.addConst(Sym.symRef(IVar), -1),
                                     InnerTrip),
                        Sym.symRef(J))
              : Sym.add(Sym.symRef(IVar), Sym.symRef(J));
      Inner->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(), Sub}, someReads(1), false, 0));
      emit(L, Dropped, Inner);
    } else if (Kind < 81) { // Call through a subroutine (array reshaping).
      ensureCallee();
      std::vector<ir::CallStmt::ArrayArg> AA{
          {FormalArr, anyDataArray(), Sym.intConst(R.nextInRange(0, 2))}};
      std::vector<ir::CallStmt::ScalarArg> SA{
          {FormalScal, Sym.addConst(Sym.symRef(IVar),
                                    R.nextInRange(-1, 2))}};
      emit(L, Dropped,
           Prog.make<ir::CallStmt>(Callee, std::move(AA), std::move(SA)));
    } else if (Kind < 90) { // Read-only statement.
      std::vector<ir::ArrayAccess> Reads = someReads(2);
      Reads.push_back(ir::ArrayAccess{anyDataArray(), outerSubscript()});
      emit(L, Dropped,
           Prog.make<ir::AssignStmt>(std::nullopt, std::move(Reads), false,
                                     0));
    } else { // Constant-location write: every iteration hits one element.
      emit(L, Dropped,
           Prog.make<ir::AssignStmt>(
               ir::ArrayAccess{anyDataArray(),
                               Sym.intConst(R.nextInRange(0, 7))},
               someReads(1), false, 0));
    }
  }

  /// Lazily creates the shared callee `f(FA, fs): FA[fs+c] = g(FA[fs+c'])`.
  void ensureCallee() {
    if (Callee)
      return;
    Callee = Prog.makeSubroutine("f");
    FormalArr = Sym.symbol("FA", 0, /*IsArray=*/true);
    FormalScal = Sym.symbol("fs", 0);
    Callee->declareArray(ir::ArrayDecl{FormalArr, nullptr, false});
    int64_t WOff = R.nextInRange(0, 2);
    int64_t ROff = R.nextInRange(0, 2);
    Callee->append(Prog.make<ir::AssignStmt>(
        ir::ArrayAccess{FormalArr, Sym.addConst(Sym.symRef(FormalScal),
                                                WOff + 1)},
        std::vector<ir::ArrayAccess>{
            {FormalArr, Sym.addConst(Sym.symRef(FormalScal), ROff + 1)}},
        false, 0));
  }

  void injectHostile(ir::DoLoop *L) {
    switch (R.nextBelow(7)) {
    case 0: { // Access to an array no subroutine declares.
      sym::SymbolId Ghost = Sym.symbol("ghostA", 0, /*IsArray=*/true);
      L->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{Ghost, Sym.symRef(IVar)},
          std::vector<ir::ArrayAccess>{}, false, 0));
      C.HostileNote = "UndeclaredArray";
      return;
    }
    case 1: { // Inner loop with constant Hi < Lo.
      sym::SymbolId J = Sym.symbol("jneg", 2);
      ir::DoLoop *Inner = Prog.make<ir::DoLoop>(
          "fz_negtrip", J, Sym.intConst(1), Sym.intConst(-3), 2);
      Inner->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(), Sym.symRef(J)},
          std::vector<ir::ArrayAccess>{}, false, 0));
      L->append(Inner);
      C.HostileNote = "NonPositiveTrip";
      return;
    }
    case 2: { // Constant subscript provably out of bounds.
      bool Neg = R.chance(1, 2);
      int64_t Off = Neg ? -5 : static_cast<int64_t>(Cap) + 100;
      L->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(), Sym.intConst(Off)},
          std::vector<ir::ArrayAccess>{}, false, 0));
      C.HostileNote = "OobSubscript";
      return;
    }
    case 3: { // Inner loop reusing the outer loop variable.
      ir::DoLoop *Inner = Prog.make<ir::DoLoop>(
          "fz_dupvar", IVar, Sym.intConst(1), Sym.intConst(4), 2);
      Inner->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(), Sym.symRef(IVar)},
          std::vector<ir::ArrayAccess>{}, false, 0));
      L->append(Inner);
      C.HostileNote = "DuplicateLoopVar";
      return;
    }
    case 4: // CIV update targeting the loop variable itself.
      L->append(Prog.make<ir::CivIncrStmt>(IVar, Sym.intConst(1)));
      C.HostileNote = "CivIsLoopVar";
      return;
    case 5: { // Subscript over a scalar no data plan binds.
      sym::SymbolId Ghost = Sym.symbol("ghost", 0);
      L->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(),
                          Sym.add(Sym.symRef(IVar), Sym.symRef(Ghost))},
          std::vector<ir::ArrayAccess>{}, false, 0));
      C.HostileNote = "UnboundScalar";
      return;
    }
    default: { // Expression deep enough to trip the validation depth cap.
      const sym::Expr *E = Sym.symRef(IVar);
      for (unsigned I = 0; I < 1500; ++I)
        E = Sym.min(Sym.addConst(E, 1), Sym.intConst(2));
      L->append(Prog.make<ir::AssignStmt>(
          ir::ArrayAccess{anyDataArray(), E},
          std::vector<ir::ArrayAccess>{}, false, 0));
      C.HostileNote = "ExprTooDeep";
      return;
    }
    }
  }

  GeneratedCase &C;
  const GenOptions &O;
  Rng R;
  sym::Context &Sym;
  pdag::PredContext &P;
  ir::Program &Prog;
  ir::Subroutine *Main = nullptr;
  ir::Subroutine *Callee = nullptr;
  sym::SymbolId FormalArr = 0;
  sym::SymbolId FormalScal = 0;
  sym::SymbolId IVar = 0;
  sym::SymbolId Civ = 0;
  int64_t Trip = 0;
  int64_t InnerTrip = 0;
  size_t Cap = 0;
  unsigned InnerCount = 0;
};

} // namespace

std::unique_ptr<GeneratedCase> fuzz::generate(const GenOptions &O) {
  auto C = std::make_unique<GeneratedCase>();
  C->Opts = O;
  CaseBuilder B(*C, O);
  B.build();
  return C;
}
