//===- fuzz/Corpus.h - Regression-corpus serialization ---------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of fuzz repros. A corpus entry is the *recipe* for a
/// case — seed, budgets, hostile flag, minimizer drop mask — plus the
/// expectation replay must verify:
///
///   - `clean`: the case passes every oracle (a fixed defect, pinned),
///   - `validation-error`: the front door rejects it with structured
///     diagnostics (a hostile hardening case, pinned).
///
/// Entries are deterministic by construction (the generator is a pure
/// function of the recipe), so the checked-in corpus replays bit-identically
/// on every machine. Format: `key value` lines, `#` comments, order-free
/// except that unknown keys are errors (a corrupted corpus should fail
/// loudly, not silently re-fuzz something else).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_FUZZ_CORPUS_H
#define HALO_FUZZ_CORPUS_H

#include "fuzz/Generator.h"

#include <optional>
#include <string>

namespace halo {
namespace fuzz {

/// One corpus entry: recipe + replay expectation.
struct CorpusEntry {
  GenOptions Opts;
  /// "clean" or "validation-error".
  std::string Expect = "clean";
  /// Free-form provenance (what the entry pins).
  std::string Note;
};

/// Serializes \p E (with trailing comments rendering the program dump of
/// the recipe for human triage).
std::string serializeEntry(const CorpusEntry &E);

/// Parses an entry; nullopt (with \p Error set) on malformed input.
std::optional<CorpusEntry> parseEntry(const std::string &Text,
                                      std::string &Error);

} // namespace fuzz
} // namespace halo

#endif // HALO_FUZZ_CORPUS_H
