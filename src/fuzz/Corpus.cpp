//===- fuzz/Corpus.cpp - Regression-corpus serialization ------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <sstream>

using namespace halo;
using namespace halo::fuzz;

std::string fuzz::serializeEntry(const CorpusEntry &E) {
  std::ostringstream OS;
  OS << "# halo_fuzz corpus entry\n";
  if (!E.Note.empty())
    OS << "# " << E.Note << "\n";
  OS << "seed " << E.Opts.Seed << "\n";
  OS << "body " << E.Opts.BodyStmts << "\n";
  OS << "trip " << E.Opts.Trip << "\n";
  OS << "hostile " << (E.Opts.Hostile ? 1 : 0) << "\n";
  if (!E.Opts.Drop.empty()) {
    OS << "drop";
    for (unsigned D : E.Opts.Drop)
      OS << " " << D;
    OS << "\n";
  }
  OS << "expect " << E.Expect << "\n";
  // Render the program for human triage; replay ignores comments.
  auto Case = generate(E.Opts);
  std::istringstream Dump(Case->dump());
  std::string Line;
  while (std::getline(Dump, Line))
    OS << "# | " << Line << "\n";
  return OS.str();
}

std::optional<CorpusEntry> fuzz::parseEntry(const std::string &Text,
                                            std::string &Error) {
  CorpusEntry E;
  std::istringstream IS(Text);
  std::string Line;
  bool SawSeed = false;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "seed") {
      LS >> E.Opts.Seed;
      SawSeed = true;
    } else if (Key == "body") {
      LS >> E.Opts.BodyStmts;
    } else if (Key == "trip") {
      LS >> E.Opts.Trip;
    } else if (Key == "hostile") {
      int V = 0;
      LS >> V;
      E.Opts.Hostile = V != 0;
    } else if (Key == "drop") {
      unsigned D;
      while (LS >> D)
        E.Opts.Drop.push_back(D);
    } else if (Key == "expect") {
      LS >> E.Expect;
    } else {
      Error = "unknown corpus key: " + Key;
      return std::nullopt;
    }
    if (LS.bad()) {
      Error = "malformed corpus line: " + Line;
      return std::nullopt;
    }
  }
  if (!SawSeed) {
    Error = "corpus entry missing 'seed'";
    return std::nullopt;
  }
  if (E.Expect != "clean" && E.Expect != "validation-error") {
    Error = "corpus entry with unknown expectation: " + E.Expect;
    return std::nullopt;
  }
  return E;
}
