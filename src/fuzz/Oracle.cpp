//===- fuzz/Oracle.cpp - Differential oracles for generated loops ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "ir/Validate.h"
#include "pdag/PredCompile.h"
#include "pdag/PredEval.h"
#include "plan/Plan.h"
#include "rt/Interp.h"
#include "session/Session.h"
#include "support/Casting.h"
#include "support/Error.h"
#include "usr/USREval.h"

#include <cmath>
#include <sstream>

using namespace halo;
using namespace halo::fuzz;

//===----------------------------------------------------------------------===//
// Brute-force trace
//===----------------------------------------------------------------------===//

namespace {

/// Mirrors rt::interpStmt's control flow but records access sets instead
/// of moving data. Subscripts and gates only read integers (scalars, loop
/// variables, CIVs, index arrays), so no rt::Memory is needed.
class TraceWalker {
public:
  TraceWalker(sym::Bindings &B, TraceResult &T) : B(B), T(T) {}

  void outer(const ir::DoLoop &L) {
    auto Lo = sym::tryEval(L.getLo(), B);
    auto Hi = sym::tryEval(L.getHi(), B);
    if (!Lo || !Hi) {
      fail("unevaluable outer loop bounds");
      return;
    }
    for (int64_t I = *Lo; I <= *Hi && T.Ok; ++I) {
      B.setScalar(L.getVar(), I);
      T.Iters.emplace_back();
      Cur = &T.Iters.back();
      for (const ir::Stmt *S : L.getBody())
        stmt(S);
    }
  }

private:
  void fail(const std::string &Msg) {
    if (T.Ok) {
      T.Ok = false;
      T.Error = Msg;
    }
  }

  std::optional<int64_t> evalOff(const sym::Expr *E) {
    auto V = sym::tryEval(E, B);
    if (!V)
      fail("unevaluable subscript in trace");
    return V;
  }

  std::pair<sym::SymbolId, int64_t> resolve(sym::SymbolId Arr,
                                            int64_t Off) const {
    auto It = Alias.find(Arr);
    while (It != Alias.end()) {
      Off += It->second.second;
      Arr = It->second.first;
      It = Alias.find(Arr);
    }
    return {Arr, Off};
  }

  void read(sym::SymbolId Arr, int64_t Off) {
    auto [Base, Idx] = resolve(Arr, Off);
    IterAccesses &A = (*Cur)[Base];
    if (!A.Writes.count(Idx))
      A.ExposedReads.insert(Idx);
  }

  void write(sym::SymbolId Arr, int64_t Off, bool IsReduction) {
    auto [Base, Idx] = resolve(Arr, Off);
    IterAccesses &A = (*Cur)[Base];
    (IsReduction ? A.RedWrites : A.Writes).insert(Idx);
  }

  void stmt(const ir::Stmt *S) {
    if (!T.Ok)
      return;
    switch (S->getKind()) {
    case ir::StmtKind::Assign: {
      const auto *A = cast<ir::AssignStmt>(S);
      for (const ir::ArrayAccess &R : A->getReads())
        if (auto Off = evalOff(R.Offset))
          read(R.Array, *Off);
      if (A->getWrite())
        if (auto Off = evalOff(A->getWrite()->Offset))
          write(A->getWrite()->Array, *Off, A->isReduction());
      return;
    }
    case ir::StmtKind::DoLoop: {
      const auto *L = cast<ir::DoLoop>(S);
      auto Lo = sym::tryEval(L->getLo(), B);
      auto Hi = sym::tryEval(L->getHi(), B);
      if (!Lo || !Hi) {
        fail("unevaluable inner loop bounds");
        return;
      }
      auto Saved = B.scalar(L->getVar());
      for (int64_t I = *Lo; I <= *Hi && T.Ok; ++I) {
        B.setScalar(L->getVar(), I);
        for (const ir::Stmt *C : L->getBody())
          stmt(C);
      }
      if (Saved)
        B.setScalar(L->getVar(), *Saved);
      return;
    }
    case ir::StmtKind::If: {
      const auto *I = cast<ir::IfStmt>(S);
      auto C = pdag::tryEvalPred(I->getCond(), B);
      if (!C) {
        fail("unevaluable gate predicate in trace");
        return;
      }
      for (const ir::Stmt *X : (*C ? I->getThen() : I->getElse()))
        stmt(X);
      return;
    }
    case ir::StmtKind::Call: {
      const auto *C = cast<ir::CallStmt>(S);
      std::vector<std::pair<sym::SymbolId, std::optional<int64_t>>> SavedSc;
      for (const ir::CallStmt::ScalarArg &A : C->getScalarArgs()) {
        auto V = sym::tryEval(A.Actual, B);
        if (!V) {
          fail("unevaluable scalar argument in trace");
          return;
        }
        SavedSc.emplace_back(A.Formal, B.scalar(A.Formal));
        B.setScalar(A.Formal, *V);
      }
      std::vector<
          std::pair<sym::SymbolId, std::optional<std::pair<sym::SymbolId,
                                                           int64_t>>>>
          SavedAl;
      for (const ir::CallStmt::ArrayArg &A : C->getArrayArgs()) {
        auto Off = sym::tryEval(A.Offset, B);
        if (!Off) {
          fail("unevaluable array-argument offset in trace");
          return;
        }
        auto It = Alias.find(A.Formal);
        SavedAl.emplace_back(
            A.Formal,
            It == Alias.end()
                ? std::nullopt
                : std::optional<std::pair<sym::SymbolId, int64_t>>(
                      It->second));
        Alias[A.Formal] = {A.Actual, *Off};
      }
      for (const ir::Stmt *X : C->getCallee()->getBody())
        stmt(X);
      for (auto &KV : SavedAl) {
        if (KV.second)
          Alias[KV.first] = *KV.second;
        else
          Alias.erase(KV.first);
      }
      for (auto &KV : SavedSc) {
        if (KV.second)
          B.setScalar(KV.first, *KV.second);
        else
          B.clearScalar(KV.first);
      }
      return;
    }
    case ir::StmtKind::CivIncr: {
      const auto *CI = cast<ir::CivIncrStmt>(S);
      auto Amt = sym::tryEval(CI->getAmount(), B);
      if (!Amt) {
        fail("unevaluable CIV amount in trace");
        return;
      }
      B.setScalar(CI->getCiv(), B.scalar(CI->getCiv()).value_or(0) + *Amt);
      return;
    }
    }
  }

  sym::Bindings &B;
  TraceResult &T;
  std::map<sym::SymbolId, std::pair<sym::SymbolId, int64_t>> Alias;
  std::map<sym::SymbolId, IterAccesses> *Cur = nullptr;
};

/// offset -> set of iteration indices touching it, per access category.
struct PerElement {
  std::map<int64_t, std::set<size_t>> W, ER, RW;
};

PerElement perElement(const TraceResult &T, sym::SymbolId Array) {
  PerElement P;
  for (size_t I = 0; I < T.Iters.size(); ++I) {
    auto It = T.Iters[I].find(Array);
    if (It == T.Iters[I].end())
      continue;
    for (int64_t O : It->second.Writes)
      P.W[O].insert(I);
    for (int64_t O : It->second.ExposedReads)
      P.ER[O].insert(I);
    for (int64_t O : It->second.RedWrites)
      P.RW[O].insert(I);
  }
  return P;
}

/// True iff some i in A and j in B with i != j exist.
bool crossIter(const std::set<size_t> &A, const std::set<size_t> &B) {
  if (A.empty() || B.empty())
    return false;
  return A.size() > 1 || B.size() > 1 || *A.begin() != *B.begin();
}

} // namespace

TraceResult fuzz::traceLoop(const ir::Program &Prog, const ir::DoLoop &Loop,
                            sym::Bindings B) {
  (void)Prog;
  TraceResult T;
  TraceWalker W(B, T);
  W.outer(Loop);
  return T;
}

bool fuzz::flowIndependent(const TraceResult &T, sym::SymbolId Array) {
  PerElement P = perElement(T, Array);
  for (const auto &KV : P.W) {
    auto It = P.ER.find(KV.first);
    if (It != P.ER.end() && crossIter(It->second, KV.second))
      return false;
  }
  return true;
}

bool fuzz::outputIndependent(const TraceResult &T, sym::SymbolId Array) {
  PerElement P = perElement(T, Array);
  for (const auto &KV : P.W)
    if (KV.second.size() > 1)
      return false;
  return true;
}

bool fuzz::privatizable(const TraceResult &T, sym::SymbolId Array) {
  for (const auto &Iter : T.Iters) {
    auto It = Iter.find(Array);
    if (It != Iter.end() && !It->second.ExposedReads.empty())
      return false;
  }
  return true;
}

bool fuzz::slvValid(const TraceResult &T, sym::SymbolId Array) {
  if (T.Iters.empty())
    return true;
  const auto &Last = T.Iters.back();
  auto LIt = Last.find(Array);
  const std::set<int64_t> *LastW =
      LIt == Last.end() ? nullptr : &LIt->second.Writes;
  for (size_t I = 0; I + 1 < T.Iters.size(); ++I) {
    auto It = T.Iters[I].find(Array);
    if (It == T.Iters[I].end())
      continue;
    for (int64_t O : It->second.Writes)
      if (!LastW || !LastW->count(O))
        return false;
  }
  return true;
}

bool fuzz::redInjective(const TraceResult &T, sym::SymbolId Array) {
  PerElement P = perElement(T, Array);
  for (const auto &KV : P.RW)
    if (KV.second.size() > 1)
      return false;
  return true;
}

bool fuzz::extRedSeparated(const TraceResult &T, sym::SymbolId Array) {
  PerElement P = perElement(T, Array);
  for (const auto &KV : P.RW) {
    auto WIt = P.W.find(KV.first);
    if (WIt != P.W.end() && crossIter(KV.second, WIt->second))
      return false;
    auto RIt = P.ER.find(KV.first);
    if (RIt != P.ER.end() && crossIter(KV.second, RIt->second))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Claim evaluation and the full differential check
//===----------------------------------------------------------------------===//

namespace {

std::string arrayName(const GeneratedCase &C, sym::SymbolId Id) {
  return C.sym().symbolInfo(Id).Name;
}

/// Evaluates one cascade under \p B: returns true when StaticallyTrue or
/// any stage evaluates true through the reference interpreter. Every stage
/// is also cross-checked against its compiled bytecode (scalar and block
/// tiers) — tri-state disagreement is an engine parity bug.
bool cascadeClaims(const analysis::TestCascade &TC, sym::Bindings &B,
                   sym::Context &Sym, const char *What,
                   const std::string &Arr, OracleResult &Res) {
  if (TC.StaticallyTrue)
    return true;
  bool Claim = false;
  for (size_t I = 0; I < TC.Stages.size(); ++I) {
    const pdag::Pred *P = TC.Stages[I].P;
    auto Interp = pdag::tryEvalPred(P, B);
    auto CP = pdag::CompiledPred::compile(P, Sym);
    if (CP) {
      for (pdag::BlockEval BE :
           {pdag::BlockEval::Off, pdag::BlockEval::Auto}) {
        pdag::EvalStats ES;
        auto Comp = CP->eval(B, &ES, BE);
        if (Comp.has_value() != Interp.has_value() ||
            (Comp && *Comp != *Interp)) {
          std::ostringstream OS;
          OS << "stage parity: " << What << " stage " << I << " of " << Arr
             << " interp="
             << (Interp ? (*Interp ? "true" : "false") : "none")
             << " compiled"
             << (BE == pdag::BlockEval::Auto ? "(block)" : "(scalar)")
             << "=" << (Comp ? (*Comp ? "true" : "false") : "none");
          Res.Parity.push_back(OS.str());
        }
      }
    } else {
      ++Res.GuardDemotions;
    }
    if (Interp && *Interp)
      Claim = true;
  }
  return Claim;
}

/// Emptiness claim of an independence USR through the reference
/// interpreter (a bounded evaluation failure is "no claim").
bool usrClaimsEmpty(const usr::USR *S, const sym::Bindings &B) {
  if (!S)
    return false;
  sym::Bindings Local(B);
  auto V = usr::evalUSREmpty(S, Local);
  return V && *V;
}

void soundness(OracleResult &Res, const char *Claim, const std::string &Arr,
               const char *Truth) {
  Res.Soundness.push_back(std::string("claim '") + Claim + "' on array " +
                          Arr + " contradicted by trace: " + Truth);
}

/// Checks every claim of \p Plan against the exact trace.
void checkClaims(const analysis::LoopPlan &Plan, const TraceResult &T,
                 sym::Bindings &B, GeneratedCase &C, OracleResult &Res) {
  sym::Context &Sym = C.sym();
  for (const analysis::ArrayPlan &AP : Plan.Arrays) {
    if (AP.ReadOnly)
      continue;
    std::string Arr = arrayName(C, AP.Array);
    if (cascadeClaims(AP.Flow, B, Sym, "flow", Arr, Res) ||
        usrClaimsEmpty(AP.FlowUSR, B))
      if (!flowIndependent(T, AP.Array))
        soundness(Res, "flow-independent", Arr,
                  "cross-iteration read/write overlap");
    if (cascadeClaims(AP.Output, B, Sym, "output", Arr, Res) ||
        usrClaimsEmpty(AP.OutputUSR, B))
      if (!outputIndependent(T, AP.Array))
        soundness(Res, "output-independent", Arr,
                  "cross-iteration write/write overlap");
    bool PrivClaim = cascadeClaims(AP.Priv, B, Sym, "priv", Arr, Res);
    if (PrivClaim)
      if (!privatizable(T, AP.Array))
        soundness(Res, "privatizable", Arr, "iteration with exposed reads");
    // The SLV cascade is built over first-writes (WF) only and is consumed
    // by the analyzer solely in conjunction with privatization (no exposed
    // reads implies every write is a first-write, making the WF test
    // exact). Judged in isolation it is vacuously true for RW-only arrays,
    // so mirror the conditioning; the cascade is still evaluated
    // unconditionally for compiled-vs-interpreted parity.
    if (cascadeClaims(AP.Slv, B, Sym, "slv", Arr, Res) && PrivClaim)
      if (!slvValid(T, AP.Array))
        soundness(Res, "static-last-value", Arr,
                  "write not covered by the final iteration");
    if (AP.HasReduction) {
      if (cascadeClaims(AP.RRed, B, Sym, "rred", Arr, Res))
        if (!redInjective(T, AP.Array))
          soundness(Res, "reduction-injective", Arr,
                    "two iterations update one element");
      if (cascadeClaims(AP.ExtRedFlow, B, Sym, "extred", Arr, Res) ||
          usrClaimsEmpty(AP.ExtRedUSR, B))
        if (!extRedSeparated(T, AP.Array))
          soundness(Res, "extred-separated", Arr,
                    "reduction and ordinary access share an element");
    }
  }
}

/// Compares two memory images. Arrays in \p RedArrays use the tolerance,
/// everything else must match bit for bit.
void compareMemory(const rt::Memory &Want, const rt::Memory &Got,
                   const std::set<sym::SymbolId> &RedArrays, double Tol,
                   const GeneratedCase &C, const char *Config,
                   OracleResult &Res) {
  for (const auto &KV : Want.arrays()) {
    auto It = Got.arrays().find(KV.first);
    if (It == Got.arrays().end() || It->second.size() != KV.second.size()) {
      Res.Parity.push_back(std::string("end state: array ") +
                           arrayName(C, KV.first) + " missing/resized in " +
                           Config);
      continue;
    }
    bool Red = RedArrays.count(KV.first) > 0;
    for (size_t I = 0; I < KV.second.size(); ++I) {
      double A = KV.second[I], Bv = It->second[I];
      bool Bad = Red ? std::abs(A - Bv) >
                           Tol * std::max(1.0, std::max(std::abs(A),
                                                        std::abs(Bv)))
                     : A != Bv;
      if (Bad) {
        std::ostringstream OS;
        OS << "end state: " << arrayName(C, KV.first) << "[" << I
           << "] sequential=" << A << " " << Config << "=" << Bv;
        Res.Parity.push_back(OS.str());
        break; // One element per array is enough signal.
      }
    }
  }
}

} // namespace

OracleResult fuzz::checkCase(GeneratedCase &C, const OracleOptions &O) {
  OracleResult Res;
  if (!C.Loop) {
    Res.Other.push_back("generator produced no loop");
    return Res;
  }

  rt::Memory M;
  sym::Bindings B;
  C.bind(M, B);

  // --- Front door -------------------------------------------------------
  std::vector<support::Diag> Diags =
      ir::collectLoopDiags(C.prog(), *C.Loop);
  bool Structural = !Diags.empty();
  if (!Structural) {
    std::vector<support::Diag> In =
        ir::collectInputDiags(C.prog(), *C.Loop, B);
    Diags.insert(Diags.end(), In.begin(), In.end());
  }
  for (const support::Diag &D : Diags)
    Res.DiagCodes.push_back(support::diagCodeName(D.Kind));
  if (!Diags.empty()) {
    Res.ValidationRejected = true;
    if (!C.Opts.Hostile)
      Res.Other.push_back("benign case rejected by validation: " +
                          Diags.front().Message);
    if (Structural) {
      // The session front door must reject with the structured error —
      // anything else (acceptance, assert, foreign exception) is a bug.
      try {
        session::SessionOptions SO;
        SO.Threads = 1;
        session::Session S(C.prog(), C.usrCtx(), SO);
        S.prepare(*C.Loop);
        Res.Other.push_back(
            "Session::prepare accepted a structurally invalid program");
      } catch (const support::ValidationError &) {
        // Expected.
      } catch (const std::exception &E) {
        Res.Other.push_back(
            std::string("Session::prepare threw a non-structured error: ") +
            E.what());
      }
    }
    return Res;
  }
  if (C.Opts.Hostile) {
    Res.Other.push_back("hostile case passed both validation gates: " +
                        C.HostileNote);
    return Res; // Running it could legitimately trip interpreter asserts.
  }

  // --- Analysis + claim differential ------------------------------------
  analysis::AnalyzerOptions AO;
  AO.HoistableContext = true; // Exercise the exact-test path too.
  session::SessionOptions SOBase;
  SOBase.Threads = O.Threads;
  SOBase.Analyzer = AO;

  try {
    session::Session SCompiled(C.prog(), C.usrCtx(), SOBase);
    const session::PreparedLoop &PL = SCompiled.prepare(*C.Loop);
    Res.ClassString = PL.Plan.classString();

    TraceResult T = traceLoop(C.prog(), *C.Loop, B);
    if (!T.Ok) {
      Res.Other.push_back("trace failed on a benign case: " + T.Error);
      return Res;
    }

    // Claims are judged under the bindings the governor evaluates them
    // with: after CIV-COMP populated the civ pseudo-arrays.
    {
      rt::Memory MC;
      sym::Bindings BC;
      C.bind(MC, BC);
      if (!PL.Plan.Civ.empty())
        rt::interpCivSlice(*C.Loop, PL.Plan.Civ, MC, BC);
      checkClaims(PL.Plan, T, BC, C, Res);
    }

    // --- Execution parity -----------------------------------------------
    std::set<sym::SymbolId> RedArrays = C.ReductionArrays;
    for (const auto &Iter : T.Iters)
      for (const auto &KV : Iter)
        if (!KV.second.RedWrites.empty())
          RedArrays.insert(KV.first);

    rt::Memory MSeq;
    sym::Bindings BSeq;
    C.bind(MSeq, BSeq);
    rt::interpSequential(*C.Loop, MSeq, BSeq);

    struct Config {
      const char *Name;
      bool CompiledPreds, CompiledUSRs, Block;
    };
    const Config Configs[] = {
        {"compiled+block", true, true, true},
        {"compiled+scalar", true, true, false},
        {"interpreted", false, false, true},
    };
    for (const Config &CF : Configs) {
      session::SessionOptions SO = SOBase;
      SO.UseCompiledPredicates = CF.CompiledPreds;
      SO.UseCompiledUSRs = CF.CompiledUSRs;
      SO.UseBlockEval = CF.Block;
      session::Session S(C.prog(), C.usrCtx(), SO);
      rt::Memory MX;
      sym::Bindings BX;
      C.bind(MX, BX);
      rt::ExecStats ES = S.run(*C.Loop, MX, BX);
      Res.GuardDemotions += ES.GuardDemotions;
      compareMemory(MSeq, MX, RedArrays, O.Tolerance, C, CF.Name, Res);
    }

    // --- Plan-cache round trip ------------------------------------------
    // Serialize the prepared plan, regenerate the case from its own recipe
    // (fresh contexts: a process restart in miniature), load into a fresh
    // session and execute through the adopted plan. The warm-started run
    // must be adopted — not silently re-analyzed — and must agree with the
    // sequential reference exactly like the fresh-compile configs.
    {
      std::stringstream PS(std::ios::in | std::ios::out |
                           std::ios::binary);
      {
        session::Session SSave(C.prog(), C.usrCtx(), SOBase);
        SSave.prepare(*C.Loop);
        SSave.savePlans(PS);
      }
      std::unique_ptr<GeneratedCase> C2 = fuzz::generate(C.Opts);
      session::Session SLoad(C2->prog(), C2->usrCtx(), SOBase);
      plan::LoadResult LR = SLoad.loadPlans(PS);
      for (const support::Diag &D : LR.Diags)
        Res.Other.push_back(std::string("plan round trip: ") +
                            support::diagCodeName(D.Kind) + ": " +
                            D.Message);
      rt::Memory MX;
      sym::Bindings BX;
      C2->bind(MX, BX);
      rt::ExecStats ES = SLoad.run(*C2->Loop, MX, BX);
      Res.GuardDemotions += ES.GuardDemotions;
      if (SLoad.numPlansWarmStarted() != 1) {
        std::string Msg =
            "plan round trip: loaded plan was not adopted";
        for (const support::Diag &D : SLoad.planDiags())
          Msg += std::string("; ") + support::diagCodeName(D.Kind) + ": " +
                 D.Message;
        Res.Other.push_back(Msg);
      }
      compareMemory(MSeq, MX, RedArrays, O.Tolerance, C, "plan-roundtrip",
                    Res);
    }
  } catch (const std::exception &E) {
    Res.Other.push_back(std::string("engine threw on a benign case: ") +
                        E.what());
  }
  return Res;
}
