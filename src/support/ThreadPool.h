//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a blocked-range parallelFor, plus a
/// bounded MPMC work queue the pool can drain. This is the execution
/// substrate standing in for the paper's OpenMP runtime: the executor
/// (src/rt) maps conditionally-parallelized loops onto it, and the serving
/// layer (src/serve) feeds execution requests through the bounded queue.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_THREADPOOL_H
#define HALO_SUPPORT_THREADPOOL_H

#include "support/CancelToken.h"
#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

namespace halo {

/// Bounded multi-producer / multi-consumer queue of tasks.
///
/// The serving layer's backpressure point: `push` blocks while the queue
/// is at capacity (closed-loop clients slow down instead of ballooning
/// memory), `tryPush` fails instead (load-shedding callers count a
/// rejection), and `pop` blocks until a task arrives or the queue is
/// closed. After close(), producers are refused but consumers still drain
/// every task already queued — pop() returns an empty function only once
/// the queue is both closed and empty, so no accepted task is dropped.
///
/// Shutdown ordering contract (what serve::Engine::shutdown() relies on):
///   1. close() the queue — new producers are refused from this point on;
///   2. wait for consumers to drain (every pop() eventually returns empty,
///      exactly once per consumer, after the backlog is exhausted);
///   3. join/destroy the consumers.
/// close() is strictly idempotent: a second (or racing) close() is a
/// no-op — it neither re-notifies nor disturbs consumers mid-drain — so
/// an explicit shutdown() racing a destructor, or two shutdown() calls,
/// is safe. Producers may race close() freely: each push either lands
/// before the close (and will be drained) or returns false.
class BoundedWorkQueue {
public:
  /// \p Capacity is the maximum number of queued (not yet popped) tasks;
  /// it must be >= 1.
  explicit BoundedWorkQueue(size_t Capacity);

  BoundedWorkQueue(const BoundedWorkQueue &) = delete;
  BoundedWorkQueue &operator=(const BoundedWorkQueue &) = delete;

  /// Enqueues \p Task, blocking while the queue is full. Returns false
  /// (without enqueueing) when the queue is closed.
  bool push(std::function<void()> Task);

  /// Enqueues \p Task only if there is room right now. Returns false when
  /// the queue is full or closed.
  bool tryPush(std::function<void()> Task);

  /// Dequeues the oldest task, blocking while the queue is empty and open.
  /// Returns an empty function when the queue is closed and fully drained.
  std::function<void()> pop();

  /// Closes the queue: subsequent pushes fail, pending pops drain the
  /// remaining tasks and then return empty. Idempotent.
  void close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return Capacity; }
  /// High-water mark of the queue depth (serving-pressure telemetry).
  size_t peakDepth() const;

private:
  const size_t Capacity;
  /// Guards every mutable field below (the queue is one monitor).
  mutable support::Mutex Mutex;
  support::CondVar NotFull;
  support::CondVar NotEmpty;
  std::queue<std::function<void()>> Tasks HALO_GUARDED_BY(Mutex);
  size_t Peak HALO_GUARDED_BY(Mutex) = 0;
  bool Closed HALO_GUARDED_BY(Mutex) = false;
};

/// Fixed-size pool of worker threads.
///
/// Workers are spawned once in the constructor and joined in the destructor;
/// `run` enqueues a task, `parallelFor` splits an iteration range into one
/// contiguous chunk per worker and blocks until all chunks finish. With
/// NumThreads == 1 `parallelFor` degenerates to an inline sequential loop so
/// that single-threaded baselines pay no synchronization cost.
///
/// Concurrent parallelFor/parallelForBlocked/parallelAllOf callers on one
/// pool do not corrupt each other (the task queue is locked; every chunk
/// runs exactly once), but completion is NOT tracked per call: each
/// caller returns via wait(), which blocks until the pool is *globally*
/// idle. Under sustained load from other callers that wait can be
/// arbitrarily long. Callers that need isolated completion (e.g.
/// per-request fan-out under the serving engine) should use
/// NumThreads == 1 sessions (inline) or dedicated pools.
class ThreadPool {
public:
  /// Whether a 1-thread pool executes run() inline on the caller (the
  /// default, so single-threaded baselines pay no synchronization) or
  /// still spawns a real worker (required by long-running tasks like
  /// drainQueue(), which would otherwise block the caller forever).
  enum class SingleThread { Inline, Spawn };

  explicit ThreadPool(unsigned NumThreads,
                      SingleThread Mode = SingleThread::Inline);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return Workers.empty() ? 1 : NumWorkers; }

  /// Enqueues \p Task for asynchronous execution.
  void run(std::function<void()> Task);

  /// Blocks until every enqueued task has completed.
  void wait();

  /// Turns every worker into a drainer of \p Q: numThreads() long-running
  /// tasks are spawned, each popping and executing tasks until the queue
  /// is closed and empty. Returns immediately; close the queue and then
  /// destroy (or wait() on) the pool to join the drainers. The pool must
  /// have real workers (construct with SingleThread::Spawn for a 1-thread
  /// pool) — an inline pool would execute the drain loop on the caller.
  void drainQueue(BoundedWorkQueue &Q);

  /// Executes Body(I) for I in [Lo, Hi) across the pool, one contiguous
  /// block per worker, and blocks until all blocks are done.
  void parallelFor(int64_t Lo, int64_t Hi,
                   const std::function<void(int64_t)> &Body);

  /// Block-level variant: Body(BlockLo, BlockHi, WorkerIndex) is invoked
  /// once per chunk. Useful for per-thread accumulators (reductions).
  void parallelForBlocked(
      int64_t Lo, int64_t Hi,
      const std::function<void(int64_t, int64_t, unsigned)> &Body);

  /// Chunked parallel and-reduction over [Lo, Hi): Body(BlockLo, BlockHi,
  /// BlockIndex, Stop) evaluates one contiguous block and returns false to
  /// fail the reduction. Stop is raised as soon as any block fails so
  /// sibling blocks can bail out mid-range; every block is still invoked
  /// (callers that need exact first-failure semantics, like the compiled
  /// LoopAll evaluator, track their own failure frontier and may ignore
  /// Stop). Block indices are < numThreads(). Returns true iff every block
  /// returned true. Single-threaded pools run the whole range inline.
  ///
  /// \p Cancel, when non-null, is polled at the existing chunk
  /// boundaries: a fired token suppresses blocks that have not started
  /// yet (they count as failed and raise Stop) and makes the call return
  /// false. Callers that must distinguish "reduction is false" from
  /// "cancelled" re-check the token after the call and discard the
  /// result — a cancelled evaluation has no answer.
  bool parallelAllOf(int64_t Lo, int64_t Hi,
                     const std::function<bool(int64_t, int64_t, unsigned,
                                              std::atomic<bool> &)> &Body,
                     const support::CancelToken *Cancel = nullptr);

private:
  void workerLoop();

  unsigned NumWorkers = 1;
  /// Immutable after the constructor returns (worker threads are spawned
  /// once and joined in the destructor), so reads need no lock.
  std::vector<std::thread> Workers;
  /// Guards the task queue and its idle accounting (one monitor).
  support::Mutex Mutex;
  std::queue<std::function<void()>> Tasks HALO_GUARDED_BY(Mutex);
  support::CondVar TaskAvailable;
  support::CondVar AllDone;
  unsigned Active HALO_GUARDED_BY(Mutex) = 0;
  bool ShuttingDown HALO_GUARDED_BY(Mutex) = false;
};

} // namespace halo

#endif // HALO_SUPPORT_THREADPOOL_H
