//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a blocked-range parallelFor. This is
/// the execution substrate standing in for the paper's OpenMP runtime: the
/// executor (src/rt) maps conditionally-parallelized loops onto it.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_THREADPOOL_H
#define HALO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace halo {

/// Fixed-size pool of worker threads.
///
/// Workers are spawned once in the constructor and joined in the destructor;
/// `run` enqueues a task, `parallelFor` splits an iteration range into one
/// contiguous chunk per worker and blocks until all chunks finish. With
/// NumThreads == 1 `parallelFor` degenerates to an inline sequential loop so
/// that single-threaded baselines pay no synchronization cost.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return Workers.empty() ? 1 : NumWorkers; }

  /// Enqueues \p Task for asynchronous execution.
  void run(std::function<void()> Task);

  /// Blocks until every enqueued task has completed.
  void wait();

  /// Executes Body(I) for I in [Lo, Hi) across the pool, one contiguous
  /// block per worker, and blocks until all blocks are done.
  void parallelFor(int64_t Lo, int64_t Hi,
                   const std::function<void(int64_t)> &Body);

  /// Block-level variant: Body(BlockLo, BlockHi, WorkerIndex) is invoked
  /// once per chunk. Useful for per-thread accumulators (reductions).
  void parallelForBlocked(
      int64_t Lo, int64_t Hi,
      const std::function<void(int64_t, int64_t, unsigned)> &Body);

  /// Chunked parallel and-reduction over [Lo, Hi): Body(BlockLo, BlockHi,
  /// BlockIndex, Stop) evaluates one contiguous block and returns false to
  /// fail the reduction. Stop is raised as soon as any block fails so
  /// sibling blocks can bail out mid-range; every block is still invoked
  /// (callers that need exact first-failure semantics, like the compiled
  /// LoopAll evaluator, track their own failure frontier and may ignore
  /// Stop). Block indices are < numThreads(). Returns true iff every block
  /// returned true. Single-threaded pools run the whole range inline.
  bool parallelAllOf(int64_t Lo, int64_t Hi,
                     const std::function<bool(int64_t, int64_t, unsigned,
                                              std::atomic<bool> &)> &Body);

private:
  void workerLoop();

  unsigned NumWorkers = 1;
  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TaskAvailable;
  std::condition_variable AllDone;
  unsigned Active = 0;
  bool ShuttingDown = false;
};

} // namespace halo

#endif // HALO_SUPPORT_THREADPOOL_H
