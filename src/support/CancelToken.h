//===- support/CancelToken.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A latching cancellation token with an optional deadline, threaded from
/// the serving layer (serve::Request) through rt::ExecContext down to the
/// chunk boundaries of ThreadPool::parallelAllOf and the chunked
/// USR-emptiness sweep. Cancellation is cooperative: code polls
/// stopRequested() at natural boundaries (cascade stages, exact-test
/// chunks, between repeats) and unwinds without producing a result. A
/// token never forces partial effects to become visible — callers abort
/// *between* units of work, so memory is either untouched or reflects a
/// fully-completed execution.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_CANCELTOKEN_H
#define HALO_SUPPORT_CANCELTOKEN_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace halo {
namespace support {

/// Latching stop-signal shared between a requester and an execution.
///
/// The state machine only moves away from Live, never back: once a token
/// observes its deadline in the past it latches Expired; once cancel() is
/// called it latches Cancelled. The first latched reason wins and is the
/// one reported — a request that was cancelled and *then* passed its
/// deadline still classifies as Cancelled. Tokens may be chained: a child
/// token (e.g. the engine's per-request deadline token) reports the
/// parent's state when the parent fires first, so a caller-held token
/// cancels everything derived from it.
///
/// All member functions are thread-safe; polling is one relaxed atomic
/// load on the fast path.
class CancelToken {
public:
  /// Why (or whether) the token has fired. Live means "keep going".
  enum class State : uint8_t { Live = 0, Cancelled = 1, Expired = 2 };

  CancelToken() = default;

  /// A token that expires at \p Deadline (steady clock), optionally
  /// chained under \p Parent whose firing also stops this token.
  explicit CancelToken(std::chrono::steady_clock::time_point Deadline,
                       const CancelToken *Parent = nullptr)
      : Deadline(Deadline), HasDeadline(true), Parent(Parent) {}

  /// A deadline-less token chained under \p Parent.
  explicit CancelToken(const CancelToken *Parent) : Parent(Parent) {}

  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Requests cancellation. Latches: later deadline expiry does not
  /// change the reported reason. Safe to call from any thread, any
  /// number of times.
  void cancel() const noexcept {
    uint8_t Expected = static_cast<uint8_t>(State::Live);
    Latched.compare_exchange_strong(
        Expected, static_cast<uint8_t>(State::Cancelled),
        std::memory_order_relaxed, std::memory_order_relaxed);
  }

  /// Current state, latching Expired when the deadline has passed and
  /// inheriting the parent's state when the parent fired first.
  State state() const noexcept {
    uint8_t S = Latched.load(std::memory_order_relaxed);
    if (S != static_cast<uint8_t>(State::Live))
      return static_cast<State>(S);
    if (Parent) {
      State PS = Parent->state();
      if (PS != State::Live) {
        uint8_t Expected = static_cast<uint8_t>(State::Live);
        Latched.compare_exchange_strong(Expected, static_cast<uint8_t>(PS),
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed);
        return static_cast<State>(
            Latched.load(std::memory_order_relaxed));
      }
    }
    if (HasDeadline && std::chrono::steady_clock::now() >= Deadline) {
      uint8_t Expected = static_cast<uint8_t>(State::Live);
      Latched.compare_exchange_strong(
          Expected, static_cast<uint8_t>(State::Expired),
          std::memory_order_relaxed, std::memory_order_relaxed);
      return static_cast<State>(Latched.load(std::memory_order_relaxed));
    }
    return State::Live;
  }

  /// True once the token has fired for any reason. The polling entry
  /// point for executors: cheap when Live with no deadline/parent.
  bool stopRequested() const noexcept { return state() != State::Live; }

private:
  mutable std::atomic<uint8_t> Latched{static_cast<uint8_t>(State::Live)};
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;
  const CancelToken *Parent = nullptr;
};

/// Null-safe poll helper: a missing token never stops anything.
inline bool stopRequested(const CancelToken *T) noexcept {
  return T && T->stopRequested();
}

} // namespace support
} // namespace halo

#endif // HALO_SUPPORT_CANCELTOKEN_H
