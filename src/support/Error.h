//===- support/Error.h - Assertions and unreachable markers ----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `halo_unreachable` marks code paths that must never execute; in debug
/// builds it aborts with a message, in release builds it is an optimizer
/// hint. `support::Diag` / `support::ValidationError` are the structured
/// diagnostics the front door (`ir::validateLoop`, `Session::prepare`)
/// raises for malformed untrusted input instead of tripping asserts or UB.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_ERROR_H
#define HALO_SUPPORT_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace halo {

[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

namespace support {

/// One structured validation finding about an untrusted `ir::Program`.
/// Collected by `ir::validateLoop` / `ir::validateBindings` and carried by
/// `ValidationError` out of `Session::prepare`.
struct Diag {
  /// What went wrong. Every code corresponds to an input shape that would
  /// otherwise reach an assert or undefined behavior deeper in the
  /// pipeline.
  enum class Code {
    UndeclaredArray,  ///< Array referenced but never declared in scope.
    UnboundScalar,    ///< Free scalar with no binding at execute time.
    NonPositiveTrip,  ///< Constant loop bounds with Hi < Lo.
    OobSubscript,     ///< Subscript provably outside a constant-size array.
    DuplicateLoopVar, ///< Nested loop reuses an enclosing loop's variable.
    CivIsLoopVar,     ///< CIV increment targets a loop variable.
    NegativeCivStep,  ///< CIV increment amount is a negative constant.
    MissingCallee,    ///< Call statement without a resolvable subroutine.
    CallCycle,        ///< Recursive call chain (unsupported).
    ExprTooDeep,      ///< Expression nesting beyond the structural cap.
    PredTooDeep,      ///< Predicate nesting beyond the structural cap.
    MalformedAccess,  ///< Array access with a null offset expression.
    PlanBadMagic,     ///< Plan-cache stream does not start with "HPLN".
    PlanVersionSkew,  ///< Plan-cache format version differs from ours.
    PlanCorrupt,      ///< Plan-cache CRC/length/index integrity failure.
    PlanKeyMismatch,  ///< Serialized plan key does not match the live loop.
  };

  Code Kind;
  /// Human-readable one-liner naming the offending symbol/statement.
  std::string Message;

  Diag(Code K, std::string Msg) : Kind(K), Message(std::move(Msg)) {}
};

/// Returns the stable mnemonic for a diagnostic code ("UndeclaredArray",
/// "NonPositiveTrip", ...), used in error text and fuzz-corpus files.
const char *diagCodeName(Diag::Code C);

/// Thrown by `Session::prepare` (and usable directly via
/// `ir::validateLoop`) when an untrusted program fails structural
/// validation. Carries every finding, not just the first; `what()` joins
/// them into one message.
class ValidationError : public std::runtime_error {
public:
  explicit ValidationError(std::vector<Diag> Ds)
      : std::runtime_error(joinMessage(Ds)), Diags(std::move(Ds)) {}

  /// All findings, in program order.
  const std::vector<Diag> &diags() const { return Diags; }

  /// True if any finding has code \p C.
  bool has(Diag::Code C) const {
    for (const Diag &D : Diags)
      if (D.Kind == C)
        return true;
    return false;
  }

private:
  static std::string joinMessage(const std::vector<Diag> &Ds);

  std::vector<Diag> Diags;
};

} // namespace support
} // namespace halo

#ifndef NDEBUG
#define halo_unreachable(msg)                                                  \
  ::halo::unreachableInternal(msg, __FILE__, __LINE__)
#elif defined(__GNUC__)
#define halo_unreachable(msg) __builtin_unreachable()
#else
#define halo_unreachable(msg) ::std::abort()
#endif

#endif // HALO_SUPPORT_ERROR_H
