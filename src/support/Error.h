//===- support/Error.h - Assertions and unreachable markers ----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `halo_unreachable` marks code paths that must never execute; in debug
/// builds it aborts with a message, in release builds it is an optimizer
/// hint.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_ERROR_H
#define HALO_SUPPORT_ERROR_H

#include <cstdio>
#include <cstdlib>

namespace halo {

[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace halo

#ifndef NDEBUG
#define halo_unreachable(msg)                                                  \
  ::halo::unreachableInternal(msg, __FILE__, __LINE__)
#elif defined(__GNUC__)
#define halo_unreachable(msg) __builtin_unreachable()
#else
#define halo_unreachable(msg) ::std::abort()
#endif

#endif // HALO_SUPPORT_ERROR_H
