//===- support/Hashing.h - Hash combinators --------------------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hash combinators used by the interning tables of the
/// sym / pdag / usr contexts.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_HASHING_H
#define HALO_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace halo {

/// Mixes \p V into the running hash \p Seed (boost::hash_combine flavour,
/// widened to 64 bits).
inline void hashCombine(std::size_t &Seed, std::size_t V) {
  Seed ^= V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

template <typename T> void hashCombine(std::size_t &Seed, const T *Ptr) {
  hashCombine(Seed, std::hash<const T *>{}(Ptr));
}

/// Hashes the half-open range [First, Last) into \p Seed.
template <typename It> void hashRange(std::size_t &Seed, It First, It Last) {
  for (It I = First; I != Last; ++I)
    hashCombine(Seed, std::hash<std::decay_t<decltype(*I)>>{}(*I));
}

} // namespace halo

#endif // HALO_SUPPORT_HASHING_H
