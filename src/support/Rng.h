//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fast, seedable generator used by property tests and
/// workload generators so that every run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_RNG_H
#define HALO_SUPPORT_RNG_H

#include <cstdint>

namespace halo {

/// Deterministic 64-bit generator (SplitMix64).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  uint64_t State;
};

} // namespace halo

#endif // HALO_SUPPORT_RNG_H
