//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

using namespace halo;

//===----------------------------------------------------------------------===//
// BoundedWorkQueue
//===----------------------------------------------------------------------===//

BoundedWorkQueue::BoundedWorkQueue(size_t Capacity)
    : Capacity(std::max<size_t>(1, Capacity)) {}

bool BoundedWorkQueue::push(std::function<void()> Task) {
  if (support::faultHit("queue.push"))
    return false; // Injected spurious rejection (reads as closed/full).
  {
    support::MutexLock Lock(Mutex);
    while (!Closed && Tasks.size() >= Capacity)
      NotFull.wait(Mutex);
    if (Closed)
      return false;
    Tasks.push(std::move(Task));
    Peak = std::max(Peak, Tasks.size());
  }
  NotEmpty.notify_one();
  return true;
}

bool BoundedWorkQueue::tryPush(std::function<void()> Task) {
  if (support::faultHit("queue.push"))
    return false; // Injected spurious rejection (reads as closed/full).
  {
    support::MutexLock Lock(Mutex);
    if (Closed || Tasks.size() >= Capacity)
      return false;
    Tasks.push(std::move(Task));
    Peak = std::max(Peak, Tasks.size());
  }
  NotEmpty.notify_one();
  return true;
}

std::function<void()> BoundedWorkQueue::pop() {
  std::function<void()> Task;
  {
    support::MutexLock Lock(Mutex);
    while (!Closed && Tasks.empty())
      NotEmpty.wait(Mutex);
    if (Tasks.empty())
      return nullptr; // Closed and drained.
    Task = std::move(Tasks.front());
    Tasks.pop();
  }
  NotFull.notify_one();
  return Task;
}

void BoundedWorkQueue::close() {
  {
    support::MutexLock Lock(Mutex);
    // Idempotent: a second (possibly racing) close() must not re-notify —
    // consumers between "saw Closed+empty" and returning rely on no
    // further wakeups arriving once the first close() has run.
    if (Closed)
      return;
    Closed = true;
  }
  NotFull.notify_all();
  NotEmpty.notify_all();
}

bool BoundedWorkQueue::closed() const {
  support::MutexLock Lock(Mutex);
  return Closed;
}

size_t BoundedWorkQueue::size() const {
  support::MutexLock Lock(Mutex);
  return Tasks.size();
}

size_t BoundedWorkQueue::peakDepth() const {
  support::MutexLock Lock(Mutex);
  return Peak;
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

ThreadPool::ThreadPool(unsigned NumThreads, SingleThread Mode) {
  NumWorkers = std::max(1u, NumThreads);
  // A single-threaded pool runs everything inline by default; no workers
  // needed. Queue drainers need a real thread even at NumWorkers == 1.
  if (NumWorkers == 1 && Mode == SingleThread::Inline)
    return;
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    support::MutexLock Lock(Mutex);
    ShuttingDown = true;
  }
  TaskAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      support::MutexLock Lock(Mutex);
      while (!ShuttingDown && Tasks.empty())
        TaskAvailable.wait(Mutex);
      if (Tasks.empty())
        return;
      Task = std::move(Tasks.front());
      Tasks.pop();
      ++Active;
    }
    Task();
    {
      support::MutexLock Lock(Mutex);
      --Active;
      if (Tasks.empty() && Active == 0)
        AllDone.notify_all();
    }
  }
}

void ThreadPool::run(std::function<void()> Task) {
  if (Workers.empty()) {
    Task();
    return;
  }
  {
    support::MutexLock Lock(Mutex);
    Tasks.push(std::move(Task));
  }
  TaskAvailable.notify_one();
}

void ThreadPool::drainQueue(BoundedWorkQueue &Q) {
  // Misuse guard kept in release builds too: an inline pool would run the
  // drain loop on the caller and never return.
  if (Workers.empty())
    throw std::logic_error(
        "drainQueue needs real workers (SingleThread::Spawn)");
  for (unsigned I = 0; I != NumWorkers; ++I)
    run([&Q] {
      while (std::function<void()> Task = Q.pop())
        Task();
    });
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  support::MutexLock Lock(Mutex);
  while (!Tasks.empty() || Active != 0)
    AllDone.wait(Mutex);
}

void ThreadPool::parallelFor(int64_t Lo, int64_t Hi,
                             const std::function<void(int64_t)> &Body) {
  parallelForBlocked(Lo, Hi, [&Body](int64_t BLo, int64_t BHi, unsigned) {
    for (int64_t I = BLo; I != BHi; ++I)
      Body(I);
  });
}

bool ThreadPool::parallelAllOf(
    int64_t Lo, int64_t Hi,
    const std::function<bool(int64_t, int64_t, unsigned, std::atomic<bool> &)>
        &Body,
    const support::CancelToken *Cancel) {
  std::atomic<bool> Stop{false};
  if (Lo >= Hi)
    return true;
  if (support::stopRequested(Cancel))
    return false;
  const int64_t Count = Hi - Lo;
  if (Workers.empty() || Count == 1)
    return Body(Lo, Hi, 0, Stop);
  std::atomic<bool> AllOk{true};
  const unsigned NumBlocks =
      static_cast<unsigned>(std::min<int64_t>(NumWorkers, Count));
  const int64_t Chunk = (Count + NumBlocks - 1) / NumBlocks;
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const int64_t BLo = Lo + static_cast<int64_t>(B) * Chunk;
    const int64_t BHi = std::min<int64_t>(BLo + Chunk, Hi);
    if (BLo >= BHi)
      break;
    run([&Body, &Stop, &AllOk, Cancel, BLo, BHi, B] {
      // Chunk-boundary cancellation poll: a fired token fails the
      // reduction without running the block, and Stop lets in-flight
      // sibling blocks bail at their own per-iteration frontier checks.
      if (support::stopRequested(Cancel) ||
          !Body(BLo, BHi, B, Stop)) {
        AllOk.store(false, std::memory_order_relaxed);
        Stop.store(true, std::memory_order_relaxed);
      }
    });
  }
  wait();
  return AllOk.load(std::memory_order_relaxed);
}

void ThreadPool::parallelForBlocked(
    int64_t Lo, int64_t Hi,
    const std::function<void(int64_t, int64_t, unsigned)> &Body) {
  if (Lo >= Hi)
    return;
  const int64_t Count = Hi - Lo;
  if (Workers.empty() || Count == 1) {
    Body(Lo, Hi, 0);
    return;
  }
  const unsigned NumBlocks =
      static_cast<unsigned>(std::min<int64_t>(NumWorkers, Count));
  const int64_t Chunk = (Count + NumBlocks - 1) / NumBlocks;
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const int64_t BLo = Lo + static_cast<int64_t>(B) * Chunk;
    const int64_t BHi = std::min<int64_t>(BLo + Chunk, Hi);
    if (BLo >= BHi)
      break;
    run([&Body, BLo, BHi, B] { Body(BLo, BHi, B); });
  }
  wait();
}
