//===- support/Sync.h - Annotated synchronization primitives ---*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clang Thread Safety Analysis capability wrappers over the std
/// synchronization primitives, plus the annotation macro set the rest of
/// the tree uses to state its lock-discipline contracts in a
/// machine-checkable form.
///
/// Every concurrency contract that used to live only in prose (which
/// mutex guards which fields, which functions require or forbid which
/// locks) is expressed through these types and macros and checked at
/// compile time by CI's `thread-safety` job (clang++ with
/// `-Werror=thread-safety -Wthread-safety-beta`). On non-Clang compilers
/// (and on Clang builds without the analysis enabled) every macro expands
/// to nothing and every wrapper is a zero-cost veneer, so the annotation
/// layer costs the gcc tier-1 build exactly nothing.
///
/// The capability map — which Mutex/SharedMutex guards which fields
/// across ThreadPool, FaultInjection, the rt caches, Session and the
/// serving Engine — is documented in docs/CONCURRENCY.md; the negative
/// battery proving the annotations reject the contract-violation classes
/// lives in tests/compile_fail/.
///
/// Usage notes:
///  - Guard fields with HALO_GUARDED_BY(M) / HALO_PT_GUARDED_BY(M) and
///    take locks through MutexLock / SharedLock / ExclusiveLock (scoped
///    capabilities) so the analysis can track acquisition through scopes.
///  - Condition waits name their mutex: `CV.wait(M)` requires M held and
///    is written as an explicit predicate re-check loop
///    (`while (!pred) CV.wait(M);`) — predicate lambdas are opaque to the
///    analysis, re-check loops are not.
///  - Functions that evaluate outside a cache lock (the probe-under-
///    mutex / evaluate-outside contract of rt/CompiledCascade.h) say so
///    with HALO_EXCLUDES(M).
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_SYNC_H
#define HALO_SUPPORT_SYNC_H

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

//===----------------------------------------------------------------------===//
// Annotation macros
//===----------------------------------------------------------------------===//

// Clang exposes the analysis through attributes; everything else compiles
// them away. (The attribute spellings below are the stable set from the
// Clang Thread Safety Analysis documentation.)
#if defined(__clang__) && (!defined(SWIG))
#define HALO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HALO_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/// Marks a type as a capability (a lock). The string names the capability
/// kind in diagnostics ("mutex").
#define HALO_CAPABILITY(x) HALO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability, so the analysis tracks the capability through the
/// object's scope.
#define HALO_SCOPED_CAPABILITY HALO_THREAD_ANNOTATION(scoped_lockable)

/// The field may only be accessed while holding the given capability
/// (shared suffices for reads, exclusive is required for writes).
#define HALO_GUARDED_BY(x) HALO_THREAD_ANNOTATION(guarded_by(x))

/// The pointee of this pointer field may only be accessed while holding
/// the given capability.
#define HALO_PT_GUARDED_BY(x) HALO_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the given capabilities
/// exclusively; it neither acquires nor releases them.
#define HALO_REQUIRES(...) \
  HALO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared-hold variant of HALO_REQUIRES.
#define HALO_REQUIRES_SHARED(...) \
  HALO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively and holds it on
/// return.
#define HALO_ACQUIRE(...) \
  HALO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Shared-acquisition variant of HALO_ACQUIRE.
#define HALO_ACQUIRE_SHARED(...) \
  HALO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases an exclusively-held capability.
#define HALO_RELEASE(...) \
  HALO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function releases a shared-held capability.
#define HALO_RELEASE_SHARED(...) \
  HALO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function releases a capability held in either mode (the scoped-
/// guard destructor annotation).
#define HALO_RELEASE_GENERIC(...) \
  HALO_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function attempts the acquisition and reports success with the
/// given boolean value.
#define HALO_TRY_ACQUIRE(...) \
  HALO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Shared variant of HALO_TRY_ACQUIRE.
#define HALO_TRY_ACQUIRE_SHARED(...) \
  HALO_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called while holding the given capabilities
/// (deadlock prevention, and the "evaluation runs outside the cache
/// lock" contracts).
#define HALO_EXCLUDES(...) HALO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability (accessor
/// annotations).
#define HALO_RETURN_CAPABILITY(x) HALO_THREAD_ANNOTATION(lock_returned(x))

/// Asserts (at runtime, from the analysis' point of view) that the
/// calling thread already holds the capability.
#define HALO_ASSERT_CAPABILITY(x) \
  HALO_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: turns the analysis off for one function whose locking is
/// deliberately too dynamic to annotate. Every use must carry a comment
/// justifying it; the repo linter and reviewers treat bare uses as bugs.
#define HALO_NO_THREAD_SAFETY_ANALYSIS \
  HALO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace halo {
namespace support {

//===----------------------------------------------------------------------===//
// Capability types
//===----------------------------------------------------------------------===//

/// std::mutex as an annotated capability. Prefer MutexLock over manual
/// lock()/unlock() pairs so scopes stay exception-safe and the analysis
/// can follow them.
class HALO_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() HALO_ACQUIRE() { M.lock(); }
  void unlock() HALO_RELEASE() { M.unlock(); }
  bool try_lock() HALO_TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  std::mutex M;
};

/// std::shared_mutex as an annotated capability: exclusive for writers
/// (config/analysis phases), shared for readers (the serving path).
class HALO_CAPABILITY("mutex") SharedMutex {
public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex &) = delete;
  SharedMutex &operator=(const SharedMutex &) = delete;

  void lock() HALO_ACQUIRE() { M.lock(); }
  void unlock() HALO_RELEASE() { M.unlock(); }
  bool try_lock() HALO_TRY_ACQUIRE(true) { return M.try_lock(); }

  void lock_shared() HALO_ACQUIRE_SHARED() { M.lock_shared(); }
  void unlock_shared() HALO_RELEASE_SHARED() { M.unlock_shared(); }
  bool try_lock_shared() HALO_TRY_ACQUIRE_SHARED(true) {
    return M.try_lock_shared();
  }

private:
  std::shared_mutex M;
};

//===----------------------------------------------------------------------===//
// Scoped guards
//===----------------------------------------------------------------------===//

/// Scoped exclusive lock over a Mutex (the std::lock_guard replacement
/// the analysis can track).
class HALO_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) HALO_ACQUIRE(M) : Mu(M) { Mu.lock(); }
  ~MutexLock() HALO_RELEASE() { Mu.unlock(); }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &Mu;
};

/// Scoped exclusive lock over a SharedMutex (writer side).
class HALO_SCOPED_CAPABILITY ExclusiveLock {
public:
  explicit ExclusiveLock(SharedMutex &M) HALO_ACQUIRE(M) : Mu(M) {
    Mu.lock();
  }
  ~ExclusiveLock() HALO_RELEASE() { Mu.unlock(); }

  ExclusiveLock(const ExclusiveLock &) = delete;
  ExclusiveLock &operator=(const ExclusiveLock &) = delete;

private:
  SharedMutex &Mu;
};

/// Scoped shared lock over a SharedMutex (reader side).
class HALO_SCOPED_CAPABILITY SharedLock {
public:
  explicit SharedLock(SharedMutex &M) HALO_ACQUIRE_SHARED(M) : Mu(M) {
    Mu.lock_shared();
  }
  ~SharedLock() HALO_RELEASE_GENERIC() { Mu.unlock_shared(); }

  SharedLock(const SharedLock &) = delete;
  SharedLock &operator=(const SharedLock &) = delete;

private:
  SharedMutex &Mu;
};

/// Scoped try-lock over a Mutex: query owns() before touching guarded
/// state. The destructor releases only on successful acquisition.
class HALO_SCOPED_CAPABILITY TryMutexLock {
public:
  explicit TryMutexLock(Mutex &M) HALO_TRY_ACQUIRE(true, M)
      : Mu(M), Owned(M.try_lock()) {}
  ~TryMutexLock() HALO_RELEASE() {
    if (Owned)
      Mu.unlock();
  }

  /// Whether the constructor acquired the capability.
  bool owns() const { return Owned; }

  TryMutexLock(const TryMutexLock &) = delete;
  TryMutexLock &operator=(const TryMutexLock &) = delete;

private:
  Mutex &Mu;
  bool Owned;
};

//===----------------------------------------------------------------------===//
// Condition variable
//===----------------------------------------------------------------------===//

/// Condition variable waiting directly on an annotated Mutex, so the
/// "the gate mutex must be held across the wait" contract is stated in
/// the signature and enforced by the analysis (compile_fail:
/// condvar_wait_without_gate).
///
/// There is deliberately no predicate-lambda overload: waits are written
/// as explicit re-check loops under the held mutex,
///
///   MutexLock L(M);
///   while (!pred)
///     CV.wait(M);
///
/// which keeps the guarded predicate reads visible to the analysis (a
/// lambda body would be analyzed without the caller's lock set).
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Atomically releases \p M, sleeps, and re-acquires \p M before
  /// returning. Spurious wakeups happen; always re-check the predicate.
  void wait(Mutex &M) HALO_REQUIRES(M) { CV.wait(M); }

  void notify_one() noexcept { CV.notify_one(); }
  void notify_all() noexcept { CV.notify_all(); }

private:
  // condition_variable_any waits on any BasicLockable — here the
  // annotated Mutex itself, which keeps the capability visible to the
  // analysis across the wait (a std::condition_variable would need the
  // raw std::mutex and lose it).
  std::condition_variable_any CV;
};

} // namespace support
} // namespace halo

#endif // HALO_SUPPORT_SYNC_H
