//===- support/Casting.h - LLVM-style isa/cast/dyn_cast --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled, opt-in RTTI in the style of llvm/Support/Casting.h.
/// A class hierarchy participates by defining a discriminator (usually an
/// enum returned by getKind()) and `static bool classof(const Base *)` on
/// each subclass.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_CASTING_H
#define HALO_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace halo {

/// Returns true iff \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace halo

#endif // HALO_SUPPORT_CASTING_H
