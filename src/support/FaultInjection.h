//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable, deterministic fault-injection registry for the chaos suite.
/// Production code marks *named injection points* (faultAt("serve.worker.
/// task") etc.); tests arm the global injector with a seed and per-point
/// failure rates, then drive load and assert that every outcome is
/// classified, no worker dies, and results stay bit-identical. When the
/// injector is disarmed (the default, and the only state outside tests)
/// every injection point is one relaxed atomic load — the clean path pays
/// essentially nothing.
///
/// Determinism: whether the Nth *check* of a point fires depends only on
/// (seed, point name, N), not on wall-clock or scheduling, so a failing
/// chaos run replays from its logged seed. Under concurrency the
/// interleaving of checks is still scheduler-dependent, but the multiset
/// of fired faults for a given per-point check count is not.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_SUPPORT_FAULTINJECTION_H
#define HALO_SUPPORT_FAULTINJECTION_H

#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace halo {
namespace support {

/// The exception thrown by throwing injection points. Distinguishable
/// from organic failures so tests can assert the classification path
/// rather than the fault's origin.
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(const std::string &Point)
      : std::runtime_error("injected fault at " + Point) {}
};

/// Process-wide registry of named injection points.
///
/// Tests arm() it with a seed and a default rate, optionally override
/// individual points with armPoint()/failNext(), run their scenario, read
/// per-point Checked/Fired counts, and disarm(). Arming and disarming
/// must not race active checks from other threads that are mid-scenario;
/// the intended shape is arm → drive load → quiesce → inspect → disarm.
class FaultInjector {
public:
  /// Counters for one injection point (snapshot, see stats()).
  struct PointStats {
    uint64_t Checked = 0; ///< Times the point was evaluated while armed.
    uint64_t Fired = 0;   ///< Times the point decided to fail.
  };

  /// The process-wide injector used by all faultAt()/shouldFail() sites.
  static FaultInjector &instance();

  /// Arms the injector: every known point fails with probability
  /// \p DefaultRate (0..1), deterministically derived from \p Seed.
  /// Resets all per-point counters and overrides.
  void arm(uint64_t Seed, double DefaultRate);

  /// Overrides the failure rate of one point (points not overridden use
  /// the default rate given to arm()). Implies armed.
  void armPoint(const std::string &Point, double Rate);

  /// Makes the next \p N checks of \p Point fail and later checks pass
  /// (until re-armed) — the deterministic knob for retry tests. Implies
  /// armed.
  void failNext(const std::string &Point, uint64_t N);

  /// Disarms every point and clears overrides; checks return to the
  /// one-atomic-load fast path.
  void disarm();

  /// Whether any point may fire. The fast-path gate.
  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

  /// Decides whether the current check of \p Point fails. Counts the
  /// check either way. Returns false instantly when disarmed.
  bool shouldFail(const char *Point);

  /// Snapshot of per-point counters accumulated since the last arm().
  std::map<std::string, PointStats> stats() const;

private:
  FaultInjector() = default;

  struct Point {
    double Rate = 0.0;
    uint64_t FailNext = 0;  ///< Checks forced to fail before Rate applies.
    uint64_t Sequence = 0;  ///< Per-point check counter (determinism).
    uint64_t Checked = 0;
    uint64_t Fired = 0;
  };

  /// The disarmed fast path reads only this; everything else is guarded.
  std::atomic<bool> Armed{false};
  mutable Mutex InjMutex;
  uint64_t Seed HALO_GUARDED_BY(InjMutex) = 0;
  double DefaultRate HALO_GUARDED_BY(InjMutex) = 0.0;
  std::map<std::string, Point> Points HALO_GUARDED_BY(InjMutex);
};

/// Throwing injection point: throws FaultInjectedError when the armed
/// injector decides this check fails; no-op otherwise. Use at sites where
/// an organic failure would also surface as an exception.
inline void faultAt(const char *Point) {
  FaultInjector &FI = FaultInjector::instance();
  if (FI.enabled() && FI.shouldFail(Point))
    throw FaultInjectedError(Point);
}

/// Non-throwing injection point for sites that report failure by value
/// (e.g. a queue push pretending to be full). True = inject a failure.
inline bool faultHit(const char *Point) {
  FaultInjector &FI = FaultInjector::instance();
  return FI.enabled() && FI.shouldFail(Point);
}

} // namespace support
} // namespace halo

#endif // HALO_SUPPORT_FAULTINJECTION_H
