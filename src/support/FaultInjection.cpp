//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

using namespace halo;
using namespace halo::support;

namespace {

/// splitmix64 finalizer: the per-check decision hash. Good avalanche from
/// a trivially-constructed input, no state.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t fnv1a(const char *S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (; *S; ++S)
    H = (H ^ static_cast<unsigned char>(*S)) * 0x100000001b3ULL;
  return H;
}

} // namespace

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  return FI;
}

void FaultInjector::arm(uint64_t NewSeed, double Rate) {
  MutexLock Lock(InjMutex);
  Seed = NewSeed;
  DefaultRate = Rate;
  Points.clear();
  Armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::armPoint(const std::string &Name, double Rate) {
  MutexLock Lock(InjMutex);
  Point &P = Points[Name];
  P.Rate = Rate;
  P.FailNext = 0;
  Armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::failNext(const std::string &Name, uint64_t N) {
  MutexLock Lock(InjMutex);
  Point &P = Points[Name];
  P.Rate = 0.0;
  P.FailNext = N;
  Armed.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  MutexLock Lock(InjMutex);
  Armed.store(false, std::memory_order_relaxed);
  Points.clear();
  DefaultRate = 0.0;
}

bool FaultInjector::shouldFail(const char *Name) {
  MutexLock Lock(InjMutex);
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  auto It = Points.find(Name);
  if (It == Points.end()) {
    Point Fresh;
    Fresh.Rate = DefaultRate;
    It = Points.emplace(Name, Fresh).first;
  }
  Point &P = It->second;
  ++P.Checked;
  uint64_t Seq = P.Sequence++;
  bool Fail;
  if (P.FailNext > 0) {
    --P.FailNext;
    Fail = true;
  } else if (P.Rate <= 0.0) {
    Fail = false;
  } else if (P.Rate >= 1.0) {
    Fail = true;
  } else {
    // (seed, point, sequence) -> uniform in [0,1): replayable regardless
    // of thread interleaving for a given per-point check count.
    uint64_t H = mix64(Seed ^ fnv1a(Name) ^ (Seq * 0x9e3779b97f4a7c15ULL));
    double U = static_cast<double>(H >> 11) * 0x1.0p-53;
    Fail = U < P.Rate;
  }
  if (Fail)
    ++P.Fired;
  return Fail;
}

std::map<std::string, FaultInjector::PointStats> FaultInjector::stats() const {
  MutexLock Lock(InjMutex);
  std::map<std::string, PointStats> Out;
  for (const auto &KV : Points)
    Out[KV.first] = PointStats{KV.second.Checked, KV.second.Fired};
  return Out;
}
