//===- support/Error.cpp - Structured diagnostics -------------------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

namespace halo {
namespace support {

const char *diagCodeName(Diag::Code C) {
  switch (C) {
  case Diag::Code::UndeclaredArray:
    return "UndeclaredArray";
  case Diag::Code::UnboundScalar:
    return "UnboundScalar";
  case Diag::Code::NonPositiveTrip:
    return "NonPositiveTrip";
  case Diag::Code::OobSubscript:
    return "OobSubscript";
  case Diag::Code::DuplicateLoopVar:
    return "DuplicateLoopVar";
  case Diag::Code::CivIsLoopVar:
    return "CivIsLoopVar";
  case Diag::Code::NegativeCivStep:
    return "NegativeCivStep";
  case Diag::Code::MissingCallee:
    return "MissingCallee";
  case Diag::Code::CallCycle:
    return "CallCycle";
  case Diag::Code::ExprTooDeep:
    return "ExprTooDeep";
  case Diag::Code::PredTooDeep:
    return "PredTooDeep";
  case Diag::Code::MalformedAccess:
    return "MalformedAccess";
  case Diag::Code::PlanBadMagic:
    return "PlanBadMagic";
  case Diag::Code::PlanVersionSkew:
    return "PlanVersionSkew";
  case Diag::Code::PlanCorrupt:
    return "PlanCorrupt";
  case Diag::Code::PlanKeyMismatch:
    return "PlanKeyMismatch";
  }
  halo_unreachable("unknown Diag::Code");
}

std::string ValidationError::joinMessage(const std::vector<Diag> &Ds) {
  std::string Msg = "invalid program:";
  for (const Diag &D : Ds) {
    Msg += " [";
    Msg += diagCodeName(D.Kind);
    Msg += "] ";
    Msg += D.Message;
    Msg += ";";
  }
  return Msg;
}

} // namespace support
} // namespace halo
