//===- pdag/PredCompile.h - Predicate bytecode compiler --------*- C++ -*-===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles an interned Pred DAG into a flat, cache-friendly bytecode and
/// evaluates it against concrete bindings. This is the compile-once /
/// run-many half of the runtime cascade machinery: the tree-walking
/// interpreter in PredEval.h re-dispatches on PredKind and re-resolves
/// every symbol through hash lookups on each LoopAll iteration, which
/// dominates the paper's RTov metric for O(N) tests. The compiled form
/// eliminates both costs:
///
///  - every scalar and index-array symbol is resolved to a dense frame
///    slot once per evaluation (loop variables are written straight into
///    their slot, never through sym::Bindings),
///  - leaf expressions are lowered to a stack-machine bytecode with
///    constant operands folded at compile time,
///  - and/or short-circuiting and LoopAll early exit become jumps over a
///    flat instruction array,
///  - sub-predicates that are invariant w.r.t. every enclosing LoopAll
///    variable are memoized in a per-evaluation table (evaluated on the
///    first iteration, served from cache afterwards),
///  - O(N) LoopAll ranges can be chunk-evaluated across a ThreadPool with
///    an atomic first-failure frontier, preserving the interpreter's
///    exact result (including the conservative-unknown cases).
///
/// Results agree with tryEvalPred on every input; the property tests in
/// tests/pred_compile_test.cpp cross-check the two evaluators on random
/// predicate programs.
///
//===----------------------------------------------------------------------===//

#ifndef HALO_PDAG_PREDCOMPILE_H
#define HALO_PDAG_PREDCOMPILE_H

#include "pdag/ExprCode.h"
#include "pdag/Pred.h"
#include "pdag/PredEval.h"
#include "support/ThreadPool.h"
#include "sym/Eval.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace halo {
namespace plan {
struct PlanCodec;
} // namespace plan
namespace pdag {

/// Lane count of the predicate block tier (one runBodyBlock dispatch
/// covers this many root-loop iterations); equal to the expression
/// bytecode's lane count by construction.
inline constexpr unsigned PredBlockWidth = ExprBlockWidth;

/// Per-evaluation selection of the block-vectorized tier.
enum class BlockEval : uint8_t {
  Off,  ///< always run the scalar bytecode tier
  Auto, ///< block tier when the compiled shape profits: block-compatible
        ///< root loop, loop-variant array accesses in the body, and a
        ///< trip count of at least 2 * PredBlockWidth
  Force ///< block tier whenever structurally possible (any trip count);
        ///< for tests that must exercise short-trip block sweeps
};

/// One predicate-bytecode instruction (operates on a tri-state stack:
/// false / true / unknown, where unknown is the conservative result of an
/// unbound symbol or out-of-bounds array read).
struct PredInstr {
  enum class Op : uint8_t {
    PushBool,    ///< push tri-state Aux (constant-folded sub-predicate)
    LeafCmp,     ///< eval expr [A,B); push (value rel 0), rel in Aux
    LeafDivides, ///< eval divisor [A,B) and value [C,D); Aux = negated
    AndStep,     ///< pop child, conjoin into top; jump A when decided false
    OrStep,      ///< pop child, disjoin into top; jump A when decided true
    LoopBegin,   ///< enter LoopAll A (see CompiledLoop)
    LoopStep,    ///< advance LoopAll A or finish it
    MemoCheck,   ///< memo slot A set: push cached value and jump B
    MemoStore,   ///< memo slot A := top of stack
    CallSub,     ///< call the shared sub-predicate at ip A (DAG sharing:
                 ///< multiply-referenced nodes compile once, keeping code
                 ///< size linear in the DAG, not the expanded tree)
    Ret,         ///< return to the calling site
  };
  Op Opcode;
  uint32_t A = 0, B = 0, C = 0, D = 0;
  uint8_t Aux = 0;
};

/// Side table entry for a LoopAll node: bound-variable slot, bound
/// expressions and the body's instruction range.
struct CompiledLoop {
  uint32_t LoExprBegin = 0, LoExprEnd = 0;
  uint32_t HiExprBegin = 0, HiExprEnd = 0;
  uint32_t VarSlot = 0;
  uint32_t BodyBegin = 0; ///< ip of the first body instruction.
  uint32_t StepIp = 0;    ///< ip of the matching LoopStep.
  uint32_t EndIp = 0;     ///< ip just past the LoopStep.
};

/// A predicate compiled to flat bytecode. Immutable after compile();
/// evaluation is const and thread-compatible (parallel evaluation copies
/// the resolved frame per worker).
class CompiledPred {
  struct Frame; // Private evaluation state, defined in PredCompile.cpp.

public:
  /// Caller-owned reusable evaluation frame — the analyze-once /
  /// execute-many entry point. The first evalPooled()/evalParallelPooled()
  /// call binds every symbol slot from the bindings; later calls against a
  /// bindings object whose stamp is unchanged skip allocation *and* symbol
  /// re-binding, and keep the invariant-sub-predicate memo table warm (its
  /// entries depend only on the bindings, so they stay valid for as long
  /// as the stamp does). A frame belongs to one CompiledPred at a time
  /// (re-binding on first use by another is automatic) and must not be
  /// used from two threads concurrently.
  class PooledFrame {
  public:
    PooledFrame();
    ~PooledFrame();
    PooledFrame(PooledFrame &&) noexcept;
    PooledFrame &operator=(PooledFrame &&) noexcept;
    PooledFrame(const PooledFrame &) = delete;
    PooledFrame &operator=(const PooledFrame &) = delete;

  private:
    friend class CompiledPred;
    std::unique_ptr<Frame> Main;
    /// Per-worker scratch copies for evalParallelPooled (copy-assigned
    /// from the bound main frame, so steady-state reuse keeps their
    /// buffer capacity).
    std::vector<Frame> Workers;
    const CompiledPred *BoundTo = nullptr;
    sym::BindingsStamp Stamp;
    unsigned WorkersBoundFor = 0; ///< Worker count the copies match.
    bool WorkersValid = false;    ///< Copies match the current Stamp.
  };

  /// Lowers \p P. \p Ctx must be the symbol context the predicate was
  /// built against (slot resolution and invariance use its symbol table).
  /// Returns null when \p P trips a lowering resource guard (nesting
  /// beyond pdag::LoweringMaxNestDepth or bytecode beyond
  /// pdag::LoweringMaxCodeLen): callers must fall back to the reference
  /// interpreter (tryEvalPred) — the governor counts such demotions in
  /// rt::ExecStats::GuardDemotions.
  static std::unique_ptr<CompiledPred> compile(const Pred *P,
                                               const sym::Context &Ctx);

  /// Evaluates against \p B on the calling thread. Same result contract
  /// as tryEvalPred: nullopt when an unbound symbol or out-of-bounds
  /// array access decides the outcome. \p Block selects the block tier
  /// for the root loop (bit-identical result either way, including which
  /// iteration decides a false/unknown outcome).
  std::optional<bool> eval(const sym::Bindings &B, EvalStats *Stats = nullptr,
                           BlockEval Block = BlockEval::Auto) const;

  /// Evaluates with the root LoopAll range chunked across \p Pool using
  /// an atomic first-failure frontier; exact same result as eval().
  /// Fan-out only pays off when every worker gets a chunk that dwarfs the
  /// dispatch cost, so ranges shorter than MinParallelIters * numThreads
  /// iterations (and non-LoopAll roots) fall back to the serial path.
  /// A fired \p Cancel token makes the evaluation bail at the next chunk
  /// boundary and return nullopt — no answer, as opposed to "false".
  std::optional<bool> evalParallel(const sym::Bindings &B, ThreadPool &Pool,
                                   EvalStats *Stats = nullptr,
                                   int64_t MinParallelIters = 4096,
                                   const support::CancelToken *Cancel = nullptr,
                                   BlockEval Block = BlockEval::Auto) const;

  /// eval() against a caller-owned pooled frame: binds the frame on first
  /// use (or whenever \p B's stamp changed since the last bind) and skips
  /// re-binding otherwise. Exact same result contract as eval().
  std::optional<bool> evalPooled(PooledFrame &PF, const sym::Bindings &B,
                                 EvalStats *Stats = nullptr,
                                 BlockEval Block = BlockEval::Auto) const;

  /// evalParallel() against a caller-owned pooled frame: the bound main
  /// frame and the per-worker copies are all reused across evaluations
  /// with an unchanged bindings stamp. Exact same result as eval().
  std::optional<bool>
  evalParallelPooled(PooledFrame &PF, const sym::Bindings &B, ThreadPool &Pool,
                     EvalStats *Stats = nullptr,
                     int64_t MinParallelIters = 4096,
                     const support::CancelToken *Cancel = nullptr,
                     BlockEval Block = BlockEval::Auto) const;

  /// eval() with scalar overrides written into the frame after binding:
  /// (slot, value) pairs over slots resolved via scalarSlotIndex(). This
  /// is how the compiled-USR engine (usr/USRCompile.h) feeds recurrence
  /// variables that live in *its* evaluation frame — not in \p B — into a
  /// gate predicate. Runs on a scratch frame: override values change per
  /// recurrence iteration, so neither the pooled bind-skip nor the
  /// invariant-sub-predicate memo (whose entries may depend on the
  /// overridden symbols) can be reused safely across calls.
  std::optional<bool>
  evalWithSlots(const sym::Bindings &B,
                const std::pair<uint32_t, int64_t> *Overrides, size_t N,
                EvalStats *Stats = nullptr) const;

  /// Block counterpart of evalWithSlots for the compiled-USR engine's gate
  /// sweeps: writes the tri-states (0 false / 1 true / 2 unknown) of this
  /// loop-free predicate for the \p Cnt (1..PredBlockWidth) consecutive
  /// values VarBase .. VarBase+Cnt-1 of scalar slot \p VarSlot into
  /// \p OutTri. The uniform \p Overrides (outer recurrence variables) are
  /// applied once; one frame bind serves the whole block, which is where
  /// the speedup over per-point evalWithSlots comes from. Each lane's
  /// tri-state is bit-identical to the scalar call at that point.
  /// Requires blockableMain().
  void evalTriBlock(const sym::Bindings &B,
                    const std::pair<uint32_t, int64_t> *Overrides, size_t N,
                    uint32_t VarSlot, int64_t VarBase, unsigned Cnt,
                    uint8_t *OutTri, EvalStats *Stats = nullptr) const;

  /// Frame slot of scalar \p S, or nullopt when the predicate never reads
  /// it (then there is nothing to override).
  std::optional<uint32_t> scalarSlotIndex(sym::SymbolId S) const {
    for (size_t I = 0; I < ScalarSlots.size(); ++I)
      if (ScalarSlots[I] == S)
        return static_cast<uint32_t>(I);
    return std::nullopt;
  }

  const Pred *source() const { return Source; }
  int loopDepth() const { return Source->loopDepth(); }
  size_t codeSize() const { return PCode.size() + XCode.size(); }
  size_t numMemoSlots() const { return NumMemoSlots; }
  /// True when evalParallel can actually fan out (root is a LoopAll).
  bool hasParallelRoot() const { return RootLoop >= 0; }
  /// True when the root LoopAll body can run the block tier: no nested
  /// loops in the body, including through CallSub-reachable subroutines
  /// (memoized loop-invariant sub-loops are fine — they are evaluated
  /// scalar once and broadcast).
  bool blockCompatible() const { return BlockOk; }
  /// True when the whole main code range is loop-free, i.e. evalTriBlock
  /// may sweep it (the shape of USR gate predicates).
  bool blockableMain() const { return MainBlockOk; }
  /// True when the root loop body reads arrays through the loop variable —
  /// the access shape the block tier's fused gathers accelerate; the Auto
  /// governor requires it.
  bool bodyHasVarArrayLoad() const { return BodyHasVarLoad; }
  /// Frame-stack slots (stack entries across the tri-state and expression
  /// stacks) the exact-depth precompute saves per bound frame, relative to
  /// the old code-length-based over-allocation. Surfaced through
  /// rt::FramePoolOf stats.
  size_t frameStackSlotsSaved() const {
    return (PCode.size() + 2 - PMaxDepth) + (XCode.size() + 1 - XMaxDepth);
  }

  /// Governor ordering key: loop depth dominates, bytecode length breaks
  /// ties (cheapest-first stage scheduling, Sec. 3.5 cascade ordering).
  uint64_t costEstimate() const {
    return (static_cast<uint64_t>(loopDepth()) << 20) +
           static_cast<uint64_t>(codeSize());
  }

private:
  CompiledPred() = default;

  /// Reusable per-thread frame (steady-state evaluations allocate
  /// nothing); never re-entered on one thread.
  static Frame &scratchFrame();
  /// Runs predicate code [IpBegin, IpEnd) on \p F; returns the tri-state
  /// left on top of the stack.
  uint8_t run(uint32_t IpBegin, uint32_t IpEnd, Frame &F) const;
  bool bindFrame(Frame &F, const sym::Bindings &B) const;
  /// Binds (or reuses) the pooled main frame for \p B; returns true when
  /// the bind was skipped because the bindings stamp is unchanged.
  bool bindPooled(PooledFrame &PF, const sym::Bindings &B) const;
  /// Runs the root code on an already-bound frame and folds F.Stats into
  /// \p Stats (the shared tail of eval/evalPooled). \p Block routes the
  /// root loop through runRootBlocked when selected.
  std::optional<bool> runMainOnFrame(Frame &F, EvalStats *Stats,
                                     BlockEval Block) const;
  /// The one copy of the chunked-parallel protocol (exact first-failure
  /// frontier) shared by evalParallel and evalParallelPooled. \p F must
  /// already be bound; workers copy it per call (scratch mode, \p PF
  /// null) or live pooled inside \p PF.
  std::optional<bool> evalParallelImpl(Frame &F, PooledFrame *PF,
                                       ThreadPool &Pool, EvalStats *Stats,
                                       int64_t MinParallelIters,
                                       const support::CancelToken *Cancel,
                                       BlockEval Block) const;
  /// Serial block sweep of the root loop over [Lo, Hi]; the first non-true
  /// lane (in iteration order) decides, exactly like the scalar loop.
  uint8_t runRootBlocked(Frame &F, int64_t Lo, int64_t Hi) const;
  /// Evaluates code [IpBegin, IpEnd) — which must contain no LoopBegin,
  /// see blockCompatible() — for the Cnt consecutive values
  /// VarBase..VarBase+Cnt-1 of scalar slot VarSlot, writing per-lane
  /// tri-states to \p Out. And/Or short-circuit jumps are disabled (every
  /// child is folded per lane, sound because the tri-state fold is
  /// dominance-monotone and evaluation is side-effect free); invariant
  /// sub-predicates still short-circuit uniformly through their memo slot.
  void runBodyBlock(uint32_t IpBegin, uint32_t IpEnd, uint32_t VarSlot,
                    int64_t VarBase, unsigned Cnt, Frame &F,
                    uint8_t *Out) const;
  /// Whether the Auto policy picks the block tier for a root sweep of
  /// \p Trip iterations.
  bool autoBlocks(int64_t Trip) const {
    return BlockOk && BodyHasVarLoad &&
           Trip >= 2 * static_cast<int64_t>(PredBlockWidth);
  }
  std::optional<int64_t> evalExpr(uint32_t Begin, uint32_t End,
                                  Frame &F) const;

  const Pred *Source = nullptr;
  std::vector<PredInstr> PCode;
  std::vector<ExprInstr> XCode;
  std::vector<CompiledLoop> Loops;
  /// Symbols backing the frame slots (index == slot).
  std::vector<sym::SymbolId> ScalarSlots;
  std::vector<sym::SymbolId> ArraySlots;
  uint32_t NumMemoSlots = 0;
  /// End of the root predicate's code; shared sub-predicate bodies follow
  /// (entered only via CallSub).
  uint32_t MainCodeEnd = 0;
  /// Number of shared sub-predicate bodies (bounds the call depth: the
  /// DAG is acyclic, so a call chain never repeats a subroutine).
  uint32_t NumSubs = 0;
  /// Index into Loops of the root LoopAll (CallSite wrappers stripped),
  /// -1 when the root is not a loop.
  int32_t RootLoop = -1;
  /// Exact peak depths of the tri-state and expression stacks, precomputed
  /// at compile time (frames are sized from these, not code length).
  uint32_t PMaxDepth = 1;
  uint32_t XMaxDepth = 0;
  /// Exact LoopAll nesting depth of the compiled code (LoopStack bound).
  uint32_t MaxLoopNest = 0;
  /// Root loop body is block-evaluable (no nested loops, incl. via subs).
  bool BlockOk = false;
  /// Whole main code range is loop-free (evalTriBlock precondition).
  bool MainBlockOk = false;
  /// Root loop body reads arrays through the loop variable.
  bool BodyHasVarLoad = false;

  friend class PredCompiler;
  /// Plan serialization encodes the compiled tables for the verify-only
  /// bytecode records of the .hplan format (src/plan/).
  friend struct halo::plan::PlanCodec;
};

} // namespace pdag
} // namespace halo

#endif // HALO_PDAG_PREDCOMPILE_H
