//===- pdag/PredCompile.cpp - Predicate bytecode compiler -----------------===//
//
// Part of HALO, a reproduction of "Logical Inference Techniques for Loop
// Parallelization" (Oancea & Rauchwerger, PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "pdag/PredCompile.h"

#include "support/Error.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace halo;
using namespace halo::pdag;

namespace {

// Tri-state encoding on the predicate stack.
constexpr uint8_t TriFalse = 0;
constexpr uint8_t TriTrue = 1;
constexpr uint8_t TriUnknown = 2;

// Same semantics as the Divides case of tryEvalPred.
bool dividesHolds(int64_t DV, int64_t VV, bool Neg) {
  int64_t Div = DV < 0 ? -DV : DV;
  bool Holds = Div == 0 ? (VV == 0) : (VV % Div == 0);
  return Holds != Neg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

namespace halo {
namespace pdag {

class PredCompiler {
public:
  PredCompiler(const sym::Context &Ctx, CompiledPred &Out)
      : Ctx(Ctx), Out(Out),
        XB(Ctx, Out.XCode, Out.ScalarSlots, Out.ArraySlots) {}

  void compileRoot(const Pred *P) {
    countRefs(P);
    compilePred(P, /*AtRoot=*/true);
    Out.MainCodeEnd = here();
    emitSubroutines();
  }

private:
  uint32_t scalarSlot(sym::SymbolId S) { return XB.scalarSlot(S); }

  /// Emits \p E as a fresh expression code range (shared expression
  /// bytecode layer, pdag/ExprCode.h).
  std::pair<uint32_t, uint32_t> compileExpr(const sym::Expr *E) {
    return XB.compile(E);
  }

  uint32_t emitP(PredInstr::Op Op, uint32_t A = 0, uint32_t B = 0,
                 uint32_t C = 0, uint32_t D = 0, uint8_t Aux = 0) {
    Out.PCode.push_back(PredInstr{Op, A, B, C, D, Aux});
    return static_cast<uint32_t>(Out.PCode.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(Out.PCode.size()); }

  /// DAG analysis: per-node reference counts (deciding which shared
  /// compound nodes become subroutines) and the set of every LoopAll
  /// bound variable (the conservative invariance context for code shared
  /// across call sites).
  void countRefs(const Pred *P) {
    if (++RefCount[P] > 1)
      return; // Children already counted on the first visit.
    switch (P->getKind()) {
    case PredKind::And:
    case PredKind::Or:
      for (const Pred *C : cast<NaryPred>(P)->getChildren())
        countRefs(C);
      return;
    case PredKind::LoopAll: {
      const auto *L = cast<LoopAllPred>(P);
      AllLoopVars.push_back(L->getVar());
      countRefs(L->getBody());
      return;
    }
    case PredKind::CallSite:
      countRefs(cast<CallSitePred>(P)->getBody());
      return;
    default:
      return;
    }
  }

  /// A multiply-referenced compound node compiles once as a subroutine;
  /// expanding the interned DAG into a tree can blow code size up by
  /// orders of magnitude (the UMEG-factorized predicates share heavily).
  bool isSharedSub(const Pred *P) const {
    switch (P->getKind()) {
    case PredKind::And:
    case PredKind::Or:
    case PredKind::LoopAll:
    case PredKind::CallSite: {
      auto It = RefCount.find(P);
      return It != RefCount.end() && It->second > 1;
    }
    default:
      return false; // Leaves are at most a couple of instructions.
    }
  }

  /// True when \p P reads none of the loop variables it could be
  /// iterated under. Inside a subroutine body the code is shared across
  /// call sites with different loop contexts, so the check is against
  /// every LoopAll variable of the whole predicate.
  bool isInvariantHere(const Pred *P) const {
    const std::vector<sym::SymbolId> &Vars =
        InSubBody ? AllLoopVars : EnclosingVars;
    for (sym::SymbolId V : Vars)
      if (P->dependsOn(V))
        return false;
    return true;
  }

  /// Emits a reference to \p P: shared compound nodes become a CallSub to
  /// their (single) subroutine body, everything else compiles inline.
  void emitNodeRef(const Pred *P, bool AtRoot) {
    if (!AtRoot && isSharedSub(P)) {
      if (Scheduled.insert(P).second)
        PendingSubs.push_back(P);
      CallSites.emplace_back(emitP(PredInstr::Op::CallSub), P);
      return;
    }
    compilePred(P, AtRoot);
  }

  /// Compiles \p P, memoizing it when it is loop-invariant at this site:
  /// the first evaluation stores the tri-state in a per-evaluation memo
  /// slot, later iterations jump straight past the sub-predicate's code.
  void compileChild(const Pred *P) {
    const bool InLoop = InSubBody ? !AllLoopVars.empty()
                                  : !EnclosingVars.empty();
    bool Memoize = InLoop && !P->isTrue() && !P->isFalse() &&
                   isInvariantHere(P);
    if (!Memoize) {
      emitNodeRef(P, /*AtRoot=*/false);
      return;
    }
    uint32_t Slot;
    auto It = MemoSlotFor.find(P);
    if (It != MemoSlotFor.end()) {
      Slot = It->second;
    } else {
      Slot = Out.NumMemoSlots++;
      MemoSlotFor.emplace(P, Slot);
    }
    uint32_t Check = emitP(PredInstr::Op::MemoCheck, Slot);
    emitNodeRef(P, /*AtRoot=*/false);
    emitP(PredInstr::Op::MemoStore, Slot);
    Out.PCode[Check].B = here();
  }

  void emitSubroutines() {
    if (PendingSubs.empty())
      return;
    // Padding so no subroutine entry aliases MainCodeEnd (the run loop's
    // end-of-code sentinel); never executed.
    emitP(PredInstr::Op::Ret);
    InSubBody = true;
    EnclosingVars.clear();
    while (!PendingSubs.empty()) {
      const Pred *P = PendingSubs.front();
      PendingSubs.pop_front();
      SubEntry[P] = here();
      compilePred(P, /*AtRoot=*/false);
      emitP(PredInstr::Op::Ret);
    }
    InSubBody = false;
    for (const auto &[Ip, P] : CallSites)
      Out.PCode[Ip].A = SubEntry.at(P);
    Out.NumSubs = static_cast<uint32_t>(SubEntry.size());
  }

  void compilePred(const Pred *P, bool AtRoot) {
    switch (P->getKind()) {
    case PredKind::True:
      emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, TriTrue);
      return;
    case PredKind::False:
      emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, TriFalse);
      return;
    case PredKind::Cmp: {
      const auto *C = cast<CmpPred>(P);
      if (auto V = Ctx.constValue(C->getExpr())) {
        bool R = false;
        switch (C->getRel()) {
        case CmpRel::GE0:
          R = *V >= 0;
          break;
        case CmpRel::EQ0:
          R = *V == 0;
          break;
        case CmpRel::NE0:
          R = *V != 0;
          break;
        }
        emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, R ? TriTrue : TriFalse);
        return;
      }
      auto [B, E] = compileExpr(C->getExpr());
      emitP(PredInstr::Op::LeafCmp, B, E, 0, 0,
            static_cast<uint8_t>(C->getRel()));
      return;
    }
    case PredKind::Divides: {
      const auto *D = cast<DividesPred>(P);
      auto DV = Ctx.constValue(D->getDivisor());
      auto VV = Ctx.constValue(D->getValue());
      if (DV && VV) {
        emitP(PredInstr::Op::PushBool, 0, 0, 0, 0,
              dividesHolds(*DV, *VV, D->isNegated()) ? TriTrue : TriFalse);
        return;
      }
      auto [DB, DE] = compileExpr(D->getDivisor());
      auto [VB, VE] = compileExpr(D->getValue());
      emitP(PredInstr::Op::LeafDivides, DB, DE, VB, VE,
            D->isNegated() ? 1 : 0);
      return;
    }
    case PredKind::And:
    case PredKind::Or: {
      const auto *N = cast<NaryPred>(P);
      const bool IsAnd = N->isAnd();
      emitP(PredInstr::Op::PushBool, 0, 0, 0, 0, IsAnd ? TriTrue : TriFalse);
      std::vector<uint32_t> Steps;
      for (const Pred *C : N->getChildren()) {
        compileChild(C);
        Steps.push_back(
            emitP(IsAnd ? PredInstr::Op::AndStep : PredInstr::Op::OrStep));
      }
      for (uint32_t S : Steps)
        Out.PCode[S].A = here();
      return;
    }
    case PredKind::LoopAll: {
      const auto *L = cast<LoopAllPred>(P);
      uint32_t DescIdx = static_cast<uint32_t>(Out.Loops.size());
      Out.Loops.emplace_back();
      {
        CompiledLoop &D = Out.Loops[DescIdx];
        std::tie(D.LoExprBegin, D.LoExprEnd) = compileExpr(L->getLo());
        std::tie(D.HiExprBegin, D.HiExprEnd) = compileExpr(L->getHi());
        D.VarSlot = scalarSlot(L->getVar());
      }
      if (AtRoot)
        Out.RootLoop = static_cast<int32_t>(DescIdx);
      emitP(PredInstr::Op::LoopBegin, DescIdx);
      Out.Loops[DescIdx].BodyBegin = here();
      EnclosingVars.push_back(L->getVar());
      compileChild(L->getBody());
      EnclosingVars.pop_back();
      Out.Loops[DescIdx].StepIp = emitP(PredInstr::Op::LoopStep, DescIdx);
      Out.Loops[DescIdx].EndIp = here();
      return;
    }
    case PredKind::CallSite:
      // Opaque barrier for static reasoning only; evaluation passes
      // through to the body (same as the interpreter).
      emitNodeRef(cast<CallSitePred>(P)->getBody(), AtRoot);
      return;
    }
    halo_unreachable("covered switch");
  }

  const sym::Context &Ctx;
  CompiledPred &Out;
  ExprCodeBuilder XB;
  std::vector<sym::SymbolId> EnclosingVars;
  std::vector<sym::SymbolId> AllLoopVars;
  bool InSubBody = false;
  std::unordered_map<const Pred *, uint32_t> MemoSlotFor;
  std::unordered_map<const Pred *, uint32_t> RefCount;
  std::unordered_set<const Pred *> Scheduled;
  std::deque<const Pred *> PendingSubs;
  std::vector<std::pair<uint32_t, const Pred *>> CallSites;
  std::unordered_map<const Pred *, uint32_t> SubEntry;
};

} // namespace pdag
} // namespace halo

std::unique_ptr<CompiledPred> CompiledPred::compile(const Pred *P,
                                                    const sym::Context &Ctx) {
  std::unique_ptr<CompiledPred> CP(new CompiledPred());
  CP->Source = P;
  PredCompiler C(Ctx, *CP);
  C.compileRoot(P);
  return CP;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

/// Per-evaluation state: resolved symbol slots, memo table and
/// preallocated evaluation stacks (compile() bounds their depths, so the
/// hot loop runs on raw pointers with no size checks). Copied per worker
/// by the parallel evaluator (the copies share the immutable ArrayBinding
/// storage behind the raw pointers).
struct CompiledPred::Frame {
  std::vector<int64_t> ScalarVals;
  std::vector<uint8_t> ScalarBound;
  std::vector<const sym::ArrayBinding *> Arrays;
  std::vector<int8_t> Memo; // -1 unset, else a tri-state.
  std::vector<int64_t> XStack;
  std::vector<uint8_t> PStack;
  struct LoopState {
    uint32_t Desc;
    int64_t Cur, Hi;
    int64_t SavedVal;
    uint8_t SavedBound;
  };
  std::vector<LoopState> LoopStack;
  std::vector<uint32_t> RetStack;
  EvalStats Stats;
};

bool CompiledPred::bindFrame(Frame &F, const sym::Bindings &B) const {
  F.ScalarVals.assign(ScalarSlots.size(), 0);
  F.ScalarBound.assign(ScalarSlots.size(), 0);
  for (size_t I = 0; I < ScalarSlots.size(); ++I)
    if (auto V = B.scalar(ScalarSlots[I])) {
      F.ScalarVals[I] = *V;
      F.ScalarBound[I] = 1;
    }
  F.Arrays.resize(ArraySlots.size());
  for (size_t I = 0; I < ArraySlots.size(); ++I)
    F.Arrays[I] = B.array(ArraySlots[I]);
  F.Memo.assign(NumMemoSlots, -1);
  // Depth bounds: every instruction pushes at most one value; a call
  // chain never repeats a subroutine (the DAG is acyclic).
  F.XStack.resize(XCode.size() + 1);
  F.PStack.resize(PCode.size() + 2);
  F.LoopStack.resize(Loops.size() + 1);
  F.RetStack.resize(NumSubs + 1);
  return true;
}

std::optional<int64_t> CompiledPred::evalExpr(uint32_t Begin, uint32_t End,
                                              Frame &F) const {
  return runExprCode(XCode.data(), Begin, End, F.ScalarVals.data(),
                     F.ScalarBound.data(), F.Arrays.data(),
                     F.XStack.data());
}

uint8_t CompiledPred::run(uint32_t IpBegin, uint32_t IpEnd, Frame &F) const {
  uint8_t *St = F.PStack.data();
  size_t SP = 0;
  Frame::LoopState *LoopSt = F.LoopStack.data();
  size_t LSP = 0;
  uint32_t *RetSt = F.RetStack.data();
  size_t RSP = 0;
  const PredInstr *Code = PCode.data();
  uint32_t Ip = IpBegin;
  while (Ip != IpEnd) {
    const PredInstr &I = Code[Ip];
    switch (I.Opcode) {
    case PredInstr::Op::PushBool:
      St[SP++] = I.Aux;
      ++Ip;
      break;
    case PredInstr::Op::LeafCmp: {
      auto V = evalExpr(I.A, I.B, F);
      uint8_t R = TriUnknown;
      if (V) {
        ++F.Stats.LeafEvals;
        switch (static_cast<CmpRel>(I.Aux)) {
        case CmpRel::GE0:
          R = *V >= 0 ? TriTrue : TriFalse;
          break;
        case CmpRel::EQ0:
          R = *V == 0 ? TriTrue : TriFalse;
          break;
        case CmpRel::NE0:
          R = *V != 0 ? TriTrue : TriFalse;
          break;
        }
      }
      St[SP++] = R;
      ++Ip;
      break;
    }
    case PredInstr::Op::LeafDivides: {
      auto DV = evalExpr(I.A, I.B, F);
      auto VV = evalExpr(I.C, I.D, F);
      uint8_t R = TriUnknown;
      if (DV && VV) {
        ++F.Stats.LeafEvals;
        R = dividesHolds(*DV, *VV, I.Aux != 0) ? TriTrue : TriFalse;
      }
      St[SP++] = R;
      ++Ip;
      break;
    }
    case PredInstr::Op::AndStep: {
      const uint8_t C = St[--SP];
      uint8_t &Acc = St[SP - 1];
      if (C == TriFalse)
        Acc = TriFalse;
      else if (C == TriUnknown && Acc == TriTrue)
        Acc = TriUnknown;
      Ip = Acc == TriFalse ? I.A : Ip + 1;
      break;
    }
    case PredInstr::Op::OrStep: {
      const uint8_t C = St[--SP];
      uint8_t &Acc = St[SP - 1];
      if (C == TriTrue)
        Acc = TriTrue;
      else if (C == TriUnknown && Acc == TriFalse)
        Acc = TriUnknown;
      Ip = Acc == TriTrue ? I.A : Ip + 1;
      break;
    }
    case PredInstr::Op::LoopBegin: {
      const CompiledLoop &L = Loops[I.A];
      auto Lo = evalExpr(L.LoExprBegin, L.LoExprEnd, F);
      auto Hi = evalExpr(L.HiExprBegin, L.HiExprEnd, F);
      if (!Lo || !Hi) {
        St[SP++] = TriUnknown;
        Ip = L.EndIp;
        break;
      }
      if (*Lo > *Hi) {
        St[SP++] = TriTrue;
        Ip = L.EndIp;
        break;
      }
      LoopSt[LSP++] = Frame::LoopState{I.A, *Lo, *Hi,
                                       F.ScalarVals[L.VarSlot],
                                       F.ScalarBound[L.VarSlot]};
      F.ScalarVals[L.VarSlot] = *Lo;
      F.ScalarBound[L.VarSlot] = 1;
      ++F.Stats.LoopIters;
      Ip = L.BodyBegin;
      break;
    }
    case PredInstr::Op::LoopStep: {
      const uint8_t R = St[--SP];
      Frame::LoopState &LS = LoopSt[LSP - 1];
      const CompiledLoop &L = Loops[LS.Desc];
      if (R == TriTrue && LS.Cur < LS.Hi) {
        ++LS.Cur;
        F.ScalarVals[L.VarSlot] = LS.Cur;
        ++F.Stats.LoopIters;
        Ip = L.BodyBegin;
        break;
      }
      F.ScalarVals[L.VarSlot] = LS.SavedVal;
      F.ScalarBound[L.VarSlot] = LS.SavedBound;
      --LSP;
      St[SP++] = R;
      Ip = L.EndIp;
      break;
    }
    case PredInstr::Op::MemoCheck: {
      const int8_t M = F.Memo[I.A];
      if (M >= 0) {
        ++F.Stats.MemoHits;
        St[SP++] = static_cast<uint8_t>(M);
        Ip = I.B;
      } else {
        ++Ip;
      }
      break;
    }
    case PredInstr::Op::MemoStore:
      F.Memo[I.A] = static_cast<int8_t>(St[SP - 1]);
      ++Ip;
      break;
    case PredInstr::Op::CallSub:
      RetSt[RSP++] = Ip + 1;
      Ip = I.A;
      break;
    case PredInstr::Op::Ret:
      Ip = RetSt[--RSP];
      break;
    }
  }
  assert(SP == 1 && "predicate code must leave one value");
  return St[SP - 1];
}

/// Reusable per-thread frame: bindFrame() resizes with assign()/resize(),
/// so after warm-up repeated evaluations allocate nothing. Safe because
/// eval()/evalParallel() never re-enter on the same thread (the parallel
/// workers copy the bound frame into their own locals).
CompiledPred::Frame &CompiledPred::scratchFrame() {
  thread_local Frame F;
  return F;
}

std::optional<bool> CompiledPred::runMainOnFrame(Frame &F,
                                                 EvalStats *Stats) const {
  uint8_t R = run(0, MainCodeEnd, F);
  F.Stats.CompiledEvals = 1;
  if (Stats)
    *Stats += F.Stats;
  if (R == TriUnknown)
    return std::nullopt;
  return R == TriTrue;
}

std::optional<bool> CompiledPred::eval(const sym::Bindings &B,
                                       EvalStats *Stats) const {
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  return runMainOnFrame(F, Stats);
}

std::optional<bool>
CompiledPred::evalWithSlots(const sym::Bindings &B,
                            const std::pair<uint32_t, int64_t> *Overrides,
                            size_t N, EvalStats *Stats) const {
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  for (size_t I = 0; I < N; ++I) {
    F.ScalarVals[Overrides[I].first] = Overrides[I].second;
    F.ScalarBound[Overrides[I].first] = 1;
  }
  return runMainOnFrame(F, Stats);
}

//===----------------------------------------------------------------------===//
// Pooled frames (analyze-once / execute-many)
//===----------------------------------------------------------------------===//

CompiledPred::PooledFrame::PooledFrame() = default;
CompiledPred::PooledFrame::~PooledFrame() = default;
CompiledPred::PooledFrame::PooledFrame(PooledFrame &&) noexcept = default;
CompiledPred::PooledFrame &
CompiledPred::PooledFrame::operator=(PooledFrame &&) noexcept = default;

bool CompiledPred::bindPooled(PooledFrame &PF, const sym::Bindings &B) const {
  if (!PF.Main)
    PF.Main = std::make_unique<Frame>();
  const sym::BindingsStamp S = B.stamp();
  // Stamp equality guarantees B is the same live object, unmutated since
  // the frame was bound: the scalar values, array pointers and memo
  // entries in the frame are all still exact.
  if (PF.BoundTo == this && PF.Stamp == S)
    return true;
  bindFrame(*PF.Main, B);
  PF.BoundTo = this;
  PF.Stamp = S;
  PF.WorkersValid = false;
  return false;
}

std::optional<bool> CompiledPred::evalPooled(PooledFrame &PF,
                                             const sym::Bindings &B,
                                             EvalStats *Stats) const {
  const bool Reused = bindPooled(PF, B);
  Frame &F = *PF.Main;
  F.Stats = EvalStats();
  if (Reused)
    F.Stats.FrameRebindsSkipped = 1;
  else
    F.Stats.FrameBinds = 1;
  return runMainOnFrame(F, Stats);
}

std::optional<bool>
CompiledPred::evalParallelPooled(PooledFrame &PF, const sym::Bindings &B,
                                 ThreadPool &Pool, EvalStats *Stats,
                                 int64_t MinParallelIters,
                                 const support::CancelToken *Cancel) const {
  if (RootLoop < 0 || Pool.numThreads() <= 1)
    return evalPooled(PF, B, Stats);
  const bool Reused = bindPooled(PF, B);
  Frame &F = *PF.Main;
  F.Stats = EvalStats();
  if (Reused)
    F.Stats.FrameRebindsSkipped = 1;
  else
    F.Stats.FrameBinds = 1;
  return evalParallelImpl(F, &PF, Pool, Stats, MinParallelIters, Cancel);
}

std::optional<bool> CompiledPred::evalParallelImpl(
    Frame &F, PooledFrame *PF, ThreadPool &Pool, EvalStats *Stats,
    int64_t MinParallelIters, const support::CancelToken *Cancel) const {
  const CompiledLoop &L = Loops[static_cast<size_t>(RootLoop)];
  auto Lo = evalExpr(L.LoExprBegin, L.LoExprEnd, F);
  auto Hi = evalExpr(L.HiExprBegin, L.HiExprEnd, F);
  if (!Lo || !Hi) {
    if (Stats) {
      F.Stats.CompiledEvals = 1;
      *Stats += F.Stats;
    }
    return std::nullopt;
  }
  if (*Lo > *Hi) {
    if (Stats) {
      F.Stats.CompiledEvals = 1;
      *Stats += F.Stats;
    }
    return true;
  }
  const unsigned NT = Pool.numThreads();
  if (support::stopRequested(Cancel))
    return std::nullopt; // Cancelled: no answer, not "false".
  if (*Hi - *Lo + 1 < MinParallelIters * static_cast<int64_t>(NT))
    return runMainOnFrame(F, Stats);

  // Pooled worker frames are copy-assigned from the bound main frame on
  // (re)bind so their buffers keep capacity, and simply reused when the
  // stamp is unchanged — worker-local mutations (the root loop variable
  // slot, warm memo entries) stay valid under the same bindings.
  if (PF) {
    if (PF->Workers.size() < NT) {
      PF->Workers.resize(NT);
      PF->WorkersValid = false;
    }
    if (!PF->WorkersValid || PF->WorkersBoundFor < NT) {
      for (unsigned W = 0; W < NT; ++W)
        PF->Workers[W] = F;
      PF->WorkersBoundFor = NT;
      PF->WorkersValid = true;
    }
  }

  // Exact first-failure frontier: a worker may stop as soon as its current
  // iteration lies beyond the earliest known non-true iteration; every
  // iteration before the final frontier is therefore fully evaluated, so
  // the merged result (outcome at the minimal recorded iteration) is
  // identical to the sequential early-exit semantics of tryEvalPred,
  // including which of false/unknown decides.
  std::atomic<int64_t> FirstBad{INT64_MAX};
  std::vector<uint8_t> Outcome(NT, TriTrue);
  std::vector<int64_t> BadAt(NT, INT64_MAX);
  std::vector<EvalStats> WorkerStats(NT);

  Pool.parallelAllOf(
      *Lo, *Hi + 1,
      [&](int64_t BLo, int64_t BHi, unsigned W, std::atomic<bool> &) -> bool {
        Frame ScratchW; // Private slots + memo per worker (scratch mode).
        if (!PF)
          ScratchW = F;
        Frame &FW = PF ? PF->Workers[W] : ScratchW;
        FW.Stats = EvalStats();
        bool Ok = true;
        for (int64_t I = BLo; I < BHi; ++I) {
          if (I > FirstBad.load(std::memory_order_relaxed))
            break;
          FW.ScalarVals[L.VarSlot] = I;
          FW.ScalarBound[L.VarSlot] = 1;
          ++FW.Stats.LoopIters;
          uint8_t R = run(L.BodyBegin, L.StepIp, FW);
          if (R != TriTrue) {
            Outcome[W] = R;
            BadAt[W] = I;
            int64_t Cur = FirstBad.load(std::memory_order_relaxed);
            while (I < Cur && !FirstBad.compare_exchange_weak(
                                  Cur, I, std::memory_order_relaxed)) {
            }
            Ok = false;
            break;
          }
        }
        WorkerStats[W] = FW.Stats;
        return Ok;
      },
      Cancel);

  EvalStats Agg;
  for (unsigned W = 0; W < NT; ++W)
    Agg += WorkerStats[W];
  Agg.CompiledEvals = 1;
  Agg.FrameBinds = F.Stats.FrameBinds;
  Agg.FrameRebindsSkipped = F.Stats.FrameRebindsSkipped;
  if (Stats)
    *Stats += Agg;

  // A fired token may have suppressed blocks entirely, so Outcome/BadAt
  // no longer describe the true first-failure frontier: discard them.
  // (Counted stats above only describe the work actually done.)
  if (support::stopRequested(Cancel))
    return std::nullopt;

  int64_t Best = INT64_MAX;
  uint8_t R = TriTrue;
  for (unsigned W = 0; W < NT; ++W)
    if (BadAt[W] < Best) {
      Best = BadAt[W];
      R = Outcome[W];
    }
  if (R == TriUnknown)
    return std::nullopt;
  return R == TriTrue;
}

std::optional<bool>
CompiledPred::evalParallel(const sym::Bindings &B, ThreadPool &Pool,
                           EvalStats *Stats, int64_t MinParallelIters,
                           const support::CancelToken *Cancel) const {
  if (RootLoop < 0 || Pool.numThreads() <= 1)
    return eval(B, Stats);
  Frame &F = scratchFrame();
  F.Stats = EvalStats();
  bindFrame(F, B);
  return evalParallelImpl(F, nullptr, Pool, Stats, MinParallelIters, Cancel);
}
